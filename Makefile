GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate plus static analysis and the race detector.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem

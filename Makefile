GO ?= go
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: build test vet race racecheck alloccheck rangecheck loadcheck churncheck clustercheck tracecheck check bench loadbench benchcmp fuzz-smoke

# Each fuzz target gets a short smoke budget; go test allows only one
# -fuzz pattern per invocation, so targets run sequentially.
FUZZTIME ?= 10s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# racecheck reruns the concurrency-heavy packages — the sharded pool, its
# metrics adapter and the server's chaos drives (fault injection and the
# concurrent GET/DELETE/expiry churn drive) — under the race detector
# with fresh state each time, to shake out order-dependent interleavings
# a single pass can miss. `race` already covers every package once.
racecheck:
	$(GO) test -race -count=2 ./internal/shard ./internal/obs ./cmd/cacheserver

# alloccheck asserts the allocation guarantees: with no observer installed,
# core.Cache.Request allocates nothing on the request path (an attached
# observer adds none either), and in an eviction-heavy steady state the
# indexed victim-selection paths allocate nothing per Victims call.
alloccheck:
	$(GO) test -run 'TestRequestZeroAllocsNilObserver|TestRequestAllocsUnchangedWithObserver|TestVictimsZeroAllocsSteadyState' -count=1 ./internal/core

# rangecheck runs the partial-content conformance surface: the HTTP Range
# suite (206/200/416, HEAD, extents), the segmented engine and pool tests,
# and the per-segment byte-identity property under faults.
rangecheck:
	$(GO) test -run 'Range|Segment|HeadClip|Extents|Coalescing' -count=1 ./internal/core ./internal/shard ./cmd/cacheserver

# loadcheck is the open-loop load smoke: a short fixed-seed loadgen run
# (in-process pool, batched arrivals, 10% fault profile) that must sustain
# nonzero throughput and leave the engine statistics satisfying the
# counting and byte identities.
loadcheck:
	$(GO) run ./cmd/loadgen -check

# churncheck runs the catalog-churn conformance surface: the churn grammar
# and generator, the invalidation/TTL property suite over every registry
# policy, the 1-shard-equals-bare differential with TTL, the DELETE route
# and its client fallback, and the churn experiment's determinism.
churncheck:
	$(GO) test -run 'Churn|Invalidate|TTL|Expir|Delete' -count=1 \
		./internal/workload ./internal/core ./internal/shard \
		./internal/sim ./internal/cacheclient ./cmd/cacheserver

# clustercheck runs the cooperative-tier conformance surface under the race
# detector: the consistent-hash ring, digest verdicts, hedged peer reads,
# the retry/breaker client (incl. Retry-After parsing), snapshot rebalance
# across shard counts, the cooperative in-process model's fault accounting,
# and the multi-node chaos drive (node loss + partition + slow peers).
clustercheck:
	$(GO) test -race -run 'Cluster|Ring|Digest|Hedge|RetryAfter|Rebalance|Coop|UnionCoverage|PartialPeer|Degraded' -count=1 \
		./internal/cluster ./internal/cacheclient ./internal/shard \
		./internal/coop ./cmd/cacheserver

# tracecheck runs the sessionized-analytics conformance surface (ISSUE 10):
# the trace v2 schema round-trips and golden bytes, the Source-face
# byte-identity regressions, the query engine goldens, the traceql CLI, and
# the measure→model→replay loop — reqlog → traceql -fit → replay matching
# the recorded per-session hit rate and inter-arrival percentiles.
tracecheck:
	$(GO) test -run 'Source|Trace|Session|Query|Report|Fit|ReqLog|ClientID|Golden' -count=1 \
		./internal/workload ./internal/trace ./internal/sim \
		./cmd/traceql ./cmd/tracegen ./cmd/loadgen ./cmd/cacheserver

# check is the tier-1 gate plus static analysis, the race detector, the
# request-path allocation assertion, the Range-conformance surface, the
# open-loop load smoke, the catalog-churn surface, the cooperative cluster
# surface and the sessionized-analytics surface. vet and test cover every
# package, including internal/metrics and internal/obs.
check: build vet test race alloccheck rangecheck loadcheck churncheck clustercheck tracecheck

# bench runs the full benchmark suite and archives the run as test2json
# events (one dated file per day; reruns overwrite).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -json . | tee BENCH_$(BENCH_DATE).json

# loadbench sweeps the open-loop generator across offered rates and
# archives the latency table next to the benchmark archives (the -load
# suffix keeps it from clobbering the same-day `make bench` file).
LOADRATES ?= 2000,10000,50000,200000
loadbench:
	$(GO) run ./cmd/loadgen -rates $(LOADRATES) -duration 2s -batch 8 -error-rate 0.05 \
		-json BENCH_$(BENCH_DATE)-load.json

# benchcmp summarizes the newest archived run (baseline-vs-indexed speedup
# table), or compares two archives: make benchcmp OLD=BENCH_a.json NEW=BENCH_b.json
BENCHFILE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
benchcmp:
	$(GO) run ./cmd/benchcmp $(if $(OLD),$(OLD) $(NEW),$(BENCHFILE))

# fuzz-smoke gives every fuzz target a short randomized shake-out beyond
# its checked-in seed corpus. CI runs this on every push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzParseSpec$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzParseChurn$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzReadRepositoryCSV$$' -fuzztime $(FUZZTIME) ./internal/media
	$(GO) test -run '^$$' -fuzz '^FuzzParseProfile$$' -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run '^$$' -fuzz '^FuzzParseFit$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzParseQuery$$' -fuzztime $(FUZZTIME) ./internal/trace

GO ?= go
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: build test vet race alloccheck check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# alloccheck asserts the observability hot-path guarantee: with no observer
# installed, core.Cache.Request allocates nothing on the request path (and
# an attached observer adds no allocations either).
alloccheck:
	$(GO) test -run 'TestRequestZeroAllocsNilObserver|TestRequestAllocsUnchangedWithObserver' -count=1 ./internal/core

# check is the tier-1 gate plus static analysis, the race detector and the
# request-path allocation assertion. vet and test cover every package,
# including internal/metrics and internal/obs.
check: build vet test race alloccheck

# bench runs the full benchmark suite and archives the run as test2json
# events (one dated file per day; reruns overwrite).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -json . | tee BENCH_$(BENCH_DATE).json

// Package mediacache_test is the benchmark harness of the reproduction:
// one testing.B benchmark per table/figure of the paper's evaluation
// (regenerating its rows through the same code as cmd/experiments), plus
// per-policy throughput benchmarks and the ablation benches DESIGN.md §6
// calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report the figure's headline values through
// b.ReportMetric (unit suffix "%hit"), so a bench run doubles as a quick
// regression check on the reproduced numbers. The full row-by-row output
// comes from cmd/experiments.
package mediacache_test

import (
	"fmt"
	"strings"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/blocklru"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/policy/gdfreq"
	"mediacache/internal/policy/gdsp"
	"mediacache/internal/policy/greedydual"
	"mediacache/internal/policy/igd"
	"mediacache/internal/policy/lfu"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/policy/lrusk"
	"mediacache/internal/policy/simple"
	"mediacache/internal/sim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// benchFigure regenerates one experiment per iteration and reports the mean
// Y value of every series as a metric.
func benchFigure(b *testing.B, id string) {
	run, ok := sim.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var fig *sim.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = run(sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		var sum float64
		for _, y := range s.Y {
			sum += y
		}
		if len(s.Y) > 0 {
			// Metric units must not contain whitespace.
			unit := strings.ReplaceAll(s.Label, " ", "") + "_%"
			b.ReportMetric(100*sum/float64(len(s.Y)), unit)
		}
	}
}

// One benchmark per table/figure of the evaluation section.

func BenchmarkFigure2a(b *testing.B) { benchFigure(b, "2a") }
func BenchmarkFigure2b(b *testing.B) { benchFigure(b, "2b") }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, "3") }
func BenchmarkFigure5a(b *testing.B) { benchFigure(b, "5a") }
func BenchmarkFigure5b(b *testing.B) { benchFigure(b, "5b") }
func BenchmarkFigure6a(b *testing.B) { benchFigure(b, "6a") }
func BenchmarkFigure6b(b *testing.B) { benchFigure(b, "6b") }
func BenchmarkFigure7a(b *testing.B) { benchFigure(b, "7a") }
func BenchmarkFigure7b(b *testing.B) { benchFigure(b, "7b") }

// BenchmarkQuality regenerates the Section 4.1 estimate-quality study.
func BenchmarkQuality(b *testing.B) {
	var fig *sim.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = sim.Quality(sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	s := fig.Series[0]
	b.ReportMetric(s.Y[0], "E_K2")
	b.ReportMetric(s.Y[len(s.Y)-1], fmt.Sprintf("E_K%d", int(s.X[len(s.X)-1])))
}

// BenchmarkSkew regenerates the Section 4.4 skew sweep.
func BenchmarkSkew(b *testing.B) { benchFigure(b, "skew") }

// BenchmarkBlockAblation regenerates the footnote 3 block-size ablation.
func BenchmarkBlockAblation(b *testing.B) { benchFigure(b, "blocks") }

// BenchmarkDYNSimpleRefinement regenerates the Figure 4 phase-2 ablation.
func BenchmarkDYNSimpleRefinement(b *testing.B) { benchFigure(b, "refinement") }

// benchPolicyThroughput measures per-request cost of a policy on the paper
// repository at S_T/S_DB = 0.125 under the standard Zipf workload.
func benchPolicyThroughput(b *testing.B, spec string) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
	pmf := gen.PMF()
	cache, err := sim.NewCache(spec, repo, repo.CacheSizeForRatio(0.125), pmf, sim.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up so the steady-state mix of hits and evictions is measured.
	for i := 0; i < 2000; i++ {
		if _, err := cache.Request(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Request(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicy measures steady-state request latency per technique —
// the paper's "processor utilization" metric (Section 1) as CPU time per
// request.
func BenchmarkPolicy(b *testing.B) {
	for _, spec := range []string{
		"simple", "random", "lruk:2", "lrusk:2",
		"dynsimple:2", "dynsimple:32", "greedydual", "gdfreq", "igd:2",
	} {
		b.Run(spec, func(b *testing.B) { benchPolicyThroughput(b, spec) })
	}
}

// BenchmarkGreedyDualImplementations quantifies Figure 1's point: the
// inflation-based GreedyDual versus the naive O(n)-subtractions-per-
// eviction textbook version.
func BenchmarkGreedyDualImplementations(b *testing.B) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	run := func(b *testing.B, p core.Policy) {
		gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
		cache, err := core.New(repo, repo.CacheSizeForRatio(0.125), p)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("inflation", func(b *testing.B) { run(b, greedydual.New(nil, sim.DefaultSeed)) })
	b.Run("naive", func(b *testing.B) { run(b, greedydual.NewNaive(nil, sim.DefaultSeed)) })
}

// BenchmarkIGDAging compares IGD's selection-time Δ aging against frozen
// touch-time priorities (DESIGN.md §6.3): hit rate after a popularity shift.
func BenchmarkIGDAging(b *testing.B) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	sched := workload.Schedule{{Shift: 0, Requests: 5000}, {Shift: 200, Requests: 5000}}
	run := func(b *testing.B, opts ...igd.Option) float64 {
		var rate float64
		for i := 0; i < b.N; i++ {
			p, err := igd.New(repo.N(), 2, sim.DefaultSeed, opts...)
			if err != nil {
				b.Fatal(err)
			}
			cache, err := core.New(repo, repo.CacheSizeForRatio(0.125), p)
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
			res, err := sim.Run(p.Name(), cache, gen, sched, sim.RunConfig{})
			if err != nil {
				b.Fatal(err)
			}
			rate = res.Stats.HitRate()
		}
		return rate
	}
	b.Run("dynamic", func(b *testing.B) {
		b.ReportMetric(100*run(b), "hit_%")
	})
	b.Run("frozen", func(b *testing.B) {
		b.ReportMetric(100*run(b, igd.FrozenAging()), "hit_%")
	})
}

// BenchmarkDYNSimpleK sweeps the history depth K (the Figure 5.b / 6
// discussion of estimate quality vs adaptation speed).
func BenchmarkDYNSimpleK(b *testing.B) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				p, err := dynsimple.New(repo.N(), k)
				if err != nil {
					b.Fatal(err)
				}
				cache, err := core.New(repo, repo.CacheSizeForRatio(0.125), p)
				if err != nil {
					b.Fatal(err)
				}
				gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
				res, err := sim.Run(p.Name(), cache, gen,
					workload.Schedule{{Shift: 0, Requests: sim.DefaultRequests}}, sim.RunConfig{})
				if err != nil {
					b.Fatal(err)
				}
				rate = res.Stats.HitRate()
			}
			b.ReportMetric(100*rate, "hit_%")
		})
	}
}

// Extension experiments (see internal/sim/extensions.go).

func BenchmarkGDSPTradeoff(b *testing.B)     { benchFigure(b, "gdsp") }
func BenchmarkLatency(b *testing.B)          { benchFigure(b, "latency") }
func BenchmarkRegionThroughput(b *testing.B) { benchFigure(b, "region") }
func BenchmarkTaxonomy(b *testing.B)         { benchFigure(b, "taxonomy") }
func BenchmarkCoop(b *testing.B)             { benchFigure(b, "coop") }
func BenchmarkFiveRule(b *testing.B)         { benchFigure(b, "fiverule") }
func BenchmarkDrift(b *testing.B)            { benchFigure(b, "drift") }
func BenchmarkOptimal(b *testing.B)          { benchFigure(b, "optimal") }
func BenchmarkAdmission(b *testing.B)        { benchFigure(b, "admission") }

// BenchmarkSweepParallel measures the worker-pool sweep engine on the
// Figure 5.b grid (9 policies × 7 cache ratios = 63 cells) at several
// worker counts. parallel=1 is the sequential baseline; parallel=0 uses
// one worker per CPU. The figure output is byte-identical at every worker
// count (internal/sim/parallel_test.go pins that); this benchmark measures
// only the wall-clock effect.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("parallel=%d", workers)
		if workers == 0 {
			name = "parallel=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Figure5b(sim.Options{Parallel: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLRUSKSelection compares the O(n)-scan LRU-SK with the Section 5
// tree-based implementation on a large synthetic repository (20,000 clips,
// 6 size classes), where victim-selection complexity dominates.
func BenchmarkLRUSKSelection(b *testing.B) {
	const nClips = 20004 // multiple of 6 for the paper-style size pattern
	repo, err := media.VariableRepository(nClips)
	if err != nil {
		b.Fatal(err)
	}
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	run := func(b *testing.B, p core.Policy) {
		cache, err := core.New(repo, repo.CacheSizeForRatio(0.05), p)
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
		for i := 0; i < 3000; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("scan", func(b *testing.B) {
		p, err := lrusk.New(repo.N(), 2)
		if err != nil {
			b.Fatal(err)
		}
		run(b, p.Scan()) // the Policy default is indexed now; force the scan
	})
	b.Run("tree", func(b *testing.B) {
		p, err := lrusk.NewFast(repo.N(), 2)
		if err != nil {
			b.Fatal(err)
		}
		run(b, p)
	})
}

// BenchmarkEvictionHeavy compares each refactored policy's original
// O(n)-scan victim selection with its indexed replacement (ISSUE 4) on a
// large synthetic repository (20,004 clips, 6 size classes) in an
// eviction-heavy regime: a 5% cache under the standard Zipf workload, where
// roughly half the requests miss and force victim selection. Indexed is the
// production default; Scan() restores the original path as the baseline.
func BenchmarkEvictionHeavy(b *testing.B) {
	const nClips = 20004
	repo, err := media.VariableRepository(nClips)
	if err != nil {
		b.Fatal(err)
	}
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	pmf := workload.MustNewGenerator(dist, sim.DefaultSeed).PMF()
	run := func(b *testing.B, p core.Policy) {
		cache, err := core.New(repo, repo.CacheSizeForRatio(0.05), p)
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
		for i := 0; i < 3000; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
	pairs := []struct {
		name    string
		indexed func() core.Policy
		scan    func() core.Policy
	}{
		{"greedydual",
			func() core.Policy { return greedydual.New(nil, sim.DefaultSeed) },
			func() core.Policy { return greedydual.New(nil, sim.DefaultSeed).Scan() }},
		{"gdfreq",
			func() core.Policy { return gdfreq.New(nil, sim.DefaultSeed) },
			func() core.Policy { return gdfreq.New(nil, sim.DefaultSeed).Scan() }},
		{"gdsp",
			func() core.Policy { return gdsp.MustNew(nil, 0, sim.DefaultSeed) },
			func() core.Policy { return gdsp.MustNew(nil, 0, sim.DefaultSeed).Scan() }},
		{"lruk",
			func() core.Policy { return lruk.MustNew(nClips, 2) },
			func() core.Policy { return lruk.MustNew(nClips, 2).Scan() }},
		{"lrusk",
			func() core.Policy { return lrusk.MustNew(nClips, 2) },
			func() core.Policy { return lrusk.MustNew(nClips, 2).Scan() }},
		{"lfu",
			func() core.Policy { return lfu.New() },
			func() core.Policy { return lfu.New().Scan() }},
		{"simple",
			func() core.Policy { return simple.MustNew(pmf) },
			func() core.Policy { return simple.MustNew(pmf).Scan() }},
		{"dynsimple",
			func() core.Policy { return dynsimple.MustNew(nClips, 2) },
			func() core.Policy { return dynsimple.MustNew(nClips, 2).Scan() }},
	}
	for _, pr := range pairs {
		b.Run(pr.name+"/scan", func(b *testing.B) { run(b, pr.scan()) })
		b.Run(pr.name+"/indexed", func(b *testing.B) { run(b, pr.indexed()) })
	}
}

// BenchmarkIGDSelection compares the O(n)-scan IGD with the branch-and-
// bound indexed implementation on a large synthetic repository.
func BenchmarkIGDSelection(b *testing.B) {
	const nClips = 20004
	repo, err := media.VariableRepository(nClips)
	if err != nil {
		b.Fatal(err)
	}
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	run := func(b *testing.B, p core.Policy) {
		cache, err := core.New(repo, repo.CacheSizeForRatio(0.05), p)
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
		for i := 0; i < 3000; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("scan", func(b *testing.B) {
		p, err := igd.New(repo.N(), 2, sim.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		run(b, p)
	})
	b.Run("indexed", func(b *testing.B) {
		p, err := igd.New(repo.N(), 2, sim.DefaultSeed, igd.Indexed())
		if err != nil {
			b.Fatal(err)
		}
		run(b, p)
	})
}

// BenchmarkBlockRequest measures block-grained request cost at several
// block sizes (bookkeeping overhead of footnote 3's naive design).
func BenchmarkBlockRequest(b *testing.B) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	for _, bs := range []media.Bytes{8 * media.MB, 64 * media.MB, media.GB} {
		b.Run(bs.String(), func(b *testing.B) {
			cache, err := blocklru.New(repo, repo.CacheSizeForRatio(0.125), bs, 2)
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
			for i := 0; i < 500; i++ {
				if _, err := cache.Request(gen.Next()); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cache.Request(gen.Next()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package media

import (
	"bytes"
	"strings"
	"testing"
)

func TestRepositoryCSVRoundTrip(t *testing.T) {
	orig := PaperRepository()
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRepositoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.TotalSize() != orig.TotalSize() {
		t.Fatalf("round trip changed shape: %d clips %v", got.N(), got.TotalSize())
	}
	for i := 1; i <= got.N(); i += 97 {
		a, b := orig.Clip(ClipID(i)), got.Clip(ClipID(i))
		if a != b {
			t.Fatalf("clip %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadRepositoryCSVMalformed(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,row,x\n",
		"id,kind,sizeBytes,displayBps\nnope,audio,10,300\n",
		"id,kind,sizeBytes,displayBps\n1,smell,10,300\n",
		"id,kind,sizeBytes,displayBps\n1,audio,big,300\n",
		"id,kind,sizeBytes,displayBps\n1,audio,10,fast\n",
		"id,kind,sizeBytes,displayBps\n2,audio,10,300\n", // id out of range
		"id,kind,sizeBytes,displayBps\n1,audio,0,300\n",  // zero size
		"id,kind,sizeBytes,displayBps\n1,audio,10\n",     // short row
	}
	for i, c := range cases {
		if _, err := ReadRepositoryCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadRepositoryCSVHandAuthored(t *testing.T) {
	in := "id,kind,sizeBytes,displayBps\n" +
		"1,video,1000000,4000000\n" +
		"2,audio,10000,300000\n"
	repo, err := ReadRepositoryCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if repo.N() != 2 {
		t.Fatalf("N = %d", repo.N())
	}
	if repo.Clip(1).Kind != Video || repo.Clip(2).Kind != Audio {
		t.Fatal("kinds wrong")
	}
}

package media

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{MB * 88 / 10, "8.80MB"},
		{GB * 35 / 10, "3.50GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBitsPerSecondString(t *testing.T) {
	if got := (4 * Mbps).String(); got != "4.00Mbps" {
		t.Errorf("got %q", got)
	}
	if got := (300 * Kbps).String(); got != "300.00Kbps" {
		t.Errorf("got %q", got)
	}
	if got := BitsPerSecond(500).String(); got != "500bps" {
		t.Errorf("got %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Audio.String() != "audio" || Video.String() != "video" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestPaperRepositoryShape(t *testing.T) {
	r := PaperRepository()
	if r.N() != 576 {
		t.Fatalf("N = %d, want 576", r.N())
	}
	var audio, video int
	for _, c := range r.Clips() {
		switch c.Kind {
		case Audio:
			audio++
			if c.ID%2 != 0 {
				t.Fatalf("clip %d is audio but odd-numbered", c.ID)
			}
			if c.DisplayRate != AudioDisplayRate {
				t.Fatalf("audio clip %d has rate %v", c.ID, c.DisplayRate)
			}
		case Video:
			video++
			if c.ID%2 != 1 {
				t.Fatalf("clip %d is video but even-numbered", c.ID)
			}
			if c.DisplayRate != VideoDisplayRate {
				t.Fatalf("video clip %d has rate %v", c.ID, c.DisplayRate)
			}
		}
	}
	if audio != 288 || video != 288 {
		t.Fatalf("audio=%d video=%d, want 288 each", audio, video)
	}
}

func TestPaperRepositorySizePattern(t *testing.T) {
	r := PaperRepository()
	want := []Bytes{
		GB * 35 / 10,
		MB * 88 / 10,
		GB * 18 / 10,
		MB * 44 / 10,
		GB * 9 / 10,
		MB * 22 / 10,
	}
	for i := 1; i <= r.N(); i++ {
		if got := r.Clip(ClipID(i)).Size; got != want[(i-1)%6] {
			t.Fatalf("clip %d size = %v, want %v", i, got, want[(i-1)%6])
		}
	}
	// Each distinct size appears 96 times.
	for size, count := range r.SizeDistribution() {
		if count != 96 {
			t.Fatalf("size %v appears %d times, want 96", size, count)
		}
	}
}

func TestPaperRepositoryDisplayTimes(t *testing.T) {
	r := PaperRepository()
	// Clip 1: 3.5 GB at 4 Mbps ~ 2 hours (allowing GB-vs-binary rounding slop).
	got := r.Clip(1).DisplaySeconds()
	if math.Abs(got-7200) > 7200*0.05 {
		t.Fatalf("clip 1 display time = %vs, want ~7200s", got)
	}
	// Clip 2: 8.8 MB at 300 Kbps ~ 4 minutes.
	got = r.Clip(2).DisplaySeconds()
	if math.Abs(got-240) > 240*0.05 {
		t.Fatalf("clip 2 display time = %vs, want ~240s", got)
	}
}

func TestDisplaySecondsZeroRate(t *testing.T) {
	c := Clip{Size: GB}
	if c.DisplaySeconds() != 0 {
		t.Fatal("zero display rate should yield zero display time")
	}
}

func TestVariableRepositoryValidation(t *testing.T) {
	for _, n := range []int{0, -6, 5, 7, 575} {
		if _, err := VariableRepository(n); err == nil {
			t.Errorf("VariableRepository(%d) should fail", n)
		}
	}
	if _, err := VariableRepository(12); err != nil {
		t.Errorf("VariableRepository(12) failed: %v", err)
	}
}

func TestNewRepositoryValidation(t *testing.T) {
	if _, err := NewRepository(nil); err == nil {
		t.Error("empty repository should fail")
	}
	if _, err := NewRepository([]Clip{{ID: 2, Size: 1}}); err == nil {
		t.Error("id out of range should fail")
	}
	if _, err := NewRepository([]Clip{{ID: 1, Size: 1}, {ID: 1, Size: 1}}); err == nil {
		t.Error("duplicate id should fail")
	}
	if _, err := NewRepository([]Clip{{ID: 1, Size: 0}}); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NewRepository([]Clip{{ID: 1, Size: -5}}); err == nil {
		t.Error("negative size should fail")
	}
}

func TestNewRepositoryAcceptsUnorderedIDs(t *testing.T) {
	r, err := NewRepository([]Clip{
		{ID: 3, Size: 30},
		{ID: 1, Size: 10},
		{ID: 2, Size: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if got := r.Clip(ClipID(i)).Size; got != Bytes(i*10) {
			t.Fatalf("clip %d size = %d", i, got)
		}
	}
}

func TestLookup(t *testing.T) {
	r := PaperRepository()
	if _, ok := r.Lookup(0); ok {
		t.Error("Lookup(0) should fail")
	}
	if _, ok := r.Lookup(577); ok {
		t.Error("Lookup(577) should fail")
	}
	c, ok := r.Lookup(42)
	if !ok || c.ID != 42 {
		t.Error("Lookup(42) failed")
	}
}

func TestTotalAndMaxSize(t *testing.T) {
	r, _ := NewRepository([]Clip{
		{ID: 1, Size: 10},
		{ID: 2, Size: 30},
		{ID: 3, Size: 20},
	})
	if r.TotalSize() != 60 {
		t.Errorf("TotalSize = %d", r.TotalSize())
	}
	if r.MaxClipSize() != 30 {
		t.Errorf("MaxClipSize = %d", r.MaxClipSize())
	}
}

func TestCacheSizeForRatio(t *testing.T) {
	r := PaperRepository()
	half := r.CacheSizeForRatio(0.5)
	if diff := math.Abs(float64(half) - float64(r.TotalSize())/2); diff > 1 {
		t.Fatalf("ratio 0.5 off by %v bytes", diff)
	}
	if r.CacheSizeForRatio(0) != 0 {
		t.Fatal("ratio 0 should be 0")
	}
}

func TestEquiRepository(t *testing.T) {
	r, err := EquiRepository(100, 10*MB)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 100 {
		t.Fatalf("N = %d", r.N())
	}
	for _, c := range r.Clips() {
		if c.Size != 10*MB {
			t.Fatalf("clip %d size %v", c.ID, c.Size)
		}
	}
	if _, err := EquiRepository(0, MB); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := EquiRepository(5, 0); err == nil {
		t.Error("size=0 should fail")
	}
}

func TestPaperEquiRepository(t *testing.T) {
	r := PaperEquiRepository()
	if r.N() != 576 {
		t.Fatalf("N = %d", r.N())
	}
	paper := PaperRepository()
	wantSize := paper.TotalSize() / 576
	if r.Clip(1).Size != wantSize {
		t.Fatalf("equi clip size = %v, want mean %v", r.Clip(1).Size, wantSize)
	}
}

func TestSortClipsBySizeDesc(t *testing.T) {
	clips := []Clip{
		{ID: 1, Size: 10},
		{ID: 2, Size: 30},
		{ID: 3, Size: 10},
		{ID: 4, Size: 20},
	}
	got := SortClipsBySizeDesc(clips)
	want := []ClipID{2, 4, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSortClipsBySizeDescProperty(t *testing.T) {
	check := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		clips := make([]Clip, len(sizes))
		for i, s := range sizes {
			clips[i] = Clip{ID: ClipID(i + 1), Size: Bytes(s) + 1}
		}
		byID := make(map[ClipID]Bytes, len(clips))
		for _, c := range clips {
			byID[c.ID] = c.Size
		}
		ids := SortClipsBySizeDesc(clips)
		if len(ids) != len(clips) {
			return false
		}
		for i := 1; i < len(ids); i++ {
			if byID[ids[i]] > byID[ids[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClipPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clip(0) should panic")
		}
	}()
	PaperRepository().Clip(0)
}

// Package media models the continuous-media clips and clip repositories of
// the paper's simulation (Section 3.3 and Table 1).
//
// A Repository is the server-side database: N clips, each with an identity
// (1..N), a size in bytes and a display-bandwidth requirement. The paper's
// evaluation repository holds 576 clips — half audio, half video — with three
// sizes per media type, interleaved in descending size order.
package media

import (
	"fmt"
	"sort"
)

// Bytes is a size or capacity in bytes.
type Bytes int64

// Common byte units.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

// String renders a byte count with a human-readable unit.
func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// BitsPerSecond is a bandwidth. Display bandwidths in the paper are 4 Mbps
// for video and 300 Kbps for audio.
type BitsPerSecond int64

// Common bandwidth units.
const (
	Kbps BitsPerSecond = 1000
	Mbps BitsPerSecond = 1000 * Kbps
)

// String renders a bandwidth with a human-readable unit.
func (r BitsPerSecond) String() string {
	switch {
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Kind distinguishes audio from video clips.
type Kind uint8

// Clip kinds.
const (
	Audio Kind = iota
	Video
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Audio:
		return "audio"
	case Video:
		return "video"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ClipID identifies a clip within a repository (1-indexed, matching the
// paper's numbering of clips 1..576).
type ClipID int

// Clip is one continuous-media object in the repository.
type Clip struct {
	ID          ClipID
	Kind        Kind
	Size        Bytes
	DisplayRate BitsPerSecond // B_Display(i) in Table 1
}

// DisplaySeconds returns the clip's display time in seconds given its size
// and display bandwidth requirement.
func (c Clip) DisplaySeconds() float64 {
	if c.DisplayRate <= 0 {
		return 0
	}
	return float64(c.Size) * 8 / float64(c.DisplayRate)
}

// Repository is an immutable collection of clips, indexed by ClipID.
type Repository struct {
	clips     []Clip // clips[i] has ID i+1
	totalSize Bytes
	maxSize   Bytes
}

// NewRepository builds a repository from clips. Clip IDs must be exactly
// 1..len(clips) (any order) with positive sizes.
func NewRepository(clips []Clip) (*Repository, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("media: repository must contain at least one clip")
	}
	ordered := make([]Clip, len(clips))
	seen := make([]bool, len(clips))
	for _, c := range clips {
		if c.ID < 1 || int(c.ID) > len(clips) {
			return nil, fmt.Errorf("media: clip id %d outside 1..%d", c.ID, len(clips))
		}
		if seen[c.ID-1] {
			return nil, fmt.Errorf("media: duplicate clip id %d", c.ID)
		}
		if c.Size <= 0 {
			return nil, fmt.Errorf("media: clip %d has non-positive size %d", c.ID, c.Size)
		}
		seen[c.ID-1] = true
		ordered[c.ID-1] = c
	}
	r := &Repository{clips: ordered}
	for _, c := range ordered {
		r.totalSize += c.Size
		if c.Size > r.maxSize {
			r.maxSize = c.Size
		}
	}
	return r, nil
}

// N returns the number of clips.
func (r *Repository) N() int { return len(r.clips) }

// Clip returns the clip with the given id. It panics if id is out of range;
// use Lookup for a checked variant.
func (r *Repository) Clip(id ClipID) Clip {
	return r.clips[id-1]
}

// Lookup returns the clip with the given id and whether it exists.
func (r *Repository) Lookup(id ClipID) (Clip, bool) {
	if id < 1 || int(id) > len(r.clips) {
		return Clip{}, false
	}
	return r.clips[id-1], true
}

// Clips returns a copy of all clips ordered by ID.
func (r *Repository) Clips() []Clip {
	out := make([]Clip, len(r.clips))
	copy(out, r.clips)
	return out
}

// TotalSize returns S_DB, the sum of all clip sizes.
func (r *Repository) TotalSize() Bytes { return r.totalSize }

// MaxClipSize returns the size of the largest clip. The problem statement
// (Section 2) assumes any cache is at least this large.
func (r *Repository) MaxClipSize() Bytes { return r.maxSize }

// CacheSizeForRatio returns the cache size S_T such that S_T/S_DB equals
// ratio, rounded down to a whole byte.
func (r *Repository) CacheSizeForRatio(ratio float64) Bytes {
	return Bytes(float64(r.totalSize) * ratio)
}

// SizeDistribution summarizes the distinct clip sizes and their counts,
// sorted by descending size. Useful for documentation and tests.
func (r *Repository) SizeDistribution() map[Bytes]int {
	dist := make(map[Bytes]int)
	for _, c := range r.clips {
		dist[c.Size]++
	}
	return dist
}

// Paper repository constants (Section 3.3). Video clips display at 4 Mbps
// with display times of 2h, 60min and 30min; audio clips display at 300 Kbps
// with display times of 4, 2 and 1 minutes.
const (
	PaperRepositorySize = 576

	VideoDisplayRate BitsPerSecond = 4 * Mbps
	AudioDisplayRate BitsPerSecond = 300 * Kbps
)

// The six clip sizes of the paper repository, in the round-robin assignment
// order 3.5GB, 8.8MB, 1.8GB, 4.4MB, 0.9GB, 2.2MB.
var (
	paperVideoSizes = []Bytes{
		GB * 35 / 10, // 3.5 GB, 2-hour video
		GB * 18 / 10, // 1.8 GB, 60-minute video
		GB * 9 / 10,  // 0.9 GB, 30-minute video
	}
	paperAudioSizes = []Bytes{
		MB * 88 / 10, // 8.8 MB, 4-minute audio
		MB * 44 / 10, // 4.4 MB, 2-minute audio
		MB * 22 / 10, // 2.2 MB, 1-minute audio
	}
)

// PaperRepository constructs the 576-clip repository of Section 3.3: odd
// numbered clips are video, even numbered are audio, with sizes assigned in
// descending order round-robin so the repeating pattern of clip sizes is
// 3.5GB, 8.8MB, 1.8GB, 4.4MB, 0.9GB, 2.2MB.
func PaperRepository() *Repository {
	r, err := VariableRepository(PaperRepositorySize)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return r
}

// VariableRepository builds a paper-style variable-size repository with n
// clips (n must be a positive multiple of 6 so the size pattern tiles).
func VariableRepository(n int) (*Repository, error) {
	if n <= 0 || n%6 != 0 {
		return nil, fmt.Errorf("media: variable repository size must be a positive multiple of 6, got %d", n)
	}
	clips := make([]Clip, 0, n)
	for i := 1; i <= n; i++ {
		var c Clip
		c.ID = ClipID(i)
		// Positions cycle through the 6-size pattern; odd ids are video.
		pos := (i - 1) % 6
		if i%2 == 1 {
			c.Kind = Video
			c.DisplayRate = VideoDisplayRate
			c.Size = paperVideoSizes[pos/2]
		} else {
			c.Kind = Audio
			c.DisplayRate = AudioDisplayRate
			c.Size = paperAudioSizes[pos/2]
		}
		clips = append(clips, c)
	}
	return NewRepository(clips)
}

// EquiRepository builds a repository of n equi-sized clips, as used by
// Figures 3 and 5.a. Every clip is a video clip of the given size.
func EquiRepository(n int, size Bytes) (*Repository, error) {
	if n <= 0 {
		return nil, fmt.Errorf("media: repository size must be positive, got %d", n)
	}
	if size <= 0 {
		return nil, fmt.Errorf("media: clip size must be positive, got %d", size)
	}
	clips := make([]Clip, n)
	for i := range clips {
		clips[i] = Clip{
			ID:          ClipID(i + 1),
			Kind:        Video,
			Size:        size,
			DisplayRate: VideoDisplayRate,
		}
	}
	return NewRepository(clips)
}

// PaperEquiRepository builds the 576-clip equi-sized repository used for the
// equi-sized experiments, with each clip sized at the paper repository's mean
// clip size so cache-ratio axes stay comparable across figures.
func PaperEquiRepository() *Repository {
	paper := PaperRepository()
	mean := paper.TotalSize() / Bytes(paper.N())
	r, err := EquiRepository(PaperRepositorySize, mean)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return r
}

// SortClipsBySizeDesc returns clip IDs ordered by descending size, breaking
// ties by ascending ID. Used by policies that refine victim sets.
func SortClipsBySizeDesc(clips []Clip) []ClipID {
	sorted := make([]Clip, len(clips))
	copy(sorted, clips)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size > sorted[j].Size
		}
		return sorted[i].ID < sorted[j].ID
	})
	ids := make([]ClipID, len(sorted))
	for i, c := range sorted {
		ids[i] = c.ID
	}
	return ids
}

package media

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the repository as CSV with the header
// id,kind,sizeBytes,displayBps — the interchange format for custom catalogs
// (cachesim -repofile).
func (r *Repository) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"id", "kind", "sizeBytes", "displayBps"}); err != nil {
		return err
	}
	for _, c := range r.clips {
		row := []string{
			strconv.Itoa(int(c.ID)),
			c.Kind.String(),
			strconv.FormatInt(int64(c.Size), 10),
			strconv.FormatInt(int64(c.DisplayRate), 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadRepositoryCSV parses a repository written by WriteCSV (or authored by
// hand). Clip ids must be exactly 1..N; kinds are "audio" or "video".
func ReadRepositoryCSV(r io.Reader) (*Repository, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("media: reading repository csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("media: empty repository csv")
	}
	head := rows[0]
	if len(head) != 4 || head[0] != "id" || head[1] != "kind" || head[2] != "sizeBytes" || head[3] != "displayBps" {
		return nil, fmt.Errorf("media: bad repository csv header %v", head)
	}
	clips := make([]Clip, 0, len(rows)-1)
	for i, row := range rows[1:] {
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("media: row %d: bad id %q: %w", i+1, row[0], err)
		}
		var kind Kind
		switch row[1] {
		case "audio":
			kind = Audio
		case "video":
			kind = Video
		default:
			return nil, fmt.Errorf("media: row %d: unknown kind %q", i+1, row[1])
		}
		size, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("media: row %d: bad size %q: %w", i+1, row[2], err)
		}
		rate, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("media: row %d: bad display rate %q: %w", i+1, row[3], err)
		}
		clips = append(clips, Clip{
			ID:          ClipID(id),
			Kind:        kind,
			Size:        Bytes(size),
			DisplayRate: BitsPerSecond(rate),
		})
	}
	return NewRepository(clips)
}

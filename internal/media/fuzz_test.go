package media

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRepositoryCSV hardens the catalog importer (cachesim -repofile):
// it must never panic on malformed input, and any repository it accepts
// must survive a WriteCSV/ReadRepositoryCSV round trip unchanged.
func FuzzReadRepositoryCSV(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := PaperRepository().WriteCSV(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	f.Add("")
	f.Add("id,kind,sizeBytes,displayBps\n")
	f.Add("id,kind,sizeBytes,displayBps\n1,video,1048576,3500000\n")
	f.Add("id,kind,sizeBytes,displayBps\n2,video,1048576,3500000\n") // ids not 1..N
	f.Add("id,kind,sizeBytes,displayBps\n1,tape,1048576,3500000\n")
	f.Add("id,kind,sizeBytes,displayBps\n1,audio,-5,128000\n")
	f.Add("id,kind\n1,audio\n")
	f.Add(strings.Repeat("a,b,c,d\n", 50))

	f.Fuzz(func(t *testing.T, input string) {
		repo, err := ReadRepositoryCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := repo.WriteCSV(&buf); err != nil {
			t.Fatalf("rewriting accepted repository: %v", err)
		}
		again, err := ReadRepositoryCSV(&buf)
		if err != nil {
			t.Fatalf("re-reading rewritten repository: %v", err)
		}
		if again.N() != repo.N() || again.TotalSize() != repo.TotalSize() {
			t.Fatalf("round trip changed the repository: %d/%v vs %d/%v",
				repo.N(), repo.TotalSize(), again.N(), again.TotalSize())
		}
		for id := ClipID(1); id <= ClipID(repo.N()); id++ {
			a, b := repo.Clip(id), again.Clip(id)
			if a != b {
				t.Fatalf("round trip changed clip %d: %+v vs %+v", id, a, b)
			}
		}
	})
}

package fault

import (
	"strings"
	"testing"
)

// FuzzParseProfile hardens the profile parser used by the -faults flags:
// it must never panic, anything it accepts must validate, and rendering an
// accepted profile must reparse to the same profile (struct-identical when
// enabled; a String fixpoint always — a disabled profile with stray
// defaults like "hold=5s" legitimately collapses to "off").
func FuzzParseProfile(f *testing.F) {
	f.Add("off")
	f.Add("p=0.05")
	f.Add("p=0.05,timeout=0.02,hold=2s")
	f.Add("partial=0.01,latency=20ms,jitter=5ms")
	f.Add("error=1")
	f.Add("p=0.6,timeout=0.6") // rates sum past 1
	f.Add("p=NaN")
	f.Add("latency=-5ms")
	f.Add("hold=5s") // non-default field on a disabled profile
	f.Add(strings.Repeat("p=0,", 30) + "p=0")

	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseProfile(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted profile %q fails validation: %v", input, err)
		}
		rendered := p.String()
		again, err := ParseProfile(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted profile %q does not reparse: %q: %v",
				input, rendered, err)
		}
		if p.Enabled() && again != p {
			t.Fatalf("round trip changed profile: %+v vs %+v (via %q)", p, again, rendered)
		}
		if again.String() != rendered {
			t.Fatalf("String not a fixpoint: %q reparsed to %q", rendered, again.String())
		}
	})
}

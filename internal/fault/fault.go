// Package fault is a deterministic, seed-driven fault injector for the
// repository's network paths. The paper's FMC setting is a mobile device
// streaming clips from a remote repository over a flaky wireless link
// (Section 1), yet an idealized reproduction fetches every miss flawlessly;
// this package supplies the controlled disturbance — fetch errors, stalls,
// partial deliveries, added latency — under which cache behavior must stay
// correct (and under which hit rates can honestly be reported).
//
// Everything is derived from internal/randutil's splittable generator, so a
// fault schedule is a pure function of (profile, seed): the same seed always
// yields the same fault trace, at any concurrency, in the spirit of the
// paper's footnote 5 determinism discipline. Consumers derive per-component
// injectors with Split so adding one consumer never perturbs another.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mediacache/internal/randutil"
)

// Kind classifies one injected fault.
type Kind uint8

// Fault kinds. None means the operation proceeds unharmed (apart from any
// injected latency).
const (
	// None: no fault; the fetch succeeds.
	None Kind = iota
	// Error: the fetch fails outright (the base station rejects the stream,
	// the link drops mid-handshake).
	Error
	// Timeout: the fetch stalls for the profile's Hold duration and then
	// fails — the shape that exercises client-side deadlines.
	Timeout
	// Partial: only a fraction of the payload arrives before the link dies.
	Partial
)

// NumKinds is the number of distinct fault kinds, for counters indexed by
// Kind.
const NumKinds = 4

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Timeout:
		return "timeout"
	case Partial:
		return "partial"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Fault is one injector decision: what goes wrong for the next operation.
type Fault struct {
	// Kind is the failure mode (None for a clean operation).
	Kind Kind
	// Latency is extra delay to apply before the outcome, drawn from the
	// profile's Latency ± Jitter. Zero when the profile injects no latency.
	Latency time.Duration
	// Fraction is the delivered payload fraction in [0, 1) for Partial
	// faults; zero otherwise.
	Fraction float64
}

// Failed reports whether the fault prevents the operation from completing.
func (f Fault) Failed() bool { return f.Kind != None }

// DefaultHold is how long a Timeout fault stalls before failing when the
// profile does not say otherwise.
const DefaultHold = 2 * time.Second

// Profile describes a fault distribution. The zero value is the disabled
// profile: no faults, no latency — the ideal channel the repository modeled
// before this package existed.
type Profile struct {
	// ErrorRate is the per-operation probability of an outright failure.
	ErrorRate float64
	// TimeoutRate is the per-operation probability of a stall-then-fail.
	TimeoutRate float64
	// PartialRate is the per-operation probability of a truncated delivery.
	PartialRate float64
	// Latency is the mean injected latency applied to every operation
	// (faulty or not); zero disables latency injection.
	Latency time.Duration
	// Jitter spreads the injected latency uniformly over Latency ± Jitter.
	Jitter time.Duration
	// Hold is how long a Timeout fault stalls before failing; DefaultHold
	// when zero.
	Hold time.Duration
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.ErrorRate > 0 || p.TimeoutRate > 0 || p.PartialRate > 0 || p.Latency > 0
}

// FailureRate returns the combined probability that an operation fails.
func (p Profile) FailureRate() float64 {
	return p.ErrorRate + p.TimeoutRate + p.PartialRate
}

// HoldOrDefault returns Hold, substituting DefaultHold for zero.
func (p Profile) HoldOrDefault() time.Duration {
	if p.Hold <= 0 {
		return DefaultHold
	}
	return p.Hold
}

// Validate checks rates and durations for sanity.
func (p Profile) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"error", p.ErrorRate}, {"timeout", p.TimeoutRate}, {"partial", p.PartialRate}} {
		if !(r.v >= 0 && r.v <= 1) { // written to reject NaN too
			return fmt.Errorf("fault: %s rate must be in [0,1], got %v", r.name, r.v)
		}
	}
	if sum := p.FailureRate(); sum > 1 {
		return fmt.Errorf("fault: rates sum to %v, exceeding 1", sum)
	}
	if p.Latency < 0 {
		return fmt.Errorf("fault: latency must be non-negative, got %v", p.Latency)
	}
	if p.Jitter < 0 {
		return fmt.Errorf("fault: jitter must be non-negative, got %v", p.Jitter)
	}
	if p.Jitter > p.Latency {
		return fmt.Errorf("fault: jitter %v exceeds latency %v", p.Jitter, p.Latency)
	}
	if p.Hold < 0 {
		return fmt.Errorf("fault: hold must be non-negative, got %v", p.Hold)
	}
	return nil
}

// String renders the profile in the form ParseProfile accepts ("off" for the
// disabled profile). Only non-default fields are emitted, so the rendering
// round-trips.
func (p Profile) String() string {
	if !p.Enabled() {
		return "off"
	}
	var parts []string
	add := func(key string, v float64) {
		if v > 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("p", p.ErrorRate)
	add("timeout", p.TimeoutRate)
	add("partial", p.PartialRate)
	if p.Latency > 0 {
		parts = append(parts, "latency="+p.Latency.String())
	}
	if p.Jitter > 0 {
		parts = append(parts, "jitter="+p.Jitter.String())
	}
	if p.Hold > 0 {
		parts = append(parts, "hold="+p.Hold.String())
	}
	return strings.Join(parts, ",")
}

// ParseProfile parses a textual fault profile: comma-separated key=value
// pairs. "" and "off" yield the disabled profile.
//
//	p=0.05                        5% of fetches fail
//	p=0.05,timeout=0.02,hold=2s   plus 2% stalls of 2s
//	partial=0.01,latency=20ms,jitter=5ms
//
// Keys: p (or error) / timeout / partial are probabilities in [0,1];
// latency / jitter / hold are Go durations.
func ParseProfile(s string) (Profile, error) {
	var p Profile
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return Profile{}, fmt.Errorf("fault: bad profile field %q: want key=value", field)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "p", "error":
			v, err := parseRate(key, value)
			if err != nil {
				return Profile{}, err
			}
			p.ErrorRate = v
		case "timeout":
			v, err := parseRate(key, value)
			if err != nil {
				return Profile{}, err
			}
			p.TimeoutRate = v
		case "partial":
			v, err := parseRate(key, value)
			if err != nil {
				return Profile{}, err
			}
			p.PartialRate = v
		case "latency", "jitter", "hold":
			d, err := time.ParseDuration(value)
			if err != nil {
				return Profile{}, fmt.Errorf("fault: bad %s %q: %v", key, value, err)
			}
			switch key {
			case "latency":
				p.Latency = d
			case "jitter":
				p.Jitter = d
			case "hold":
				p.Hold = d
			}
		default:
			return Profile{}, fmt.Errorf("fault: unknown profile key %q (want p/error, timeout, partial, latency, jitter, hold)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// parseRate parses a probability field.
func parseRate(key, value string) (float64, error) {
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return 0, fmt.Errorf("fault: bad %s %q: %v", key, value, err)
	}
	return v, nil
}

// Injector draws a deterministic fault schedule from a profile. An Injector
// is not safe for concurrent use; give each concurrent consumer its own via
// Split (cells of a parallel sweep derive theirs from sim.CellSeed, so the
// schedule never depends on worker interleaving).
type Injector struct {
	profile Profile
	src     *randutil.Source
	counts  [NumKinds]uint64
}

// New returns an injector drawing from profile with its own stream seeded by
// seed.
func New(profile Profile, seed uint64) *Injector {
	return &Injector{profile: profile, src: randutil.NewSource(seed)}
}

// Split derives an independent child injector with the same profile; label
// decorrelates the child's stream (use distinct labels per consumer).
func (in *Injector) Split(label string) *Injector {
	return &Injector{profile: in.profile, src: in.src.Split(label)}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.profile }

// Next returns the fault decision for the next operation. The draw sequence
// is fixed — one uniform for the kind, one for a Partial fraction, one for
// latency jitter — so schedules are reproducible byte-for-byte from the
// seed.
func (in *Injector) Next() Fault {
	var f Fault
	p := in.profile
	if p.Enabled() {
		u := in.src.Float64()
		switch {
		case u < p.ErrorRate:
			f.Kind = Error
		case u < p.ErrorRate+p.TimeoutRate:
			f.Kind = Timeout
		case u < p.ErrorRate+p.TimeoutRate+p.PartialRate:
			f.Kind = Partial
			f.Fraction = in.src.Float64()
		}
		if p.Latency > 0 {
			f.Latency = p.Latency
			if p.Jitter > 0 {
				f.Latency += time.Duration((in.src.Float64()*2 - 1) * float64(p.Jitter))
			}
		}
	}
	in.counts[f.Kind]++
	return f
}

// Count returns how many decisions of the given kind this injector has
// produced.
func (in *Injector) Count(k Kind) uint64 {
	if int(k) >= len(in.counts) {
		return 0
	}
	return in.counts[k]
}

// Injected returns the total number of non-None faults produced.
func (in *Injector) Injected() uint64 {
	var total uint64
	for k := Error; k < NumKinds; k++ {
		total += in.counts[k]
	}
	return total
}

// Schedule materializes the next n decisions — the fault trace tests pin to
// assert determinism.
func (in *Injector) Schedule(n int) []Fault {
	out := make([]Fault, n)
	for i := range out {
		out[i] = in.Next()
	}
	return out
}

// Kinds lists the failure kinds in stable order, for metrics label loops.
func Kinds() []Kind {
	return []Kind{Error, Timeout, Partial}
}

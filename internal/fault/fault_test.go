package fault

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestParseProfile(t *testing.T) {
	cases := []struct {
		in      string
		want    Profile
		wantErr bool
	}{
		{in: "", want: Profile{}},
		{in: "off", want: Profile{}},
		{in: "p=0.05", want: Profile{ErrorRate: 0.05}},
		{in: "error=0.05", want: Profile{ErrorRate: 0.05}},
		{in: "p=0.1,timeout=0.02,partial=0.01",
			want: Profile{ErrorRate: 0.1, TimeoutRate: 0.02, PartialRate: 0.01}},
		{in: "latency=20ms,jitter=5ms",
			want: Profile{Latency: 20 * time.Millisecond, Jitter: 5 * time.Millisecond}},
		{in: "p=0.2,hold=50ms",
			want: Profile{ErrorRate: 0.2, Hold: 50 * time.Millisecond}},
		{in: " p=0.05 , timeout=0.1 ",
			want: Profile{ErrorRate: 0.05, TimeoutRate: 0.1}},
		{in: "p=1.5", wantErr: true},
		{in: "p=-0.1", wantErr: true},
		{in: "p=0.6,timeout=0.6", wantErr: true}, // rates sum past 1
		{in: "p", wantErr: true},
		{in: "p=abc", wantErr: true},
		{in: "latency=zz", wantErr: true},
		{in: "jitter=10ms", wantErr: true}, // jitter without latency
		{in: "bogus=1", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseProfile(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseProfile(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseProfile(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestProfileStringRoundTrip(t *testing.T) {
	profiles := []Profile{
		{},
		{ErrorRate: 0.05},
		{ErrorRate: 0.1, TimeoutRate: 0.02, PartialRate: 0.01},
		{ErrorRate: 0.2, Latency: 20 * time.Millisecond, Jitter: 5 * time.Millisecond, Hold: time.Second},
	}
	for _, p := range profiles {
		back, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", p.String(), err)
		}
		if back != p {
			t.Errorf("round trip of %q changed profile: %+v -> %+v", p.String(), p, back)
		}
	}
}

func TestDisabledProfile(t *testing.T) {
	if (Profile{}).Enabled() {
		t.Fatal("zero profile reports enabled")
	}
	in := New(Profile{}, 1)
	for i, f := range in.Schedule(100) {
		if f != (Fault{}) {
			t.Fatalf("decision %d: disabled injector produced %+v", i, f)
		}
	}
	if in.Injected() != 0 {
		t.Fatalf("disabled injector counted %d faults", in.Injected())
	}
	if in.Count(None) != 100 {
		t.Fatalf("None count = %d, want 100", in.Count(None))
	}
}

// TestScheduleDeterministic pins the acceptance criterion: two injectors
// with the same (profile, seed) produce identical fault schedules, and a
// different seed produces a different one.
func TestScheduleDeterministic(t *testing.T) {
	p := Profile{ErrorRate: 0.1, TimeoutRate: 0.05, PartialRate: 0.05,
		Latency: 10 * time.Millisecond, Jitter: 4 * time.Millisecond}
	a := New(p, 42).Schedule(5000)
	b := New(p, 42).Schedule(5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	c := New(p, 43).Schedule(5000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestSplitDecorrelates(t *testing.T) {
	p := Profile{ErrorRate: 0.5}
	parent := New(p, 7)
	a := parent.Split("link").Schedule(1000)
	b := parent.Split("server").Schedule(1000)
	same := 0
	for i := range a {
		if a[i].Kind == b[i].Kind {
			same++
		}
	}
	// Independent 50/50 streams agree about half the time; identical streams
	// agree always.
	if same > 900 {
		t.Fatalf("split streams agree on %d/1000 decisions; not decorrelated", same)
	}
}

func TestRatesObserved(t *testing.T) {
	p := Profile{ErrorRate: 0.1, TimeoutRate: 0.05, PartialRate: 0.02}
	in := New(p, 99)
	const n = 50000
	in.Schedule(n)
	checks := []struct {
		kind Kind
		rate float64
	}{{Error, 0.1}, {Timeout, 0.05}, {Partial, 0.02}}
	for _, c := range checks {
		got := float64(in.Count(c.kind)) / n
		if math.Abs(got-c.rate) > 0.01 {
			t.Errorf("%s rate = %.4f, want ~%.2f", c.kind, got, c.rate)
		}
	}
	if in.Injected() != in.Count(Error)+in.Count(Timeout)+in.Count(Partial) {
		t.Error("Injected does not sum the failure kinds")
	}
}

func TestLatencyBounds(t *testing.T) {
	p := Profile{Latency: 20 * time.Millisecond, Jitter: 5 * time.Millisecond}
	in := New(p, 3)
	for i, f := range in.Schedule(2000) {
		if f.Latency < 15*time.Millisecond || f.Latency > 25*time.Millisecond {
			t.Fatalf("decision %d: latency %v outside 20ms±5ms", i, f.Latency)
		}
	}
}

func TestPartialFraction(t *testing.T) {
	p := Profile{PartialRate: 1}
	in := New(p, 11)
	for i, f := range in.Schedule(500) {
		if f.Kind != Partial {
			t.Fatalf("decision %d: kind %v, want partial", i, f.Kind)
		}
		if f.Fraction < 0 || f.Fraction >= 1 {
			t.Fatalf("decision %d: fraction %v outside [0,1)", i, f.Fraction)
		}
		if !f.Failed() {
			t.Fatalf("decision %d: partial fault reports not failed", i)
		}
	}
}

func TestHoldOrDefault(t *testing.T) {
	if got := (Profile{}).HoldOrDefault(); got != DefaultHold {
		t.Errorf("zero hold = %v, want %v", got, DefaultHold)
	}
	if got := (Profile{Hold: time.Second}).HoldOrDefault(); got != time.Second {
		t.Errorf("explicit hold = %v, want 1s", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{None: "none", Error: "error", Timeout: "timeout", Partial: "partial", Kind(9): "Kind(9)"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

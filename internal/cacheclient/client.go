// Package cacheclient is a resilient HTTP client for the cacheserver /v1
// API: the mobile device's view of a flaky wireless link. Every call
// retries transient failures (network errors, 5xx, 429) with exponential
// backoff and deterministic seeded jitter, applies a per-attempt timeout,
// and routes through a simple circuit breaker so a dead server is probed
// instead of hammered. The jitter stream comes from the same splittable
// PRNG as the simulators (internal/randutil), so a client with a fixed
// seed backs off on an exactly reproducible schedule — chaos experiments
// against `cacheserver -faults` are replayable end to end.
package cacheclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/media"
	"mediacache/internal/randutil"
)

// Defaults for Config zero values.
const (
	DefaultMaxAttempts    = 8
	DefaultBaseBackoff    = 10 * time.Millisecond
	DefaultMaxBackoff     = 2 * time.Second
	DefaultAttemptTimeout = 5 * time.Second
)

// Observer receives client resilience events. Implementations must be
// safe for concurrent use; internal/obs bridges them into the metrics
// registry.
type Observer interface {
	// Retry reports that attempt (1-based) failed with err and the client
	// will sleep delay before the next attempt.
	Retry(attempt int, delay time.Duration, err error)
	// BreakerChange reports a circuit-breaker state transition.
	BreakerChange(from, to BreakerState)
}

// Config configures a Client. The zero value of every field selects a
// sensible default; only BaseURL is required.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8377".
	BaseURL string
	// HTTPClient issues the requests; http.DefaultClient when nil.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (first attempt included).
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the delay (Retry-After hints included).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt.
	AttemptTimeout time.Duration
	// Seed feeds the deterministic jitter stream.
	Seed uint64
	// ClientID, when set, is stamped into the X-Client-ID header of every
	// request so server request logs (cacheserver -reqlog) can sessionize
	// this client's traffic per identity.
	ClientID string
	// Breaker configures the circuit breaker.
	Breaker BreakerConfig
	// Observer receives retry and breaker events; nil discards.
	Observer Observer
	// Sleep substitutes the backoff sleep, for tests; nil uses a
	// context-aware real sleep.
	Sleep func(context.Context, time.Duration) error
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Client calls the cacheserver /v1 API with retries, backoff and a
// circuit breaker. Safe for concurrent use.
type Client struct {
	cfg     Config
	base    string
	breaker *breaker

	mu  sync.Mutex
	src *randutil.Source // jitter stream; guarded by mu

	retries uint64 // total retry sleeps, guarded by mu

	// noBatch latches after the server 404s POST /v1/batch (a pre-batch
	// deployment): later GetBatch calls go straight to per-clip GETs
	// instead of re-probing the missing route on every batch.
	noBatch atomic.Bool

	// noDelete latches after the server 405s DELETE /v1/clips/{id} (a
	// pre-churn deployment, whose method-patterned mux knows the path but
	// not the method): later Delete calls fail fast with
	// ErrDeleteUnsupported instead of re-probing.
	noDelete atomic.Bool
}

// ErrDeleteUnsupported reports that the server predates catalog
// invalidation (DELETE /v1/clips/{id} answers 405). The client latches the
// first such answer, so subsequent Delete calls return this error without
// a round trip.
var ErrDeleteUnsupported = errors.New("cacheclient: server does not support clip invalidation")

// New builds a client for the server at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("cacheclient: BaseURL is required")
	}
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:  cfg,
		base: strings.TrimRight(cfg.BaseURL, "/"),
		src:  randutil.NewSource(cfg.Seed).Split("cacheclient"),
	}
	c.breaker = newBreaker(cfg.Breaker, cfg.Observer)
	return c, nil
}

// Retries returns the total number of retry sleeps the client has taken.
func (c *Client) Retries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// Breaker returns the circuit breaker's current state.
func (c *Client) Breaker() BreakerState { return c.breaker.State() }

// BreakerOpens returns how many times the breaker has tripped open.
func (c *Client) BreakerOpens() uint64 { return c.breaker.Opens() }

// StatusError reports a non-2xx response that exhausted its retries (or
// is not retryable).
type StatusError struct {
	Status int
	Body   string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("cacheclient: server answered %d: %s", e.Status, e.Body)
}

// retryable reports whether a response status is worth retrying: server
// errors model the flaky link, 429 is an explicit back-off request.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// backoff returns the delay before attempt n (1-based): an exponential
// base with up to 50% deterministic jitter, capped at MaxBackoff, floored
// at any Retry-After hint the server sent.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := float64(c.cfg.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if max := float64(c.cfg.MaxBackoff); d > max {
		d = max
	}
	c.mu.Lock()
	jitter := 0.5 + 0.5*c.src.Float64()
	c.retries++
	c.mu.Unlock()
	delay := time.Duration(d * jitter)
	if retryAfter > delay {
		delay = retryAfter
	}
	if delay > c.cfg.MaxBackoff {
		delay = c.cfg.MaxBackoff
	}
	return delay
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds ("120") or HTTP-date ("Fri, 08 Aug 2026 12:00:00 GMT",
// evaluated against now). It returns 0 when absent, malformed, or already
// in the past; callers clamp the hint to MaxBackoff via backoff().
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	// http.ParseTime tries the three RFC 9110 HTTP-date layouts (IMF-fixdate,
	// RFC 850, ANSI C asctime).
	when, err := http.ParseTime(h)
	if err != nil {
		return 0
	}
	d := when.Sub(now)
	if d < 0 {
		return 0
	}
	return d
}

// do issues method path, retrying transient failures, and decodes a 2xx
// JSON body into out (skipped when out is nil). It returns the last error
// once MaxAttempts is exhausted, ctx expires, or a non-retryable status
// arrives.
func (c *Client) do(ctx context.Context, method, path string, out interface{}) error {
	return c.doBody(ctx, method, path, nil, out)
}

// doBody is do with a JSON request body (nil for bodiless calls). The body
// bytes are replayed on every retry attempt.
func (c *Client) doBody(ctx context.Context, method, path string, body []byte, out interface{}) error {
	return c.run(ctx, func(actx context.Context) (int, time.Duration, error) {
		return c.attempt(actx, method, path, body, out)
	})
}

// run drives one logical call through the breaker/retry/backoff machinery.
// attempt performs a single exchange, returning the HTTP status (0 for
// transport errors) and any Retry-After hint.
func (c *Client) run(ctx context.Context, attempt func(context.Context) (int, time.Duration, error)) error {
	var lastErr error
	for n := 1; ; n++ {
		if err := c.breaker.Allow(ctx, c.cfg.Sleep); err != nil {
			return err
		}
		status, retryAfter, err := attempt(ctx)
		if err == nil {
			c.breaker.Success()
			return nil
		}
		lastErr = err
		// Context errors are terminal: the caller's deadline, not the link.
		if ctx.Err() != nil {
			return lastErr
		}
		if status != 0 && !retryable(status) {
			c.breaker.Success() // the server answered; the link is fine
			return lastErr
		}
		c.breaker.Failure()
		if n >= c.cfg.MaxAttempts {
			return fmt.Errorf("cacheclient: %d attempts exhausted: %w", n, lastErr)
		}
		delay := c.backoff(n, retryAfter)
		if obs := c.cfg.Observer; obs != nil {
			obs.Retry(n, delay, lastErr)
		}
		if err := c.cfg.Sleep(ctx, delay); err != nil {
			return lastErr
		}
	}
}

// attempt is one HTTP exchange. status is 0 for transport errors;
// retryAfter carries the server's back-off hint on failures.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out interface{}) (status int, retryAfter time.Duration, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.cfg.ClientID != "" {
		req.Header.Set(api.ClientIDHeader, c.cfg.ClientID)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
			&StatusError{Status: resp.StatusCode, Body: strings.TrimSpace(string(msg))}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, 0, fmt.Errorf("cacheclient: decoding %s: %w", path, err)
		}
	}
	return resp.StatusCode, 0, nil
}

// ClipResult is the response of GET /v1/clips/{id}; the wire contract
// lives in internal/api.
type ClipResult = api.Clip

// Clip requests clip id, riding out transient faults.
func (c *Client) Clip(ctx context.Context, id media.ClipID) (ClipResult, error) {
	var out ClipResult
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/clips/%d", id), &out)
	return out, err
}

// Stats is the response of GET /v1/stats; the wire contract lives in
// internal/api.
type Stats = api.Stats

// Stats fetches the server's accumulated statistics, aggregated over every
// shard on a sharded server.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", &out)
	return out, err
}

// Shards fetches the per-shard occupancy and hit statistics of a sharded
// server (GET /v1/shards), in shard-index order.
func (c *Client) Shards(ctx context.Context) ([]api.Shard, error) {
	var out api.Shards
	err := c.do(ctx, http.MethodGet, "/v1/shards", &out)
	return out.Shards, err
}

// Batch submits an ordered list of clip references as one POST /v1/batch
// call, riding out transient faults like every other call (the whole batch
// retries as a unit; the server's per-item semantics make replays safe for
// the simulated cache). The error is non-nil only for whole-batch failures;
// per-item failures come back inside the response with their status codes.
func (c *Client) Batch(ctx context.Context, items []api.BatchItem) (api.BatchResponse, error) {
	var out api.BatchResponse
	body, err := json.Marshal(api.BatchRequest{Items: items})
	if err != nil {
		return out, err
	}
	err = c.doBody(ctx, http.MethodPost, "/v1/batch", body, &out)
	return out, err
}

// GetBatch requests a list of clips in one round trip via POST /v1/batch
// and returns one result per id, positionally. Against a pre-batch server
// (the route 404s) it falls back to per-clip GETs — transparently, and only
// probing the missing route once — so callers can batch unconditionally.
func (c *Client) GetBatch(ctx context.Context, ids []media.ClipID) ([]api.BatchItemResult, error) {
	if !c.noBatch.Load() {
		items := make([]api.BatchItem, len(ids))
		for i, id := range ids {
			items[i] = api.BatchItem{Clip: id}
		}
		resp, err := c.Batch(ctx, items)
		var se *StatusError
		if err == nil {
			return resp.Items, nil
		}
		if !errors.As(err, &se) || se.Status != http.StatusNotFound {
			return nil, err
		}
		c.noBatch.Store(true)
	}
	// Pre-batch server: issue the clips individually. Per-clip 404s become
	// per-item results, matching the batch route's envelope.
	out := make([]api.BatchItemResult, len(ids))
	for i, id := range ids {
		res := &out[i]
		res.Clip = id
		clip, err := c.Clip(ctx, id)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) {
				res.Status = se.Status
				res.Error = se.Body
				continue
			}
			return nil, err
		}
		res.Status = http.StatusOK
		res.Outcome = clip.Outcome
		res.Hit = clip.Hit
		res.SizeBytes = clip.SizeBytes
		res.LatencySeconds = clip.LatencySeconds
		res.Range = clip.Range
	}
	return out, nil
}

// Delete invalidates clip id's cached bytes (DELETE /v1/clips/{id}),
// riding out transient faults. Idempotent on the server: deleting a
// non-resident clip succeeds. A clip outside the repository surfaces as a
// *StatusError with Status 404. Against a pre-churn server — whose mux
// answers 405 for the known path with an unknown method — Delete returns
// ErrDeleteUnsupported and latches, so callers can probe once and degrade.
func (c *Client) Delete(ctx context.Context, id media.ClipID) error {
	if c.noDelete.Load() {
		return ErrDeleteUnsupported
	}
	err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/clips/%d", id), nil)
	var se *StatusError
	if errors.As(err, &se) && se.Status == http.StatusMethodNotAllowed {
		c.noDelete.Store(true)
		return ErrDeleteUnsupported
	}
	return err
}

// Healthz reports whether the server is live and internally consistent.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil)
}

// Reset clears the server's cache, statistics and policy state.
func (c *Client) Reset(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/reset", nil)
}

package cacheclient

// retryafter_test.go pins the ISSUE 9 satellite fix: Retry-After arrives in
// either RFC 9110 form — delay-seconds or HTTP-date — and the hint is
// clamped by MaxBackoff on its way into the retry schedule.

import (
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"absent", "", 0},
		{"delta seconds", "3", 3 * time.Second},
		{"delta zero", "0", 0},
		{"delta negative", "-5", 0},
		{"delta garbage", "soon", 0},
		{"imf fixdate future", "Fri, 08 Aug 2026 12:00:30 GMT", 30 * time.Second},
		{"imf fixdate past", "Fri, 08 Aug 2026 11:59:00 GMT", 0},
		{"imf fixdate now", "Fri, 08 Aug 2026 12:00:00 GMT", 0},
		{"rfc850 future", "Friday, 08-Aug-26 12:01:00 GMT", time.Minute},
		{"asctime future", "Fri Aug  8 12:00:10 2026", 10 * time.Second},
		{"malformed date", "Fri, 99 Aug 2026 12:00:00 GMT", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.h, now); got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.h, got, tc.want)
			}
		})
	}
}

// TestRetryAfterClampedByMaxBackoff routes a huge HTTP-date hint through the
// backoff schedule and asserts the sleep never exceeds MaxBackoff.
func TestRetryAfterClampedByMaxBackoff(t *testing.T) {
	c, err := New(Config{
		BaseURL:    "http://example.invalid",
		MaxBackoff: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	hint := parseRetryAfter("Sat, 08 Aug 2026 12:00:00 GMT", now.AddDate(-1, 0, 0))
	if hint <= 250*time.Millisecond {
		t.Fatalf("setup: hint %v should exceed the cap", hint)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		if d := c.backoff(attempt, hint); d > 250*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds MaxBackoff", attempt, d)
		}
	}
}

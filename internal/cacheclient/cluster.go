// cluster.go — the cooperative-tier calls (ISSUE 9): the peer-serve read,
// the residency digest, the cluster status, and raw snapshot transfer for
// ring rebalancing. Every call rides the same breaker/retry/backoff
// machinery as the public API; a node gives each peer its own Client, so
// each peer gets its own breaker and its own jitter stream.
package cacheclient

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/media"
)

// ClusterClip asks a peer to serve clip id from its resident set
// (GET /v1/cluster/clips/{id}). The peer answers 200 only when the clip is
// fully resident; a miss surfaces as a *StatusError with Status 404, which
// is not retried — a non-resident peer stays non-resident for the duration
// of any sane retry schedule.
func (c *Client) ClusterClip(ctx context.Context, id media.ClipID) (api.ClusterClip, error) {
	var out api.ClusterClip
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/cluster/clips/%d", id), &out)
	return out, err
}

// ClusterDigest fetches a peer's residency digest (GET /v1/cluster/digest).
func (c *Client) ClusterDigest(ctx context.Context) (api.ClusterDigest, error) {
	var out api.ClusterDigest
	err := c.do(ctx, http.MethodGet, "/v1/cluster/digest", &out)
	return out, err
}

// ClusterStatus fetches a node's ring membership and cooperative counters
// (GET /v1/cluster). Non-clustered servers answer 404.
func (c *Client) ClusterStatus(ctx context.Context) (api.ClusterStatus, error) {
	var out api.ClusterStatus
	err := c.do(ctx, http.MethodGet, "/v1/cluster", &out)
	return out, err
}

// Snapshot pulls the server's portable cache snapshot (GET /v1/snapshot)
// as raw gob bytes — kept opaque so a rebalance moves state byte-for-byte
// without a decode/re-encode round trip.
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	var out []byte
	err := c.run(ctx, func(actx context.Context) (int, time.Duration, error) {
		return c.attemptRaw(actx, http.MethodGet, "/v1/snapshot", nil, "", &out)
	})
	return out, err
}

// Restore replaces the server's cache state with a snapshot previously
// pulled via Snapshot (POST /v1/restore). The body bytes are replayed on
// every retry attempt; restore is idempotent on the server.
func (c *Client) Restore(ctx context.Context, snapshot []byte) error {
	return c.run(ctx, func(actx context.Context) (int, time.Duration, error) {
		return c.attemptRaw(actx, http.MethodPost, "/v1/restore", snapshot,
			"application/octet-stream", nil)
	})
}

// attemptRaw is attempt for non-JSON exchanges: the request body (if any)
// is sent as contentType, and a 2xx response body is returned verbatim in
// *out when out is non-nil.
func (c *Client) attemptRaw(ctx context.Context, method, path string, body []byte, contentType string, out *[]byte) (status int, retryAfter time.Duration, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
			&StatusError{Status: resp.StatusCode, Body: strings.TrimSpace(string(msg))}
	}
	if out != nil {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, 0, fmt.Errorf("cacheclient: reading %s: %w", path, err)
		}
		*out = b
	}
	return resp.StatusCode, 0, nil
}

package cacheclient

import (
	"context"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's state.
type BreakerState int32

// Breaker states. Closed passes requests through; Open means the failure
// threshold tripped and callers wait out the cooldown; HalfOpen admits
// probes whose outcome decides between Closed and Open.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Defaults for BreakerConfig zero values.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 100 * time.Millisecond
)

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	Threshold int
	// Cooldown is how long the breaker stays open before probing.
	Cooldown time.Duration
	// Disabled turns the breaker off entirely (always closed).
	Disabled bool
	// now substitutes the clock, for tests.
	now func() time.Time
}

// withDefaults fills unset fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// breaker is a minimal consecutive-failure circuit breaker. Rather than
// hard-failing while open, Allow waits out the remaining cooldown — the
// client's retry budget already bounds total work, and a caller that is
// willing to wait should eventually reach the server (the resilience
// tests depend on every request completing under a partial-failure
// profile). The wait respects the caller's context.
type breaker struct {
	cfg BreakerConfig
	obs Observer

	mu        sync.Mutex
	state     BreakerState
	failures  int
	openUntil time.Time
	opens     uint64
}

// newBreaker builds a breaker; obs (may be nil) hears state changes.
func newBreaker(cfg BreakerConfig, obs Observer) *breaker {
	return &breaker{cfg: cfg.withDefaults(), obs: obs}
}

// State returns the current breaker state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// transition moves to state to, notifying the observer.
func (b *breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if to == BreakerOpen {
		b.opens++
	}
	if b.obs != nil {
		b.obs.BreakerChange(from, to)
	}
}

// Allow gates one attempt. While open it sleeps out the remaining
// cooldown (via the injected sleep, respecting ctx) and then moves to
// half-open so the attempt doubles as the probe.
func (b *breaker) Allow(ctx context.Context, sleep func(context.Context, time.Duration) error) error {
	if b.cfg.Disabled {
		return nil
	}
	b.mu.Lock()
	if b.state == BreakerOpen {
		wait := b.openUntil.Sub(b.cfg.now())
		if wait > 0 {
			b.mu.Unlock()
			if err := sleep(ctx, wait); err != nil {
				return err
			}
			b.mu.Lock()
		}
		if b.state == BreakerOpen && !b.cfg.now().Before(b.openUntil) {
			b.transition(BreakerHalfOpen)
		}
	}
	b.mu.Unlock()
	return ctx.Err()
}

// Success reports a successful exchange: any state closes.
func (b *breaker) Success() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	b.failures = 0
	b.transition(BreakerClosed)
	b.mu.Unlock()
}

// Failure reports a failed exchange: a half-open probe reopens
// immediately; closed accumulates toward the threshold.
func (b *breaker) Failure() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	b.failures++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.failures >= b.cfg.Threshold) {
		b.openUntil = b.cfg.now().Add(b.cfg.Cooldown)
		b.transition(BreakerOpen)
	}
	b.mu.Unlock()
}

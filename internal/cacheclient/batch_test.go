package cacheclient

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/media"
)

// batchHandler serves POST /v1/batch (every item a hit) and per-clip GETs,
// counting each route.
type batchHandler struct {
	batches atomic.Int64
	singles atomic.Int64
	flaky   int32 // fail this many batch calls with 503 first
}

func (h *batchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/batch":
		if atomic.AddInt32(&h.flaky, -1) >= 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		h.batches.Add(1)
		var req api.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		resp := api.BatchResponse{Items: make([]api.BatchItemResult, len(req.Items))}
		for i, it := range req.Items {
			resp.Items[i] = api.BatchItemResult{
				Clip: it.Clip, Status: http.StatusOK, Outcome: "hit", Hit: true, SizeBytes: 1024,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	case r.Method == http.MethodGet:
		h.singles.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.Clip{Clip: 1, Kind: "video", SizeBytes: 1024, Outcome: "hit", Hit: true})
	default:
		w.WriteHeader(http.StatusNotFound)
	}
}

func TestGetBatchRoutesThroughBatchEndpoint(t *testing.T) {
	h := &batchHandler{}
	c := newFlakyClient(t, h, Config{})
	ids := []media.ClipID{1, 2, 3}
	res, err := c.GetBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ids) {
		t.Fatalf("got %d results, want %d", len(res), len(ids))
	}
	for i, r := range res {
		if r.Clip != ids[i] || r.Status != http.StatusOK || !r.Hit {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
	if h.batches.Load() != 1 || h.singles.Load() != 0 {
		t.Fatalf("routes: %d batch, %d single", h.batches.Load(), h.singles.Load())
	}
}

func TestGetBatchRetriesTransientFailures(t *testing.T) {
	h := &batchHandler{flaky: 2}
	c := newFlakyClient(t, h, Config{})
	if _, err := c.GetBatch(context.Background(), []media.ClipID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if h.batches.Load() != 1 {
		t.Fatalf("batch served %d times, want 1", h.batches.Load())
	}
}

// preBatchHandler models a pre-batch server: /v1/batch is an unknown route.
type preBatchHandler struct {
	batchProbes atomic.Int64
	singles     atomic.Int64
}

func (h *preBatchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/batch" {
		h.batchProbes.Add(1)
		w.WriteHeader(http.StatusNotFound)
		return
	}
	h.singles.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(api.Clip{Clip: 1, Kind: "video", SizeBytes: 1024, Outcome: "hit", Hit: true})
}

func TestGetBatchFallsBackOnPreBatchServer(t *testing.T) {
	h := &preBatchHandler{}
	c := newFlakyClient(t, h, Config{})
	ids := []media.ClipID{1, 2, 3}
	for round := 0; round < 2; round++ {
		res, err := c.GetBatch(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(ids) {
			t.Fatalf("round %d: got %d results, want %d", round, len(res), len(ids))
		}
		for i, r := range res {
			if r.Status != http.StatusOK || !r.Hit {
				t.Fatalf("round %d item %d: %+v", round, i, r)
			}
		}
	}
	if h.batchProbes.Load() != 1 {
		t.Fatalf("missing route probed %d times, want once", h.batchProbes.Load())
	}
	if h.singles.Load() != int64(2*len(ids)) {
		t.Fatalf("per-clip fallback served %d GETs, want %d", h.singles.Load(), 2*len(ids))
	}
}

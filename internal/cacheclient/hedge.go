// hedge.go implements hedged requests for the cooperative cluster tier: a
// call fans out across an ordered list of candidates, firing the next
// candidate either when the previous one fails outright (failover) or when
// a hedge delay elapses without an answer (a speculative hedge) — whichever
// comes first. The first success wins and the losers are cancelled. Tail
// latency on the peer path is bounded by the hedge delay instead of a slow
// peer's timeout, at the cost of an occasional duplicate read.
package cacheclient

import (
	"context"
	"errors"
	"time"
)

// HedgeResult reports how a hedged call concluded.
type HedgeResult struct {
	// Winner is the index of the candidate whose response was used; -1 when
	// no candidate succeeded.
	Winner int
	// Hedged reports whether a speculative hedge fired (a candidate was
	// launched by the delay timer while an earlier one was still pending).
	// Failover launches after an outright failure do not count.
	Hedged bool
	// HedgeWon reports that a speculatively launched candidate won.
	HedgeWon bool
}

// ErrNoCandidates reports a hedged call over an empty candidate list.
var ErrNoCandidates = errors.New("cacheclient: hedged call with no candidates")

// Hedged runs calls[0], fires calls[i+1] after delay (or immediately when
// calls[i] fails), and returns the first successful result. All candidates
// failing returns the first error observed; ctx cancellation is terminal.
// A non-positive delay launches every candidate speculatively at once.
func Hedged[T any](ctx context.Context, delay time.Duration, calls []func(context.Context) (T, error)) (T, HedgeResult, error) {
	var zero T
	res := HedgeResult{Winner: -1}
	if len(calls) == 0 {
		return zero, res, ErrNoCandidates
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type reply struct {
		idx int
		val T
		err error
	}
	results := make(chan reply, len(calls))
	launch := func(i int) {
		go func() {
			v, err := calls[i](hctx)
			results <- reply{idx: i, val: v, err: err}
		}()
	}

	speculative := make([]bool, len(calls))
	launched := 1
	launch(0)
	if delay <= 0 {
		for ; launched < len(calls); launched++ {
			speculative[launched] = true
			res.Hedged = true
			launch(launched)
		}
	}

	timer := time.NewTimer(delay)
	if delay <= 0 {
		timer.Stop()
	}
	defer timer.Stop()

	done := 0
	var firstErr error
	for {
		var timerC <-chan time.Time
		if launched < len(calls) {
			timerC = timer.C
		}
		select {
		case r := <-results:
			done++
			if r.err == nil {
				res.Winner = r.idx
				res.HedgeWon = speculative[r.idx]
				return r.val, res, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if ctx.Err() != nil {
				return zero, res, firstErr
			}
			if launched < len(calls) {
				// Failover: the current candidate answered negatively, so the
				// next one starts immediately — no point waiting out the delay.
				launch(launched)
				launched++
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(delay)
			} else if done == launched {
				return zero, res, firstErr
			}
		case <-timerC:
			speculative[launched] = true
			res.Hedged = true
			launch(launched)
			launched++
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			return zero, res, firstErr
		}
	}
}

package cacheclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep is an instantaneous Sleep for tests (still honors ctx).
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// flakyHandler fails the first failures requests per path with status,
// then succeeds with a fixed clip body.
type flakyHandler struct {
	mu       sync.Mutex
	failures int
	status   int
	seen     int
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.seen++
	fail := h.seen <= h.failures
	h.mu.Unlock()
	if fail {
		if h.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(h.status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"clip": 1, "kind": "video", "sizeBytes": 1024, "outcome": "miss", "hit": false,
	})
}

func newFlakyClient(t *testing.T, h http.Handler, cfg Config) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	cfg.BaseURL = ts.URL
	if cfg.Sleep == nil {
		cfg.Sleep = noSleep
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetriesUntilSuccess(t *testing.T) {
	h := &flakyHandler{failures: 3, status: http.StatusBadGateway}
	c := newFlakyClient(t, h, Config{})
	res, err := c.Clip(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clip != 1 || res.Outcome != "miss" {
		t.Fatalf("unexpected result: %+v", res)
	}
	if got := c.Retries(); got != 3 {
		t.Fatalf("Retries() = %d, want 3", got)
	}
}

func TestRetriesOn429(t *testing.T) {
	h := &flakyHandler{failures: 2, status: http.StatusTooManyRequests}
	c := newFlakyClient(t, h, Config{})
	if _, err := c.Clip(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

func TestNoRetryOn404(t *testing.T) {
	var calls atomic.Int64
	c := newFlakyClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no", http.StatusNotFound)
	}), Config{})
	_, err := c.Clip(context.Background(), 1)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("want StatusError 404, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 retried: %d calls", calls.Load())
	}
}

func TestAttemptsExhausted(t *testing.T) {
	var calls atomic.Int64
	c := newFlakyClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}), Config{MaxAttempts: 3, Breaker: BreakerConfig{Disabled: true}})
	if _, err := c.Clip(context.Background(), 1); err == nil {
		t.Fatal("permanently failing server should error")
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	c := newFlakyClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // stall until the attempt deadline cancels us
	}), Config{MaxAttempts: 2, AttemptTimeout: 20 * time.Millisecond,
		Breaker: BreakerConfig{Disabled: true}})
	start := time.Now()
	_, err := c.Clip(context.Background(), 1)
	if err == nil {
		t.Fatal("stalled server should error")
	}
	// Two stalled attempts at 20ms each, no backoff sleeps: well under 2s.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeouts not enforced: took %v", elapsed)
	}
}

func TestCallerContextCancellation(t *testing.T) {
	c := newFlakyClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}), Config{MaxAttempts: 100})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Clip(ctx, 1); err == nil {
		t.Fatal("cancelled context should error")
	}
}

func TestBackoffDeterministic(t *testing.T) {
	delays := func(seed uint64) []time.Duration {
		c, err := New(Config{BaseURL: "http://unused", Seed: seed, Sleep: noSleep})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, 0, 6)
		for i := 1; i <= 6; i++ {
			out = append(out, c.backoff(i, 0))
		}
		return out
	}
	a, b := delays(1), delays(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := delays(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
	// Exponential shape with jitter in [0.5, 1] of the base, capped.
	cfg := Config{}.withDefaults()
	for i, d := range a {
		base := cfg.BaseBackoff << i
		if base > cfg.MaxBackoff {
			base = cfg.MaxBackoff
		}
		if d < base/2 || d > base {
			t.Errorf("delay %d = %v outside [%v, %v]", i, d, base/2, base)
		}
	}
}

func TestRetryAfterHonored(t *testing.T) {
	c, err := New(Config{BaseURL: "http://unused", Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	// A 1s hint dominates the small early backoff.
	if d := c.backoff(1, time.Second); d != time.Second {
		t.Fatalf("Retry-After floor not honored: %v", d)
	}
	// But never beyond the cap.
	if d := c.backoff(1, time.Minute); d != DefaultMaxBackoff {
		t.Fatalf("Retry-After not capped: %v", d)
	}
	if got := parseRetryAfter("3", time.Now()); got != 3*time.Second {
		t.Fatalf("parseRetryAfter(3) = %v", got)
	}
	for _, bad := range []string{"", "x", "-1"} {
		if got := parseRetryAfter(bad, time.Now()); got != 0 {
			t.Fatalf("parseRetryAfter(%q) = %v, want 0", bad, got)
		}
	}
}

// recordingObserver captures resilience events.
type recordingObserver struct {
	mu      sync.Mutex
	retries int
	states  []BreakerState
}

func (o *recordingObserver) Retry(int, time.Duration, error) {
	o.mu.Lock()
	o.retries++
	o.mu.Unlock()
}

func (o *recordingObserver) BreakerChange(_, to BreakerState) {
	o.mu.Lock()
	o.states = append(o.states, to)
	o.mu.Unlock()
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	obs := &recordingObserver{}
	h := &flakyHandler{failures: 4, status: http.StatusBadGateway}
	c := newFlakyClient(t, h, Config{
		MaxAttempts: 10,
		Observer:    obs,
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: time.Millisecond},
	})
	if _, err := c.Clip(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if c.BreakerOpens() == 0 {
		t.Fatal("breaker never opened despite 4 consecutive failures over threshold 2")
	}
	if got := c.Breaker(); got != BreakerClosed {
		t.Fatalf("breaker %v after recovery, want closed", got)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.retries != 4 {
		t.Errorf("observer saw %d retries, want 4", obs.retries)
	}
	if len(obs.states) == 0 || obs.states[len(obs.states)-1] != BreakerClosed {
		t.Errorf("observer state trail %v should end closed", obs.states)
	}
}

func TestBreakerHalfOpenReopens(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Second, now: func() time.Time { return now }}
	b := newBreaker(cfg, nil)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 failure should open")
	}
	// Cooldown elapses; Allow flips to half-open without sleeping.
	now = now.Add(2 * time.Second)
	if err := b.Allow(context.Background(), noSleep); err != nil {
		t.Fatal(err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe should reopen")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d, want 2", got)
	}
	now = now.Add(2 * time.Second)
	if err := b.Allow(context.Background(), noSleep); err != nil {
		t.Fatal(err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe should close")
	}
}

func TestBreakerWaitsOutCooldown(t *testing.T) {
	var slept atomic.Int64
	sleep := func(ctx context.Context, d time.Duration) error {
		slept.Add(int64(d))
		return ctx.Err()
	}
	now := time.Unix(0, 0)
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Second, now: func() time.Time { return now }}
	b := newBreaker(cfg, nil)
	b.Failure()
	// Clock is frozen, so Allow must hand the full cooldown to sleep; the
	// frozen clock then keeps it open (not yet half-open).
	if err := b.Allow(context.Background(), sleep); err != nil {
		t.Fatal(err)
	}
	if slept.Load() != int64(time.Second) {
		t.Fatalf("slept %v, want 1s", time.Duration(slept.Load()))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing BaseURL should fail")
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

package cacheclient

// delete_test.go (ISSUE 8): the Delete call and its pre-churn fallback. A
// pre-churn server's method-patterned mux answers 405 for DELETE on the
// known clip path; the client must latch that once and fail fast with
// ErrDeleteUnsupported, while churn-era servers get normal 204/404
// handling.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mediacache/internal/media"
)

// preChurnMux mirrors a pre-churn server's routing: GET on the clip path
// is known, so an unknown method there is 405 (with an Allow header), not
// 404 — exactly what net/http method patterns produce.
func preChurnMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/clips/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"clip":1,"kind":"video","sizeBytes":1024,"outcome":"hit","hit":true,"latencySeconds":0}`))
	})
	return mux
}

func TestDeleteAgainstChurnServer(t *testing.T) {
	var deletes atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("DELETE /v1/clips/{id}", func(w http.ResponseWriter, r *http.Request) {
		deletes.Add(1)
		if r.PathValue("id") == "99999" {
			http.Error(w, `{"error":"clip 99999 not in repository"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("X-Cache-Invalidated-Bytes", "1024")
		w.WriteHeader(http.StatusNoContent)
	})
	c := newFlakyClient(t, mux, Config{})

	if err := c.Delete(context.Background(), 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// A clip outside the repository surfaces as a 404 StatusError, without
	// tripping the unsupported latch.
	err := c.Delete(context.Background(), 99999)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("Delete of unknown clip: %v, want 404 StatusError", err)
	}
	if err := c.Delete(context.Background(), 2); err != nil {
		t.Fatalf("Delete after 404: %v", err)
	}
	if got := deletes.Load(); got != 3 {
		t.Fatalf("server saw %d DELETEs, want 3", got)
	}
}

func TestDeleteLatchesOnPreChurnServer(t *testing.T) {
	var requests atomic.Int64
	mux := preChurnMux()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			requests.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c, err := New(Config{BaseURL: ts.URL, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}

	// First Delete probes the route, sees 405, latches.
	if err := c.Delete(context.Background(), 1); !errors.Is(err, ErrDeleteUnsupported) {
		t.Fatalf("Delete against pre-churn server: %v, want ErrDeleteUnsupported", err)
	}
	// Subsequent Deletes short-circuit without a round trip.
	for i := 0; i < 3; i++ {
		if err := c.Delete(context.Background(), media.ClipID(i+1)); !errors.Is(err, ErrDeleteUnsupported) {
			t.Fatalf("latched Delete: %v, want ErrDeleteUnsupported", err)
		}
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("pre-churn server saw %d DELETEs, want 1 (the probe)", got)
	}
	// The rest of the client still works against the same server.
	if _, err := c.Clip(context.Background(), 1); err != nil {
		t.Fatalf("Clip after delete latch: %v", err)
	}
}

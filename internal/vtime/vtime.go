// Package vtime defines the discrete virtual clock shared by the simulator
// and the replacement policies.
//
// The paper's client "displays the referenced clip and issues another request
// immediately" (Section 3.3), so simulated time advances one tick per
// request. All reference timestamps, backward-K distances and aging intervals
// are expressed in these ticks.
package vtime

// Time is a point on the simulation clock. The first request happens at
// time 1; 0 means "never".
type Time int64

// Never is the zero time, used for "no reference observed".
const Never Time = 0

// Duration is a span of virtual time in ticks.
type Duration = Time

package core

import (
	"errors"
	"fmt"
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// eventRecorder captures the engine event stream for ordering assertions.
type eventRecorder struct {
	events []Event
}

func (r *eventRecorder) Observe(ev Event) { r.events = append(r.events, ev) }

func (r *eventRecorder) count(t EventType) int {
	n := 0
	for _, ev := range r.events {
		if ev.Type == t {
			n++
		}
	}
	return n
}

// checkIdentities asserts the PR 4 counting identities on a stats copy.
func checkIdentities(t *testing.T, s Stats) {
	t.Helper()
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Errorf("byte identity broken: hit %v + fetched %v + failed %v != referenced %v",
			s.BytesHit, s.BytesFetched, s.BytesFailed, s.BytesReferenced)
	}
	if s.Requests != s.Hits+s.Bypassed+s.FetchFailed+(s.Requests-s.Hits-s.Bypassed-s.FetchFailed) {
		t.Errorf("outcome identity broken: %+v", s)
	}
}

func TestSegmentedOptionValidation(t *testing.T) {
	repo := smallRepo(t)
	if _, err := New(repo, 50, &fifoPolicy{}, WithSegments(0)); err == nil {
		t.Error("zero segment size should fail")
	}
	if _, err := New(repo, 50, &fifoPolicy{}, WithPrefixAdmission(1)); err == nil {
		t.Error("WithPrefixAdmission without WithSegments should fail")
	}
	if _, err := New(repo, 50, &fifoPolicy{}, WithSegments(10), WithPrefixAdmission(0)); err == nil {
		t.Error("zero prefix count should fail")
	}
	if _, err := New(repo, 50, &fifoPolicy{},
		WithSegmentFetch(func(media.Clip, int32, vtime.Time) error { return nil })); err == nil {
		t.Error("WithSegmentFetch without WithSegments should fail")
	}
	if _, err := New(repo, 50, &fifoPolicy{}, WithSegments(10), WithSegmentFetch(nil)); err == nil {
		t.Error("nil segment fetch hook should fail")
	}
	c, err := New(repo, 50, &fifoPolicy{}, WithSegments(10), WithPrefixAdmission(2))
	if err != nil {
		t.Fatalf("valid segmented construction failed: %v", err)
	}
	if !c.Segmented() || c.SegmentSize() != 10 || c.PrefixSegments() != 2 {
		t.Errorf("accessors: segmented=%v size=%v prefix=%d",
			c.Segmented(), c.SegmentSize(), c.PrefixSegments())
	}
}

// TestSegmentedWholeClipEquivalence drives the same trace through a
// whole-clip cache and a segmented cache whose segment size covers every
// clip (one segment per clip): outcomes and stats must agree, because a
// single-segment clip degenerates to whole-clip semantics.
func TestSegmentedWholeClipEquivalence(t *testing.T) {
	repo := smallRepo(t)
	whole, _ := New(repo, 50, &fifoPolicy{})
	seg, _ := New(repo, 50, &fifoPolicy{}, WithSegments(64))
	trace := []media.ClipID{1, 2, 3, 1, 4, 2, 3, 4, 1, 1, 2}
	for i, id := range trace {
		a, errA := whole.Request(id)
		b, errB := seg.Request(id)
		if a != b || (errA == nil) != (errB == nil) {
			t.Fatalf("request %d (clip %d): whole=%v/%v segmented=%v/%v", i, id, a, errA, b, errB)
		}
	}
	ws, ss := whole.Stats(), seg.Stats()
	// Segment counters differ by construction; compare the shared fields.
	ws.SegmentsFetched, ws.SegmentsEvicted = 0, 0
	ss.SegmentsFetched, ss.SegmentsEvicted = 0, 0
	if ws != ss {
		t.Errorf("stats diverged:\nwhole     %+v\nsegmented %+v", ws, ss)
	}
	checkIdentities(t, seg.Stats())
}

func TestRequestRangePartialHit(t *testing.T) {
	repo := smallRepo(t)
	rec := &eventRecorder{}
	c, _ := New(repo, 50, &fifoPolicy{}, WithSegments(10), WithObserver(rec))

	// Cold prefix: only segment 0 of clip 3 (30 bytes, 3 segments).
	res, err := c.RequestRange(3, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != MissCached || res.BytesFetched != 10 || res.BytesHit != 0 {
		t.Fatalf("cold prefix: %+v", res)
	}
	if got := c.ResidentBytes(3); got != 10 {
		t.Fatalf("resident bytes after prefix fetch = %v", got)
	}

	// Full request: prefix from cache, tail fetched.
	res, err = c.RequestRange(3, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != MissCached || res.BytesHit != 10 || res.BytesFetched != 20 {
		t.Fatalf("partial hit: %+v", res)
	}
	s := c.Stats()
	if s.PartialHits != 1 || s.SegmentsFetched != 3 {
		t.Fatalf("stats after partial hit: %+v", s)
	}
	if rec.count(EventPartialHit) != 1 {
		t.Errorf("partial-hit events = %d, want 1", rec.count(EventPartialHit))
	}

	// Fully resident now: any subrange is a pure hit.
	res, err = c.RequestRange(3, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes 5..14 touch segments 0 and 1: 20 touched bytes, all resident.
	if res.Outcome != Hit || res.BytesHit != 20 {
		t.Fatalf("resident subrange: %+v", res)
	}
	if !c.FullyResident(3) {
		t.Error("clip 3 should be fully resident")
	}
	checkIdentities(t, c.Stats())
}

func TestRequestRangeBadRange(t *testing.T) {
	repo := smallRepo(t)
	c, _ := New(repo, 50, &fifoPolicy{}, WithSegments(10))
	if _, err := c.RequestRange(3, 30, 1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("start at clip size: %v", err)
	}
	if _, err := c.RequestRange(3, -1, 5); !errors.Is(err, ErrBadRange) {
		t.Fatalf("negative start: %v", err)
	}
	if _, err := c.RequestRange(99, 0, 1); !errors.Is(err, ErrUnknownClip) {
		t.Fatalf("unknown clip: %v", err)
	}
	if c.Now() != 0 {
		t.Fatal("rejected ranges must not advance the clock")
	}
	// Overlong length clamps to the clip end.
	res, err := c.RequestRange(1, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Start != 5 || res.Length != 5 {
		t.Fatalf("clamp: %+v", res)
	}
}

func TestPrefixAdmissionOverridesDeclinedAdmission(t *testing.T) {
	repo := smallRepo(t)
	deny := func(media.Clip, vtime.Time) bool { return false }
	c, _ := New(repo, 50, &fifoPolicy{},
		WithSegments(10), WithPrefixAdmission(1), WithAdmission(deny))

	res, err := c.RequestRange(3, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != MissBypassed {
		t.Fatalf("outcome = %v, want MissBypassed (tail streamed)", res.Outcome)
	}
	// The pinned prefix segment was cached despite the declined admission;
	// the two tail segments streamed.
	if got := c.ResidentBytes(3); got != 10 {
		t.Fatalf("resident bytes = %v, want 10 (prefix segment only)", got)
	}
	if !c.SegmentResident(3, 0) || c.SegmentResident(3, 1) {
		t.Error("expected exactly segment 0 resident")
	}
	s := c.Stats()
	if s.Bypassed != 1 || s.BytesFetched != 30 {
		t.Fatalf("stats: %+v", s)
	}
	checkIdentities(t, s)

	// Second pass: prefix hits, tail streams again (still not admitted).
	res, err = c.RequestRange(3, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != MissBypassed || res.BytesHit != 10 || res.BytesFetched != 20 {
		t.Fatalf("second pass: %+v", res)
	}
	if c.Stats().PartialHits != 1 {
		t.Fatalf("partial hits = %d, want 1", c.Stats().PartialHits)
	}
	checkIdentities(t, c.Stats())
}

func TestTrimEvictsTailBeforePrefix(t *testing.T) {
	repo := smallRepo(t)
	rec := &eventRecorder{}
	c, _ := New(repo, 50, &fifoPolicy{},
		WithSegments(10), WithPrefixAdmission(1), WithObserver(rec))

	if out, err := c.Request(4); err != nil || out != MissCached {
		t.Fatalf("warm clip 4: %v/%v", out, err)
	}
	// Clip 3 (30 bytes) needs 30; free is 10, so two of clip 4's segments
	// must go — the unpinned tail (segments 3 and 2), never the prefix.
	if out, err := c.Request(3); err != nil || out != MissCached {
		t.Fatalf("insert clip 3: %v/%v", out, err)
	}
	if got := c.ResidentBytes(4); got != 20 {
		t.Fatalf("clip 4 resident bytes = %v, want 20 after tail trim", got)
	}
	if !c.SegmentResident(4, 0) || !c.SegmentResident(4, 1) ||
		c.SegmentResident(4, 2) || c.SegmentResident(4, 3) {
		t.Error("expected clip 4 segments {0,1} resident after trim")
	}
	s := c.Stats()
	if s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (clip 4 only trimmed)", s.Evictions)
	}
	if s.SegmentsEvicted != 2 || s.BytesEvicted != 20 {
		t.Errorf("segments evicted = %d (%v bytes), want 2 (20B)", s.SegmentsEvicted, s.BytesEvicted)
	}
	if rec.count(EventTrim) == 0 {
		t.Error("expected at least one trim event")
	}
	if rec.count(EventEviction) != 0 {
		t.Error("no full eviction expected")
	}
	exts := c.ResidentExtentsOf(4)
	if len(exts) != 1 || exts[0] != (Extent{Start: 0, Length: 20}) {
		t.Errorf("extents of trimmed clip = %+v", exts)
	}
	checkIdentities(t, c.Stats())
}

func TestSegmentFetchFailureFailsOnlyThatSegment(t *testing.T) {
	repo := smallRepo(t)
	failSeg := int32(1)
	fetch := func(_ media.Clip, seg int32, _ vtime.Time) error {
		if seg == failSeg {
			return errors.New("link dropped")
		}
		return nil
	}
	c, _ := New(repo, 50, &fifoPolicy{}, WithSegments(10), WithSegmentFetch(fetch))
	res, err := c.RequestRange(3, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != MissDegraded {
		t.Fatalf("outcome = %v, want MissDegraded", res.Outcome)
	}
	if res.BytesFetched != 20 || res.BytesFailed != 10 {
		t.Fatalf("result: %+v", res)
	}
	if c.SegmentResident(3, 0) != true || c.SegmentResident(3, 1) != false || !c.SegmentResident(3, 2) {
		t.Error("segments 0 and 2 should be resident, 1 failed")
	}
	s := c.Stats()
	if s.FetchFailed != 1 || s.BytesFailed != 10 || s.SegmentsFetched != 2 {
		t.Fatalf("stats: %+v", s)
	}
	checkIdentities(t, s)

	// The failed segment heals on the next request: only segment 1 is
	// missing now.
	failSeg = -1
	res, err = c.RequestRange(3, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != MissCached || res.BytesHit != 20 || res.BytesFetched != 10 {
		t.Fatalf("healing pass: %+v", res)
	}
	if !c.FullyResident(3) {
		t.Error("clip 3 should be fully resident after healing")
	}
	checkIdentities(t, c.Stats())
}

func TestSegmentedResidentExtentsWithGap(t *testing.T) {
	repo := smallRepo(t)
	c, _ := New(repo, 50, &fifoPolicy{}, WithSegments(10))
	// Clip 4: 40 bytes, 4 segments. Fetch segments 0 and 2 via subranges.
	if _, err := c.RequestRange(4, 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RequestRange(4, 20, 10); err != nil {
		t.Fatal(err)
	}
	exts := c.ResidentExtentsOf(4)
	want := []Extent{{Start: 0, Length: 10}, {Start: 20, Length: 10}}
	if len(exts) != 2 || exts[0] != want[0] || exts[1] != want[1] {
		t.Fatalf("extents = %+v, want %+v", exts, want)
	}
	if c.ResidentSegmentsOf(4) != 2 || c.ResidentSegments() != 2 {
		t.Errorf("segment counts: clip=%d total=%d", c.ResidentSegmentsOf(4), c.ResidentSegments())
	}
}

func TestSegmentedShortLastSegmentAccounting(t *testing.T) {
	r, err := media.NewRepository([]media.Clip{
		{ID: 1, Size: 25}, // segments 10, 10, 5
		{ID: 2, Size: 35},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(r, 30, &fifoPolicy{}, WithSegments(10))
	if _, err := c.Request(1); err != nil {
		t.Fatal(err)
	}
	if got := c.UsedBytes(); got != 25 {
		t.Fatalf("used = %v, want 25 (short last segment not padded)", got)
	}
	// The short last segment alone:
	res, err := c.RequestRange(1, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Hit || res.BytesHit != 5 {
		t.Fatalf("short segment hit: %+v", res)
	}
	checkIdentities(t, c.Stats())
}

func TestSegmentedSnapshotRoundTrip(t *testing.T) {
	repo := smallRepo(t)
	build := func() *Cache {
		c, _ := New(repo, 50, &fifoPolicy{}, WithSegments(10))
		return c
	}
	c := build()
	c.Request(3)              // fully resident
	c.RequestRange(4, 20, 10) // partial: segment 2 only
	snap := c.Snapshot()
	if snap.SegmentSize != 10 {
		t.Fatalf("snapshot segment size = %v", snap.SegmentSize)
	}
	if len(snap.ResidentIDs) != 1 || snap.ResidentIDs[0] != 3 {
		t.Fatalf("full residents = %v", snap.ResidentIDs)
	}
	if len(snap.Partial) != 1 || snap.Partial[0].ID != 4 ||
		len(snap.Partial[0].Segments) != 1 || snap.Partial[0].Segments[0] != 2 {
		t.Fatalf("partial residents = %+v", snap.Partial)
	}

	fresh := build()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !fresh.FullyResident(3) || fresh.ResidentBytes(4) != 10 || !fresh.SegmentResident(4, 2) {
		t.Error("restored residency mismatch")
	}
	if fresh.UsedBytes() != c.UsedBytes() || fresh.ResidentSegments() != c.ResidentSegments() {
		t.Errorf("restored usage %v/%d, want %v/%d",
			fresh.UsedBytes(), fresh.ResidentSegments(), c.UsedBytes(), c.ResidentSegments())
	}

	// A whole-clip cache cannot represent the partial clip.
	wholeClip, _ := New(repo, 50, &fifoPolicy{})
	if err := wholeClip.Restore(snap); err == nil {
		t.Error("whole-clip restore of a segmented snapshot should fail")
	}
	// A segmented cache at a different granularity cannot either.
	other, _ := New(repo, 50, &fifoPolicy{}, WithSegments(20))
	if err := other.Restore(snap); err == nil {
		t.Error("granularity-mismatched restore should fail")
	}
	// But a segmented cache adopts a pre-segment whole-clip snapshot.
	legacy, _ := New(repo, 50, &fifoPolicy{})
	legacy.Request(2)
	adopted := build()
	if err := adopted.Restore(legacy.Snapshot()); err != nil {
		t.Fatalf("adopting whole-clip snapshot: %v", err)
	}
	if !adopted.FullyResident(2) || adopted.ResidentSegmentsOf(2) != 2 {
		t.Error("adopted clip should be fully resident with all segments")
	}
}

// TestSegmentedWarm checks Warm grants full segment residency.
func TestSegmentedWarm(t *testing.T) {
	repo := smallRepo(t)
	c, _ := New(repo, 50, &fifoPolicy{}, WithSegments(10))
	c.Warm([]media.ClipID{1, 3})
	if !c.FullyResident(1) || !c.FullyResident(3) {
		t.Fatal("warmed clips should be fully resident")
	}
	if c.ResidentSegments() != 4 {
		t.Fatalf("resident segments = %d, want 4 (1 + 3)", c.ResidentSegments())
	}
	if out, _ := c.Request(3); out != Hit {
		t.Fatalf("warmed clip request = %v, want Hit", out)
	}
}

// TestSegmentedTooLargeClipStreams pins the Section 2 rule at segment
// granularity: a clip larger than the whole cache streams uncached.
func TestSegmentedTooLargeClipStreams(t *testing.T) {
	repo := smallRepo(t)
	c, _ := New(repo, 35, &fifoPolicy{}, WithSegments(10))
	out, err := c.Request(4) // 40 bytes > 35 capacity
	if err != nil || out != MissTooLarge {
		t.Fatalf("outcome = %v/%v", out, err)
	}
	if c.ResidentBytes(4) != 0 || c.NumResident() != 0 {
		t.Error("too-large clip must not be cached")
	}
	checkIdentities(t, c.Stats())
}

// TestSegmentAwareNotifications checks the engine tells a SegmentAware
// policy about occupancy changes.
type segAwarePolicy struct {
	fifoPolicy
	notified []string
}

func (p *segAwarePolicy) OnResidentBytes(clip media.Clip, resident media.Bytes, _ vtime.Time) {
	p.notified = append(p.notified, fmt.Sprintf("%d:%d", clip.ID, resident))
}

func TestSegmentAwareNotifications(t *testing.T) {
	repo := smallRepo(t)
	p := &segAwarePolicy{}
	c, _ := New(repo, 50, p, WithSegments(10))
	c.RequestRange(3, 0, 10)
	if len(p.notified) == 0 || p.notified[len(p.notified)-1] != "3:10" {
		t.Fatalf("notifications = %v, want trailing 3:10", p.notified)
	}
	c.Request(3)
	if p.notified[len(p.notified)-1] != "3:30" {
		t.Fatalf("notifications = %v, want trailing 3:30", p.notified)
	}
	// Whole-clip caches never notify.
	p2 := &segAwarePolicy{}
	c2, _ := New(repo, 50, p2)
	c2.Request(3)
	if len(p2.notified) != 0 {
		t.Fatalf("whole-clip cache notified: %v", p2.notified)
	}
}

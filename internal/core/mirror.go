package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// ResidencyMirror is a concurrently readable mirror of a cache's resident
// clip set. The engine itself is single-threaded and its resident map must
// never be read while another goroutine mutates it; a mirror gives callers
// that hold no lock (the sharded pool's read-mostly hit path) a published
// view they can consult without serializing on the engine.
//
// The engine publishes every residency transition — insert, eviction,
// invalidation, warm, reset, restore, segment adoption and trim-to-empty —
// while it holds whatever lock its owner wraps it in, so a reader observes
// each clip's residency at some point in the recent past: the view is
// always a state the cache actually passed through, never a torn or
// invented one. Readers must still treat an answer as a hint — the clip can
// be evicted between the lookup and whatever the reader does with it — and
// re-validate under the engine lock when exactness matters.
//
// Under TTL expiry (WithTTL) each entry carries the clip's expiry deadline,
// published together with residency, and the engine additionally publishes
// its virtual clock after every tick, so a lock-free reader can bound "is
// this clip still live at my tick?" without touching the engine (see the
// sharded pool's fast path).
//
// The zero value is ready to use. All methods are safe for concurrent use.
type ResidencyMirror struct {
	set   sync.Map // media.ClipID -> vtime.Time (expiry deadline; 0 = none)
	n     atomic.Int64
	clock atomic.Int64 // engine virtual clock at the last published tick
}

// Resident reports whether clip id was resident at the last published
// transition affecting it.
func (m *ResidencyMirror) Resident(id media.ClipID) bool {
	_, ok := m.set.Load(id)
	return ok
}

// Deadline returns clip id's published expiry deadline and whether the clip
// was resident at the last published transition. A zero deadline on a
// resident clip means it never expires (TTL disabled).
func (m *ResidencyMirror) Deadline(id media.ClipID) (vtime.Time, bool) {
	v, ok := m.set.Load(id)
	if !ok {
		return 0, false
	}
	return v.(vtime.Time), true
}

// Clock returns the engine virtual time at the last published tick. It lags
// the true clock by at most the owner's undrained touches; see the sharded
// pool for how readers bound that lag.
func (m *ResidencyMirror) Clock() vtime.Time {
	return vtime.Time(m.clock.Load())
}

// setClock publishes the engine's virtual clock.
func (m *ResidencyMirror) setClock(now vtime.Time) {
	m.clock.Store(int64(now))
}

// Len returns the number of clips in the published view.
func (m *ResidencyMirror) Len() int { return int(m.n.Load()) }

// add publishes clip id as resident with the given expiry deadline
// (zero = never expires).
func (m *ResidencyMirror) add(id media.ClipID, deadline vtime.Time) {
	if _, loaded := m.set.Swap(id, deadline); !loaded {
		m.n.Add(1)
	}
}

// remove publishes clip id as no longer resident.
func (m *ResidencyMirror) remove(id media.ClipID) {
	if _, loaded := m.set.LoadAndDelete(id); loaded {
		m.n.Add(-1)
	}
}

// clear empties the published view.
func (m *ResidencyMirror) clear() {
	m.set.Range(func(k, _ any) bool {
		m.set.Delete(k)
		return true
	})
	m.n.Store(0)
}

// WithResidencyMirror attaches a mirror the engine keeps in sync with its
// resident set. The mirror may be read concurrently with engine operation;
// see ResidencyMirror for the exact guarantees.
func WithResidencyMirror(m *ResidencyMirror) Option {
	return func(c *Cache) error {
		if m == nil {
			return errors.New("core: WithResidencyMirror mirror must not be nil")
		}
		c.mirror = m
		return nil
	}
}

// mirrorAdd publishes an insert to the attached mirror, if any, carrying
// the clip's expiry deadline. Insert sites set the deadline before calling
// this, so residency and expiry are published atomically.
func (c *Cache) mirrorAdd(id media.ClipID) {
	if c.mirror != nil {
		var dl vtime.Time
		if c.ttl > 0 {
			dl = c.deadlines[id]
		}
		c.mirror.add(id, dl)
	}
}

// mirrorRemove publishes an eviction to the attached mirror, if any.
func (c *Cache) mirrorRemove(id media.ClipID) {
	if c.mirror != nil {
		c.mirror.remove(id)
	}
}

// mirrorClear publishes a full reset to the attached mirror, if any.
func (c *Cache) mirrorClear() {
	if c.mirror != nil {
		c.mirror.clear()
	}
}

// mirrorClock publishes the engine clock to the attached mirror, if any.
// Called after every clock change so lock-free readers can bound staleness.
func (c *Cache) mirrorClock(now vtime.Time) {
	if c.mirror != nil {
		c.mirror.setClock(now)
	}
}

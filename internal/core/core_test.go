package core

import (
	"errors"
	"testing"
	"testing/quick"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// fifoPolicy is a minimal valid policy: evicts in insertion order.
type fifoPolicy struct {
	order     []media.ClipID
	admitFn   func(media.Clip) bool
	recorded  int
	evictions int
	inserts   int
}

func (p *fifoPolicy) Name() string { return "FIFO" }

func (p *fifoPolicy) Record(media.Clip, vtime.Time, bool) { p.recorded++ }

func (p *fifoPolicy) Admit(c media.Clip, _ vtime.Time) bool {
	if p.admitFn == nil {
		return true
	}
	return p.admitFn(c)
}

func (p *fifoPolicy) Victims(_ media.Clip, view ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	var out []media.ClipID
	var freed media.Bytes
	for _, id := range p.order {
		if freed >= need {
			break
		}
		if !view.Resident(id) {
			continue
		}
		out = append(out, id)
		for c := range view.Residents() {
			if c.ID == id {
				freed += c.Size
			}
		}
	}
	return out
}

func (p *fifoPolicy) OnInsert(c media.Clip, _ vtime.Time) {
	p.order = append(p.order, c.ID)
	p.inserts++
}

func (p *fifoPolicy) OnEvict(id media.ClipID, _ vtime.Time) {
	for i, v := range p.order {
		if v == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.evictions++
}

func (p *fifoPolicy) Reset() { *p = fifoPolicy{admitFn: p.admitFn} }

// badPolicy returns junk victims so engine validation can be exercised.
type badPolicy struct {
	fifoPolicy
	victims func() []media.ClipID
}

func (p *badPolicy) Victims(media.Clip, ResidentView, media.Bytes, vtime.Time) []media.ClipID {
	return p.victims()
}

func smallRepo(t *testing.T) *media.Repository {
	t.Helper()
	r, err := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10},
		{ID: 2, Size: 20},
		{ID: 3, Size: 30},
		{ID: 4, Size: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	repo := smallRepo(t)
	p := &fifoPolicy{}
	if _, err := New(nil, 50, p); err == nil {
		t.Error("nil repo should fail")
	}
	if _, err := New(repo, 50, nil); err == nil {
		t.Error("nil policy should fail")
	}
	if _, err := New(repo, 0, p); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(repo, -10, p); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := New(repo, 100, p); err == nil {
		t.Error("capacity == S_DB should fail (trivial problem)")
	}
	if _, err := New(repo, 200, p); err == nil {
		t.Error("capacity > S_DB should fail")
	}
	if _, err := New(repo, 50, p); err != nil {
		t.Errorf("valid construction failed: %v", err)
	}
}

func TestRequestUnknownClip(t *testing.T) {
	c, _ := New(smallRepo(t), 50, &fifoPolicy{})
	if _, err := c.Request(0); !errors.Is(err, ErrUnknownClip) {
		t.Fatalf("want ErrUnknownClip, got %v", err)
	}
	if _, err := c.Request(5); !errors.Is(err, ErrUnknownClip) {
		t.Fatalf("want ErrUnknownClip, got %v", err)
	}
	if c.Now() != 0 {
		t.Fatal("unknown requests must not advance the clock")
	}
}

func TestHitMissAccounting(t *testing.T) {
	c, _ := New(smallRepo(t), 50, &fifoPolicy{})
	out, err := c.Request(1)
	if err != nil || out != MissCached {
		t.Fatalf("first request = %v, %v", out, err)
	}
	out, _ = c.Request(1)
	if out != Hit {
		t.Fatalf("second request = %v, want hit", out)
	}
	s := c.Stats()
	if s.Requests != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesReferenced != 20 || s.BytesHit != 10 || s.BytesFetched != 10 {
		t.Fatalf("byte stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v", got)
	}
	if got := s.ByteHitRate(); got != 0.5 {
		t.Fatalf("byte hit rate = %v", got)
	}
}

func TestEvictionLoop(t *testing.T) {
	p := &fifoPolicy{}
	c, _ := New(smallRepo(t), 50, p)
	mustCache := func(id media.ClipID) {
		t.Helper()
		out, err := c.Request(id)
		if err != nil || out != MissCached {
			t.Fatalf("request %d = %v, %v", id, out, err)
		}
	}
	mustCache(1) // used 10
	mustCache(2) // used 30
	mustCache(4) // needs 40, free 20 -> evict 1,2 -> used 40+? wait capacity 50: free=20, evict 1 (10) then 2 (20) -> free 50, insert 40
	if c.Resident(1) || c.Resident(2) {
		t.Fatal("FIFO should have evicted clips 1 and 2")
	}
	if !c.Resident(4) {
		t.Fatal("clip 4 should be resident")
	}
	if c.UsedBytes() != 40 || c.FreeBytes() != 10 {
		t.Fatalf("used=%d free=%d", c.UsedBytes(), c.FreeBytes())
	}
	s := c.Stats()
	if s.Evictions != 2 || s.BytesEvicted != 30 {
		t.Fatalf("eviction stats = %+v", s)
	}
}

func TestTooLargeClipBypassed(t *testing.T) {
	c, _ := New(smallRepo(t), 25, &fifoPolicy{})
	out, err := c.Request(3) // size 30 > capacity 25
	if err != nil {
		t.Fatal(err)
	}
	if out != MissTooLarge {
		t.Fatalf("outcome = %v, want MissTooLarge", out)
	}
	if c.NumResident() != 0 {
		t.Fatal("oversized clip must not be cached")
	}
	if c.Stats().Bypassed != 1 {
		t.Fatal("bypass not counted")
	}
}

func TestAdmissionDeclined(t *testing.T) {
	p := &fifoPolicy{admitFn: func(c media.Clip) bool { return c.ID != 2 }}
	c, _ := New(smallRepo(t), 50, p)
	out, _ := c.Request(2)
	if out != MissBypassed {
		t.Fatalf("outcome = %v, want MissBypassed", out)
	}
	if c.Resident(2) {
		t.Fatal("declined clip must not be cached")
	}
	out, _ = c.Request(1)
	if out != MissCached {
		t.Fatalf("admitted clip outcome = %v", out)
	}
}

func TestPolicyReturningNoVictims(t *testing.T) {
	p := &badPolicy{victims: func() []media.ClipID { return nil }}
	c, _ := New(smallRepo(t), 50, p)
	if _, err := c.Request(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(2); err != nil {
		t.Fatal(err)
	}
	_, err := c.Request(4) // requires eviction
	if !errors.Is(err, ErrPolicyNoVictim) {
		t.Fatalf("want ErrPolicyNoVictim, got %v", err)
	}
}

func TestPolicyReturningNonResidentVictim(t *testing.T) {
	p := &badPolicy{victims: func() []media.ClipID { return []media.ClipID{3} }}
	c, _ := New(smallRepo(t), 50, p)
	c.Request(1)
	c.Request(2)
	_, err := c.Request(4)
	if !errors.Is(err, ErrBadVictim) {
		t.Fatalf("want ErrBadVictim, got %v", err)
	}
}

func TestPolicyReturningDuplicateVictims(t *testing.T) {
	p := &badPolicy{victims: func() []media.ClipID { return []media.ClipID{1, 1} }}
	c, _ := New(smallRepo(t), 50, p)
	c.Request(1)
	c.Request(2)
	_, err := c.Request(4)
	if !errors.Is(err, ErrBadVictim) {
		t.Fatalf("want ErrBadVictim, got %v", err)
	}
}

func TestVictimsCalledAgainWhenInsufficient(t *testing.T) {
	// Policy frees one clip per call; the engine must loop.
	calls := 0
	p := &badPolicy{}
	p.victims = func() []media.ClipID {
		calls++
		if calls == 1 {
			return []media.ClipID{1}
		}
		return []media.ClipID{2}
	}
	c, _ := New(smallRepo(t), 50, p)
	c.Request(1)
	c.Request(2)
	out, err := c.Request(4)
	if err != nil || out != MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if calls != 2 {
		t.Fatalf("Victims called %d times, want 2", calls)
	}
}

func TestRecordCalledOnEveryRequest(t *testing.T) {
	p := &fifoPolicy{}
	c, _ := New(smallRepo(t), 50, p)
	c.Request(1)
	c.Request(1)
	c.Request(2)
	if p.recorded != 3 {
		t.Fatalf("Record called %d times, want 3", p.recorded)
	}
}

func TestClockAdvances(t *testing.T) {
	c, _ := New(smallRepo(t), 50, &fifoPolicy{})
	for i := 1; i <= 5; i++ {
		c.Request(1)
		if c.Now() != vtime.Time(i) {
			t.Fatalf("clock = %d after %d requests", c.Now(), i)
		}
	}
}

func TestWarm(t *testing.T) {
	p := &fifoPolicy{}
	c, _ := New(smallRepo(t), 50, p)
	c.Warm([]media.ClipID{1, 2, 3, 99, 1}) // 3 doesn't fit (10+20+30 > 50); 99 unknown; 1 dup
	if !c.Resident(1) || !c.Resident(2) {
		t.Fatal("clips 1,2 should be warm")
	}
	if c.Resident(3) {
		t.Fatal("clip 3 must be skipped (no room)")
	}
	if c.UsedBytes() != 30 {
		t.Fatalf("used = %d", c.UsedBytes())
	}
	if p.inserts != 2 {
		t.Fatalf("inserts = %d", p.inserts)
	}
	if c.Stats().Requests != 0 {
		t.Fatal("Warm must not count requests")
	}
}

func TestReset(t *testing.T) {
	p := &fifoPolicy{}
	c, _ := New(smallRepo(t), 50, p)
	c.Request(1)
	c.Request(2)
	c.Reset()
	if c.NumResident() != 0 || c.UsedBytes() != 0 || c.Now() != 0 {
		t.Fatal("Reset incomplete")
	}
	if c.Stats().Requests != 0 {
		t.Fatal("stats not reset")
	}
	if len(p.order) != 0 {
		t.Fatal("policy not reset")
	}
}

func TestResidentViews(t *testing.T) {
	c, _ := New(smallRepo(t), 60, &fifoPolicy{})
	c.Request(3)
	c.Request(1)
	ids := CollectResidentIDs(c)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("ResidentIDs = %v", ids)
	}
	clips := CollectResidents(c)
	if len(clips) != 2 || clips[0].ID != 1 || clips[1].ID != 3 {
		t.Fatalf("ResidentClips = %v", clips)
	}
	if c.NumResident() != 2 {
		t.Fatalf("NumResident = %d", c.NumResident())
	}
	if c.Capacity() != 60 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
	if c.Repository() == nil || c.Policy() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestResidentsIterator(t *testing.T) {
	c, _ := New(smallRepo(t), 60, &fifoPolicy{})
	c.Request(3)
	c.Request(1)
	var got []media.ClipID
	for clip := range c.Residents() {
		got = append(got, clip.ID)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Residents yielded %v, want [1 3]", got)
	}
	// Early break must stop the iteration without panicking.
	n := 0
	for range c.Residents() {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("early break yielded %d clips, want 1", n)
	}
}

func TestTheoreticalHitRate(t *testing.T) {
	c, _ := New(smallRepo(t), 60, &fifoPolicy{})
	c.Request(1)
	c.Request(2)
	pmf := []float64{0.4, 0.3, 0.2, 0.1}
	if got := c.TheoreticalHitRate(pmf); got != 0.7 {
		t.Fatalf("theoretical hit rate = %v, want 0.7", got)
	}
	// Short pmf must not panic.
	if got := c.TheoreticalHitRate([]float64{0.4}); got != 0.4 {
		t.Fatalf("short pmf rate = %v", got)
	}
}

func TestStatsZeroValueRates(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.ByteHitRate() != 0 {
		t.Fatal("zero stats should have zero rates")
	}
}

func TestOutcomeStrings(t *testing.T) {
	cases := map[Outcome]string{
		Hit:          "hit",
		MissCached:   "miss-cached",
		MissBypassed: "miss-bypassed",
		MissTooLarge: "miss-too-large",
		Outcome(9):   "Outcome(9)",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q want %q", o, o.String(), want)
		}
	}
	if !Hit.IsHit() || MissCached.IsHit() {
		t.Fatal("IsHit wrong")
	}
}

// Property: whatever the request sequence, the invariants hold:
// used <= capacity, used == Σ resident sizes, hits+misses == requests.
func TestCacheInvariantsProperty(t *testing.T) {
	repo := smallRepo(t)
	check := func(reqs []uint8) bool {
		p := &fifoPolicy{}
		c, err := New(repo, 55, p)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			id := media.ClipID(int(r)%repo.N() + 1)
			if _, err := c.Request(id); err != nil {
				return false
			}
			if c.UsedBytes() > c.Capacity() || c.UsedBytes() < 0 {
				return false
			}
			var sum media.Bytes
			for clip := range c.Residents() {
				sum += clip.Size
			}
			if sum != c.UsedBytes() {
				return false
			}
		}
		s := c.Stats()
		return s.Hits <= s.Requests && s.Requests == uint64(len(reqs))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMisbehavingPolicyAccounting pins the ISSUE 4 miss-error contract: when
// a policy returns an invalid victim batch, the whole batch is rejected
// before any eviction is applied, the outcome is MissError, and the request
// is counted in Bypassed so the outcome identity
// Requests == Hits + MissCached + Bypassed + FetchFailed still holds.
func TestMisbehavingPolicyAccounting(t *testing.T) {
	// The batch mixes one perfectly valid victim (resident clip 1) with a
	// non-resident id; partial application would evict clip 1.
	p := &badPolicy{victims: func() []media.ClipID { return []media.ClipID{1, 3} }}
	obs := &recordingObserver{}
	c, err := New(smallRepo(t), 50, p, WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	mustRequest(t, c, 1)
	mustRequest(t, c, 2)
	usedBefore := c.UsedBytes()

	out, err := c.Request(4) // size 40 needs room; the policy misbehaves
	if !errors.Is(err, ErrBadVictim) {
		t.Fatalf("want ErrBadVictim, got %v", err)
	}
	if out != MissError {
		t.Fatalf("outcome = %v, want MissError", out)
	}
	if !c.Resident(1) || !c.Resident(2) || c.Resident(4) {
		t.Fatalf("partial eviction: resident = %v", CollectResidentIDs(c))
	}
	if c.UsedBytes() != usedBefore {
		t.Fatalf("used changed: %v -> %v", usedBefore, c.UsedBytes())
	}

	s := c.Stats()
	if s.Evictions != 0 || s.BytesEvicted != 0 {
		t.Fatalf("evictions leaked: %+v", s)
	}
	if s.Bypassed != 1 {
		t.Fatalf("Bypassed = %d, want 1", s.Bypassed)
	}
	missCached := uint64(2) // clips 1 and 2
	if s.Requests != s.Hits+missCached+s.Bypassed+s.FetchFailed {
		t.Fatalf("outcome identity broken: %+v", s)
	}
	// The clip was fetched (and streamed) before materialization failed.
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Fatalf("byte identity broken: %+v", s)
	}
	for _, ev := range obs.events {
		if ev.Type == EventEviction {
			t.Fatal("eviction event emitted for rejected batch")
		}
	}
	last := obs.events[len(obs.events)-1]
	if last.Type != EventBypass || last.Clip.ID != 4 {
		t.Fatalf("last event = %+v, want bypass of clip 4", last)
	}
}

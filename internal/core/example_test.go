package core_test

import (
	"fmt"
	"log"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
)

// Example demonstrates the basic cache lifecycle: build a repository,
// attach a policy, service requests, read statistics.
func Example() {
	repo, err := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10 * media.MB, Kind: media.Audio, DisplayRate: media.AudioDisplayRate},
		{ID: 2, Size: 20 * media.MB, Kind: media.Audio, DisplayRate: media.AudioDisplayRate},
		{ID: 3, Size: 25 * media.MB, Kind: media.Audio, DisplayRate: media.AudioDisplayRate},
	})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
	if err != nil {
		log.Fatal(err)
	}
	cache, err := core.New(repo, 35*media.MB, policy)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []media.ClipID{1, 2, 1, 3, 1} {
		out, err := cache.Request(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("clip %d: %s\n", id, out)
	}
	fmt.Printf("hit rate: %.0f%%\n", cache.Stats().HitRate()*100)
	// Output:
	// clip 1: miss-cached
	// clip 2: miss-cached
	// clip 1: hit
	// clip 3: miss-cached
	// clip 1: hit
	// hit rate: 40%
}

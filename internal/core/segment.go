// Segment-granular residency: the engine generalization that promotes the
// fixed-size block experiment from internal/policy/blocklru into a first-
// class core concept. A cache built with WithSegments divides every clip
// into fixed-size segments (the last one short), tracks residency per
// segment in a bitmap, and services byte ranges: resident segments are
// served from cache, missing ones are fetched individually, and victims can
// lose tail segments without dropping their prefix — the behaviour prefix
// caches use to hide startup latency for streaming media.
//
// Everything here is reached only when segSize > 0; the legacy whole-clip
// request path is untouched and remains byte-identical to earlier PRs.
package core

import (
	"errors"
	"fmt"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// ErrBadRange reports a requested byte range lying outside the clip.
var ErrBadRange = errors.New("core: requested range is outside the clip")

// WithSegments switches the cache to segment-granular residency with the
// given fixed segment size. Clips are divided into ceil(size/segSize)
// segments; the last segment of a clip may be short. With segmentation on,
// Request(id) behaves like RequestRange(id, 0, clip.Size): a clip is a hit
// only when every segment is resident, and misses fetch and materialize
// only the missing segments.
func WithSegments(segSize media.Bytes) Option {
	return func(c *Cache) error {
		if segSize <= 0 {
			return fmt.Errorf("core: segment size must be positive, got %d", segSize)
		}
		c.segSize = segSize
		return nil
	}
}

// WithPrefixAdmission pins the first n segments of every clip: they are
// admitted even when admission hooks decline the clip, and victim trimming
// evicts them only after every unpinned segment of the victim is gone.
// Requires WithSegments.
func WithPrefixAdmission(n int) Option {
	return func(c *Cache) error {
		if n <= 0 {
			return fmt.Errorf("core: prefix admission segment count must be positive, got %d", n)
		}
		c.prefixSegs = n
		return nil
	}
}

// SegmentFetchFunc models retrieving one missing segment of a clip from the
// remote repository. seg is the zero-based segment index. Returning an
// error fails just that segment: the rest of the request is still serviced
// and the failure accrues to Stats.BytesFailed for exactly the segment's
// bytes.
type SegmentFetchFunc func(clip media.Clip, seg int32, now vtime.Time) error

// WithSegmentFetch installs a per-segment fetch hook — the segmented
// counterpart of WithFetch, and the seam per-segment coalescing and fault
// injection plug into. Requires WithSegments. A segmented cache built with
// WithFetch instead fetches once per request; one with neither hook always
// succeeds.
func WithSegmentFetch(fetch SegmentFetchFunc) Option {
	return func(c *Cache) error {
		if fetch == nil {
			return errors.New("core: WithSegmentFetch hook must not be nil")
		}
		c.segFetch = fetch
		return nil
	}
}

// SegmentAware is implemented by policies that rank partial residents by
// resident-byte cost (the GD family). The engine calls OnResidentBytes
// whenever a resident clip's cached byte total changes — segment inserts,
// tail trims, partial restores — so the policy can re-rank the clip.
// Whole-clip caches never call it, preserving decision identity with
// earlier PRs.
type SegmentAware interface {
	OnResidentBytes(clip media.Clip, resident media.Bytes, now vtime.Time)
}

// segMeta is one resident clip's segment bookkeeping.
type segMeta struct {
	clip     media.Clip
	nSegs    int32
	resident int32       // number of set bits
	resBytes media.Bytes // byte total of resident segments
	bits     []uint64
}

func newSegMeta(clip media.Clip, n int) *segMeta {
	return &segMeta{clip: clip, nSegs: int32(n), bits: make([]uint64, (n+63)/64)}
}

func (m *segMeta) has(i int32) bool { return m.bits[i>>6]&(1<<uint(i&63)) != 0 }

func (m *segMeta) set(i int32) {
	if !m.has(i) {
		m.bits[i>>6] |= 1 << uint(i&63)
		m.resident++
	}
}

func (m *segMeta) clear(i int32) {
	if m.has(i) {
		m.bits[i>>6] &^= 1 << uint(i&63)
		m.resident--
	}
}

// Segmented reports whether the cache tracks residency per segment.
func (c *Cache) Segmented() bool { return c.segSize > 0 }

// SegmentSize returns the fixed segment size, zero for whole-clip caches.
func (c *Cache) SegmentSize() media.Bytes { return c.segSize }

// PrefixSegments returns the WithPrefixAdmission pin count (zero if unset).
func (c *Cache) PrefixSegments() int { return c.prefixSegs }

// ResidentSegments returns the total number of resident segments across all
// clips; zero for whole-clip caches.
func (c *Cache) ResidentSegments() int { return c.residentSegs }

// SegmentsOf returns the number of segments clip divides into (always 1 for
// whole-clip caches).
func (c *Cache) SegmentsOf(clip media.Clip) int {
	if c.segSize == 0 {
		return 1
	}
	n := int((clip.Size + c.segSize - 1) / c.segSize)
	if n == 0 {
		n = 1
	}
	return n
}

// segmentBytes returns the exact byte length of clip's segment i — segSize
// except for a clip's short last segment.
func (c *Cache) segmentBytes(clip media.Clip, i int32) media.Bytes {
	if rest := clip.Size - media.Bytes(i)*c.segSize; rest < c.segSize {
		return rest
	}
	return c.segSize
}

// segRangeBytes returns the byte total of clip's segments s0..s1 inclusive.
func (c *Cache) segRangeBytes(clip media.Clip, s0, s1 int32) media.Bytes {
	end := media.Bytes(s1+1) * c.segSize
	if end > clip.Size {
		end = clip.Size
	}
	return end - media.Bytes(s0)*c.segSize
}

// FullyResident reports whether every byte of clip id is cached. For
// whole-clip caches this is Resident.
func (c *Cache) FullyResident(id media.ClipID) bool {
	if c.segSize == 0 {
		return c.Resident(id)
	}
	sm := c.segs[id]
	return sm != nil && sm.resident == sm.nSegs
}

// SegmentResident reports whether segment seg of clip id is cached. For
// whole-clip caches any seg of a resident clip answers true.
func (c *Cache) SegmentResident(id media.ClipID, seg int32) bool {
	if c.segSize == 0 {
		return c.Resident(id)
	}
	sm := c.segs[id]
	return sm != nil && seg >= 0 && seg < sm.nSegs && sm.has(seg)
}

// ResidentSegmentsOf returns how many of clip id's segments are cached.
func (c *Cache) ResidentSegmentsOf(id media.ClipID) int {
	if c.segSize == 0 {
		if c.Resident(id) {
			return 1
		}
		return 0
	}
	if sm := c.segs[id]; sm != nil {
		return int(sm.resident)
	}
	return 0
}

// AppendMissingSegments appends to dst the indices of clip id's segments in
// [s0, s1] that are not resident, in ascending order, and returns the
// extended slice. The shard pool uses it to probe a range under its lock
// without allocating.
func (c *Cache) AppendMissingSegments(dst []int32, id media.ClipID, s0, s1 int32) []int32 {
	sm := c.segs[id]
	for i := s0; i <= s1; i++ {
		if sm == nil || !sm.has(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Extent is a contiguous resident byte range of one clip.
type Extent struct {
	Start  media.Bytes
	Length media.Bytes
}

// ResidentExtentsOf returns clip id's resident bytes as maximal contiguous
// extents in ascending offset order (nil when nothing is resident). A fully
// resident clip yields one extent covering the whole clip; so does any
// resident clip of a whole-clip cache.
func (c *Cache) ResidentExtentsOf(id media.ClipID) []Extent {
	if c.segSize == 0 {
		if clip, ok := c.byID.Get(id); ok {
			return []Extent{{Start: 0, Length: clip.Size}}
		}
		return nil
	}
	sm := c.segs[id]
	if sm == nil || sm.resident == 0 {
		return nil
	}
	var exts []Extent
	var runStart int32 = -1
	for i := int32(0); i < sm.nSegs; i++ {
		switch {
		case sm.has(i) && runStart < 0:
			runStart = i
		case !sm.has(i) && runStart >= 0:
			exts = append(exts, c.extentOf(sm.clip, runStart, i-1))
			runStart = -1
		}
	}
	if runStart >= 0 {
		exts = append(exts, c.extentOf(sm.clip, runStart, sm.nSegs-1))
	}
	return exts
}

func (c *Cache) extentOf(clip media.Clip, s0, s1 int32) Extent {
	start := media.Bytes(s0) * c.segSize
	return Extent{Start: start, Length: c.segRangeBytes(clip, s0, s1)}
}

// RangeResult is the per-request delivery accounting RequestRange returns:
// how the served range split across cache, network and failure. The fields
// satisfy BytesHit + BytesFetched + BytesFailed == bytes of the touched
// segments (the range rounded out to segment boundaries).
type RangeResult struct {
	// Outcome classifies the request exactly as Request would.
	Outcome Outcome
	// Start and Length are the clamped byte range actually served.
	Start  media.Bytes
	Length media.Bytes
	// BytesHit is the portion served from resident segments.
	BytesHit media.Bytes
	// BytesFetched is the portion delivered over the network (fetched and
	// materialized, or streamed without caching).
	BytesFetched media.Bytes
	// BytesFailed is the portion whose segment fetches failed.
	BytesFailed media.Bytes
}

// RequestRange services a reference to bytes [start, start+length) of clip
// id, advancing the virtual clock by one tick. A negative or overlong
// length is clamped to the clip's end, so RequestRange(id, 0, -1) references
// the whole clip. A start outside the clip fails with ErrBadRange before
// any accounting (the HTTP layer's 416 case).
//
// With segment-granular residency the touched segments are serviced
// individually: resident ones count as hit bytes, missing cacheable ones
// are fetched (per-segment via WithSegmentFetch, else once per request via
// WithFetch) and materialized, and non-admitted ones are streamed without
// caching — except the WithPrefixAdmission prefix, which is always
// cacheable. A whole-clip cache delegates to Request and reports the range
// against its single outcome.
func (c *Cache) RequestRange(id media.ClipID, start, length media.Bytes) (RangeResult, error) {
	clip, ok := c.repo.Lookup(id)
	if !ok {
		return RangeResult{Outcome: MissBypassed}, fmt.Errorf("%w: id %d", ErrUnknownClip, id)
	}
	if start < 0 || start >= clip.Size {
		return RangeResult{Outcome: MissBypassed},
			fmt.Errorf("%w: start %d of clip %d (size %v)", ErrBadRange, start, id, clip.Size)
	}
	if length < 0 || start+length > clip.Size {
		length = clip.Size - start
	}
	if c.segSize == 0 {
		out, err := c.Request(id)
		res := RangeResult{Outcome: out, Start: start, Length: length}
		switch out {
		case Hit:
			res.BytesHit = length
		case MissDegraded:
			res.BytesFailed = length
		default:
			// Cached, bypassed, too-large and engine-error misses all
			// streamed the clip to the client.
			res.BytesFetched = length
		}
		return res, err
	}
	return c.requestRangeSegmented(clip, start, length)
}

// requestRangeSegmented is the segmented request path. Stats accounting is
// at segment granularity: BytesReferenced grows by the touched segments'
// bytes and every touched segment lands in exactly one of BytesHit,
// BytesFetched or BytesFailed, so the PR 4 identities hold per segment.
func (c *Cache) requestRangeSegmented(clip media.Clip, start, length media.Bytes) (RangeResult, error) {
	c.clock++
	now := c.clock
	c.mirrorClock(now)
	if c.ttl > 0 {
		// Same order as Request: amortized sweep first, then the lazy check
		// on the requested clip, which drops all its resident segments.
		c.maybeSweep(now)
		c.expireIfDue(clip.ID, now)
	}

	s0 := int32(start / c.segSize)
	s1 := int32((start + length - 1) / c.segSize)
	touched := c.segRangeBytes(clip, s0, s1)

	c.segScratch = c.AppendMissingSegments(c.segScratch[:0], clip.ID, s0, s1)
	missing := c.segScratch
	rangeHit := len(missing) == 0

	c.policy.Record(clip, now, rangeHit)
	c.stats.Requests++
	c.stats.BytesReferenced += touched

	res := RangeResult{Start: start, Length: length}
	if rangeHit {
		c.stats.Hits++
		c.stats.BytesHit += touched
		c.emitB(EventHit, clip, touched, now)
		res.Outcome = Hit
		res.BytesHit = touched
		return res, nil
	}

	var missingBytes media.Bytes
	for _, i := range missing {
		missingBytes += c.segmentBytes(clip, i)
	}
	resInRange := touched - missingBytes
	c.stats.BytesHit += resInRange
	res.BytesHit = resInRange
	if resInRange > 0 {
		c.stats.PartialHits++
		c.emitB(EventPartialHit, clip, resInRange, now)
	}

	// A clip larger than the whole cache is never cached (Section 2): its
	// missing segments are streamed without consulting the fetch hook, the
	// legacy bypass semantic applied per segment.
	if clip.Size > c.capacity {
		c.stats.BytesFetched += missingBytes
		c.stats.Bypassed++
		c.emitB(EventBypass, clip, missingBytes, now)
		res.Outcome = MissTooLarge
		res.BytesFetched = missingBytes
		return res, nil
	}

	admitted := true
	if c.admit != nil && !c.admit(clip, now) {
		admitted = false
	} else if !c.policy.Admit(clip, now) {
		admitted = false
	}

	var (
		streamed  media.Bytes // delivered but intentionally not cached
		failed    media.Bytes // fetch hook failed; nothing delivered
		delivered media.Bytes // streamed + fetched-ok bytes
		matErr    error       // first victim-selection failure, if any

		// WithFetch fallback: fetch once per request, failing every
		// cacheable missing segment together.
		wholeFetched  bool
		wholeFetchErr error
	)
	for _, i := range missing {
		b := c.segmentBytes(clip, i)
		cacheable := admitted || int(i) < c.prefixSegs
		if !cacheable || matErr != nil {
			// Streamed without caching; like the legacy bypass path this
			// does not consult the fetch hook.
			streamed += b
			delivered += b
			continue
		}
		var err error
		switch {
		case c.segFetch != nil:
			err = c.segFetch(clip, i, now)
		case c.fetch != nil:
			if !wholeFetched {
				wholeFetched = true
				wholeFetchErr = c.fetch(clip, now)
			}
			err = wholeFetchErr
		}
		if err != nil {
			failed += b
			continue
		}
		delivered += b
		if err := c.insertSegment(clip, i, now); err != nil {
			// The segment was delivered but cannot be materialized; the
			// remaining missing segments are streamed uncached.
			matErr = err
			continue
		}
		c.stats.SegmentsFetched++
	}
	c.stats.BytesFetched += delivered
	c.stats.BytesFailed += failed
	res.BytesFetched = delivered
	res.BytesFailed = failed

	switch {
	case matErr != nil:
		c.stats.Bypassed++
		c.emitB(EventBypass, clip, delivered, now)
		res.Outcome = MissError
		return res, matErr
	case failed > 0:
		c.stats.FetchFailed++
		c.emitB(EventFetchFail, clip, failed, now)
		res.Outcome = MissDegraded
	case streamed > 0:
		c.stats.Bypassed++
		c.emitB(EventBypass, clip, streamed, now)
		res.Outcome = MissBypassed
	default:
		c.emitB(EventMiss, clip, delivered, now)
		res.Outcome = MissCached
	}
	return res, nil
}

// insertSegment materializes one missing segment, evicting via
// makeRoomSegment first. The first segment of a clip makes the clip
// resident (policy OnInsert); every insert notifies SegmentAware policies
// of the new resident byte total.
func (c *Cache) insertSegment(clip media.Clip, seg int32, now vtime.Time) error {
	if sm := c.segs[clip.ID]; sm != nil && sm.has(seg) {
		return nil
	}
	b := c.segmentBytes(clip, seg)
	if err := c.makeRoomSegment(clip, b, now); err != nil {
		return err
	}
	// Re-read after makeRoomSegment: trimming may have evicted this clip's
	// own meta (a partially resident clip is a legal victim).
	sm := c.segs[clip.ID]
	if sm == nil {
		sm = newSegMeta(clip, c.SegmentsOf(clip))
		c.segs[clip.ID] = sm
	}
	sm.set(seg)
	sm.resBytes += b
	c.used += b
	c.residentSegs++
	if sm.resident == 1 {
		c.resident[clip.ID] = struct{}{}
		c.byID.Put(clip.ID, clip)
		c.setDeadline(clip.ID, now)
		c.mirrorAdd(clip.ID)
		c.policy.OnInsert(clip, now)
	}
	c.notifyResidentBytes(clip, sm.resBytes, now)
	return nil
}

// makeRoomSegment frees at least need bytes by trimming policy-selected
// victims tail-first. Victim batches are validated in full before any trim,
// exactly like makeRoom; unlike makeRoom, a victim that satisfies the
// remaining need mid-batch stops the batch — partial trims make overshoot
// pointless.
func (c *Cache) makeRoomSegment(incoming media.Clip, need media.Bytes, now vtime.Time) error {
	for c.capacity-c.used < need {
		shortfall := need - (c.capacity - c.used)
		c.stats.VictimCalls++
		victims := c.policy.Victims(incoming, c, shortfall, now)
		if len(victims) == 0 {
			return fmt.Errorf("%w: need %v, free %v", ErrPolicyNoVictim, shortfall, c.FreeBytes())
		}
		if c.victimScratch == nil {
			c.victimScratch = make(map[media.ClipID]struct{}, len(victims))
		} else {
			clear(c.victimScratch)
		}
		for _, vid := range victims {
			if _, dup := c.victimScratch[vid]; dup {
				return fmt.Errorf("%w: duplicate id %d", ErrBadVictim, vid)
			}
			c.victimScratch[vid] = struct{}{}
			if _, ok := c.resident[vid]; !ok {
				return fmt.Errorf("%w: id %d", ErrBadVictim, vid)
			}
		}
		for _, vid := range victims {
			if c.capacity-c.used >= need {
				break
			}
			c.trimVictim(vid, need, now)
		}
	}
	return nil
}

// trimVictim evicts segments of victim vid, tail-first, until need bytes
// are free or the victim is empty. Unpinned segments (index >= the
// WithPrefixAdmission count) go first, highest index down; the pinned
// prefix is consumed only after every unpinned segment is gone. Dropping
// the last segment evicts the clip outright (policy OnEvict, EventEviction);
// a partial trim keeps the clip resident and emits EventTrim.
func (c *Cache) trimVictim(vid media.ClipID, need media.Bytes, now vtime.Time) {
	sm := c.segs[vid]
	if sm == nil || sm.resident == 0 {
		return
	}
	clip := sm.clip
	var trimmed media.Bytes
	var ntrim uint64
	drop := func(hi, lo int32) {
		for i := hi; i >= lo; i-- {
			if c.capacity-c.used >= need {
				return
			}
			if !sm.has(i) {
				continue
			}
			b := c.segmentBytes(clip, i)
			sm.clear(i)
			sm.resBytes -= b
			c.used -= b
			c.residentSegs--
			trimmed += b
			ntrim++
		}
	}
	pinned := int32(c.prefixSegs)
	if pinned > sm.nSegs {
		pinned = sm.nSegs
	}
	drop(sm.nSegs-1, pinned)
	if c.capacity-c.used < need {
		drop(pinned-1, 0)
	}
	if ntrim == 0 {
		return
	}
	c.stats.SegmentsEvicted += ntrim
	c.stats.BytesEvicted += trimmed
	if sm.resident == 0 {
		delete(c.segs, vid)
		delete(c.resident, vid)
		c.byID.Delete(vid)
		c.mirrorRemove(vid)
		c.clearDeadline(vid)
		c.stats.Evictions++
		c.policy.OnEvict(vid, now)
		c.emitB(EventEviction, clip, trimmed, now)
		return
	}
	c.emitB(EventTrim, clip, trimmed, now)
	c.notifyResidentBytes(clip, sm.resBytes, now)
}

// adoptFullClip records full segment residency for a clip the whole-clip
// bookkeeping already inserted (Warm, Restore of fully resident clips).
func (c *Cache) adoptFullClip(clip media.Clip) {
	n := c.SegmentsOf(clip)
	sm := newSegMeta(clip, n)
	for i := int32(0); i < int32(n); i++ {
		sm.set(i)
	}
	sm.resBytes = clip.Size
	c.segs[clip.ID] = sm
	c.residentSegs += n
	c.notifyResidentBytes(clip, clip.Size, c.clock)
}

// notifyResidentBytes forwards a resident-byte change to a SegmentAware
// policy, if the policy is one.
func (c *Cache) notifyResidentBytes(clip media.Clip, resident media.Bytes, now vtime.Time) {
	if c.segAware != nil {
		c.segAware.OnResidentBytes(clip, resident, now)
	}
}

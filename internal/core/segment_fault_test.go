package core_test

// segment_fault_test.go extends the ISSUE 4 byte-accounting property to the
// segmented engine: under a 20% error-rate fault profile, every touched
// segment's bytes land in exactly one of BytesHit, BytesFetched or
// BytesFailed, cross-checked against an independent tally kept by the
// per-segment fetch hook itself.

import (
	"fmt"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	_ "mediacache/internal/policy/all"
	"mediacache/internal/policy/registry"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// TestSegmentedByteIdentityUnderFaults drives a segmented, prefix-pinned LRU
// cache through a ranged Zipf trace with 20% of segment fetches failing, and
// checks the per-segment byte identities against the hook's own ledger.
func TestSegmentedByteIdentityUnderFaults(t *testing.T) {
	repo := media.PaperRepository()
	pmf := make([]float64, repo.N())
	for i := range pmf {
		pmf[i] = 1 / float64(repo.N())
	}
	policy, err := registry.Build("lru", repo, pmf, 7)
	if err != nil {
		t.Fatal(err)
	}

	const segSize = 64 * media.MB
	segBytes := func(clip media.Clip, seg int32) media.Bytes {
		b := clip.Size - media.Bytes(seg)*segSize
		if b > segSize {
			b = segSize
		}
		return b
	}

	inj := fault.New(fault.Profile{ErrorRate: 0.2}, 7)
	var deliveredBytes, failedBytes media.Bytes
	var failures, fetches uint64
	cache, err := core.New(repo, repo.CacheSizeForRatio(0.05), policy,
		core.WithSegments(segSize), core.WithPrefixAdmission(2),
		core.WithSegmentFetch(func(clip media.Clip, seg int32, _ vtime.Time) error {
			fetches++
			if f := inj.Next(); f.Failed() {
				failedBytes += segBytes(clip, seg)
				failures++
				return fmt.Errorf("injected %s fault fetching clip %d segment %d", f.Kind, clip.ID, seg)
			}
			deliveredBytes += segBytes(clip, seg)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewRangeGenerator(repo, zipf.MustNew(repo.N(), zipf.DefaultMean), 7,
		workload.DefaultRangeConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cached uint64
	for i := 0; i < 2000; i++ {
		req := gen.Next()
		res, err := cache.RequestRange(req.Clip, req.Start, req.Length)
		if err != nil {
			t.Fatalf("request %d (%+v): %v", i, req, err)
		}
		if res.Outcome == core.MissCached {
			cached++
		}
		if res.BytesFailed > 0 && res.Outcome != core.MissDegraded && res.Outcome != core.MissError {
			t.Fatalf("request %d: failed bytes under outcome %v", i, res.Outcome)
		}
		if cache.UsedBytes() > cache.Capacity() {
			t.Fatalf("request %d: capacity exceeded", i)
		}
	}

	s := cache.Stats()
	if failures == 0 {
		t.Fatal("20% error rate injected no faults; test vacuous")
	}
	if s.SegmentsFetched != fetches-failures {
		t.Fatalf("SegmentsFetched = %d, hook delivered %d of %d fetches",
			s.SegmentsFetched, fetches-failures, fetches)
	}
	if s.BytesFailed != failedBytes {
		t.Fatalf("BytesFailed = %v, hook saw %v fail", s.BytesFailed, failedBytes)
	}
	// Failed segments deliver nothing: fetched bytes must equal exactly what
	// the hook delivered. Every path here is cacheable (prefix admission and
	// LRU admit everything; all clips fit at ratio 0.05), so no bypass
	// streaming muddies the ledger.
	if s.BytesFetched != deliveredBytes {
		t.Fatalf("BytesFetched = %v, hook delivered %v (failed segments miscounted?)",
			s.BytesFetched, deliveredBytes)
	}
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Fatalf("segment byte identity broken: %+v", s)
	}
	if s.Hits+cached+s.Bypassed+s.FetchFailed != s.Requests {
		t.Fatalf("outcome identity broken: %+v", s)
	}
	if s.PartialHits == 0 {
		t.Fatal("ranged trace never partially hit; test vacuous")
	}
}

package core_test

// property_test.go drives every registered policy through randomized
// operation sequences and asserts the engine invariants that must hold no
// matter what the policy decides: capacity is never exceeded, byte
// bookkeeping balances, and observers see a miss's evictions before the
// miss itself.

import (
	"fmt"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	_ "mediacache/internal/policy/all"
	"mediacache/internal/policy/registry"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// randomRepo builds a repository of n clips with sizes drawn from a few
// orders of magnitude, so small-vs-huge interactions are exercised.
func randomRepo(t *testing.T, src *randutil.Source, n int) *media.Repository {
	t.Helper()
	clips := make([]media.Clip, n)
	for i := range clips {
		kind, rate := media.Video, media.BitsPerSecond(3_500_000)
		if src.Intn(4) == 0 {
			kind, rate = media.Audio, 128_000
		}
		size := media.Bytes(64<<10) << src.Intn(7) // 64 KiB .. 4 MiB
		size += media.Bytes(src.Intn(1 << 10))     // break alignment
		clips[i] = media.Clip{ID: media.ClipID(i + 1), Kind: kind, Size: size, DisplayRate: rate}
	}
	repo, err := media.NewRepository(clips)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// orderObserver asserts the documented event order within one request: all
// of a miss's evictions are delivered before its concluding EventMiss. It
// also balances inserted/evicted bytes for the bookkeeping check.
type orderObserver struct {
	t             *testing.T
	lastMissAt    vtime.Time
	insertedBytes media.Bytes
	evictedBytes  media.Bytes
	evictions     uint64
}

func (o *orderObserver) Observe(ev core.Event) {
	switch ev.Type {
	case core.EventEviction:
		if ev.Now == o.lastMissAt {
			o.t.Errorf("eviction of clip %d at t=%d delivered after that tick's miss event",
				ev.Clip.ID, ev.Now)
		}
		o.evictedBytes += ev.Clip.Size
		o.evictions++
	case core.EventMiss:
		o.insertedBytes += ev.Clip.Size
		o.lastMissAt = ev.Now
	}
}

// checkInvariants asserts the per-request engine invariants.
func checkInvariants(t *testing.T, c *core.Cache, obs *orderObserver) {
	t.Helper()
	if c.UsedBytes() > c.Capacity() {
		t.Fatalf("used %v exceeds capacity %v", c.UsedBytes(), c.Capacity())
	}
	if c.UsedBytes() < 0 {
		t.Fatalf("negative used bytes %v", c.UsedBytes())
	}
	var sum media.Bytes
	for clip := range c.Residents() {
		sum += clip.Size
	}
	if sum != c.UsedBytes() {
		t.Fatalf("bookkeeping drift: resident clips sum to %v, UsedBytes reports %v",
			sum, c.UsedBytes())
	}
	if got, want := c.NumResident(), len(core.CollectResidentIDs(c)); got != want {
		t.Fatalf("NumResident %d != len(ResidentIDs) %d", got, want)
	}
	s := c.Stats()
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Fatalf("byte accounting: hit %v + fetched %v + failed %v != referenced %v",
			s.BytesHit, s.BytesFetched, s.BytesFailed, s.BytesReferenced)
	}
	if s.Hits > s.Requests {
		t.Fatalf("hits %d exceed requests %d", s.Hits, s.Requests)
	}
	if obs.insertedBytes-obs.evictedBytes != c.UsedBytes() {
		t.Fatalf("event stream imbalance: inserted %v - evicted %v != used %v",
			obs.insertedBytes, obs.evictedBytes, c.UsedBytes())
	}
	if obs.evictions != s.Evictions {
		t.Fatalf("observer saw %d evictions, stats report %d", obs.evictions, s.Evictions)
	}
	if obs.evictedBytes != s.BytesEvicted {
		t.Fatalf("observer evicted bytes %v, stats report %v", obs.evictedBytes, s.BytesEvicted)
	}
}

// driveRandom issues requests skewed toward a small hot set (so hits,
// misses and evictions all occur) and checks every invariant after each.
// The returned tally maps each observed Outcome to its occurrence count.
func driveRandom(t *testing.T, c *core.Cache, obs *orderObserver, src *randutil.Source, requests int) map[core.Outcome]uint64 {
	t.Helper()
	n := c.Repository().N()
	outcomes := make(map[core.Outcome]uint64)
	for i := 0; i < requests; i++ {
		id := media.ClipID(1 + src.Intn(n))
		if src.Float64() < 0.5 {
			id = media.ClipID(1 + src.Intn(1+n/4)) // hot quarter
		}
		resident := c.Resident(id)
		out, err := c.Request(id)
		if err != nil {
			t.Fatalf("request %d (clip %d): %v", i, id, err)
		}
		outcomes[out]++
		if resident != out.IsHit() {
			t.Fatalf("request %d: clip %d resident=%v but outcome %v", i, id, resident, out)
		}
		if out == core.MissCached && !c.Resident(id) {
			t.Fatalf("request %d: %v outcome but clip %d not resident", i, out, id)
		}
		if out != core.Hit && out != core.MissCached && c.Resident(id) {
			t.Fatalf("request %d: %v outcome but clip %d was materialized", i, out, id)
		}
		checkInvariants(t, c, obs)
		checkOutcomeIdentity(t, c, outcomes)
	}
	if got := c.Stats().Requests; got != uint64(requests) {
		t.Fatalf("stats report %d requests, drove %d", got, requests)
	}
	return outcomes
}

// checkOutcomeIdentity cross-checks the stats counters against externally
// tallied outcomes and asserts the accounting identity
//
//	Requests == Hits + MissCached + Bypassed + FetchFailed
//
// where bypassed covers MissBypassed, MissTooLarge and MissError (ISSUE 4:
// the engine's error paths must keep the identity closed).
func checkOutcomeIdentity(t *testing.T, c *core.Cache, outcomes map[core.Outcome]uint64) {
	t.Helper()
	s := c.Stats()
	if got := outcomes[core.Hit]; got != s.Hits {
		t.Fatalf("outcome tally: %d hits observed, stats report %d", got, s.Hits)
	}
	bypassed := outcomes[core.MissBypassed] + outcomes[core.MissTooLarge] + outcomes[core.MissError]
	if bypassed != s.Bypassed {
		t.Fatalf("outcome tally: %d bypass-class outcomes observed, stats report %d", bypassed, s.Bypassed)
	}
	if got := outcomes[core.MissDegraded]; got != s.FetchFailed {
		t.Fatalf("outcome tally: %d degraded outcomes observed, stats report %d", got, s.FetchFailed)
	}
	if s.Hits+outcomes[core.MissCached]+s.Bypassed+s.FetchFailed != s.Requests {
		t.Fatalf("outcome identity broken: hits %d + cached %d + bypassed %d + fetchFailed %d != requests %d",
			s.Hits, outcomes[core.MissCached], s.Bypassed, s.FetchFailed, s.Requests)
	}
}

// TestEngineInvariantsAllPolicies runs every registered policy, across
// several random repositories and cache geometries, through the same
// randomized request generator.
func TestEngineInvariantsAllPolicies(t *testing.T) {
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < 3; trial++ {
				src := randutil.NewSource(uint64(trial + 1)).Split("property").Split(name)
				n := 8 + src.Intn(33) // 8..40 clips
				repo := randomRepo(t, src.Split("repo"), n)

				pmf := make([]float64, n)
				for i := range pmf {
					pmf[i] = 1 / float64(n)
				}
				policy, err := registry.Build(name, repo, pmf, uint64(trial+1))
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				// Capacity between ~12% and ~60% of the repository: small
				// enough to force evictions, sometimes below the largest clip
				// so the too-large bypass path runs too.
				capacity := repo.TotalSize()/8 + media.Bytes(src.Intn(int(repo.TotalSize()/2)))
				obs := &orderObserver{t: t}
				cache, err := core.New(repo, capacity, policy, core.WithObserver(obs))
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				driveRandom(t, cache, obs, src.Split("drive"), 400)

				// Reset must return the engine to a pristine state.
				cache.Reset()
				if cache.UsedBytes() != 0 || cache.NumResident() != 0 || cache.Stats() != (core.Stats{}) {
					t.Fatalf("trial %d: Reset left state behind: used=%v resident=%d stats=%+v",
						trial, cache.UsedBytes(), cache.NumResident(), cache.Stats())
				}
			}
		})
	}
}

// TestEngineInvariantsWithFetchFaults repeats the invariant drive with a
// deterministic failing fetch hook: degraded misses must never disturb the
// resident set or the byte bookkeeping.
func TestEngineInvariantsWithFetchFaults(t *testing.T) {
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src := randutil.NewSource(99).Split("property-fault").Split(name)
			n := 8 + src.Intn(33)
			repo := randomRepo(t, src.Split("repo"), n)
			pmf := make([]float64, n)
			for i := range pmf {
				pmf[i] = 1 / float64(n)
			}
			policy, err := registry.Build(name, repo, pmf, 99)
			if err != nil {
				t.Fatal(err)
			}
			fsrc := src.Split("fetch")
			obs := &orderObserver{t: t}
			cache, err := core.New(repo, repo.TotalSize()/4, policy,
				core.WithObserver(obs),
				core.WithFetch(func(clip media.Clip, _ vtime.Time) error {
					if fsrc.Float64() < 0.3 {
						return fmt.Errorf("injected failure fetching clip %d", clip.ID)
					}
					return nil
				}))
			if err != nil {
				t.Fatal(err)
			}
			driveRandom(t, cache, obs, src.Split("drive"), 400)
			if cache.Stats().FetchFailed == 0 {
				t.Fatal("30% fetch failure rate over 400 requests produced no degraded misses")
			}
		})
	}
}

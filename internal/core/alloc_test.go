package core

import (
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// noopPolicy never evicts and does no per-request bookkeeping, isolating
// the engine's own request-path cost.
type noopPolicy struct{}

func (noopPolicy) Name() string                        { return "noop" }
func (noopPolicy) Record(media.Clip, vtime.Time, bool) {}
func (noopPolicy) Admit(media.Clip, vtime.Time) bool   { return true }
func (noopPolicy) OnInsert(media.Clip, vtime.Time)     {}
func (noopPolicy) OnEvict(media.ClipID, vtime.Time)    {}
func (noopPolicy) Reset()                              {}
func (noopPolicy) Victims(_ media.Clip, view ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	var out []media.ClipID
	var freed media.Bytes
	for c := range view.Residents() {
		if freed >= need {
			break
		}
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// TestRequestZeroAllocsNilObserver asserts the hot-path guarantee the
// observability layer is built around: with no observer installed,
// Cache.Request allocates nothing on hits and on eviction-free misses.
// `make check` runs this as the allocation gate.
func TestRequestZeroAllocsNilObserver(t *testing.T) {
	repo := smallRepo(t)
	cache, err := New(repo, 50, noopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	mustRequest(t, cache, 1)
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := cache.Request(1); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("hit path allocs/op = %v, want 0", avg)
	}

	// Eviction-free miss path: alternate two clips inside a capacity that
	// holds both, evicting the other each time... that would evict. Use a
	// fresh cache per pair instead: clip 1 resident, request clip 2 which
	// fits beside it, then reset residency by evicting nothing — simplest
	// is measuring the first-fill misses of a large cache.
	big, err := media.NewRepository(manyClips(64))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(big, 63*10, noopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	next := media.ClipID(0)
	if avg := testing.AllocsPerRun(50, func() {
		next++
		if _, err := cold.Request(next); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		// Residency-map growth may allocate occasionally; anything beyond
		// that signals an observer-layer regression.
		t.Errorf("cold miss path allocs/op = %v, want <= 1", avg)
	}
}

// TestRequestAllocsUnchangedWithObserver asserts the enabled path adds no
// heap allocations either: events are passed by value to the observer.
func TestRequestAllocsUnchangedWithObserver(t *testing.T) {
	repo := smallRepo(t)
	obs := &countingObserver{}
	cache, err := New(repo, 50, noopPolicy{}, WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	mustRequest(t, cache, 1)
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := cache.Request(1); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("observed hit path allocs/op = %v, want 0", avg)
	}
	if obs.n == 0 {
		t.Fatal("observer saw no events")
	}
}

// countingObserver counts events without retaining them (retention would
// itself allocate and mask the engine's behaviour).
type countingObserver struct{ n int }

func (o *countingObserver) Observe(Event) { o.n++ }

// manyClips builds n equal-size clips.
func manyClips(n int) []media.Clip {
	clips := make([]media.Clip, n)
	for i := range clips {
		clips[i] = media.Clip{ID: media.ClipID(i + 1), Size: 10}
	}
	return clips
}

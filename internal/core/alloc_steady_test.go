package core_test

// alloc_steady_test.go gates the ISSUE 4 tentpole's allocation guarantee: in
// steady state (cache warm, evictions ongoing) the indexed victim-selection
// paths must not allocate per Victims call. The policies measured here are
// the walk-only selectors whose Victims has no side effects beyond reusable
// buffers; the pop-based selectors (LRU-SK, DYNSimple) mutate their indexes
// per call and are covered by the differential and property suites instead.
// `make alloccheck` runs this file alongside the request-path gates.

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/gdfreq"
	"mediacache/internal/policy/gdsp"
	"mediacache/internal/policy/greedydual"
	"mediacache/internal/policy/lfu"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/policy/random"
	"mediacache/internal/policy/simple"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// steadyVictimsAllocs warms a cache into an eviction-heavy steady state and
// measures the allocations of direct Victims calls against the live resident
// view.
func steadyVictimsAllocs(t *testing.T, policy core.Policy) float64 {
	t.Helper()
	repo := media.PaperRepository()
	cache, err := core.New(repo, repo.CacheSizeForRatio(0.05), policy)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.MustNewGenerator(zipf.MustNew(repo.N(), zipf.DefaultMean), 21)
	for i := 0; i < 5000; i++ {
		if _, err := cache.Request(gen.Next()); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if cache.Stats().Evictions == 0 {
		t.Fatal("steady-state drive produced no evictions; measurement vacuous")
	}
	// An incoming clip the policy must make room for. Asking for a few
	// clips' worth of space exercises the multi-victim walk.
	incoming := repo.Clip(1)
	need := incoming.Size * 3
	now := vtime.Time(1 << 20)
	return testing.AllocsPerRun(200, func() {
		if victims := policy.Victims(incoming, cache, need, now); len(victims) == 0 {
			t.Fatal("no victims from a full cache")
		}
	})
}

// TestVictimsZeroAllocsSteadyState is the acceptance gate for the indexed
// eviction core: GreedyDual and LRU-K (and the other walk-only selectors)
// must select victims with zero allocations per call once warm.
func TestVictimsZeroAllocsSteadyState(t *testing.T) {
	uniform := make([]float64, media.PaperRepository().N())
	for i := range uniform {
		uniform[i] = 1 / float64(len(uniform))
	}
	policies := []core.Policy{
		greedydual.New(greedydual.UniformCost, 42),
		gdfreq.New(nil, 42),
		gdsp.MustNew(nil, 0, 42),
		lruk.MustNew(media.PaperRepository().N(), 2),
		lfu.New(),
		lfu.NewDA(),
		simple.MustNew(uniform),
		random.New(42),
	}
	for _, p := range policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			if avg := steadyVictimsAllocs(t, p); avg != 0 {
				t.Errorf("steady-state Victims allocs/op = %v, want 0", avg)
			}
		})
	}
}

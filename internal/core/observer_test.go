package core

import (
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// recordingObserver captures the event stream.
type recordingObserver struct {
	events []Event
}

func (o *recordingObserver) Observe(ev Event) { o.events = append(o.events, ev) }

func (o *recordingObserver) types() []EventType {
	ts := make([]EventType, len(o.events))
	for i, ev := range o.events {
		ts[i] = ev.Type
	}
	return ts
}

func sameTypes(got, want []EventType) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestObserverEventOrdering pins the documented per-request event order:
// a hit emits [hit]; a cacheable miss emits its evictions first (in
// eviction order) and concludes with [miss]; a bypass emits [bypass].
func TestObserverEventOrdering(t *testing.T) {
	repo := smallRepo(t)
	obs := &recordingObserver{}
	cache, err := New(repo, 50, &fifoPolicy{}, WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	// Fill: two cold misses, no evictions.
	mustRequest(t, cache, 1) // size 10
	mustRequest(t, cache, 2) // size 20
	// Hit.
	mustRequest(t, cache, 1)
	// Clip 4 (size 40) needs 20 bytes freed: FIFO evicts 1 then 2.
	mustRequest(t, cache, 4)
	want := []EventType{
		EventMiss, EventMiss, EventHit,
		EventEviction, EventEviction, EventMiss,
	}
	if !sameTypes(obs.types(), want) {
		t.Fatalf("event stream = %v, want %v", obs.types(), want)
	}
	// The evictions belong to the concluding miss: victims 1 and 2 in
	// insertion order, then the incoming clip 4.
	tail := obs.events[len(obs.events)-3:]
	if tail[0].Clip.ID != 1 || tail[1].Clip.ID != 2 || tail[2].Clip.ID != 4 {
		t.Fatalf("eviction batch clips = %d,%d then miss %d",
			tail[0].Clip.ID, tail[1].Clip.ID, tail[2].Clip.ID)
	}
	// All events of one request share its virtual time.
	if tail[0].Now != tail[2].Now {
		t.Fatalf("eviction at t=%d, miss at t=%d", tail[0].Now, tail[2].Now)
	}
}

func TestObserverBypassEvents(t *testing.T) {
	repo := smallRepo(t)
	obs := &recordingObserver{}
	decline := func(media.Clip, vtime.Time) bool { return false }
	cache, err := New(repo, 35, &fifoPolicy{}, WithAdmission(decline), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	mustRequest(t, cache, 1) // declined by the admission hook
	mustRequest(t, cache, 4) // size 40 > capacity 35: too large
	if !sameTypes(obs.types(), []EventType{EventBypass, EventBypass}) {
		t.Fatalf("event stream = %v, want two bypasses", obs.types())
	}
}

func TestObserverRestoreEvents(t *testing.T) {
	repo := smallRepo(t)
	cache, err := New(repo, 50, &fifoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	mustRequest(t, cache, 1)
	mustRequest(t, cache, 2)
	snap := cache.Snapshot()

	obs := &recordingObserver{}
	fresh, err := New(repo, 50, &fifoPolicy{}, WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !sameTypes(obs.types(), []EventType{EventRestore, EventRestore}) {
		t.Fatalf("event stream = %v, want two restores", obs.types())
	}
	if obs.events[0].Clip.ID != 1 || obs.events[1].Clip.ID != 2 {
		t.Fatalf("restored clips = %d,%d, want 1,2",
			obs.events[0].Clip.ID, obs.events[1].Clip.ID)
	}
}

func TestCombineObservers(t *testing.T) {
	a, b := &recordingObserver{}, &recordingObserver{}
	if CombineObservers(nil, nil) != nil {
		t.Error("all-nil combination should be nil")
	}
	if got := CombineObservers(nil, a); got != Observer(a) {
		t.Error("single observer should be returned unwrapped")
	}
	multi := CombineObservers(a, b)
	multi.Observe(Event{Type: EventHit})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("fan-out delivered %d/%d events, want 1/1", len(a.events), len(b.events))
	}
}

func TestWithObserverValidation(t *testing.T) {
	if _, err := New(smallRepo(t), 50, &fifoPolicy{}, WithObserver(nil)); err == nil {
		t.Error("nil observer should fail construction")
	}
}

func mustRequest(t *testing.T, c *Cache, id media.ClipID) Outcome {
	t.Helper()
	out, err := c.Request(id)
	if err != nil {
		t.Fatalf("Request(%d): %v", id, err)
	}
	return out
}

func TestEventTypeString(t *testing.T) {
	for ev, want := range map[EventType]string{
		EventHit: "hit", EventMiss: "miss", EventEviction: "eviction",
		EventBypass: "bypass", EventRestore: "restore", EventType(99): "EventType(99)",
	} {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), want)
		}
	}
}

package core

import (
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

func TestWithAdmissionHook(t *testing.T) {
	repo := smallRepo(t)
	cache, err := New(repo, 50, &fifoPolicy{},
		WithAdmission(func(c media.Clip, _ vtime.Time) bool { return c.ID != 2 }))
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := cache.Request(1); out != MissCached {
		t.Fatalf("clip 1 outcome = %v", out)
	}
	if out, _ := cache.Request(2); out != MissBypassed {
		t.Fatalf("vetoed clip outcome = %v", out)
	}
	st := cache.Stats()
	if st.Bypassed != 1 {
		t.Fatalf("bypassed = %d", st.Bypassed)
	}
	// A veto must fire before the policy sees Admit.
	p := &fifoPolicy{admitFn: func(media.Clip) bool {
		t.Error("policy.Admit called despite engine veto")
		return true
	}}
	cache, err = New(repo, 50, p,
		WithAdmission(func(media.Clip, vtime.Time) bool { return false }))
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := cache.Request(1); out != MissBypassed {
		t.Fatalf("outcome = %v", out)
	}

	if _, err := New(repo, 50, &fifoPolicy{}, WithAdmission(nil)); err == nil {
		t.Error("nil admission hook should fail")
	}
}

func TestWithClock(t *testing.T) {
	repo := smallRepo(t)
	cache, err := New(repo, 50, &fifoPolicy{}, WithClock(1000))
	if err != nil {
		t.Fatal(err)
	}
	if cache.Now() != 1000 {
		t.Fatalf("initial clock = %v", cache.Now())
	}
	cache.Request(1)
	if cache.Now() != 1001 {
		t.Fatalf("clock after request = %v", cache.Now())
	}
	// Reset rewinds to the configured origin, not zero.
	cache.Reset()
	if cache.Now() != 1000 {
		t.Fatalf("clock after reset = %v", cache.Now())
	}

	if _, err := New(repo, 50, &fifoPolicy{}, WithClock(-1)); err == nil {
		t.Error("negative clock should fail")
	}
}

// binderPolicy records whether New bound it.
type binderPolicy struct {
	fifoPolicy
	view ResidentView
}

func (p *binderPolicy) Bind(view ResidentView) { p.view = view }

func TestNewAutoBindsBinder(t *testing.T) {
	repo := smallRepo(t)
	p := &binderPolicy{}
	cache, err := New(repo, 50, p)
	if err != nil {
		t.Fatal(err)
	}
	if p.view == nil {
		t.Fatal("core.New did not bind a Binder policy")
	}
	cache.Request(1)
	if !p.view.Resident(1) {
		t.Error("bound view does not track residency")
	}
}

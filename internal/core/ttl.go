package core

// ttl.go implements catalog dynamics (ISSUE 8): explicit invalidation and
// per-clip TTL expiry. Both drop residency and credit bytes back without
// ticking the virtual clock or touching the request counters, so the
// counting identity Requests == Hits + MissCached + Bypassed + FetchFailed
// and the byte identity BytesHit + BytesFetched + BytesFailed ==
// BytesReferenced hold by construction under any purge/expiry schedule.
//
// Expiry is lazy-plus-amortized: each request checks only the clip it
// references, and a sweep over the resident index runs every sweepEvery
// ticks. The sweep rides the ordinary request path (Request, ApplyHit,
// RequestRange all tick the clock), so the PR 7 lock-reduced front-end
// needs no extra engine interaction: batched-touch drains replay through
// ApplyHit and thereby advance the sweep too, keeping pure hits zero-lock.

import (
	"fmt"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// WithTTL gives every clip materialized in the cache a time-to-live of ttl
// virtual ticks: a clip inserted at time t expires at t+ttl and is dropped
// by the next request-path check or amortized sweep that observes the
// deadline passed. ttl must be positive; a cache built without this option
// never expires anything.
func WithTTL(ttl vtime.Duration) Option {
	return func(c *Cache) error {
		if ttl <= 0 {
			return fmt.Errorf("core: TTL must be positive, got %d", ttl)
		}
		c.ttl = ttl
		return nil
	}
}

// TTL returns the per-clip time-to-live in virtual ticks, or zero when
// expiry is disabled.
func (c *Cache) TTL() vtime.Duration { return c.ttl }

// DeadlineOf returns the virtual time at which resident clip id expires,
// or zero when expiry is disabled or the clip is not resident.
func (c *Cache) DeadlineOf(id media.ClipID) vtime.Time {
	if c.ttl == 0 {
		return 0
	}
	return c.deadlines[id]
}

// setDeadline records the expiry deadline for a clip becoming resident at
// time now. Must run before the mirror publication (mirrorAdd reads the
// deadline so lock-free readers see residency and expiry atomically).
func (c *Cache) setDeadline(id media.ClipID, now vtime.Time) {
	if c.ttl > 0 {
		c.deadlines[id] = now + vtime.Time(c.ttl)
	}
}

// clearDeadline drops a clip's expiry deadline when it leaves residency.
func (c *Cache) clearDeadline(id media.ClipID) {
	if c.ttl > 0 {
		delete(c.deadlines, id)
	}
}

// Invalidate drops clip id from the cache — a catalog event (the clip
// perished upstream), not a capacity eviction. Residency is dropped at
// whatever granularity is cached (whole clip or resident segments), the
// bytes are credited back, the policy and any attached ResidencyMirror are
// notified, and Stats.Invalidated/BytesInvalidated accrue. Invalidation
// ticks no clock and counts no request. The freed byte count is returned;
// invalidating a non-resident clip is a no-op returning zero.
func (c *Cache) Invalidate(id media.ClipID) media.Bytes {
	return c.invalidate(id, c.clock, false)
}

// invalidate is the shared implementation behind Invalidate and TTL expiry.
func (c *Cache) invalidate(id media.ClipID, now vtime.Time, expired bool) media.Bytes {
	clip, ok := c.byID.Get(id)
	if !ok {
		return 0
	}
	freed := clip.Size
	if c.segSize > 0 {
		if sm := c.segs[id]; sm != nil {
			// Segment-aware drop: credit only the resident bytes. Unlike a
			// capacity trim this is not an eviction, so SegmentsEvicted and
			// the eviction counters stay untouched.
			freed = sm.resBytes
			c.residentSegs -= int(sm.resident)
			delete(c.segs, id)
		}
	}
	delete(c.resident, id)
	c.byID.Delete(id)
	c.mirrorRemove(id)
	c.clearDeadline(id)
	c.used -= freed
	c.stats.Invalidated++
	if expired {
		c.stats.Expired++
	}
	c.stats.BytesInvalidated += freed
	c.policy.OnEvict(id, now)
	c.emitB(EventInvalidate, clip, freed, now)
	return freed
}

// SweepExpired immediately drops every resident clip whose TTL deadline has
// passed, regardless of the amortized sweep cadence, and returns how many
// clips were dropped. A no-op (returning zero) when expiry is disabled.
func (c *Cache) SweepExpired() int {
	return c.sweepExpired(c.clock)
}

// sweepExpired walks the resident index in ascending ID order collecting
// expired clips, then invalidates them in that order. Walking the ordered
// index — never the deadlines map, whose iteration order is randomized —
// keeps the OnEvict/event stream deterministic for a given request history.
func (c *Cache) sweepExpired(now vtime.Time) int {
	if c.ttl == 0 || len(c.deadlines) == 0 {
		return 0
	}
	c.expireScratch = c.expireScratch[:0]
	c.byID.Ascend(func(id media.ClipID, _ media.Clip) bool {
		if dl, ok := c.deadlines[id]; ok && now > dl {
			c.expireScratch = append(c.expireScratch, id)
		}
		return true
	})
	for _, id := range c.expireScratch {
		c.invalidate(id, now, true)
	}
	return len(c.expireScratch)
}

// maybeSweep runs the amortized expiry sweep when sweepEvery ticks have
// elapsed since the last one. Called from every clock-advancing path.
func (c *Cache) maybeSweep(now vtime.Time) {
	if now-c.lastSweep >= c.sweepEvery {
		c.lastSweep = now
		c.sweepExpired(now)
	}
}

// expireIfDue lazily expires the requested clip when its deadline has
// passed, so a request can never hit stale content even between sweeps.
func (c *Cache) expireIfDue(id media.ClipID, now vtime.Time) {
	if dl, ok := c.deadlines[id]; ok && now > dl {
		c.invalidate(id, now, true)
	}
}

package core_test

// fault_accounting_test.go pins the ISSUE 4 miss-path accounting fix under a
// realistic fault profile: bytes are counted as fetched ONLY when the remote
// fetch actually delivered them. Before the fix the engine credited
// BytesFetched on the way into the fetch hook, so every failed fetch
// inflated network-traffic numbers by a full clip.

import (
	"fmt"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	_ "mediacache/internal/policy/all"
	"mediacache/internal/policy/registry"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// TestBytesFetchedExcludesFailedFetches drives an LRU cache through a Zipf
// trace against a 20% error-rate fault profile and cross-checks every byte
// counter against an independent tally kept by the fetch hook itself.
func TestBytesFetchedExcludesFailedFetches(t *testing.T) {
	repo := media.PaperRepository()
	pmf := make([]float64, repo.N())
	for i := range pmf {
		pmf[i] = 1 / float64(repo.N())
	}
	policy, err := registry.Build("lru", repo, pmf, 7)
	if err != nil {
		t.Fatal(err)
	}

	inj := fault.New(fault.Profile{ErrorRate: 0.2}, 7)
	var deliveredBytes, failedBytes media.Bytes
	var failures uint64
	cache, err := core.New(repo, repo.CacheSizeForRatio(0.05), policy,
		core.WithFetch(func(clip media.Clip, _ vtime.Time) error {
			if f := inj.Next(); f.Failed() {
				failedBytes += clip.Size
				failures++
				return fmt.Errorf("injected %s fault fetching clip %d", f.Kind, clip.ID)
			}
			deliveredBytes += clip.Size
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}

	gen := workload.MustNewGenerator(zipf.MustNew(repo.N(), zipf.DefaultMean), 7)
	var cached uint64
	for i := 0; i < 2000; i++ {
		out, err := cache.Request(gen.Next())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if out == core.MissCached {
			cached++
		}
	}

	s := cache.Stats()
	if failures == 0 {
		t.Fatal("20% error rate over 2000 requests injected no faults; test vacuous")
	}
	if s.FetchFailed != failures {
		t.Fatalf("FetchFailed = %d, hook saw %d failures", s.FetchFailed, failures)
	}
	if s.BytesFailed != failedBytes {
		t.Fatalf("BytesFailed = %v, hook saw %v fail", s.BytesFailed, failedBytes)
	}
	// The regression: failed fetches deliver nothing, so fetched bytes must
	// equal exactly what the hook delivered (no bypass paths run here — every
	// clip fits and LRU admits everything).
	if s.BytesFetched != deliveredBytes {
		t.Fatalf("BytesFetched = %v, hook delivered %v (failed fetches miscounted?)",
			s.BytesFetched, deliveredBytes)
	}
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Fatalf("byte identity broken: %+v", s)
	}
	if s.Hits+cached+s.Bypassed+s.FetchFailed != s.Requests {
		t.Fatalf("outcome identity broken: %+v", s)
	}
}

package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// Snapshot captures a cache's persistent state: the resident clip set, the
// virtual clock and the accumulated statistics. It models an FMC device
// powering down with a disk-backed cache (Section 1: "configured with an
// inexpensive magnetic disk drive") — the cached bytes survive, so on
// restart the device restores residency instead of refetching everything.
//
// Policy bookkeeping (reference histories, priorities) is deliberately not
// part of the snapshot: it is advisory state that policies rebuild as
// requests flow, and serializing every policy's internals would couple the
// format to implementation details. Restore notifies the policy of each
// resident clip through OnInsert, the same adoption path used by Warm.
type Snapshot struct {
	// ResidentIDs is the resident clip set in ascending id order.
	ResidentIDs []media.ClipID
	// Clock is the virtual time at capture.
	Clock vtime.Time
	// Stats are the accumulated statistics at capture.
	Stats Stats
}

// Snapshot captures the cache's current persistent state.
func (c *Cache) Snapshot() Snapshot {
	return Snapshot{
		ResidentIDs: c.ResidentIDs(),
		Clock:       c.clock,
		Stats:       c.stats,
	}
}

// Restore replaces the cache's state with the snapshot's. The snapshot must
// be consistent with the repository and capacity: unknown ids, duplicates
// or a resident set exceeding capacity are rejected, leaving the cache
// untouched. The policy is reset and re-warmed via OnInsert.
func (c *Cache) Restore(s Snapshot) error {
	var total media.Bytes
	seen := make(map[media.ClipID]struct{}, len(s.ResidentIDs))
	for _, id := range s.ResidentIDs {
		clip, ok := c.repo.Lookup(id)
		if !ok {
			return fmt.Errorf("core: snapshot references unknown clip %d", id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("core: snapshot lists clip %d twice", id)
		}
		seen[id] = struct{}{}
		total += clip.Size
	}
	if total > c.capacity {
		return fmt.Errorf("core: snapshot holds %v, exceeding capacity %v", total, c.capacity)
	}
	if s.Clock < 0 {
		return fmt.Errorf("core: snapshot clock %d is negative", s.Clock)
	}
	c.resident = make(map[media.ClipID]struct{}, len(s.ResidentIDs))
	c.byID = rbtree.New[media.ClipID, media.Clip](lessClipID)
	c.used = 0
	c.clock = s.Clock
	c.stats = s.Stats
	c.policy.Reset()
	for _, id := range s.ResidentIDs {
		clip := c.repo.Clip(id)
		c.resident[id] = struct{}{}
		c.byID.Put(id, clip)
		c.used += clip.Size
		c.policy.OnInsert(clip, c.clock)
		c.emit(EventRestore, clip, c.clock)
	}
	return nil
}

// WriteSnapshot serializes the snapshot with encoding/gob.
func (s Snapshot) WriteSnapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return s, nil
}

package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// Snapshot captures a cache's persistent state: the resident clip set, the
// virtual clock and the accumulated statistics. It models an FMC device
// powering down with a disk-backed cache (Section 1: "configured with an
// inexpensive magnetic disk drive") — the cached bytes survive, so on
// restart the device restores residency instead of refetching everything.
//
// Policy bookkeeping (reference histories, priorities) is deliberately not
// part of the snapshot: it is advisory state that policies rebuild as
// requests flow, and serializing every policy's internals would couple the
// format to implementation details. Restore notifies the policy of each
// resident clip through OnInsert, the same adoption path used by Warm.
type Snapshot struct {
	// ResidentIDs is the fully resident clip set in ascending id order.
	// (For whole-clip caches that is every resident clip.)
	ResidentIDs []media.ClipID
	// Clock is the virtual time at capture.
	Clock vtime.Time
	// Stats are the accumulated statistics at capture.
	Stats Stats
	// SegmentSize is the capturing cache's segment granularity, zero for
	// whole-clip caches. Snapshots decode with gob, so pre-segment archives
	// read back with a zero here and restore unchanged.
	SegmentSize media.Bytes
	// Partial lists partially resident clips with their resident segment
	// indices in ascending order — present only for segmented captures,
	// sorted by clip id so encoding is deterministic.
	Partial []ClipSegments
	// TTLRemaining carries each resident clip's remaining time-to-live at
	// capture (deadline − clock), ascending by clip id. It is nil when the
	// capturing cache has expiry disabled, so TTL-off and pre-churn archives
	// encode byte-identically (gob omits zero-value fields). Remaining spans
	// are clock-relative rather than absolute deadlines, which makes them
	// portable across restores whose clock bases differ — a sharded pool
	// snapshot sums shard clocks but restores every shard at the snapshot
	// clock, and the cluster rebalance path moves snapshots between nodes
	// with unrelated histories.
	TTLRemaining []ClipTTL
}

// ClipSegments is one partially resident clip in a segmented Snapshot.
type ClipSegments struct {
	ID       media.ClipID
	Segments []int32
}

// ClipTTL is one resident clip's remaining time-to-live in a Snapshot
// taken from a cache with expiry enabled.
type ClipTTL struct {
	ID media.ClipID
	// Remaining is deadline − capture clock; it can be zero or negative for
	// a clip that is overdue but not yet lazily expired, in which case the
	// restoring cache expires it on first touch.
	Remaining vtime.Duration
}

// Snapshot captures the cache's current persistent state.
func (c *Cache) Snapshot() Snapshot {
	s := Snapshot{
		Clock:       c.clock,
		Stats:       c.stats,
		SegmentSize: c.segSize,
	}
	if c.ttl > 0 {
		ttls := make([]ClipTTL, 0, c.byID.Len())
		c.byID.Ascend(func(id media.ClipID, _ media.Clip) bool {
			ttls = append(ttls, ClipTTL{ID: id, Remaining: c.deadlines[id] - c.clock})
			return true
		})
		s.TTLRemaining = ttls
	}
	if c.segSize == 0 {
		ids := make([]media.ClipID, 0, c.byID.Len())
		c.byID.Ascend(func(id media.ClipID, _ media.Clip) bool {
			ids = append(ids, id)
			return true
		})
		s.ResidentIDs = ids
		return s
	}
	ids := make([]media.ClipID, 0, c.byID.Len())
	c.byID.Ascend(func(id media.ClipID, _ media.Clip) bool {
		sm := c.segs[id]
		if sm == nil || sm.resident == 0 {
			return true
		}
		if sm.resident == sm.nSegs {
			ids = append(ids, id)
			return true
		}
		segs := make([]int32, 0, sm.resident)
		for i := int32(0); i < sm.nSegs; i++ {
			if sm.has(i) {
				segs = append(segs, i)
			}
		}
		s.Partial = append(s.Partial, ClipSegments{ID: id, Segments: segs})
		return true
	})
	s.ResidentIDs = ids
	return s
}

// Restore replaces the cache's state with the snapshot's. The snapshot must
// be consistent with the repository and capacity: unknown ids, duplicates
// or a resident set exceeding capacity are rejected, leaving the cache
// untouched. The policy is reset and re-warmed via OnInsert.
func (c *Cache) Restore(s Snapshot) error {
	// Granularity compatibility: a segmented cache adopts whole-clip
	// snapshots (pre-segment archives) by marking every segment of each
	// clip resident, but segment lists only restore at the exact same
	// segment size, and a whole-clip cache cannot represent partial clips.
	switch {
	case s.SegmentSize == c.segSize:
	case s.SegmentSize == 0 && len(s.Partial) == 0 && c.segSize > 0:
	default:
		return fmt.Errorf("core: snapshot segment size %v does not match cache segment size %v",
			s.SegmentSize, c.segSize)
	}
	var total media.Bytes
	seen := make(map[media.ClipID]struct{}, len(s.ResidentIDs)+len(s.Partial))
	for _, id := range s.ResidentIDs {
		clip, ok := c.repo.Lookup(id)
		if !ok {
			return fmt.Errorf("core: snapshot references unknown clip %d", id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("core: snapshot lists clip %d twice", id)
		}
		seen[id] = struct{}{}
		total += clip.Size
	}
	for _, ps := range s.Partial {
		clip, ok := c.repo.Lookup(ps.ID)
		if !ok {
			return fmt.Errorf("core: snapshot references unknown clip %d", ps.ID)
		}
		if _, dup := seen[ps.ID]; dup {
			return fmt.Errorf("core: snapshot lists clip %d twice", ps.ID)
		}
		seen[ps.ID] = struct{}{}
		if len(ps.Segments) == 0 {
			return fmt.Errorf("core: snapshot lists clip %d as partial with no segments", ps.ID)
		}
		n := int32(c.SegmentsOf(clip))
		prev := int32(-1)
		for _, seg := range ps.Segments {
			if seg < 0 || seg >= n {
				return fmt.Errorf("core: snapshot segment %d of clip %d out of range [0,%d)", seg, ps.ID, n)
			}
			if seg <= prev {
				return fmt.Errorf("core: snapshot segments of clip %d not strictly ascending", ps.ID)
			}
			prev = seg
			total += c.segmentBytes(clip, seg)
		}
	}
	if total > c.capacity {
		return fmt.Errorf("core: snapshot holds %v, exceeding capacity %v", total, c.capacity)
	}
	if s.Clock < 0 {
		return fmt.Errorf("core: snapshot clock %d is negative", s.Clock)
	}
	var rem map[media.ClipID]vtime.Duration
	if len(s.TTLRemaining) > 0 {
		rem = make(map[media.ClipID]vtime.Duration, len(s.TTLRemaining))
		for _, ct := range s.TTLRemaining {
			if _, resident := seen[ct.ID]; !resident {
				return fmt.Errorf("core: snapshot carries a TTL for non-resident clip %d", ct.ID)
			}
			if _, dup := rem[ct.ID]; dup {
				return fmt.Errorf("core: snapshot lists clip %d's TTL twice", ct.ID)
			}
			rem[ct.ID] = ct.Remaining
		}
	}
	c.resident = make(map[media.ClipID]struct{}, len(s.ResidentIDs)+len(s.Partial))
	c.byID = rbtree.New[media.ClipID, media.Clip](lessClipID)
	c.mirrorClear()
	c.used = 0
	c.clock = s.Clock
	c.mirrorClock(c.clock)
	c.stats = s.Stats
	if c.segSize > 0 {
		c.segs = make(map[media.ClipID]*segMeta, len(s.ResidentIDs)+len(s.Partial))
		c.residentSegs = 0
	}
	if c.ttl > 0 {
		// Clips whose snapshot carries a remaining TTL resume it relative to
		// the restore clock (the cluster rebalance path depends on deadlines
		// surviving the move); clips without one — pre-churn archives, or
		// captures from a TTL-off cache — get a fresh TTL from the restore
		// point, since their remaining life is unknowable.
		c.deadlines = make(map[media.ClipID]vtime.Time, len(s.ResidentIDs)+len(s.Partial))
		c.lastSweep = s.Clock
	}
	c.policy.Reset()
	for _, id := range s.ResidentIDs {
		clip := c.repo.Clip(id)
		c.resident[id] = struct{}{}
		c.byID.Put(id, clip)
		c.restoreDeadline(id, rem)
		c.mirrorAdd(id)
		c.used += clip.Size
		c.policy.OnInsert(clip, c.clock)
		if c.segSize > 0 {
			c.adoptFullClip(clip)
		}
		c.emit(EventRestore, clip, c.clock)
	}
	for _, ps := range s.Partial {
		clip := c.repo.Clip(ps.ID)
		sm := newSegMeta(clip, c.SegmentsOf(clip))
		for _, seg := range ps.Segments {
			sm.set(seg)
			sm.resBytes += c.segmentBytes(clip, seg)
		}
		c.segs[ps.ID] = sm
		c.resident[ps.ID] = struct{}{}
		c.byID.Put(ps.ID, clip)
		c.restoreDeadline(ps.ID, rem)
		c.mirrorAdd(ps.ID)
		c.used += sm.resBytes
		c.residentSegs += int(sm.resident)
		c.policy.OnInsert(clip, c.clock)
		c.notifyResidentBytes(clip, sm.resBytes, c.clock)
		c.emitB(EventRestore, clip, sm.resBytes, c.clock)
	}
	return nil
}

// restoreDeadline installs a restored clip's expiry deadline: the carried
// remaining TTL when the snapshot has one, a fresh TTL otherwise. Like
// setDeadline it must run before the mirror publication so lock-free
// readers see residency and expiry atomically.
func (c *Cache) restoreDeadline(id media.ClipID, rem map[media.ClipID]vtime.Duration) {
	if c.ttl <= 0 {
		return
	}
	if r, ok := rem[id]; ok {
		c.deadlines[id] = c.clock + r
		return
	}
	c.setDeadline(id, c.clock)
}

// WriteSnapshot serializes the snapshot with encoding/gob.
func (s Snapshot) WriteSnapshot(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return s, nil
}

package core

import (
	"errors"
	"fmt"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// EventType classifies an engine event.
type EventType uint8

// Engine event types. For one cacheable miss the engine emits the eviction
// events first (one per victim, in eviction order) and then the concluding
// EventMiss once the incoming clip is resident, so an observer can attribute
// an eviction batch to the miss that caused it without buffering.
const (
	// EventHit: the referenced clip was resident.
	EventHit EventType = iota
	// EventMiss: the referenced clip was fetched and materialized.
	EventMiss
	// EventEviction: a resident clip was swapped out to make room.
	EventEviction
	// EventBypass: a miss was streamed without caching (admission declined
	// or the clip exceeds the cache capacity).
	EventBypass
	// EventRestore: a clip became resident by snapshot restore.
	EventRestore
	// EventFetchFail: a cacheable miss could not be fetched from the remote
	// repository (the WithFetch hook failed); the request was degraded.
	EventFetchFail
	// EventTrim: tail segments of a partially resident clip were evicted
	// without dropping the whole clip. Emitted only by caches built with
	// WithSegments; Bytes carries the trimmed byte count.
	EventTrim
	// EventPartialHit: a request was serviced partly from resident segments
	// while the rest was fetched. Bytes carries the bytes served from cache.
	EventPartialHit
	// EventInvalidate: a resident clip was dropped by explicit invalidation
	// (Cache.Invalidate) or TTL expiry — a catalog event, not a capacity
	// eviction. Bytes carries the resident bytes credited back.
	EventInvalidate
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventHit:
		return "hit"
	case EventMiss:
		return "miss"
	case EventEviction:
		return "eviction"
	case EventBypass:
		return "bypass"
	case EventRestore:
		return "restore"
	case EventFetchFail:
		return "fetch-fail"
	case EventTrim:
		return "trim"
	case EventPartialHit:
		return "partial-hit"
	case EventInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(t))
	}
}

// Event is one engine occurrence: what happened, to which clip, how many
// bytes were involved, at which virtual time. Events are delivered
// synchronously from the request path, so observers must be fast and must
// not call back into the cache.
//
// Bytes is the byte count the event accounts for: the clip size for
// whole-clip hits/misses/evictions, the affected byte subrange for
// segment-granular events (partial hits, trims, per-segment fetch
// failures). Observers should aggregate Bytes, not Clip.Size, so the same
// code is exact under both residency models.
type Event struct {
	Type  EventType
	Clip  media.Clip
	Bytes media.Bytes
	Now   vtime.Time
}

// Observer consumes engine events. Implementations live outside core (the
// metrics and tracing observers in internal/obs); the engine only knows the
// interface.
type Observer interface {
	Observe(Event)
}

// MultiObserver fans one event stream out to several observers in order.
type MultiObserver []Observer

// Observe implements Observer.
func (m MultiObserver) Observe(ev Event) {
	for _, o := range m {
		o.Observe(ev)
	}
}

// CombineObservers returns an observer delivering to every non-nil
// observer in os: nil when none remain, the sole survivor unwrapped (no
// fan-out indirection on the hot path), a MultiObserver otherwise.
func CombineObservers(os ...Observer) Observer {
	kept := make([]Observer, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return MultiObserver(kept)
}

// WithObserver installs an event observer. The engine nil-checks the
// observer on every emission, so a cache built without this option pays
// nothing on the request path (core's alloc and ordering tests pin that).
func WithObserver(o Observer) Option {
	return func(c *Cache) error {
		if o == nil {
			return errors.New("core: WithObserver observer must not be nil")
		}
		c.observer = o
		return nil
	}
}

// emit delivers a whole-clip event if an observer is installed. Kept tiny so
// it inlines into Request and makeRoom; the nil branch is the hot path.
func (c *Cache) emit(t EventType, clip media.Clip, now vtime.Time) {
	if c.observer != nil {
		c.observer.Observe(Event{Type: t, Clip: clip, Bytes: clip.Size, Now: now})
	}
}

// emitB delivers an event covering an explicit byte count — the segmented
// request path's form, where an event rarely spans the whole clip.
func (c *Cache) emitB(t EventType, clip media.Clip, bytes media.Bytes, now vtime.Time) {
	if c.observer != nil {
		c.observer.Observe(Event{Type: t, Clip: clip, Bytes: bytes, Now: now})
	}
}

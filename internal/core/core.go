// Package core implements the client-side cache engine of the paper's
// simulation model (Section 2): a fixed-size cache of continuous-media clips
// driven by a replacement Policy.
//
// The engine owns residency and byte accounting and enforces the paper's
// problem-statement rules:
//
//   - the cache has a fixed size S_T smaller than the repository S_DB;
//   - every referenced clip is materialized in the cache (Section 2's default
//     assumption), unless the policy's admission hook declines — the hook
//     models the paper's "variant of Simple that does not cache those
//     referenced clips whose byte hit ratio is smaller" (Section 3.3) and the
//     future-work scenario where unpopular clips are streamed without caching;
//   - when free space is insufficient, the policy selects victims until the
//     incoming clip fits;
//   - a clip larger than the whole cache is streamed without caching.
//
// Policies are notified of every reference (hit or miss) so on-line
// techniques can maintain reference histories for non-resident clips.
package core

import (
	"errors"
	"fmt"
	"iter"

	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// Outcome classifies the servicing of one request.
type Outcome uint8

// Request outcomes.
const (
	// Hit means the referenced clip was cache resident.
	Hit Outcome = iota
	// MissCached means the clip was streamed from the server and
	// materialized in the cache.
	MissCached
	// MissBypassed means the clip was streamed from the server without
	// being cached (admission declined).
	MissBypassed
	// MissTooLarge means the clip exceeds the cache capacity and was
	// streamed without caching.
	MissTooLarge
	// MissDegraded means the fetch hook (WithFetch) failed: the remote
	// repository could not deliver the clip, so nothing was materialized.
	MissDegraded
	// MissError means the engine could not service the miss because the
	// policy misbehaved during victim selection (ErrBadVictim or
	// ErrPolicyNoVictim). The clip was fetched but not materialized and the
	// resident set is untouched; the accompanying error describes the fault.
	MissError
)

// IsHit reports whether the outcome was a cache hit.
func (o Outcome) IsHit() bool { return o == Hit }

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case MissCached:
		return "miss-cached"
	case MissBypassed:
		return "miss-bypassed"
	case MissTooLarge:
		return "miss-too-large"
	case MissDegraded:
		return "miss-degraded"
	case MissError:
		return "miss-error"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// ResidentView is the read-only view of cache contents a Policy receives
// when selecting victims.
type ResidentView interface {
	// Resident reports whether clip id is cached.
	Resident(id media.ClipID) bool
	// Residents returns a range-over-func iterator over the cached clips
	// in ascending ID order. Iteration is an allocation-free walk of the
	// incrementally maintained resident index; breaking out early stops
	// the walk.
	Residents() iter.Seq[media.Clip]
	// ForEachResident visits the cached clips in ascending ID order until
	// fn returns false. Unlike ResidentClips it allocates nothing: the
	// engine maintains the resident set in an incrementally updated ordered
	// index, so iteration is a tree walk, not a per-call sort.
	ForEachResident(fn func(media.Clip) bool)
	// NumResident returns the number of cached clips.
	NumResident() int
	// ResidentBytes returns how many of clip id's bytes are cached. With
	// whole-clip residency this is the clip size (resident) or zero; with
	// segment-granular residency (WithSegments) it is the byte total of the
	// clip's resident segments, so policies can rank partial residents by
	// resident-byte cost.
	ResidentBytes(id media.ClipID) media.Bytes
	// FreeBytes returns the unused cache capacity.
	FreeBytes() media.Bytes
	// Capacity returns the total cache capacity S_T.
	Capacity() media.Bytes
}

// Policy is a cache replacement technique. Implementations live in
// internal/policy/...; the engine drives them through this interface.
//
// Call sequence per request: Record is always called first (hit or miss).
// On a miss that will be cached, Victims is called (possibly repeatedly)
// until enough space is free, then OnEvict for each victim and OnInsert for
// the incoming clip.
type Policy interface {
	// Name returns the technique's display name, e.g. "DYNSimple(K=2)".
	Name() string

	// Record observes a reference to clip at time now. hit reports whether
	// the clip was resident. Policies use this to maintain reference
	// histories (which, per Section 4.1, may cover non-resident clips).
	Record(clip media.Clip, now vtime.Time, hit bool)

	// Admit reports whether the incoming (missed) clip should be cached.
	// The default paper assumption is to always admit.
	Admit(clip media.Clip, now vtime.Time) bool

	// Victims selects resident clips to evict so that at least need bytes
	// become free. view exposes the resident set; incoming is the clip
	// being cached. The returned ids must be resident and distinct; the
	// engine validates and evicts them in order. If the returned set frees
	// fewer than need bytes the engine calls Victims again with the
	// remaining need.
	Victims(incoming media.Clip, view ResidentView, need media.Bytes, now vtime.Time) []media.ClipID

	// OnInsert notifies that clip became resident.
	OnInsert(clip media.Clip, now vtime.Time)

	// OnEvict notifies that clip id was evicted.
	OnEvict(id media.ClipID, now vtime.Time)

	// Reset returns the policy to its initial state.
	Reset()
}

// Stats accumulates the evaluation metrics of Section 1, plus the engine
// counters the sweep pool surfaces for performance tracking.
type Stats struct {
	Requests        uint64      // total references
	Hits            uint64      // references serviced from cache
	BytesReferenced media.Bytes // Σ size of referenced clips
	BytesHit        media.Bytes // Σ size of clips serviced from cache
	BytesFetched    media.Bytes // network traffic: Σ size of clips actually delivered on misses
	BytesFailed     media.Bytes // Σ size of clips whose remote fetch failed (nothing was delivered)
	Evictions       uint64      // number of clips swapped out
	BytesEvicted    media.Bytes // Σ size of evicted clips
	Bypassed        uint64      // misses not cached (admission declined, too large, or engine error)
	FetchFailed     uint64      // misses whose fetch hook failed (degraded service)
	VictimCalls     uint64      // Policy.Victims invocations, incl. re-invocations for short selections

	// Segment-granular counters, accumulated only by caches built with
	// WithSegments; always zero under whole-clip residency.
	PartialHits     uint64 // requests serviced partly from resident segments, partly fetched
	SegmentsFetched uint64 // segments materialized on misses
	SegmentsEvicted uint64 // segments evicted, incl. tail trims of partial victims

	// Catalog-dynamics counters (ISSUE 8). Invalidations are not requests:
	// they tick no clock and touch none of the counting or byte identities
	// above, so Requests == Hits+MissCached+Bypassed+FetchFailed and the
	// byte identity hold by construction under any purge/expiry schedule.
	Invalidated      uint64      // clips dropped by Invalidate or TTL expiry
	Expired          uint64      // the TTL-expiry subset of Invalidated
	BytesInvalidated media.Bytes // Σ resident bytes credited by invalidations
}

// HitRate returns the cache hit rate in [0, 1].
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// ByteHitRate returns the cache byte hit rate in [0, 1].
func (s Stats) ByteHitRate() float64 {
	if s.BytesReferenced == 0 {
		return 0
	}
	return float64(s.BytesHit) / float64(s.BytesReferenced)
}

// Add returns the field-wise sum of two counter sets — the aggregate view
// of several caches (e.g. the shards of a partitioned pool) as if one
// engine had serviced every request.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Requests:        s.Requests + o.Requests,
		Hits:            s.Hits + o.Hits,
		BytesReferenced: s.BytesReferenced + o.BytesReferenced,
		BytesHit:        s.BytesHit + o.BytesHit,
		BytesFetched:    s.BytesFetched + o.BytesFetched,
		BytesFailed:     s.BytesFailed + o.BytesFailed,
		Evictions:       s.Evictions + o.Evictions,
		BytesEvicted:    s.BytesEvicted + o.BytesEvicted,
		Bypassed:        s.Bypassed + o.Bypassed,
		FetchFailed:     s.FetchFailed + o.FetchFailed,
		VictimCalls:     s.VictimCalls + o.VictimCalls,
		PartialHits:     s.PartialHits + o.PartialHits,
		SegmentsFetched: s.SegmentsFetched + o.SegmentsFetched,
		SegmentsEvicted: s.SegmentsEvicted + o.SegmentsEvicted,

		Invalidated:      s.Invalidated + o.Invalidated,
		Expired:          s.Expired + o.Expired,
		BytesInvalidated: s.BytesInvalidated + o.BytesInvalidated,
	}
}

// Cache is a fixed-capacity clip cache managed by a Policy.
type Cache struct {
	repo     *media.Repository
	capacity media.Bytes
	policy   Policy

	// admit, when set via WithAdmission, is consulted on every cacheable
	// miss before the policy's own Admit.
	admit func(media.Clip, vtime.Time) bool
	// fetch, when set via WithFetch, models retrieving a missed clip from
	// the remote repository; an error degrades the miss (nothing cached).
	fetch FetchFunc
	// observer, when set via WithObserver, receives typed engine events
	// (hit, miss, eviction, bypass, restore). Nil-checked at every
	// emission so the disabled path stays allocation-free.
	observer Observer
	// mirror, when set via WithResidencyMirror, receives every residency
	// transition so lock-free readers can consult a published view of the
	// resident set. Nil-checked at every transition.
	mirror *ResidencyMirror
	// initClock is the virtual time the cache starts (and Resets) at.
	initClock vtime.Time

	resident map[media.ClipID]struct{}
	// byID is the incrementally maintained resident index: the same set as
	// resident, ordered by ascending clip ID. It replaces the per-call
	// allocate-and-sort that ResidentClips used to perform, giving policies
	// an allocation-free iteration seam (ForEachResident) and O(log n)
	// insert/evict maintenance instead of O(n log n) per Victims call.
	byID *rbtree.Tree[media.ClipID, media.Clip]
	// victimScratch is the reusable duplicate-detection set makeRoom uses to
	// validate a victim batch before mutating residency.
	victimScratch map[media.ClipID]struct{}
	used          media.Bytes
	clock         vtime.Time
	stats         Stats

	// Segment-granular residency (WithSegments). segSize == 0 means legacy
	// whole-clip residency; none of these fields are touched on that request
	// path, which stays allocation-free and byte-identical to earlier PRs.
	segSize      media.Bytes               // fixed segment size, 0 = whole-clip
	prefixSegs   int                       // WithPrefixAdmission: first N segments always admitted, evicted last
	segFetch     SegmentFetchFunc          // WithSegmentFetch: per-segment fetch seam
	segAware     SegmentAware              // policy's optional resident-byte notification hook
	segs         map[media.ClipID]*segMeta // per-clip residency bitmaps, keyed by resident clip
	residentSegs int                       // total resident segments across all clips
	segScratch   []int32                   // reusable missing-segment buffer for the request path

	// TTL expiry (WithTTL). ttl == 0 means no expiry: none of these fields
	// are touched on that request path, which stays byte-identical to
	// earlier PRs. Deadlines are absolute virtual times, one per resident
	// clip; expiry is lazy (checked on the requested clip) plus an
	// amortized sweep every sweepEvery ticks.
	ttl           vtime.Duration
	deadlines     map[media.ClipID]vtime.Time
	lastSweep     vtime.Time
	sweepEvery    vtime.Time
	expireScratch []media.ClipID // reusable expired-id buffer for the sweep
}

// lessClipID orders the resident index by ascending clip ID.
func lessClipID(a, b media.ClipID) bool { return a < b }

// Option configures optional engine behaviour at construction; see
// WithAdmission and WithClock.
type Option func(*Cache) error

// WithAdmission installs an engine-level admission hook consulted on every
// cacheable miss before the policy's own Admit. Returning false streams
// the clip without materializing it (the Section 2 future-work scenario),
// regardless of what the policy would decide.
func WithAdmission(hook func(clip media.Clip, now vtime.Time) bool) Option {
	return func(c *Cache) error {
		if hook == nil {
			return errors.New("core: WithAdmission hook must not be nil")
		}
		c.admit = hook
		return nil
	}
}

// FetchFunc models retrieving a missed clip from the remote repository over
// the (possibly faulty) network. It runs after every admission decision has
// approved caching the clip and before any victim is evicted, so a failed
// fetch never disturbs the resident set. Returning an error degrades the
// request to MissDegraded: the clip is not materialized and the failure is
// counted in Stats.FetchFailed.
type FetchFunc func(clip media.Clip, now vtime.Time) error

// WithFetch installs a fetch hook consulted on every miss that would be
// cached — the seam where a fault injector (internal/fault) or a real
// network client models the paper's flaky wireless link. A cache built
// without this option behaves exactly as before: every fetch succeeds.
func WithFetch(fetch FetchFunc) Option {
	return func(c *Cache) error {
		if fetch == nil {
			return errors.New("core: WithFetch hook must not be nil")
		}
		c.fetch = fetch
		return nil
	}
}

// WithClock starts the virtual clock at now instead of zero, e.g. when a
// cache resumes from an external event log. Reset returns the clock to
// this value.
func WithClock(now vtime.Time) Option {
	return func(c *Cache) error {
		if now < 0 {
			return fmt.Errorf("core: initial clock must be non-negative, got %d", now)
		}
		c.initClock = now
		return nil
	}
}

// Binder is implemented by policies that need a read-only view of the
// cache they manage before the first request (e.g. the Simple admission
// variant, whose Admit consults the resident set). New binds such
// policies automatically, replacing ad-hoc post-construction wiring.
type Binder interface {
	Bind(view ResidentView)
}

// Engine errors.
var (
	ErrUnknownClip    = errors.New("core: request references a clip not in the repository")
	ErrPolicyNoVictim = errors.New("core: policy returned no usable victim while space is needed")
	ErrBadVictim      = errors.New("core: policy selected a non-resident or duplicate victim")
)

// New returns a Cache over repo with capacity S_T managed by policy.
// Capacity must be positive and smaller than the repository size (otherwise
// the caching problem is trivial — Section 2). Policies implementing
// Binder are bound to the cache's resident view before New returns.
func New(repo *media.Repository, capacity media.Bytes, policy Policy, opts ...Option) (*Cache, error) {
	if repo == nil {
		return nil, errors.New("core: repository must not be nil")
	}
	if policy == nil {
		return nil, errors.New("core: policy must not be nil")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	if capacity >= repo.TotalSize() {
		return nil, fmt.Errorf("core: capacity %v is not smaller than the repository %v; the problem is trivial (Section 2)",
			capacity, repo.TotalSize())
	}
	c := &Cache{
		repo:     repo,
		capacity: capacity,
		policy:   policy,
		resident: make(map[media.ClipID]struct{}),
		byID:     rbtree.New[media.ClipID, media.Clip](lessClipID),
	}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.prefixSegs > 0 && c.segSize == 0 {
		return nil, errors.New("core: WithPrefixAdmission requires WithSegments")
	}
	if c.segFetch != nil && c.segSize == 0 {
		return nil, errors.New("core: WithSegmentFetch requires WithSegments")
	}
	if c.segSize > 0 {
		c.segs = make(map[media.ClipID]*segMeta)
		c.segAware, _ = policy.(SegmentAware)
	}
	if c.ttl > 0 {
		c.deadlines = make(map[media.ClipID]vtime.Time)
		// Sweep cadence is a pure function of the TTL so the event stream is
		// deterministic: often enough that expired clips do not linger past
		// a quarter TTL, capped so huge TTLs still sweep regularly.
		c.sweepEvery = min(max(vtime.Time(c.ttl)/4, 1), 1024)
		c.lastSweep = c.initClock
	}
	c.clock = c.initClock
	c.mirrorClock(c.clock)
	if b, ok := policy.(Binder); ok {
		b.Bind(c)
	}
	return c, nil
}

// Repository returns the backing repository.
func (c *Cache) Repository() *media.Repository { return c.repo }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Now returns the current virtual time (the number of requests processed).
func (c *Cache) Now() vtime.Time { return c.clock }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Capacity returns S_T.
func (c *Cache) Capacity() media.Bytes { return c.capacity }

// UsedBytes returns the bytes currently occupied by resident clips.
func (c *Cache) UsedBytes() media.Bytes { return c.used }

// FreeBytes returns the unused capacity.
func (c *Cache) FreeBytes() media.Bytes { return c.capacity - c.used }

// NumResident returns the number of cached clips.
func (c *Cache) NumResident() int { return len(c.resident) }

// Resident reports whether clip id is cached. Under segment-granular
// residency a clip with any resident segment counts as resident; use
// FullyResident or ResidentBytes for finer answers.
func (c *Cache) Resident(id media.ClipID) bool {
	_, ok := c.resident[id]
	return ok
}

// ResidentBytes implements ResidentView: the number of clip id's bytes that
// are cached. Whole-clip residency answers clip-size-or-zero; segmented
// residency answers the byte total of the clip's resident segments.
func (c *Cache) ResidentBytes(id media.ClipID) media.Bytes {
	if c.segSize > 0 {
		if sm := c.segs[id]; sm != nil {
			return sm.resBytes
		}
		return 0
	}
	if clip, ok := c.byID.Get(id); ok {
		return clip.Size
	}
	return 0
}

// CollectResidents copies view's resident set into a fresh slice in
// ascending ID order — for scan-mode victim selection that must sort or
// repeatedly index the whole set. Callers that only iterate should range
// over view.Residents(), which allocates nothing.
func CollectResidents(view ResidentView) []media.Clip {
	clips := make([]media.Clip, 0, view.NumResident())
	for clip := range view.Residents() {
		clips = append(clips, clip)
	}
	return clips
}

// CollectResidentIDs copies view's resident clip ids into a fresh slice in
// ascending order — the slice-returning counterpart of ranging over
// Residents, for callers (mostly tests) that need a materialized set.
func CollectResidentIDs(view ResidentView) []media.ClipID {
	ids := make([]media.ClipID, 0, view.NumResident())
	for clip := range view.Residents() {
		ids = append(ids, clip.ID)
	}
	return ids
}

// Residents returns a range-over-func iterator over the cached clips in
// ascending ID order. The sequence is an allocation-free walk of the
// resident index and may be ranged over multiple times; each range sees
// the resident set as of that iteration.
func (c *Cache) Residents() iter.Seq[media.Clip] {
	return func(yield func(media.Clip) bool) {
		c.byID.Ascend(func(_ media.ClipID, clip media.Clip) bool {
			return yield(clip)
		})
	}
}

// ForEachResident visits the cached clips in ascending ID order until fn
// returns false, without allocating.
func (c *Cache) ForEachResident(fn func(media.Clip) bool) {
	c.byID.Ascend(func(_ media.ClipID, clip media.Clip) bool {
		return fn(clip)
	})
}

var _ ResidentView = (*Cache)(nil)

// Request services a reference to clip id, advancing the virtual clock by
// one tick, and returns the outcome. Request is the paper's unit of work: the
// client references a clip, the cache manager services it.
func (c *Cache) Request(id media.ClipID) (Outcome, error) {
	if c.segSize > 0 {
		res, err := c.RequestRange(id, 0, -1)
		return res.Outcome, err
	}
	clip, ok := c.repo.Lookup(id)
	if !ok {
		return MissBypassed, fmt.Errorf("%w: id %d", ErrUnknownClip, id)
	}
	c.clock++
	now := c.clock
	c.mirrorClock(now)
	if c.ttl > 0 {
		// Amortized sweep first, then the lazy check on the requested clip:
		// the sweep may already have expired it, and the order must be fixed
		// so the event stream is deterministic. An expired requested clip
		// falls through as an ordinary miss.
		c.maybeSweep(now)
		c.expireIfDue(id, now)
	}

	_, hit := c.resident[id]
	c.policy.Record(clip, now, hit)

	c.stats.Requests++
	c.stats.BytesReferenced += clip.Size
	if hit {
		c.stats.Hits++
		c.stats.BytesHit += clip.Size
		c.emit(EventHit, clip, now)
		return Hit, nil
	}

	// Fetched bytes are network traffic for clips actually delivered: a
	// bypassed or too-large miss still streams the clip to the client, but a
	// failed fetch delivers nothing and must not count (it accrues to
	// BytesFailed instead). The invariant is
	// BytesHit + BytesFetched + BytesFailed == BytesReferenced.
	if clip.Size > c.capacity {
		c.stats.BytesFetched += clip.Size
		c.stats.Bypassed++
		c.emit(EventBypass, clip, now)
		return MissTooLarge, nil
	}
	if c.admit != nil && !c.admit(clip, now) {
		c.stats.BytesFetched += clip.Size
		c.stats.Bypassed++
		c.emit(EventBypass, clip, now)
		return MissBypassed, nil
	}
	if !c.policy.Admit(clip, now) {
		c.stats.BytesFetched += clip.Size
		c.stats.Bypassed++
		c.emit(EventBypass, clip, now)
		return MissBypassed, nil
	}
	if c.fetch != nil {
		if err := c.fetch(clip, now); err != nil {
			c.stats.FetchFailed++
			c.stats.BytesFailed += clip.Size
			c.emit(EventFetchFail, clip, now)
			return MissDegraded, nil
		}
	}
	c.stats.BytesFetched += clip.Size
	if err := c.makeRoom(clip, now); err != nil {
		// makeRoom validates each victim batch before touching residency,
		// so the resident set is exactly as it was before this request
		// (minus any earlier, fully valid batches). The clip was fetched but
		// cannot be materialized; account it as a bypassed miss so
		// Requests == Hits + MissCached + Bypassed + FetchFailed holds even
		// when a policy misbehaves.
		c.stats.Bypassed++
		c.emit(EventBypass, clip, now)
		return MissError, err
	}
	c.resident[id] = struct{}{}
	c.byID.Put(id, clip)
	c.used += clip.Size
	c.setDeadline(id, now)
	c.mirrorAdd(id)
	c.policy.OnInsert(clip, now)
	c.emit(EventMiss, clip, now)
	return MissCached, nil
}

// ApplyHit services a reference to clip id that a concurrent reader already
// classified as a hit against the cache's published residency view
// (WithResidencyMirror): clock tick, policy Record, hit statistics and the
// EventHit emission — the exact hit branch of Request. It exists so a
// lock-reduced front-end can serve the bytes without the engine lock and
// later drain a batch of such touches under one lock acquisition.
//
// The request is accounted as a hit unconditionally, because the bytes were
// served from the view at the reader's linearization point even if the clip
// has been evicted since. The policy, however, is told the truth about the
// engine's current state: Record(hit) reflects residency at drain time, so
// reference histories never diverge from the resident set. Driven serially
// (drain before any intervening mutation) this is byte-identical to Request
// on a hit. Only whole-clip caches support it; segmented caches account
// partial residency per byte range and must use RequestRange.
func (c *Cache) ApplyHit(id media.ClipID) error {
	if c.segSize > 0 {
		return errors.New("core: ApplyHit requires whole-clip residency")
	}
	clip, ok := c.repo.Lookup(id)
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownClip, id)
	}
	c.clock++
	now := c.clock
	c.mirrorClock(now)
	// Sweep only; no lazy check of id itself. The lock-free fast path that
	// feeds ApplyHit verified the deadline against its tick estimate before
	// classifying the hit, and ApplyHit's contract counts the hit
	// unconditionally anyway — residency truth is told to the policy below.
	if c.ttl > 0 {
		c.maybeSweep(now)
	}

	_, hit := c.resident[id]
	c.policy.Record(clip, now, hit)

	c.stats.Requests++
	c.stats.BytesReferenced += clip.Size
	c.stats.Hits++
	c.stats.BytesHit += clip.Size
	c.emit(EventHit, clip, now)
	return nil
}

// makeRoom evicts policy-selected victims until clip fits. Each victim
// batch is validated in full — every id resident, no duplicates — before
// any eviction is applied, so a misbehaving policy can never leave a
// partially evicted cache behind.
func (c *Cache) makeRoom(clip media.Clip, now vtime.Time) error {
	for c.capacity-c.used < clip.Size {
		need := clip.Size - (c.capacity - c.used)
		c.stats.VictimCalls++
		victims := c.policy.Victims(clip, c, need, now)
		if len(victims) == 0 {
			return fmt.Errorf("%w: need %v, free %v", ErrPolicyNoVictim, need, c.FreeBytes())
		}
		if c.victimScratch == nil {
			c.victimScratch = make(map[media.ClipID]struct{}, len(victims))
		} else {
			clear(c.victimScratch)
		}
		for _, vid := range victims {
			if _, dup := c.victimScratch[vid]; dup {
				return fmt.Errorf("%w: duplicate id %d", ErrBadVictim, vid)
			}
			c.victimScratch[vid] = struct{}{}
			if _, ok := c.resident[vid]; !ok {
				return fmt.Errorf("%w: id %d", ErrBadVictim, vid)
			}
		}
		for _, vid := range victims {
			victim := c.repo.Clip(vid)
			delete(c.resident, vid)
			c.byID.Delete(vid)
			c.mirrorRemove(vid)
			c.clearDeadline(vid)
			c.used -= victim.Size
			c.stats.Evictions++
			c.stats.BytesEvicted += victim.Size
			c.policy.OnEvict(vid, now)
			c.emit(EventEviction, victim, now)
		}
	}
	return nil
}

// Warm pre-loads the given clips into the cache without counting requests,
// evicting nothing: clips that do not fit are skipped. Used to place an
// off-line technique's chosen working set, and by tests.
func (c *Cache) Warm(ids []media.ClipID) {
	for _, id := range ids {
		clip, ok := c.repo.Lookup(id)
		if !ok || c.Resident(id) || clip.Size > c.FreeBytes() {
			continue
		}
		c.resident[id] = struct{}{}
		c.byID.Put(id, clip)
		c.setDeadline(id, c.clock)
		c.mirrorAdd(id)
		c.used += clip.Size
		c.policy.OnInsert(clip, c.clock)
		if c.segSize > 0 {
			c.adoptFullClip(clip)
		}
	}
}

// Reset clears residency, statistics and the policy state, and rewinds the
// clock to its initial value (zero unless WithClock set one).
func (c *Cache) Reset() {
	c.resident = make(map[media.ClipID]struct{})
	c.byID = rbtree.New[media.ClipID, media.Clip](lessClipID)
	c.mirrorClear()
	c.used = 0
	c.clock = c.initClock
	c.mirrorClock(c.clock)
	c.stats = Stats{}
	if c.segSize > 0 {
		c.segs = make(map[media.ClipID]*segMeta)
		c.residentSegs = 0
	}
	if c.ttl > 0 {
		c.deadlines = make(map[media.ClipID]vtime.Time)
		c.lastSweep = c.initClock
	}
	c.policy.Reset()
}

// TheoreticalHitRate returns Σ f_id over resident clips for the supplied
// per-identity probability vector (indexed by id-1). This is the metric of
// Section 4.4.1: the probability the next request hits, given the true
// request distribution.
func (c *Cache) TheoreticalHitRate(pmf []float64) float64 {
	// Sum in ascending clip-ID order: float addition is not associative,
	// and iterating the resident map directly would make the result vary
	// run to run with Go's randomized map order. The ordered index gives
	// that order without allocating.
	// Under segment-granular residency only fully resident clips count: the
	// next (whole-clip) request hits only when every segment is cached.
	var sum float64
	c.byID.Ascend(func(id media.ClipID, _ media.Clip) bool {
		if c.segSize > 0 && !c.FullyResident(id) {
			return true
		}
		if i := int(id) - 1; i >= 0 && i < len(pmf) {
			sum += pmf[i]
		}
		return true
	})
	return sum
}

package core

import (
	"bytes"
	"testing"

	"mediacache/internal/media"
)

// TestMirrorTracksResidency drives every residency transition — insert,
// eviction, warm, reset, snapshot restore — and checks the mirror stays in
// lockstep with the engine's resident set.
func TestMirrorTracksResidency(t *testing.T) {
	repo := smallRepo(t)
	var m ResidencyMirror
	c, err := New(repo, 60, &fifoPolicy{}, WithResidencyMirror(&m))
	if err != nil {
		t.Fatal(err)
	}
	same := func(when string) {
		t.Helper()
		if m.Len() != c.NumResident() {
			t.Fatalf("%s: mirror holds %d clips, cache %d", when, m.Len(), c.NumResident())
		}
		for clip := range c.Residents() {
			if !m.Resident(clip.ID) {
				t.Fatalf("%s: clip %d resident but absent from mirror", when, clip.ID)
			}
		}
	}

	for _, id := range []media.ClipID{1, 2, 3, 1, 4, 2} {
		if _, err := c.Request(id); err != nil {
			t.Fatal(err)
		}
		same("after request")
	}
	snap := c.Snapshot()

	c.Reset()
	same("after reset")
	if m.Len() != 0 {
		t.Fatalf("mirror not empty after reset: %d clips", m.Len())
	}

	c.Warm([]media.ClipID{2, 3})
	same("after warm")

	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	same("after restore")
}

// TestApplyHitMatchesRequestHit drives two identical caches through the
// same trace; one services hits through Request, the other through
// ApplyHit. Outcome-visible state — stats, clock, residency, snapshot
// bytes — must be byte-identical, since ApplyHit is the drained form of
// the Request hit branch.
func TestApplyHitMatchesRequestHit(t *testing.T) {
	repo := smallRepo(t)
	trace := []media.ClipID{1, 2, 1, 3, 2, 1, 4, 4, 1, 2, 1, 3}
	a, err := New(repo, 60, &fifoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(repo, 60, &fifoPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range trace {
		if _, err := a.Request(id); err != nil {
			t.Fatal(err)
		}
		if b.Resident(id) {
			if err := b.ApplyHit(id); err != nil {
				t.Fatal(err)
			}
		} else if _, err := b.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge:\nRequest:  %+v\nApplyHit: %+v", a.Stats(), b.Stats())
	}
	if a.Now() != b.Now() {
		t.Fatalf("clocks diverge: %d vs %d", a.Now(), b.Now())
	}
	var sa, sb bytes.Buffer
	if err := a.Snapshot().WriteSnapshot(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatal("snapshots diverge")
	}
}

// TestApplyHitEvictedClip pins the documented stale-view semantics: the
// request is accounted as a hit (the bytes were served from the published
// view), but the policy is told the clip is no longer resident.
func TestApplyHitEvictedClip(t *testing.T) {
	repo := smallRepo(t)
	p := &fifoPolicy{}
	c, err := New(repo, 60, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(1); err != nil {
		t.Fatal(err)
	}
	clip := repo.Clip(1)
	// Simulate the fast-path window: the clip is evicted between the
	// mirror lookup and the drain.
	c.Reset()
	if err := c.ApplyHit(1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Requests != 1 || st.Hits != 1 || st.BytesHit != clip.Size {
		t.Fatalf("stale ApplyHit not counted as hit: %+v", st)
	}
	if st.BytesHit+st.BytesFetched+st.BytesFailed != st.BytesReferenced {
		t.Fatalf("byte identity violated: %+v", st)
	}
	if p.recorded != 1 {
		t.Fatalf("policy saw %d Record calls, want 1", p.recorded)
	}
	if len(p.order) != 0 {
		t.Fatalf("policy treated stale touch as an insert: %v", p.order)
	}
}

// TestApplyHitRejectsSegmented pins that segmented caches refuse ApplyHit:
// partial residency is accounted per byte range, not per whole clip.
func TestApplyHitRejectsSegmented(t *testing.T) {
	repo := smallRepo(t)
	c, err := New(repo, 60, &fifoPolicy{}, WithSegments(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyHit(1); err == nil {
		t.Fatal("ApplyHit on a segmented cache should fail")
	}
}

// TestApplyHitUnknownClip pins the unknown-id error path.
func TestApplyHitUnknownClip(t *testing.T) {
	c, _ := New(smallRepo(t), 60, &fifoPolicy{})
	if err := c.ApplyHit(9999); err == nil {
		t.Fatal("ApplyHit on an unknown clip should fail")
	}
}

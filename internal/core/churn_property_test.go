package core_test

// churn_property_test.go (ISSUE 8) drives every registered policy through
// randomized interleavings of requests, explicit Invalidate calls, TTL
// expiry and fetch faults, asserting that the PR 4 counting and byte
// identities survive arbitrary purge/expiry schedules and that an attached
// ResidencyMirror never disagrees with the engine's resident set.

import (
	"fmt"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	_ "mediacache/internal/policy/all"
	"mediacache/internal/policy/registry"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// churnObserver balances the full residency ledger: bytes enter via miss
// inserts and leave via evictions OR invalidations, and the engine's used
// counter must equal the running difference at every step.
type churnObserver struct {
	t                *testing.T
	insertedBytes    media.Bytes
	evictedBytes     media.Bytes
	invalidatedBytes media.Bytes
	evictions        uint64
	invalidations    uint64
}

func (o *churnObserver) Observe(ev core.Event) {
	switch ev.Type {
	case core.EventMiss:
		o.insertedBytes += ev.Bytes
	case core.EventEviction:
		o.evictedBytes += ev.Bytes
		o.evictions++
	case core.EventInvalidate:
		o.invalidatedBytes += ev.Bytes
		o.invalidations++
	}
}

// checkChurnInvariants asserts the identities after any operation.
func checkChurnInvariants(t *testing.T, c *core.Cache, obs *churnObserver, m *core.ResidencyMirror) {
	t.Helper()
	s := c.Stats()
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Fatalf("byte identity broken: hit %v + fetched %v + failed %v != referenced %v",
			s.BytesHit, s.BytesFetched, s.BytesFailed, s.BytesReferenced)
	}
	if s.Expired > s.Invalidated {
		t.Fatalf("Expired %d exceeds Invalidated %d", s.Expired, s.Invalidated)
	}
	if obs.invalidations != s.Invalidated {
		t.Fatalf("observer saw %d invalidations, stats report %d", obs.invalidations, s.Invalidated)
	}
	if obs.invalidatedBytes != s.BytesInvalidated {
		t.Fatalf("observer invalidated bytes %v, stats report %v", obs.invalidatedBytes, s.BytesInvalidated)
	}
	if obs.evictions != s.Evictions {
		t.Fatalf("observer saw %d evictions, stats report %d", obs.evictions, s.Evictions)
	}
	if got := obs.insertedBytes - obs.evictedBytes - obs.invalidatedBytes; got != c.UsedBytes() {
		t.Fatalf("ledger imbalance: inserted %v - evicted %v - invalidated %v = %v, used %v",
			obs.insertedBytes, obs.evictedBytes, obs.invalidatedBytes, got, c.UsedBytes())
	}
	if c.UsedBytes() > c.Capacity() || c.UsedBytes() < 0 {
		t.Fatalf("used %v outside [0, %v]", c.UsedBytes(), c.Capacity())
	}
	var sum media.Bytes
	for clip := range c.Residents() {
		sum += clip.Size
	}
	if sum != c.UsedBytes() {
		t.Fatalf("resident clips sum to %v, UsedBytes reports %v", sum, c.UsedBytes())
	}
	if got, want := m.Len(), c.NumResident(); got != want {
		t.Fatalf("mirror holds %d clips, engine %d", got, want)
	}
	for clip := range c.Residents() {
		if !m.Resident(clip.ID) {
			t.Fatalf("resident clip %d missing from mirror", clip.ID)
		}
		if c.TTL() > 0 {
			dl, ok := m.Deadline(clip.ID)
			if !ok || dl != c.DeadlineOf(clip.ID) {
				t.Fatalf("mirror deadline of clip %d = (%v,%v), engine %v",
					clip.ID, dl, ok, c.DeadlineOf(clip.ID))
			}
		}
	}
}

// TestChurnInvariantsAllPolicies interleaves requests, Invalidate, TTL
// expiry and 20% fetch faults for every registered policy, checking the
// identities, the residency ledger and the mirror after every operation.
func TestChurnInvariantsAllPolicies(t *testing.T) {
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < 3; trial++ {
				src := randutil.NewSource(uint64(trial + 11)).Split("churn-property").Split(name)
				n := 8 + src.Intn(33)
				repo := randomRepo(t, src.Split("repo"), n)
				pmf := make([]float64, n)
				for i := range pmf {
					pmf[i] = 1 / float64(n)
				}
				policy, err := registry.Build(name, repo, pmf, uint64(trial+11))
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				ttl := vtime.Duration(20 + src.Intn(200))
				fsrc := src.Split("fetch")
				obs := &churnObserver{t: t}
				var mirror core.ResidencyMirror
				capacity := repo.TotalSize()/8 + media.Bytes(src.Intn(int(repo.TotalSize()/2)))
				cache, err := core.New(repo, capacity, policy,
					core.WithObserver(obs),
					core.WithResidencyMirror(&mirror),
					core.WithTTL(ttl),
					core.WithFetch(func(clip media.Clip, _ vtime.Time) error {
						if fsrc.Float64() < 0.2 {
							return fmt.Errorf("injected failure fetching clip %d", clip.ID)
						}
						return nil
					}))
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}

				drive := src.Split("drive")
				outcomes := make(map[core.Outcome]uint64)
				requests := 0
				for i := 0; i < 600; i++ {
					id := media.ClipID(1 + drive.Intn(n))
					if drive.Float64() < 0.5 {
						id = media.ClipID(1 + drive.Intn(1+n/4)) // hot quarter
					}
					switch op := drive.Intn(10); {
					case op < 7: // request
						// Hit is exactly predicted by residency plus the TTL
						// deadline at the request's tick (the amortized sweep
						// only ever expires other clips).
						wantHit := cache.Resident(id) && cache.Now()+1 <= cache.DeadlineOf(id)
						out, err := cache.Request(id)
						if err != nil {
							t.Fatalf("request %d (clip %d): %v", i, id, err)
						}
						outcomes[out]++
						requests++
						if out.IsHit() != wantHit {
							t.Fatalf("request %d: clip %d predicted hit=%v, outcome %v",
								i, id, wantHit, out)
						}
					case op < 9: // explicit invalidation
						wantFreed := cache.ResidentBytes(id)
						if freed := cache.Invalidate(id); freed != wantFreed {
							t.Fatalf("op %d: Invalidate(%d) freed %v, resident bytes were %v",
								i, id, freed, wantFreed)
						}
						if cache.Resident(id) {
							t.Fatalf("op %d: clip %d still resident after Invalidate", i, id)
						}
					default: // forced expiry sweep
						cache.SweepExpired()
					}
					checkChurnInvariants(t, cache, obs, &mirror)
					checkOutcomeIdentity(t, cache, outcomes)
				}
				if got := cache.Stats().Requests; got != uint64(requests) {
					t.Fatalf("stats report %d requests, drove %d", got, requests)
				}
				if cache.Stats().Invalidated == 0 {
					t.Fatalf("drive produced no invalidations")
				}

				// Reset must clear the churn state too.
				cache.Reset()
				if cache.UsedBytes() != 0 || cache.NumResident() != 0 ||
					cache.Stats() != (core.Stats{}) || mirror.Len() != 0 {
					t.Fatalf("trial %d: Reset left state behind", trial)
				}
			}
		})
	}
}

// TestTTLExpiryDeterministic pins the lazy-plus-amortized expiry semantics
// on a single policy: a clip inserted at tick t answers hits through tick
// t+ttl and is gone afterwards, with Stats.Expired counting it.
func TestTTLExpiryDeterministic(t *testing.T) {
	src := randutil.NewSource(5).Split("ttl-exact")
	repo := randomRepo(t, src, 6)
	policy, err := registry.Build("lru", repo, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	const ttl = 7
	cache, err := core.New(repo, repo.TotalSize()-1, policy, core.WithTTL(ttl))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Request(1); err != nil { // t=1: miss, deadline 1+ttl
		t.Fatal(err)
	}
	dl := cache.DeadlineOf(1)
	if dl != 1+ttl {
		t.Fatalf("deadline = %d, want %d", dl, 1+ttl)
	}
	// Hits up to and including the deadline tick.
	for tick := vtime.Time(2); tick <= dl; tick++ {
		out, err := cache.Request(1)
		if err != nil {
			t.Fatal(err)
		}
		if !out.IsHit() {
			t.Fatalf("tick %d (deadline %d): outcome %v, want hit", tick, dl, out)
		}
	}
	// One tick past the deadline the clip expires and re-materializes.
	out, err := cache.Request(1)
	if err != nil {
		t.Fatal(err)
	}
	if out != core.MissCached {
		t.Fatalf("tick past deadline: outcome %v, want miss-cached", out)
	}
	s := cache.Stats()
	if s.Expired != 1 || s.Invalidated != 1 {
		t.Fatalf("Expired/Invalidated = %d/%d, want 1/1", s.Expired, s.Invalidated)
	}
	if s.BytesInvalidated != repo.Clip(1).Size {
		t.Fatalf("BytesInvalidated = %v, want clip size %v", s.BytesInvalidated, repo.Clip(1).Size)
	}
	// The re-insert carries a fresh deadline.
	if got := cache.DeadlineOf(1); got != cache.Now()+ttl {
		t.Fatalf("fresh deadline = %d, want %d", got, cache.Now()+ttl)
	}
}

// TestInvalidateSegmented: segment-aware invalidation credits exactly the
// resident bytes of a partially resident clip and leaves the segment
// counters coherent.
func TestInvalidateSegmented(t *testing.T) {
	src := randutil.NewSource(9).Split("churn-seg")
	repo := randomRepo(t, src, 6)
	policy, err := registry.Build("lru", repo, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	const segSize = 64 << 10
	cache, err := core.New(repo, repo.TotalSize()-1, policy, core.WithSegments(segSize))
	if err != nil {
		t.Fatal(err)
	}
	clip := repo.Clip(2)
	// Materialize only the first segment.
	if _, err := cache.RequestRange(clip.ID, 0, 1); err != nil {
		t.Fatal(err)
	}
	resBytes := cache.ResidentBytes(clip.ID)
	if resBytes <= 0 || resBytes >= clip.Size {
		t.Fatalf("want partial residency, have %v of %v", resBytes, clip.Size)
	}
	used := cache.UsedBytes()
	freed := cache.Invalidate(clip.ID)
	if freed != resBytes {
		t.Fatalf("Invalidate freed %v, resident bytes were %v", freed, resBytes)
	}
	if cache.Resident(clip.ID) || cache.ResidentBytes(clip.ID) != 0 {
		t.Fatal("clip still resident after segmented Invalidate")
	}
	if got := cache.UsedBytes(); got != used-resBytes {
		t.Fatalf("used %v after invalidate, want %v", got, used-resBytes)
	}
	if cache.ResidentSegments() != 0 {
		t.Fatalf("ResidentSegments = %d after invalidating sole resident", cache.ResidentSegments())
	}
	s := cache.Stats()
	if s.SegmentsEvicted != 0 || s.Evictions != 0 {
		t.Fatalf("invalidation counted as eviction: SegmentsEvicted=%d Evictions=%d",
			s.SegmentsEvicted, s.Evictions)
	}
	if s.Invalidated != 1 || s.BytesInvalidated != resBytes {
		t.Fatalf("Invalidated/BytesInvalidated = %d/%v, want 1/%v",
			s.Invalidated, s.BytesInvalidated, resBytes)
	}
}

// TestInvalidateNonResident: a no-op that frees nothing and counts nothing.
func TestInvalidateNonResident(t *testing.T) {
	src := randutil.NewSource(3).Split("churn-noop")
	repo := randomRepo(t, src, 4)
	policy, err := registry.Build("lru", repo, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.New(repo, repo.TotalSize()/2, policy)
	if err != nil {
		t.Fatal(err)
	}
	if freed := cache.Invalidate(1); freed != 0 {
		t.Fatalf("invalidating non-resident clip freed %v", freed)
	}
	if s := cache.Stats(); s.Invalidated != 0 || s.BytesInvalidated != 0 {
		t.Fatalf("no-op invalidation counted: %+v", s)
	}
}

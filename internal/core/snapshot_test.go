package core

import (
	"bytes"
	"strings"
	"testing"

	"mediacache/internal/media"
)

func TestSnapshotRoundTrip(t *testing.T) {
	repo := smallRepo(t)
	p := &fifoPolicy{}
	c, _ := New(repo, 50, p)
	c.Request(1)
	c.Request(2)
	c.Request(1) // a hit
	snap := c.Snapshot()
	if len(snap.ResidentIDs) != 2 || snap.Clock != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Stats.Requests != 3 || snap.Stats.Hits != 1 {
		t.Fatalf("snapshot stats = %+v", snap.Stats)
	}

	// Restore into a fresh cache ("after reboot").
	p2 := &fifoPolicy{}
	c2, _ := New(repo, 50, p2)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !c2.Resident(1) || !c2.Resident(2) {
		t.Fatal("residency not restored")
	}
	if c2.UsedBytes() != 30 || c2.Now() != 3 {
		t.Fatalf("used=%d clock=%d", c2.UsedBytes(), c2.Now())
	}
	if c2.Stats().Hits != 1 {
		t.Fatal("stats not restored")
	}
	if p2.inserts != 2 {
		t.Fatalf("policy not re-warmed: %d inserts", p2.inserts)
	}
	// The restored cache keeps working.
	out, err := c2.Request(1)
	if err != nil || out != Hit {
		t.Fatalf("post-restore request = %v, %v", out, err)
	}
}

func TestSnapshotSerialization(t *testing.T) {
	repo := smallRepo(t)
	c, _ := New(repo, 50, &fifoPolicy{})
	c.Request(1)
	c.Request(3)
	snap := c.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ResidentIDs) != 2 || got.Clock != snap.Clock {
		t.Fatalf("decoded = %+v", got)
	}
	if _, err := ReadSnapshot(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestRestoreValidation(t *testing.T) {
	repo := smallRepo(t)
	c, _ := New(repo, 50, &fifoPolicy{})
	c.Request(1)
	preUsed := c.UsedBytes()

	cases := []Snapshot{
		{ResidentIDs: []media.ClipID{99}},                // unknown clip
		{ResidentIDs: []media.ClipID{1, 1}},              // duplicate
		{ResidentIDs: []media.ClipID{1, 2, 3}, Clock: 5}, // 60 bytes > 50 capacity
		{ResidentIDs: []media.ClipID{1}, Clock: -1},      // negative clock
	}
	for i, snap := range cases {
		if err := c.Restore(snap); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Failed restores must leave the cache untouched.
	if c.UsedBytes() != preUsed || !c.Resident(1) {
		t.Fatal("failed restore mutated the cache")
	}
}

func TestRestoreEmptySnapshot(t *testing.T) {
	repo := smallRepo(t)
	c, _ := New(repo, 50, &fifoPolicy{})
	c.Request(1)
	if err := c.Restore(Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if c.NumResident() != 0 || c.UsedBytes() != 0 || c.Now() != 0 {
		t.Fatal("empty snapshot should clear the cache")
	}
}

package randutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSourceDeterministic(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws in 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewSource(7)
	c1 := parent.Split("workload")
	parent2 := NewSource(7)
	c2 := parent2.Split("workload")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("same label and seed must give identical child streams")
		}
	}
	p3 := NewSource(7)
	other := p3.Split("policy")
	c3 := NewSource(7).Split("workload")
	diff := false
	for i := 0; i < 100; i++ {
		if other.Uint64() != c3.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different labels should give different streams")
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewSource(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint64n(0)")
		}
	}()
	NewSource(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSource(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := NewSource(9)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d has %d draws, want ~%v", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(13)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := s.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewSource(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(576)
	}
}

// Package randutil provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// The paper (footnote 5, Section 4.4) requires that "all random number
// generators for the simulator are seeded, producing a deterministic sequence
// of requests for all techniques". Every stochastic component in this
// repository (workload generation, Random replacement, GreedyDual
// tie-breaking) draws from an independent Source derived from a master seed,
// so adding or removing one consumer never perturbs another.
//
// The generator is xoshiro256**, a public-domain algorithm by Blackman and
// Vigna with a 2^256-1 period and excellent statistical quality. We implement
// it locally rather than using math/rand so the request sequences embedded in
// EXPERIMENTS.md stay stable across Go releases.
package randutil

import "math"

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not valid; use NewSource or Split.
type Source struct {
	s [4]uint64
}

// NewSource returns a Source seeded from seed using SplitMix64, following the
// initialization procedure recommended by the xoshiro authors.
func NewSource(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives an independent child generator from s. The child's stream is
// decorrelated from the parent's by hashing a fresh draw together with label.
// Use distinct labels for distinct consumers so streams never collide.
func (s *Source) Split(label string) *Source {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewSource(s.Uint64() ^ h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randutil: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform pseudo-random uint64 in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("randutil: Uint64n called with n == 0")
	}
	// Rejection sampling on the high 64 bits of a 128-bit product keeps the
	// result exactly uniform.
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits scaled to [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normally distributed float64 using the
// Box–Muller transform. Provided for workload extensions (think-time jitter).
func (s *Source) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

package shard

// churn_test.go (ISSUE 8): differential and determinism coverage for
// catalog churn. A 1-shard pool with TTL must stay byte-identical to the
// bare serialized engine — victim for victim, event for event — and churn
// drives must be deterministic at every shard count. A concurrent drive
// mixing requests, invalidations and forced sweeps pins the identities
// under the race detector.

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/registry"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
)

// eventRec is one observed engine event, comparable for differential runs.
type eventRec struct {
	typ   core.EventType
	id    media.ClipID
	bytes media.Bytes
	now   vtime.Time
}

// eventCollector records every event in delivery order.
type eventCollector struct {
	events []eventRec
}

func (c *eventCollector) Observe(ev core.Event) {
	c.events = append(c.events, eventRec{typ: ev.Type, id: ev.Clip.ID, bytes: ev.Bytes, now: ev.Now})
}

// churnDrive replays one churn schedule against a requester/invalidator
// pair: requests go to req, perish events to inv.
func churnDrive(t *testing.T, gen *workload.Churn, req func(media.ClipID) (core.Outcome, error), inv func(media.ClipID) media.Bytes) []core.Outcome {
	t.Helper()
	var outs []core.Outcome
	for {
		ev, ok := gen.Next()
		if !ok {
			return outs
		}
		switch ev.Kind {
		case workload.ChurnRequest:
			out, err := req(ev.Clip)
			if err != nil {
				t.Fatalf("request clip %d: %v", ev.Clip, err)
			}
			outs = append(outs, out)
		case workload.ChurnPerish:
			inv(ev.Clip)
		}
	}
}

// TestSingleShardChurnEquivalence drives the same churn schedule — TTL on,
// perish-driven invalidation — through a 1-shard pool and a bare cache
// built from the same seed, and requires identical outcomes, statistics,
// resident sets, snapshot bytes and event streams (victim for victim).
func TestSingleShardChurnEquivalence(t *testing.T) {
	repo := media.PaperRepository()
	capacity := repo.CacheSizeForRatio(testRatio)
	spec := workload.ChurnSpec{Rate: 0.05, Life: 800, Horizon: 6000}
	const ttl = 500

	var poolEvents, cacheEvents eventCollector
	pool, err := New(Config{
		Policy: "greedydual", Repo: repo, Capacity: capacity,
		Seed: 7, Shards: 1, TTL: ttl,
		ShardOptions: func(int) []core.Option {
			return []core.Option{core.WithObserver(&poolEvents)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := registry.Build("greedydual", repo, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.New(repo, capacity, pol,
		core.WithTTL(ttl), core.WithObserver(&cacheEvents))
	if err != nil {
		t.Fatal(err)
	}

	genPool, err := workload.NewChurn(repo.N(), 0.27, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	genCache, err := workload.NewChurn(repo.N(), 0.27, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	po := churnDrive(t, genPool, pool.Request, pool.Invalidate)
	co := churnDrive(t, genCache, cache.Request, cache.Invalidate)

	if len(po) != len(co) {
		t.Fatalf("outcome counts diverged: %d vs %d", len(po), len(co))
	}
	for i := range po {
		if po[i] != co[i] {
			t.Fatalf("outcome %d diverged: pool %v, cache %v", i, po[i], co[i])
		}
	}
	ps, cs := pool.Stats(), cache.Stats()
	if ps != cs {
		t.Fatalf("stats diverged:\npool  %+v\ncache %+v", ps, cs)
	}
	if ps.Invalidated == 0 || ps.Expired == 0 {
		t.Fatalf("churn drive produced no invalidations/expiries: %+v", ps)
	}
	pids, cids := pool.ResidentIDs(), core.CollectResidentIDs(cache)
	if len(pids) != len(cids) {
		t.Fatalf("resident sets diverged: %v vs %v", pids, cids)
	}
	for i := range pids {
		if pids[i] != cids[i] {
			t.Fatalf("resident sets diverged at %d: %v vs %v", i, pids, cids)
		}
		if pd, cd := pool.DeadlineOf(pids[i]), cache.DeadlineOf(cids[i]); pd != cd {
			t.Fatalf("deadline of clip %d diverged: pool %d, cache %d", pids[i], pd, cd)
		}
	}
	// Stats() drained every pending touch, so both event streams are
	// complete. Victim-for-victim: every eviction and invalidation (and
	// everything else) must match in order, id, bytes and tick.
	if len(poolEvents.events) != len(cacheEvents.events) {
		t.Fatalf("event streams diverged: %d vs %d events",
			len(poolEvents.events), len(cacheEvents.events))
	}
	for i := range poolEvents.events {
		if poolEvents.events[i] != cacheEvents.events[i] {
			t.Fatalf("event %d diverged: pool %+v, cache %+v",
				i, poolEvents.events[i], cacheEvents.events[i])
		}
	}
	var pbuf, cbuf bytes.Buffer
	if err := pool.Snapshot().WriteSnapshot(&pbuf); err != nil {
		t.Fatal(err)
	}
	if err := cache.Snapshot().WriteSnapshot(&cbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pbuf.Bytes(), cbuf.Bytes()) {
		t.Fatal("snapshot bytes diverged between 1-shard pool and bare cache")
	}
}

// TestChurnPoolDeterminism requires identically configured pools — at
// several shard counts, TTL on, perish-driven invalidation — to agree on
// every outcome and the final state across two runs of the same seed.
func TestChurnPoolDeterminism(t *testing.T) {
	repo := media.PaperRepository()
	spec := workload.ChurnSpec{Rate: 0.08, Life: 500, Horizon: 5000}
	for _, shards := range []int{1, 2, 4} {
		run := func() (core.Stats, []media.ClipID, []core.Outcome) {
			p, err := New(Config{
				Policy: "greedydual", Repo: repo,
				Capacity: repo.CacheSizeForRatio(testRatio),
				Seed:     9, Shards: shards, TTL: 300,
			})
			if err != nil {
				t.Fatal(err)
			}
			gen, err := workload.NewChurn(repo.N(), 0.27, spec, 21)
			if err != nil {
				t.Fatal(err)
			}
			outs := churnDrive(t, gen, p.Request, p.Invalidate)
			return p.Stats(), p.ResidentIDs(), outs
		}
		s1, ids1, o1 := run()
		s2, ids2, o2 := run()
		if s1 != s2 {
			t.Fatalf("%d shards: stats diverged across runs:\n%+v\n%+v", shards, s1, s2)
		}
		if len(ids1) != len(ids2) {
			t.Fatalf("%d shards: resident sets diverged", shards)
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Fatalf("%d shards: resident sets diverged at %d", shards, i)
			}
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("%d shards: outcome %d diverged: %v vs %v", shards, i, o1[i], o2[i])
			}
		}
		if s1.Invalidated == 0 {
			t.Fatalf("%d shards: churn drive produced no invalidations", shards)
		}
	}
}

// TestConcurrentChurnIdentities hammers a TTL pool with concurrent
// requesters, invalidators and forced sweeps, then checks that the
// counting and byte identities hold on the drained statistics — the
// race-detector chaos complement of the serialized differential tests.
func TestConcurrentChurnIdentities(t *testing.T) {
	repo := media.PaperRepository()
	p, err := New(Config{
		Policy: "greedydual", Repo: repo,
		Capacity: repo.CacheSizeForRatio(testRatio),
		Seed:     5, Shards: 4, TTL: 400, Fetch: failEveryNth(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers  = 8
		requests = 2000
	)
	var (
		wg        sync.WaitGroup
		requested atomic.Uint64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trace := testTrace(requests, uint64(w+1))
			for i, id := range trace {
				switch {
				case i%97 == 13:
					p.Invalidate(id)
				case i%251 == 100:
					p.SweepExpired()
				default:
					if _, err := p.Request(id); err != nil {
						t.Errorf("worker %d request %d: %v", w, i, err)
						return
					}
					requested.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	s := p.Stats()
	if s.Requests != requested.Load() {
		t.Fatalf("drove %d requests, stats report %d (invalidations must not count)",
			requested.Load(), s.Requests)
	}
	// Requests == Hits + MissCached + Bypassed + FetchFailed: MissCached is
	// not counted directly, so assert the other terms never overshoot (an
	// identity break would make the derived MissCached underflow).
	if s.Hits+s.Bypassed+s.FetchFailed > s.Requests {
		t.Fatalf("counting identity broken under concurrent churn: %+v", s)
	}
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Fatalf("byte identity broken under concurrent churn: %+v", s)
	}
	if s.Expired > s.Invalidated {
		t.Fatalf("Expired %d exceeds Invalidated %d", s.Expired, s.Invalidated)
	}
	if p.UsedBytes() < 0 || p.UsedBytes() > p.Capacity() {
		t.Fatalf("used bytes %v outside [0, %v]", p.UsedBytes(), p.Capacity())
	}
}

package shard

import (
	"sync"
	"sync/atomic"

	"mediacache/internal/media"
)

// flightKey identifies one coalescable fetch: a whole clip (seg == wholeClip)
// or one segment of a clip under a segmented pool. Keying per segment lets
// two requests for disjoint ranges of the same clip fetch in parallel while
// still sharing any segment they both miss.
type flightKey struct {
	id  media.ClipID
	seg int32
}

// wholeClip is the flightKey segment index of an unsegmented fetch.
const wholeClip int32 = -1

// flightGroup coalesces concurrent fetches for the same key: the first
// requester becomes the leader and executes the fetch; requesters arriving
// while it is in flight wait for the leader's result instead of fetching
// again. It is a minimal single-purpose variant of the well-known
// singleflight pattern, keyed by (clip ID, segment index).
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall

	// coalesced counts joins of an already in-flight fetch; it is
	// incremented at join time (before waiting) so tests can observe that
	// waiters have piled up while the leader is still fetching.
	coalesced atomic.Uint64
}

// flightCall is one in-flight fetch.
type flightCall struct {
	done chan struct{}
	err  error // written by the leader before done is closed
}

// init prepares the group's map; must be called before the first do.
func (g *flightGroup) init() {
	g.m = make(map[flightKey]*flightCall)
}

// do executes fn for key, unless a fetch for key is already in flight, in
// which case it waits for that fetch and returns its error. The call is
// removed from the group before its waiters are released, so a request
// arriving after the result is settled starts a fresh fetch — results are
// shared only within one overlapping burst, never cached.
func (g *flightGroup) do(key flightKey, fn func() error) error {
	g.mu.Lock()
	if c, inFlight := g.m[key]; inFlight {
		g.coalesced.Add(1)
		g.mu.Unlock()
		<-c.done
		return c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.err
}

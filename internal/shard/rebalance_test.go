package shard

// rebalance_test.go pins the invariant the cluster rebalance path depends
// on (ISSUE 9): a pool snapshot restores into a pool with a DIFFERENT
// shard count — or into a bare cache — with the resident set, the partial
// segment lists and the TTL deadlines preserved byte-for-byte. Deadlines
// travel as clock-relative remaining spans, so they survive moves between
// nodes whose clock bases are unrelated.

import (
	"bytes"
	"reflect"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	_ "mediacache/internal/policy/all"
	"mediacache/internal/policy/registry"
	"mediacache/internal/vtime"
)

const rebalanceTTL vtime.Duration = 500

// driveRebalanceSource builds a segmented TTL pool with nShards shards and
// drives a deterministic mix of full and ranged requests so the snapshot
// carries full residents, partial residents and nontrivial deadlines.
func driveRebalanceSource(t *testing.T, nShards int) *Pool {
	t.Helper()
	repo := media.PaperRepository()
	p, err := New(Config{
		Policy:      "greedydual",
		Repo:        repo,
		Capacity:    repo.CacheSizeForRatio(0.125),
		Seed:        11,
		Shards:      nShards,
		SegmentSize: 512 * 1024,
		TTL:         rebalanceTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if i%3 == 0 {
			// Ranged touch on a disjoint id range: materializes only the
			// covering prefix segments, leaving those clips partial.
			id := media.ClipID(i%10 + 20)
			if _, err := p.RequestRange(id, 0, 300*1024); err != nil {
				t.Fatal(err)
			}
			continue
		}
		id := media.ClipID(i%17 + 1)
		if _, err := p.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestRebalanceAcrossShardCountsPreservesTTLAndSegments(t *testing.T) {
	src := driveRebalanceSource(t, 3)
	snap := src.Snapshot()
	if len(snap.ResidentIDs) == 0 || len(snap.Partial) == 0 {
		t.Fatalf("setup: want full and partial residents, got %d/%d",
			len(snap.ResidentIDs), len(snap.Partial))
	}
	if len(snap.TTLRemaining) != len(snap.ResidentIDs)+len(snap.Partial) {
		t.Fatalf("snapshot carries %d TTL spans for %d residents",
			len(snap.TTLRemaining), len(snap.ResidentIDs)+len(snap.Partial))
	}

	repo := src.Repository()
	for _, shards := range []int{1, 2, 5} {
		dst, err := New(Config{
			Policy:      "greedydual",
			Repo:        repo,
			Capacity:    repo.CacheSizeForRatio(0.125),
			Seed:        23,
			Shards:      shards,
			SegmentSize: 512 * 1024,
			TTL:         rebalanceTTL,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(snap); err != nil {
			t.Fatalf("restore into %d shards: %v", shards, err)
		}
		// Every restored shard starts at the snapshot clock, so remaining
		// spans are directly observable as deadline − snapshot clock.
		for _, ct := range snap.TTLRemaining {
			got := dst.DeadlineOf(ct.ID) - snap.Clock
			if got != ct.Remaining {
				t.Fatalf("%d shards: clip %d remaining TTL = %d, want %d",
					shards, ct.ID, got, ct.Remaining)
			}
		}
		// Re-snapshotting must reproduce the resident state byte-for-byte.
		// (The clock differs — a pool snapshot sums per-shard clocks — so the
		// comparison is over the persistent content, not the whole struct.)
		back := dst.Snapshot()
		if !reflect.DeepEqual(back.ResidentIDs, snap.ResidentIDs) {
			t.Fatalf("%d shards: resident ids diverge", shards)
		}
		if !reflect.DeepEqual(back.Partial, snap.Partial) {
			t.Fatalf("%d shards: partial segment lists diverge", shards)
		}
		if !reflect.DeepEqual(back.TTLRemaining, snap.TTLRemaining) {
			t.Fatalf("%d shards: TTL spans diverge", shards)
		}
	}
}

// TestRebalanceIntoBareCache restores a 3-shard pool snapshot into an
// unsharded core.Cache and back, proving the formats are interchangeable
// node-to-node regardless of local partitioning.
func TestRebalanceIntoBareCache(t *testing.T) {
	src := driveRebalanceSource(t, 3)
	snap := src.Snapshot()
	repo := src.Repository()
	pol, err := registry.Build("greedydual", repo, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.New(repo, repo.CacheSizeForRatio(0.125), pol,
		core.WithSegments(512*1024), core.WithTTL(rebalanceTTL))
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, ct := range snap.TTLRemaining {
		if got := cache.DeadlineOf(ct.ID) - snap.Clock; got != ct.Remaining {
			t.Fatalf("clip %d remaining TTL = %d, want %d", ct.ID, got, ct.Remaining)
		}
	}
	back := cache.Snapshot()
	if !reflect.DeepEqual(back.ResidentIDs, snap.ResidentIDs) ||
		!reflect.DeepEqual(back.Partial, snap.Partial) ||
		!reflect.DeepEqual(back.TTLRemaining, snap.TTLRemaining) {
		t.Fatal("bare-cache round trip diverges from the pool snapshot")
	}
}

// TestRebalanceSnapshotGobRoundTrip proves the wire form (the /v1/snapshot
// body) carries the TTL spans: encode, decode, restore, compare.
func TestRebalanceSnapshotGobRoundTrip(t *testing.T) {
	src := driveRebalanceSource(t, 2)
	snap := src.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, snap) {
		t.Fatal("gob round trip altered the snapshot")
	}
}

// TestRestoreWithoutTTLSpansRefreshes preserves the pre-churn contract: a
// snapshot with no TTL spans (an old archive, or a TTL-off capture)
// restores into a TTL pool with fresh deadlines from the restore point.
func TestRestoreWithoutTTLSpansRefreshes(t *testing.T) {
	repo := media.PaperRepository()
	noTTL, err := New(Config{
		Policy: "greedydual", Repo: repo,
		Capacity: repo.CacheSizeForRatio(0.125), Seed: 1, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := media.ClipID(1); id <= 8; id++ {
		if _, err := noTTL.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	snap := noTTL.Snapshot()
	if snap.TTLRemaining != nil {
		t.Fatalf("TTL-off capture must carry no TTL spans, got %d", len(snap.TTLRemaining))
	}
	dst, err := New(Config{
		Policy: "greedydual", Repo: repo,
		Capacity: repo.CacheSizeForRatio(0.125), Seed: 2, Shards: 3,
		TTL: rebalanceTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, id := range snap.ResidentIDs {
		if got := dst.DeadlineOf(id); got != snap.Clock+vtime.Time(rebalanceTTL) {
			t.Fatalf("clip %d deadline = %d, want fresh TTL %d", id, got,
				snap.Clock+vtime.Time(rebalanceTTL))
		}
	}
}

// TestRestoreRejectsBadTTLSpans: spans referencing non-resident clips or
// duplicated spans fail validation before any shard is touched.
func TestRestoreRejectsBadTTLSpans(t *testing.T) {
	src := driveRebalanceSource(t, 2)
	snap := src.Snapshot()
	dst := driveRebalanceSource(t, 3)
	want := dst.Snapshot()

	orphan := snap
	orphan.TTLRemaining = append([]core.ClipTTL(nil), snap.TTLRemaining...)
	orphan.TTLRemaining = append(orphan.TTLRemaining, core.ClipTTL{ID: 500, Remaining: 1})
	if err := dst.Restore(orphan); err == nil {
		t.Fatal("TTL span for a non-resident clip must be rejected")
	}
	dup := snap
	dup.TTLRemaining = append([]core.ClipTTL(nil), snap.TTLRemaining...)
	dup.TTLRemaining = append(dup.TTLRemaining, snap.TTLRemaining[0])
	if err := dst.Restore(dup); err == nil {
		t.Fatal("duplicated TTL span must be rejected")
	}
	if got := dst.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("failed restore mutated the pool")
	}
}

package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// TestRequestBatchEquivalence drives one pool through RequestBatch and a
// twin pool through individual Request calls. Per-item outcomes, final
// statistics and resident sets must match: batching amortizes locking, it
// must never change a decision.
func TestRequestBatchEquivalence(t *testing.T) {
	// The fault must be a pure function of the clip: the batch path fetches
	// a group's missing clips concurrently, so a call-order-dependent hook
	// (failEveryNth) would assign failures to different clips than the
	// serialized single-request path.
	failByClip := func(clip media.Clip, _ vtime.Time) error {
		if clip.ID%7 == 0 {
			return errors.New("injected fetch failure")
		}
		return nil
	}
	for name, shards := range map[string]int{"one-shard": 1, "four-shards": 4} {
		t.Run(name, func(t *testing.T) {
			trace := testTrace(4000, 17)
			batched := newTestPool(t, shards, failByClip)
			single := newTestPool(t, shards, failByClip)

			const batchLen = 16
			for off := 0; off < len(trace); off += batchLen {
				end := off + batchLen
				if end > len(trace) {
					end = len(trace)
				}
				items := make([]BatchItem, 0, end-off)
				for _, id := range trace[off:end] {
					items = append(items, BatchItem{ID: id})
				}
				res := batched.RequestBatch(items)
				for k, id := range trace[off:end] {
					want, err := single.Request(id)
					if err != nil {
						t.Fatal(err)
					}
					if res[k].Err != nil {
						t.Fatalf("item %d (clip %d): %v", off+k, id, res[k].Err)
					}
					if res[k].Outcome != want {
						t.Fatalf("item %d (clip %d): batch %v, single %v",
							off+k, id, res[k].Outcome, want)
					}
				}
			}
			if bs, ss := batched.Stats(), single.Stats(); bs != ss {
				t.Fatalf("stats diverged:\nbatch  %+v\nsingle %+v", bs, ss)
			}
			bids, sids := batched.ResidentIDs(), single.ResidentIDs()
			if len(bids) != len(sids) {
				t.Fatalf("resident sets diverged: %d vs %d clips", len(bids), len(sids))
			}
			for i := range bids {
				if bids[i] != sids[i] {
					t.Fatalf("resident sets diverged at %d: %v vs %v", i, bids[i], sids[i])
				}
			}
		})
	}
}

// TestRequestBatchRangedSegmented drives mixed ranged and whole-clip items
// through a segmented pool's batch path against a twin served per item.
func TestRequestBatchRangedSegmented(t *testing.T) {
	repo := media.PaperRepository()
	newPool := func() *Pool {
		p, err := New(Config{
			Policy: "greedydual", Repo: repo,
			Capacity: repo.CacheSizeForRatio(testRatio),
			Seed:     7, Shards: 2,
			SegmentSize: 256 * media.MB, PrefixSegments: 1,
			SegmentFetch: func(media.Clip, int32, vtime.Time) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	rgen, err := workload.NewRangeGenerator(repo, dist, 23, workload.DefaultRangeConfig())
	if err != nil {
		t.Fatal(err)
	}
	rtrace := rgen.Generate(nil, 1500)

	batched, single := newPool(), newPool()
	const batchLen = 8
	for off := 0; off < len(rtrace); off += batchLen {
		end := off + batchLen
		if end > len(rtrace) {
			end = len(rtrace)
		}
		items := make([]BatchItem, 0, end-off)
		for k, rr := range rtrace[off:end] {
			it := BatchItem{ID: rr.Clip}
			if k%2 == 0 { // alternate ranged and whole-clip forms
				it.Ranged, it.Start, it.Length = true, rr.Start, rr.Length
			}
			items = append(items, it)
		}
		res := batched.RequestBatch(items)
		for k, it := range items {
			if it.Ranged {
				want, err := single.RequestRange(it.ID, it.Start, it.Length)
				if err != nil {
					t.Fatal(err)
				}
				if res[k].Range != want {
					t.Fatalf("item %d (clip %d): batch %+v, single %+v",
						off+k, it.ID, res[k].Range, want)
				}
			} else {
				want, err := single.Request(it.ID)
				if err != nil {
					t.Fatal(err)
				}
				if res[k].Outcome != want {
					t.Fatalf("item %d (clip %d): batch %v, single %v",
						off+k, it.ID, res[k].Outcome, want)
				}
			}
		}
	}
	if bs, ss := batched.Stats(), single.Stats(); bs != ss {
		t.Fatalf("stats diverged:\nbatch  %+v\nsingle %+v", bs, ss)
	}
}

// TestFastPathDrainThreshold verifies that fast-path hits buffered past the
// drain threshold are replayed: after many hits on one resident clip the
// engine's counters account every one of them.
func TestFastPathDrainThreshold(t *testing.T) {
	p := newTestPool(t, 1, nil)
	if _, err := p.Request(1); err != nil { // materialize
		t.Fatal(err)
	}
	const hits = 3*touchBatchSize + 7
	for i := 0; i < hits; i++ {
		out, err := p.Request(1)
		if err != nil {
			t.Fatal(err)
		}
		if out != core.Hit {
			t.Fatalf("hit %d: outcome %v", i, out)
		}
	}
	if p.FastPathHits() == 0 {
		t.Fatal("fast path never engaged")
	}
	if p.TouchFlushes() < 3 {
		t.Fatalf("expected at least 3 threshold drains, got %d", p.TouchFlushes())
	}
	st := p.Stats()
	if st.Requests != hits+1 {
		t.Fatalf("engine saw %d requests, want %d", st.Requests, hits+1)
	}
	if st.Hits != hits {
		t.Fatalf("engine saw %d hits, want %d", st.Hits, hits)
	}
}

// TestBatchSingleShardHammer is the concurrency drive for the batched API:
// batch and single-clip requests hammer a one-shard pool concurrently over
// a flaky link injecting a 20% fault profile, and the aggregated snapshot
// must still satisfy the counting identity
// Requests == Hits + MissCached + Bypassed + FetchFailed and the byte
// identity BytesHit + BytesFetched + BytesFailed == BytesReferenced.
// Run under -race this also shakes out fast-path/drain interleavings.
func TestBatchSingleShardHammer(t *testing.T) {
	errInjected := errors.New("injected fetch failure")
	inj := fault.New(fault.Profile{ErrorRate: 0.2}, 99)
	var injMu sync.Mutex
	fetch := func(media.Clip, vtime.Time) error {
		injMu.Lock()
		f := inj.Next()
		injMu.Unlock()
		if f.Failed() {
			return errInjected
		}
		return nil
	}
	p := newTestPool(t, 1, fetch)

	const (
		workers      = 8
		perWorker    = 400
		batchLen     = 8
		singleEvery  = 3 // every 3rd iteration issues singles instead
		itemsPerIter = batchLen
	)
	var (
		wg     sync.WaitGroup
		served atomic.Uint64
		hits   atomic.Uint64
	)
	for w := 0; w < workers; w++ {
		trace := testTrace(perWorker*itemsPerIter, uint64(1000+w))
		wg.Add(1)
		go func(trace []media.ClipID) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				chunk := trace[i*itemsPerIter : (i+1)*itemsPerIter]
				if i%singleEvery == 0 {
					for _, id := range chunk {
						out, err := p.Request(id)
						if err != nil {
							t.Error(err)
							return
						}
						served.Add(1)
						if out.IsHit() {
							hits.Add(1)
						}
					}
					continue
				}
				items := make([]BatchItem, len(chunk))
				for k, id := range chunk {
					items[k] = BatchItem{ID: id}
				}
				for _, r := range p.RequestBatch(items) {
					if r.Err != nil {
						t.Error(r.Err)
						return
					}
					served.Add(1)
					if r.Outcome.IsHit() {
						hits.Add(1)
					}
				}
			}
		}(trace)
	}
	wg.Wait()

	st := p.Stats()
	if st.Requests != served.Load() {
		t.Fatalf("engine saw %d requests, drivers issued %d", st.Requests, served.Load())
	}
	if st.Hits != hits.Load() {
		t.Fatalf("engine counted %d hits, drivers observed %d", st.Hits, hits.Load())
	}
	missCached := st.Requests - st.Hits - st.Bypassed - st.FetchFailed
	if st.Requests != st.Hits+missCached+st.Bypassed+st.FetchFailed {
		t.Fatalf("counting identity violated: %+v", st)
	}
	if st.FetchFailed == 0 {
		t.Fatal("20%% fault profile injected no failures")
	}
	if st.BytesHit+st.BytesFetched+st.BytesFailed != st.BytesReferenced {
		t.Fatalf("byte identity violated: hit %v + fetched %v + failed %v != referenced %v",
			st.BytesHit, st.BytesFetched, st.BytesFailed, st.BytesReferenced)
	}
	// The aggregate must equal the per-shard sum (trivially one shard here,
	// but this pins ShardStats draining pending touches too).
	var sum core.Stats
	for _, ss := range p.ShardStats() {
		sum = sum.Add(ss.Stats)
	}
	if sum != st {
		t.Fatalf("per-shard sum diverges from aggregate:\nsum %+v\nagg %+v", sum, st)
	}
}

package shard

// readpath.go is the lock-reduced hit path. On unsegmented pools every
// shard engine publishes its resident set into a core.ResidencyMirror
// (updated under the shard lock, readable without it). A request whose clip
// is in the published view is a hit: the bytes it would stream are the ones
// the view's linearization point guarantees, so the request returns
// immediately and only enqueues a "touch" — the deferred policy Record,
// clock tick and hit statistics the engine replays later via
// core.Cache.ApplyHit.
//
// Touches accumulate in a per-shard buffer guarded by its own short mutex
// and drain under ONE engine-lock acquisition, either when the buffer
// reaches touchBatchSize or before any code path that reads or mutates
// engine state under the lock (miss servicing, Stats, Snapshot, Reset,
// Restore, ...). Draining before every engine interaction preserves the
// exact Stats identities and, under serial driving, byte-identical policy
// decisions: a hit's Record always lands before the next engine-path
// request is serviced, exactly as in the serialized order.
//
// Under concurrent driving the linearization is coarser — a touch can land
// after an unrelated miss on the same shard that arrived later — which is
// one of the documented determinism caveats (DESIGN.md §15): any
// single-shard interleaving of the same multiset of requests is a legal
// serialized order, and the stats identities hold in all of them.

import (
	"mediacache/internal/media"
)

// touchBatchSize is the drain threshold for the pending-touch buffer. Large
// enough to amortize the engine lock across hundreds of hits, small enough
// that policy recency signals lag by at most a few hundred references on a
// hit-heavy shard.
const touchBatchSize = 256

// recordTouch enqueues one fast-path hit and drains the buffer when it
// reaches the batch threshold.
func (p *Pool) recordTouch(s *poolShard, id media.ClipID) {
	p.fastHits.Add(1)
	s.touchMu.Lock()
	s.pending.Add(1)
	s.touches = append(s.touches, id)
	if len(s.touches) < touchBatchSize {
		s.touchMu.Unlock()
		return
	}
	batch := s.touches
	s.touches = s.touchSpare[:0]
	s.touchSpare = nil
	s.touchMu.Unlock()

	s.mu.Lock()
	p.applyTouches(s, batch)
	s.mu.Unlock()
	p.recycleTouchBuf(s, batch)
}

// recordTouchSlice enqueues a batch of fast-path hits under one buffer-lock
// acquisition, draining at most once.
func (p *Pool) recordTouchSlice(s *poolShard, ids []media.ClipID) {
	p.fastHits.Add(uint64(len(ids)))
	s.touchMu.Lock()
	s.pending.Add(int64(len(ids)))
	s.touches = append(s.touches, ids...)
	if len(s.touches) < touchBatchSize {
		s.touchMu.Unlock()
		return
	}
	batch := s.touches
	s.touches = s.touchSpare[:0]
	s.touchSpare = nil
	s.touchMu.Unlock()

	s.mu.Lock()
	p.applyTouches(s, batch)
	s.mu.Unlock()
	p.recycleTouchBuf(s, batch)
}

// recycleTouchBuf returns a drained buffer to the shard as the standby
// swap target, unless a concurrent drain already parked one.
func (p *Pool) recycleTouchBuf(s *poolShard, batch []media.ClipID) {
	s.touchMu.Lock()
	if s.touchSpare == nil {
		s.touchSpare = batch[:0]
	}
	s.touchMu.Unlock()
}

// drainLocked replays every pending touch into the engine. The caller holds
// s.mu; the buffer lock is taken only long enough to swap the buffer out,
// so fast-path appends proceed while the batch applies.
func (p *Pool) drainLocked(s *poolShard) {
	if !p.fastPath {
		return
	}
	s.touchMu.Lock()
	if len(s.touches) == 0 {
		s.touchMu.Unlock()
		return
	}
	batch := s.touches
	s.touches = s.touchSpare[:0]
	s.touchSpare = nil
	s.touchMu.Unlock()

	p.applyTouches(s, batch)
	p.recycleTouchBuf(s, batch)
}

// applyTouches replays a swapped-out touch batch under the engine lock
// (held by the caller).
func (p *Pool) applyTouches(s *poolShard, batch []media.ClipID) {
	p.touchFlushes.Add(1)
	for _, id := range batch {
		// ApplyHit fails only for ids outside the repository or on
		// segmented engines; touches are recorded from the published view
		// of an unsegmented engine, so neither can occur.
		_ = s.cache.ApplyHit(id)
	}
	// Decrement only after the replay: while the batch is in flight the
	// TTL fast path keeps overestimating the replay tick, which at worst
	// diverts a borderline hit to the engine path.
	s.pending.Add(-int64(len(batch)))
}

// lockDrained acquires the shard lock and replays pending touches, so the
// caller observes (and mutates) engine state with every fast-path hit
// accounted. Every engine interaction goes through this.
func (p *Pool) lockDrained(s *poolShard) {
	s.mu.Lock()
	p.drainLocked(s)
}

// lockAllDrained acquires every shard lock in index order and drains each,
// giving pool-wide readers (Stats, Snapshot, ...) a consistent view with no
// touches outstanding.
func (p *Pool) lockAllDrained() {
	p.lockAll()
	for _, s := range p.shards {
		p.drainLocked(s)
	}
}

// FastPathHits returns how many hits were served off the published
// residency view without taking a shard lock.
func (p *Pool) FastPathHits() uint64 { return p.fastHits.Load() }

// TouchFlushes returns how many batched touch drains have replayed
// fast-path hits into the shard engines.
func (p *Pool) TouchFlushes() uint64 { return p.touchFlushes.Load() }

// Batches returns how many RequestBatch calls the pool has served.
func (p *Pool) Batches() uint64 { return p.batches.Load() }

package shard

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/registry"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"

	// Register the built-in policies for registry.Build.
	_ "mediacache/internal/policy/all"
)

const testRatio = 0.125

// testTrace generates a deterministic request trace over the paper
// repository.
func testTrace(n int, seed uint64) []media.ClipID {
	repo := media.PaperRepository()
	src := randutil.NewSource(seed)
	ids := make([]media.ClipID, n)
	for i := range ids {
		ids[i] = media.ClipID(src.Intn(repo.N()) + 1)
	}
	return ids
}

func newTestPool(t *testing.T, shards int, fetch core.FetchFunc) *Pool {
	t.Helper()
	repo := media.PaperRepository()
	p, err := New(Config{
		Policy:   "greedydual",
		Repo:     repo,
		Capacity: repo.CacheSizeForRatio(testRatio),
		Seed:     7,
		Shards:   shards,
		Fetch:    fetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// failEveryNth builds a deterministic fetch hook whose every n-th call
// fails (counting from 1).
func failEveryNth(n uint64) core.FetchFunc {
	var calls atomic.Uint64
	return func(media.Clip, vtime.Time) error {
		if calls.Add(1)%n == 0 {
			return errors.New("injected fetch failure")
		}
		return nil
	}
}

// TestSingleShardEquivalence drives a 1-shard pool and a bare cache built
// from the same seed and policy through the same trace and requires
// identical outcomes, statistics, resident sets and snapshot bytes.
func TestSingleShardEquivalence(t *testing.T) {
	for name, fetches := range map[string]func() (poolFetch, cacheFetch core.FetchFunc){
		"no-fetch":    func() (core.FetchFunc, core.FetchFunc) { return nil, nil },
		"faulty-link": func() (core.FetchFunc, core.FetchFunc) { return failEveryNth(7), failEveryNth(7) },
	} {
		t.Run(name, func(t *testing.T) {
			repo := media.PaperRepository()
			capacity := repo.CacheSizeForRatio(testRatio)
			poolFetch, cacheFetch := fetches()

			pool, err := New(Config{
				Policy: "greedydual", Repo: repo, Capacity: capacity,
				Seed: 7, Shards: 1, Fetch: poolFetch,
			})
			if err != nil {
				t.Fatal(err)
			}
			pol, err := registry.Build("greedydual", repo, nil, 7)
			if err != nil {
				t.Fatal(err)
			}
			var opts []core.Option
			if cacheFetch != nil {
				opts = append(opts, core.WithFetch(cacheFetch))
			}
			cache, err := core.New(repo, capacity, pol, opts...)
			if err != nil {
				t.Fatal(err)
			}

			for i, id := range testTrace(5000, 42) {
				po, perr := pool.Request(id)
				co, cerr := cache.Request(id)
				if po != co || (perr == nil) != (cerr == nil) {
					t.Fatalf("request %d (clip %d): pool %v/%v, cache %v/%v",
						i, id, po, perr, co, cerr)
				}
			}
			if ps, cs := pool.Stats(), cache.Stats(); ps != cs {
				t.Fatalf("stats diverged:\npool  %+v\ncache %+v", ps, cs)
			}
			pids, cids := pool.ResidentIDs(), core.CollectResidentIDs(cache)
			if len(pids) != len(cids) {
				t.Fatalf("resident sets diverged: %v vs %v", pids, cids)
			}
			for i := range pids {
				if pids[i] != cids[i] {
					t.Fatalf("resident sets diverged at %d: %v vs %v", i, pids, cids)
				}
			}
			var pbuf, cbuf bytes.Buffer
			if err := pool.Snapshot().WriteSnapshot(&pbuf); err != nil {
				t.Fatal(err)
			}
			if err := cache.Snapshot().WriteSnapshot(&cbuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pbuf.Bytes(), cbuf.Bytes()) {
				t.Fatal("snapshot bytes diverged between 1-shard pool and bare cache")
			}
		})
	}
}

// TestShardedDeterminism requires two identically configured multi-shard
// pools to agree on every outcome and final state for the same trace.
func TestShardedDeterminism(t *testing.T) {
	trace := testTrace(5000, 99)
	run := func() (core.Stats, []media.ClipID, []core.Outcome) {
		p := newTestPool(t, 4, failEveryNth(11))
		outs := make([]core.Outcome, len(trace))
		for i, id := range trace {
			out, err := p.Request(id)
			if err != nil {
				t.Fatal(err)
			}
			outs[i] = out
		}
		return p.Stats(), p.ResidentIDs(), outs
	}
	s1, ids1, o1 := run()
	s2, ids2, o2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across runs:\n%+v\n%+v", s1, s2)
	}
	if len(ids1) != len(ids2) {
		t.Fatalf("resident sets diverged: %v vs %v", ids1, ids2)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("resident sets diverged at %d", i)
		}
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d diverged: %v vs %v", i, o1[i], o2[i])
		}
	}
}

// TestCoalescing piles concurrent misses for one clip onto a blocked fetch
// and requires exactly one fetch execution, with the waiters served as
// hits once the leader materializes the clip.
func TestCoalescing(t *testing.T) {
	const waiters = 7
	release := make(chan struct{})
	var calls atomic.Uint64
	fetch := func(media.Clip, vtime.Time) error {
		calls.Add(1)
		<-release
		return nil
	}
	p := newTestPool(t, 4, fetch)

	outcomes := make(chan core.Outcome, waiters+1)
	var wg sync.WaitGroup
	for i := 0; i < waiters+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := p.Request(1)
			if err != nil {
				t.Error(err)
			}
			outcomes <- out
		}()
	}
	// Every follower increments the coalesced counter before waiting, so
	// once it reaches `waiters` all requests are riding the single fetch.
	deadline := time.Now().Add(5 * time.Second)
	for p.Coalesced() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced", p.Coalesced(), waiters)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	close(outcomes)

	if got := calls.Load(); got != 1 {
		t.Fatalf("fetch executed %d times, want 1", got)
	}
	if got := p.Fetches(); got != 1 {
		t.Fatalf("Fetches() = %d, want 1", got)
	}
	var hits, cached int
	for out := range outcomes {
		switch out {
		case core.Hit:
			hits++
		case core.MissCached:
			cached++
		default:
			t.Fatalf("unexpected outcome %v", out)
		}
	}
	if cached != 1 || hits != waiters {
		t.Fatalf("outcomes: %d cached + %d hits, want 1 + %d", cached, hits, waiters)
	}
	s := p.Stats()
	if s.Requests != waiters+1 || s.Hits != waiters {
		t.Fatalf("stats: %+v", s)
	}
}

// TestCoalescedFailureDegradesAll shares one failed fetch across a burst
// and requires every coalesced request to degrade — the accounting a
// client sees must not depend on whether its fetch was the leader.
func TestCoalescedFailureDegradesAll(t *testing.T) {
	const requests = 6
	release := make(chan struct{})
	var calls atomic.Uint64
	fetch := func(media.Clip, vtime.Time) error {
		calls.Add(1)
		<-release
		return errors.New("link down")
	}
	p := newTestPool(t, 4, fetch)

	var wg sync.WaitGroup
	outcomes := make(chan core.Outcome, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := p.Request(1)
			if err != nil {
				t.Error(err)
			}
			outcomes <- out
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Coalesced() < requests-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced", p.Coalesced(), requests-1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	close(outcomes)

	if got := calls.Load(); got != 1 {
		t.Fatalf("fetch executed %d times, want 1", got)
	}
	for out := range outcomes {
		if out != core.MissDegraded {
			t.Fatalf("outcome %v, want MissDegraded", out)
		}
	}
	s := p.Stats()
	if s.Requests != requests || s.FetchFailed != requests || s.Hits != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.BytesFailed != s.BytesReferenced {
		t.Fatalf("byte accounting: failed %v, referenced %v", s.BytesFailed, s.BytesReferenced)
	}
}

// TestConcurrentStatsIdentities hammers a sharded pool from many
// goroutines over a faulty link and checks the aggregated snapshot against
// outcomes counted at the driver:
//
//	Requests == Hits + MissCached + Bypassed + FetchFailed
//	BytesHit + BytesFetched + BytesFailed == BytesReferenced
func TestConcurrentStatsIdentities(t *testing.T) {
	const (
		goroutines = 8
		perG       = 400
	)
	p := newTestPool(t, 4, failEveryNth(5))
	repo := p.Repository()

	var hits, cached, bypassed, degraded atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := randutil.NewSource(uint64(1000 + g))
			for i := 0; i < perG; i++ {
				id := media.ClipID(src.Intn(repo.N()) + 1)
				out, err := p.Request(id)
				if err != nil {
					t.Error(err)
					return
				}
				switch out {
				case core.Hit:
					hits.Add(1)
				case core.MissCached:
					cached.Add(1)
				case core.MissBypassed, core.MissTooLarge:
					bypassed.Add(1)
				case core.MissDegraded:
					degraded.Add(1)
				default:
					t.Errorf("unexpected outcome %v", out)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := p.Stats()
	if s.Requests != goroutines*perG {
		t.Fatalf("Requests = %d, want %d", s.Requests, goroutines*perG)
	}
	if s.Hits != hits.Load() || s.Bypassed != bypassed.Load() || s.FetchFailed != degraded.Load() {
		t.Fatalf("driver counted hits=%d bypassed=%d degraded=%d; stats %+v",
			hits.Load(), bypassed.Load(), degraded.Load(), s)
	}
	if s.Requests != s.Hits+cached.Load()+s.Bypassed+s.FetchFailed {
		t.Fatalf("outcome identity violated: %+v (cached %d)", s, cached.Load())
	}
	if s.BytesHit+s.BytesFetched+s.BytesFailed != s.BytesReferenced {
		t.Fatalf("byte identity violated: %+v", s)
	}
	// Per-shard counters must sum to the aggregate.
	var perShard core.Stats
	for _, st := range p.ShardStats() {
		perShard = perShard.Add(st.Stats)
	}
	if perShard != s {
		t.Fatalf("ShardStats sum %+v != Stats %+v", perShard, s)
	}
}

// TestCapacitySplit verifies the remainder-aware partitioning: shard
// capacities sum to the configured total and differ by at most one byte.
func TestCapacitySplit(t *testing.T) {
	repo := media.PaperRepository()
	const total = 103*media.MB + 3
	p, err := New(Config{Policy: "greedydual", Repo: repo, Capacity: total, Seed: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum media.Bytes
	stats := p.ShardStats()
	for _, st := range stats {
		sum += st.Capacity
	}
	if sum != total {
		t.Fatalf("shard capacities sum to %v, want %v", sum, total)
	}
	for _, st := range stats {
		if diff := st.Capacity - stats[len(stats)-1].Capacity; diff < 0 || diff > 1 {
			t.Fatalf("uneven split: %+v", stats)
		}
	}
	if got := p.Capacity(); got != total {
		t.Fatalf("Capacity() = %v, want %v", got, total)
	}
}

// TestRouting checks that the clip→shard mapping is stable and reaches
// every shard for the paper repository's ID range.
func TestRouting(t *testing.T) {
	p := newTestPool(t, 4, nil)
	seenByShard := make([]int, p.NumShards())
	for id := 1; id <= p.Repository().N(); id++ {
		i := p.ShardFor(media.ClipID(id))
		if j := p.ShardFor(media.ClipID(id)); j != i {
			t.Fatalf("ShardFor(%d) unstable: %d then %d", id, i, j)
		}
		seenByShard[i]++
	}
	for i, n := range seenByShard {
		if n == 0 {
			t.Fatalf("shard %d owns no clips: %v", i, seenByShard)
		}
	}
}

// TestSnapshotRestore round-trips a multi-shard pool's state, including
// into a pool with a different shard count.
func TestSnapshotRestore(t *testing.T) {
	p := newTestPool(t, 4, nil)
	for _, id := range testTrace(3000, 5) {
		if _, err := p.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	snap := p.Snapshot()
	wantIDs := p.ResidentIDs()
	wantStats := p.Stats()

	for _, shards := range []int{4, 2, 1} {
		fresh := newTestPool(t, shards, nil)
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("restore into %d shards: %v", shards, err)
		}
		gotIDs := fresh.ResidentIDs()
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("%d shards: resident %v, want %v", shards, gotIDs, wantIDs)
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("%d shards: resident %v, want %v", shards, gotIDs, wantIDs)
			}
		}
		if got := fresh.Stats(); got != wantStats {
			t.Fatalf("%d shards: stats %+v, want %+v", shards, got, wantStats)
		}
		if fresh.UsedBytes() != p.UsedBytes() {
			t.Fatalf("%d shards: used %v, want %v", shards, fresh.UsedBytes(), p.UsedBytes())
		}
	}

	// A corrupt snapshot must be rejected without touching the pool.
	fresh := newTestPool(t, 2, nil)
	bad := core.Snapshot{ResidentIDs: []media.ClipID{1, 1}}
	if err := fresh.Restore(bad); err == nil {
		t.Fatal("duplicate-id snapshot accepted")
	}
	bad = core.Snapshot{ResidentIDs: []media.ClipID{media.ClipID(p.Repository().N() + 1)}}
	if err := fresh.Restore(bad); err == nil {
		t.Fatal("unknown-clip snapshot accepted")
	}
	if fresh.NumResident() != 0 || fresh.Stats().Requests != 0 {
		t.Fatal("failed restore mutated the pool")
	}
}

// TestReset clears residency and statistics on every shard.
func TestReset(t *testing.T) {
	p := newTestPool(t, 4, nil)
	for _, id := range testTrace(500, 3) {
		if _, err := p.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumResident() == 0 {
		t.Fatal("pool empty before reset")
	}
	p.Reset()
	if p.NumResident() != 0 || p.UsedBytes() != 0 {
		t.Fatal("reset left residents behind")
	}
	if s := p.Stats(); s != (core.Stats{}) {
		t.Fatalf("reset left stats behind: %+v", s)
	}
}

// TestResidentsIterator checks merged ascending iteration and early break.
func TestResidentsIterator(t *testing.T) {
	p := newTestPool(t, 4, nil)
	for _, id := range testTrace(1000, 8) {
		if _, err := p.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	want := p.ResidentIDs()
	var got []media.ClipID
	for c := range p.Residents() {
		got = append(got, c.ID)
	}
	if len(got) != len(want) {
		t.Fatalf("Residents yielded %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, got, want)
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("not strictly ascending at %d: %v", i, got)
		}
	}
	n := 0
	for range p.Residents() {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("early break yielded %d, want 1", n)
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	repo := media.PaperRepository()
	if _, err := New(Config{Policy: "greedydual", Capacity: media.MB}); err == nil {
		t.Fatal("nil repo accepted")
	}
	if _, err := New(Config{Policy: "greedydual", Repo: repo, Capacity: 3, Shards: 8}); err == nil {
		t.Fatal("capacity smaller than shard count accepted")
	}
	if _, err := New(Config{Policy: "no-such-policy", Repo: repo, Capacity: media.MB, Shards: 2}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestFlightSequentialNotShared ensures results are shared only within an
// overlapping burst: a fetch that has settled is not a cache.
func TestFlightSequentialNotShared(t *testing.T) {
	var g flightGroup
	g.init()
	calls := 0
	for i := 0; i < 3; i++ {
		if err := g.do(flightKey{id: 1, seg: wholeClip}, func() error { calls++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("sequential do ran fn %d times, want 3", calls)
	}
	if g.coalesced.Load() != 0 {
		t.Fatalf("sequential do coalesced %d times", g.coalesced.Load())
	}
}

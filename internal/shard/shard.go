// Package shard provides a hash-partitioned pool of core.Cache shards for
// concurrent front-ends. The single-threaded engine in internal/core models
// one device and stays lock-free by design; a server that fronts many
// concurrent clients wraps N independent engines — each with its own
// replacement-policy instance, its own mutex and its own slice of the total
// capacity — and routes every request to the shard that owns its clip ID.
//
// Requests for clips on different shards proceed in parallel. Concurrent
// misses for the same clip are coalesced: one goroutine performs the fetch
// through the pool's core.WithFetch seam (so a fault injector is consulted
// once per logical fetch) while the rest wait and share its result. A
// failed shared fetch degrades every coalesced request — each counts one
// Stats.FetchFailed, mirroring what N independent failed fetches would have
// reported, while the flaky link was exercised only once.
//
// A pool with exactly one shard is byte-for-byte equivalent to a single
// core.Cache built from the same seed and policy spec: the shard uses the
// master seed directly, the whole capacity, and — when no fetch hook is
// configured — services requests entirely under its lock. With more than
// one shard the partitioning is still deterministic (per-shard seeds derive
// from randutil.Source.Split), but decisions diverge from the single-cache
// run: each shard sees only its own slice of the reference stream and of
// the capacity, so victim choices and per-shard MissTooLarge thresholds
// differ. See DESIGN.md §13 for the full caveat list.
package shard

import (
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/registry"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// Config describes a pool. Policy, Repo and Capacity are required; the
// policy spec is resolved through the policy registry, so the caller must
// link the implementations it needs (cmd binaries and the sim package link
// every built-in via mediacache/internal/policy/all).
type Config struct {
	// Policy is the registry spec every shard runs, e.g. "greedydual" or
	// "dynsimple:2". Each shard gets its own policy instance.
	Policy string
	// Repo is the clip repository all shards front.
	Repo *media.Repository
	// PMF is the true access-probability vector for off-line policies; nil
	// for on-line ones.
	PMF []float64
	// Capacity is the total cache size S_T, divided across shards (the
	// remainder of Capacity/Shards goes to the lowest-index shards).
	Capacity media.Bytes
	// Seed is the master determinism seed. One shard uses it directly;
	// several shards derive per-shard seeds via Split.
	Seed uint64
	// Shards is the number of partitions; 0 or negative means 1.
	Shards int
	// Fetch, when non-nil, models retrieving missed clips from the remote
	// repository. It is invoked outside any shard lock and concurrent
	// misses for the same clip share one invocation, so it must be safe
	// for concurrent use. Nil means every fetch succeeds instantly and
	// requests run entirely under their shard's lock.
	Fetch core.FetchFunc
	// SegmentSize, when positive, builds every shard with segment-granular
	// residency (core.WithSegments): clips divide into fixed-size segments,
	// RequestRange serves byte ranges, and misses fetch only the missing
	// segments with per-segment coalescing keyed on (clip, segment).
	SegmentSize media.Bytes
	// PrefixSegments, when positive, pins the first N segments of every
	// clip (core.WithPrefixAdmission). Requires SegmentSize.
	PrefixSegments int
	// SegmentFetch, when non-nil, models retrieving one missing segment.
	// Requires SegmentSize. When nil on a segmented pool, Fetch (if set) is
	// consulted once per missing segment — each segment is an independent
	// network transfer, so a flaky link degrades segments independently.
	SegmentFetch core.SegmentFetchFunc
	// TTL, when positive, builds every shard with per-clip expiry
	// (core.WithTTL): a clip materialized at shard-tick t expires at t+TTL.
	// Deadlines are per-shard virtual times, so with several shards a clip's
	// wall lifetime depends on its shard's request rate — the same caveat
	// family as per-shard victim divergence (DESIGN.md §13).
	TTL vtime.Duration
	// ShardOptions, when non-nil, supplies extra engine options per shard
	// (observers, admission hooks). The pool appends its own fetch wiring.
	ShardOptions func(shard int) []core.Option
}

// poolShard is one partition: an engine, its lock, and the slots where
// coalesced fetch results are handed to the engine's fetch hooks.
type poolShard struct {
	mu    sync.Mutex
	cache *core.Cache
	// pre carries the outcome of an already-performed coalesced fetch into
	// the engine's fetch hook during the next Request call. Guarded by mu
	// and cleared before the lock is released.
	pre preFetch
	// preSegs carries per-segment coalesced fetch results into the engine's
	// segment fetch hook during the next RequestRange call. Guarded by mu
	// and cleared before the lock is released.
	preSegs preSegFetch
	// missBuf is the shard's reusable probe buffer for missing-segment
	// scans under mu.
	missBuf []int32

	// mirror is the engine's published residency view. On unsegmented
	// pools the read-mostly hit path consults it without taking mu; the
	// engine keeps it in sync under mu via core.WithResidencyMirror.
	mirror core.ResidencyMirror
	// touchMu guards the pending-touch buffers. It is never held while
	// acquiring mu (drains swap the buffer out first), so the hot append
	// path contends only on this short critical section.
	touchMu sync.Mutex
	// touches holds fast-path hits whose policy bookkeeping has not yet
	// been replayed into the engine; drained under one mu acquisition.
	touches []media.ClipID
	// touchSpare is the standby buffer swapped in during a drain so the
	// steady state recycles two allocations.
	touchSpare []media.ClipID
	// pending counts touches recorded but not yet replayed into the engine.
	// Incremented inside the touchMu critical section (ordered before the
	// swap-out that leads to the matching decrement, so it never goes
	// negative) and decremented after a batch replays. The TTL fast path
	// reads it to bound how far the engine clock can be ahead of the
	// mirror's published tick.
	pending atomic.Int64
}

// preFetch is a pre-resolved fetch result.
type preFetch struct {
	id  media.ClipID
	err error
	ok  bool
}

// preSegFetch is a batch of pre-resolved per-segment fetch results for one
// clip.
type preSegFetch struct {
	id   media.ClipID
	errs map[int32]error
	ok   bool
}

// Pool routes requests across hash-partitioned cache shards. All methods
// are safe for concurrent use.
type Pool struct {
	repo     *media.Repository
	fetch    core.FetchFunc
	segFetch core.SegmentFetchFunc
	segSize  media.Bytes
	shards   []*poolShard
	flight   flightGroup

	// fastPath enables the lock-reduced hit path: pure hits are served off
	// each shard's published residency mirror and only enqueue a policy
	// touch. Set for unsegmented pools; segment-granular pools account
	// residency per byte range and always take the engine path.
	fastPath bool

	// ttl is the per-clip expiry configured via Config.TTL; zero when
	// expiry is off, in which case the fast path skips deadline checks.
	ttl vtime.Duration

	// fetches counts logical fetch executions (flight leaders); coalesced
	// counts requests that joined an already in-flight fetch.
	fetches atomic.Uint64
	// fastHits counts hits served off the published residency view without
	// the shard lock; touchFlushes counts the batched drains that replayed
	// them into the engines.
	fastHits     atomic.Uint64
	touchFlushes atomic.Uint64
	// batches counts RequestBatch calls.
	batches atomic.Uint64
}

// New builds a pool per cfg.
func New(cfg Config) (*Pool, error) {
	if cfg.Repo == nil {
		return nil, fmt.Errorf("shard: repository must not be nil")
	}
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	if cfg.Capacity < media.Bytes(n) {
		return nil, fmt.Errorf("shard: capacity %v cannot be split across %d shards", cfg.Capacity, n)
	}
	if cfg.SegmentFetch != nil && cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("shard: SegmentFetch requires SegmentSize")
	}
	if cfg.PrefixSegments > 0 && cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("shard: PrefixSegments requires SegmentSize")
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("shard: TTL must be non-negative, got %d", cfg.TTL)
	}
	p := &Pool{
		repo:     cfg.Repo,
		fetch:    cfg.Fetch,
		segSize:  cfg.SegmentSize,
		segFetch: cfg.SegmentFetch,
		shards:   make([]*poolShard, n),
		fastPath: cfg.SegmentSize == 0,
		ttl:      cfg.TTL,
	}
	if p.segSize > 0 && p.segFetch == nil && p.fetch != nil {
		// Adapt the whole-clip fetch: each missing segment is its own
		// network transfer through the same (possibly faulty) link.
		p.segFetch = func(clip media.Clip, _ int32, now vtime.Time) error {
			return p.fetch(clip, now)
		}
	}
	p.flight.init()
	var src *randutil.Source
	if n > 1 {
		src = randutil.NewSource(cfg.Seed)
	}
	base := cfg.Capacity / media.Bytes(n)
	rem := cfg.Capacity % media.Bytes(n)
	for i := range p.shards {
		seed := cfg.Seed
		if src != nil {
			// Independent per-shard streams; the 1-shard pool keeps the
			// master seed so it reproduces the unsharded cache exactly.
			seed = src.Split(fmt.Sprintf("shard-%d", i)).Uint64()
		}
		capacity := base
		if media.Bytes(i) < rem {
			capacity++
		}
		pol, err := registry.Build(cfg.Policy, cfg.Repo, cfg.PMF, seed)
		if err != nil {
			return nil, err
		}
		s := &poolShard{}
		opts := []core.Option{}
		if cfg.ShardOptions != nil {
			opts = append(opts, cfg.ShardOptions(i)...)
		}
		if p.fastPath {
			opts = append(opts, core.WithResidencyMirror(&s.mirror))
			s.touches = make([]media.ClipID, 0, touchBatchSize+16)
			s.touchSpare = make([]media.ClipID, 0, touchBatchSize+16)
		}
		if cfg.SegmentSize > 0 {
			opts = append(opts, core.WithSegments(cfg.SegmentSize))
			if cfg.PrefixSegments > 0 {
				opts = append(opts, core.WithPrefixAdmission(cfg.PrefixSegments))
			}
		}
		if cfg.TTL > 0 {
			opts = append(opts, core.WithTTL(cfg.TTL))
		}
		switch {
		case p.segFetch != nil:
			opts = append(opts, core.WithSegmentFetch(p.shardSegFetch(s)))
		case cfg.Fetch != nil:
			opts = append(opts, core.WithFetch(p.shardFetch(s)))
		}
		cache, err := core.New(cfg.Repo, capacity, pol, opts...)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.cache = cache
		p.shards[i] = s
	}
	return p, nil
}

// shardFetch builds the engine fetch hook for one shard: it consumes a
// pre-resolved coalesced result when Request staged one, and falls through
// to the configured fetch otherwise (e.g. a Warm-triggered code path that
// never staged a flight).
func (p *Pool) shardFetch(s *poolShard) core.FetchFunc {
	return func(clip media.Clip, now vtime.Time) error {
		if s.pre.ok && s.pre.id == clip.ID {
			err := s.pre.err
			s.pre = preFetch{}
			return err
		}
		return p.fetch(clip, now)
	}
}

// shardSegFetch builds the engine's per-segment fetch hook for one shard: it
// consumes the pre-resolved coalesced result RequestRange staged for that
// segment, and falls through to a direct fetch for segments the engine asks
// for that were not staged (a segment evicted between the probe and the
// request, or a whole-clip Request on a segmented cache).
func (p *Pool) shardSegFetch(s *poolShard) core.SegmentFetchFunc {
	return func(clip media.Clip, seg int32, now vtime.Time) error {
		if s.preSegs.ok && s.preSegs.id == clip.ID {
			if err, staged := s.preSegs.errs[seg]; staged {
				delete(s.preSegs.errs, seg)
				return err
			}
		}
		return p.segFetch(clip, seg, now)
	}
}

// fastHitOK reports whether the lock-free hit path may serve clip id from
// shard s's published residency view. Without TTL, published residency is
// enough. With TTL the touch this hit enqueues will replay at some future
// engine tick, which must not exceed the clip's deadline; the replay tick
// is estimated as the mirror's published clock plus every touch already
// pending plus the `ahead` touches this caller enqueues first plus one.
// Under serial driving the estimate is exact, so a 1-shard pool with TTL
// stays byte-identical to the bare engine. Under concurrent driving it can
// be off in either direction by in-flight touches — an overestimate falls
// through to the engine path (correct, just slower), an underestimate
// serves a hit the replay then counts under ApplyHit's
// hit-unconditionally contract — the same staleness class as the mirror's
// residency answers (DESIGN.md §15).
func (p *Pool) fastHitOK(s *poolShard, id media.ClipID, ahead int64) bool {
	if p.ttl == 0 {
		return s.mirror.Resident(id)
	}
	dl, ok := s.mirror.Deadline(id)
	if !ok {
		return false
	}
	return dl == 0 || s.mirror.Clock()+vtime.Time(s.pending.Load()+ahead+1) <= dl
}

// Invalidate drops clip id from the owning shard — the pool face of
// core.Cache.Invalidate: residency is dropped, bytes are credited, the
// policy and the published mirror are notified, and no request is counted.
// Returns the freed byte count (zero when the clip was not resident).
func (p *Pool) Invalidate(id media.ClipID) media.Bytes {
	s := p.shards[p.ShardFor(id)]
	p.lockDrained(s)
	defer s.mu.Unlock()
	return s.cache.Invalidate(id)
}

// SweepExpired immediately expires every overdue clip on every shard and
// returns the total dropped. A no-op returning zero when TTL is off.
func (p *Pool) SweepExpired() int {
	if p.ttl == 0 {
		return 0
	}
	var sum int
	p.lockAllDrained()
	for _, s := range p.shards {
		sum += s.cache.SweepExpired()
	}
	p.unlockAll()
	return sum
}

// TTL returns the per-clip expiry configured at construction, zero when
// expiry is off.
func (p *Pool) TTL() vtime.Duration { return p.ttl }

// DeadlineOf returns the virtual time (on the owning shard's clock) at
// which resident clip id expires, or zero when TTL is off or the clip is
// not resident.
func (p *Pool) DeadlineOf(id media.ClipID) vtime.Time {
	if p.ttl == 0 {
		return 0
	}
	s := p.shards[p.ShardFor(id)]
	p.lockDrained(s)
	defer s.mu.Unlock()
	return s.cache.DeadlineOf(id)
}

// splitmix64 is the finalizer of the SplitMix64 generator, used as the
// routing hash: clip IDs are dense small integers, and a plain modulo would
// stripe neighbouring IDs across shards in lockstep with any sequential
// access pattern.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardFor returns the index of the shard owning clip id. The mapping is a
// pure function of id and the shard count, so it is stable across runs and
// restarts.
func (p *Pool) ShardFor(id media.ClipID) int {
	return int(splitmix64(uint64(id)) % uint64(len(p.shards)))
}

// NumShards returns the number of partitions.
func (p *Pool) NumShards() int { return len(p.shards) }

// Repository returns the backing repository shared by every shard.
func (p *Pool) Repository() *media.Repository { return p.repo }

// PolicyName returns the display name of the replacement policy (every
// shard runs its own instance of the same technique).
func (p *Pool) PolicyName() string {
	s := p.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Policy().Name()
}

// Fetches returns how many logical fetches the pool has executed (each
// coalesced group counts once).
func (p *Pool) Fetches() uint64 { return p.fetches.Load() }

// Coalesced returns how many requests joined an already in-flight fetch
// instead of starting their own.
func (p *Pool) Coalesced() uint64 { return p.flight.coalesced.Load() }

// Request services a reference to clip id on the owning shard and returns
// the outcome, exactly as core.Cache.Request does on an unsharded cache.
//
// Without a fetch hook the request runs entirely under the shard lock.
// With one, a miss releases the lock for the duration of the (possibly
// shared) fetch so slow fetches never serialize the shard, then re-locks
// and hands the result to the engine. A clip that became resident while
// the fetch was in flight is simply a hit — the fetched bytes are the same
// bytes a waiter would have received.
func (p *Pool) Request(id media.ClipID) (core.Outcome, error) {
	s := p.shards[p.ShardFor(id)]
	// Read-mostly fast path: a clip in the shard's published residency view
	// is a hit. The bytes stream without the engine lock; only the policy
	// touch is enqueued, to be replayed in a batch under one acquisition.
	if p.fastPath && p.fastHitOK(s, id, 0) {
		p.recordTouch(s, id)
		return core.Hit, nil
	}
	if p.fetch == nil {
		p.lockDrained(s)
		defer s.mu.Unlock()
		return s.cache.Request(id)
	}
	p.lockDrained(s)
	clip, known := p.repo.Lookup(id)
	// Requests that cannot reach the engine's fetch path — hits, unknown
	// clips, and clips the shard could never admit — run under the lock
	// without staging a flight.
	if !known || s.cache.Resident(id) || clip.Size > s.cache.Capacity() {
		out, err := s.cache.Request(id)
		s.mu.Unlock()
		return out, err
	}
	// The engine stamps the fetch with the request's tick; the best
	// estimate before re-locking is the next tick of this shard's clock.
	now := s.cache.Now() + 1
	s.mu.Unlock()

	ferr := p.flight.do(flightKey{id: id, seg: wholeClip}, func() error {
		p.fetches.Add(1)
		return p.fetch(clip, now)
	})

	p.lockDrained(s)
	s.pre = preFetch{id: id, err: ferr, ok: true}
	out, err := s.cache.Request(id)
	s.pre = preFetch{}
	s.mu.Unlock()
	return out, err
}

// RequestRange services a reference to bytes [start, start+length) of clip
// id on the owning shard, exactly as core.Cache.RequestRange does on an
// unsharded cache. A negative length means "to the end of the clip".
//
// On a segmented pool with a fetch hook, the missing segments of the range
// are probed under the shard lock, fetched outside it — one singleflight per
// (clip, segment), so concurrent requests for overlapping ranges share the
// transfer of every segment they both miss while disjoint ranges proceed in
// parallel — and the results are handed to the engine under the lock.
func (p *Pool) RequestRange(id media.ClipID, start, length media.Bytes) (core.RangeResult, error) {
	s := p.shards[p.ShardFor(id)]
	if p.segFetch == nil || p.segSize == 0 {
		// No per-segment fetching: the engine resolves the range entirely
		// under the lock (unsegmented pools delegate to Request inside).
		p.lockDrained(s)
		defer s.mu.Unlock()
		return s.cache.RequestRange(id, start, length)
	}
	s.mu.Lock()
	clip, known := p.repo.Lookup(id)
	if !known || start < 0 || start >= clip.Size || clip.Size > s.cache.Capacity() {
		// Errors and too-large clips never reach the engine's fetch path.
		res, err := s.cache.RequestRange(id, start, length)
		s.mu.Unlock()
		return res, err
	}
	if length < 0 || start+length > clip.Size {
		length = clip.Size - start
	}
	s0 := int32(start / p.segSize)
	s1 := int32((start + length - 1) / p.segSize)
	s.missBuf = s.cache.AppendMissingSegments(s.missBuf[:0], id, s0, s1)
	if len(s.missBuf) == 0 {
		// Fully resident range: a pure hit under the lock.
		res, err := s.cache.RequestRange(id, start, length)
		s.mu.Unlock()
		return res, err
	}
	missing := append([]int32(nil), s.missBuf...)
	// The engine stamps the fetches with the request's tick; the best
	// estimate before re-locking is the next tick of this shard's clock.
	now := s.cache.Now() + 1
	s.mu.Unlock()

	errs := make(map[int32]error, len(missing))
	if len(missing) == 1 {
		seg := missing[0]
		errs[seg] = p.flight.do(flightKey{id: id, seg: seg}, func() error {
			p.fetches.Add(1)
			return p.segFetch(clip, seg, now)
		})
	} else {
		// Fetch the range's missing segments concurrently; each joins or
		// leads its own flight.
		var (
			wg sync.WaitGroup
			mu sync.Mutex
		)
		wg.Add(len(missing))
		for _, seg := range missing {
			go func(seg int32) {
				defer wg.Done()
				err := p.flight.do(flightKey{id: id, seg: seg}, func() error {
					p.fetches.Add(1)
					return p.segFetch(clip, seg, now)
				})
				mu.Lock()
				errs[seg] = err
				mu.Unlock()
			}(seg)
		}
		wg.Wait()
	}

	s.mu.Lock()
	s.preSegs = preSegFetch{id: id, errs: errs, ok: true}
	res, err := s.cache.RequestRange(id, start, length)
	s.preSegs = preSegFetch{}
	s.mu.Unlock()
	return res, err
}

// Stats returns the pool-wide statistics: every shard's counters summed
// under a consistent snapshot (all shard locks are held while reading, in
// index order; Request never holds more than one shard lock, so no
// ordering deadlock is possible).
func (p *Pool) Stats() core.Stats {
	var sum core.Stats
	p.lockAllDrained()
	for _, s := range p.shards {
		sum = sum.Add(s.cache.Stats())
	}
	p.unlockAll()
	return sum
}

// ShardStat is one shard's view in a consistent pool snapshot.
type ShardStat struct {
	// Index is the shard's position in the pool.
	Index int
	// Stats are the shard engine's accumulated counters.
	Stats core.Stats
	// NumResident is the number of clips cached on this shard.
	NumResident int
	// ResidentSegments is the number of resident segments on this shard;
	// zero on unsegmented pools.
	ResidentSegments int
	// UsedBytes and Capacity describe the shard's slice of the cache.
	UsedBytes media.Bytes
	Capacity  media.Bytes
}

// statOf reads one shard's ShardStat; the caller holds the shard lock.
func statOf(i int, s *poolShard) ShardStat {
	return ShardStat{
		Index:            i,
		Stats:            s.cache.Stats(),
		NumResident:      s.cache.NumResident(),
		ResidentSegments: s.cache.ResidentSegments(),
		UsedBytes:        s.cache.UsedBytes(),
		Capacity:         s.cache.Capacity(),
	}
}

// ShardStat returns shard i's statistics and occupancy, locking only that
// shard — the cheap path for per-shard metric scrapes.
func (p *Pool) ShardStat(i int) ShardStat {
	s := p.shards[i]
	p.lockDrained(s)
	defer s.mu.Unlock()
	return statOf(i, s)
}

// ShardStats returns every shard's statistics and occupancy under one
// consistent snapshot, in shard-index order.
func (p *Pool) ShardStats() []ShardStat {
	out := make([]ShardStat, len(p.shards))
	p.lockAllDrained()
	for i, s := range p.shards {
		out[i] = statOf(i, s)
	}
	p.unlockAll()
	return out
}

// SegmentSize returns the pool's segment granularity, zero when unsegmented.
func (p *Pool) SegmentSize() media.Bytes { return p.segSize }

// PrefixSegments returns the pinned-prefix segment count (zero if unset).
func (p *Pool) PrefixSegments() int {
	return p.shards[0].cache.PrefixSegments() // immutable after New; no lock needed
}

// ResidentSegments returns the number of resident segments across all
// shards; zero on unsegmented pools.
func (p *Pool) ResidentSegments() int {
	var sum int
	p.lockAllDrained()
	for _, s := range p.shards {
		sum += s.cache.ResidentSegments()
	}
	p.unlockAll()
	return sum
}

// ResidentBytes returns the cached byte total of clip id (the full clip size
// when fully resident, 0 when absent), locking only the owning shard.
func (p *Pool) ResidentBytes(id media.ClipID) media.Bytes {
	s := p.shards[p.ShardFor(id)]
	p.lockDrained(s)
	defer s.mu.Unlock()
	return s.cache.ResidentBytes(id)
}

// ResidentExtentsOf returns clip id's resident bytes as maximal contiguous
// extents in ascending offset order, locking only the owning shard.
func (p *Pool) ResidentExtentsOf(id media.ClipID) []core.Extent {
	s := p.shards[p.ShardFor(id)]
	p.lockDrained(s)
	defer s.mu.Unlock()
	return s.cache.ResidentExtentsOf(id)
}

// lockAll acquires every shard lock in index order.
func (p *Pool) lockAll() {
	for _, s := range p.shards {
		s.mu.Lock()
	}
}

// unlockAll releases every shard lock.
func (p *Pool) unlockAll() {
	for _, s := range p.shards {
		s.mu.Unlock()
	}
}

// Capacity returns the total capacity S_T across all shards.
func (p *Pool) Capacity() media.Bytes {
	var sum media.Bytes
	for _, s := range p.shards {
		sum += s.cache.Capacity() // immutable after New; no lock needed
	}
	return sum
}

// UsedBytes returns the bytes occupied across all shards.
func (p *Pool) UsedBytes() media.Bytes {
	var sum media.Bytes
	p.lockAllDrained()
	for _, s := range p.shards {
		sum += s.cache.UsedBytes()
	}
	p.unlockAll()
	return sum
}

// FreeBytes returns the unused capacity across all shards.
func (p *Pool) FreeBytes() media.Bytes {
	var sum media.Bytes
	p.lockAllDrained()
	for _, s := range p.shards {
		sum += s.cache.FreeBytes()
	}
	p.unlockAll()
	return sum
}

// NumResident returns the number of clips cached across all shards.
func (p *Pool) NumResident() int {
	var sum int
	p.lockAllDrained()
	for _, s := range p.shards {
		sum += s.cache.NumResident()
	}
	p.unlockAll()
	return sum
}

// residentsSnapshot copies every shard's resident clips (each ascending by
// ID) under a consistent all-shards lock.
func (p *Pool) residentsSnapshot() [][]media.Clip {
	per := make([][]media.Clip, len(p.shards))
	p.lockAllDrained()
	for i, s := range p.shards {
		clips := make([]media.Clip, 0, s.cache.NumResident())
		for c := range s.cache.Residents() {
			clips = append(clips, c)
		}
		per[i] = clips
	}
	p.unlockAll()
	return per
}

// mergeAscending merges per-shard ascending-ID clip slices into one
// ascending sequence.
func mergeAscending(per [][]media.Clip, yield func(media.Clip) bool) {
	heads := make([]int, len(per))
	for {
		best := -1
		for i, clips := range per {
			if heads[i] >= len(clips) {
				continue
			}
			if best < 0 || clips[heads[i]].ID < per[best][heads[best]].ID {
				best = i
			}
		}
		if best < 0 {
			return
		}
		if !yield(per[best][heads[best]]) {
			return
		}
		heads[best]++
	}
}

// Residents returns an iterator over all cached clips in ascending ID
// order. The iteration walks a consistent snapshot taken when the sequence
// is ranged over; concurrent mutations during iteration are not reflected.
func (p *Pool) Residents() iter.Seq[media.Clip] {
	return func(yield func(media.Clip) bool) {
		mergeAscending(p.residentsSnapshot(), yield)
	}
}

// ClipResidency is one resident clip's cached-byte summary in a consistent
// pool listing. On unsegmented pools Bytes is the full clip size and Extents
// is one whole-clip run.
type ClipResidency struct {
	Clip    media.Clip
	Bytes   media.Bytes
	Extents []core.Extent
}

// Residency returns every resident clip's cached-byte summary in ascending
// ID order plus the total used bytes, all under one consistent all-shards
// snapshot. Partially resident clips (segmented pools) are included with
// their actual resident byte totals.
func (p *Pool) Residency() ([]ClipResidency, media.Bytes) {
	var (
		all  []ClipResidency
		used media.Bytes
	)
	p.lockAllDrained()
	for _, s := range p.shards {
		used += s.cache.UsedBytes()
		for c := range s.cache.Residents() {
			all = append(all, ClipResidency{
				Clip:    c,
				Bytes:   s.cache.ResidentBytes(c.ID),
				Extents: s.cache.ResidentExtentsOf(c.ID),
			})
		}
	}
	p.unlockAll()
	sort.Slice(all, func(i, j int) bool { return all[i].Clip.ID < all[j].Clip.ID })
	return all, used
}

// ResidentIDs returns all cached clip ids in ascending order, from one
// consistent snapshot.
func (p *Pool) ResidentIDs() []media.ClipID {
	per := p.residentsSnapshot()
	n := 0
	for _, clips := range per {
		n += len(clips)
	}
	ids := make([]media.ClipID, 0, n)
	mergeAscending(per, func(c media.Clip) bool {
		ids = append(ids, c.ID)
		return true
	})
	return ids
}

// Reset clears every shard's residency, statistics and policy state under
// one consistent lock.
func (p *Pool) Reset() {
	// Pending touches belong to the pre-reset epoch: replay them into the
	// old state first so they cannot leak into the fresh counters.
	p.lockAllDrained()
	for _, s := range p.shards {
		s.cache.Reset()
	}
	p.unlockAll()
}

// Snapshot captures the pool's persistent state as one core.Snapshot: the
// merged resident set (fully resident clips in ResidentIDs, partially
// resident ones in Partial), the summed statistics, and the summed
// per-shard clocks (the total number of requests processed). A 1-shard pool
// produces exactly the snapshot its underlying cache would.
func (p *Pool) Snapshot() core.Snapshot {
	subs := make([]core.Snapshot, len(p.shards))
	p.lockAllDrained()
	for i, s := range p.shards {
		subs[i] = s.cache.Snapshot()
	}
	p.unlockAll()
	var (
		stats   core.Stats
		clock   vtime.Time
		ids     []media.ClipID
		partial []core.ClipSegments
		ttls    []core.ClipTTL
	)
	for _, sub := range subs {
		stats = stats.Add(sub.Stats)
		clock += sub.Clock
		ids = append(ids, sub.ResidentIDs...)
		partial = append(partial, sub.Partial...)
		ttls = append(ttls, sub.TTLRemaining...)
	}
	// Each shard's lists are ascending but interleave across shards; restore
	// the global ascending order (clip ids are unique across shards). The
	// TTL spans are clock-relative per shard, so merging them needs no
	// rebasing even though the merged clock is the per-shard sum.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sort.Slice(partial, func(i, j int) bool { return partial[i].ID < partial[j].ID })
	sort.Slice(ttls, func(i, j int) bool { return ttls[i].ID < ttls[j].ID })
	return core.Snapshot{
		ResidentIDs:  ids,
		Partial:      partial,
		SegmentSize:  p.segSize,
		Clock:        clock,
		Stats:        stats,
		TTLRemaining: ttls,
	}
}

// Restore replaces the pool's state with the snapshot's, partitioning the
// resident set by the routing hash. The snapshot may come from a pool with
// a different shard count (or from an unsharded cache); the whole snapshot
// is validated against the pool's partitioning before any shard is
// touched, so a failed restore leaves the pool unchanged. The aggregated
// statistics are assigned to shard 0 and every shard's clock starts at the
// snapshot clock.
func (p *Pool) Restore(snap core.Snapshot) error {
	if snap.Clock < 0 {
		return fmt.Errorf("shard: snapshot clock %d is negative", snap.Clock)
	}
	// Granularity compatibility mirrors core.Cache.Restore: an exact
	// segment-size match, or a pre-segment whole-clip snapshot adopted into
	// a segmented pool.
	switch {
	case snap.SegmentSize == p.segSize:
	case snap.SegmentSize == 0 && len(snap.Partial) == 0 && p.segSize > 0:
	default:
		return fmt.Errorf("shard: snapshot segment size %v does not match pool segment size %v",
			snap.SegmentSize, p.segSize)
	}
	parts := make([][]media.ClipID, len(p.shards))
	partsPartial := make([][]core.ClipSegments, len(p.shards))
	sizes := make([]media.Bytes, len(p.shards))
	seen := make(map[media.ClipID]struct{}, len(snap.ResidentIDs)+len(snap.Partial))
	for _, id := range snap.ResidentIDs {
		clip, ok := p.repo.Lookup(id)
		if !ok {
			return fmt.Errorf("shard: snapshot references unknown clip %d", id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("shard: snapshot lists clip %d twice", id)
		}
		seen[id] = struct{}{}
		i := p.ShardFor(id)
		parts[i] = append(parts[i], id)
		sizes[i] += clip.Size
	}
	for _, cs := range snap.Partial {
		clip, ok := p.repo.Lookup(cs.ID)
		if !ok {
			return fmt.Errorf("shard: snapshot references unknown clip %d", cs.ID)
		}
		if _, dup := seen[cs.ID]; dup {
			return fmt.Errorf("shard: snapshot lists clip %d twice", cs.ID)
		}
		seen[cs.ID] = struct{}{}
		if len(cs.Segments) == 0 {
			return fmt.Errorf("shard: snapshot partial clip %d has no segments", cs.ID)
		}
		nSegs := int32((clip.Size + p.segSize - 1) / p.segSize)
		i := p.ShardFor(cs.ID)
		prev := int32(-1)
		for _, seg := range cs.Segments {
			if seg < 0 || seg >= nSegs {
				return fmt.Errorf("shard: snapshot partial clip %d lists segment %d outside [0, %d)", cs.ID, seg, nSegs)
			}
			if seg <= prev {
				return fmt.Errorf("shard: snapshot partial clip %d segments are not strictly ascending", cs.ID)
			}
			prev = seg
			if rest := clip.Size - media.Bytes(seg)*p.segSize; rest < p.segSize {
				sizes[i] += rest
			} else {
				sizes[i] += p.segSize
			}
		}
		partsPartial[i] = append(partsPartial[i], cs)
	}
	for i, s := range p.shards {
		if sizes[i] > s.cache.Capacity() {
			return fmt.Errorf("shard: snapshot places %v on shard %d, exceeding its capacity %v (taken with a different shard count?)",
				sizes[i], i, s.cache.Capacity())
		}
	}
	partsTTL := make([][]core.ClipTTL, len(p.shards))
	ttlSeen := make(map[media.ClipID]struct{}, len(snap.TTLRemaining))
	for _, ct := range snap.TTLRemaining {
		if _, resident := seen[ct.ID]; !resident {
			return fmt.Errorf("shard: snapshot carries a TTL for non-resident clip %d", ct.ID)
		}
		if _, dup := ttlSeen[ct.ID]; dup {
			return fmt.Errorf("shard: snapshot lists clip %d's TTL twice", ct.ID)
		}
		ttlSeen[ct.ID] = struct{}{}
		i := p.ShardFor(ct.ID)
		partsTTL[i] = append(partsTTL[i], ct)
	}
	p.lockAllDrained()
	defer p.unlockAll()
	for i, s := range p.shards {
		sub := core.Snapshot{
			ResidentIDs:  parts[i],
			Partial:      partsPartial[i],
			SegmentSize:  snap.SegmentSize,
			Clock:        snap.Clock,
			TTLRemaining: partsTTL[i],
		}
		if i == 0 {
			sub.Stats = snap.Stats
		}
		if err := s.cache.Restore(sub); err != nil {
			// Unreachable after the validation above; surface it anyway.
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

package shard

// batch.go is the pool half of the batched request API: callers submit an
// ordered list of clip references (optionally ranged) and get per-item
// outcomes back. Items are grouped by owning shard and the groups proceed
// concurrently; within a shard the engine work for the whole group runs
// under a bounded number of lock acquisitions instead of one per item —
// zero when every item is a published-view hit, one when nothing needs
// fetching, two when misses were fetched outside the lock.

import (
	"sync"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

// BatchItem is one reference in a RequestBatch call.
type BatchItem struct {
	// ID is the referenced clip.
	ID media.ClipID
	// Ranged selects the partial-content form: bytes [Start, Start+Length)
	// are referenced, with negative Length meaning "to the end of the
	// clip". When false the whole clip is referenced and Start/Length are
	// ignored.
	Ranged bool
	Start  media.Bytes
	Length media.Bytes
}

// BatchResult is the outcome of one BatchItem, in the same position.
type BatchResult struct {
	// Outcome classifies the servicing. For ranged items it is
	// Range.Outcome, duplicated here so callers can switch uniformly.
	Outcome core.Outcome
	// Range carries the byte-level accounting for ranged items; zero for
	// whole-clip items.
	Range core.RangeResult
	// Err is the per-item engine error, if any (unknown clip, policy
	// misbehaviour). Other items in the batch are unaffected.
	Err error
}

// RequestBatch services an ordered list of references and returns one
// result per item, positionally. Items are routed to their owning shards
// and shard groups proceed concurrently; items within a shard group are
// serviced in submission order. Outcomes and statistics are exactly those
// of issuing the items individually — the batch form only amortizes lock
// acquisitions and, like Request, coalesces concurrent fetches of the same
// clip through the flight group.
func (p *Pool) RequestBatch(items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	p.batches.Add(1)
	if len(p.shards) == 1 {
		p.batchShard(p.shards[0], items, nil, out)
		return out
	}
	groups := make([][]int, len(p.shards))
	for i := range items {
		si := p.ShardFor(items[i].ID)
		groups[si] = append(groups[si], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *poolShard, idxs []int) {
			defer wg.Done()
			p.batchShard(s, items, idxs, out)
		}(p.shards[si], idxs)
	}
	wg.Wait()
	return out
}

// batchShard services one shard's slice of a batch. idxs lists the item
// indices owned by this shard in submission order; nil means all of them
// (the single-shard pool).
func (p *Pool) batchShard(s *poolShard, items []BatchItem, idxs []int, out []BatchResult) {
	n := len(idxs)
	if idxs == nil {
		n = len(items)
	}
	at := func(k int) int {
		if idxs == nil {
			return k
		}
		return idxs[k]
	}

	// Pure-hit groups: every item whole-clip and in the published view.
	// Touches enqueue under one buffer-lock acquisition; the engine lock is
	// not taken at all.
	if p.fastPath {
		allHit := true
		for k := 0; k < n; k++ {
			it := &items[at(k)]
			// Item k's touch replays k ticks after the already-pending ones,
			// so its deadline is checked that many ticks ahead.
			if it.Ranged || !p.fastHitOK(s, it.ID, int64(k)) {
				allHit = false
				break
			}
		}
		if allHit {
			ids := make([]media.ClipID, n)
			for k := 0; k < n; k++ {
				i := at(k)
				ids[k] = items[i].ID
				out[i] = BatchResult{Outcome: core.Hit}
			}
			p.recordTouchSlice(s, ids)
			return
		}
	}

	// Segment-granular pools fetch per missing segment with per-item
	// flight staging; the batch form keeps submission order per shard and
	// cross-shard concurrency, but does not amortize the lock further.
	if p.segFetch != nil && p.segSize > 0 {
		for k := 0; k < n; k++ {
			i := at(k)
			it := &items[i]
			if it.Ranged {
				res, err := p.RequestRange(it.ID, it.Start, it.Length)
				out[i] = BatchResult{Outcome: res.Outcome, Range: res, Err: err}
			} else {
				o, err := p.Request(it.ID)
				out[i] = BatchResult{Outcome: o, Err: err}
			}
		}
		return
	}

	// Whole-clip engines. Probe under the lock for items that will reach
	// the engine's fetch path, fetch each distinct missing clip outside it
	// (sharing flights with concurrent requests), then apply every item in
	// order under one acquisition with the results staged.
	var missing []media.Clip
	if p.fetch != nil {
		p.lockDrained(s)
		var seen map[media.ClipID]struct{}
		for k := 0; k < n; k++ {
			it := &items[at(k)]
			clip, known := p.repo.Lookup(it.ID)
			if !known || s.cache.Resident(it.ID) || clip.Size > s.cache.Capacity() {
				continue
			}
			if seen == nil {
				seen = make(map[media.ClipID]struct{}, n)
			}
			if _, dup := seen[clip.ID]; dup {
				continue
			}
			seen[clip.ID] = struct{}{}
			missing = append(missing, clip)
		}
		if len(missing) == 0 {
			// Nothing to fetch: service the whole group under the lock we
			// already hold.
			p.applyBatchLocked(s, items, idxs, out, nil)
			s.mu.Unlock()
			return
		}
		// The engine stamps fetches with the servicing request's tick; the
		// best estimate before re-locking is the next tick of this shard's
		// clock, exactly as in Request.
		now := s.cache.Now() + 1
		s.mu.Unlock()

		errs := make(map[media.ClipID]error, len(missing))
		if len(missing) == 1 {
			clip := missing[0]
			errs[clip.ID] = p.flight.do(flightKey{id: clip.ID, seg: wholeClip}, func() error {
				p.fetches.Add(1)
				return p.fetch(clip, now)
			})
		} else {
			var (
				wg sync.WaitGroup
				mu sync.Mutex
			)
			wg.Add(len(missing))
			for _, clip := range missing {
				go func(clip media.Clip) {
					defer wg.Done()
					err := p.flight.do(flightKey{id: clip.ID, seg: wholeClip}, func() error {
						p.fetches.Add(1)
						return p.fetch(clip, now)
					})
					mu.Lock()
					errs[clip.ID] = err
					mu.Unlock()
				}(clip)
			}
			wg.Wait()
		}

		p.lockDrained(s)
		p.applyBatchLocked(s, items, idxs, out, errs)
		s.mu.Unlock()
		return
	}

	p.lockDrained(s)
	p.applyBatchLocked(s, items, idxs, out, nil)
	s.mu.Unlock()
}

// applyBatchLocked services a shard group in submission order under the
// held engine lock, staging any pre-resolved fetch results item by item. A
// miss whose clip was not pre-fetched (evicted or newly referenced between
// probe and apply) falls through shardFetch to the pool's fetch hook, which
// runs under the lock — rare enough not to matter, and identical to what a
// Warm-path fetch does today.
func (p *Pool) applyBatchLocked(s *poolShard, items []BatchItem, idxs []int, out []BatchResult, errs map[media.ClipID]error) {
	n := len(idxs)
	if idxs == nil {
		n = len(items)
	}
	for k := 0; k < n; k++ {
		i := k
		if idxs != nil {
			i = idxs[k]
		}
		it := &items[i]
		if err, ok := errs[it.ID]; ok {
			s.pre = preFetch{id: it.ID, err: err, ok: true}
		}
		if it.Ranged {
			res, err := s.cache.RequestRange(it.ID, it.Start, it.Length)
			out[i] = BatchResult{Outcome: res.Outcome, Range: res, Err: err}
		} else {
			o, err := s.cache.Request(it.ID)
			out[i] = BatchResult{Outcome: o, Err: err}
		}
		s.pre = preFetch{}
	}
}

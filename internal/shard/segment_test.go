package shard

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/registry"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

const testSegSize = 256 * media.MB

// segFaultByKey builds a deterministic, call-order-independent segment fetch
// hook: the fetch of segment seg of clip id fails iff (id*31+seg) % mod == 0.
// Order independence matters because a pool fetches a range's missing
// segments concurrently.
func segFaultByKey(mod int64) core.SegmentFetchFunc {
	return func(clip media.Clip, seg int32, _ vtime.Time) error {
		if (int64(clip.ID)*31+int64(seg))%mod == 0 {
			return errors.New("injected segment fetch failure")
		}
		return nil
	}
}

// rangeTrace generates a deterministic trace of prefix-biased range
// requests: mostly ranges starting at byte 0 (the streaming-startup pattern
// prefix caching targets), occasionally interior ranges.
func rangeTrace(n int, seed uint64) []struct {
	id            media.ClipID
	start, length media.Bytes
} {
	repo := media.PaperRepository()
	src := randutil.NewSource(seed)
	out := make([]struct {
		id            media.ClipID
		start, length media.Bytes
	}, n)
	for i := range out {
		id := media.ClipID(src.Intn(repo.N()) + 1)
		clip := repo.Clip(id)
		var start media.Bytes
		if src.Intn(4) == 0 { // every 4th request seeks into the clip
			start = media.Bytes(src.Intn(int(clip.Size)))
		}
		length := media.Bytes(src.Intn(int(clip.Size-start))) + 1
		out[i] = struct {
			id            media.ClipID
			start, length media.Bytes
		}{id, start, length}
	}
	return out
}

// TestSegmentedSingleShardEquivalence drives a 1-shard segmented pool and a
// bare segmented cache built from the same seed through the same range trace
// under the same deterministic per-segment fault profile, and requires
// identical outcomes, statistics and snapshot bytes.
func TestSegmentedSingleShardEquivalence(t *testing.T) {
	repo := media.PaperRepository()
	capacity := repo.CacheSizeForRatio(testRatio)
	fault := segFaultByKey(11)

	pool, err := New(Config{
		Policy: "greedydual", Repo: repo, Capacity: capacity,
		Seed: 7, Shards: 1,
		SegmentSize: testSegSize, PrefixSegments: 2, SegmentFetch: fault,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := registry.Build("greedydual", repo, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.New(repo, capacity, pol,
		core.WithSegments(testSegSize), core.WithPrefixAdmission(2),
		core.WithSegmentFetch(fault))
	if err != nil {
		t.Fatal(err)
	}

	for i, r := range rangeTrace(3000, 99) {
		pr, perr := pool.RequestRange(r.id, r.start, r.length)
		cr, cerr := cache.RequestRange(r.id, r.start, r.length)
		if pr != cr || (perr == nil) != (cerr == nil) {
			t.Fatalf("range %d (clip %d [%d,+%d)): pool %+v/%v, cache %+v/%v",
				i, r.id, r.start, r.length, pr, perr, cr, cerr)
		}
	}
	ps, cs := pool.Stats(), cache.Stats()
	if ps != cs {
		t.Fatalf("stats diverged:\npool  %+v\ncache %+v", ps, cs)
	}
	if ps.BytesHit+ps.BytesFetched+ps.BytesFailed != ps.BytesReferenced {
		t.Fatalf("byte identity broken: %+v", ps)
	}
	if ps.PartialHits == 0 || ps.SegmentsEvicted == 0 {
		t.Fatalf("trace too tame to exercise segmentation: %+v", ps)
	}
	var pbuf, cbuf bytes.Buffer
	if err := pool.Snapshot().WriteSnapshot(&pbuf); err != nil {
		t.Fatal(err)
	}
	if err := cache.Snapshot().WriteSnapshot(&cbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pbuf.Bytes(), cbuf.Bytes()) {
		t.Fatal("snapshot bytes diverged between 1-shard pool and bare cache")
	}
}

// TestPerSegmentCoalescing pins the per-(clip, segment) singleflight: G
// concurrent requests for the same cold range execute each segment's fetch
// exactly once while every other requester waits for that leader.
func TestPerSegmentCoalescing(t *testing.T) {
	repo := media.PaperRepository()
	clip := repo.Clip(1) // 3.5 GB: 14 segments of 256 MB
	const G = 8
	reqSegs := int((media.GB + testSegSize - 1) / testSegSize) // first GB: 4 segments

	gate := make(chan struct{})
	var perSeg [32]atomic.Uint64
	fetch := func(_ media.Clip, seg int32, _ vtime.Time) error {
		perSeg[seg].Add(1)
		<-gate
		return nil
	}
	pool, err := New(Config{
		Policy: "greedydual", Repo: repo, Capacity: repo.TotalSize(),
		Seed: 7, Shards: 4, SegmentSize: testSegSize, SegmentFetch: fetch,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(G)
	for g := 0; g < G; g++ {
		go func() {
			defer wg.Done()
			res, err := pool.RequestRange(clip.ID, 0, media.GB)
			if err != nil {
				t.Errorf("RequestRange: %v", err)
				return
			}
			if res.BytesHit+res.BytesFetched != media.GB {
				t.Errorf("delivered %v hit + %v fetched, want %v total",
					res.BytesHit, res.BytesFetched, media.GB)
			}
		}()
	}
	// All G requests miss the same reqSegs segments. Wait until each segment
	// has its flight leader parked on the gate and every other requester has
	// joined (coalesced increments at join time), then release the leaders.
	deadline := time.Now().Add(5 * time.Second)
	wantJoins := uint64((G - 1) * reqSegs)
	for pool.Coalesced() < wantJoins {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced %d after 5s, want %d", pool.Coalesced(), wantJoins)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for seg := 0; seg < reqSegs; seg++ {
		if n := perSeg[seg].Load(); n != 1 {
			t.Errorf("segment %d fetched %d times, want 1", seg, n)
		}
	}
	if got := pool.Fetches(); got != uint64(reqSegs) {
		t.Errorf("logical fetches = %d, want %d", got, reqSegs)
	}
	if got := pool.Coalesced(); got != wantJoins {
		t.Errorf("coalesced = %d, want %d", got, wantJoins)
	}
	if got := pool.ResidentBytes(clip.ID); got != media.GB {
		t.Errorf("resident bytes = %v, want %v", got, media.GB)
	}
}

// TestSegmentedPoolSnapshotRestore round-trips a multi-shard segmented pool
// with partially resident clips through Snapshot/Restore, including across a
// shard-count change, and checks granularity mismatches are rejected before
// any shard is touched.
func TestSegmentedPoolSnapshotRestore(t *testing.T) {
	repo := media.PaperRepository()
	capacity := repo.CacheSizeForRatio(testRatio)
	build := func(shards int, segSize media.Bytes) *Pool {
		cfg := Config{
			Policy: "greedydual", Repo: repo, Capacity: capacity,
			Seed: 7, Shards: shards, SegmentSize: segSize,
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	pool := build(4, testSegSize)
	for _, r := range rangeTrace(2000, 5) {
		if _, err := pool.RequestRange(r.id, r.start, r.length); err != nil {
			t.Fatal(err)
		}
	}
	snap := pool.Snapshot()
	if snap.SegmentSize != testSegSize {
		t.Fatalf("snapshot segment size = %v", snap.SegmentSize)
	}
	if len(snap.Partial) == 0 {
		t.Fatal("trace left no partially resident clips; nothing exercised")
	}

	for _, shards := range []int{4, 2} {
		fresh := build(shards, testSegSize)
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("restore into %d shards: %v", shards, err)
		}
		if fresh.UsedBytes() != pool.UsedBytes() {
			t.Errorf("%d shards: used %v, want %v", shards, fresh.UsedBytes(), pool.UsedBytes())
		}
		if fresh.ResidentSegments() != pool.ResidentSegments() {
			t.Errorf("%d shards: resident segments %d, want %d",
				shards, fresh.ResidentSegments(), pool.ResidentSegments())
		}
		for _, cs := range snap.Partial {
			a, b := fresh.ResidentExtentsOf(cs.ID), pool.ResidentExtentsOf(cs.ID)
			if len(a) != len(b) {
				t.Fatalf("%d shards: clip %d extents %v, want %v", shards, cs.ID, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%d shards: clip %d extents %v, want %v", shards, cs.ID, a, b)
				}
			}
		}
	}

	// Granularity mismatches fail up front.
	if err := build(2, 0).Restore(snap); err == nil {
		t.Error("segmented snapshot restored into unsegmented pool")
	}
	if err := build(2, testSegSize/2).Restore(snap); err == nil {
		t.Error("snapshot restored across a segment-size change")
	}

	// A pre-segment whole-clip snapshot is adopted into a segmented pool.
	legacy := build(2, 0)
	for _, id := range testTrace(500, 3) {
		if _, err := legacy.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	lsnap := legacy.Snapshot()
	adopted := build(2, testSegSize)
	if err := adopted.Restore(lsnap); err != nil {
		t.Fatalf("adopting whole-clip snapshot: %v", err)
	}
	if adopted.UsedBytes() != legacy.UsedBytes() {
		t.Errorf("adopted used %v, want %v", adopted.UsedBytes(), legacy.UsedBytes())
	}
	for _, id := range lsnap.ResidentIDs {
		if got := adopted.ResidentBytes(id); got != repo.Clip(id).Size {
			t.Errorf("adopted clip %d resident bytes %v, want full size", id, got)
		}
	}
}

// TestSegmentedPoolWholeClipFetchFallback checks a segmented pool built with
// only the whole-clip Fetch hook still fetches per missing segment through
// the adapter (one link consultation per segment).
func TestSegmentedPoolWholeClipFetchFallback(t *testing.T) {
	repo := media.PaperRepository()
	var calls atomic.Uint64
	fetch := func(media.Clip, vtime.Time) error { calls.Add(1); return nil }
	pool, err := New(Config{
		Policy: "greedydual", Repo: repo, Capacity: repo.TotalSize(),
		Seed: 7, Shards: 2, SegmentSize: testSegSize, Fetch: fetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.RequestRange(3, 0, media.GB) // 1.8 GB clip: 4 cold segments
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.MissCached {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if calls.Load() != 4 {
		t.Errorf("link consulted %d times, want 4 (one per segment)", calls.Load())
	}
}

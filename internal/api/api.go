// Package api declares the wire types of the cacheserver /v1 HTTP API.
//
// The server (cmd/cacheserver) and the resilient client
// (internal/cacheclient) both consume these structs, so the JSON contract
// lives in exactly one place. Field names are frozen: renaming a json tag
// is a breaking API change and requires a version bump, not an edit here.
package api

import "mediacache/internal/media"

// Version is the current API version prefix of every route.
const Version = "/v1"

// ClientIDHeader names the requesting client on the wire; the server copies
// it into the Client field of its -reqlog entries so traceql can sessionize
// per client. Requests without it are logged anonymously.
const ClientIDHeader = "X-Client-ID"

// Error is the uniform JSON error envelope every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// SegmentInfo summarizes a clip's segment residency on a segmented server.
type SegmentInfo struct {
	// SizeBytes is the fixed segment granularity (the clip's last segment
	// may be shorter).
	SizeBytes int64 `json:"sizeBytes"`
	// Total is the number of segments the clip divides into.
	Total int `json:"total"`
	// Resident is how many of them are currently cached.
	Resident int `json:"resident"`
}

// RangeInfo describes how one served byte range split across cache, network
// and failure; attached to Clip responses of Range requests.
type RangeInfo struct {
	StartBytes   int64 `json:"startBytes"`
	LengthBytes  int64 `json:"lengthBytes"`
	BytesHit     int64 `json:"bytesHit"`
	BytesFetched int64 `json:"bytesFetched"`
	BytesFailed  int64 `json:"bytesFailed"`
}

// Clip is the response of GET /v1/clips/{id}: the outcome of one cache
// request. LatencySeconds is the modeled startup latency and is zero on
// hits. The segment fields appear only on segmented servers, so pre-segment
// clients decode responses unchanged.
type Clip struct {
	Clip           media.ClipID `json:"clip"`
	Kind           string       `json:"kind"`
	SizeBytes      int64        `json:"sizeBytes"`
	Outcome        string       `json:"outcome"`
	Hit            bool         `json:"hit"`
	LatencySeconds float64      `json:"latencySeconds"`
	BytesResident  int64        `json:"bytesResident,omitempty"`
	PrefixSegments int          `json:"prefixSegments,omitempty"`
	Segments       *SegmentInfo `json:"segments,omitempty"`
	Range          *RangeInfo   `json:"range,omitempty"`
	// ExpiresAtTick is the virtual time (on the owning shard's clock) at
	// which the clip's cached copy expires. Present only on TTL-enabled
	// servers for resident clips, so pre-churn responses are unchanged.
	ExpiresAtTick int64 `json:"expiresAtTick,omitempty"`
	// Peer is the cluster node that serviced this miss over the peer link
	// instead of the origin. Present only on clustered servers when a peer
	// read won, so pre-cluster responses are unchanged.
	Peer string `json:"peer,omitempty"`
}

// BatchItem is one clip reference in a POST /v1/batch request. When
// StartBytes/LengthBytes are present the item is a partial-content
// reference, exactly like GET /v1/clips/{id}?start=&length=; a negative
// LengthBytes means "to the end of the clip".
type BatchItem struct {
	Clip        media.ClipID `json:"clip"`
	StartBytes  *int64       `json:"startBytes,omitempty"`
	LengthBytes *int64       `json:"lengthBytes,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: an ordered list of clip
// references serviced as one cache batch.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItemResult is the outcome of one BatchItem, in the same position.
// Status carries the HTTP status the item would have received as an
// individual request (200, 404, ...); on non-2xx items Error holds the
// message and the outcome fields are zero.
type BatchItemResult struct {
	Clip           media.ClipID `json:"clip"`
	Status         int          `json:"status"`
	Outcome        string       `json:"outcome,omitempty"`
	Hit            bool         `json:"hit,omitempty"`
	SizeBytes      int64        `json:"sizeBytes,omitempty"`
	LatencySeconds float64      `json:"latencySeconds,omitempty"`
	Range          *RangeInfo   `json:"range,omitempty"`
	Error          string       `json:"error,omitempty"`
}

// BatchResponse is the response of POST /v1/batch. Shed reports that the
// server was saturated or degraded while servicing the batch, signalling
// open-loop load generators to count the batch against their shed budget.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
	Shed  bool              `json:"shed,omitempty"`
}

// Stats is the response of GET /v1/stats. With a sharded cache the counters
// are aggregated over every shard and Shards reports the shard count
// (omitted by pre-sharding servers).
type Stats struct {
	Policy          string  `json:"policy"`
	Shards          int     `json:"shards,omitempty"`
	Requests        uint64  `json:"requests"`
	Hits            uint64  `json:"hits"`
	HitRate         float64 `json:"hitRate"`
	ByteHitRate     float64 `json:"byteHitRate"`
	Evictions       uint64  `json:"evictions"`
	BytesFetched    int64   `json:"bytesFetched"`
	BytesFailed     int64   `json:"bytesFailed"`
	DegradedMisses  uint64  `json:"degradedMisses"`
	ResidentClips   int     `json:"residentClips"`
	UsedBytes       int64   `json:"usedBytes"`
	CapacityBytes   int64   `json:"capacityBytes"`
	BypassedMisses  uint64  `json:"bypassedMisses"`
	VictimCalls     uint64  `json:"victimCalls"`
	TheoreticalNote string  `json:"note,omitempty"`

	// Segment-granular fields; all zero (and omitted) on unsegmented
	// servers, keeping the pre-segment wire shape byte-identical.
	SegmentSizeBytes int64  `json:"segmentSizeBytes,omitempty"`
	PrefixSegments   int    `json:"prefixSegments,omitempty"`
	ResidentSegments int    `json:"residentSegments,omitempty"`
	PartialHits      uint64 `json:"partialHits,omitempty"`
	SegmentsFetched  uint64 `json:"segmentsFetched,omitempty"`
	SegmentsEvicted  uint64 `json:"segmentsEvicted,omitempty"`

	// Catalog-dynamics fields (ISSUE 8); all zero (and omitted) when TTL is
	// off and nothing was invalidated, keeping the pre-churn wire shape
	// byte-identical. TTLTicks is the per-clip expiry in virtual ticks.
	TTLTicks         int64  `json:"ttlTicks,omitempty"`
	Invalidated      uint64 `json:"invalidated,omitempty"`
	Expired          uint64 `json:"expired,omitempty"`
	BytesInvalidated int64  `json:"bytesInvalidated,omitempty"`
}

// RequestLogEntry is one line of the NDJSON request log written by
// `cacheserver -reqlog` (and mirrored client-side by `loadgen -reqlog`):
// one serviced clip reference with its requester, arrival time, byte range,
// outcome and latency — everything cmd/traceql needs to sessionize
// measured traffic. Tick is the server's global arrival sequence number;
// WallMicros is the arrival wall-clock time in microseconds since the Unix
// epoch. A zero LengthBytes means the whole clip was referenced, matching
// the trace v2 range convention. LatencyMicros is the measured service
// time; ModelLatencySeconds is the paper's modeled startup latency (zero on
// hits).
type RequestLogEntry struct {
	Tick                int64        `json:"tick"`
	WallMicros          int64        `json:"wallMicros"`
	Client              string       `json:"client,omitempty"`
	Clip                media.ClipID `json:"clip"`
	SizeBytes           int64        `json:"sizeBytes,omitempty"`
	StartBytes          int64        `json:"startBytes,omitempty"`
	LengthBytes         int64        `json:"lengthBytes,omitempty"`
	Policy              string       `json:"policy,omitempty"`
	Outcome             string       `json:"outcome"`
	Hit                 bool         `json:"hit"`
	Status              int          `json:"status"`
	LatencyMicros       int64        `json:"latencyMicros"`
	ModelLatencySeconds float64      `json:"modelLatencySeconds,omitempty"`
	Peer                string       `json:"peer,omitempty"`
}

// ResidentClip is one entry of the detailed GET /v1/resident listing.
type ResidentClip struct {
	ID        media.ClipID `json:"id"`
	Kind      string       `json:"kind"`
	SizeBytes int64        `json:"sizeBytes"`
}

// Resident is the response of GET /v1/resident (default, detailed format).
// Total is the full resident count; Clips is the requested page.
type Resident struct {
	Clips     []ResidentClip `json:"clips"`
	Total     int            `json:"total"`
	Offset    int            `json:"offset"`
	Limit     int            `json:"limit,omitempty"`
	UsedBytes int64          `json:"usedBytes"`
	FreeBytes int64          `json:"freeBytes"`
}

// ResidentIDs is the bare-ID shape served under GET /v1/resident?format=ids
// — the pre-pagination wire format, kept for existing clients.
type ResidentIDs struct {
	Clips     []media.ClipID `json:"clips"`
	UsedBytes int64          `json:"usedBytes"`
	FreeBytes int64          `json:"freeBytes"`
}

// ResidentExtent is one contiguous resident byte run of a clip.
type ResidentExtent struct {
	OffsetBytes int64 `json:"offsetBytes"`
	LengthBytes int64 `json:"lengthBytes"`
}

// ClipExtents is one entry of GET /v1/resident?format=extents: a resident
// clip's cached byte runs. A fully resident clip has one extent covering the
// whole clip.
type ClipExtents struct {
	ID            media.ClipID     `json:"id"`
	SizeBytes     int64            `json:"sizeBytes"`
	BytesResident int64            `json:"bytesResident"`
	Extents       []ResidentExtent `json:"extents"`
}

// ResidentExtents is the response of GET /v1/resident?format=extents —
// the segment-aware residency listing. Unsegmented servers serve it too;
// every clip is then a single full extent.
type ResidentExtents struct {
	Clips            []ClipExtents `json:"clips"`
	Total            int           `json:"total"`
	Offset           int           `json:"offset"`
	Limit            int           `json:"limit,omitempty"`
	SegmentSizeBytes int64         `json:"segmentSizeBytes,omitempty"`
	UsedBytes        int64         `json:"usedBytes"`
	FreeBytes        int64         `json:"freeBytes"`
}

// Policies is the response of GET /v1/policies.
type Policies struct {
	Current  string   `json:"current"`
	Policies []string `json:"policies"`
}

// Shard describes one cache shard in the GET /v1/shards listing.
// ResidentSegments appears only on segmented servers.
type Shard struct {
	Shard            int     `json:"shard"`
	Requests         uint64  `json:"requests"`
	Hits             uint64  `json:"hits"`
	HitRate          float64 `json:"hitRate"`
	ResidentClips    int     `json:"residentClips"`
	ResidentSegments int     `json:"residentSegments,omitempty"`
	UsedBytes        int64   `json:"usedBytes"`
	CapacityBytes    int64   `json:"capacityBytes"`
}

// Shards is the response of GET /v1/shards: the hash-partitioned pool's
// per-shard occupancy and hit statistics, in shard-index order.
type Shards struct {
	Shards []Shard `json:"shards"`
}

// Health is the response of GET /v1/healthz.
type Health struct {
	Status        string `json:"status"`
	ResidentClips int    `json:"residentClips"`
	UsedBytes     int64  `json:"usedBytes"`
	CapacityBytes int64  `json:"capacityBytes"`
}

// BuildVersion is the response of GET /v1/version.
type BuildVersion struct {
	API        string `json:"api"`
	GoVersion  string `json:"goVersion"`
	Policy     string `json:"policy"`
	PolicySpec string `json:"policySpec"`
	Module     string `json:"module,omitempty"`
	Revision   string `json:"revision,omitempty"`
}

// ClusterClip is the response of GET /v1/cluster/clips/{id} — the
// peer-serve route of the cooperative tier. A node answers 200 only when
// the clip is fully resident locally, 404 otherwise; a partial resident is
// not a copy. Serving a peer does not touch the serving node's cache or
// its statistics — like internal/coop, a device's policy sees only its own
// clients' references.
type ClusterClip struct {
	Clip      media.ClipID `json:"clip"`
	Node      string       `json:"node"`
	SizeBytes int64        `json:"sizeBytes"`
}

// ClusterDigest is the response of GET /v1/cluster/digest: a compact
// residency summary peers cache between refreshes, so most peer probes are
// answered locally from the digest rather than over the network. Clips
// lists only FULLY resident clips — partial residents cannot serve a peer
// read. PartialClips reports how many residents were excluded for being
// partial (segmented nodes only).
type ClusterDigest struct {
	Node             string         `json:"node"`
	Seq              uint64         `json:"seq"`
	Clips            []media.ClipID `json:"clips"`
	UsedBytes        int64          `json:"usedBytes"`
	SegmentSizeBytes int64          `json:"segmentSizeBytes,omitempty"`
	PartialClips     int            `json:"partialClips,omitempty"`
}

// ClusterPeer describes one configured peer in the GET /v1/cluster status,
// including the freshness of its last digest (ages are relative to the
// serving node's wall clock).
type ClusterPeer struct {
	ID               string  `json:"id"`
	URL              string  `json:"url"`
	Breaker          string  `json:"breaker"`
	DigestSeq        uint64  `json:"digestSeq,omitempty"`
	DigestClips      int     `json:"digestClips,omitempty"`
	DigestAgeSeconds float64 `json:"digestAgeSeconds,omitempty"`
	DigestFresh      bool    `json:"digestFresh,omitempty"`
}

// ClusterStatus is the response of GET /v1/cluster: ring membership plus
// the node's cooperative counters.
type ClusterStatus struct {
	Node            string        `json:"node"`
	Replicas        int           `json:"replicas"`
	Peers           []ClusterPeer `json:"peers"`
	PeerHits        uint64        `json:"peerHits"`
	PeerMisses      uint64        `json:"peerMisses"`
	PeerErrors      uint64        `json:"peerErrors"`
	Hedges          uint64        `json:"hedges"`
	HedgeWins       uint64        `json:"hedgeWins"`
	DigestSkips     uint64        `json:"digestSkips"`
	DigestRefreshes uint64        `json:"digestRefreshes"`
	DigestErrors    uint64        `json:"digestErrors"`
	PeerServed      uint64        `json:"peerServed"`
	PeerServedBytes int64         `json:"peerServedBytes"`
}

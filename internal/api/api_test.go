package api

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// wireFields freezes the JSON contract: renaming or dropping a field is a
// breaking change that must fail here first.
var wireFields = map[string][]string{
	"Error":           {"error"},
	"Clip":            {"clip", "kind", "sizeBytes", "outcome", "hit", "latencySeconds", "bytesResident", "prefixSegments", "segments", "range", "expiresAtTick", "peer"},
	"SegmentInfo":     {"sizeBytes", "total", "resident"},
	"RangeInfo":       {"startBytes", "lengthBytes", "bytesHit", "bytesFetched", "bytesFailed"},
	"BatchItem":       {"clip", "startBytes", "lengthBytes"},
	"BatchRequest":    {"items"},
	"BatchItemResult": {"clip", "status", "outcome", "hit", "sizeBytes", "latencySeconds", "range", "error"},
	"BatchResponse":   {"items", "shed"},
	"Stats":           {"policy", "shards", "requests", "hits", "hitRate", "byteHitRate", "evictions", "bytesFetched", "bytesFailed", "degradedMisses", "residentClips", "usedBytes", "capacityBytes", "bypassedMisses", "victimCalls", "note", "segmentSizeBytes", "prefixSegments", "residentSegments", "partialHits", "segmentsFetched", "segmentsEvicted", "ttlTicks", "invalidated", "expired", "bytesInvalidated"},
	"RequestLogEntry": {"tick", "wallMicros", "client", "clip", "sizeBytes", "startBytes", "lengthBytes", "policy", "outcome", "hit", "status", "latencyMicros", "modelLatencySeconds", "peer"},
	"ResidentClip":    {"id", "kind", "sizeBytes"},
	"Resident":        {"clips", "total", "offset", "limit", "usedBytes", "freeBytes"},
	"ResidentIDs":     {"clips", "usedBytes", "freeBytes"},
	"ResidentExtent":  {"offsetBytes", "lengthBytes"},
	"ClipExtents":     {"id", "sizeBytes", "bytesResident", "extents"},
	"ResidentExtents": {"clips", "total", "offset", "limit", "segmentSizeBytes", "usedBytes", "freeBytes"},
	"Policies":        {"current", "policies"},
	"Shard":           {"shard", "requests", "hits", "hitRate", "residentClips", "residentSegments", "usedBytes", "capacityBytes"},
	"Shards":          {"shards"},
	"Health":          {"status", "residentClips", "usedBytes", "capacityBytes"},
	"BuildVersion":    {"api", "goVersion", "policy", "policySpec", "module", "revision"},
	"ClusterClip":     {"clip", "node", "sizeBytes"},
	"ClusterDigest":   {"node", "seq", "clips", "usedBytes", "segmentSizeBytes", "partialClips"},
	"ClusterPeer":     {"id", "url", "breaker", "digestSeq", "digestClips", "digestAgeSeconds", "digestFresh"},
	"ClusterStatus":   {"node", "replicas", "peers", "peerHits", "peerMisses", "peerErrors", "hedges", "hedgeWins", "digestSkips", "digestRefreshes", "digestErrors", "peerServed", "peerServedBytes"},
}

// jsonTags extracts the json field names of a struct type.
func jsonTags(t reflect.Type) []string {
	var tags []string
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		for j := 0; j < len(tag); j++ {
			if tag[j] == ',' {
				tag = tag[:j]
				break
			}
		}
		tags = append(tags, tag)
	}
	return tags
}

func TestWireContractFrozen(t *testing.T) {
	types := map[string]reflect.Type{
		"Error":           reflect.TypeOf(Error{}),
		"Clip":            reflect.TypeOf(Clip{}),
		"SegmentInfo":     reflect.TypeOf(SegmentInfo{}),
		"RangeInfo":       reflect.TypeOf(RangeInfo{}),
		"BatchItem":       reflect.TypeOf(BatchItem{}),
		"BatchRequest":    reflect.TypeOf(BatchRequest{}),
		"BatchItemResult": reflect.TypeOf(BatchItemResult{}),
		"BatchResponse":   reflect.TypeOf(BatchResponse{}),
		"Stats":           reflect.TypeOf(Stats{}),
		"RequestLogEntry": reflect.TypeOf(RequestLogEntry{}),
		"ResidentClip":    reflect.TypeOf(ResidentClip{}),
		"Resident":        reflect.TypeOf(Resident{}),
		"ResidentIDs":     reflect.TypeOf(ResidentIDs{}),
		"ResidentExtent":  reflect.TypeOf(ResidentExtent{}),
		"ClipExtents":     reflect.TypeOf(ClipExtents{}),
		"ResidentExtents": reflect.TypeOf(ResidentExtents{}),
		"Policies":        reflect.TypeOf(Policies{}),
		"Shard":           reflect.TypeOf(Shard{}),
		"Shards":          reflect.TypeOf(Shards{}),
		"Health":          reflect.TypeOf(Health{}),
		"BuildVersion":    reflect.TypeOf(BuildVersion{}),
		"ClusterClip":     reflect.TypeOf(ClusterClip{}),
		"ClusterDigest":   reflect.TypeOf(ClusterDigest{}),
		"ClusterPeer":     reflect.TypeOf(ClusterPeer{}),
		"ClusterStatus":   reflect.TypeOf(ClusterStatus{}),
	}
	if len(types) != len(wireFields) {
		t.Fatalf("type map has %d entries, contract has %d", len(types), len(wireFields))
	}
	for name, typ := range types {
		want := append([]string(nil), wireFields[name]...)
		got := jsonTags(typ)
		sort.Strings(want)
		sorted := append([]string(nil), got...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, want) {
			t.Errorf("%s wire fields = %v, contract %v", name, got, wireFields[name])
		}
	}
}

// TestPreSegmentWireCompat is the golden wire-compatibility proof: with
// segmentation off, every response marshals to exactly the bytes a
// pre-segment (PR 5) server produced, and the pre-segment documents decode
// into the extended structs without loss. The golden strings are frozen —
// do not regenerate them from the structs.
func TestPreSegmentWireCompat(t *testing.T) {
	cases := []struct {
		name   string
		v      any
		golden string
	}{
		{
			"Clip",
			Clip{Clip: 3, Kind: "video", SizeBytes: 1932735283, Outcome: "miss-cached", Hit: false, LatencySeconds: 12.5},
			`{"clip":3,"kind":"video","sizeBytes":1932735283,"outcome":"miss-cached","hit":false,"latencySeconds":12.5}`,
		},
		{
			"Stats",
			Stats{Policy: "GreedyDual", Shards: 4, Requests: 100, Hits: 60, HitRate: 0.6, ByteHitRate: 0.4, Evictions: 7, BytesFetched: 12345, BytesFailed: 67, DegradedMisses: 2, ResidentClips: 5, UsedBytes: 999, CapacityBytes: 1000, BypassedMisses: 1, VictimCalls: 9},
			`{"policy":"GreedyDual","shards":4,"requests":100,"hits":60,"hitRate":0.6,"byteHitRate":0.4,"evictions":7,"bytesFetched":12345,"bytesFailed":67,"degradedMisses":2,"residentClips":5,"usedBytes":999,"capacityBytes":1000,"bypassedMisses":1,"victimCalls":9}`,
		},
		{
			"Shard",
			Shard{Shard: 2, Requests: 10, Hits: 4, HitRate: 0.4, ResidentClips: 3, UsedBytes: 55, CapacityBytes: 100},
			`{"shard":2,"requests":10,"hits":4,"hitRate":0.4,"residentClips":3,"usedBytes":55,"capacityBytes":100}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != tc.golden {
				t.Errorf("segmentation-off output changed:\n got %s\nwant %s", b, tc.golden)
			}
			// Round-trip the pre-segment document through the extended type.
			fresh := reflect.New(reflect.TypeOf(tc.v))
			if err := json.Unmarshal([]byte(tc.golden), fresh.Interface()); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh.Elem().Interface(), tc.v) {
				t.Errorf("pre-segment document decoded with loss:\n got %+v\nwant %+v",
					fresh.Elem().Interface(), tc.v)
			}
		})
	}
}

// TestBatchWireCompat freezes the POST /v1/batch contract introduced in
// PR 7. The golden strings are hand-written, not regenerated: a marshaling
// difference here is a breaking wire change.
func TestBatchWireCompat(t *testing.T) {
	start, length := int64(1048576), int64(-1)
	cases := []struct {
		name   string
		v      any
		golden string
	}{
		{
			"BatchRequest",
			BatchRequest{Items: []BatchItem{
				{Clip: 7},
				{Clip: 12, StartBytes: &start, LengthBytes: &length},
			}},
			`{"items":[{"clip":7},{"clip":12,"startBytes":1048576,"lengthBytes":-1}]}`,
		},
		{
			"BatchResponse",
			BatchResponse{Items: []BatchItemResult{
				{Clip: 7, Status: 200, Outcome: "hit", Hit: true, SizeBytes: 1932735283},
				{Clip: 12, Status: 200, Outcome: "miss-cached", SizeBytes: 536870912, LatencySeconds: 4.25,
					Range: &RangeInfo{StartBytes: 1048576, LengthBytes: 535822336, BytesFetched: 535822336}},
				{Clip: 9999, Status: 404, Error: "unknown clip id 9999"},
			}},
			`{"items":[{"clip":7,"status":200,"outcome":"hit","hit":true,"sizeBytes":1932735283},{"clip":12,"status":200,"outcome":"miss-cached","sizeBytes":536870912,"latencySeconds":4.25,"range":{"startBytes":1048576,"lengthBytes":535822336,"bytesHit":0,"bytesFetched":535822336,"bytesFailed":0}},{"clip":9999,"status":404,"error":"unknown clip id 9999"}]}`,
		},
		{
			"BatchResponseShed",
			BatchResponse{Items: []BatchItemResult{}, Shed: true},
			`{"items":[],"shed":true}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != tc.golden {
				t.Errorf("batch wire output changed:\n got %s\nwant %s", b, tc.golden)
			}
			fresh := reflect.New(reflect.TypeOf(tc.v))
			if err := json.Unmarshal([]byte(tc.golden), fresh.Interface()); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh.Elem().Interface(), tc.v) {
				t.Errorf("golden document decoded with loss:\n got %+v\nwant %+v",
					fresh.Elem().Interface(), tc.v)
			}
		})
	}
}

// TestPreChurnWireCompat freezes the ISSUE 8 compatibility promise: with
// TTL disabled and no invalidations, every response marshals to exactly
// the bytes a pre-churn (PR 7) server produced — including on segmented
// servers — and pre-churn documents decode into the extended structs
// without loss. The golden strings are hand-written and frozen; do not
// regenerate them from the structs.
func TestPreChurnWireCompat(t *testing.T) {
	cases := []struct {
		name   string
		v      any
		golden string
	}{
		{
			"StatsSegmented",
			Stats{Policy: "GreedyDual", Shards: 2, Requests: 50, Hits: 20, HitRate: 0.4, ByteHitRate: 0.3, Evictions: 3, BytesFetched: 777, ResidentClips: 4, UsedBytes: 500, CapacityBytes: 1000, VictimCalls: 5, SegmentSizeBytes: 1048576, ResidentSegments: 12, PartialHits: 2, SegmentsFetched: 9, SegmentsEvicted: 4},
			`{"policy":"GreedyDual","shards":2,"requests":50,"hits":20,"hitRate":0.4,"byteHitRate":0.3,"evictions":3,"bytesFetched":777,"bytesFailed":0,"degradedMisses":0,"residentClips":4,"usedBytes":500,"capacityBytes":1000,"bypassedMisses":0,"victimCalls":5,"segmentSizeBytes":1048576,"residentSegments":12,"partialHits":2,"segmentsFetched":9,"segmentsEvicted":4}`,
		},
		{
			"ClipSegmented",
			Clip{Clip: 12, Kind: "audio", SizeBytes: 65536000, Outcome: "hit", Hit: true, BytesResident: 65536000, Segments: &SegmentInfo{SizeBytes: 1048576, Total: 63, Resident: 63}},
			`{"clip":12,"kind":"audio","sizeBytes":65536000,"outcome":"hit","hit":true,"latencySeconds":0,"bytesResident":65536000,"segments":{"sizeBytes":1048576,"total":63,"resident":63}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != tc.golden {
				t.Errorf("TTL-off output changed:\n got %s\nwant %s", b, tc.golden)
			}
			fresh := reflect.New(reflect.TypeOf(tc.v))
			if err := json.Unmarshal([]byte(tc.golden), fresh.Interface()); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh.Elem().Interface(), tc.v) {
				t.Errorf("pre-churn document decoded with loss:\n got %+v\nwant %+v",
					fresh.Elem().Interface(), tc.v)
			}
		})
	}
}

// TestStatsOmitsChurnFieldsWhenOff: the four churn fields never appear in
// a TTL-off, invalidation-free document.
func TestStatsOmitsChurnFieldsWhenOff(t *testing.T) {
	b, err := json.Marshal(Stats{Policy: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"ttlTicks", "invalidated", "expired", "bytesInvalidated"} {
		if _, ok := m[field]; ok {
			t.Errorf("%s should be omitted when zero: %s", field, b)
		}
	}
	cb, err := json.Marshal(Clip{Clip: 1, Kind: "video"})
	if err != nil {
		t.Fatal(err)
	}
	var cm map[string]any
	if err := json.Unmarshal(cb, &cm); err != nil {
		t.Fatal(err)
	}
	if _, ok := cm["expiresAtTick"]; ok {
		t.Errorf("expiresAtTick should be omitted when zero: %s", cb)
	}
}

func TestStatsOmitsShardsWhenUnsharded(t *testing.T) {
	b, err := json.Marshal(Stats{Policy: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["shards"]; ok {
		t.Fatalf("shards should be omitted when zero: %s", b)
	}
	if _, ok := m["note"]; ok {
		t.Fatalf("note should be omitted when empty: %s", b)
	}
}

package api

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// wireFields freezes the JSON contract: renaming or dropping a field is a
// breaking change that must fail here first.
var wireFields = map[string][]string{
	"Error":        {"error"},
	"Clip":         {"clip", "kind", "sizeBytes", "outcome", "hit", "latencySeconds"},
	"Stats":        {"policy", "shards", "requests", "hits", "hitRate", "byteHitRate", "evictions", "bytesFetched", "bytesFailed", "degradedMisses", "residentClips", "usedBytes", "capacityBytes", "bypassedMisses", "victimCalls", "note"},
	"ResidentClip": {"id", "kind", "sizeBytes"},
	"Resident":     {"clips", "total", "offset", "limit", "usedBytes", "freeBytes"},
	"ResidentIDs":  {"clips", "usedBytes", "freeBytes"},
	"Policies":     {"current", "policies"},
	"Shard":        {"shard", "requests", "hits", "hitRate", "residentClips", "usedBytes", "capacityBytes"},
	"Shards":       {"shards"},
	"Health":       {"status", "residentClips", "usedBytes", "capacityBytes"},
	"BuildVersion": {"api", "goVersion", "policy", "policySpec", "module", "revision"},
}

// jsonTags extracts the json field names of a struct type.
func jsonTags(t reflect.Type) []string {
	var tags []string
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		for j := 0; j < len(tag); j++ {
			if tag[j] == ',' {
				tag = tag[:j]
				break
			}
		}
		tags = append(tags, tag)
	}
	return tags
}

func TestWireContractFrozen(t *testing.T) {
	types := map[string]reflect.Type{
		"Error":        reflect.TypeOf(Error{}),
		"Clip":         reflect.TypeOf(Clip{}),
		"Stats":        reflect.TypeOf(Stats{}),
		"ResidentClip": reflect.TypeOf(ResidentClip{}),
		"Resident":     reflect.TypeOf(Resident{}),
		"ResidentIDs":  reflect.TypeOf(ResidentIDs{}),
		"Policies":     reflect.TypeOf(Policies{}),
		"Shard":        reflect.TypeOf(Shard{}),
		"Shards":       reflect.TypeOf(Shards{}),
		"Health":       reflect.TypeOf(Health{}),
		"BuildVersion": reflect.TypeOf(BuildVersion{}),
	}
	if len(types) != len(wireFields) {
		t.Fatalf("type map has %d entries, contract has %d", len(types), len(wireFields))
	}
	for name, typ := range types {
		want := append([]string(nil), wireFields[name]...)
		got := jsonTags(typ)
		sort.Strings(want)
		sorted := append([]string(nil), got...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, want) {
			t.Errorf("%s wire fields = %v, contract %v", name, got, wireFields[name])
		}
	}
}

func TestStatsOmitsShardsWhenUnsharded(t *testing.T) {
	b, err := json.Marshal(Stats{Policy: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["shards"]; ok {
		t.Fatalf("shards should be omitted when zero: %s", b)
	}
	if _, ok := m["note"]; ok {
		t.Fatalf("note should be omitted when empty: %s", b)
	}
}

// Package fiverule implements the metadata-retention rule the paper
// proposes as future work (Sections 4.1 and 5): an analog of Gray and
// Putzolu's five-minute rule, "extended to the wireless environment", that
// decides how long DYNSimple-style reference history is worth keeping for
// clips that have gone cold.
//
// The economics mirror the original rule. Retaining a clip's K reference
// stamps costs memory; the benefit is that, if the clip is referenced again
// while its history is warm, the policy can rank it accurately and avoid a
// mis-eviction that would re-fetch clip bytes over the wireless network.
// Equating the holding cost against the expected network saving gives a
// break-even retention interval
//
//	T = (NetworkCostPerByte × AvgClipBytes) / (MemoryCostPerBytePerTick × MetadataBytes)
//
// History idle longer than T costs more to keep than it can save, and is
// pruned. With the paper's example figures (4-byte stamps, K=2, one million
// clips ⇒ 4 MB of metadata against tens-of-gigabyte caches) T is large —
// pruning only matters on severely memory-constrained devices, exactly the
// scenario the paper describes.
package fiverule

import (
	"fmt"

	"mediacache/internal/history"
	"mediacache/internal/vtime"
)

// Rule captures the economic parameters of the retention decision.
type Rule struct {
	// NetworkCostPerByte is the cost of streaming one byte over the
	// wireless network (energy + bandwidth), in abstract cost units.
	NetworkCostPerByte float64
	// MemoryCostPerBytePerTick is the cost of holding one byte of metadata
	// for one virtual-time tick.
	MemoryCostPerBytePerTick float64
	// AvgClipBytes is the expected size of a re-fetch avoided by accurate
	// history.
	AvgClipBytes float64
	// MetadataBytes is the per-clip history footprint (K stamps × stamp
	// size).
	MetadataBytes float64
}

// Validate reports whether all parameters are positive.
func (r Rule) Validate() error {
	if r.NetworkCostPerByte <= 0 {
		return fmt.Errorf("fiverule: NetworkCostPerByte must be positive, got %v", r.NetworkCostPerByte)
	}
	if r.MemoryCostPerBytePerTick <= 0 {
		return fmt.Errorf("fiverule: MemoryCostPerBytePerTick must be positive, got %v", r.MemoryCostPerBytePerTick)
	}
	if r.AvgClipBytes <= 0 {
		return fmt.Errorf("fiverule: AvgClipBytes must be positive, got %v", r.AvgClipBytes)
	}
	if r.MetadataBytes <= 0 {
		return fmt.Errorf("fiverule: MetadataBytes must be positive, got %v", r.MetadataBytes)
	}
	return nil
}

// BreakEven returns the retention interval T in ticks: history idle longer
// than T is not worth keeping.
func (r Rule) BreakEven() (vtime.Duration, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	t := (r.NetworkCostPerByte * r.AvgClipBytes) / (r.MemoryCostPerBytePerTick * r.MetadataBytes)
	if t < 1 {
		t = 1
	}
	const maxTicks = float64(uint64(1) << 62)
	if t > maxTicks {
		t = maxTicks
	}
	return vtime.Duration(t), nil
}

// Pruner periodically applies a Rule to a history tracker.
type Pruner struct {
	rule     Rule
	tracker  *history.Tracker
	interval vtime.Duration
	lastRun  vtime.Time
	dropped  int
}

// NewPruner returns a Pruner that, when polled via Tick, prunes the tracker
// every interval ticks using the rule's break-even retention.
func NewPruner(rule Rule, tracker *history.Tracker, interval vtime.Duration) (*Pruner, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if tracker == nil {
		return nil, fmt.Errorf("fiverule: tracker must not be nil")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("fiverule: interval must be positive, got %d", interval)
	}
	return &Pruner{rule: rule, tracker: tracker, interval: interval}, nil
}

// Tick polls the pruner at virtual time now; if an interval has elapsed
// since the last prune, idle histories are dropped. It returns how many
// clip histories were pruned by this call.
func (p *Pruner) Tick(now vtime.Time) (int, error) {
	if now-p.lastRun < p.interval {
		return 0, nil
	}
	p.lastRun = now
	retention, err := p.rule.BreakEven()
	if err != nil {
		return 0, err
	}
	n := p.tracker.PruneOlderThan(now, retention)
	p.dropped += n
	return n, nil
}

// Dropped returns the total histories pruned over the pruner's lifetime.
func (p *Pruner) Dropped() int { return p.dropped }

package fiverule

import (
	"testing"

	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

func validRule() Rule {
	return Rule{
		NetworkCostPerByte:       1e-6,
		MemoryCostPerBytePerTick: 1e-9,
		AvgClipBytes:             1e9,
		MetadataBytes:            16,
	}
}

func TestValidate(t *testing.T) {
	if err := validRule().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Rule{
		{},
		{NetworkCostPerByte: 1, MemoryCostPerBytePerTick: 1, AvgClipBytes: 1},
		{NetworkCostPerByte: -1, MemoryCostPerBytePerTick: 1, AvgClipBytes: 1, MetadataBytes: 1},
		{NetworkCostPerByte: 1, MemoryCostPerBytePerTick: 0, AvgClipBytes: 1, MetadataBytes: 1},
		{NetworkCostPerByte: 1, MemoryCostPerBytePerTick: 1, AvgClipBytes: 0, MetadataBytes: 1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d should fail validation", i)
		}
	}
}

func TestBreakEven(t *testing.T) {
	r := validRule()
	// T = (1e-6 × 1e9) / (1e-9 × 16) = 1000 / 1.6e-8 = 6.25e10
	got, err := r.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	want := vtime.Duration(6.25e10)
	if got < want-1 || got > want+1 {
		t.Fatalf("BreakEven = %d, want %d (±1 for float truncation)", got, want)
	}
}

func TestBreakEvenClamps(t *testing.T) {
	r := validRule()
	r.NetworkCostPerByte = 1e-30 // benefit ~ 0: clamp to 1 tick
	got, err := r.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("tiny benefit should clamp to 1 tick, got %d", got)
	}
	r = validRule()
	r.MemoryCostPerBytePerTick = 1e-300 // holding is free: clamp to max
	got, err = r.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatalf("overflow clamp failed: %d", got)
	}
}

func TestBreakEvenInvalid(t *testing.T) {
	if _, err := (Rule{}).BreakEven(); err == nil {
		t.Fatal("invalid rule should error")
	}
}

func TestNewPrunerValidation(t *testing.T) {
	tr := history.NewTracker(10, 2)
	if _, err := NewPruner(Rule{}, tr, 100); err == nil {
		t.Error("invalid rule should fail")
	}
	if _, err := NewPruner(validRule(), nil, 100); err == nil {
		t.Error("nil tracker should fail")
	}
	if _, err := NewPruner(validRule(), tr, 0); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestPrunerDropsIdleHistory(t *testing.T) {
	tr := history.NewTracker(5, 2)
	// An aggressive rule: retention of ~10 ticks.
	r := Rule{
		NetworkCostPerByte:       1,
		MemoryCostPerBytePerTick: 1,
		AvgClipBytes:             100,
		MetadataBytes:            10,
	}
	be, _ := r.BreakEven()
	if be != 10 {
		t.Fatalf("retention = %d, want 10", be)
	}
	p, err := NewPruner(r, tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe(media.ClipID(1), 1)
	tr.Observe(media.ClipID(2), 95)
	// At t=100: clip 1 idle 99 > 10 -> pruned; clip 2 idle 5 -> kept.
	n, err := p.Tick(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("pruned %d, want 1", n)
	}
	if tr.Tracked(1) != 0 || tr.Tracked(2) != 1 {
		t.Fatal("wrong clip pruned")
	}
	if p.Dropped() != 1 {
		t.Fatalf("Dropped = %d", p.Dropped())
	}
}

func TestPrunerRespectsInterval(t *testing.T) {
	tr := history.NewTracker(5, 2)
	r := Rule{NetworkCostPerByte: 1, MemoryCostPerBytePerTick: 1, AvgClipBytes: 100, MetadataBytes: 10}
	p, _ := NewPruner(r, tr, 100)
	tr.Observe(media.ClipID(1), 1)
	// Ticks before the interval elapses do nothing.
	if n, _ := p.Tick(50); n != 0 {
		t.Fatalf("early tick pruned %d", n)
	}
	if tr.Tracked(1) != 1 {
		t.Fatal("history pruned too early")
	}
	if n, _ := p.Tick(150); n != 1 {
		t.Fatal("interval elapsed; should prune")
	}
	// Immediately after a prune, the next tick is a no-op again.
	tr.Observe(media.ClipID(2), 1)
	if n, _ := p.Tick(160); n != 0 {
		t.Fatal("pruner must wait a full interval between runs")
	}
}

func TestPaperScaleExample(t *testing.T) {
	// The paper's Section 4.1 overhead example: one million clips, K=2,
	// 4-byte stamps = 8 bytes of metadata per clip. With realistic cost
	// ratios (network transfer vastly more expensive than RAM residency)
	// the break-even retention is enormous — pruning rarely fires, matching
	// the paper's "reasonable overhead" conclusion.
	r := Rule{
		NetworkCostPerByte:       1e-3,
		MemoryCostPerBytePerTick: 1e-12,
		AvgClipBytes:             float64(media.GB),
		MetadataBytes:            8,
	}
	be, err := r.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if be < 1e15 {
		t.Fatalf("expected an enormous retention window, got %d", be)
	}
}

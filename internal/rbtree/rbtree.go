// Package rbtree implements an ordered map as a left-leaning red-black
// tree (Sedgewick's LLRB, 2-3 variant).
//
// The paper's Section 5 names efficient victim selection as future work:
// "This may require tree-based data structures to minimize the complexity
// of identifying a victim clip." This package is that substrate: the fast
// LRU-SK implementation (policy/lrusk.Fast) keeps per-size-class trees of
// resident clips ordered by their K-th-last reference time, giving
// O(log n) insert/delete and O(1) minimum instead of an O(n) scan.
//
// The tree is deliberately dependency-free and generic so other index
// structures (e.g. ordered priority snapshots) can reuse it.
package rbtree

// Tree is an ordered map from K to V. The zero value is not usable; create
// trees with New.
type Tree[K any, V any] struct {
	less func(a, b K) bool
	root *node[K, V]
	size int
}

type color bool

const (
	red   color = true
	black color = false
)

type node[K any, V any] struct {
	key         K
	value       V
	left, right *node[K, V]
	color       color
}

// New returns an empty tree ordered by less. less must define a strict weak
// ordering; keys comparing equal in both directions are considered the same
// key (inserts overwrite).
func New[K any, V any](less func(a, b K) bool) *Tree[K, V] {
	if less == nil {
		panic("rbtree: less function must not be nil")
	}
	return &Tree[K, V]{less: less}
}

// Len returns the number of keys in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n.value, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.value, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.value, true
}

// Put inserts key with value, replacing any existing value for the key.
func (t *Tree[K, V]) Put(key K, value V) {
	var grew bool
	t.root, grew = t.put(t.root, key, value)
	t.root.color = black
	if grew {
		t.size++
	}
}

func (t *Tree[K, V]) put(h *node[K, V], key K, value V) (*node[K, V], bool) {
	if h == nil {
		return &node[K, V]{key: key, value: value, color: red}, true
	}
	var grew bool
	switch {
	case t.less(key, h.key):
		h.left, grew = t.put(h.left, key, value)
	case t.less(h.key, key):
		h.right, grew = t.put(h.right, key, value)
	default:
		h.value = value
	}
	return t.fixUp(h), grew
}

// Delete removes key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if !t.Contains(key) {
		return false
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return true
}

// DeleteMin removes and returns the smallest key/value.
func (t *Tree[K, V]) DeleteMin() (K, V, bool) {
	k, v, ok := t.Min()
	if !ok {
		return k, v, false
	}
	t.root = t.deleteMin(t.root)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return k, v, true
}

func isRed[K any, V any](n *node[K, V]) bool { return n != nil && n.color == red }

func rotateLeft[K any, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	return x
}

func rotateRight[K any, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	return x
}

func flipColors[K any, V any](h *node[K, V]) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

func (t *Tree[K, V]) fixUp(h *node[K, V]) *node[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

func moveRedLeft[K any, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K any, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func (t *Tree[K, V]) deleteMin(h *node[K, V]) *node[K, V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = t.deleteMin(h.left)
	return t.fixUp(h)
}

func (t *Tree[K, V]) delete(h *node[K, V], key K) *node[K, V] {
	if t.less(key, h.key) {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if !t.less(h.key, key) && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if !t.less(h.key, key) {
			// Replace with the successor and delete it from the right.
			m := h.right
			for m.left != nil {
				m = m.left
			}
			h.key, h.value = m.key, m.value
			h.right = t.deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return t.fixUp(h)
}

// Ascend visits keys in ascending order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, value V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return t.ascend(n.right, fn)
}

// Keys returns all keys in ascending order. Intended for tests and small
// trees.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// checkInvariants verifies red-black properties; exported to the test
// package through export_test.go.
func (t *Tree[K, V]) checkInvariants() error {
	if isRed(t.root) {
		return errRootRed
	}
	_, err := check(t.root)
	return err
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

const (
	errRootRed      = invariantError("rbtree: root is red")
	errRightRed     = invariantError("rbtree: right-leaning red link")
	errDoubleRed    = invariantError("rbtree: two red links in a row")
	errBlackBalance = invariantError("rbtree: unbalanced black height")
)

func check[K any, V any](n *node[K, V]) (int, error) {
	if n == nil {
		return 1, nil
	}
	if isRed(n.right) {
		return 0, errRightRed
	}
	if isRed(n) && isRed(n.left) {
		return 0, errDoubleRed
	}
	lh, err := check(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackBalance
	}
	if !isRed(n) {
		lh++
	}
	return lh, nil
}

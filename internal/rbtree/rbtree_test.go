package rbtree

import (
	"sort"
	"testing"
	"testing/quick"

	"mediacache/internal/randutil"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) bool { return a < b })
}

func TestNewPanicsOnNilLess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int, int](nil)
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Fatal("empty length")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	if _, _, ok := tr.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty")
	}
	if tr.Delete(5) {
		t.Fatal("Delete on empty")
	}
}

func TestPutGetDelete(t *testing.T) {
	tr := intTree()
	tr.Put(2, "two")
	tr.Put(1, "one")
	tr.Put(3, "three")
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	for k, want := range map[int]string{1: "one", 2: "two", 3: "three"} {
		if got, ok := tr.Get(k); !ok || got != want {
			t.Fatalf("Get(%d) = %q,%v", k, got, ok)
		}
	}
	// Overwrite.
	tr.Put(2, "TWO")
	if got, _ := tr.Get(2); got != "TWO" {
		t.Fatal("overwrite failed")
	}
	if tr.Len() != 3 {
		t.Fatal("overwrite changed size")
	}
	if !tr.Delete(2) {
		t.Fatal("delete existing")
	}
	if tr.Contains(2) {
		t.Fatal("deleted key still present")
	}
	if tr.Delete(2) {
		t.Fatal("double delete")
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 3, 9, 1, 7} {
		tr.Put(k, "")
	}
	if k, _, _ := tr.Min(); k != 1 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 9 {
		t.Fatalf("Max = %d", k)
	}
}

func TestDeleteMinOrder(t *testing.T) {
	tr := intTree()
	keys := []int{5, 3, 9, 1, 7, 4, 8, 2, 6}
	for _, k := range keys {
		tr.Put(k, "")
	}
	for want := 1; want <= 9; want++ {
		k, _, ok := tr.DeleteMin()
		if !ok || k != want {
			t.Fatalf("DeleteMin = %d,%v want %d", k, ok, want)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("tree not empty")
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := intTree()
	for _, k := range []int{4, 2, 5, 1, 3} {
		tr.Put(k, "")
	}
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys out of order: %v", keys)
		}
	}
	var visited []int
	tr.Ascend(func(k int, _ string) bool {
		visited = append(visited, k)
		return k < 3
	})
	if len(visited) != 3 || visited[2] != 3 {
		t.Fatalf("early stop visited %v", visited)
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	src := randutil.NewSource(1234)
	tr := intTree()
	model := make(map[int]string)
	for op := 0; op < 20000; op++ {
		k := src.Intn(500)
		if src.Intn(3) == 0 {
			delete(model, k)
			tr.Delete(k)
		} else {
			model[k] = "v"
			tr.Put(k, "v")
		}
		if op%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("len %d vs model %d", tr.Len(), len(model))
	}
	want := make([]int, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Ints(want)
	got := tr.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys diverge from model at %d", i)
		}
	}
}

func TestMatchesModelProperty(t *testing.T) {
	check := func(ops []int16) bool {
		tr := intTree()
		model := make(map[int]bool)
		for _, raw := range ops {
			k := int(raw) % 64
			if k < 0 {
				k = -k
				delete(model, k)
				tr.Delete(k)
			} else {
				model[k] = true
				tr.Put(k, "x")
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k := range model {
			if !tr.Contains(k) {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStructKeys(t *testing.T) {
	type key struct {
		a, b int
	}
	tr := New[key, int](func(x, y key) bool {
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	})
	tr.Put(key{1, 2}, 12)
	tr.Put(key{1, 1}, 11)
	tr.Put(key{0, 9}, 9)
	if k, v, _ := tr.Min(); k != (key{0, 9}) || v != 9 {
		t.Fatalf("Min = %v,%v", k, v)
	}
	if !tr.Delete(key{1, 1}) {
		t.Fatal("delete struct key")
	}
	if tr.Len() != 2 {
		t.Fatal("len")
	}
}

func BenchmarkPut(b *testing.B) {
	src := randutil.NewSource(1)
	tr := intTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(src.Intn(1<<20), "")
	}
}

func BenchmarkGet(b *testing.B) {
	src := randutil.NewSource(1)
	tr := intTree()
	for i := 0; i < 100000; i++ {
		tr.Put(src.Intn(1<<20), "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(src.Intn(1 << 20))
	}
}

func BenchmarkDeleteMin(b *testing.B) {
	src := randutil.NewSource(1)
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Put(src.Intn(1<<30), "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DeleteMin()
	}
}

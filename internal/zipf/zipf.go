// Package zipf implements the generalized Zipfian popularity distribution
// used by the paper's simulation model (Section 3.3).
//
// The paper generates clip requests "using a Zipfian distribution with a mean
// of 0.27", citing Dan et al. [6], whose movie-ticket model assigns item i
// (1-indexed by popularity rank) the probability
//
//	p(i) = c / i^(1-θ)
//
// with θ = 0.271 and c the normalizing constant. θ = 0 yields the classic
// Zipf's law (p ∝ 1/i); θ = 1 yields the uniform distribution. This package
// exposes θ directly as the Mean parameter so experiment code reads like the
// paper.
//
// A Distribution is immutable after construction; sampling state lives in the
// caller-provided random source, so one distribution can serve many
// independent request streams.
package zipf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mediacache/internal/randutil"
)

// DefaultMean is the Zipfian mean (θ) used throughout the paper's evaluation.
const DefaultMean = 0.27

// Distribution is a generalized Zipfian distribution over items 1..N.
type Distribution struct {
	n    int
	mean float64
	pmf  []float64 // pmf[i] = P(item i+1)
	cdf  []float64 // cdf[i] = P(item <= i+1)
}

// New returns a Zipfian distribution over n items with the given mean θ in
// [0, 1]. Item 1 is the most popular.
func New(n int, mean float64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: item count must be positive, got %d", n)
	}
	if mean < 0 || mean > 1 || math.IsNaN(mean) {
		return nil, fmt.Errorf("zipf: mean must be in [0,1], got %v", mean)
	}
	d := &Distribution{
		n:    n,
		mean: mean,
		pmf:  make([]float64, n),
		cdf:  make([]float64, n),
	}
	alpha := 1 - mean
	var norm float64
	for i := 0; i < n; i++ {
		w := 1 / math.Pow(float64(i+1), alpha)
		d.pmf[i] = w
		norm += w
	}
	var cum float64
	for i := 0; i < n; i++ {
		d.pmf[i] /= norm
		cum += d.pmf[i]
		d.cdf[i] = cum
	}
	d.cdf[n-1] = 1 // clamp accumulated rounding error
	return d, nil
}

// MustNew is like New but panics on error. Intended for experiment setup with
// constant parameters.
func MustNew(n int, mean float64) *Distribution {
	d, err := New(n, mean)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of items.
func (d *Distribution) N() int { return d.n }

// Mean returns the distribution's θ parameter.
func (d *Distribution) Mean() float64 { return d.mean }

// Prob returns the probability of item i (1-indexed popularity rank).
func (d *Distribution) Prob(i int) float64 {
	if i < 1 || i > d.n {
		return 0
	}
	return d.pmf[i-1]
}

// PMF returns a copy of the probability mass function, indexed by rank-1.
func (d *Distribution) PMF() []float64 {
	out := make([]float64, d.n)
	copy(out, d.pmf)
	return out
}

// Sample draws one item (1-indexed rank) using src via inverse-CDF binary
// search, so identical source streams give identical request sequences
// regardless of how many other consumers exist.
func (d *Distribution) Sample(src *randutil.Source) int {
	u := src.Float64()
	return sort.SearchFloat64s(d.cdf, u) + 1
}

// ErrShiftNegative reports an invalid shift amount.
var ErrShiftNegative = errors.New("zipf: shift must be non-negative")

// Shifted maps popularity ranks onto item identities with a circular shift g,
// reproducing the paper's Section 4.4.1 evolving-access-pattern experiment:
// with shift g, the item with identity ((rank-1+g) mod N)+1 receives the
// probability of rank `rank`. A shift of 0 is the identity mapping.
type Shifted struct {
	dist  *Distribution
	shift int
}

// NewShifted wraps d with a circular identity shift g >= 0.
func NewShifted(d *Distribution, g int) (*Shifted, error) {
	if g < 0 {
		return nil, ErrShiftNegative
	}
	return &Shifted{dist: d, shift: g % d.n}, nil
}

// Shift returns the current shift value g (reduced modulo N).
func (s *Shifted) Shift() int { return s.shift }

// SetShift updates the shift value, e.g. at an experiment phase boundary.
func (s *Shifted) SetShift(g int) error {
	if g < 0 {
		return ErrShiftNegative
	}
	s.shift = g % s.dist.n
	return nil
}

// Sample draws an item identity in 1..N under the shifted distribution.
func (s *Shifted) Sample(src *randutil.Source) int {
	rank := s.dist.Sample(src)
	return s.Identity(rank)
}

// Identity maps a popularity rank to the item identity that holds it under
// the current shift.
func (s *Shifted) Identity(rank int) int {
	return (rank-1+s.shift)%s.dist.n + 1
}

// Prob returns the probability of item identity id under the current shift.
func (s *Shifted) Prob(id int) float64 {
	if id < 1 || id > s.dist.n {
		return 0
	}
	rank := (id-1-s.shift)%s.dist.n + 1
	if rank < 1 {
		rank += s.dist.n
	}
	return s.dist.Prob(rank)
}

// PMF returns the probability of each item identity (indexed by id-1) under
// the current shift.
func (s *Shifted) PMF() []float64 {
	out := make([]float64, s.dist.n)
	for id := 1; id <= s.dist.n; id++ {
		out[id-1] = s.Prob(id)
	}
	return out
}

// N returns the number of items.
func (s *Shifted) N() int { return s.dist.n }

package zipf

import (
	"fmt"
	"math"
	"sort"
)

// EstimateMean fits the Zipfian mean θ to observed reference counts by
// least-squares regression on the log-log rank/frequency line: under
// p(i) ∝ 1/i^(1−θ), log f(i) = c − (1−θ)·log i, so the fitted slope b
// yields θ = 1 + b. The estimate is clamped to [0, 1].
//
// counts holds per-item reference counts in any order; zero counts are
// ignored (they carry no rank information). At least three distinct
// positive counts are required for a meaningful fit.
func EstimateMean(counts []int) (float64, error) {
	positive := make([]int, 0, len(counts))
	for _, c := range counts {
		if c < 0 {
			return 0, fmt.Errorf("zipf: negative count %d", c)
		}
		if c > 0 {
			positive = append(positive, c)
		}
	}
	if len(positive) < 3 {
		return 0, fmt.Errorf("zipf: need at least 3 referenced items to fit, got %d", len(positive))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(positive)))

	var n float64
	var sumX, sumY, sumXX, sumXY float64
	for rank, c := range positive {
		x := math.Log(float64(rank + 1))
		y := math.Log(float64(c))
		n++
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return 0, fmt.Errorf("zipf: degenerate rank distribution")
	}
	slope := (n*sumXY - sumX*sumY) / denom
	theta := 1 + slope
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	return theta, nil
}

package zipf

import (
	"math"
	"testing"
	"testing/quick"

	"mediacache/internal/randutil"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.27); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := New(-5, 0.27); err == nil {
		t.Error("want error for negative n")
	}
	if _, err := New(10, -0.1); err == nil {
		t.Error("want error for negative mean")
	}
	if _, err := New(10, 1.1); err == nil {
		t.Error("want error for mean > 1")
	}
	if _, err := New(10, math.NaN()); err == nil {
		t.Error("want error for NaN mean")
	}
	if _, err := New(576, DefaultMean); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	MustNew(0, 0.5)
}

func TestPMFSumsToOne(t *testing.T) {
	check := func(nRaw uint16, meanRaw uint8) bool {
		n := int(nRaw%1000) + 1
		mean := float64(meanRaw%101) / 100
		d := MustNew(n, mean)
		var sum float64
		for _, p := range d.PMF() {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPMFMonotoneDecreasing(t *testing.T) {
	d := MustNew(576, DefaultMean)
	pmf := d.PMF()
	for i := 1; i < len(pmf); i++ {
		if pmf[i] > pmf[i-1] {
			t.Fatalf("pmf not monotone at rank %d: %v > %v", i+1, pmf[i], pmf[i-1])
		}
	}
}

func TestMeanOneIsUniform(t *testing.T) {
	d := MustNew(100, 1)
	for i := 1; i <= 100; i++ {
		if math.Abs(d.Prob(i)-0.01) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want 0.01", i, d.Prob(i))
		}
	}
}

func TestMeanZeroIsClassicZipf(t *testing.T) {
	d := MustNew(10, 0)
	// Under classic Zipf, p(1)/p(2) = 2.
	ratio := d.Prob(1) / d.Prob(2)
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("p(1)/p(2) = %v, want 2", ratio)
	}
}

func TestProbOutOfRange(t *testing.T) {
	d := MustNew(5, 0.27)
	if d.Prob(0) != 0 || d.Prob(6) != 0 || d.Prob(-1) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestSampleMatchesPMF(t *testing.T) {
	const n = 50
	const draws = 400000
	d := MustNew(n, DefaultMean)
	src := randutil.NewSource(101)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[d.Sample(src)]++
	}
	for i := 1; i <= n; i++ {
		got := float64(counts[i]) / draws
		want := d.Prob(i)
		// Allow 10% relative error plus slack for the rare tail ranks.
		if math.Abs(got-want) > 0.1*want+0.002 {
			t.Fatalf("rank %d: empirical %v vs pmf %v", i, got, want)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	d := MustNew(576, DefaultMean)
	a := randutil.NewSource(5)
	b := randutil.NewSource(5)
	for i := 0; i < 1000; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("identical sources must give identical samples")
		}
	}
}

func TestAccessors(t *testing.T) {
	d := MustNew(576, 0.27)
	if d.N() != 576 {
		t.Errorf("N() = %d", d.N())
	}
	if d.Mean() != 0.27 {
		t.Errorf("Mean() = %v", d.Mean())
	}
}

func TestShiftedIdentityMapping(t *testing.T) {
	d := MustNew(10, 0.27)
	s, err := NewShifted(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 maps to identity 4 with shift 3.
	if got := s.Identity(1); got != 4 {
		t.Fatalf("Identity(1) with shift 3 = %d, want 4", got)
	}
	// Wrap-around: rank 10 with shift 3 maps to identity 3.
	if got := s.Identity(10); got != 3 {
		t.Fatalf("Identity(10) with shift 3 = %d, want 3", got)
	}
}

func TestShiftedZeroIsIdentity(t *testing.T) {
	d := MustNew(576, DefaultMean)
	s, _ := NewShifted(d, 0)
	for rank := 1; rank <= 576; rank += 37 {
		if s.Identity(rank) != rank {
			t.Fatalf("shift 0 should be identity; rank %d -> %d", rank, s.Identity(rank))
		}
	}
}

func TestShiftedProbConsistency(t *testing.T) {
	d := MustNew(100, 0.27)
	s, _ := NewShifted(d, 40)
	for rank := 1; rank <= 100; rank++ {
		id := s.Identity(rank)
		if math.Abs(s.Prob(id)-d.Prob(rank)) > 1e-12 {
			t.Fatalf("Prob(identity(%d)) = %v, want %v", rank, s.Prob(id), d.Prob(rank))
		}
	}
}

func TestShiftedPMFSumsToOne(t *testing.T) {
	d := MustNew(576, DefaultMean)
	for _, g := range []int{0, 100, 200, 300, 400, 500, 575, 576, 1000} {
		s, _ := NewShifted(d, g)
		var sum float64
		for _, p := range s.PMF() {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shift %d: pmf sums to %v", g, sum)
		}
	}
}

func TestShiftedRejectsNegative(t *testing.T) {
	d := MustNew(10, 0.27)
	if _, err := NewShifted(d, -1); err != ErrShiftNegative {
		t.Fatalf("want ErrShiftNegative, got %v", err)
	}
	s, _ := NewShifted(d, 0)
	if err := s.SetShift(-2); err != ErrShiftNegative {
		t.Fatalf("want ErrShiftNegative, got %v", err)
	}
}

func TestSetShiftChangesPopularIdentity(t *testing.T) {
	d := MustNew(576, DefaultMean)
	s, _ := NewShifted(d, 0)
	if err := s.SetShift(100); err != nil {
		t.Fatal(err)
	}
	if s.Shift() != 100 {
		t.Fatalf("Shift() = %d", s.Shift())
	}
	// The paper: with shift g=100, object (1+100) becomes the most popular.
	if got := s.Identity(1); got != 101 {
		t.Fatalf("most popular identity = %d, want 101", got)
	}
}

func TestShiftedSampleDistribution(t *testing.T) {
	d := MustNew(20, DefaultMean)
	s, _ := NewShifted(d, 5)
	src := randutil.NewSource(77)
	counts := make([]int, 21)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Sample(src)]++
	}
	// Identity 6 holds rank 1 and must be the most sampled.
	maxID := 1
	for id := 2; id <= 20; id++ {
		if counts[id] > counts[maxID] {
			maxID = id
		}
	}
	if maxID != 6 {
		t.Fatalf("most frequent identity = %d, want 6", maxID)
	}
}

func TestShiftedProbOutOfRange(t *testing.T) {
	d := MustNew(5, 0.27)
	s, _ := NewShifted(d, 2)
	if s.Prob(0) != 0 || s.Prob(6) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func BenchmarkSample(b *testing.B) {
	d := MustNew(576, DefaultMean)
	src := randutil.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(src)
	}
}

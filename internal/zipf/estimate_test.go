package zipf

import (
	"math"
	"testing"

	"mediacache/internal/randutil"
)

func TestEstimateMeanValidation(t *testing.T) {
	if _, err := EstimateMean(nil); err == nil {
		t.Error("empty counts should fail")
	}
	if _, err := EstimateMean([]int{5, 3}); err == nil {
		t.Error("two items should fail")
	}
	if _, err := EstimateMean([]int{5, -1, 3}); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := EstimateMean([]int{0, 0, 0, 1, 1}); err == nil {
		t.Error("fewer than 3 positive counts should fail")
	}
}

func TestEstimateRecoversTheta(t *testing.T) {
	// Sample heavily from known distributions and check the fit recovers θ.
	for _, theta := range []float64{0.1, 0.27, 0.5, 0.8} {
		d := MustNew(200, theta)
		src := randutil.NewSource(11)
		counts := make([]int, 200)
		for i := 0; i < 400000; i++ {
			counts[d.Sample(src)-1]++
		}
		got, err := EstimateMean(counts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-theta) > 0.08 {
			t.Errorf("theta=%v: estimated %v", theta, got)
		}
	}
}

func TestEstimateUniformNearOne(t *testing.T) {
	counts := make([]int, 50)
	for i := range counts {
		counts[i] = 1000 // perfectly uniform
	}
	got, err := EstimateMean(counts)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.95 {
		t.Errorf("uniform counts should fit theta ~1, got %v", got)
	}
}

func TestEstimateClamped(t *testing.T) {
	// Super-Zipfian decay (steeper than 1/i) must clamp to 0.
	counts := []int{100000, 100, 1, 1, 1}
	got, err := EstimateMean(counts)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("steep decay should clamp to 0, got %v", got)
	}
}

func TestEstimateIgnoresZeros(t *testing.T) {
	withZeros := []int{90, 0, 45, 0, 30, 0, 22, 18}
	without := []int{90, 45, 30, 22, 18}
	a, err := EstimateMean(withZeros)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateMean(without)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("zeros should not affect the fit: %v vs %v", a, b)
	}
}

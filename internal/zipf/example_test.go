package zipf_test

import (
	"fmt"
	"log"

	"mediacache/internal/randutil"
	"mediacache/internal/zipf"
)

// Example shows the paper's request distribution: Zipf with mean 0.27 over
// a 576-clip repository, and the identity shift used by the evolving-
// access-pattern experiments.
func Example() {
	dist, err := zipf.New(576, zipf.DefaultMean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(rank 1) = %.4f\n", dist.Prob(1))
	fmt.Printf("P(rank 2) = %.4f\n", dist.Prob(2))

	shifted, err := zipf.NewShifted(dist, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with shift 100, rank 1 is held by clip %d\n", shifted.Identity(1))

	src := randutil.NewSource(42)
	fmt.Printf("first sample: clip %d\n", shifted.Sample(src))
	// Output:
	// P(rank 1) = 0.0573
	// P(rank 2) = 0.0345
	// with shift 100, rank 1 is held by clip 101
	// first sample: clip 102
}

// Package stats provides the summary statistics used by multi-seed
// experiment replication: mean, sample standard deviation and extrema,
// computed with Welford's numerically stable online algorithm.
package stats

import (
	"fmt"
	"math"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N    int
	Mean float64
	// Std is the sample standard deviation (n-1 denominator); 0 for n < 2.
	Std float64
	Min float64
	Max float64
}

// String renders "mean ± std (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.Std, s.N)
}

// Accumulator computes a Summary incrementally. The zero value is ready to
// use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Summary returns the accumulated statistics.
func (a *Accumulator) Summary() Summary {
	s := Summary{N: a.n, Mean: a.mean, Min: a.min, Max: a.max}
	if a.n >= 2 {
		s.Std = math.Sqrt(a.m2 / float64(a.n-1))
	}
	return s
}

// Summarize computes the Summary of a sample.
func Summarize(sample []float64) Summary {
	var a Accumulator
	for _, x := range sample {
		a.Add(x)
	}
	return a.Summary()
}

// MeanOf returns the arithmetic mean of a sample (0 for an empty one).
func MeanOf(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, x := range sample {
		sum += x
	}
	return sum / float64(len(sample))
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Sample std of this classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s = Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	check := func(raw []int8) bool {
		sample := make([]float64, len(raw))
		for i, r := range raw {
			sample[i] = float64(r) / 3
		}
		var a Accumulator
		for _, x := range sample {
			a.Add(x)
		}
		got := a.Summary()
		want := Summarize(sample)
		return got.N == want.N &&
			math.Abs(got.Mean-want.Mean) < 1e-9 &&
			math.Abs(got.Std-want.Std) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumericalStability(t *testing.T) {
	// Large offset + tiny variance: naive sum-of-squares would lose all
	// precision; Welford keeps it.
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Add(1e9 + float64(i%2))
	}
	s := a.Summary()
	if math.Abs(s.Mean-(1e9+0.5)) > 1e-3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-0.50025) > 1e-3 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("empty mean")
	}
	if MeanOf([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
}

func TestString(t *testing.T) {
	s := Summary{N: 3, Mean: 0.5, Std: 0.01}
	if got := s.String(); got != "0.5000 ± 0.0100 (n=3)" {
		t.Fatalf("String = %q", got)
	}
}

func TestAccumulatorN(t *testing.T) {
	var a Accumulator
	if a.N() != 0 {
		t.Fatal("fresh N")
	}
	a.Add(1)
	a.Add(2)
	if a.N() != 2 {
		t.Fatal("N after adds")
	}
}

package igd

import (
	"testing"
	"testing/quick"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func TestIndexedName(t *testing.T) {
	if MustNew(10, 2, 1, Indexed()).Name() != "IGD(K=2,indexed)" {
		t.Fatal("indexed name")
	}
}

// TestIndexedEquivalence: the branch-and-bound index must reproduce the
// scan's decisions exactly, including seeded tie-breaks, over realistic
// workloads on both repository shapes.
func TestIndexedEquivalence(t *testing.T) {
	for _, repo := range []*media.Repository{
		media.PaperRepository(),
		media.PaperEquiRepository(), // equi-sized: maximal tie pressure
	} {
		dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
		for seed := uint64(1); seed <= 3; seed++ {
			scan := MustNew(repo.N(), 2, seed)
			indexed := MustNew(repo.N(), 2, seed, Indexed())
			cScan, _ := core.New(repo, repo.CacheSizeForRatio(0.05), scan)
			cIdx, _ := core.New(repo, repo.CacheSizeForRatio(0.05), indexed)
			gen := workload.MustNewGenerator(dist, seed)
			for i := 0; i < 4000; i++ {
				id := gen.Next()
				a, errA := cScan.Request(id)
				b, errB := cIdx.Request(id)
				if errA != nil || errB != nil {
					t.Fatalf("seed %d req %d: errs %v %v", seed, i, errA, errB)
				}
				if a != b {
					t.Fatalf("seed %d req %d (clip %d): scan=%v indexed=%v", seed, i, id, a, b)
				}
			}
			sa, sb := core.CollectResidentIDs(cScan), core.CollectResidentIDs(cIdx)
			if len(sa) != len(sb) {
				t.Fatalf("seed %d: resident counts differ", seed)
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("seed %d: resident sets differ", seed)
				}
			}
		}
	}
}

func TestIndexedEquivalenceProperty(t *testing.T) {
	repo, err := media.EquiRepository(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	check := func(reqs []uint8) bool {
		scan := MustNew(repo.N(), 2, 9)
		indexed := MustNew(repo.N(), 2, 9, Indexed())
		cScan, _ := core.New(repo, 40, scan)
		cIdx, _ := core.New(repo, 40, indexed)
		for _, r := range reqs {
			id := media.ClipID(int(r)%repo.N() + 1)
			a, errA := cScan.Request(id)
			b, errB := cIdx.Request(id)
			if errA != nil || errB != nil || a != b {
				return false
			}
		}
		sa, sb := core.CollectResidentIDs(cScan), core.CollectResidentIDs(cIdx)
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedResetAndWarm(t *testing.T) {
	repo, _ := media.EquiRepository(6, 10)
	p := MustNew(6, 2, 1, Indexed())
	c, _ := core.New(repo, 20, p)
	c.Warm([]media.ClipID{1, 2})
	out, err := c.Request(3)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	c.Reset()
	if p.idx.tree.Len() != 0 {
		t.Fatal("Reset must clear the index")
	}
	if _, err := c.Request(1); err != nil {
		t.Fatal(err)
	}
}

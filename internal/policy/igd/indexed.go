package igd

import (
	"sort"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// This file implements the Indexed victim-selection mode, extending the
// paper's Section 5 future work ("tree-based data structures to minimize
// the complexity of identifying a victim clip") to IGD.
//
// IGD's priority H(x) = L(x) + nref(x)/(Δ_K(x,t)·s(x)) drifts with time, so
// no static total order exists. But the time-varying term is non-negative,
// which makes each clip's base inflation L(x) a lower bound on its current
// priority. Keeping the resident clips in a red-black tree ordered by
// (L(x), id) therefore enables branch-and-bound victim selection: walk the
// tree in ascending base order computing true scores, and stop as soon as
// the next clip's base exceeds the best true score seen — every clip beyond
// it can only score higher. Under stable access patterns most residents
// share recent bases, and the walk terminates after a handful of
// candidates; the worst case degrades gracefully to the scan.
//
// The mode is decision-identical to the scan — including the order in which
// exact ties feed the seeded tie-break — which TestIndexedEquivalence
// asserts over random traces.

// idxKey orders resident clips by base inflation, then id.
type idxKey struct {
	base float64
	id   media.ClipID
}

func lessIdx(a, b idxKey) bool {
	if a.base != b.base {
		return a.base < b.base
	}
	return a.id < b.id
}

// index is the optional ordered index over resident clips.
type index struct {
	tree *rbtree.Tree[idxKey, media.Clip]
}

func newIndex() *index {
	return &index{tree: rbtree.New[idxKey, media.Clip](lessIdx)}
}

// Indexed enables tree-based victim selection. The policy's decisions are
// identical to the default scan; only the selection complexity changes.
func Indexed() Option {
	return func(p *Policy) { p.idx = newIndex() }
}

// indexInsert registers a resident clip under its current base.
func (p *Policy) indexInsert(clip media.Clip) {
	if p.idx == nil {
		return
	}
	p.idx.tree.Put(idxKey{base: p.baseL[clip.ID], id: clip.ID}, clip)
}

// indexRemove drops a resident clip keyed at the given base.
func (p *Policy) indexRemove(id media.ClipID, base float64) {
	if p.idx == nil {
		return
	}
	p.idx.tree.Delete(idxKey{base: base, id: id})
}

// victimsIndexed selects one victim via branch-and-bound over the base
// index, mirroring the scan's semantics exactly.
func (p *Policy) victimsIndexed(view core.ResidentView, now vtime.Time) []media.ClipID {
	// Adopt any warm-inserted clips the index has not seen. The engine only
	// calls Victims when space is needed, so this is a rare slow path that
	// only triggers when NumResident disagrees with the index size.
	if p.idx.tree.Len() != view.NumResident() {
		for c := range view.Residents() {
			if _, ok := p.baseL[c.ID]; !ok {
				p.adopt(c, now)
			}
		}
	}
	var (
		ties      []media.ClipID
		bestScore float64
		found     bool
	)
	p.idx.tree.Ascend(func(key idxKey, clip media.Clip) bool {
		if found && key.base > bestScore {
			return false // every further clip scores at least key.base
		}
		h := p.Score(clip, now)
		switch {
		case !found || h < bestScore:
			bestScore, found = h, true
			ties = ties[:0]
			ties = append(ties, clip.ID)
		case h == bestScore:
			ties = append(ties, clip.ID)
		}
		return true
	})
	if !found {
		return nil
	}
	// The scan encounters clips in ascending id order; the tree in
	// ascending (base, id). Restore id order so the seeded tie-break draws
	// the same index.
	sort.Slice(ties, func(i, j int) bool { return ties[i] < ties[j] })
	if bestScore > p.inflation {
		p.inflation = bestScore
	}
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	return []media.ClipID{victim}
}

package igd

import (
	"math"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(10, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(576, DefaultK, 1); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 2, 1)
}

func TestNames(t *testing.T) {
	if MustNew(10, 2, 1).Name() != "IGD(K=2)" {
		t.Fatal("name")
	}
	if MustNew(10, 2, 1, FrozenAging()).Name() != "IGD(K=2,frozen)" {
		t.Fatal("frozen name")
	}
	if MustNew(10, 2, 1).K() != 2 {
		t.Fatal("K")
	}
}

func TestScoreAges(t *testing.T) {
	// A resident clip that stops being referenced must see its score sink as
	// Δ grows — the defining IGD property.
	p := MustNew(4, 2, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 1, false)
	p.OnInsert(clip, 1)
	p.Record(clip, 2, true) // full history now: refs at 1,2; nref=2
	s10 := p.Score(clip, 10)
	s100 := p.Score(clip, 100)
	if s100 >= s10 {
		t.Fatalf("score must decay with idle time: %v -> %v", s10, s100)
	}
}

func TestScoreIncompleteHistoryIsBase(t *testing.T) {
	p := MustNew(4, 2, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 1, false)
	p.OnInsert(clip, 1)
	// Only one reference: Δ2 infinite, score = baseL = 0.
	if got := p.Score(clip, 5); got != 0 {
		t.Fatalf("score = %v, want base inflation 0", got)
	}
}

func TestHitIncrementsNRefAndRebases(t *testing.T) {
	p := MustNew(4, 2, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 1, false)
	p.OnInsert(clip, 1)
	if p.NRef(1) != 1 {
		t.Fatal("nref starts at 1")
	}
	p.Record(clip, 2, true)
	if p.NRef(1) != 2 {
		t.Fatal("hit increments nref")
	}
	p.OnEvict(1, 3)
	if p.NRef(1) != 0 {
		t.Fatal("eviction forgets nref (Section 4.2)")
	}
}

func TestHistorySurvivesEviction(t *testing.T) {
	p := MustNew(4, 2, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 1, false)
	p.Record(clip, 2, false)
	p.OnEvict(1, 3)
	if p.Tracker().Count(1) != 2 {
		t.Fatal("K-reference history must survive eviction")
	}
}

func TestEquiSizedKeepsHotClip(t *testing.T) {
	// The Figure 3 pathology fixed: on equi-sized clips IGD must keep the
	// clip referenced every other request, unlike GreedyDual.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
	})
	p := MustNew(3, 2, 1)
	c, _ := core.New(r, 25, p)
	seq := []media.ClipID{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3}
	misses1 := 0
	for _, id := range seq {
		out, err := c.Request(id)
		if err != nil {
			t.Fatal(err)
		}
		if id == 1 && !out.IsHit() {
			misses1++
		}
	}
	if misses1 > 1 {
		t.Fatalf("clip 1 missed %d times; IGD should retain it after the first", misses1)
	}
}

func TestColdClipEvicted(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := MustNew(4, 2, 1)
	c, _ := core.New(r, 20, p)
	// Clip 1 hot, clip 2 cold.
	c.Request(1)
	c.Request(1)
	c.Request(2)
	c.Request(1)
	c.Request(3)
	if c.Resident(2) {
		t.Fatal("cold clip 2 should be evicted")
	}
	if !c.Resident(1) {
		t.Fatal("hot clip 1 must survive")
	}
}

func TestAdaptsToShift(t *testing.T) {
	r, _ := media.EquiRepository(10, 10)
	p := MustNew(10, 2, 1)
	c, _ := core.New(r, 30, p)
	for i := 0; i < 400; i++ {
		c.Request(media.ClipID(i%3 + 1))
	}
	for i := 0; i < 400; i++ {
		c.Request(media.ClipID(i%3 + 4))
	}
	for id := media.ClipID(4); id <= 6; id++ {
		if !c.Resident(id) {
			t.Fatalf("IGD failed to adapt; resident = %v", core.CollectResidentIDs(c))
		}
	}
}

func TestAdaptsFasterThanFrozen(t *testing.T) {
	// The dynamic-Δ ablation: after a popularity shift, selection-time aging
	// must yield at least as many hits on the new hot set as frozen scores.
	run := func(opts ...Option) int {
		r, _ := media.EquiRepository(12, 10)
		p := MustNew(12, 2, 1, opts...)
		c, _ := core.New(r, 40, p)
		for i := 0; i < 600; i++ {
			c.Request(media.ClipID(i%4 + 1))
		}
		hits := 0
		for i := 0; i < 600; i++ {
			out, _ := c.Request(media.ClipID(i%4 + 5))
			if out.IsHit() {
				hits++
			}
		}
		return hits
	}
	dynamic := run()
	frozen := run(FrozenAging())
	if dynamic < frozen {
		t.Fatalf("dynamic aging hits %d < frozen %d", dynamic, frozen)
	}
}

func TestScoreClampsTinyDelta(t *testing.T) {
	p := MustNew(2, 1, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 5, false)
	p.OnInsert(clip, 5)
	// Δ1 at now=5 is 0 -> clamped to 1 tick.
	got := p.Score(clip, 5)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("score = %v", got)
	}
	if got != 0.1 {
		t.Fatalf("score = %v, want nref/(1*size) = 0.1", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []media.ClipID {
		r, _ := media.EquiRepository(10, 10)
		p := MustNew(10, 2, 13)
		c, _ := core.New(r, 30, p)
		for i := 0; i < 200; i++ {
			c.Request(media.ClipID((i*7)%10 + 1))
		}
		return core.CollectResidentIDs(c)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := MustNew(5, 2, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 1, false)
	p.OnInsert(clip, 1)
	p.Reset()
	if p.Inflation() != 0 || p.NRef(1) != 0 || p.Tracker().Count(1) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWarmAdoption(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := MustNew(4, 2, 1)
	c, _ := core.New(r, 20, p)
	c.Warm([]media.ClipID{1, 2})
	out, err := c.Request(3)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestAdmit(t *testing.T) {
	if !MustNew(4, 2, 1).Admit(media.Clip{ID: 1, Size: 1}, 1) {
		t.Fatal("always admits")
	}
}

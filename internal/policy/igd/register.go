package igd

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name:  "igd",
		Usage: "igd:K",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(cfg.Repo.N(), cfg.Spec.K, cfg.Seed)
		},
	})
	registry.Register(registry.Entry{
		Name:  "igd-indexed",
		Usage: "igd-indexed:K",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(cfg.Repo.N(), cfg.Spec.K, cfg.Seed, Indexed())
		},
	})
}

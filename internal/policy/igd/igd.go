// Package igd implements Interval-Based GreedyDual (IGD), one of the
// paper's three novel techniques (Section 4.2).
//
// IGD extends GreedyDual to consider recency so that equi-sized repositories
// are supported effectively. Like DYNSimple it maintains the last K
// reference times of every clip; at time t the aging interval
// Δ_K(x, t) = t − t_K(x) is the span back to the K-th most recent reference.
// The cost function becomes
//
//	H(x) = L(x) + nref(x) / (Δ_K(x, t) · size(x))
//
// where nref(x) counts references since clip x became resident (reset to
// zero on swap-out, like GreedyDual-Freq), and L(x) is the inflation value
// captured when x was last touched. Crucially Δ_K is evaluated at victim-
// selection time: a previously popular clip that stops receiving hits sees
// its Δ grow and its priority sink, so IGD "forgets" stale popularity —
// the property that makes it adapt where GreedyDual-Freq cannot (Figure 7).
//
// Because priorities drift with time, victim selection scans the resident
// set (O(n), n = resident clips; the paper's Section 5 leaves tree-based
// structures as future work). The global inflation L rises to each evicted
// priority exactly as in GreedyDual.
package igd

import (
	"fmt"
	"math"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// DefaultK is the history depth used by the paper's experiments (same
// tracker depth as DYNSimple's default).
const DefaultK = 2

// Policy is the IGD technique. It implements core.Policy.
type Policy struct {
	k    int
	n    int
	seed uint64

	tracker *history.Tracker
	src     *randutil.Source

	inflation float64
	baseL     map[media.ClipID]float64
	nref      map[media.ClipID]uint64
	// eff overrides a clip's size with its resident byte total for partially
	// resident clips under segment-granular caches (core.SegmentAware). The
	// base-inflation index needs no rekey: L(x) stays a lower bound on the
	// score whatever the size term, so branch-and-bound pruning is unchanged.
	eff map[media.ClipID]media.Bytes

	// freezeAging disables selection-time Δ evaluation and freezes the
	// priority at touch time instead — the BenchmarkIGDAging ablation.
	freezeAging bool
	frozen      map[media.ClipID]float64

	// idx, when non-nil, holds the ordered base-inflation index enabling
	// branch-and-bound victim selection (see indexed.go).
	idx *index
}

var _ core.Policy = (*Policy)(nil)

// Option configures a Policy.
type Option func(*Policy)

// FrozenAging computes each clip's priority once at touch time instead of
// re-evaluating Δ_K at victim selection. Used by the aging ablation.
func FrozenAging() Option {
	return func(p *Policy) { p.freezeAging = true }
}

// New returns an IGD policy for a repository of n clips with history depth
// k and the given tie-break seed.
func New(n, k int, seed uint64, opts ...Option) (*Policy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("igd: repository size must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("igd: K must be positive, got %d", k)
	}
	p := &Policy{
		k:       k,
		n:       n,
		seed:    seed,
		tracker: history.NewTracker(n, k),
		src:     randutil.NewSource(seed),
		baseL:   make(map[media.ClipID]float64),
		nref:    make(map[media.ClipID]uint64),
		eff:     make(map[media.ClipID]media.Bytes),
		frozen:  make(map[media.ClipID]float64),
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// MustNew is like New but panics on error; for experiment setup.
func MustNew(n, k int, seed uint64, opts ...Option) *Policy {
	p, err := New(n, k, seed, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string {
	switch {
	case p.freezeAging:
		return fmt.Sprintf("IGD(K=%d,frozen)", p.k)
	case p.idx != nil:
		return fmt.Sprintf("IGD(K=%d,indexed)", p.k)
	default:
		return fmt.Sprintf("IGD(K=%d)", p.k)
	}
}

// K returns the history depth.
func (p *Policy) K() int { return p.k }

// Inflation returns the current inflation value L.
func (p *Policy) Inflation() float64 { return p.inflation }

// NRef returns the reference count of a resident clip since residency.
func (p *Policy) NRef(id media.ClipID) uint64 { return p.nref[id] }

// Tracker exposes the underlying reference history.
func (p *Policy) Tracker() *history.Tracker { return p.tracker }

// Score returns the clip's current priority
// L(x) + nref(x)/(Δ_K(x,now)·size(x)). Clips with fewer than K references
// have infinite Δ and contribute nothing beyond their base inflation.
func (p *Policy) Score(c media.Clip, now vtime.Time) float64 {
	base := p.baseL[c.ID]
	if p.freezeAging {
		if h, ok := p.frozen[c.ID]; ok {
			return h
		}
	}
	delta := p.tracker.BackwardKDistance(c.ID, now)
	if math.IsInf(delta, 1) {
		return base
	}
	if delta <= 0 {
		delta = 1 // the K-th reference happened this tick; clamp to one tick
	}
	return base + float64(p.nref[c.ID])/(delta*p.sizeOf(c))
}

// sizeOf returns the bytes a clip occupies for ranking: its resident byte
// total when a segmented cache reported one, the full clip size otherwise.
func (p *Policy) sizeOf(c media.Clip) float64 {
	if b, ok := p.eff[c.ID]; ok {
		return float64(b)
	}
	return float64(c.Size)
}

// OnResidentBytes implements core.SegmentAware. Scores are evaluated at
// victim-selection time, so recording the new occupancy suffices; only the
// frozen-aging ablation refreshes its cached score.
func (p *Policy) OnResidentBytes(clip media.Clip, resident media.Bytes, now vtime.Time) {
	if resident > 0 && resident < clip.Size {
		p.eff[clip.ID] = resident
	} else {
		delete(p.eff, clip.ID)
	}
	if p.freezeAging {
		if _, ok := p.frozen[clip.ID]; ok {
			delete(p.frozen, clip.ID)
			p.frozen[clip.ID] = p.Score(clip, now)
		}
	}
}

// Record implements core.Policy: every reference updates the history; a hit
// additionally increments nref and re-bases the clip at the current
// inflation.
func (p *Policy) Record(clip media.Clip, now vtime.Time, hit bool) {
	p.tracker.Observe(clip.ID, now)
	if hit {
		p.indexRemove(clip.ID, p.baseL[clip.ID])
		p.nref[clip.ID]++
		p.baseL[clip.ID] = p.inflation
		if p.freezeAging {
			delete(p.frozen, clip.ID)
			p.frozen[clip.ID] = p.Score(clip, now)
		}
		p.indexInsert(clip)
	}
}

// Admit implements core.Policy.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: evict the resident clip with minimum
// current score, ties broken uniformly at random; L rises to the evicted
// score.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, _ media.Bytes, now vtime.Time) []media.ClipID {
	if p.idx != nil {
		return p.victimsIndexed(view, now)
	}
	var (
		minH  float64
		ties  []media.ClipID
		found bool
	)
	for c := range view.Residents() {
		if _, ok := p.baseL[c.ID]; !ok {
			// Warm-inserted clip: adopt it at the current inflation.
			p.adopt(c, now)
		}
		h := p.Score(c, now)
		switch {
		case !found || h < minH:
			minH, ties, found = h, ties[:0], true
			ties = append(ties, c.ID)
		case h == minH:
			ties = append(ties, c.ID)
		}
	}
	if !found {
		return nil
	}
	if minH > p.inflation {
		p.inflation = minH
	}
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	return []media.ClipID{victim}
}

// adopt registers a clip that became resident without OnInsert (Warm).
func (p *Policy) adopt(c media.Clip, now vtime.Time) {
	p.nref[c.ID] = 1
	p.baseL[c.ID] = p.inflation
	if p.freezeAging {
		p.frozen[c.ID] = p.Score(c, now)
	}
	p.indexInsert(c)
}

// OnInsert implements core.Policy: nref starts at 1 (the inserting
// reference) and the clip is based at the current inflation.
func (p *Policy) OnInsert(clip media.Clip, now vtime.Time) {
	p.adopt(clip, now)
}

// OnEvict implements core.Policy: the residency reference count is
// forgotten (Section 4.2: "IGD forgets nref(x) when clip x is swapped out");
// the K-reference history survives.
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	p.indexRemove(id, p.baseL[id])
	delete(p.baseL, id)
	delete(p.nref, id)
	delete(p.eff, id)
	delete(p.frozen, id)
}

// Reset implements core.Policy.
func (p *Policy) Reset() {
	p.inflation = 0
	p.tracker = history.NewTracker(p.n, p.k)
	p.src = randutil.NewSource(p.seed)
	p.baseL = make(map[media.ClipID]float64)
	p.nref = make(map[media.ClipID]uint64)
	p.eff = make(map[media.ClipID]media.Bytes)
	p.frozen = make(map[media.ClipID]float64)
	if p.idx != nil {
		p.idx = newIndex()
	}
}

package gdsp

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name: "gdsp",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(nil, DefaultBeta, cfg.Seed)
		},
	})
}

package gdsp

import (
	"math"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/greedydual"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, math.NaN(), 1); err == nil {
		t.Error("NaN beta should fail")
	}
	if _, err := New(nil, math.Inf(1), 1); err == nil {
		t.Error("Inf beta should fail")
	}
	p, err := New(nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.beta != DefaultBeta {
		t.Fatal("beta default")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(nil, math.NaN(), 1)
}

func TestName(t *testing.T) {
	if MustNew(nil, 1, 1).Name() != "GDS-Popularity" {
		t.Fatal("name")
	}
}

func TestCostFunctions(t *testing.T) {
	c := media.Clip{ID: 1, Size: 64}
	if ByteHitCost(c) != 64 {
		t.Fatal("byte cost")
	}
	if HitCost(c) != 1 {
		t.Fatal("hit cost")
	}
}

func TestFrequencySurvivesEviction(t *testing.T) {
	p := MustNew(nil, 1, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 1, false)
	p.OnInsert(clip, 1)
	p.Record(clip, 2, true)
	if p.Freq(1) != 2 {
		t.Fatalf("freq = %d", p.Freq(1))
	}
	p.OnEvict(1, 3)
	if p.Freq(1) != 2 {
		t.Fatal("popularity must survive eviction (unlike GreedyDual-Freq)")
	}
}

func TestByteHitConfigurationIgnoresSize(t *testing.T) {
	// With cost = size, priority = L + f^β: a popular huge clip beats an
	// unpopular small one.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 1000}, // popular, huge
		{ID: 2, Size: 100},  // unpopular, smaller
		{ID: 3, Size: 100},
	})
	p := MustNew(ByteHitCost, 1, 1)
	c, _ := core.New(r, 1110, p)
	c.Request(1)
	c.Request(1)
	c.Request(1) // f(1) = 3
	c.Request(2) // f(2) = 1
	c.Request(3) // must evict: min priority is clip 2 (f=1)
	if c.Resident(2) {
		t.Fatal("unpopular clip should be evicted despite being small")
	}
	if !c.Resident(1) {
		t.Fatal("popular huge clip must survive — the byte-hit trade-off")
	}
}

func TestPaperTradeoffClaim(t *testing.T) {
	// Section 1: GDSP "enhances byte hit rate at the expense of cache hit
	// rate" relative to the hit-rate-oriented GreedyDual family. Compare
	// against GreedyDual (cost=1) on the paper workload.
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	run := func(p core.Policy) core.Stats {
		cache, err := core.New(repo, repo.CacheSizeForRatio(0.125), p)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.MustNewGenerator(dist, 42)
		for i := 0; i < 8000; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return cache.Stats()
	}
	gdspStats := run(MustNew(ByteHitCost, 1, 42))
	gdStats := run(greedydual.New(nil, 42))
	if gdspStats.ByteHitRate() <= gdStats.ByteHitRate() {
		t.Errorf("GDSP byte hit %.4f <= GreedyDual %.4f; expected the byte-hit advantage",
			gdspStats.ByteHitRate(), gdStats.ByteHitRate())
	}
	if gdspStats.HitRate() >= gdStats.HitRate() {
		t.Errorf("GDSP hit rate %.4f >= GreedyDual %.4f; expected the hit-rate sacrifice",
			gdspStats.HitRate(), gdStats.HitRate())
	}
}

// Package gdsp implements GDS-Popularity (GDSP), the popularity-aware
// GreedyDual-Size of Jin and Bestavros (ICDCS 2000) that the paper cites in
// Section 1 as a technique it deliberately excludes: "An example is
// GDS-Popularity [13] which enhances byte hit rate at the expense of cache
// hit rate."
//
// GDSP extends GreedyDual-Size with a popularity term:
//
//	H(x) = L + f(x)^β · cost(x) / size(x)
//
// where f(x) counts references to x (retained across evictions, unlike
// GreedyDual-Freq) and β tempers the popularity influence. The byte-hit
// configuration sets cost(x) = size(x), collapsing the priority to
// L + f(x)^β: eviction then ignores size entirely and keeps whatever is
// popular — large popular video clips occupy the cache, maximizing the
// bytes served from cache while sacrificing the request hit rate that small
// audio clips would provide. The `gdsp` extension experiment quantifies
// exactly this trade-off against GreedyDual and IGD.
package gdsp

import (
	"fmt"
	"math"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/prioindex"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// DefaultBeta is the popularity exponent used when none is specified; Jin
// and Bestavros report values near 1.
const DefaultBeta = 1.0

// CostFunc assigns a clip's fetch cost.
type CostFunc func(media.Clip) float64

// ByteHitCost is cost(x) = size(x): the byte-hit-rate configuration the
// paper refers to.
func ByteHitCost(c media.Clip) float64 { return float64(c.Size) }

// HitCost is cost ≡ 1: the request-hit-rate configuration (GDSF-like).
func HitCost(media.Clip) float64 { return 1 }

// Policy is the GDS-Popularity technique. It implements core.Policy.
type Policy struct {
	cost CostFunc
	beta float64
	seed uint64
	src  *randutil.Source

	inflation float64
	h         map[media.ClipID]float64
	// freq is the long-run reference count; unlike GreedyDual-Freq it
	// survives eviction (popularity, not residency, is what GDSP tracks).
	freq map[media.ClipID]uint64
	// eff overrides a clip's size with its resident byte total for partially
	// resident clips under segment-granular caches (core.SegmentAware).
	eff map[media.ClipID]media.Bytes

	// scan disables the ordered index and restores the original O(n)
	// linear-scan victim selection (the differential-test baseline).
	scan bool
	idx  *prioindex.Index
	out  []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// New returns a GDSP policy. cost nil means ByteHitCost (the configuration
// the paper's Section 1 remark refers to); beta <= 0 means DefaultBeta.
func New(cost CostFunc, beta float64, seed uint64) (*Policy, error) {
	if cost == nil {
		cost = ByteHitCost
	}
	if beta <= 0 {
		beta = DefaultBeta
	}
	if math.IsNaN(beta) || math.IsInf(beta, 0) {
		return nil, fmt.Errorf("gdsp: beta must be finite, got %v", beta)
	}
	return &Policy{
		cost: cost,
		beta: beta,
		seed: seed,
		src:  randutil.NewSource(seed),
		h:    make(map[media.ClipID]float64),
		freq: make(map[media.ClipID]uint64),
		eff:  make(map[media.ClipID]media.Bytes),
		idx:  prioindex.New(),
	}, nil
}

// Scan switches the policy to the original O(n) linear-scan victim
// selection; decisions are identical either way.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// MustNew is like New but panics on error.
func MustNew(cost CostFunc, beta float64, seed uint64) *Policy {
	p, err := New(cost, beta, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "GDS-Popularity" }

// Inflation returns the inflation value L.
func (p *Policy) Inflation() float64 { return p.inflation }

// Freq returns the long-run reference count of a clip.
func (p *Policy) Freq(id media.ClipID) uint64 { return p.freq[id] }

// sizeOf returns the bytes a clip occupies for ranking: its resident byte
// total when a segmented cache reported one, the full clip size otherwise.
func (p *Policy) sizeOf(c media.Clip) float64 {
	if b, ok := p.eff[c.ID]; ok {
		return float64(b)
	}
	return float64(c.Size)
}

// priority computes L + f^β·cost/size, with size the occupied (resident)
// bytes under segment-granular caches.
func (p *Policy) priority(c media.Clip) float64 {
	f := float64(p.freq[c.ID])
	return p.inflation + math.Pow(f, p.beta)*p.cost(c)/p.sizeOf(c)
}

// OnResidentBytes implements core.SegmentAware: re-rank the clip under its
// new resident byte total.
func (p *Policy) OnResidentBytes(clip media.Clip, resident media.Bytes, _ vtime.Time) {
	if resident > 0 && resident < clip.Size {
		p.eff[clip.ID] = resident
	} else {
		delete(p.eff, clip.ID)
	}
	if _, tracked := p.h[clip.ID]; tracked {
		p.rekey(clip, p.priority(clip))
	}
}

// Record implements core.Policy: every reference (hit or miss) advances the
// popularity count; hits refresh the stored priority.
func (p *Policy) Record(clip media.Clip, _ vtime.Time, hit bool) {
	p.freq[clip.ID]++
	if hit {
		p.rekey(clip, p.priority(clip))
	}
}

// rekey stores a clip's priority and, in indexed mode, moves its index entry
// under the new key.
func (p *Policy) rekey(clip media.Clip, h float64) {
	if !p.scan {
		if old, ok := p.h[clip.ID]; ok {
			p.idx.Delete(prioindex.Key{P: old, ID: clip.ID})
		}
		p.idx.Put(prioindex.Key{P: h, ID: clip.ID}, clip)
	}
	p.h[clip.ID] = h
}

// Admit implements core.Policy.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: minimum-priority victim, random among
// exact ties, L rises to the evicted priority. In indexed mode (the default)
// the minimum and its ties come from the ordered index; the returned slice
// is reused across calls.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, _ media.Bytes, _ vtime.Time) []media.ClipID {
	if p.scan {
		return p.victimsScan(view)
	}
	if p.idx.Len() != view.NumResident() {
		view.ForEachResident(func(c media.Clip) bool {
			if _, ok := p.h[c.ID]; !ok {
				p.rekey(c, p.priority(c))
			}
			return true
		})
	}
	minH, ties, ok := p.idx.MinTies()
	if !ok {
		return nil
	}
	p.inflation = minH
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	p.out = append(p.out[:0], victim)
	return p.out
}

// victimsScan is the original O(n) selection over the resident set.
func (p *Policy) victimsScan(view core.ResidentView) []media.ClipID {
	var (
		minH  float64
		ties  []media.ClipID
		found bool
	)
	for c := range view.Residents() {
		h, ok := p.h[c.ID]
		if !ok {
			h = p.priority(c)
			p.h[c.ID] = h
		}
		switch {
		case !found || h < minH:
			minH, ties, found = h, ties[:0], true
			ties = append(ties, c.ID)
		case h == minH:
			ties = append(ties, c.ID)
		}
	}
	if !found {
		return nil
	}
	p.inflation = minH
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	return []media.ClipID{victim}
}

// OnInsert implements core.Policy.
func (p *Policy) OnInsert(clip media.Clip, _ vtime.Time) {
	p.rekey(clip, p.priority(clip))
}

// OnEvict implements core.Policy: popularity survives eviction.
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	if h, ok := p.h[id]; ok && !p.scan {
		p.idx.Delete(prioindex.Key{P: h, ID: id})
	}
	delete(p.h, id)
	delete(p.eff, id)
}

// Reset implements core.Policy.
func (p *Policy) Reset() {
	p.inflation = 0
	p.h = make(map[media.ClipID]float64)
	p.freq = make(map[media.ClipID]uint64)
	p.eff = make(map[media.ClipID]media.Bytes)
	p.idx.Reset()
	p.src = randutil.NewSource(p.seed)
}

// Package blocklru implements the naive block-partitioned technique the
// paper sketches in footnote 3 and rules out in the discussion of
// Figure 5.a: partition both the cache and every clip into equi-sized
// blocks, and manage the cached blocks with LRU-K.
//
// A clip request is a cache hit only when every one of its blocks is
// resident; otherwise the missing blocks are fetched, evicting the blocks
// with the maximum backward-K distance. The technique wastes space when the
// block size exceeds a clip size (the final block of each clip occupies a
// whole block slot regardless of the clip's tail length) and its
// bookkeeping grows with the block count — the tradeoffs the block-size
// ablation bench quantifies.
//
// Victim selection uses a lazy-deletion min-heap over block eviction keys:
// each reference pushes a fresh heap entry and bumps the block's version, so
// stale entries are skipped on pop. The heap is compacted when stale entries
// dominate, keeping memory proportional to the resident-block count. This
// matters because the paper's repository holds multi-gigabyte clips: with
// 1 MB blocks a single video spans thousands of blocks and a linear victim
// scan per eviction would be quadratic.
//
// Because residency is block-grained, this cache does not implement
// core.Policy; it provides the same Request/Stats surface as core.Cache and
// plugs into the simulator through sim.Requester.
package blocklru

import (
	"container/heap"
	"fmt"
	"sort"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// blockKey identifies one block of one clip.
type blockKey struct {
	clip  media.ClipID
	index int32
}

// lessKey orders block keys deterministically for tie-breaking.
func lessKey(a, b blockKey) bool {
	if a.clip != b.clip {
		return a.clip < b.clip
	}
	return a.index < b.index
}

// blockState is the LRU-K bookkeeping for one block.
type blockState struct {
	times []vtime.Time // ring of last K reference times
	head  int
	count int
	ver   uint32 // bumped on every reference; stale heap entries mismatch
}

// heapEntry is a snapshot of a block's eviction key at some version.
type heapEntry struct {
	key  blockKey
	ver  uint32
	sort vtime.Time // smaller = better victim
}

// entryHeap is a min-heap of heapEntry ordered by sort key then blockKey.
type entryHeap []heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].sort != h[j].sort {
		return h[i].sort < h[j].sort
	}
	return lessKey(h[i].key, h[j].key)
}
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Cache is a block-partitioned clip cache managed by LRU-K over blocks.
type Cache struct {
	repo      *media.Repository
	blockSize media.Bytes
	capBlocks int
	k         int

	resident map[blockKey]*blockState
	history  map[blockKey]*blockState // retained info for non-resident blocks
	pq       entryHeap
	clock    vtime.Time
	stats    core.Stats
}

// New returns a block-partitioned LRU-K cache with the given total capacity
// and block size. Capacity is rounded down to a whole number of blocks.
func New(repo *media.Repository, capacity, blockSize media.Bytes, k int) (*Cache, error) {
	if repo == nil {
		return nil, fmt.Errorf("blocklru: repository must not be nil")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("blocklru: block size must be positive, got %d", blockSize)
	}
	if k <= 0 {
		return nil, fmt.Errorf("blocklru: K must be positive, got %d", k)
	}
	capBlocks := int(capacity / blockSize)
	if capBlocks <= 0 {
		return nil, fmt.Errorf("blocklru: capacity %v holds no %v blocks", capacity, blockSize)
	}
	return &Cache{
		repo:      repo,
		blockSize: blockSize,
		capBlocks: capBlocks,
		k:         k,
		resident:  make(map[blockKey]*blockState),
		history:   make(map[blockKey]*blockState),
	}, nil
}

// Name returns a display name including the block size and K.
func (c *Cache) Name() string {
	return fmt.Sprintf("Block-LRU-%d(B=%v)", c.k, c.blockSize)
}

// BlocksOf returns the number of blocks clip occupies.
func (c *Cache) BlocksOf(clip media.Clip) int {
	return int((clip.Size + c.blockSize - 1) / c.blockSize)
}

// CapacityBlocks returns the cache capacity in blocks.
func (c *Cache) CapacityBlocks() int { return c.capBlocks }

// blockBytes returns the exact byte length of clip's block index —
// blockSize except for the clip's short last block (and a single-block clip
// smaller than one block, whose only block is that short last block).
func (c *Cache) blockBytes(clip media.Clip, index int32) media.Bytes {
	if rest := clip.Size - media.Bytes(index)*c.blockSize; rest < c.blockSize {
		return rest
	}
	return c.blockSize
}

// ResidentBlocks returns the number of currently cached blocks.
func (c *Cache) ResidentBlocks() int { return len(c.resident) }

// WastedBytes returns the internal fragmentation: bytes of block slots
// occupied beyond the actual clip bytes they hold.
func (c *Cache) WastedBytes() media.Bytes {
	var wasted media.Bytes
	for key := range c.resident {
		clip := c.repo.Clip(key.clip)
		if int(key.index) == c.BlocksOf(clip)-1 {
			tail := clip.Size % c.blockSize
			if tail != 0 {
				wasted += c.blockSize - tail
			}
		}
	}
	return wasted
}

// Stats returns the accumulated request statistics. Byte counters use clip
// sizes, consistent with core.Cache.
func (c *Cache) Stats() core.Stats { return c.stats }

// Now returns the virtual clock.
func (c *Cache) Now() vtime.Time { return c.clock }

// observe records a reference to a resident block at time now and refreshes
// its heap entry.
func (c *Cache) observe(key blockKey, st *blockState, now vtime.Time) {
	if st.times == nil {
		st.times = make([]vtime.Time, c.k)
	}
	st.head = (st.head + 1) % c.k
	st.times[st.head] = now
	if st.count < c.k {
		st.count++
	}
	st.ver++
	heap.Push(&c.pq, heapEntry{key: key, ver: st.ver, sort: c.evictionKey(st)})
	c.maybeCompact()
}

// evictionKey returns the LRU-K ordering key of a block: the time of its
// K-th most recent reference (older is a better victim). Blocks with
// incomplete histories rank by most recent reference minus a large bias so
// they are evicted first, among themselves in LRU order.
func (c *Cache) evictionKey(st *blockState) vtime.Time {
	if st.count < c.k {
		const bias = vtime.Time(1) << 40
		return st.times[st.head] - bias
	}
	return st.times[(st.head+1)%c.k]
}

// maybeCompact rebuilds the heap when stale entries dominate, bounding
// memory at a small multiple of the resident-block count.
func (c *Cache) maybeCompact() {
	if len(c.pq) < 1024 || len(c.pq) < 3*len(c.resident) {
		return
	}
	fresh := c.pq[:0]
	for _, e := range c.pq {
		if st, ok := c.resident[e.key]; ok && st.ver == e.ver {
			fresh = append(fresh, e)
		}
	}
	c.pq = fresh
	heap.Init(&c.pq)
}

// Request services a reference to clip id. The outcome is Hit only when all
// of the clip's blocks are resident.
func (c *Cache) Request(id media.ClipID) (core.Outcome, error) {
	clip, ok := c.repo.Lookup(id)
	if !ok {
		return core.MissBypassed, fmt.Errorf("%w: id %d", core.ErrUnknownClip, id)
	}
	c.clock++
	now := c.clock
	nBlocks := c.BlocksOf(clip)

	missing := make([]blockKey, 0, 4)
	for i := 0; i < nBlocks; i++ {
		key := blockKey{clip: id, index: int32(i)}
		if st, ok := c.resident[key]; ok {
			c.observe(key, st, now)
		} else {
			missing = append(missing, key)
		}
	}

	c.stats.Requests++
	c.stats.BytesReferenced += clip.Size
	if len(missing) == 0 {
		c.stats.Hits++
		c.stats.BytesHit += clip.Size
		return core.Hit, nil
	}
	// Partial hits still save the resident fraction of the clip's bytes.
	// Sum the missing blocks' exact sizes (the last block of a clip is
	// short) rather than splitting clip.Size proportionally: the truncating
	// proportional split dropped bytes, breaking the conservation identity
	// BytesHit + BytesFetched == BytesReferenced (e.g. a 10-byte clip in
	// three 4-byte blocks with one resident split 3 + 6 = 9).
	var missingBytes media.Bytes
	for _, key := range missing {
		missingBytes += c.blockBytes(clip, key.index)
	}
	c.stats.BytesHit += clip.Size - missingBytes
	c.stats.BytesFetched += missingBytes

	if nBlocks > c.capBlocks {
		// The clip cannot fully fit; stream it without caching, like
		// core.Cache's MissTooLarge.
		c.stats.Bypassed++
		return core.MissTooLarge, nil
	}

	// Make room for all missing blocks up front, then insert them.
	c.evictUntil(c.capBlocks-len(missing), id)
	for _, key := range missing {
		st := c.history[key]
		if st == nil {
			st = &blockState{}
		} else {
			delete(c.history, key)
		}
		c.resident[key] = st
		c.observe(key, st, now)
	}
	return core.MissCached, nil
}

// evictUntil evicts LRU-K victim blocks until at most max blocks are
// resident, never evicting blocks of the incoming clip.
func (c *Cache) evictUntil(max int, incoming media.ClipID) {
	var skipped []heapEntry
	for len(c.resident) > max && len(c.pq) > 0 {
		e := heap.Pop(&c.pq).(heapEntry)
		st, ok := c.resident[e.key]
		if !ok || st.ver != e.ver {
			continue // stale entry
		}
		if e.key.clip == incoming {
			skipped = append(skipped, e)
			continue
		}
		c.history[e.key] = st
		delete(c.resident, e.key)
		c.stats.Evictions++
		// Account the block's exact bytes: a clip's short last block (or a
		// single-block clip smaller than one block) frees less than a full
		// block slot.
		c.stats.BytesEvicted += c.blockBytes(c.repo.Clip(e.key.clip), e.key.index)
	}
	for _, e := range skipped {
		heap.Push(&c.pq, e)
	}
}

// ResidentClipIDs returns the ids of clips that are fully resident, in
// ascending order.
func (c *Cache) ResidentClipIDs() []media.ClipID {
	counts := make(map[media.ClipID]int)
	for key := range c.resident {
		counts[key.clip]++
	}
	var ids []media.ClipID
	for id, n := range counts {
		if n == c.BlocksOf(c.repo.Clip(id)) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TheoreticalHitRate returns Σ f_id over fully resident clips, mirroring
// core.Cache.
func (c *Cache) TheoreticalHitRate(pmf []float64) float64 {
	var sum float64
	for _, id := range c.ResidentClipIDs() {
		if i := int(id) - 1; i >= 0 && i < len(pmf) {
			sum += pmf[i]
		}
	}
	return sum
}

// Reset clears all residency, history, statistics and the clock.
func (c *Cache) Reset() {
	c.resident = make(map[blockKey]*blockState)
	c.history = make(map[blockKey]*blockState)
	c.pq = nil
	c.clock = 0
	c.stats = core.Stats{}
}

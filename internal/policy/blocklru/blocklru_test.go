package blocklru

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func repo(t *testing.T) *media.Repository {
	t.Helper()
	r, err := media.NewRepository([]media.Clip{
		{ID: 1, Size: 25}, // 3 blocks at B=10 (5 wasted)
		{ID: 2, Size: 10}, // 1 block
		{ID: 3, Size: 20}, // 2 blocks
		{ID: 4, Size: 95}, // 10 blocks
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	r := repo(t)
	if _, err := New(nil, 100, 10, 2); err == nil {
		t.Error("nil repo should fail")
	}
	if _, err := New(r, 100, 0, 2); err == nil {
		t.Error("zero block size should fail")
	}
	if _, err := New(r, 100, 10, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(r, 5, 10, 2); err == nil {
		t.Error("capacity smaller than one block should fail")
	}
	if _, err := New(r, 100, 10, 2); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestNameAndBlocksOf(t *testing.T) {
	c, _ := New(repo(t), 100, 10, 2)
	if c.Name() != "Block-LRU-2(B=10B)" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.BlocksOf(media.Clip{Size: 25}) != 3 {
		t.Fatal("25 bytes = 3 blocks of 10")
	}
	if c.BlocksOf(media.Clip{Size: 30}) != 3 {
		t.Fatal("30 bytes = 3 blocks of 10")
	}
	if c.CapacityBlocks() != 10 {
		t.Fatalf("capacity blocks = %d", c.CapacityBlocks())
	}
}

func TestHitRequiresAllBlocks(t *testing.T) {
	c, _ := New(repo(t), 40, 10, 1)
	out, err := c.Request(1) // 3 blocks, all miss
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	out, _ = c.Request(1)
	if out != core.Hit {
		t.Fatalf("full residency should hit, got %v", out)
	}
	if c.ResidentBlocks() != 3 {
		t.Fatalf("resident blocks = %d", c.ResidentBlocks())
	}
}

func TestUnknownClip(t *testing.T) {
	c, _ := New(repo(t), 40, 10, 1)
	if _, err := c.Request(99); err == nil {
		t.Fatal("unknown clip should error")
	}
}

func TestTooLargeClipBypassed(t *testing.T) {
	c, _ := New(repo(t), 40, 10, 1) // 4 blocks capacity
	out, err := c.Request(4)        // needs 10 blocks
	if err != nil {
		t.Fatal(err)
	}
	if out != core.MissTooLarge {
		t.Fatalf("out = %v", out)
	}
	if c.ResidentBlocks() != 0 {
		t.Fatal("oversized clip must not be cached")
	}
}

func TestEvictionAtBlockGranularity(t *testing.T) {
	c, _ := New(repo(t), 40, 10, 1) // 4 blocks
	c.Request(1)                    // 3 blocks of clip 1
	c.Request(2)                    // 1 block of clip 2: cache full
	c.Request(3)                    // 2 blocks: evict 2 LRU blocks (clip 1's)
	out, _ := c.Request(3)
	if out != core.Hit {
		t.Fatal("clip 3 should now be fully resident")
	}
	out, _ = c.Request(1)
	if out == core.Hit {
		t.Fatal("clip 1 lost blocks and cannot fully hit")
	}
}

func TestPartialHitByteAccounting(t *testing.T) {
	c, _ := New(repo(t), 40, 10, 1)
	c.Request(1) // 3 blocks resident
	c.Request(2)
	c.Request(3) // evicts 2 of clip 1's blocks
	before := c.Stats().BytesHit
	c.Request(1) // partial: some blocks still resident
	after := c.Stats().BytesHit
	if after <= before {
		t.Fatal("partial residency should still credit byte hits")
	}
	if after-before >= 25 {
		t.Fatal("partial hit must credit less than the full clip")
	}
}

func TestWastedBytes(t *testing.T) {
	c, _ := New(repo(t), 100, 10, 1)
	c.Request(1) // 25 bytes in 3 blocks: tail block wastes 5
	if got := c.WastedBytes(); got != 5 {
		t.Fatalf("wasted = %d, want 5", got)
	}
	c.Request(2) // exact fit: no extra waste
	if got := c.WastedBytes(); got != 5 {
		t.Fatalf("wasted = %d, want 5", got)
	}
}

func TestIncomingClipBlocksNeverEvicted(t *testing.T) {
	// A clip as large as the whole cache must not evict its own blocks
	// while loading.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 40},
		{ID: 2, Size: 10},
	})
	c, _ := New(r, 40, 10, 1)
	c.Request(2)
	out, err := c.Request(1) // exactly 4 blocks = capacity
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	out, _ = c.Request(1)
	if out != core.Hit {
		t.Fatal("clip 1 should be fully resident")
	}
}

func TestResidentClipIDsAndTheoreticalHitRate(t *testing.T) {
	c, _ := New(repo(t), 60, 10, 1)
	c.Request(1)
	c.Request(2)
	ids := c.ResidentClipIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("resident clips = %v", ids)
	}
	pmf := []float64{0.4, 0.3, 0.2, 0.1}
	if got := c.TheoreticalHitRate(pmf); got != 0.7 {
		t.Fatalf("theoretical = %v", got)
	}
}

func TestLRUKOrderOnBlocks(t *testing.T) {
	// With K=2 the victim block is the one whose 2nd-last reference is
	// oldest; single-reference blocks go first.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
	})
	c, _ := New(r, 20, 10, 2)
	c.Request(1)
	c.Request(1) // clip 1 block has full history
	c.Request(2) // single ref
	c.Request(3) // victim: clip 2's block (incomplete history)
	if out, _ := c.Request(1); out != core.Hit {
		t.Fatal("clip 1 should survive")
	}
	if out, _ := c.Request(2); out == core.Hit {
		t.Fatal("clip 2 should have been evicted")
	}
}

func TestStatsAndReset(t *testing.T) {
	c, _ := New(repo(t), 60, 10, 1)
	c.Request(1)
	c.Request(1)
	s := c.Stats()
	if s.Requests != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if c.Now() != 2 {
		t.Fatalf("clock = %d", c.Now())
	}
	c.Reset()
	if c.Stats().Requests != 0 || c.ResidentBlocks() != 0 || c.Now() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHistoryRetainedAcrossBlockEviction(t *testing.T) {
	// Retained info: a block's history survives eviction, so a quickly
	// re-referenced block has full LRU-2 history.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
	})
	c, _ := New(r, 20, 10, 2)
	c.Request(1)
	c.Request(1)
	c.Request(2)
	c.Request(3) // evicts clip 2's block (single ref)
	c.Request(2) // re-fetch: history should now show 2 refs
	// Evict someone: clip 2 has full history now; the single-ref block of
	// clip 3 ages out first on the next insertion.
	c.Request(1) // hit or miss depending; just ensure no panic and invariants
	if c.ResidentBlocks() > c.CapacityBlocks() {
		t.Fatal("over capacity")
	}
}

// TestShortLastBlockByteSplit pins the exact-byte partial-hit accounting: a
// 10-byte clip in 4-byte blocks has blocks of 4, 4 and 2 bytes, and the
// resident/fetched split must sum block sizes, not truncate a proportional
// share of the clip (which dropped bytes and broke the conservation
// identity BytesHit + BytesFetched == BytesReferenced).
func TestShortLastBlockByteSplit(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, // blocks 4, 4, 2
		{ID: 2, Size: 8},  // blocks 4, 4
	})
	c, _ := New(r, 16, 4, 1)
	c.Request(1) // cold: fetch all 10 bytes
	c.Request(2) // evicts clip 1's block 0 (oldest, lowest key)
	out, err := c.Request(1)
	if err != nil {
		t.Fatal(err)
	}
	if out != core.MissCached {
		t.Fatalf("partial re-request outcome = %v", out)
	}
	s := c.Stats()
	if want := media.Bytes(6); s.BytesHit != want {
		t.Errorf("BytesHit = %v, want %v (blocks 1 and 2: 4+2 bytes)", s.BytesHit, want)
	}
	if want := media.Bytes(22); s.BytesFetched != want {
		t.Errorf("BytesFetched = %v, want %v (10 + 8 + refetched block 0)", s.BytesFetched, want)
	}
	if s.BytesHit+s.BytesFetched != s.BytesReferenced {
		t.Errorf("conservation broken: hit %v + fetched %v != referenced %v",
			s.BytesHit, s.BytesFetched, s.BytesReferenced)
	}
}

// TestSingleBlockClipEviction pins eviction accounting for a clip occupying
// one (short) block: the freed bytes are the clip's size, not a full block
// slot.
func TestSingleBlockClipEviction(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 3}, // one short block at B=4
		{ID: 2, Size: 4}, // one full block
	})
	c, _ := New(r, 4, 4, 1)
	c.Request(1)
	out, err := c.Request(2) // must evict clip 1's only block
	if err != nil {
		t.Fatal(err)
	}
	if out != core.MissCached {
		t.Fatalf("outcome = %v", out)
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if want := media.Bytes(3); s.BytesEvicted != want {
		t.Errorf("BytesEvicted = %v, want %v (the short block's exact bytes)", s.BytesEvicted, want)
	}
	if c.ResidentBlocks() != 1 {
		t.Errorf("resident blocks = %d, want 1", c.ResidentBlocks())
	}
	if s.BytesHit+s.BytesFetched != s.BytesReferenced {
		t.Errorf("conservation broken: hit %v + fetched %v != referenced %v",
			s.BytesHit, s.BytesFetched, s.BytesReferenced)
	}
}

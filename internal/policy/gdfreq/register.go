package gdfreq

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name: "gdfreq",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(nil, cfg.Seed), nil
		},
	})
}

// Package gdfreq implements GreedyDual-Freq, the frequency-extended
// GreedyDual of Cherkasova and Ciardo (HiPC 2001) that the paper compares
// against IGD in Section 4.2 and Figure 7.
//
// GreedyDual-Freq changes GreedyDual's priority to
//
//	H = L + nref(x) · cost / size(x)
//
// where nref(x) counts the references to clip x since it became cache
// resident. nref is forgotten when the clip is swapped out. Because nref is
// monotonically non-decreasing while a clip stays resident, the technique
// adapts poorly to evolving access patterns — previously popular clips keep
// large priorities — which is exactly the weakness IGD's interval-based
// aging repairs (Figure 7).
package gdfreq

import (
	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/prioindex"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// CostFunc assigns the fetch cost of a clip; nil means cost ≡ 1.
type CostFunc func(media.Clip) float64

// Policy is the GreedyDual-Freq technique. It implements core.Policy.
type Policy struct {
	cost CostFunc
	seed uint64
	src  *randutil.Source

	inflation float64
	h         map[media.ClipID]float64
	nref      map[media.ClipID]uint64
	// eff overrides a clip's size with its resident byte total for partially
	// resident clips under segment-granular caches (core.SegmentAware).
	eff map[media.ClipID]media.Bytes

	// scan disables the ordered index and restores the original O(n)
	// linear-scan victim selection (the differential-test baseline).
	scan bool
	idx  *prioindex.Index
	out  []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// New returns a GreedyDual-Freq policy with the given cost function (nil
// means cost ≡ 1) and tie-break seed.
func New(cost CostFunc, seed uint64) *Policy {
	if cost == nil {
		cost = func(media.Clip) float64 { return 1 }
	}
	return &Policy{
		cost: cost,
		seed: seed,
		src:  randutil.NewSource(seed),
		h:    make(map[media.ClipID]float64),
		nref: make(map[media.ClipID]uint64),
		eff:  make(map[media.ClipID]media.Bytes),
		idx:  prioindex.New(),
	}
}

// Scan switches the policy to the original O(n) linear-scan victim
// selection; decisions are identical either way.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// Name implements core.Policy.
func (p *Policy) Name() string { return "GreedyDual-Freq" }

// Inflation returns the current inflation value L.
func (p *Policy) Inflation() float64 { return p.inflation }

// NRef returns the reference count of a resident clip since it became cache
// resident (0 for non-resident clips).
func (p *Policy) NRef(id media.ClipID) uint64 { return p.nref[id] }

// sizeOf returns the bytes a clip occupies for ranking: its resident byte
// total when a segmented cache reported one, the full clip size otherwise.
func (p *Policy) sizeOf(c media.Clip) float64 {
	if b, ok := p.eff[c.ID]; ok {
		return float64(b)
	}
	return float64(c.Size)
}

// priority computes L + nref·cost/size for a resident clip, with size the
// occupied (resident) bytes under segment-granular caches.
func (p *Policy) priority(c media.Clip) float64 {
	return p.inflation + float64(p.nref[c.ID])*p.cost(c)/p.sizeOf(c)
}

// OnResidentBytes implements core.SegmentAware: re-rank the clip under its
// new resident byte total.
func (p *Policy) OnResidentBytes(clip media.Clip, resident media.Bytes, _ vtime.Time) {
	if resident > 0 && resident < clip.Size {
		p.eff[clip.ID] = resident
	} else {
		delete(p.eff, clip.ID)
	}
	if _, tracked := p.h[clip.ID]; tracked {
		p.rekey(clip, p.priority(clip))
	}
}

// Record implements core.Policy: a hit increments nref and restores the
// priority at the current inflation.
func (p *Policy) Record(clip media.Clip, _ vtime.Time, hit bool) {
	if hit {
		p.nref[clip.ID]++
		p.rekey(clip, p.priority(clip))
	}
}

// rekey stores a clip's priority and, in indexed mode, moves its index entry
// under the new key.
func (p *Policy) rekey(clip media.Clip, h float64) {
	if !p.scan {
		if old, ok := p.h[clip.ID]; ok {
			p.idx.Delete(prioindex.Key{P: old, ID: clip.ID})
		}
		p.idx.Put(prioindex.Key{P: h, ID: clip.ID}, clip)
	}
	p.h[clip.ID] = h
}

// Admit implements core.Policy.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: evict one minimum-priority clip per call,
// ties broken uniformly at random, raising L to the evicted priority. In
// indexed mode (the default) the minimum and its ties come from the ordered
// index; the returned slice is reused across calls.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, _ media.Bytes, _ vtime.Time) []media.ClipID {
	if p.scan {
		return p.victimsScan(view)
	}
	if p.idx.Len() != view.NumResident() {
		view.ForEachResident(func(c media.Clip) bool {
			if _, ok := p.h[c.ID]; !ok {
				p.nref[c.ID] = 1
				p.rekey(c, p.priority(c))
			}
			return true
		})
	}
	minH, ties, ok := p.idx.MinTies()
	if !ok {
		return nil
	}
	p.inflation = minH
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	p.out = append(p.out[:0], victim)
	return p.out
}

// victimsScan is the original O(n) selection over the resident set.
func (p *Policy) victimsScan(view core.ResidentView) []media.ClipID {
	var (
		minH  float64
		ties  []media.ClipID
		found bool
	)
	for c := range view.Residents() {
		h, ok := p.h[c.ID]
		if !ok {
			p.nref[c.ID] = 1
			h = p.priority(c)
			p.h[c.ID] = h
		}
		switch {
		case !found || h < minH:
			minH, ties, found = h, ties[:0], true
			ties = append(ties, c.ID)
		case h == minH:
			ties = append(ties, c.ID)
		}
	}
	if !found {
		return nil
	}
	p.inflation = minH
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	return []media.ClipID{victim}
}

// OnInsert implements core.Policy: nref starts at 1, counting the inserting
// reference.
func (p *Policy) OnInsert(clip media.Clip, _ vtime.Time) {
	p.nref[clip.ID] = 1
	p.rekey(clip, p.priority(clip))
}

// OnEvict implements core.Policy: the reference count is forgotten, as in
// Cherkasova and Ciardo.
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	if h, ok := p.h[id]; ok && !p.scan {
		p.idx.Delete(prioindex.Key{P: h, ID: id})
	}
	delete(p.h, id)
	delete(p.nref, id)
	delete(p.eff, id)
}

// Reset implements core.Policy.
func (p *Policy) Reset() {
	p.inflation = 0
	p.h = make(map[media.ClipID]float64)
	p.nref = make(map[media.ClipID]uint64)
	p.eff = make(map[media.ClipID]media.Bytes)
	p.idx.Reset()
	p.src = randutil.NewSource(p.seed)
}

package gdfreq

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func TestName(t *testing.T) {
	if New(nil, 1).Name() != "GreedyDual-Freq" {
		t.Fatal("name")
	}
}

func TestNRefLifecycle(t *testing.T) {
	p := New(nil, 1)
	clip := media.Clip{ID: 1, Size: 10}
	if p.NRef(1) != 0 {
		t.Fatal("nref must start at 0")
	}
	p.OnInsert(clip, 1)
	if p.NRef(1) != 1 {
		t.Fatal("insert counts the inserting reference")
	}
	p.Record(clip, 2, true)
	p.Record(clip, 3, true)
	if p.NRef(1) != 3 {
		t.Fatalf("nref = %d, want 3", p.NRef(1))
	}
	p.OnEvict(1, 4)
	if p.NRef(1) != 0 {
		t.Fatal("eviction must forget nref")
	}
}

func TestFrequentClipsSurvive(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := New(nil, 1)
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(1)
	c.Request(1) // nref(1) = 3
	c.Request(2) // nref(2) = 1
	c.Request(3) // evict min priority: clip 2
	if c.Resident(2) {
		t.Fatal("low-frequency clip should be the victim")
	}
	if !c.Resident(1) {
		t.Fatal("high-frequency clip must survive")
	}
}

func TestSizeMatters(t *testing.T) {
	// Same frequency: the larger clip has lower nref/size priority.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 100}, {ID: 2, Size: 10}, {ID: 3, Size: 60},
	})
	p := New(nil, 1)
	c, _ := core.New(r, 110, p)
	c.Request(1)
	c.Request(2)
	c.Request(3) // evict clip 1: priority 1/100 < 1/10
	if c.Resident(1) {
		t.Fatal("large clip should be evicted")
	}
}

func TestStalePopularityPersists(t *testing.T) {
	// The GreedyDual-Freq weakness the paper highlights: nref grows
	// monotonically while resident, so a formerly hot clip outprioritizes
	// fresher clips even after going cold.
	r, _ := media.EquiRepository(6, 10)
	p := New(nil, 1)
	c, _ := core.New(r, 20, p)
	for i := 0; i < 50; i++ {
		c.Request(1) // nref(1) = 50
	}
	c.Request(2)
	// Alternate fresh clips; clip 1 should stubbornly stay resident because
	// its priority reflects 50 references.
	for i := 0; i < 20; i++ {
		c.Request(media.ClipID(i%4 + 3))
	}
	if !c.Resident(1) {
		t.Fatal("GreedyDual-Freq should retain the stale-popular clip (its documented weakness)")
	}
}

func TestInflationMonotone(t *testing.T) {
	r, _ := media.EquiRepository(10, 10)
	p := New(nil, 9)
	c, _ := core.New(r, 30, p)
	last := p.Inflation()
	for i := 0; i < 300; i++ {
		c.Request(media.ClipID((i*7)%10 + 1))
		if p.Inflation() < last {
			t.Fatalf("inflation decreased")
		}
		last = p.Inflation()
	}
}

func TestCustomCost(t *testing.T) {
	// Double cost for clip 1 makes it sticky versus an equal-size clip.
	cost := func(c media.Clip) float64 {
		if c.ID == 1 {
			return 2
		}
		return 1
	}
	r, _ := media.EquiRepository(3, 10)
	p := New(cost, 1)
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(2)
	c.Request(3) // priorities: clip1 0.2, clip2 0.1 -> evict 2
	if c.Resident(2) {
		t.Fatal("cheaper clip should be evicted")
	}
	if !c.Resident(1) {
		t.Fatal("expensive clip must survive")
	}
}

func TestResetAndReplay(t *testing.T) {
	r, _ := media.EquiRepository(8, 10)
	p := New(nil, 11)
	c, _ := core.New(r, 30, p)
	seq := make([]media.ClipID, 80)
	for i := range seq {
		seq[i] = media.ClipID((i*5)%8 + 1)
	}
	for _, id := range seq {
		c.Request(id)
	}
	first := core.CollectResidentIDs(c)
	c.Reset()
	if p.Inflation() != 0 {
		t.Fatal("Reset must zero inflation")
	}
	for _, id := range seq {
		c.Request(id)
	}
	second := core.CollectResidentIDs(c)
	if len(first) != len(second) {
		t.Fatal("replay diverged")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("replay diverged")
		}
	}
}

func TestWarmAdoption(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := New(nil, 2)
	c, _ := core.New(r, 20, p)
	c.Warm([]media.ClipID{1, 2})
	out, err := c.Request(3)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestAdmit(t *testing.T) {
	if !New(nil, 1).Admit(media.Clip{ID: 1, Size: 1}, 1) {
		t.Fatal("always admits")
	}
}

// Package belady implements a clairvoyant (Belady/MIN-style) baseline: the
// policy is given the entire future reference string and evicts the
// resident clip whose next reference lies furthest in the future.
//
// The paper's off-line yardstick is Simple, which knows frequencies but not
// the actual future. Belady's rule knows the future itself, bounding what
// any on-line technique could achieve. Two variants are provided:
//
//   - Classic: evict the maximum next-reference distance (optimal for
//     equi-sized clips; with variable sizes it is only a heuristic —
//     size-aware optimal replacement is NP-hard);
//   - SizeAware: evict the maximum distance × size, the oracle analog of
//     LRU-SK's criterion, which packs small soon-needed clips preferentially.
//
// A Policy must be driven by exactly the reference string it was built
// from (sim.RunTrace with the same trace); it tracks its position through
// Record and derives each clip's next use from precomputed occurrence
// queues.
package belady

import (
	"fmt"
	"math"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
)

// Variant selects the eviction rule.
type Variant uint8

// Variants.
const (
	// Classic evicts the furthest next reference.
	Classic Variant = iota
	// SizeAware evicts the maximum next-reference distance × size.
	SizeAware
)

// Policy is the clairvoyant baseline. It implements core.Policy.
type Policy struct {
	variant Variant
	trace   []media.ClipID
	// occurrences[id] holds the remaining positions (0-based) at which id
	// appears, in order; the head is the clip's next use.
	occurrences map[media.ClipID][]int32
	pos         int
}

var _ core.Policy = (*Policy)(nil)

// New builds a clairvoyant policy for the given trace.
func New(trace *workload.Trace, variant Variant) (*Policy, error) {
	if trace == nil {
		return nil, fmt.Errorf("belady: trace must not be nil")
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	if variant != Classic && variant != SizeAware {
		return nil, fmt.Errorf("belady: unknown variant %d", variant)
	}
	p := &Policy{
		variant:     variant,
		trace:       append([]media.ClipID(nil), trace.Requests...),
		occurrences: make(map[media.ClipID][]int32),
	}
	for i, id := range p.trace {
		p.occurrences[id] = append(p.occurrences[id], int32(i))
	}
	return p, nil
}

// MustNew is like New but panics on error.
func MustNew(trace *workload.Trace, variant Variant) *Policy {
	p, err := New(trace, variant)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string {
	if p.variant == SizeAware {
		return "Belady(size-aware)"
	}
	return "Belady"
}

// Record implements core.Policy: it advances the oracle's position. The
// reference must match the trace the policy was built from.
func (p *Policy) Record(clip media.Clip, _ vtime.Time, _ bool) {
	if p.pos < len(p.trace) && p.trace[p.pos] == clip.ID {
		// Consume this occurrence: the clip's next use moves forward.
		occ := p.occurrences[clip.ID]
		if len(occ) > 0 && int(occ[0]) == p.pos {
			p.occurrences[clip.ID] = occ[1:]
		}
		p.pos++
		return
	}
	// Off-trace reference: the oracle has no knowledge of it. Advance
	// position anyway so subsequent distances stay monotone.
	p.pos++
}

// NextUse returns the distance (in requests) from the current position to
// the clip's next reference, or +Inf if it never appears again.
func (p *Policy) NextUse(id media.ClipID) float64 {
	occ := p.occurrences[id]
	if len(occ) == 0 {
		return math.Inf(1)
	}
	return float64(int(occ[0]) - p.pos + 1)
}

// Admit implements core.Policy: a clip that is never referenced again is
// not worth caching.
func (p *Policy) Admit(clip media.Clip, _ vtime.Time) bool {
	return !math.IsInf(p.NextUse(clip.ID), 1)
}

// Victims implements core.Policy: evict the resident clips with the
// furthest (optionally size-weighted) next use until need bytes are freed.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	resident := core.CollectResidents(view)
	taken := make(map[media.ClipID]bool, len(resident))
	var out []media.ClipID
	var freed media.Bytes
	for freed < need && len(out) < len(resident) {
		best := -1
		var bestScore float64
		for i, c := range resident {
			if taken[c.ID] {
				continue
			}
			score := p.NextUse(c.ID)
			if p.variant == SizeAware && !math.IsInf(score, 1) {
				score *= float64(c.Size)
			}
			better := false
			switch {
			case best == -1:
				better = true
			case math.IsInf(score, 1) && math.IsInf(bestScore, 1):
				// Both never used again: free the larger clip first.
				if c.Size != resident[best].Size {
					better = c.Size > resident[best].Size
				} else {
					better = c.ID < resident[best].ID
				}
			case score != bestScore:
				better = score > bestScore
			default:
				better = c.ID < resident[best].ID
			}
			if better {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			break
		}
		c := resident[best]
		taken[c.ID] = true
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// OnInsert implements core.Policy.
func (p *Policy) OnInsert(media.Clip, vtime.Time) {}

// OnEvict implements core.Policy.
func (p *Policy) OnEvict(media.ClipID, vtime.Time) {}

// Reset implements core.Policy: the oracle rewinds to the trace start.
func (p *Policy) Reset() {
	p.pos = 0
	p.occurrences = make(map[media.ClipID][]int32)
	for i, id := range p.trace {
		p.occurrences[id] = append(p.occurrences[id], int32(i))
	}
}

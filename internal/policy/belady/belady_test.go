package belady_test

import (
	"math"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/belady"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/sim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func traceOf(ids ...media.ClipID) *workload.Trace {
	max := media.ClipID(0)
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	return &workload.Trace{Name: "test", NumClips: int(max), Requests: ids}
}

func TestNewValidation(t *testing.T) {
	if _, err := belady.New(nil, belady.Classic); err == nil {
		t.Error("nil trace should fail")
	}
	bad := &workload.Trace{Name: "bad", NumClips: 2, Requests: []media.ClipID{5}}
	if _, err := belady.New(bad, belady.Classic); err == nil {
		t.Error("invalid trace should fail")
	}
	if _, err := belady.New(traceOf(1, 2, 1), belady.Variant(9)); err == nil {
		t.Error("unknown variant should fail")
	}
	if _, err := belady.New(traceOf(1, 2, 1), belady.Classic); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	belady.MustNew(nil, belady.Classic)
}

func TestNames(t *testing.T) {
	tr := traceOf(1, 2)
	if belady.MustNew(tr, belady.Classic).Name() != "Belady" {
		t.Fatal("classic name")
	}
	if belady.MustNew(tr, belady.SizeAware).Name() != "Belady(size-aware)" {
		t.Fatal("size-aware name")
	}
}

func TestTextbookSequence(t *testing.T) {
	// belady.Classic MIN example: 3 equi-sized clips, cache holds 2.
	// Trace: 1 2 3 1 2 3. At the miss on 3 (pos 2), next uses are
	// 1 -> pos 3, 2 -> pos 4: evict 2 (furthest). Then 1 hits, 2 misses
	// (evict 3? next uses: 1 never(inf), 3 -> pos5: evict 1), 3 hits.
	repo, _ := media.EquiRepository(3, 10)
	tr := traceOf(1, 2, 3, 1, 2, 3)
	p := belady.MustNew(tr, belady.Classic)
	c, _ := core.New(repo, 20, p)
	res, err := sim.RunTrace(p.Name(), c, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal on this trace with 2 slots: hits at positions 3 (clip 1) and
	// 5 (clip 3) = 2 hits of 6.
	if res.Stats.Hits != 2 {
		t.Fatalf("hits = %d, want the optimal 2", res.Stats.Hits)
	}
}

func TestAdmitDeclinesNeverAgain(t *testing.T) {
	tr := traceOf(1, 2, 1) // clip 2 appears once only
	p := belady.MustNew(tr, belady.Classic)
	repo, _ := media.EquiRepository(2, 10)
	c, _ := core.New(repo, 10, p)
	res, err := sim.RunTrace(p.Name(), c, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Clip 2's single reference must not displace clip 1: clip 1's second
	// reference hits.
	if res.Stats.Hits != 1 {
		t.Fatalf("hits = %d, want 1", res.Stats.Hits)
	}
	if res.Stats.Bypassed != 1 {
		t.Fatalf("bypassed = %d, want 1 (clip 2 never referenced again)", res.Stats.Bypassed)
	}
}

func TestNextUse(t *testing.T) {
	tr := traceOf(1, 2, 1, 3)
	p := belady.MustNew(tr, belady.Classic)
	// Before any request: clip 1's next use is position 0 -> distance 1.
	if got := p.NextUse(1); got != 1 {
		t.Fatalf("NextUse(1) = %v, want 1", got)
	}
	p.Record(media.Clip{ID: 1, Size: 1}, 1, false)
	// Now at pos 1: clip 1 next at pos 2 -> distance 2.
	if got := p.NextUse(1); got != 2 {
		t.Fatalf("NextUse(1) = %v, want 2", got)
	}
	if !math.IsInf(p.NextUse(99), 1) {
		t.Fatal("unknown clip should be +Inf")
	}
}

func TestResetRewindsOracle(t *testing.T) {
	tr := traceOf(1, 2, 1)
	p := belady.MustNew(tr, belady.Classic)
	repo, _ := media.EquiRepository(2, 10)
	c, _ := core.New(repo, 10, p)
	first, err := sim.RunTrace(p.Name(), c, tr)
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	second, err := sim.RunTrace(p.Name(), c, tr)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Hits != second.Stats.Hits {
		t.Fatal("replay after Reset diverged")
	}
}

// TestBeatsOnlinePolicies: on equi-sized clips, clairvoyance must dominate
// every on-line technique on the identical trace.
func TestBeatsOnlinePolicies(t *testing.T) {
	repo := media.PaperEquiRepository()
	gen := workload.MustNewGenerator(zipf.MustNew(repo.N(), zipf.DefaultMean), 42)
	tr := workload.Record("belady-test", gen, 6000)

	run := func(p core.Policy) float64 {
		c, err := core.New(repo, repo.CacheSizeForRatio(0.1), p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunTrace(p.Name(), c, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.HitRate()
	}
	oracle := run(belady.MustNew(tr, belady.Classic))
	online := run(lruk.MustNew(repo.N(), 2))
	if oracle <= online {
		t.Fatalf("Belady %.4f <= LRU-2 %.4f on equi-sized clips", oracle, online)
	}
}

package dynsimple

import (
	"sort"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// This file holds the indexed victim-selection path, the default since the
// scan's full sort of the resident set per Victims call made catalog-scale
// repositories unusable (the paper's Section 5 future-work item on
// tree-based victim identification).
//
// DYNSimple ranks victims by the estimated byte-freq λ_i/s_i where
// λ_i = count / (now − oldest tracked reference). The rank depends on the
// current time, so no single static order exists — but within one
// (size, tracked-count) class it does: for fixed count m and size s,
// bf = m / ((now − oldest) · s) ascends exactly as oldest ascends,
// independent of now. The index therefore keeps one red-black tree per
// (size, count) class ordered by (oldest, id); the per-class best candidate
// is the tree minimum, and the global phase-1 victim is chosen by comparing
// one candidate per class with the scan's exact comparator (byte-freq asc,
// size desc, id asc). With S distinct sizes and count ≤ K, there are at most
// S·(K+1) classes — for the paper's 6 sizes and K=2, 18 — so selection is
// O(S·K + log n) per victim instead of an O(n log n) sort per call.

// classKey identifies one static-order victim class.
type classKey struct {
	size  media.Bytes
	count int
}

// entryKey orders clips within a class: ascending oldest tracked reference =
// ascending byte-freq; equal oldest means equal byte-freq, where the scan's
// next tie-break (size is equal within a class) is the lower id.
type entryKey struct {
	oldest vtime.Time
	id     media.ClipID
}

func lessEntry(a, b entryKey) bool {
	if a.oldest != b.oldest {
		return a.oldest < b.oldest
	}
	return a.id < b.id
}

// dsLoc records a resident clip's class and key for O(log n) removal.
type dsLoc struct {
	class classKey
	key   entryKey
}

// indexClip inserts a resident clip into its current class tree.
func (p *Policy) indexClip(clip media.Clip) {
	count := p.tracker.Tracked(clip.ID)
	var oldest vtime.Time
	if t, ok := p.tracker.OldestTracked(clip.ID); ok {
		oldest = t
	}
	ck := classKey{size: clip.Size, count: count}
	tree := p.classes[ck]
	if tree == nil {
		tree = rbtree.New[entryKey, media.Clip](lessEntry)
		p.classes[ck] = tree
		p.order = append(p.order, ck)
		// Deterministic class iteration order (the global comparator is
		// total, so this only aids debugging and reproducible profiles).
		sort.Slice(p.order, func(i, j int) bool {
			if p.order[i].size != p.order[j].size {
				return p.order[i].size > p.order[j].size
			}
			return p.order[i].count < p.order[j].count
		})
	}
	key := entryKey{oldest: oldest, id: clip.ID}
	tree.Put(key, clip)
	p.loc[clip.ID] = dsLoc{class: ck, key: key}
}

// unindexClip removes a resident clip from its class tree, if indexed.
func (p *Policy) unindexClip(id media.ClipID) bool {
	loc, ok := p.loc[id]
	if !ok {
		return false
	}
	p.classes[loc.class].Delete(loc.key)
	delete(p.loc, id)
	return true
}

// popBest removes and returns the resident clip with the smallest estimated
// byte-freq, comparing one candidate per class with the scan's comparator.
func (p *Policy) popBest(now vtime.Time) (media.Clip, bool) {
	var (
		best   media.Clip
		bestBF float64
		bestCK classKey
		bestEK entryKey
		found  bool
	)
	for _, ck := range p.order {
		tree := p.classes[ck]
		if tree.Len() == 0 {
			continue
		}
		ek, clip, _ := tree.Min()
		bf := p.ByteFreq(clip, now)
		better := false
		switch {
		case !found:
			better = true
		case bf != bestBF:
			better = bf < bestBF
		case clip.Size != best.Size:
			better = clip.Size > best.Size
		default:
			better = clip.ID < best.ID
		}
		if better {
			best, bestBF, bestCK, bestEK, found = clip, bf, ck, ek, true
		}
	}
	if !found {
		return media.Clip{}, false
	}
	p.classes[bestCK].Delete(bestEK)
	delete(p.loc, best.ID)
	return best, true
}

// victimsIndexed runs Figure 4's two-phase selection against the class
// index: phase 1 pops ascending-byte-freq victims until the incoming clip
// fits, phase 2 re-orders the gathered set by descending size and spares the
// tail once enough space is free. Spared clips stay resident, so their index
// entries are restored; returned victims were already popped, making the
// engine's OnEvict a no-op for them.
func (p *Policy) victimsIndexed(view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	if len(p.loc) != view.NumResident() {
		// A clip became resident without OnInsert (direct warm placement):
		// adopt it under its current history.
		view.ForEachResident(func(c media.Clip) bool {
			if _, ok := p.loc[c.ID]; !ok {
				p.indexClip(c)
			}
			return true
		})
	}
	p.gathered = p.gathered[:0]
	var gatheredBytes media.Bytes
	for gatheredBytes < need {
		c, ok := p.popBest(now)
		if !ok {
			break
		}
		p.gathered = append(p.gathered, c)
		gatheredBytes += c.Size
	}
	p.out = p.out[:0]
	if !p.refine {
		for _, c := range p.gathered {
			p.out = append(p.out, c.ID)
		}
		if len(p.out) == 0 {
			return nil
		}
		return p.out
	}
	sort.Slice(p.gathered, func(i, j int) bool {
		if p.gathered[i].Size != p.gathered[j].Size {
			return p.gathered[i].Size > p.gathered[j].Size
		}
		return p.gathered[i].ID < p.gathered[j].ID
	})
	var freed media.Bytes
	spared := len(p.gathered)
	for i, c := range p.gathered {
		if freed >= need {
			spared = i
			break
		}
		p.out = append(p.out, c.ID)
		freed += c.Size
	}
	for _, c := range p.gathered[spared:] {
		p.indexClip(c)
	}
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}

package dynsimple

import (
	"math"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(576, DefaultK); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 2)
}

func TestNames(t *testing.T) {
	if MustNew(10, 2).Name() != "DYNSimple(K=2)" {
		t.Fatalf("name = %q", MustNew(10, 2).Name())
	}
	if MustNew(10, 32).Name() != "DYNSimple(K=32)" {
		t.Fatal("name K=32")
	}
	if MustNew(10, 2, WithoutRefinement()).Name() != "DYNSimple(K=2,no-refine)" {
		t.Fatal("ablation name")
	}
	if MustNew(10, 2).K() != 2 {
		t.Fatal("K")
	}
}

func TestEvictsLowestEstimatedByteFreq(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
	})
	p := MustNew(3, 2)
	c, _ := core.New(r, 20, p)
	// Clip 1 hot (refs at 1,3), clip 2 colder (ref at 2 only).
	c.Request(1)
	c.Request(2)
	c.Request(1)
	c.Request(3) // must evict clip 2 (lower estimated rate)
	if c.Resident(2) {
		t.Fatal("colder clip 2 should be evicted")
	}
	if !c.Resident(1) || !c.Resident(3) {
		t.Fatalf("resident = %v", core.CollectResidentIDs(c))
	}
}

func TestByteFreqNormalization(t *testing.T) {
	p := MustNew(4, 2)
	clip := media.Clip{ID: 1, Size: 100}
	p.Record(clip, 10, false)
	p.Record(clip, 20, false)
	// rate = 2/(30-10) = 0.1; byte-freq = 0.001.
	if got := p.ByteFreq(clip, 30); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("ByteFreq = %v, want 0.001", got)
	}
}

func TestEstimatedFrequencies(t *testing.T) {
	p := MustNew(3, 2)
	p.Record(media.Clip{ID: 1, Size: 10}, 1, false)
	p.Record(media.Clip{ID: 1, Size: 10}, 3, false)
	p.Record(media.Clip{ID: 2, Size: 10}, 2, false)
	est := p.EstimatedFrequencies(5)
	var sum float64
	for _, e := range est {
		sum += e
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("estimates sum to %v", sum)
	}
	if est[0] <= est[1] {
		t.Fatal("clip 1 has a higher rate and must have a higher estimate")
	}
	if est[2] != 0 {
		t.Fatal("unreferenced clip estimate must be 0")
	}
}

func TestRefinementSparesSmallVictims(t *testing.T) {
	// Construct: incoming needs 50. Candidates in ascending byte-freq:
	// small cold clips first, then one huge clip. Phase 1 gathers the small
	// ones plus the huge one; phase 2 evicts the huge one first and spares
	// the small ones because the huge clip alone covers the need.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, // cold small
		{ID: 2, Size: 10}, // cold small
		{ID: 3, Size: 60}, // slightly less cold but huge
		{ID: 4, Size: 50}, // incoming
	})
	p := MustNew(4, 1)
	c, _ := core.New(r, 85, p)
	// Reference order: 1 (t1), 2 (t2), 3 (t3). Rates at t4:
	// clip1: 1/3, byte-freq 0.033; clip2: 1/2 -> 0.05; clip3: 1/1 -> 0.0167.
	// Ascending byte-freq: clip3 (0.0167), clip1 (0.033), clip2 (0.05).
	c.Request(1)
	c.Request(2)
	c.Request(3)
	// Free = 85-80 = 5; need = 45. Phase 1 gathers clip3 (60) -> enough.
	// Phase 2 evicts clip3 only.
	out, err := c.Request(4)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if c.Resident(3) {
		t.Fatal("huge cold clip 3 should be evicted")
	}
	if !c.Resident(1) || !c.Resident(2) {
		t.Fatal("small clips should be spared")
	}
}

func TestRefinementVsNoRefinement(t *testing.T) {
	// Scenario where phase 1 over-gathers: ascending byte-freq puts two
	// small clips before a large one; the large one alone covers the need,
	// so refinement spares the small ones while no-refinement evicts them.
	build := func(opts ...Option) (*core.Cache, *Policy) {
		r, _ := media.NewRepository([]media.Clip{
			{ID: 1, Size: 10},
			{ID: 2, Size: 10},
			{ID: 3, Size: 40},
			{ID: 4, Size: 45},
		})
		p := MustNew(4, 1, opts...)
		c, _ := core.New(r, 70, p)
		// Make clips 1,2 coldest (oldest), then 3.
		c.Request(1) // t1
		c.Request(2) // t2
		c.Request(3) // t3
		return c, p
	}
	// need = 45 - (70-60) = 35. Ascending byte-freq at t4:
	// clip1: (1/3)/10=0.033, clip2: (1/2)/10=0.05, clip3: (1/1)/40=0.025.
	// Order: 3, 1, 2. Phase 1 gathers clip3 (40 >= 35): only clip3 either way.
	// To force over-gathering, make clip3 warmer: reference it again.
	cRef, _ := build()
	cNo, _ := build(WithoutRefinement())
	for _, c := range []*core.Cache{cRef, cNo} {
		if _, err := c.Request(3); err != nil { // clip3 hot now
			t.Fatal(err)
		}
	}
	// Now rates at t5: clip1 (1/4)/10 = .025, clip2 (1/3)/10 = .033,
	// clip3 (2/3)/40 = .0167? No: clip3 has refs at t3,t4 -> rate 2/(5-3)=1, bf .025.
	// Ascending: clip1 .025, clip3 .025, clip2 .033 — tie between 1 and 3;
	// tie-break prefers larger size: clip3 first. Gathers clip3 (40 >= 35).
	// Same either way again. Simplest robust assertion: both configurations
	// service the request correctly and free enough space.
	for name, c := range map[string]*core.Cache{"refine": cRef, "norefine": cNo} {
		out, err := c.Request(4)
		if err != nil || out != core.MissCached {
			t.Fatalf("%s: out=%v err=%v", name, out, err)
		}
		if c.UsedBytes() > c.Capacity() {
			t.Fatalf("%s: over capacity", name)
		}
	}
}

func TestHistorySurvivesEviction(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
	})
	p := MustNew(3, 2)
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(1)
	c.Request(2)
	c.Request(3) // evicts someone
	if p.Tracker().Count(1) != 2 {
		t.Fatal("non-resident history is DYNSimple's defining feature")
	}
}

func TestAdaptsToShiftedPattern(t *testing.T) {
	// Drive a hot set, then shift the hot set; DYNSimple(K=2) should evict
	// the stale clips within a few hundred requests.
	r, _ := media.EquiRepository(10, 10)
	p := MustNew(10, 2)
	c, _ := core.New(r, 30, p)
	for i := 0; i < 300; i++ {
		c.Request(media.ClipID(i%3 + 1)) // hot: 1,2,3
	}
	if !c.Resident(1) || !c.Resident(2) || !c.Resident(3) {
		t.Fatalf("hot set not resident: %v", core.CollectResidentIDs(c))
	}
	for i := 0; i < 300; i++ {
		c.Request(media.ClipID(i%3 + 4)) // hot: 4,5,6
	}
	if !c.Resident(4) || !c.Resident(5) || !c.Resident(6) {
		t.Fatalf("new hot set not resident after shift: %v", core.CollectResidentIDs(c))
	}
}

func TestAdmitAndReset(t *testing.T) {
	p := MustNew(5, 2)
	if !p.Admit(media.Clip{ID: 1, Size: 1}, 1) {
		t.Fatal("always admits")
	}
	p.Record(media.Clip{ID: 1, Size: 1}, 1, false)
	p.Reset()
	if p.Tracker().Count(1) != 0 {
		t.Fatal("Reset must clear history")
	}
}

package dynsimple_test

// convergence_test.go pins the paper's central claim (Section 4.1,
// Figure 5): on a stationary workload DYNSimple's frequency estimates
// approach the true distribution, so its cache converges toward the one
// the off-line Simple technique builds from perfect knowledge.

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/policy/simple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func TestConvergesToSimpleOnStationaryTrace(t *testing.T) {
	repo := media.PaperRepository()
	gen := workload.MustNewGenerator(zipf.MustNew(repo.N(), zipf.DefaultMean), 11)
	pmf := gen.PMF()
	capacity := repo.CacheSizeForRatio(0.125)

	dyn := dynsimple.MustNew(repo.N(), 2)
	offline := simple.MustNew(pmf)
	dynCache, err := core.New(repo, capacity, dyn)
	if err != nil {
		t.Fatal(err)
	}
	simpleCache, err := core.New(repo, capacity, offline)
	if err != nil {
		t.Fatal(err)
	}

	const warmup, total = 2000, 20000
	var earlyQuality float64
	for i := 0; i < total; i++ {
		id := gen.Next() // identical trace for both caches
		if _, err := dynCache.Request(id); err != nil {
			t.Fatal(err)
		}
		if _, err := simpleCache.Request(id); err != nil {
			t.Fatal(err)
		}
		if i == warmup-1 {
			earlyQuality = history.Quality(dyn.EstimatedFrequencies(dynCache.Now()), pmf)
		}
	}

	// The estimate-quality metric E = sqrt(Σ (f̂-f)²) must improve as the
	// history fills in (Figure 5's downward trend).
	lateQuality := history.Quality(dyn.EstimatedFrequencies(dynCache.Now()), pmf)
	if lateQuality >= earlyQuality {
		t.Errorf("estimate quality did not improve: E=%.4f after %d requests, E=%.4f after %d",
			earlyQuality, warmup, lateQuality, total)
	}

	// The converged cache content must score nearly as well as Simple's
	// under the true distribution...
	dynTheo := dynCache.TheoreticalHitRate(pmf)
	simpleTheo := simpleCache.TheoreticalHitRate(pmf)
	if dynTheo < simpleTheo-0.05 {
		t.Errorf("theoretical hit rate did not converge: DYNSimple %.4f vs Simple %.4f",
			dynTheo, simpleTheo)
	}
	// ...and the realized hit rates must land within a few points of each
	// other (the paper's Figure 6 shows them nearly indistinguishable).
	dynRate := dynCache.Stats().HitRate()
	simpleRate := simpleCache.Stats().HitRate()
	if diff := simpleRate - dynRate; diff > 0.05 || diff < -0.05 {
		t.Errorf("hit rates diverged: DYNSimple %.4f vs Simple %.4f", dynRate, simpleRate)
	}
}

// Package dynsimple implements Dynamic Simple (DYNSimple), the paper's
// primary contribution (Section 4.1, Figure 4).
//
// DYNSimple transforms the off-line Simple technique into an on-line one by
// estimating each clip's frequency of access from its last K reference
// times: the arrival rate of clip i at time t is λ_i = K / Δ_K(i, t), and
// the estimated frequency is f̂_i = λ_i / Σ_j λ_j. Because the normalizing
// sum is common to all clips, victims are ranked directly by the estimated
// byte-freq λ_i / s_i.
//
// Victim selection follows Figure 4's two-phase algorithm:
//
//  1. Sort the resident clips by ascending λ_i/s_i and greedily gather
//     victims until the incoming clip fits.
//  2. Re-sort the gathered victims by descending size and evict in that
//     order, stopping as soon as enough space is free — sparing small
//     low-value clips that turned out not to be needed.
//
// Reference history is kept for all clips, resident or not (the paper
// quantifies the overhead at 4 MB for a million clips with K=2, and proposes
// five-minute-rule style pruning as future work — see package fiverule).
package dynsimple

import (
	"fmt"
	"sort"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// DefaultK is the history depth the paper recommends ("we believe K=2 is
// sufficient in most cases", Section 4.1).
const DefaultK = 2

// Policy is the DYNSimple technique. It implements core.Policy.
type Policy struct {
	k       int
	n       int
	tracker *history.Tracker
	// refine enables Figure 4's second phase. Disabling it is the
	// BenchmarkDYNSimpleRefinement ablation: victims are then evicted in
	// plain ascending byte-freq order.
	refine bool

	// scan disables the class index and restores the original
	// sort-per-Victims-call selection (the differential-test baseline).
	scan     bool
	classes  map[classKey]*rbtree.Tree[entryKey, media.Clip]
	order    []classKey
	loc      map[media.ClipID]dsLoc
	gathered []media.Clip
	out      []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// Option configures a Policy.
type Option func(*Policy)

// WithoutRefinement disables the size-descending victim refinement phase
// (ablation of the Figure 4 pseudo-code's second loop).
func WithoutRefinement() Option {
	return func(p *Policy) { p.refine = false }
}

// New returns a DYNSimple policy for a repository of n clips estimating
// frequencies from the last k references.
func New(n, k int, opts ...Option) (*Policy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dynsimple: repository size must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("dynsimple: K must be positive, got %d", k)
	}
	p := &Policy{
		k:       k,
		n:       n,
		tracker: history.NewTracker(n, k),
		refine:  true,
		classes: make(map[classKey]*rbtree.Tree[entryKey, media.Clip]),
		loc:     make(map[media.ClipID]dsLoc),
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// Scan switches the policy to the original sort-per-call victim selection;
// decisions are identical either way.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// MustNew is like New but panics on error; for experiment setup.
func MustNew(n, k int, opts ...Option) *Policy {
	p, err := New(n, k, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string {
	if !p.refine {
		return fmt.Sprintf("DYNSimple(K=%d,no-refine)", p.k)
	}
	return fmt.Sprintf("DYNSimple(K=%d)", p.k)
}

// K returns the history depth.
func (p *Policy) K() int { return p.k }

// Tracker exposes the underlying reference history.
func (p *Policy) Tracker() *history.Tracker { return p.tracker }

// EstimatedFrequencies returns the current f̂ vector (Section 4.1), indexed
// by clip id-1.
func (p *Policy) EstimatedFrequencies(now vtime.Time) []float64 {
	return p.tracker.EstimatedFrequencies(now)
}

// ByteFreq returns the estimated per-byte access rate λ_i / s_i used to rank
// victims. Normalization by the total arrival rate is omitted since it does
// not affect the ordering.
func (p *Policy) ByteFreq(c media.Clip, now vtime.Time) float64 {
	return p.tracker.Rate(c.ID, now) / float64(c.Size)
}

// Record implements core.Policy. In indexed mode a resident clip is re-keyed
// under its post-reference (count, oldest) class position.
func (p *Policy) Record(clip media.Clip, now vtime.Time, _ bool) {
	if !p.scan && p.unindexClip(clip.ID) {
		p.tracker.Observe(clip.ID, now)
		p.indexClip(clip)
		return
	}
	p.tracker.Observe(clip.ID, now)
}

// Admit implements core.Policy: every referenced clip is materialized
// (Section 2's default assumption).
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy using the two-phase Figure 4 algorithm. In
// indexed mode (the default) phase 1 pops per-class tree minima instead of
// sorting the whole resident set; decisions match the scan exactly.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	if !p.scan {
		return p.victimsIndexed(view, need, now)
	}
	candidates := core.CollectResidents(view)
	// Phase 1: ascending estimated byte-freq; ties prefer the larger clip,
	// then the lower id, keeping runs deterministic.
	sort.Slice(candidates, func(i, j int) bool {
		bi, bj := p.ByteFreq(candidates[i], now), p.ByteFreq(candidates[j], now)
		if bi != bj {
			return bi < bj
		}
		if candidates[i].Size != candidates[j].Size {
			return candidates[i].Size > candidates[j].Size
		}
		return candidates[i].ID < candidates[j].ID
	})
	var victims []media.Clip
	var gathered media.Bytes
	for _, c := range candidates {
		if gathered >= need {
			break
		}
		victims = append(victims, c)
		gathered += c.Size
	}
	if !p.refine {
		out := make([]media.ClipID, len(victims))
		for i, c := range victims {
			out[i] = c.ID
		}
		return out
	}
	// Phase 2: evict in descending size order, stopping once enough space is
	// free so that unneeded small victims are spared.
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Size != victims[j].Size {
			return victims[i].Size > victims[j].Size
		}
		return victims[i].ID < victims[j].ID
	})
	var out []media.ClipID
	var freed media.Bytes
	for _, c := range victims {
		if freed >= need {
			break
		}
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// OnInsert implements core.Policy: the new resident enters the class index.
func (p *Policy) OnInsert(clip media.Clip, _ vtime.Time) {
	if !p.scan {
		p.indexClip(clip)
	}
}

// OnEvict implements core.Policy. History survives eviction — that is the
// point of DYNSimple's non-resident bookkeeping; only the index entry is
// dropped (a no-op for victims popBest already removed).
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	if !p.scan {
		p.unindexClip(id)
	}
}

// Reset implements core.Policy.
func (p *Policy) Reset() {
	p.tracker = history.NewTracker(p.n, p.k)
	p.classes = make(map[classKey]*rbtree.Tree[entryKey, media.Clip])
	p.order = nil
	p.loc = make(map[media.ClipID]dsLoc)
	p.gathered = p.gathered[:0]
	p.out = p.out[:0]
}

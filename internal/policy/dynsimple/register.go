package dynsimple

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name:  "dynsimple",
		Usage: "dynsimple:K",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(cfg.Repo.N(), cfg.Spec.K)
		},
	})
}

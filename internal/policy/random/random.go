// Package random implements the Random replacement technique the paper uses
// as a comparison yardstick (Section 3.3, Figure 2): victims are chosen
// uniformly at random from the resident clips.
package random

import (
	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// Policy evicts uniformly random resident clips. It implements core.Policy.
type Policy struct {
	src  *randutil.Source
	seed uint64
}

var _ core.Policy = (*Policy)(nil)

// New returns a Random policy drawing victims from a generator seeded with
// seed, so runs are reproducible (paper footnote 5).
func New(seed uint64) *Policy {
	return &Policy{src: randutil.NewSource(seed), seed: seed}
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "Random" }

// Record implements core.Policy. Random keeps no reference history.
func (p *Policy) Record(media.Clip, vtime.Time, bool) {}

// Admit implements core.Policy. Every referenced clip is materialized
// (Section 2).
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: it returns uniformly chosen resident clips
// until at least need bytes are covered.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	resident := view.ResidentClips()
	// Shuffle a copy of the resident set and take a prefix covering need.
	perm := p.src.Perm(len(resident))
	var out []media.ClipID
	var freed media.Bytes
	for _, idx := range perm {
		if freed >= need {
			break
		}
		out = append(out, resident[idx].ID)
		freed += resident[idx].Size
	}
	return out
}

// OnInsert implements core.Policy.
func (p *Policy) OnInsert(media.Clip, vtime.Time) {}

// OnEvict implements core.Policy.
func (p *Policy) OnEvict(media.ClipID, vtime.Time) {}

// Reset implements core.Policy, rewinding the random stream so replays are
// identical.
func (p *Policy) Reset() { p.src = randutil.NewSource(p.seed) }

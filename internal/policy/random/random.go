// Package random implements the Random replacement technique the paper uses
// as a comparison yardstick (Section 3.3, Figure 2): victims are chosen
// uniformly at random from the resident clips.
package random

import (
	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// Policy evicts uniformly random resident clips. It implements core.Policy.
type Policy struct {
	src  *randutil.Source
	seed uint64

	// Reusable per-call buffers keep victim selection allocation-free. The
	// collect closure is built once: handed through the ResidentView
	// interface every call, a fresh literal would escape to the heap.
	clips   []media.Clip
	perm    []int
	out     []media.ClipID
	collect func(media.Clip) bool
}

var _ core.Policy = (*Policy)(nil)

// New returns a Random policy drawing victims from a generator seeded with
// seed, so runs are reproducible (paper footnote 5).
func New(seed uint64) *Policy {
	return &Policy{src: randutil.NewSource(seed), seed: seed}
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "Random" }

// Record implements core.Policy. Random keeps no reference history.
func (p *Policy) Record(media.Clip, vtime.Time, bool) {}

// Admit implements core.Policy. Every referenced clip is materialized
// (Section 2).
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: it returns uniformly chosen resident clips
// until at least need bytes are covered. The Fisher-Yates shuffle runs on
// reusable buffers but consumes exactly the draws randutil.Perm would, so the
// victim sequence of seeded runs is unchanged.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	p.clips = p.clips[:0]
	if p.collect == nil {
		p.collect = func(c media.Clip) bool {
			p.clips = append(p.clips, c)
			return true
		}
	}
	view.ForEachResident(p.collect)
	n := len(p.clips)
	if cap(p.perm) < n {
		p.perm = make([]int, n)
	}
	p.perm = p.perm[:n]
	for i := range p.perm {
		p.perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.src.Intn(i + 1)
		p.perm[i], p.perm[j] = p.perm[j], p.perm[i]
	}
	p.out = p.out[:0]
	var freed media.Bytes
	for _, idx := range p.perm {
		if freed >= need {
			break
		}
		p.out = append(p.out, p.clips[idx].ID)
		freed += p.clips[idx].Size
	}
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}

// OnInsert implements core.Policy.
func (p *Policy) OnInsert(media.Clip, vtime.Time) {}

// OnEvict implements core.Policy.
func (p *Policy) OnEvict(media.ClipID, vtime.Time) {}

// Reset implements core.Policy, rewinding the random stream so replays are
// identical.
func (p *Policy) Reset() { p.src = randutil.NewSource(p.seed) }

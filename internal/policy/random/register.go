package random

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name: "random",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(cfg.Seed), nil
		},
	})
}

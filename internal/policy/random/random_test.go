package random

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func repo(t *testing.T) *media.Repository {
	t.Helper()
	r, err := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
		{ID: 4, Size: 10}, {ID: 5, Size: 10}, {ID: 6, Size: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestName(t *testing.T) {
	if New(1).Name() != "Random" {
		t.Fatal("name")
	}
}

func TestBasicOperation(t *testing.T) {
	c, err := core.New(repo(t), 30, New(42))
	if err != nil {
		t.Fatal(err)
	}
	for id := media.ClipID(1); id <= 6; id++ {
		if _, err := c.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumResident() != 3 {
		t.Fatalf("resident = %d, want 3", c.NumResident())
	}
	if c.UsedBytes() != 30 {
		t.Fatalf("used = %d", c.UsedBytes())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []media.ClipID {
		c, _ := core.New(repo(t), 30, New(7))
		seq := []media.ClipID{1, 2, 3, 4, 5, 6, 1, 3, 5, 2, 4, 6}
		for _, id := range seq {
			c.Request(id)
		}
		return core.CollectResidentIDs(c)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different resident counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge: %v vs %v", a, b)
		}
	}
}

func TestDifferentSeedsCanDiffer(t *testing.T) {
	run := func(seed uint64) []media.ClipID {
		c, _ := core.New(repo(t), 30, New(seed))
		for i := 0; i < 60; i++ {
			c.Request(media.ClipID(i%6 + 1))
		}
		return core.CollectResidentIDs(c)
	}
	same := true
	base := run(1)
	for seed := uint64(2); seed <= 10 && same; seed++ {
		other := run(seed)
		if len(other) != len(base) {
			same = false
			break
		}
		for i := range base {
			if base[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("ten different seeds all yielded identical caches; Random is not random")
	}
}

func TestResetRewindsStream(t *testing.T) {
	p := New(99)
	c, _ := core.New(repo(t), 30, p)
	seq := []media.ClipID{1, 2, 3, 4, 5, 6, 1, 2}
	for _, id := range seq {
		c.Request(id)
	}
	first := core.CollectResidentIDs(c)
	c.Reset()
	for _, id := range seq {
		c.Request(id)
	}
	second := core.CollectResidentIDs(c)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Reset must rewind the random stream for identical replay")
		}
	}
}

func TestVictimsCoverNeed(t *testing.T) {
	p := New(3)
	c, _ := core.New(repo(t), 30, p)
	c.Request(1)
	c.Request(2)
	c.Request(3)
	victims := p.Victims(media.Clip{ID: 4, Size: 25}, c, 25, 4)
	var freed media.Bytes
	for _, id := range victims {
		freed += c.Repository().Clip(id).Size
	}
	if freed < 25 {
		t.Fatalf("victims free %d bytes, need 25", freed)
	}
}

package lfu

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name: "lfu",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(), nil
		},
	})
	registry.Register(registry.Entry{
		Name: "lfu-da",
		New: func(cfg registry.Config) (core.Policy, error) {
			return NewDA(), nil
		},
	})
}

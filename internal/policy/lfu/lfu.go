// Package lfu implements the frequency-based members of the paper's
// Section 1 taxonomy of greedy techniques ("recently-based, frequency-based,
// size-based, function-based, and randomized"): classic in-cache LFU and
// LFU-DA (LFU with Dynamic Aging).
//
// Classic LFU evicts the resident clip with the fewest references since it
// became resident. It suffers exactly the cache-pollution problem the
// paper's Section 5 describes — "previously popular clips lingering in the
// cache" — because counts never decay. LFU-DA adds the standard dynamic-
// aging fix: priorities are count + L, where L is the GreedyDual-style
// inflation raised to each evicted priority, so stale clips eventually age
// out. These baselines anchor the frequency-based corner of the taxonomy in
// the comparison experiments.
package lfu

import (
	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/prioindex"
	"mediacache/internal/vtime"
)

// Policy is LFU, optionally with dynamic aging. It implements core.Policy.
type Policy struct {
	aging bool

	inflation float64
	prio      map[media.ClipID]float64
	count     map[media.ClipID]uint64
	lastRef   map[media.ClipID]vtime.Time

	// scan disables the ordered index and restores the original
	// O(n)-per-victim linear scan (the differential-test baseline).
	//
	// The index is a tree keyed (priority, lastRef, id) rather than literal
	// frequency buckets: LFU-DA priorities are count + L with a float
	// inflation L, so bucket keys would not stay integral. The tree serves
	// both variants with one ordering.
	scan bool
	idx  *prioindex.Index
	out  []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// New returns a classic LFU policy.
func New() *Policy { return newPolicy(false) }

// NewDA returns an LFU-DA policy (LFU with dynamic aging).
func NewDA() *Policy { return newPolicy(true) }

func newPolicy(aging bool) *Policy {
	return &Policy{
		aging:   aging,
		prio:    make(map[media.ClipID]float64),
		count:   make(map[media.ClipID]uint64),
		lastRef: make(map[media.ClipID]vtime.Time),
		idx:     prioindex.New(),
	}
}

// Scan switches the policy to the original O(n)-per-victim linear-scan
// selection; decisions are identical either way.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// Name implements core.Policy.
func (p *Policy) Name() string {
	if p.aging {
		return "LFU-DA"
	}
	return "LFU"
}

// NRef returns the in-cache reference count of a resident clip.
func (p *Policy) NRef(id media.ClipID) uint64 { return p.count[id] }

// Inflation returns the dynamic-aging inflation L (always 0 for plain LFU).
func (p *Policy) Inflation() float64 { return p.inflation }

// priority computes the clip's eviction priority.
func (p *Policy) priority(id media.ClipID) float64 {
	base := 0.0
	if p.aging {
		base = p.inflation
	}
	return base + float64(p.count[id])
}

// Record implements core.Policy.
func (p *Policy) Record(clip media.Clip, now vtime.Time, hit bool) {
	if hit {
		p.unindexClip(clip.ID)
		p.count[clip.ID]++
		p.prio[clip.ID] = p.priority(clip.ID)
		p.lastRef[clip.ID] = now
		p.indexClip(clip)
	}
}

// indexClip inserts a tracked clip's current (priority, lastRef) key into
// the ordered index (indexed mode only).
func (p *Policy) indexClip(clip media.Clip) {
	if p.scan {
		return
	}
	p.idx.Put(prioindex.Key{P: p.prio[clip.ID], Last: p.lastRef[clip.ID], ID: clip.ID}, clip)
}

// unindexClip removes a tracked clip's index entry, if any.
func (p *Policy) unindexClip(id media.ClipID) {
	if p.scan {
		return
	}
	if prio, ok := p.prio[id]; ok {
		p.idx.Delete(prioindex.Key{P: prio, Last: p.lastRef[id], ID: id})
	}
}

// Admit implements core.Policy.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: evict minimum-priority clips; ties broken
// by least-recent reference, then lower id, for determinism. In indexed mode
// (the default) the victims come from an ordered, allocation-free walk of
// the priority index instead of the scan's O(n)-per-victim search.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	if !p.scan {
		return p.victimsIndexed(view, need)
	}
	resident := core.CollectResidents(view)
	taken := make(map[media.ClipID]bool, len(resident))
	var out []media.ClipID
	var freed media.Bytes
	for freed < need && len(out) < len(resident) {
		best := -1
		var bestPrio float64
		var bestLast vtime.Time
		for i, c := range resident {
			if taken[c.ID] {
				continue
			}
			if _, ok := p.prio[c.ID]; !ok {
				// Warm-inserted clip: adopt at count 1.
				p.count[c.ID] = 1
				p.prio[c.ID] = p.priority(c.ID)
			}
			prio := p.prio[c.ID]
			last := p.lastRef[c.ID]
			better := false
			switch {
			case best == -1:
				better = true
			case prio != bestPrio:
				better = prio < bestPrio
			case last != bestLast:
				better = last < bestLast
			default:
				better = c.ID < resident[best].ID
			}
			if better {
				best, bestPrio, bestLast = i, prio, last
			}
		}
		if best == -1 {
			break
		}
		victim := resident[best]
		taken[victim.ID] = true
		if p.aging && bestPrio > p.inflation {
			p.inflation = bestPrio
		}
		out = append(out, victim.ID)
		freed += victim.Size
	}
	return out
}

// victimsIndexed walks the priority index in ascending (priority, lastRef,
// id) order — exactly the scan's repeated-minimum sequence, because stored
// priorities do not change during a Victims call — collecting victims into
// the reusable out buffer until need bytes are covered.
func (p *Policy) victimsIndexed(view core.ResidentView, need media.Bytes) []media.ClipID {
	if p.idx.Len() != view.NumResident() {
		// Warm-placed clip unknown to the policy: adopt at count 1, as the
		// scan does lazily (all scan adoptions happen on its first inner
		// pass, before any inflation update, so adopting up front here is
		// decision-identical).
		view.ForEachResident(func(c media.Clip) bool {
			if _, ok := p.prio[c.ID]; !ok {
				p.count[c.ID] = 1
				p.prio[c.ID] = p.priority(c.ID)
				p.indexClip(c)
			}
			return true
		})
	}
	p.out = p.out[:0]
	var freed media.Bytes
	p.idx.Ascend(func(k prioindex.Key, c media.Clip) bool {
		if freed >= need {
			return false
		}
		if p.aging && k.P > p.inflation {
			p.inflation = k.P
		}
		p.out = append(p.out, c.ID)
		freed += c.Size
		return true
	})
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}

// OnInsert implements core.Policy: the inserting reference counts.
func (p *Policy) OnInsert(clip media.Clip, now vtime.Time) {
	p.count[clip.ID] = 1
	p.prio[clip.ID] = p.priority(clip.ID)
	p.lastRef[clip.ID] = now
	p.indexClip(clip)
}

// OnEvict implements core.Policy: counts are in-cache only.
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	p.unindexClip(id)
	delete(p.count, id)
	delete(p.prio, id)
	delete(p.lastRef, id)
}

// Reset implements core.Policy.
func (p *Policy) Reset() {
	p.inflation = 0
	p.prio = make(map[media.ClipID]float64)
	p.count = make(map[media.ClipID]uint64)
	p.lastRef = make(map[media.ClipID]vtime.Time)
	p.idx.Reset()
	p.out = p.out[:0]
}

package lfu

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func TestNames(t *testing.T) {
	if New().Name() != "LFU" {
		t.Fatal("LFU name")
	}
	if NewDA().Name() != "LFU-DA" {
		t.Fatal("LFU-DA name")
	}
}

func TestEvictsLeastFrequent(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := New()
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(1)
	c.Request(1) // count(1) = 3
	c.Request(2) // count(2) = 1
	c.Request(3) // evict 2
	if c.Resident(2) {
		t.Fatal("least frequent clip should be evicted")
	}
	if !c.Resident(1) {
		t.Fatal("frequent clip must survive")
	}
}

func TestTieBrokenByRecency(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := New()
	c, _ := core.New(r, 20, p)
	c.Request(2) // count 1, older
	c.Request(1) // count 1, newer
	c.Request(3) // tie on count: evict older ref (2)
	if c.Resident(2) {
		t.Fatal("older equal-count clip should be evicted")
	}
	if !c.Resident(1) {
		t.Fatal("newer clip survives")
	}
}

func TestCountsLifecycle(t *testing.T) {
	p := New()
	clip := media.Clip{ID: 1, Size: 10}
	p.OnInsert(clip, 1)
	if p.NRef(1) != 1 {
		t.Fatal("insert counts")
	}
	p.Record(clip, 2, true)
	if p.NRef(1) != 2 {
		t.Fatal("hit counts")
	}
	p.Record(clip, 3, false)
	if p.NRef(1) != 2 {
		t.Fatal("miss must not count in-cache frequency")
	}
	p.OnEvict(1, 4)
	if p.NRef(1) != 0 {
		t.Fatal("eviction clears the in-cache count")
	}
}

func TestCachePollution(t *testing.T) {
	// Plain LFU keeps a stale-popular clip forever — the pollution the
	// paper's Section 5 describes; LFU-DA ages it out.
	// The stale clip accumulates count 30; LFU-DA's inflation rises ~1 per
	// eviction of the cycling fresh clips, overtaking 30 within 60 requests.
	run := func(p *Policy) bool {
		r, _ := media.EquiRepository(8, 10)
		c, _ := core.New(r, 20, p)
		for i := 0; i < 30; i++ {
			c.Request(1) // count(1) = 30
		}
		for i := 0; i < 60; i++ {
			c.Request(media.ClipID(i%3 + 2)) // fresh clips 2,3,4
		}
		return c.Resident(1)
	}
	if !run(New()) {
		t.Fatal("plain LFU should exhibit cache pollution (stale clip stays)")
	}
	if run(NewDA()) {
		t.Fatal("LFU-DA should age the stale clip out")
	}
}

func TestInflationOnlyWithAging(t *testing.T) {
	r, _ := media.EquiRepository(8, 10)
	plain, da := New(), NewDA()
	cp, _ := core.New(r, 20, plain)
	cd, _ := core.New(r, 20, da)
	for i := 0; i < 50; i++ {
		cp.Request(media.ClipID(i%8 + 1))
		cd.Request(media.ClipID(i%8 + 1))
	}
	if plain.Inflation() != 0 {
		t.Fatal("plain LFU must not inflate")
	}
	if da.Inflation() == 0 {
		t.Fatal("LFU-DA must inflate after evictions")
	}
}

func TestWarmAdoption(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := New()
	c, _ := core.New(r, 20, p)
	c.Warm([]media.ClipID{1, 2})
	out, err := c.Request(3)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestAdmitAndReset(t *testing.T) {
	p := NewDA()
	if !p.Admit(media.Clip{ID: 1, Size: 1}, 1) {
		t.Fatal("always admits")
	}
	p.OnInsert(media.Clip{ID: 1, Size: 1}, 1)
	p.Reset()
	if p.NRef(1) != 0 || p.Inflation() != 0 {
		t.Fatal("Reset incomplete")
	}
}

package simple

import (
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name:     "simple",
		NeedsPMF: true,
		New: func(cfg registry.Config) (core.Policy, error) {
			if cfg.PMF == nil {
				return nil, fmt.Errorf("simple: policy %q needs the true access frequencies", cfg.Spec)
			}
			return New(cfg.PMF)
		},
	})
	registry.Register(registry.Entry{
		Name:     "simple-variant",
		NeedsPMF: true,
		New: func(cfg registry.Config) (core.Policy, error) {
			if cfg.PMF == nil {
				return nil, fmt.Errorf("simple: policy %q needs the true access frequencies", cfg.Spec)
			}
			return NewVariant(cfg.PMF)
		},
	})
}

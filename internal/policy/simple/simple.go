// Package simple implements the off-line Simple technique of Section 3.1
// (originally from Ghandeharizadeh et al., DMS 2006 [11]).
//
// Simple is given the true frequency of access f_i to every clip. It ranks
// clips by byte-freq = f_i / s_i, the frequency of access to each byte, and
// keeps the clips with the highest byte-freq cache resident. On a miss the
// incoming clip is materialized (the paper's default), evicting the resident
// clips with the smallest byte-freq.
//
// The package also provides the variant discussed in Section 3.3 that does
// not cache a referenced clip whose byte-freq is smaller than that of every
// clip it would displace; the paper reports it performs the same or slightly
// better.
package simple

import (
	"fmt"
	"sort"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/prioindex"
	"mediacache/internal/vtime"
)

// Policy is the off-line Simple technique. It implements core.Policy.
type Policy struct {
	freq []float64 // true access frequency by clip id-1
	// noCacheColder enables the Section 3.3 variant: a missed clip is only
	// admitted when its byte-freq exceeds the smallest byte-freq it would
	// evict.
	noCacheColder bool

	// scan disables the ordered index and restores the original
	// sort-per-Victims-call selection (the differential-test baseline).
	scan bool
	// idx orders resident clips by (byte-freq asc, size desc, id asc) — the
	// scan's exact sort order. Byte-freqs are static between SetFrequencies
	// calls, so the index only changes on insert/evict/refresh.
	idx *prioindex.Index
	// keys remembers each resident's index key for O(log n) removal.
	keys map[media.ClipID]prioindex.Key
	out  []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// Option configures the policy.
type Option func(*Policy)

// NoCacheColder enables the admission variant that streams unpopular clips
// without caching them.
func NoCacheColder() Option {
	return func(p *Policy) { p.noCacheColder = true }
}

// New returns a Simple policy with advance knowledge of the clip access
// frequencies (indexed by clip id-1). Frequencies must be non-negative.
func New(frequencies []float64, opts ...Option) (*Policy, error) {
	if len(frequencies) == 0 {
		return nil, fmt.Errorf("simple: frequency vector must not be empty")
	}
	for i, f := range frequencies {
		if f < 0 {
			return nil, fmt.Errorf("simple: negative frequency %v for clip %d", f, i+1)
		}
	}
	p := &Policy{
		freq: append([]float64(nil), frequencies...),
		idx:  prioindex.New(),
		keys: make(map[media.ClipID]prioindex.Key),
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// Scan switches the policy to the original sort-per-call victim selection;
// decisions are identical either way.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// keyFor computes a clip's index key. The scan orders victims by (byte-freq
// asc, size desc, id asc); size-descending is encoded as Last = -size so the
// shared ascending key ordering reproduces it exactly.
func (p *Policy) keyFor(c media.Clip) prioindex.Key {
	return prioindex.Key{P: p.ByteFreq(c), Last: vtime.Time(-c.Size), ID: c.ID}
}

// MustNew is like New but panics on error; for experiment setup.
func MustNew(frequencies []float64, opts ...Option) *Policy {
	p, err := New(frequencies, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string {
	if p.noCacheColder {
		return "Simple(no-cache-colder)"
	}
	return "Simple"
}

// SetFrequencies replaces the frequency vector, e.g. when the request
// distribution shifts at an experiment phase boundary (Section 4.4.1 gives
// Simple the accurate frequencies of the current distribution). The resident
// index is rebuilt under the new byte-freqs.
func (p *Policy) SetFrequencies(frequencies []float64) error {
	fresh, err := New(frequencies)
	if err != nil {
		return err
	}
	p.freq = fresh.freq
	if !p.scan && p.idx.Len() > 0 {
		clips := make([]media.Clip, 0, p.idx.Len())
		p.idx.Ascend(func(_ prioindex.Key, c media.Clip) bool {
			clips = append(clips, c)
			return true
		})
		p.idx.Reset()
		for _, c := range clips {
			k := p.keyFor(c)
			p.idx.Put(k, c)
			p.keys[c.ID] = k
		}
	}
	return nil
}

// ByteFreq returns the byte-freq value f_i/s_i of a clip.
func (p *Policy) ByteFreq(c media.Clip) float64 {
	if i := int(c.ID) - 1; i >= 0 && i < len(p.freq) {
		return p.freq[i] / float64(c.Size)
	}
	return 0
}

// Record implements core.Policy. Simple is off-line: it already knows the
// frequencies and keeps no run-time history.
func (p *Policy) Record(media.Clip, vtime.Time, bool) {}

// Admit implements core.Policy. The default variant admits everything; the
// NoCacheColder variant admits a clip only if it is at least as hot per byte
// as the coldest resident clip (or if it fits in free space).
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: evict resident clips in ascending
// byte-freq order until need bytes are freed. Ties prefer the larger clip
// (freeing more space), then the lower id, keeping runs deterministic. In
// indexed mode (the default) the victims are an allocation-free prefix walk
// of the byte-freq index instead of a per-call sort.
func (p *Policy) Victims(incoming media.Clip, view core.ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	if !p.scan {
		return p.victimsIndexed(view, need)
	}
	resident := core.CollectResidents(view)
	sort.Slice(resident, func(i, j int) bool {
		bi, bj := p.ByteFreq(resident[i]), p.ByteFreq(resident[j])
		if bi != bj {
			return bi < bj
		}
		if resident[i].Size != resident[j].Size {
			return resident[i].Size > resident[j].Size
		}
		return resident[i].ID < resident[j].ID
	})
	var out []media.ClipID
	var freed media.Bytes
	for _, c := range resident {
		if freed >= need {
			break
		}
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// victimsIndexed walks the byte-freq index collecting the same ascending
// prefix the scan's sort produced.
func (p *Policy) victimsIndexed(view core.ResidentView, need media.Bytes) []media.ClipID {
	if p.idx.Len() != view.NumResident() {
		// A clip became resident without OnInsert (or stale state): rebuild
		// the index from the authoritative resident view.
		p.idx.Reset()
		clear(p.keys)
		view.ForEachResident(func(c media.Clip) bool {
			k := p.keyFor(c)
			p.idx.Put(k, c)
			p.keys[c.ID] = k
			return true
		})
	}
	p.out = p.out[:0]
	var freed media.Bytes
	p.idx.Ascend(func(_ prioindex.Key, c media.Clip) bool {
		if freed >= need {
			return false
		}
		p.out = append(p.out, c.ID)
		freed += c.Size
		return true
	})
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}

// OnInsert implements core.Policy: the new resident enters the byte-freq
// index.
func (p *Policy) OnInsert(clip media.Clip, _ vtime.Time) {
	if p.scan {
		return
	}
	k := p.keyFor(clip)
	p.idx.Put(k, clip)
	p.keys[clip.ID] = k
}

// OnEvict implements core.Policy.
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	if p.scan {
		return
	}
	if k, ok := p.keys[id]; ok {
		p.idx.Delete(k)
		delete(p.keys, id)
	}
}

// Reset implements core.Policy. Simple's frequency knowledge is static; only
// the resident index empties.
func (p *Policy) Reset() {
	if !p.scan {
		p.idx.Reset()
		clear(p.keys)
	}
	p.out = p.out[:0]
}

// Variant wraps a Simple policy with the NoCacheColder admission rule. The
// wrapper needs the resident view at admission time, so it intercepts the
// view on victim selection and keeps the latest snapshot of the coldest
// resident byte-freq.
type Variant struct {
	*Policy
	view core.ResidentView
}

var _ core.Policy = (*Variant)(nil)

// NewVariant returns the Section 3.3 admission variant of Simple bound to
// the cache it manages. Bind must be called once the cache exists.
func NewVariant(frequencies []float64) (*Variant, error) {
	p, err := New(frequencies, NoCacheColder())
	if err != nil {
		return nil, err
	}
	return &Variant{Policy: p}, nil
}

// Bind attaches the cache's resident view used by Admit. The core engine
// passes the view only to Victims, but the admission rule needs it earlier.
func (v *Variant) Bind(view core.ResidentView) { v.view = view }

// Admit implements core.Policy for the variant: a missed clip is cached only
// when it fits in free space, or when its byte-freq exceeds the minimum
// byte-freq among resident clips (i.e. it would displace a colder clip).
// With the index in sync the coldest resident is the index minimum — O(log n)
// instead of a full scan; otherwise an allocation-free early-exit walk.
func (v *Variant) Admit(clip media.Clip, _ vtime.Time) bool {
	if v.view == nil {
		return true
	}
	if clip.Size <= v.view.FreeBytes() {
		return true
	}
	in := v.ByteFreq(clip)
	if !v.scan && v.idx.Len() == v.view.NumResident() {
		if k, _, ok := v.idx.Min(); ok {
			return k.P < in
		}
		return false
	}
	admit := false
	v.view.ForEachResident(func(c media.Clip) bool {
		if v.ByteFreq(c) < in {
			admit = true
			return false
		}
		return true
	})
	return admit
}

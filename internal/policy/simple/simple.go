// Package simple implements the off-line Simple technique of Section 3.1
// (originally from Ghandeharizadeh et al., DMS 2006 [11]).
//
// Simple is given the true frequency of access f_i to every clip. It ranks
// clips by byte-freq = f_i / s_i, the frequency of access to each byte, and
// keeps the clips with the highest byte-freq cache resident. On a miss the
// incoming clip is materialized (the paper's default), evicting the resident
// clips with the smallest byte-freq.
//
// The package also provides the variant discussed in Section 3.3 that does
// not cache a referenced clip whose byte-freq is smaller than that of every
// clip it would displace; the paper reports it performs the same or slightly
// better.
package simple

import (
	"fmt"
	"sort"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// Policy is the off-line Simple technique. It implements core.Policy.
type Policy struct {
	freq []float64 // true access frequency by clip id-1
	// noCacheColder enables the Section 3.3 variant: a missed clip is only
	// admitted when its byte-freq exceeds the smallest byte-freq it would
	// evict.
	noCacheColder bool
}

var _ core.Policy = (*Policy)(nil)

// Option configures the policy.
type Option func(*Policy)

// NoCacheColder enables the admission variant that streams unpopular clips
// without caching them.
func NoCacheColder() Option {
	return func(p *Policy) { p.noCacheColder = true }
}

// New returns a Simple policy with advance knowledge of the clip access
// frequencies (indexed by clip id-1). Frequencies must be non-negative.
func New(frequencies []float64, opts ...Option) (*Policy, error) {
	if len(frequencies) == 0 {
		return nil, fmt.Errorf("simple: frequency vector must not be empty")
	}
	for i, f := range frequencies {
		if f < 0 {
			return nil, fmt.Errorf("simple: negative frequency %v for clip %d", f, i+1)
		}
	}
	p := &Policy{freq: append([]float64(nil), frequencies...)}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// MustNew is like New but panics on error; for experiment setup.
func MustNew(frequencies []float64, opts ...Option) *Policy {
	p, err := New(frequencies, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string {
	if p.noCacheColder {
		return "Simple(no-cache-colder)"
	}
	return "Simple"
}

// SetFrequencies replaces the frequency vector, e.g. when the request
// distribution shifts at an experiment phase boundary (Section 4.4.1 gives
// Simple the accurate frequencies of the current distribution).
func (p *Policy) SetFrequencies(frequencies []float64) error {
	fresh, err := New(frequencies)
	if err != nil {
		return err
	}
	p.freq = fresh.freq
	return nil
}

// ByteFreq returns the byte-freq value f_i/s_i of a clip.
func (p *Policy) ByteFreq(c media.Clip) float64 {
	if i := int(c.ID) - 1; i >= 0 && i < len(p.freq) {
		return p.freq[i] / float64(c.Size)
	}
	return 0
}

// Record implements core.Policy. Simple is off-line: it already knows the
// frequencies and keeps no run-time history.
func (p *Policy) Record(media.Clip, vtime.Time, bool) {}

// Admit implements core.Policy. The default variant admits everything; the
// NoCacheColder variant admits a clip only if it is at least as hot per byte
// as the coldest resident clip (or if it fits in free space).
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: evict resident clips in ascending
// byte-freq order until need bytes are freed. Ties prefer the larger clip
// (freeing more space), then the lower id, keeping runs deterministic.
func (p *Policy) Victims(incoming media.Clip, view core.ResidentView, need media.Bytes, _ vtime.Time) []media.ClipID {
	resident := view.ResidentClips()
	sort.Slice(resident, func(i, j int) bool {
		bi, bj := p.ByteFreq(resident[i]), p.ByteFreq(resident[j])
		if bi != bj {
			return bi < bj
		}
		if resident[i].Size != resident[j].Size {
			return resident[i].Size > resident[j].Size
		}
		return resident[i].ID < resident[j].ID
	})
	var out []media.ClipID
	var freed media.Bytes
	for _, c := range resident {
		if freed >= need {
			break
		}
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// OnInsert implements core.Policy.
func (p *Policy) OnInsert(media.Clip, vtime.Time) {}

// OnEvict implements core.Policy.
func (p *Policy) OnEvict(media.ClipID, vtime.Time) {}

// Reset implements core.Policy. Simple's knowledge is static.
func (p *Policy) Reset() {}

// Variant wraps a Simple policy with the NoCacheColder admission rule. The
// wrapper needs the resident view at admission time, so it intercepts the
// view on victim selection and keeps the latest snapshot of the coldest
// resident byte-freq.
type Variant struct {
	*Policy
	view core.ResidentView
}

var _ core.Policy = (*Variant)(nil)

// NewVariant returns the Section 3.3 admission variant of Simple bound to
// the cache it manages. Bind must be called once the cache exists.
func NewVariant(frequencies []float64) (*Variant, error) {
	p, err := New(frequencies, NoCacheColder())
	if err != nil {
		return nil, err
	}
	return &Variant{Policy: p}, nil
}

// Bind attaches the cache's resident view used by Admit. The core engine
// passes the view only to Victims, but the admission rule needs it earlier.
func (v *Variant) Bind(view core.ResidentView) { v.view = view }

// Admit implements core.Policy for the variant: a missed clip is cached only
// when it fits in free space, or when its byte-freq exceeds the minimum
// byte-freq among resident clips (i.e. it would displace a colder clip).
func (v *Variant) Admit(clip media.Clip, _ vtime.Time) bool {
	if v.view == nil {
		return true
	}
	if clip.Size <= v.view.FreeBytes() {
		return true
	}
	in := v.ByteFreq(clip)
	for _, c := range v.view.ResidentClips() {
		if v.ByteFreq(c) < in {
			return true
		}
	}
	return false
}

package simple

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func repo(t *testing.T) *media.Repository {
	t.Helper()
	r, err := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, // hot
		{ID: 2, Size: 10}, // warm
		{ID: 3, Size: 10}, // cold
		{ID: 4, Size: 40}, // hot but large
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

var freqs = []float64{0.5, 0.3, 0.05, 0.15}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty frequency vector should fail")
	}
	if _, err := New([]float64{0.5, -0.1}); err == nil {
		t.Error("negative frequency should fail")
	}
	if _, err := New(freqs); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(nil)
}

func TestName(t *testing.T) {
	if MustNew(freqs).Name() != "Simple" {
		t.Fatal("name")
	}
	if MustNew(freqs, NoCacheColder()).Name() != "Simple(no-cache-colder)" {
		t.Fatal("variant name")
	}
}

func TestByteFreq(t *testing.T) {
	p := MustNew(freqs)
	r := repo(t)
	if got := p.ByteFreq(r.Clip(1)); got != 0.05 {
		t.Fatalf("ByteFreq(1) = %v, want 0.05", got)
	}
	// Clip 4: 0.15/40 = 0.00375 — hot overall but cold per byte.
	if got := p.ByteFreq(r.Clip(4)); got != 0.15/40 {
		t.Fatalf("ByteFreq(4) = %v", got)
	}
	if p.ByteFreq(media.Clip{ID: 99, Size: 10}) != 0 {
		t.Fatal("unknown clip should have byte-freq 0")
	}
}

func TestEvictsLowestByteFreqFirst(t *testing.T) {
	p := MustNew(freqs)
	c, _ := core.New(repo(t), 30, p)
	c.Request(1)
	c.Request(2)
	c.Request(3)
	// Cache full (30). Requesting clip 4 (40 bytes) exceeds capacity? 40 > 30:
	// too large. Use a bigger cache instead.
	c2, _ := core.New(repo(t), 50, p)
	c2.Request(1)
	c2.Request(2)
	c2.Request(3)
	out, err := c2.Request(4) // needs 40, free 20 -> evict colder clips first
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// Byte-freqs: clip3=0.005, clip2=0.03, clip1=0.05, clip4=0.00375 (incoming).
	// Victims ascending: 3 (0.005) then 2 (0.03). Clip 1 survives.
	if !c2.Resident(1) {
		t.Fatal("hottest clip 1 must survive")
	}
	if c2.Resident(3) || c2.Resident(2) {
		t.Fatal("cold clips 3 and 2 should be evicted")
	}
}

func TestSetFrequencies(t *testing.T) {
	p := MustNew(freqs)
	if err := p.SetFrequencies([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	r := repo(t)
	if got := p.ByteFreq(r.Clip(1)); got != 0.01 {
		t.Fatalf("ByteFreq after update = %v", got)
	}
	if err := p.SetFrequencies([]float64{-1}); err == nil {
		t.Fatal("invalid update should fail")
	}
	// Failed update must not clobber state.
	if got := p.ByteFreq(r.Clip(1)); got != 0.01 {
		t.Fatal("failed update mutated state")
	}
}

func TestVictimTieBreak(t *testing.T) {
	// Equal byte-freqs: prefer the larger clip, then lower id.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10},
		{ID: 2, Size: 20},
		{ID: 3, Size: 20},
	})
	p := MustNew([]float64{0.1, 0.2, 0.2}) // byte-freq .01, .01, .01
	c, _ := core.New(r, 40, p)
	c.Request(1)
	c.Request(2)
	victims := p.Victims(r.Clip(3), c, 10, 3)
	if len(victims) == 0 || victims[0] != 2 {
		t.Fatalf("victims = %v, want larger clip 2 first", victims)
	}
}

func TestVariantAdmission(t *testing.T) {
	v, err := NewVariant(freqs)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := core.New(repo(t), 30, v)
	v.Bind(c)
	c.Request(1)
	c.Request(2)
	c.Request(4) // too large for capacity 30 -> MissTooLarge, not cached
	// Cache holds clips 1,2 (20 bytes); 10 free.
	out, _ := c.Request(3) // cold, but fits in free space -> admitted
	if out != core.MissCached {
		t.Fatalf("fitting clip should be admitted, got %v", out)
	}
	// Now full. A colder-than-everything clip must be bypassed. Clip 3 is
	// resident; re-requesting is a hit. Build the scenario directly:
	// construct fresh with tiny frequencies for incoming.
	r2, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
	})
	v2, _ := NewVariant([]float64{0.6, 0.39, 0.01})
	c2, _ := core.New(r2, 20, v2)
	v2.Bind(c2)
	c2.Request(1)
	c2.Request(2)
	out, _ = c2.Request(3) // byte-freq 0.001 < min resident 0.039 -> bypass
	if out != core.MissBypassed {
		t.Fatalf("cold clip should be bypassed, got %v", out)
	}
	if c2.Resident(3) {
		t.Fatal("bypassed clip must not be cached")
	}
	// A hot clip displaces a colder one.
	v3, _ := NewVariant([]float64{0.1, 0.3, 0.6})
	c3, _ := core.New(r2, 20, v3)
	v3.Bind(c3)
	c3.Request(1)
	c3.Request(2)
	out, _ = c3.Request(3)
	if out != core.MissCached {
		t.Fatalf("hot clip should displace, got %v", out)
	}
	if c3.Resident(1) {
		t.Fatal("coldest clip 1 should be evicted")
	}
}

func TestVariantUnboundAdmitsEverything(t *testing.T) {
	v, _ := NewVariant(freqs)
	if !v.Admit(media.Clip{ID: 3, Size: 10}, 1) {
		t.Fatal("unbound variant must admit")
	}
}

func TestHotWorkingSetConverges(t *testing.T) {
	// Driving Simple with a stream favoring hot clips should end with the
	// highest byte-freq clips resident.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10}, {ID: 4, Size: 10},
	})
	p := MustNew([]float64{0.4, 0.3, 0.2, 0.1})
	c, _ := core.New(r, 20, p)
	seq := []media.ClipID{4, 3, 2, 1, 4, 1, 2, 3, 1, 2}
	for _, id := range seq {
		if _, err := c.Request(id); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Resident(1) || !c.Resident(2) {
		t.Fatalf("hot clips should be resident; got %v", core.CollectResidentIDs(c))
	}
}

func TestRecordAndLifecycleNoops(t *testing.T) {
	p := MustNew(freqs)
	// These must be safe no-ops.
	p.Record(media.Clip{ID: 1, Size: 1}, 1, true)
	p.OnInsert(media.Clip{ID: 1, Size: 1}, 1)
	p.OnEvict(1, 1)
	p.Reset()
	if !p.Admit(media.Clip{ID: 1, Size: 1}, 1) {
		t.Fatal("base Simple always admits")
	}
}

// Package prioindex provides the incrementally maintained victim index
// shared by the function-based replacement techniques (GreedyDual and its
// descendants, LFU/LFU-DA, Simple).
//
// The paper's Section 5 names efficient victim selection as future work:
// "This may require tree-based data structures to minimize the complexity
// of identifying a victim clip." Each policy keeps its resident clips in an
// Index ordered by (priority, last-reference, id); the minimum is the next
// victim, so selection is O(log n) maintenance per reference instead of an
// O(n) scan per eviction. The key ordering reproduces, field for field, the
// tie-break rules of the linear scans it replaces, so indexing changes cost,
// never decisions — the property the differential tests in package
// conformance assert.
package prioindex

import (
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// Key orders resident clips by eviction preference: the smaller priority P
// is the better victim; ties prefer the smaller Last (older reference, or
// any policy-specific secondary criterion encoded into it), then the lower
// clip ID. Policies without a secondary criterion leave Last at zero, making
// equal-priority entries ascend by ID — exactly the order the linear scans
// collected ties in when walking ResidentClips.
type Key struct {
	P    float64
	Last vtime.Time
	ID   media.ClipID
}

func lessKey(a, b Key) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.Last != b.Last {
		return a.Last < b.Last
	}
	return a.ID < b.ID
}

// Index is an ordered set of resident clips keyed by eviction preference.
// The zero value is not usable; create indexes with New.
type Index struct {
	tree *rbtree.Tree[Key, media.Clip]
	ties []media.ClipID
}

// New returns an empty index.
func New() *Index {
	return &Index{tree: rbtree.New[Key, media.Clip](lessKey)}
}

// Len returns the number of indexed clips.
func (x *Index) Len() int { return x.tree.Len() }

// Put inserts (or re-inserts) a clip under key.
func (x *Index) Put(k Key, c media.Clip) { x.tree.Put(k, c) }

// Delete removes the entry stored under key, reporting whether it existed.
func (x *Index) Delete(k Key) bool { return x.tree.Delete(k) }

// Min returns the best victim's key and clip.
func (x *Index) Min() (Key, media.Clip, bool) { return x.tree.Min() }

// Ascend visits entries in eviction-preference order until fn returns false.
func (x *Index) Ascend(fn func(Key, media.Clip) bool) { x.tree.Ascend(fn) }

// MinTies returns the minimum priority and the IDs of every entry tied at
// exactly that priority, in ascending (Last, ID) order — the order the
// linear scans gathered ties in, which matters because the caller breaks the
// tie with a seeded random draw over the slice. The returned slice is reused
// across calls; callers must not retain it.
func (x *Index) MinTies() (minP float64, ties []media.ClipID, ok bool) {
	k, _, ok := x.tree.Min()
	if !ok {
		return 0, nil, false
	}
	x.ties = x.ties[:0]
	x.tree.Ascend(func(key Key, _ media.Clip) bool {
		if key.P != k.P {
			return false
		}
		x.ties = append(x.ties, key.ID)
		return true
	})
	return k.P, x.ties, true
}

// Reset empties the index, retaining the tie buffer's capacity.
func (x *Index) Reset() {
	x.tree = rbtree.New[Key, media.Clip](lessKey)
	x.ties = x.ties[:0]
}

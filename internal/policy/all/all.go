// Package all links every built-in replacement policy into the binary,
// triggering their registry registrations. Import it for side effects:
//
//	import _ "mediacache/internal/policy/all"
//
// Programs that only need a subset can instead blank-import the
// individual policy packages they use.
package all

import (
	_ "mediacache/internal/policy/dynsimple"
	_ "mediacache/internal/policy/gdfreq"
	_ "mediacache/internal/policy/gdsp"
	_ "mediacache/internal/policy/greedydual"
	_ "mediacache/internal/policy/igd"
	_ "mediacache/internal/policy/lfu"
	_ "mediacache/internal/policy/lruk"
	_ "mediacache/internal/policy/lrusk"
	_ "mediacache/internal/policy/random"
	_ "mediacache/internal/policy/simple"
)

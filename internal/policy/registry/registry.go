// Package registry is the self-registering factory for replacement
// policies. Each policy package registers its spec names in an init()
// function (see the register.go file next to every implementation), and
// consumers — the sim package, cmd/cachesim, cmd/cacheserver — resolve
// textual specs such as "dynsimple:32" or "greedydual" through Build
// without a central switch statement.
//
// Out-of-tree policies plug in the same way: implement core.Policy,
// call Register from an init() function, and every CLI and experiment
// that resolves specs through the registry picks the new name up
// automatically (including help text and unknown-spec error listings).
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

// DefaultK is the history depth assumed when a spec omits the ":K" suffix.
const DefaultK = 2

// Spec is a parsed policy specification: a registered name plus an
// optional history depth, e.g. "lruk:2" or "greedydual".
type Spec struct {
	// Name is the registry key, e.g. "lruk".
	Name string
	// K is the history depth; DefaultK when the spec has no ":K" suffix.
	// Factories that take no depth ignore it.
	K int
	// HasK reports whether the spec carried an explicit ":K" suffix.
	HasK bool
}

// String renders the spec back to its textual form.
func (s Spec) String() string {
	if s.HasK {
		return fmt.Sprintf("%s:%d", s.Name, s.K)
	}
	return s.Name
}

// ParseSpec splits "name[:K]" and validates the depth. It does not check
// that name is registered; Build does.
func ParseSpec(spec string) (Spec, error) {
	out := Spec{Name: spec, K: DefaultK}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		out.Name = spec[:i]
		parsed, err := strconv.Atoi(spec[i+1:])
		if err != nil || parsed <= 0 {
			return Spec{}, fmt.Errorf("registry: bad history depth in policy spec %q", spec)
		}
		out.K = parsed
		out.HasK = true
	}
	return out, nil
}

// Config carries everything a policy factory may need. Factories must
// treat Repo and PMF as read-only: cells of a parallel sweep share them.
type Config struct {
	// Spec is the parsed specification that selected this factory.
	Spec Spec
	// Repo is the repository the cache will front; never nil.
	Repo *media.Repository
	// PMF is the true per-identity access probability vector (indexed by
	// clip id-1) for off-line techniques; nil for on-line policies.
	PMF []float64
	// Seed feeds policies that break ties or pick victims randomly.
	Seed uint64
}

// Factory constructs a policy from a parsed spec.
type Factory func(cfg Config) (core.Policy, error)

// Entry describes one registered policy name.
type Entry struct {
	// Name is the registry key matched against the spec's name part.
	Name string
	// Usage is the CLI help form, e.g. "lruk:K" for depth-parameterized
	// policies or just the name otherwise.
	Usage string
	// NeedsPMF documents that the factory requires the true access
	// frequencies (Config.PMF); used for help text only — factories still
	// validate at build time.
	NeedsPMF bool
	// New builds the policy.
	New Factory
}

var (
	mu      sync.RWMutex
	entries = map[string]Entry{}
)

// Register adds a policy factory under e.Name. It panics on an empty
// name, a nil factory, or a duplicate registration — all programmer
// errors surfaced at init() time.
func Register(e Entry) {
	if e.Name == "" {
		panic("registry: Register with empty name")
	}
	if e.New == nil {
		panic(fmt.Sprintf("registry: Register(%q) with nil factory", e.Name))
	}
	if e.Usage == "" {
		e.Usage = e.Name
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := entries[e.Name]; dup {
		panic(fmt.Sprintf("registry: policy %q registered twice", e.Name))
	}
	entries[e.Name] = e
}

// Lookup returns the entry registered under name.
func Lookup(name string) (Entry, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := entries[name]
	return e, ok
}

// Names returns the registered policy names in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(entries))
	for name := range entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Usages returns the registered usage strings (e.g. "lruk:K") in sorted
// name order, for CLI help text.
func Usages() []string {
	mu.RLock()
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		out = append(out, e)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	usages := make([]string, len(out))
	for i, e := range out {
		usages[i] = e.Usage
	}
	return usages
}

// Build parses spec, resolves its name against the registry and invokes
// the factory. Unknown names produce an error listing every registered
// name so CLI users see what is available.
func Build(spec string, repo *media.Repository, pmf []float64, seed uint64) (core.Policy, error) {
	if repo == nil {
		return nil, fmt.Errorf("registry: repository must not be nil")
	}
	parsed, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	e, ok := Lookup(parsed.Name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown policy %q (registered: %s)",
			spec, strings.Join(Names(), ", "))
	}
	p, err := e.New(Config{Spec: parsed, Repo: repo, PMF: pmf, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("registry: building policy %q: %w", spec, err)
	}
	return p, nil
}

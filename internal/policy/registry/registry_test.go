package registry_test

import (
	"strings"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/registry"

	_ "mediacache/internal/policy/all"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		name string
		k    int
		hasK bool
		err  bool
	}{
		{"lruk", "lruk", registry.DefaultK, false, false},
		{"lruk:5", "lruk", 5, true, false},
		{"greedydual", "greedydual", registry.DefaultK, false, false},
		{"lruk:0", "", 0, false, true},
		{"lruk:-1", "", 0, false, true},
		{"lruk:x", "", 0, false, true},
		{"lruk:", "", 0, false, true},
	}
	for _, c := range cases {
		got, err := registry.ParseSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got.Name != c.name || got.K != c.k || got.HasK != c.hasK {
			t.Errorf("ParseSpec(%q) = %+v, want {%s %d %v}", c.in, got, c.name, c.k, c.hasK)
		}
		if got.String() != c.in {
			t.Errorf("Spec(%q).String() = %q", c.in, got.String())
		}
	}
}

func TestBuildEveryRegisteredPolicy(t *testing.T) {
	repo := media.PaperRepository()
	pmf := make([]float64, repo.N())
	for i := range pmf {
		pmf[i] = 1 / float64(len(pmf))
	}
	for _, name := range registry.Names() {
		p, err := registry.Build(name, repo, pmf, 1)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if p == nil || p.Name() == "" {
			t.Errorf("Build(%q): empty policy", name)
		}
	}
	if n := len(registry.Names()); n < 16 {
		t.Errorf("only %d registered policies; the seed set has 16", n)
	}
}

func TestBuildErrors(t *testing.T) {
	repo := media.PaperRepository()
	if _, err := registry.Build("lru", nil, nil, 1); err == nil {
		t.Error("nil repository should fail")
	}
	_, err := registry.Build("nonesuch", repo, nil, 1)
	if err == nil {
		t.Fatal("unknown policy should fail")
	}
	// The error must list the registered names so CLI users see the menu.
	for _, name := range registry.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-policy error %q does not list %q", err, name)
		}
	}
	// Off-line Simple without frequencies.
	if _, err := registry.Build("simple", repo, nil, 1); err == nil {
		t.Error("simple without pmf should fail")
	}
	// Depth parsing propagates.
	if _, err := registry.Build("lruk:zero", repo, nil, 1); err == nil {
		t.Error("bad depth should fail")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, e registry.Entry) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register should panic", name)
			}
		}()
		registry.Register(e)
	}
	factory := func(registry.Config) (core.Policy, error) { return nil, nil }
	mustPanic("empty name", registry.Entry{New: factory})
	mustPanic("nil factory", registry.Entry{Name: "test-nil-factory"})
	mustPanic("duplicate", registry.Entry{Name: "lruk", New: factory})
}

func TestUsagesSortedAndComplete(t *testing.T) {
	names := registry.Names()
	usages := registry.Usages()
	if len(names) != len(usages) {
		t.Fatalf("%d names vs %d usages", len(names), len(usages))
	}
	for i, u := range usages {
		// Usage is the name itself or "name:K".
		if u != names[i] && !strings.HasPrefix(u, names[i]+":") {
			t.Errorf("usages[%d] = %q does not match name %q", i, u, names[i])
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

// TestOutOfTreeRegistration exercises the documented extension path: a
// policy registered outside internal/policy becomes buildable by spec.
func TestOutOfTreeRegistration(t *testing.T) {
	registry.Register(registry.Entry{
		Name:  "test-external",
		Usage: "test-external:K",
		// Delegates to the built-in LRU-K factory, as an out-of-tree
		// wrapper policy would.
		New: func(cfg registry.Config) (core.Policy, error) {
			e, ok := registry.Lookup("lruk")
			if !ok {
				t.Fatal("lruk not registered")
			}
			return e.New(cfg)
		},
	})
	repo := media.PaperRepository()
	p, err := registry.Build("test-external:3", repo, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "LRU-3" {
		t.Fatalf("delegated policy = %q", p.Name())
	}
	found := false
	for _, u := range registry.Usages() {
		if u == "test-external:K" {
			found = true
		}
	}
	if !found {
		t.Error("out-of-tree usage missing from Usages()")
	}
}

package admission

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(nil, 10, 0); err == nil {
		t.Error("nil inner should fail")
	}
	if _, err := Wrap(lruk.MustNew(10, 1), 0, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Wrap(lruk.MustNew(10, 1), 10, 100); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestName(t *testing.T) {
	f, _ := Wrap(lruk.MustNew(10, 2), 10, 0)
	if f.Name() != "LRU-2+2touch" {
		t.Fatalf("name = %q", f.Name())
	}
	f, _ = Wrap(lruk.MustNew(10, 2), 10, 500)
	if f.Name() != "LRU-2+2touch(w=500)" {
		t.Fatalf("name = %q", f.Name())
	}
}

func TestFirstReferenceBypassed(t *testing.T) {
	repo, _ := media.EquiRepository(5, 10)
	f, _ := Wrap(lruk.MustNew(5, 1), 5, 0)
	c, _ := core.New(repo, 20, f)
	out, err := c.Request(1)
	if err != nil {
		t.Fatal(err)
	}
	if out != core.MissBypassed {
		t.Fatalf("first touch = %v, want bypass", out)
	}
	if c.Resident(1) {
		t.Fatal("one-touch clip must not be cached")
	}
	out, _ = c.Request(1) // second touch: admitted
	if out != core.MissCached {
		t.Fatalf("second touch = %v, want cached", out)
	}
	out, _ = c.Request(1)
	if out != core.Hit {
		t.Fatalf("third touch = %v, want hit", out)
	}
	if f.Bypassed() != 1 || f.Admitted() != 1 {
		t.Fatalf("counters = %d/%d", f.Bypassed(), f.Admitted())
	}
}

func TestWindowExpiry(t *testing.T) {
	repo, _ := media.EquiRepository(5, 10)
	f, _ := Wrap(lruk.MustNew(5, 1), 5, 3)
	c, _ := core.New(repo, 20, f)
	c.Request(1) // t1: bypass
	c.Request(2) // t2
	c.Request(2) // t3: cached
	c.Request(2) // t4: hit
	c.Request(2) // t5: hit
	// Clip 1's previous touch was t1; at t6 the gap is 5 > window 3.
	out, _ := c.Request(1)
	if out != core.MissBypassed {
		t.Fatalf("stale previous touch should bypass, got %v", out)
	}
	// But now t6 is recent: t7 - t6 = 1 <= 3: admitted.
	out, _ = c.Request(1)
	if out != core.MissCached {
		t.Fatalf("fresh previous touch should admit, got %v", out)
	}
}

func TestInnerVetoRespected(t *testing.T) {
	repo, _ := media.EquiRepository(5, 10)
	inner := &vetoPolicy{Policy: lruk.MustNew(5, 1)}
	f, _ := Wrap(inner, 5, 0)
	c, _ := core.New(repo, 20, f)
	c.Request(1)
	out, _ := c.Request(1) // second touch, but inner vetoes everything
	if out != core.MissBypassed {
		t.Fatalf("inner veto ignored: %v", out)
	}
}

// vetoPolicy declines all admissions.
type vetoPolicy struct{ core.Policy }

func (v *vetoPolicy) Admit(media.Clip, vtime.Time) bool { return false }

func TestReset(t *testing.T) {
	repo, _ := media.EquiRepository(5, 10)
	f, _ := Wrap(lruk.MustNew(5, 1), 5, 0)
	c, _ := core.New(repo, 20, f)
	c.Request(1)
	c.Request(1)
	c.Reset()
	if f.Admitted() != 0 || f.Bypassed() != 0 {
		t.Fatal("counters not reset")
	}
	out, _ := c.Request(1)
	if out != core.MissBypassed {
		t.Fatal("history not reset: first touch after reset should bypass")
	}
}

// TestByteHitTradeoffAtTinyCache documents the empirical finding: under
// the paper's Zipf workload the two-touch rule raises byte hit rate (less
// churn of large cold clips) at a small cost in request hit rate — the
// quantitative argument behind the paper's full-materialization assumption.
func TestByteHitTradeoffAtTinyCache(t *testing.T) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	run := func(wrap bool) core.Stats {
		var p core.Policy = dynsimple.MustNew(repo.N(), 2)
		if wrap {
			var err error
			p, err = Wrap(p, repo.N(), 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		c, err := core.New(repo, repo.CacheSizeForRatio(0.0125), p)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.MustNewGenerator(dist, 42)
		for i := 0; i < 8000; i++ {
			if _, err := c.Request(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	plain := run(false)
	filtered := run(true)
	if filtered.ByteHitRate() <= plain.ByteHitRate() {
		t.Fatalf("two-touch filter should raise byte hit rate: %.4f vs %.4f",
			filtered.ByteHitRate(), plain.ByteHitRate())
	}
	// The request-hit cost exists but must stay moderate (< 5 points).
	if plain.HitRate()-filtered.HitRate() > 0.05 {
		t.Fatalf("hit-rate cost too large: %.4f vs %.4f", filtered.HitRate(), plain.HitRate())
	}
}

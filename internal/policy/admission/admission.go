// Package admission implements the Section 2 future-work scenario: "A
// future research direction is to consider scenarios where the cache
// manager does not materialize an unpopular clip."
//
// Filter wraps any replacement policy with a reference-based admission
// rule: a missed clip is materialized only if it was referenced before,
// within a configurable window of virtual time. One-hit wonders — clips
// referenced once and never again — are streamed from the base station
// without displacing the cached working set. The rule is the continuous-
// media analog of the two-touch admission filters used by web caches.
//
// The wrapped policy keeps full control of victim selection; only the
// Admit decision is intercepted. Bypassed references still reach the inner
// policy's Record, so its frequency estimates see the complete request
// stream.
//
// Empirical note (see the `admission` experiment): under the paper's
// Zipfian workload almost every clip is re-referenced eventually, so true
// one-hit wonders are rare. The rule therefore trades request hit rate
// (the delayed clip's second touch is a miss that eager materialization
// would have made a hit) for byte hit rate (the cache stops churning large
// cold clips through itself). This is quantitative support for the paper's
// Section 2 choice to materialize every referenced clip when optimizing
// hit rate.
package admission

import (
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// Filter is a two-touch admission wrapper around an inner policy. It
// implements core.Policy.
type Filter struct {
	core.Policy
	tracker *history.Tracker
	window  vtime.Duration
	n       int

	admitted uint64
	bypassed uint64
}

var _ core.Policy = (*Filter)(nil)

// Wrap returns inner guarded by the two-touch rule: a missed clip is
// admitted only if its previous reference happened within window ticks
// (window <= 0 means any previous reference qualifies, however old).
func Wrap(inner core.Policy, n int, window vtime.Duration) (*Filter, error) {
	if inner == nil {
		return nil, fmt.Errorf("admission: inner policy must not be nil")
	}
	if n <= 0 {
		return nil, fmt.Errorf("admission: repository size must be positive, got %d", n)
	}
	return &Filter{
		Policy:  inner,
		tracker: history.NewTracker(n, 2),
		window:  window,
		n:       n,
	}, nil
}

// Name implements core.Policy.
func (f *Filter) Name() string {
	if f.window > 0 {
		return fmt.Sprintf("%s+2touch(w=%d)", f.Policy.Name(), f.window)
	}
	return f.Policy.Name() + "+2touch"
}

// Record implements core.Policy: the filter's history advances alongside
// the inner policy's.
func (f *Filter) Record(clip media.Clip, now vtime.Time, hit bool) {
	f.tracker.Observe(clip.ID, now)
	f.Policy.Record(clip, now, hit)
}

// Admit implements core.Policy: the inner policy can still veto; otherwise
// a clip passes only with a prior reference inside the window. The engine
// calls Record before Admit, so the clip's most recent tracked reference is
// the current one and its second-most-recent is the previous touch.
func (f *Filter) Admit(clip media.Clip, now vtime.Time) bool {
	if !f.Policy.Admit(clip, now) {
		return false
	}
	prev, ok := f.tracker.KthLastTime(clip.ID)
	if !ok {
		f.bypassed++
		return false // first-ever reference
	}
	if f.window > 0 && now-prev > f.window {
		f.bypassed++
		return false // previous touch too old
	}
	f.admitted++
	return true
}

// Admitted and Bypassed report the filter's decisions (admitted counts
// only misses that passed the two-touch rule).
func (f *Filter) Admitted() uint64 { return f.admitted }

// Bypassed returns how many misses the rule declined to materialize.
func (f *Filter) Bypassed() uint64 { return f.bypassed }

// Reset implements core.Policy.
func (f *Filter) Reset() {
	f.Policy.Reset()
	f.tracker = history.NewTracker(f.n, 2)
	f.admitted, f.bypassed = 0, 0
}

// Package conformance is a reusable test harness asserting the contract
// every core.Policy implementation must honor, independent of its
// replacement strategy:
//
//   - determinism: identical instances driven by identical traces make
//     identical decisions (the paper's footnote 5 discipline);
//   - liveness: the policy always supplies usable victims, so the engine
//     never errors on well-formed workloads — including adversarial
//     repositories (one giant clip among dwarfs, single-slot caches);
//   - reset semantics: Reset restores the exact initial behavior;
//   - warm adoption: clips placed via Warm (bypassing the miss path) are
//     handled gracefully by victim selection.
//
// Each check is exposed through Run, which policy tests invoke with a
// factory; the suite's own test file runs every implementation in the
// repository through it.
package conformance

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// Factory builds a fresh policy instance for a repository of n clips.
// Implementations must return independent instances on each call.
type Factory func(n int) (core.Policy, error)

// Run executes the full conformance suite against the factory.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	t.Run(name+"/determinism", func(t *testing.T) { checkDeterminism(t, factory) })
	t.Run(name+"/liveness", func(t *testing.T) { checkLiveness(t, factory) })
	t.Run(name+"/adversarialSizes", func(t *testing.T) { checkAdversarial(t, factory) })
	t.Run(name+"/singleSlot", func(t *testing.T) { checkSingleSlot(t, factory) })
	t.Run(name+"/resetReplay", func(t *testing.T) { checkResetReplay(t, factory) })
	t.Run(name+"/warmAdoption", func(t *testing.T) { checkWarmAdoption(t, factory) })
	t.Run(name+"/segmented", func(t *testing.T) { checkSegmented(t, factory) })
}

// paperCache builds a cache on the 576-clip repository at ratio.
func paperCache(t *testing.T, factory Factory, ratio float64) *core.Cache {
	t.Helper()
	repo := media.PaperRepository()
	p, err := factory(repo.N())
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	c, err := core.New(repo, repo.CacheSizeForRatio(ratio), p)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return c
}

// drive issues n Zipf requests, failing the test on any engine error.
func drive(t *testing.T, c *core.Cache, seed uint64, n int) []core.Outcome {
	t.Helper()
	gen := workload.MustNewGenerator(zipf.MustNew(c.Repository().N(), zipf.DefaultMean), seed)
	outcomes := make([]core.Outcome, 0, n)
	for i := 0; i < n; i++ {
		id := gen.Next()
		out, err := c.Request(id)
		if err != nil {
			t.Fatalf("request %d (clip %d): %v", i, id, err)
		}
		if c.UsedBytes() > c.Capacity() {
			t.Fatalf("request %d: capacity exceeded (%v > %v)", i, c.UsedBytes(), c.Capacity())
		}
		outcomes = append(outcomes, out)
	}
	return outcomes
}

func checkDeterminism(t *testing.T, factory Factory) {
	a := paperCache(t, factory, 0.05)
	b := paperCache(t, factory, 0.05)
	oa := drive(t, a, 7, 2500)
	ob := drive(t, b, 7, 2500)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("request %d: outcomes diverge (%v vs %v)", i, oa[i], ob[i])
		}
	}
	ra, rb := core.CollectResidentIDs(a), core.CollectResidentIDs(b)
	if len(ra) != len(rb) {
		t.Fatalf("resident counts diverge (%d vs %d)", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("resident sets diverge")
		}
	}
}

func checkLiveness(t *testing.T, factory Factory) {
	// A small cache forces constant eviction; any failure to supply
	// victims surfaces as an engine error inside drive.
	c := paperCache(t, factory, 0.0125)
	drive(t, c, 11, 3000)
	if c.Stats().Evictions == 0 {
		t.Fatal("tiny cache saw no evictions; workload broken")
	}
}

func checkAdversarial(t *testing.T, factory Factory) {
	// One giant clip among dwarfs: inserting the giant must evict many
	// dwarfs in one request; inserting dwarfs after the giant must evict it.
	clips := make([]media.Clip, 0, 33)
	clips = append(clips, media.Clip{ID: 1, Size: 1000})
	for i := 2; i <= 33; i++ {
		clips = append(clips, media.Clip{ID: media.ClipID(i), Size: 10})
	}
	repo, err := media.NewRepository(clips)
	if err != nil {
		t.Fatal(err)
	}
	p, err := factory(repo.N())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(repo, 1100, p)
	if err != nil {
		t.Fatal(err)
	}
	src := randutil.NewSource(3)
	for i := 0; i < 600; i++ {
		var id media.ClipID
		if i%13 == 0 {
			id = 1 // periodically demand the giant
		} else {
			id = media.ClipID(src.Intn(32) + 2)
		}
		if _, err := c.Request(id); err != nil {
			t.Fatalf("request %d (clip %d): %v", i, id, err)
		}
		if c.UsedBytes() > c.Capacity() {
			t.Fatalf("capacity exceeded at request %d", i)
		}
	}
}

func checkSingleSlot(t *testing.T, factory Factory) {
	// The cache fits exactly one clip: every miss evicts the sole resident.
	repo, err := media.EquiRepository(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	p, err := factory(repo.N())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(repo, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	src := randutil.NewSource(5)
	for i := 0; i < 300; i++ {
		id := media.ClipID(src.Intn(8) + 1)
		if _, err := c.Request(id); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if c.NumResident() > 1 {
			t.Fatalf("single-slot cache holds %d clips", c.NumResident())
		}
	}
}

func checkResetReplay(t *testing.T, factory Factory) {
	c := paperCache(t, factory, 0.05)
	first := drive(t, c, 9, 1500)
	c.Reset()
	if c.NumResident() != 0 || c.UsedBytes() != 0 || c.Stats().Requests != 0 {
		t.Fatal("Reset left residue")
	}
	second := drive(t, c, 9, 1500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: replay after Reset diverged (%v vs %v)", i, first[i], second[i])
		}
	}
}

func checkWarmAdoption(t *testing.T, factory Factory) {
	c := paperCache(t, factory, 0.05)
	// Pre-load some audio clips (small, even ids) without requests.
	c.Warm([]media.ClipID{2, 4, 6, 8, 10})
	if c.NumResident() == 0 {
		t.Fatal("warm placed nothing")
	}
	// The policy must handle evicting warm clips it never saw requested.
	drive(t, c, 13, 1500)
}

// segmentedCache builds a segmented, prefix-pinned cache on the paper
// repository at ratio.
func segmentedCache(t *testing.T, factory Factory, ratio float64) *core.Cache {
	t.Helper()
	repo := media.PaperRepository()
	p, err := factory(repo.N())
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	c, err := core.New(repo, repo.CacheSizeForRatio(ratio), p,
		core.WithSegments(64*media.MB), core.WithPrefixAdmission(2))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return c
}

// driveRanges issues n partial-content references and returns their results,
// failing on engine errors, capacity violations or broken byte identities.
func driveRanges(t *testing.T, c *core.Cache, seed uint64, n int) []core.RangeResult {
	t.Helper()
	gen, err := workload.NewRangeGenerator(c.Repository(),
		zipf.MustNew(c.Repository().N(), zipf.DefaultMean), seed, workload.DefaultRangeConfig())
	if err != nil {
		t.Fatal(err)
	}
	results := make([]core.RangeResult, 0, n)
	for i := 0; i < n; i++ {
		req := gen.Next()
		res, err := c.RequestRange(req.Clip, req.Start, req.Length)
		if err != nil {
			t.Fatalf("request %d (%+v): %v", i, req, err)
		}
		if c.UsedBytes() > c.Capacity() {
			t.Fatalf("request %d: capacity exceeded (%v > %v)", i, c.UsedBytes(), c.Capacity())
		}
		results = append(results, res)
	}
	st := c.Stats()
	if st.BytesHit+st.BytesFetched+st.BytesFailed != st.BytesReferenced {
		t.Fatalf("segment byte identity broken: %d+%d+%d != %d",
			st.BytesHit, st.BytesFetched, st.BytesFailed, st.BytesReferenced)
	}
	return results
}

// checkSegmented drives the policy under segment-granular residency with a
// pinned prefix: victim selection must stay live while trims and evictions
// interleave, decisions must stay deterministic, and the per-segment byte
// identities must hold throughout.
func checkSegmented(t *testing.T, factory Factory) {
	a := segmentedCache(t, factory, 0.05)
	b := segmentedCache(t, factory, 0.05)
	ra := driveRanges(t, a, 17, 2000)
	rb := driveRanges(t, b, 17, 2000)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("request %d: segmented outcomes diverge (%+v vs %+v)", i, ra[i], rb[i])
		}
	}
	st := a.Stats()
	if st.SegmentsEvicted == 0 && st.Evictions == 0 {
		t.Fatal("segmented drive never evicted; workload broken")
	}
	if st.PartialHits == 0 {
		t.Fatal("segmented drive never partially hit; workload broken")
	}
}

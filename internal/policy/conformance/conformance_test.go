package conformance

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/policy/admission"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/policy/gdfreq"
	"mediacache/internal/policy/gdsp"
	"mediacache/internal/policy/greedydual"
	"mediacache/internal/policy/igd"
	"mediacache/internal/policy/lfu"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/policy/lrusk"
	"mediacache/internal/policy/random"
	"mediacache/internal/policy/simple"
)

// uniformPMF supplies the off-line Simple technique's frequency knowledge
// in conformance runs (the suite exercises mechanics, not accuracy).
func uniformPMF(n int) []float64 {
	pmf := make([]float64, n)
	for i := range pmf {
		pmf[i] = 1 / float64(n)
	}
	return pmf
}

// TestAllPolicies runs the conformance suite over every implementation.
func TestAllPolicies(t *testing.T) {
	factories := map[string]Factory{
		"Simple": func(n int) (core.Policy, error) { return simple.New(uniformPMF(n)) },
		"Random": func(n int) (core.Policy, error) { return random.New(42), nil },
		"LRU-1":  func(n int) (core.Policy, error) { return lruk.New(n, 1) },
		"LRU-2":  func(n int) (core.Policy, error) { return lruk.New(n, 2) },
		"LRU-S2": func(n int) (core.Policy, error) { return lrusk.New(n, 2) },
		"LRU-S2-tree": func(n int) (core.Policy, error) {
			return lrusk.NewFast(n, 2)
		},
		"DYNSimple-2":  func(n int) (core.Policy, error) { return dynsimple.New(n, 2) },
		"DYNSimple-32": func(n int) (core.Policy, error) { return dynsimple.New(n, 32) },
		"DYNSimple-norefine": func(n int) (core.Policy, error) {
			return dynsimple.New(n, 2, dynsimple.WithoutRefinement())
		},
		"GreedyDual":       func(n int) (core.Policy, error) { return greedydual.New(nil, 42), nil },
		"GreedyDual-naive": func(n int) (core.Policy, error) { return greedydual.NewNaive(nil, 42), nil },
		"GreedyDual-Freq":  func(n int) (core.Policy, error) { return gdfreq.New(nil, 42), nil },
		"GDSP":             func(n int) (core.Policy, error) { return gdsp.New(nil, 1, 42) },
		"IGD":              func(n int) (core.Policy, error) { return igd.New(n, 2, 42) },
		"IGD-indexed": func(n int) (core.Policy, error) {
			return igd.New(n, 2, 42, igd.Indexed())
		},
		"IGD-frozen": func(n int) (core.Policy, error) {
			return igd.New(n, 2, 42, igd.FrozenAging())
		},
		"LFU":    func(n int) (core.Policy, error) { return lfu.New(), nil },
		"LFU-DA": func(n int) (core.Policy, error) { return lfu.NewDA(), nil },
		"DYNSimple+2touch": func(n int) (core.Policy, error) {
			inner, err := dynsimple.New(n, 2)
			if err != nil {
				return nil, err
			}
			return admission.Wrap(inner, n, 0)
		},
	}
	for name, factory := range factories {
		Run(t, name, factory)
	}
}

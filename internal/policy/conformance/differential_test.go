package conformance

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/policy/gdfreq"
	"mediacache/internal/policy/gdsp"
	"mediacache/internal/policy/greedydual"
	"mediacache/internal/policy/lfu"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/policy/lrusk"
	"mediacache/internal/policy/simple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// evictionLog records the exact victim ID sequence an engine produces.
type evictionLog struct {
	ids []media.ClipID
}

func (l *evictionLog) Observe(ev core.Event) {
	if ev.Type == core.EventEviction {
		l.ids = append(l.ids, ev.Clip.ID)
	}
}

// syntheticFreq builds the frequency vector Simple's off-line variant needs.
func syntheticFreq(n int) []float64 {
	freq := make([]float64, n)
	for i := range freq {
		freq[i] = 1.0 / float64(i+1)
	}
	return freq
}

// diffPair builds an indexed instance and its scan-mode twin.
type diffPair struct {
	name    string
	indexed func(n int) core.Policy
	scan    func(n int) core.Policy
}

func diffPairs() []diffPair {
	return []diffPair{
		{"greedydual",
			func(n int) core.Policy { return greedydual.New(greedydual.UniformCost, 42) },
			func(n int) core.Policy { return greedydual.New(greedydual.UniformCost, 42).Scan() }},
		{"greedydual-sizecost",
			func(n int) core.Policy { return greedydual.New(greedydual.SizeCost, 42) },
			func(n int) core.Policy { return greedydual.New(greedydual.SizeCost, 42).Scan() }},
		{"gdfreq",
			func(n int) core.Policy { return gdfreq.New(nil, 42) },
			func(n int) core.Policy { return gdfreq.New(nil, 42).Scan() }},
		{"gdsp",
			func(n int) core.Policy { return gdsp.MustNew(nil, 0, 42) },
			func(n int) core.Policy { return gdsp.MustNew(nil, 0, 42).Scan() }},
		{"lruk",
			func(n int) core.Policy { return lruk.MustNew(n, 2) },
			func(n int) core.Policy { return lruk.MustNew(n, 2).Scan() }},
		{"lruk-k1",
			func(n int) core.Policy { return lruk.MustNew(n, 1) },
			func(n int) core.Policy { return lruk.MustNew(n, 1).Scan() }},
		{"lrusk",
			func(n int) core.Policy { return lrusk.MustNew(n, 2) },
			func(n int) core.Policy { return lrusk.MustNew(n, 2).Scan() }},
		{"lfu",
			func(n int) core.Policy { return lfu.New() },
			func(n int) core.Policy { return lfu.New().Scan() }},
		{"lfu-da",
			func(n int) core.Policy { return lfu.NewDA() },
			func(n int) core.Policy { return lfu.NewDA().Scan() }},
		{"simple",
			func(n int) core.Policy { return simple.MustNew(syntheticFreq(n)) },
			func(n int) core.Policy { return simple.MustNew(syntheticFreq(n)).Scan() }},
		{"dynsimple",
			func(n int) core.Policy { return dynsimple.MustNew(n, 2) },
			func(n int) core.Policy { return dynsimple.MustNew(n, 2).Scan() }},
		{"dynsimple-no-refine",
			func(n int) core.Policy { return dynsimple.MustNew(n, 2, dynsimple.WithoutRefinement()) },
			func(n int) core.Policy { return dynsimple.MustNew(n, 2, dynsimple.WithoutRefinement()).Scan() }},
	}
}

// runDifferential drives the indexed policy and its scan twin through one
// identical trace and requires identical outcome sequences, identical victim
// ID sequences (in eviction order), and identical final resident sets.
func runDifferential(t *testing.T, pair diffPair, ratio float64, seed uint64, requests int, warm []media.ClipID) {
	t.Helper()
	repo := media.PaperRepository()
	logIdx, logScan := &evictionLog{}, &evictionLog{}
	cIdx, err := core.New(repo, repo.CacheSizeForRatio(ratio), pair.indexed(repo.N()), core.WithObserver(logIdx))
	if err != nil {
		t.Fatal(err)
	}
	cScan, err := core.New(repo, repo.CacheSizeForRatio(ratio), pair.scan(repo.N()), core.WithObserver(logScan))
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) > 0 {
		cIdx.Warm(warm)
		cScan.Warm(warm)
	}
	gen := workload.MustNewGenerator(zipf.MustNew(repo.N(), zipf.DefaultMean), seed)
	for i := 0; i < requests; i++ {
		id := gen.Next()
		a, errA := cIdx.Request(id)
		b, errB := cScan.Request(id)
		if errA != nil || errB != nil {
			t.Fatalf("request %d (clip %d): indexed err=%v scan err=%v", i, id, errA, errB)
		}
		if a != b {
			t.Fatalf("request %d (clip %d): outcome diverged indexed=%v scan=%v", i, id, a, b)
		}
	}
	if len(logIdx.ids) != len(logScan.ids) {
		t.Fatalf("victim counts diverge: indexed=%d scan=%d", len(logIdx.ids), len(logScan.ids))
	}
	for i := range logIdx.ids {
		if logIdx.ids[i] != logScan.ids[i] {
			t.Fatalf("victim %d diverged: indexed=%d scan=%d", i, logIdx.ids[i], logScan.ids[i])
		}
	}
	ra, rb := core.CollectResidentIDs(cIdx), core.CollectResidentIDs(cScan)
	if len(ra) != len(rb) {
		t.Fatalf("resident counts diverge: indexed=%d scan=%d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("resident sets diverge")
		}
	}
	if logIdx.ids == nil {
		t.Fatal("trace produced no evictions; differential check vacuous")
	}
}

// TestIndexedMatchesScan is the correctness proof for the indexed victim
// structures: on randomized Zipf traces every indexed policy must produce the
// byte-identical victim ID sequence its original O(n) scan produced.
func TestIndexedMatchesScan(t *testing.T) {
	for _, pair := range diffPairs() {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for _, ratio := range []float64{0.05, 0.0125} {
				for seed := uint64(1); seed <= 3; seed++ {
					runDifferential(t, pair, ratio, seed, 2500, nil)
				}
			}
		})
	}
}

// TestIndexedMatchesScanWarm pre-loads clips via Warm, which skips the miss
// and admission path entirely; indexed and scan twins must still agree on
// every later victim.
func TestIndexedMatchesScanWarm(t *testing.T) {
	warm := []media.ClipID{2, 4, 6, 8, 10, 12}
	for _, pair := range diffPairs() {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			runDifferential(t, pair, 0.05, 17, 2000, warm)
		})
	}
}

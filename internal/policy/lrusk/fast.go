package lrusk

import (
	"fmt"
	"sort"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// Fast is the tree-based LRU-SK implementation the paper names as future
// work in Section 5 ("develop efficient implementations ... may require
// tree-based data structures to minimize the complexity of identifying a
// victim clip").
//
// The insight: the LRU-SK eviction score Δ_K(x,t)·s(x) depends on the
// current time t, so no single static order exists across clip sizes — but
// *within* one size class the ordering is static: larger Δ_K means smaller
// t_K, independent of t. Fast therefore keeps one red-black tree per
// distinct clip size, ordered by (t_K, t_last, id); the per-class best
// victim is the tree minimum, and the global victim is chosen by comparing
// one candidate score per class. Clips with incomplete history (infinite
// Δ_K) live in per-class side trees ordered by (t_last, id) and are always
// preferred, largest class first — exactly the scan implementation's
// ordering, which the equivalence property test asserts decision-for-
// decision.
//
// Victim selection costs O(C + log n) for C distinct sizes (the paper's
// repository has 6) instead of the scan's O(n).
type Fast struct {
	k       int
	n       int
	tracker *history.Tracker

	// full holds resident clips with complete K-reference history, one tree
	// per size class ordered by (t_K, t_last, id).
	full map[media.Bytes]*rbtree.Tree[fullKey, media.ClipID]
	// partial holds resident clips with incomplete history, one tree per
	// size class ordered by (t_last, id).
	partial map[media.Bytes]*rbtree.Tree[partialKey, media.ClipID]
	// resident records where each resident clip currently lives so that
	// re-keying on reference and removal on eviction are O(log n).
	resident map[media.ClipID]location
	// sizesDesc caches the distinct resident size classes in descending
	// order (rebuilt lazily when classes appear).
	sizesDesc []media.Bytes
}

// fullKey orders complete-history clips: smaller t_K = larger Δ_K = better
// victim; ties prefer the older last reference, then the lower id.
type fullKey struct {
	kth  vtime.Time
	last vtime.Time
	id   media.ClipID
}

func lessFull(a, b fullKey) bool {
	if a.kth != b.kth {
		return a.kth < b.kth
	}
	if a.last != b.last {
		return a.last < b.last
	}
	return a.id < b.id
}

// partialKey orders incomplete-history clips by LRU then id.
type partialKey struct {
	last vtime.Time
	id   media.ClipID
}

func lessPartial(a, b partialKey) bool {
	if a.last != b.last {
		return a.last < b.last
	}
	return a.id < b.id
}

// location records a resident clip's tree and key.
type location struct {
	size   media.Bytes
	isFull bool
	fk     fullKey
	pk     partialKey
}

var _ core.Policy = (*Fast)(nil)

// NewFast returns a tree-based LRU-SK policy for a repository of n clips.
func NewFast(n, k int) (*Fast, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lrusk: repository size must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("lrusk: K must be positive, got %d", k)
	}
	return &Fast{
		k:        k,
		n:        n,
		tracker:  history.NewTracker(n, k),
		full:     make(map[media.Bytes]*rbtree.Tree[fullKey, media.ClipID]),
		partial:  make(map[media.Bytes]*rbtree.Tree[partialKey, media.ClipID]),
		resident: make(map[media.ClipID]location),
	}, nil
}

// MustNewFast is like NewFast but panics on error.
func MustNewFast(n, k int) *Fast {
	p, err := NewFast(n, k)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Fast) Name() string { return fmt.Sprintf("LRU-S%d(tree)", p.k) }

// K returns the history depth.
func (p *Fast) K() int { return p.k }

// Tracker exposes the underlying reference history.
func (p *Fast) Tracker() *history.Tracker { return p.tracker }

// classFor returns (creating if needed) the trees for a size class.
func (p *Fast) classFor(size media.Bytes) (*rbtree.Tree[fullKey, media.ClipID], *rbtree.Tree[partialKey, media.ClipID]) {
	f, ok := p.full[size]
	if !ok {
		f = rbtree.New[fullKey, media.ClipID](lessFull)
		p.full[size] = f
		p.partial[size] = rbtree.New[partialKey, media.ClipID](lessPartial)
		p.sizesDesc = append(p.sizesDesc, size)
		sort.Slice(p.sizesDesc, func(i, j int) bool { return p.sizesDesc[i] > p.sizesDesc[j] })
	}
	return f, p.partial[size]
}

// index inserts a resident clip into the tree matching its current history.
func (p *Fast) index(clip media.Clip) {
	f, pt := p.classFor(clip.Size)
	last, _ := p.tracker.LastTime(clip.ID)
	if kth, ok := p.tracker.KthLastTime(clip.ID); ok {
		key := fullKey{kth: kth, last: last, id: clip.ID}
		f.Put(key, clip.ID)
		p.resident[clip.ID] = location{size: clip.Size, isFull: true, fk: key}
		return
	}
	key := partialKey{last: last, id: clip.ID}
	pt.Put(key, clip.ID)
	p.resident[clip.ID] = location{size: clip.Size, pk: key}
}

// unindex removes a resident clip from its tree, reporting whether it was
// indexed.
func (p *Fast) unindex(id media.ClipID) (location, bool) {
	loc, ok := p.resident[id]
	if !ok {
		return location{}, false
	}
	if loc.isFull {
		p.full[loc.size].Delete(loc.fk)
	} else {
		p.partial[loc.size].Delete(loc.pk)
	}
	delete(p.resident, id)
	return loc, true
}

// Record implements core.Policy: the history advances and a resident clip
// is re-keyed under its new (t_K, t_last).
func (p *Fast) Record(clip media.Clip, now vtime.Time, hit bool) {
	resident := false
	if _, ok := p.resident[clip.ID]; ok {
		p.unindex(clip.ID)
		resident = true
	}
	p.tracker.Observe(clip.ID, now)
	if resident {
		p.index(clip)
	}
}

// Admit implements core.Policy.
func (p *Fast) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: per-class tree minima are compared by the
// same ordering as the scan implementation until need bytes are covered.
func (p *Fast) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	var out []media.ClipID
	var freed media.Bytes
	for freed < need {
		id, size, ok := p.popBest(now)
		if !ok {
			break
		}
		out = append(out, id)
		freed += size
	}
	// The engine will confirm each eviction through OnEvict; entries are
	// already unindexed, so OnEvict's removal is a no-op for them.
	_ = view
	return out
}

// popBest removes and returns the current best victim.
func (p *Fast) popBest(now vtime.Time) (media.ClipID, media.Bytes, bool) {
	// Incomplete-history clips first: infinite score; largest class wins,
	// then LRU within the class.
	for _, size := range p.sizesDesc {
		pt := p.partial[size]
		if pt.Len() == 0 {
			continue
		}
		key, id, _ := pt.Min()
		pt.Delete(key)
		delete(p.resident, id)
		return id, size, true
	}
	// Otherwise compare one complete-history candidate per class.
	var (
		bestID    media.ClipID
		bestSize  media.Bytes
		bestKey   fullKey
		bestScore float64
		found     bool
	)
	for _, size := range p.sizesDesc {
		f := p.full[size]
		if f.Len() == 0 {
			continue
		}
		key, id, _ := f.Min()
		score := float64(now-key.kth) * float64(size)
		better := false
		switch {
		case !found:
			better = true
		case score != bestScore:
			better = score > bestScore
		case key.last != bestKey.last:
			better = key.last < bestKey.last
		default:
			better = id < bestID
		}
		if better {
			bestID, bestSize, bestKey, bestScore, found = id, size, key, score, true
		}
	}
	if !found {
		return 0, 0, false
	}
	p.full[bestSize].Delete(bestKey)
	delete(p.resident, bestID)
	return bestID, bestSize, true
}

// OnInsert implements core.Policy.
func (p *Fast) OnInsert(clip media.Clip, _ vtime.Time) {
	p.index(clip)
}

// OnEvict implements core.Policy. Victims chosen by popBest are already
// unindexed; external evictions (none in practice) are handled too.
func (p *Fast) OnEvict(id media.ClipID, _ vtime.Time) {
	p.unindex(id)
}

// Reset implements core.Policy.
func (p *Fast) Reset() {
	p.tracker = history.NewTracker(p.n, p.k)
	p.full = make(map[media.Bytes]*rbtree.Tree[fullKey, media.ClipID])
	p.partial = make(map[media.Bytes]*rbtree.Tree[partialKey, media.ClipID])
	p.resident = make(map[media.ClipID]location)
	p.sizesDesc = nil
}

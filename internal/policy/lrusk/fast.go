package lrusk

import (
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// Fast is the tree-based LRU-SK implementation the paper names as future
// work in Section 5 ("develop efficient implementations ... may require
// tree-based data structures to minimize the complexity of identifying a
// victim clip"). The victim-selection machinery lives in skIndex, shared
// with the default Policy (which now runs the same indexed algorithm); Fast
// remains as the named "(tree)" variant so experiments can quote it
// explicitly, and as the historical home of the approach.
type Fast struct {
	k       int
	n       int
	tracker *history.Tracker
	idx     *skIndex
	out     []media.ClipID
}

var _ core.Policy = (*Fast)(nil)

// NewFast returns a tree-based LRU-SK policy for a repository of n clips.
func NewFast(n, k int) (*Fast, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lrusk: repository size must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("lrusk: K must be positive, got %d", k)
	}
	tracker := history.NewTracker(n, k)
	return &Fast{k: k, n: n, tracker: tracker, idx: newSKIndex(tracker)}, nil
}

// MustNewFast is like NewFast but panics on error.
func MustNewFast(n, k int) *Fast {
	p, err := NewFast(n, k)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Fast) Name() string { return fmt.Sprintf("LRU-S%d(tree)", p.k) }

// K returns the history depth.
func (p *Fast) K() int { return p.k }

// Tracker exposes the underlying reference history.
func (p *Fast) Tracker() *history.Tracker { return p.tracker }

// Record implements core.Policy: the history advances and a resident clip
// is re-keyed under its new (t_K, t_last).
func (p *Fast) Record(clip media.Clip, now vtime.Time, _ bool) {
	_, resident := p.idx.unindex(clip.ID)
	p.tracker.Observe(clip.ID, now)
	if resident {
		p.idx.index(clip)
	}
}

// Admit implements core.Policy.
func (p *Fast) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: per-class tree minima are compared by the
// same ordering as the scan implementation until need bytes are covered.
// The returned slice is reused across calls.
func (p *Fast) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	// Resync with the engine's resident set: warm placement and the
	// segmented engine's partial trims leave clips resident that popBest
	// already removed from the index, and they must stay evictable.
	if p.idx.len() != view.NumResident() {
		view.ForEachResident(func(c media.Clip) bool {
			if !p.idx.has(c.ID) {
				p.idx.index(c)
			}
			return true
		})
	}
	p.out = p.out[:0]
	var freed media.Bytes
	for freed < need {
		id, size, ok := p.idx.popBest(now)
		if !ok {
			break
		}
		p.out = append(p.out, id)
		freed += size
	}
	// The engine will confirm each eviction through OnEvict; entries are
	// already unindexed, so OnEvict's removal is a no-op for them.
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}

// OnInsert implements core.Policy.
func (p *Fast) OnInsert(clip media.Clip, _ vtime.Time) {
	p.idx.index(clip)
}

// OnEvict implements core.Policy. Victims chosen by popBest are already
// unindexed; external evictions (none in practice) are handled too.
func (p *Fast) OnEvict(id media.ClipID, _ vtime.Time) {
	p.idx.unindex(id)
}

// Reset implements core.Policy.
func (p *Fast) Reset() {
	p.tracker = history.NewTracker(p.n, p.k)
	p.idx.reset(p.tracker)
	p.out = p.out[:0]
}

// Package lrusk implements LRU-SK, the paper's size-aware variant of LRU-K
// (Section 4.3).
//
// Where LRU-K evicts the clip with the maximum backward-K distance Δ_K,
// LRU-SK evicts the clip with the maximum Δ_K × size — equivalently the
// minimum 1/(Δ_K × s_i) — so that large, stale clips leave first. With K=2
// this ranks victims identically to DYNSimple(K=2), as Section 4.4 observes:
// DYNSimple's estimated byte-freq is (K/Δ_K)/s_i, whose ascending order is
// exactly descending Δ_K × s_i.
package lrusk

import (
	"fmt"
	"math"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// Policy is the LRU-SK technique. It implements core.Policy.
type Policy struct {
	k       int
	n       int
	tracker *history.Tracker
}

var _ core.Policy = (*Policy)(nil)

// New returns an LRU-SK policy for a repository of n clips.
func New(n, k int) (*Policy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lrusk: repository size must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("lrusk: K must be positive, got %d", k)
	}
	return &Policy{k: k, n: n, tracker: history.NewTracker(n, k)}, nil
}

// MustNew is like New but panics on error; for experiment setup.
func MustNew(n, k int) *Policy {
	p, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string { return fmt.Sprintf("LRU-S%d", p.k) }

// K returns the history depth.
func (p *Policy) K() int { return p.k }

// Tracker exposes the underlying reference history.
func (p *Policy) Tracker() *history.Tracker { return p.tracker }

// Record implements core.Policy.
func (p *Policy) Record(clip media.Clip, now vtime.Time, _ bool) {
	p.tracker.Observe(clip.ID, now)
}

// Admit implements core.Policy.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Score returns the eviction key Δ_K × size for a resident clip; larger
// means a better victim. Clips with fewer than K references score +Inf.
func (p *Policy) Score(c media.Clip, now vtime.Time) float64 {
	return p.tracker.BackwardKDistance(c.ID, now) * float64(c.Size)
}

// Victims implements core.Policy: repeatedly evict the clip with the maximum
// Δ_K × size until need bytes are covered.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	resident := view.ResidentClips()
	taken := make(map[media.ClipID]bool, len(resident))
	var out []media.ClipID
	var freed media.Bytes
	for freed < need && len(out) < len(resident) {
		best := -1
		var bestScore float64
		var bestLast vtime.Time
		for i, c := range resident {
			if taken[c.ID] {
				continue
			}
			score := p.Score(c, now)
			last, _ := p.tracker.LastTime(c.ID)
			if best == -1 || better(bestScore, bestLast, resident[best], score, last, c) {
				best, bestScore, bestLast = i, score, last
			}
		}
		if best == -1 {
			break
		}
		c := resident[best]
		taken[c.ID] = true
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// better reports whether the candidate is a better victim than the
// incumbent: larger Δ_K×size wins; among infinite scores the larger size
// wins (maximizing freed space), then the older last reference, then the
// lower id.
func better(incScore float64, incLast vtime.Time, incClip media.Clip,
	score float64, last vtime.Time, clip media.Clip) bool {
	switch {
	case math.IsInf(score, 1) && math.IsInf(incScore, 1):
		if clip.Size != incClip.Size {
			return clip.Size > incClip.Size
		}
		if last != incLast {
			return last < incLast
		}
		return clip.ID < incClip.ID
	case score != incScore:
		return score > incScore
	case last != incLast:
		return last < incLast
	default:
		return clip.ID < incClip.ID
	}
}

// OnInsert implements core.Policy.
func (p *Policy) OnInsert(media.Clip, vtime.Time) {}

// OnEvict implements core.Policy. History is retained across evictions.
func (p *Policy) OnEvict(media.ClipID, vtime.Time) {}

// Reset implements core.Policy.
func (p *Policy) Reset() { p.tracker = history.NewTracker(p.n, p.k) }

// Package lrusk implements LRU-SK, the paper's size-aware variant of LRU-K
// (Section 4.3).
//
// Where LRU-K evicts the clip with the maximum backward-K distance Δ_K,
// LRU-SK evicts the clip with the maximum Δ_K × size — equivalently the
// minimum 1/(Δ_K × s_i) — so that large, stale clips leave first. With K=2
// this ranks victims identically to DYNSimple(K=2), as Section 4.4 observes:
// DYNSimple's estimated byte-freq is (K/Δ_K)/s_i, whose ascending order is
// exactly descending Δ_K × s_i.
package lrusk

import (
	"fmt"
	"math"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// Policy is the LRU-SK technique. It implements core.Policy.
type Policy struct {
	k       int
	n       int
	tracker *history.Tracker

	// scan disables the per-size-class tree index and restores the original
	// O(n)-per-victim linear scan (the differential-test baseline).
	scan bool
	idx  *skIndex
	out  []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// New returns an LRU-SK policy for a repository of n clips.
func New(n, k int) (*Policy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lrusk: repository size must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("lrusk: K must be positive, got %d", k)
	}
	tracker := history.NewTracker(n, k)
	return &Policy{k: k, n: n, tracker: tracker, idx: newSKIndex(tracker)}, nil
}

// Scan switches the policy to the original O(n)-per-victim linear-scan
// selection; decisions are identical either way.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// MustNew is like New but panics on error; for experiment setup.
func MustNew(n, k int) *Policy {
	p, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string { return fmt.Sprintf("LRU-S%d", p.k) }

// K returns the history depth.
func (p *Policy) K() int { return p.k }

// Tracker exposes the underlying reference history.
func (p *Policy) Tracker() *history.Tracker { return p.tracker }

// Record implements core.Policy. In indexed mode a resident clip is re-keyed
// under its post-reference (t_K, t_last).
func (p *Policy) Record(clip media.Clip, now vtime.Time, _ bool) {
	if !p.scan {
		if _, resident := p.idx.unindex(clip.ID); resident {
			p.tracker.Observe(clip.ID, now)
			p.idx.index(clip)
			return
		}
	}
	p.tracker.Observe(clip.ID, now)
}

// Admit implements core.Policy.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Score returns the eviction key Δ_K × size for a resident clip; larger
// means a better victim. Clips with fewer than K references score +Inf.
func (p *Policy) Score(c media.Clip, now vtime.Time) float64 {
	return p.tracker.BackwardKDistance(c.ID, now) * float64(c.Size)
}

// Victims implements core.Policy: repeatedly evict the clip with the maximum
// Δ_K × size until need bytes are covered. In indexed mode (the default) the
// victims come from the shared per-size-class tree index in O(C + log n) per
// victim, allocation-free; decisions match the scan exactly.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	if !p.scan {
		return p.victimsIndexed(view, need, now)
	}
	resident := core.CollectResidents(view)
	taken := make(map[media.ClipID]bool, len(resident))
	var out []media.ClipID
	var freed media.Bytes
	for freed < need && len(out) < len(resident) {
		best := -1
		var bestScore float64
		var bestLast vtime.Time
		for i, c := range resident {
			if taken[c.ID] {
				continue
			}
			score := p.Score(c, now)
			last, _ := p.tracker.LastTime(c.ID)
			if best == -1 || better(bestScore, bestLast, resident[best], score, last, c) {
				best, bestScore, bestLast = i, score, last
			}
		}
		if best == -1 {
			break
		}
		c := resident[best]
		taken[c.ID] = true
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// better reports whether the candidate is a better victim than the
// incumbent: larger Δ_K×size wins; among infinite scores the larger size
// wins (maximizing freed space), then the older last reference, then the
// lower id.
func better(incScore float64, incLast vtime.Time, incClip media.Clip,
	score float64, last vtime.Time, clip media.Clip) bool {
	switch {
	case math.IsInf(score, 1) && math.IsInf(incScore, 1):
		if clip.Size != incClip.Size {
			return clip.Size > incClip.Size
		}
		if last != incLast {
			return last < incLast
		}
		return clip.ID < incClip.ID
	case score != incScore:
		return score > incScore
	case last != incLast:
		return last < incLast
	default:
		return clip.ID < incClip.ID
	}
}

// victimsIndexed pops best victims from the shared class index until need
// bytes are covered, adopting any resident clip the index does not know
// about (direct warm placement) first.
func (p *Policy) victimsIndexed(view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	if p.idx.len() != view.NumResident() {
		view.ForEachResident(func(c media.Clip) bool {
			if !p.idx.has(c.ID) {
				p.idx.index(c)
			}
			return true
		})
	}
	p.out = p.out[:0]
	var freed media.Bytes
	for freed < need {
		id, size, ok := p.idx.popBest(now)
		if !ok {
			break
		}
		p.out = append(p.out, id)
		freed += size
	}
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}

// OnInsert implements core.Policy: the new resident enters the index.
func (p *Policy) OnInsert(clip media.Clip, _ vtime.Time) {
	if !p.scan {
		p.idx.index(clip)
	}
}

// OnEvict implements core.Policy. History is retained across evictions; only
// the index entry is dropped (a no-op for victims popBest already removed).
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	if !p.scan {
		p.idx.unindex(id)
	}
}

// Reset implements core.Policy.
func (p *Policy) Reset() {
	p.tracker = history.NewTracker(p.n, p.k)
	p.idx.reset(p.tracker)
	p.out = p.out[:0]
}

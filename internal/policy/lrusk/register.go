package lrusk

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name:  "lrusk",
		Usage: "lrusk:K",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(cfg.Repo.N(), cfg.Spec.K)
		},
	})
	registry.Register(registry.Entry{
		Name:  "lrusk-tree",
		Usage: "lrusk-tree:K",
		New: func(cfg registry.Config) (core.Policy, error) {
			return NewFast(cfg.Repo.N(), cfg.Spec.K)
		},
	})
}

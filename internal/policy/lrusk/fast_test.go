package lrusk

import (
	"testing"
	"testing/quick"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func TestNewFastValidation(t *testing.T) {
	if _, err := NewFast(0, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewFast(10, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewFast(576, 2); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestMustNewFastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewFast(0, 2)
}

func TestFastName(t *testing.T) {
	p := MustNewFast(10, 2)
	if p.Name() != "LRU-S2(tree)" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.K() != 2 || p.Tracker() == nil {
		t.Fatal("accessors")
	}
}

func TestFastBasicEviction(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 100},
		{ID: 2, Size: 10},
		{ID: 3, Size: 50},
	})
	p := MustNewFast(3, 1)
	c, _ := core.New(r, 110, p)
	c.Request(2) // tiny old
	c.Request(1) // big recent
	// Scores at t3: clip2 (3-1)*10=20, clip1 (3-2)*100=100 -> evict 1.
	c.Request(3)
	if c.Resident(1) {
		t.Fatal("big clip should be evicted")
	}
	if !c.Resident(2) || !c.Resident(3) {
		t.Fatalf("resident = %v", core.CollectResidentIDs(c))
	}
}

func TestFastReset(t *testing.T) {
	p := MustNewFast(5, 2)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 1, false)
	p.OnInsert(clip, 1)
	p.Reset()
	if p.Tracker().Count(1) != 0 {
		t.Fatal("Reset must clear history")
	}
	if p.idx.len() != 0 || len(p.idx.sizesDesc) != 0 {
		t.Fatal("Reset must clear indexes")
	}
}

func TestFastWarmAdoption(t *testing.T) {
	r, _ := media.EquiRepository(4, 10)
	p := MustNewFast(4, 2)
	c, _ := core.New(r, 20, p)
	c.Warm([]media.ClipID{1, 2})
	out, err := c.Request(3)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if c.NumResident() != 2 {
		t.Fatal("capacity invariant broken")
	}
}

// TestFastEquivalentToScan drives the scan and tree implementations through
// identical random traces and requires identical outcomes and final cache
// contents — the correctness proof for the Section 5 "efficient
// implementation".
func TestFastEquivalentToScan(t *testing.T) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	for _, k := range []int{1, 2, 4} {
		for seed := uint64(1); seed <= 3; seed++ {
			scan := MustNew(repo.N(), k).Scan()
			fast := MustNewFast(repo.N(), k)
			cScan, _ := core.New(repo, repo.CacheSizeForRatio(0.05), scan)
			cFast, _ := core.New(repo, repo.CacheSizeForRatio(0.05), fast)
			gen := workload.MustNewGenerator(dist, seed)
			for i := 0; i < 3000; i++ {
				id := gen.Next()
				a, errA := cScan.Request(id)
				b, errB := cFast.Request(id)
				if errA != nil || errB != nil {
					t.Fatalf("k=%d seed=%d req %d: errs %v %v", k, seed, i, errA, errB)
				}
				if a != b {
					t.Fatalf("k=%d seed=%d req %d (clip %d): scan=%v fast=%v",
						k, seed, i, id, a, b)
				}
			}
			sa, sb := core.CollectResidentIDs(cScan), core.CollectResidentIDs(cFast)
			if len(sa) != len(sb) {
				t.Fatalf("k=%d seed=%d: resident counts differ (%d vs %d)", k, seed, len(sa), len(sb))
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("k=%d seed=%d: resident sets differ", k, seed)
				}
			}
		}
	}
}

// TestFastEquivalenceProperty: quick-check variant on a small adversarial
// repository with many duplicate sizes and timestamps.
func TestFastEquivalenceProperty(t *testing.T) {
	sizes := []media.Bytes{10, 10, 20, 20, 30, 30, 40, 40}
	clips := make([]media.Clip, len(sizes))
	for i, s := range sizes {
		clips[i] = media.Clip{ID: media.ClipID(i + 1), Size: s}
	}
	repo, err := media.NewRepository(clips)
	if err != nil {
		t.Fatal(err)
	}
	check := func(reqs []uint8) bool {
		scan := MustNew(repo.N(), 2).Scan()
		fast := MustNewFast(repo.N(), 2)
		cScan, _ := core.New(repo, 70, scan)
		cFast, _ := core.New(repo, 70, fast)
		for _, r := range reqs {
			id := media.ClipID(int(r)%repo.N() + 1)
			a, errA := cScan.Request(id)
			b, errB := cFast.Request(id)
			if errA != nil || errB != nil || a != b {
				return false
			}
		}
		sa, sb := core.CollectResidentIDs(cScan), core.CollectResidentIDs(cFast)
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package lrusk

import (
	"sort"

	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// skIndex is the tree-based victim index shared by the default (indexed)
// Policy and the Fast implementation.
//
// The insight: the LRU-SK eviction score Δ_K(x,t)·s(x) depends on the
// current time t, so no single static order exists across clip sizes — but
// *within* one size class the ordering is static: larger Δ_K means smaller
// t_K, independent of t. The index therefore keeps one red-black tree per
// distinct clip size, ordered by (t_K, t_last, id); the per-class best
// victim is the tree minimum, and the global victim is chosen by comparing
// one candidate score per class. Clips with incomplete history (infinite
// Δ_K) live in per-class side trees ordered by (t_last, id) and are always
// preferred, largest class first — exactly the scan implementation's
// ordering, which the equivalence property test asserts decision-for-
// decision.
//
// Victim selection costs O(C + log n) for C distinct sizes (the paper's
// repository has 6) instead of the scan's O(n) per victim.
type skIndex struct {
	tracker *history.Tracker

	// full holds resident clips with complete K-reference history, one tree
	// per size class ordered by (t_K, t_last, id).
	full map[media.Bytes]*rbtree.Tree[fullKey, media.ClipID]
	// partial holds resident clips with incomplete history, one tree per
	// size class ordered by (t_last, id).
	partial map[media.Bytes]*rbtree.Tree[partialKey, media.ClipID]
	// resident records where each resident clip currently lives so that
	// re-keying on reference and removal on eviction are O(log n).
	resident map[media.ClipID]location
	// sizesDesc caches the distinct resident size classes in descending
	// order (rebuilt lazily when classes appear).
	sizesDesc []media.Bytes
}

// fullKey orders complete-history clips: smaller t_K = larger Δ_K = better
// victim; ties prefer the older last reference, then the lower id.
type fullKey struct {
	kth  vtime.Time
	last vtime.Time
	id   media.ClipID
}

func lessFull(a, b fullKey) bool {
	if a.kth != b.kth {
		return a.kth < b.kth
	}
	if a.last != b.last {
		return a.last < b.last
	}
	return a.id < b.id
}

// partialKey orders incomplete-history clips by LRU then id.
type partialKey struct {
	last vtime.Time
	id   media.ClipID
}

func lessPartial(a, b partialKey) bool {
	if a.last != b.last {
		return a.last < b.last
	}
	return a.id < b.id
}

// location records a resident clip's tree and key.
type location struct {
	size   media.Bytes
	isFull bool
	fk     fullKey
	pk     partialKey
}

// newSKIndex returns an empty index deriving keys from tracker.
func newSKIndex(tracker *history.Tracker) *skIndex {
	return &skIndex{
		tracker:  tracker,
		full:     make(map[media.Bytes]*rbtree.Tree[fullKey, media.ClipID]),
		partial:  make(map[media.Bytes]*rbtree.Tree[partialKey, media.ClipID]),
		resident: make(map[media.ClipID]location),
	}
}

// reset empties the index and re-binds it to tracker.
func (x *skIndex) reset(tracker *history.Tracker) {
	x.tracker = tracker
	x.full = make(map[media.Bytes]*rbtree.Tree[fullKey, media.ClipID])
	x.partial = make(map[media.Bytes]*rbtree.Tree[partialKey, media.ClipID])
	x.resident = make(map[media.ClipID]location)
	x.sizesDesc = nil
}

// len returns the number of indexed resident clips.
func (x *skIndex) len() int { return len(x.resident) }

// has reports whether clip id is indexed.
func (x *skIndex) has(id media.ClipID) bool {
	_, ok := x.resident[id]
	return ok
}

// classFor returns (creating if needed) the trees for a size class.
func (x *skIndex) classFor(size media.Bytes) (*rbtree.Tree[fullKey, media.ClipID], *rbtree.Tree[partialKey, media.ClipID]) {
	f, ok := x.full[size]
	if !ok {
		f = rbtree.New[fullKey, media.ClipID](lessFull)
		x.full[size] = f
		x.partial[size] = rbtree.New[partialKey, media.ClipID](lessPartial)
		x.sizesDesc = append(x.sizesDesc, size)
		sort.Slice(x.sizesDesc, func(i, j int) bool { return x.sizesDesc[i] > x.sizesDesc[j] })
	}
	return f, x.partial[size]
}

// index inserts a resident clip into the tree matching its current history.
func (x *skIndex) index(clip media.Clip) {
	f, pt := x.classFor(clip.Size)
	last, _ := x.tracker.LastTime(clip.ID)
	if kth, ok := x.tracker.KthLastTime(clip.ID); ok {
		key := fullKey{kth: kth, last: last, id: clip.ID}
		f.Put(key, clip.ID)
		x.resident[clip.ID] = location{size: clip.Size, isFull: true, fk: key}
		return
	}
	key := partialKey{last: last, id: clip.ID}
	pt.Put(key, clip.ID)
	x.resident[clip.ID] = location{size: clip.Size, pk: key}
}

// unindex removes a resident clip from its tree, reporting whether it was
// indexed.
func (x *skIndex) unindex(id media.ClipID) (location, bool) {
	loc, ok := x.resident[id]
	if !ok {
		return location{}, false
	}
	if loc.isFull {
		x.full[loc.size].Delete(loc.fk)
	} else {
		x.partial[loc.size].Delete(loc.pk)
	}
	delete(x.resident, id)
	return loc, true
}

// popBest removes and returns the current best victim.
func (x *skIndex) popBest(now vtime.Time) (media.ClipID, media.Bytes, bool) {
	// Incomplete-history clips first: infinite score; largest class wins,
	// then LRU within the class.
	for _, size := range x.sizesDesc {
		pt := x.partial[size]
		if pt.Len() == 0 {
			continue
		}
		key, id, _ := pt.Min()
		pt.Delete(key)
		delete(x.resident, id)
		return id, size, true
	}
	// Otherwise compare one complete-history candidate per class.
	var (
		bestID    media.ClipID
		bestSize  media.Bytes
		bestKey   fullKey
		bestScore float64
		found     bool
	)
	for _, size := range x.sizesDesc {
		f := x.full[size]
		if f.Len() == 0 {
			continue
		}
		key, id, _ := f.Min()
		score := float64(now-key.kth) * float64(size)
		better := false
		switch {
		case !found:
			better = true
		case score != bestScore:
			better = score > bestScore
		case key.last != bestKey.last:
			better = key.last < bestKey.last
		default:
			better = id < bestID
		}
		if better {
			bestID, bestSize, bestKey, bestScore, found = id, size, key, score, true
		}
	}
	if !found {
		return 0, 0, false
	}
	x.full[bestSize].Delete(bestKey)
	delete(x.resident, bestID)
	return bestID, bestSize, true
}

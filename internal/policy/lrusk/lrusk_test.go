package lrusk

import (
	"testing"
	"testing/quick"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(576, 2); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(10, -1)
}

func TestName(t *testing.T) {
	if MustNew(10, 2).Name() != "LRU-S2" {
		t.Fatalf("name = %q", MustNew(10, 2).Name())
	}
	if MustNew(10, 2).K() != 2 {
		t.Fatal("K")
	}
}

func TestSizeAwareVictimSelection(t *testing.T) {
	// Two clips with the same recency: the larger one is the better victim
	// (larger Δ×size).
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 100},
		{ID: 2, Size: 10},
		{ID: 3, Size: 50},
	})
	p := MustNew(3, 2)
	c, _ := core.New(r, 110, p)
	// Give both full histories with identical timing patterns.
	c.Request(1) // t1
	c.Request(2) // t2
	c.Request(1) // t3
	c.Request(2) // t4
	// Δ2(1) = now-t1, Δ2(2) = now-t2; clip 1 older AND bigger -> victim.
	c.Request(3)
	if c.Resident(1) {
		t.Fatal("large stale clip 1 must be evicted")
	}
	if !c.Resident(2) {
		t.Fatal("small clip 2 must survive")
	}
}

func TestSizeBeatsRecencyWhenLargeEnough(t *testing.T) {
	// A big clip referenced recently can still lose to a small old one:
	// Δ×size dominates.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 1000}, // big
		{ID: 2, Size: 1},    // tiny
		{ID: 3, Size: 500},
	})
	p := MustNew(3, 1) // K=1 for simple Δ = now - last ref
	c, _ := core.New(r, 1001, p)
	c.Request(2) // t1: tiny, old
	c.Request(1) // t2: big, recent
	// Scores at t3: clip2: (3-1)*1 = 2; clip1: (3-2)*1000 = 1000. Evict 1.
	c.Request(3)
	if c.Resident(1) {
		t.Fatal("big clip should be evicted despite being more recent")
	}
	if !c.Resident(2) {
		t.Fatal("tiny old clip should survive")
	}
}

func TestInfiniteScoreTieBrokenBySize(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10},
		{ID: 2, Size: 30},
		{ID: 3, Size: 40},
	})
	p := MustNew(3, 2)
	c, _ := core.New(r, 45, p)
	c.Request(1) // one ref: infinite
	c.Request(2) // one ref: infinite
	// Clip 3 needs 40: free 5, must evict. Both infinite: larger (2) first.
	c.Request(3)
	if c.Resident(2) {
		t.Fatal("larger incomplete-history clip should go first")
	}
}

// TestRankingMatchesDYNSimpleK2 verifies the Section 4.4 claim: with K=2,
// LRU-SK and DYNSimple rank victims identically, because ascending
// (K/Δ_K)/size is exactly descending Δ_K × size.
func TestRankingMatchesDYNSimpleK2(t *testing.T) {
	check := func(seed []uint8) bool {
		const n, k = 8, 2
		tr := history.NewTracker(n, k)
		now := vtime.Time(0)
		for _, s := range seed {
			now++
			tr.Observe(media.ClipID(s%n+1), now)
		}
		now++
		sizes := []media.Bytes{7, 13, 29, 31, 41, 53, 67, 71}
		type clipScore struct {
			id      media.ClipID
			lrusk   float64 // Δ×size, bigger evicts first
			dynByte float64 // rate/size, smaller evicts first
			full    bool
		}
		var scores []clipScore
		for i := 0; i < n; i++ {
			id := media.ClipID(i + 1)
			if tr.Tracked(id) < k {
				continue // both techniques special-case incomplete history
			}
			delta := tr.BackwardKDistance(id, now)
			scores = append(scores, clipScore{
				id:      id,
				lrusk:   delta * float64(sizes[i]),
				dynByte: tr.Rate(id, now) / float64(sizes[i]),
				full:    true,
			})
		}
		// Pairwise consistency: whenever LRU-SK strictly prefers one victim
		// (larger Δ×size), DYNSimple must too (smaller rate/size). Ties in
		// the product (e.g. Δ=7,s=13 vs Δ=13,s=7) may round differently in
		// the quotient, so compare with a relative epsilon.
		const eps = 1e-9
		for i := 0; i < len(scores); i++ {
			for j := 0; j < len(scores); j++ {
				si, sj := scores[i], scores[j]
				if si.lrusk > sj.lrusk*(1+eps) { // i strictly worse clip
					if si.dynByte > sj.dynByte*(1+eps) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryRetainedAcrossEviction(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
	})
	p := MustNew(3, 2)
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(1)
	c.Request(2)
	c.Request(3)
	if p.Tracker().Count(1) != 2 {
		t.Fatal("history must survive eviction")
	}
}

func TestReset(t *testing.T) {
	p := MustNew(3, 2)
	p.Record(media.Clip{ID: 1, Size: 10}, 1, false)
	p.Reset()
	if p.Tracker().Count(1) != 0 {
		t.Fatal("Reset must clear history")
	}
}

func TestAdmitAlways(t *testing.T) {
	if !MustNew(3, 2).Admit(media.Clip{ID: 1, Size: 10}, 1) {
		t.Fatal("LRU-SK always admits")
	}
}

func TestScore(t *testing.T) {
	p := MustNew(2, 1)
	clip := media.Clip{ID: 1, Size: 10}
	p.Record(clip, 5, false)
	if got := p.Score(clip, 15); got != 100 {
		t.Fatalf("Score = %v, want (15-5)*10 = 100", got)
	}
}

// Package greedydual implements the GreedyDual replacement technique of
// Young (SODA 1991), in the size-aware formulation of Cao and Irani
// (USITS 1997) that the paper presents in Section 3.2 and Figure 1.
//
// Each resident clip carries a priority H. When a clip is inserted or hit,
// H is set to L + cost/size, where L is a monotone "inflation" value. To
// evict, the clip with minimum H becomes the victim and L rises to that
// minimum — the efficient O(1)-per-eviction equivalent of subtracting H_min
// from every resident clip.
//
// With cost ≡ 1 the technique maximizes cache hit rate (the paper's
// configuration); with cost = fetch time it minimizes average latency [3].
// Ties at the minimum priority are broken uniformly at random with a seeded
// generator, reproducing deterministically the coin-flip pathology on
// equi-sized repositories that Section 3.3 analyzes.
//
// The package also provides Naive, the textbook implementation that performs
// O(n) subtractions per eviction; a property test asserts both make
// identical decisions, and a benchmark quantifies the speedup.
package greedydual

import (
	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/prioindex"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// CostFunc assigns the fetch cost of a clip. The paper sets cost to 1 to
// maximize cache hit rate.
type CostFunc func(media.Clip) float64

// UniformCost is the paper's cost ≡ 1 (maximize hit rate).
func UniformCost(media.Clip) float64 { return 1 }

// SizeCost sets cost to the clip size, yielding the byte-hit-rate-oriented
// GreedyDual variant (priorities degenerate to L + 1).
func SizeCost(c media.Clip) float64 { return float64(c.Size) }

// Policy is the inflation-based GreedyDual of Figure 1. It implements
// core.Policy.
type Policy struct {
	cost CostFunc
	seed uint64
	src  *randutil.Source

	inflation float64
	h         map[media.ClipID]float64
	// eff overrides a clip's size with its resident byte total for partially
	// resident clips under segment-granular caches (core.SegmentAware).
	// Empty under whole-clip residency, so decisions there are untouched.
	eff map[media.ClipID]media.Bytes

	// scan disables the ordered index and restores the original O(n)
	// linear-scan victim selection. Decisions are identical either way; the
	// scan exists as the differential-test and benchmark baseline.
	scan bool
	idx  *prioindex.Index
	out  []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// New returns a GreedyDual policy with the given cost function (nil means
// UniformCost) and tie-break seed.
func New(cost CostFunc, seed uint64) *Policy {
	if cost == nil {
		cost = UniformCost
	}
	return &Policy{
		cost: cost,
		seed: seed,
		src:  randutil.NewSource(seed),
		h:    make(map[media.ClipID]float64),
		eff:  make(map[media.ClipID]media.Bytes),
		idx:  prioindex.New(),
	}
}

// Scan switches the policy to the original O(n) linear-scan victim
// selection. Call before the first request; it exists so differential tests
// and benchmarks can compare the two implementations.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// Name implements core.Policy.
func (p *Policy) Name() string { return "GreedyDual" }

// Inflation returns the current value of the inflation parameter L.
func (p *Policy) Inflation() float64 { return p.inflation }

// Priority returns the stored priority H of a resident clip and whether the
// clip is tracked.
func (p *Policy) Priority(id media.ClipID) (float64, bool) {
	h, ok := p.h[id]
	return h, ok
}

// sizeOf returns the bytes a clip occupies for ranking: its resident byte
// total when a segmented cache reported one, the full clip size otherwise.
func (p *Policy) sizeOf(c media.Clip) float64 {
	if b, ok := p.eff[c.ID]; ok {
		return float64(b)
	}
	return float64(c.Size)
}

// priority computes L + cost/size for a clip. size is the occupied bytes,
// so a prefix-only resident ranks by the cost of its few cached bytes —
// high priority per byte, exactly the partial-resident ranking the
// LRU-generalization literature calls for.
func (p *Policy) priority(c media.Clip) float64 {
	return p.inflation + p.cost(c)/p.sizeOf(c)
}

// OnResidentBytes implements core.SegmentAware: a segmented engine reports
// the clip's new resident byte total after segment inserts and tail trims,
// and the clip is re-ranked under it.
func (p *Policy) OnResidentBytes(clip media.Clip, resident media.Bytes, _ vtime.Time) {
	if resident > 0 && resident < clip.Size {
		p.eff[clip.ID] = resident
	} else {
		delete(p.eff, clip.ID)
	}
	if _, tracked := p.h[clip.ID]; tracked {
		p.rekey(clip, p.priority(clip))
	}
}

// Record implements core.Policy: on a hit, the clip's priority is restored
// to its full value at the current inflation.
func (p *Policy) Record(clip media.Clip, _ vtime.Time, hit bool) {
	if hit {
		p.rekey(clip, p.priority(clip))
	}
}

// rekey stores a clip's priority and, in indexed mode, moves its index entry
// under the new key.
func (p *Policy) rekey(clip media.Clip, h float64) {
	if !p.scan {
		if old, ok := p.h[clip.ID]; ok {
			p.idx.Delete(prioindex.Key{P: old, ID: clip.ID})
		}
		p.idx.Put(prioindex.Key{P: h, ID: clip.ID}, clip)
	}
	p.h[clip.ID] = h
}

// Admit implements core.Policy.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: one victim per call — the resident clip
// with minimum H, ties broken uniformly at random. L rises to the victim's
// priority. The engine calls again if more space is needed.
//
// In indexed mode (the default) the minimum and its ties come from the
// ordered index in O(log n + #ties); the returned slice is reused across
// calls and holds exactly one id.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, _ media.Bytes, _ vtime.Time) []media.ClipID {
	if p.scan {
		return p.victimsScan(view)
	}
	if p.idx.Len() != view.NumResident() {
		// A clip became resident without OnInsert (direct warm placement):
		// adopt it as freshly inserted, mirroring the scan's lazy adoption.
		view.ForEachResident(func(c media.Clip) bool {
			if _, ok := p.h[c.ID]; !ok {
				p.rekey(c, p.priority(c))
			}
			return true
		})
	}
	minH, ties, ok := p.idx.MinTies()
	if !ok {
		return nil
	}
	p.inflation = minH
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	p.out = append(p.out[:0], victim)
	return p.out
}

// victimsScan is the original O(n) selection over the resident set.
func (p *Policy) victimsScan(view core.ResidentView) []media.ClipID {
	var (
		minH  float64
		ties  []media.ClipID
		found bool
	)
	for c := range view.Residents() {
		h, ok := p.h[c.ID]
		if !ok {
			// Warm-inserted clip unknown to the policy: treat as freshly
			// inserted.
			h = p.priority(c)
			p.h[c.ID] = h
		}
		switch {
		case !found || h < minH:
			minH, ties, found = h, ties[:0], true
			ties = append(ties, c.ID)
		case h == minH:
			ties = append(ties, c.ID)
		}
	}
	if !found {
		return nil
	}
	p.inflation = minH
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	return []media.ClipID{victim}
}

// OnInsert implements core.Policy: the new clip's priority is L + cost/size.
func (p *Policy) OnInsert(clip media.Clip, _ vtime.Time) {
	p.rekey(clip, p.priority(clip))
}

// OnEvict implements core.Policy.
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	if h, ok := p.h[id]; ok && !p.scan {
		p.idx.Delete(prioindex.Key{P: h, ID: id})
	}
	delete(p.h, id)
	delete(p.eff, id)
}

// Reset implements core.Policy, rewinding the tie-break stream.
func (p *Policy) Reset() {
	p.inflation = 0
	p.h = make(map[media.ClipID]float64)
	p.eff = make(map[media.ClipID]media.Bytes)
	p.idx.Reset()
	p.src = randutil.NewSource(p.seed)
}

// Naive is the textbook GreedyDual that subtracts H_min from every resident
// clip on each eviction instead of maintaining an inflation value. It exists
// to validate the efficient implementation (they must take identical
// decisions) and to quantify the cost of the naive approach.
type Naive struct {
	cost CostFunc
	seed uint64
	src  *randutil.Source
	h    map[media.ClipID]float64
}

var _ core.Policy = (*Naive)(nil)

// NewNaive returns the O(n)-per-eviction GreedyDual.
func NewNaive(cost CostFunc, seed uint64) *Naive {
	if cost == nil {
		cost = UniformCost
	}
	return &Naive{
		cost: cost,
		seed: seed,
		src:  randutil.NewSource(seed),
		h:    make(map[media.ClipID]float64),
	}
}

// Name implements core.Policy.
func (p *Naive) Name() string { return "GreedyDual(naive)" }

// Priority returns the stored (deflated) priority of a resident clip.
func (p *Naive) Priority(id media.ClipID) (float64, bool) {
	h, ok := p.h[id]
	return h, ok
}

// Record implements core.Policy.
func (p *Naive) Record(clip media.Clip, _ vtime.Time, hit bool) {
	if hit {
		p.h[clip.ID] = p.cost(clip) / float64(clip.Size)
	}
}

// Admit implements core.Policy.
func (p *Naive) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: find min H, subtract it from every
// resident clip, and evict one uniformly chosen minimum.
func (p *Naive) Victims(_ media.Clip, view core.ResidentView, _ media.Bytes, _ vtime.Time) []media.ClipID {
	var (
		minH  float64
		ties  []media.ClipID
		found bool
	)
	for c := range view.Residents() {
		h, ok := p.h[c.ID]
		if !ok {
			h = p.cost(c) / float64(c.Size)
			p.h[c.ID] = h
		}
		switch {
		case !found || h < minH:
			minH, ties, found = h, ties[:0], true
			ties = append(ties, c.ID)
		case h == minH:
			ties = append(ties, c.ID)
		}
	}
	if !found {
		return nil
	}
	for c := range view.Residents() {
		p.h[c.ID] -= minH
	}
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	return []media.ClipID{victim}
}

// OnInsert implements core.Policy.
func (p *Naive) OnInsert(clip media.Clip, _ vtime.Time) {
	p.h[clip.ID] = p.cost(clip) / float64(clip.Size)
}

// OnEvict implements core.Policy.
func (p *Naive) OnEvict(id media.ClipID, _ vtime.Time) {
	delete(p.h, id)
}

// Reset implements core.Policy.
func (p *Naive) Reset() {
	p.h = make(map[media.ClipID]float64)
	p.src = randutil.NewSource(p.seed)
}

package greedydual_test

// differential_test.go checks the O(1)-inflation GreedyDual against an
// independent brute-force reference written straight from Figure 1 of the
// paper: every eviction finds min H and subtracts it from all resident
// clips. Clip sizes are powers of two so 1/size is an exact binary
// fraction and both arithmetics compare ties identically.

import (
	"reflect"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/greedydual"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// bruteGD is the textbook subtract-min GreedyDual with cost ≡ 1, written
// independently of the package (including its Naive variant).
type bruteGD struct {
	seed uint64
	src  *randutil.Source
	h    map[media.ClipID]float64
}

var _ core.Policy = (*bruteGD)(nil)

func newBruteGD(seed uint64) *bruteGD {
	return &bruteGD{seed: seed, src: randutil.NewSource(seed), h: make(map[media.ClipID]float64)}
}

func (p *bruteGD) Name() string { return "brute-GreedyDual" }

func (p *bruteGD) Record(clip media.Clip, _ vtime.Time, hit bool) {
	if hit {
		p.h[clip.ID] = 1 / float64(clip.Size)
	}
}

func (p *bruteGD) Admit(media.Clip, vtime.Time) bool { return true }

func (p *bruteGD) Victims(_ media.Clip, view core.ResidentView, _ media.Bytes, _ vtime.Time) []media.ClipID {
	resident := core.CollectResidents(view)
	if len(resident) == 0 {
		return nil
	}
	minH := p.h[resident[0].ID]
	var ties []media.ClipID
	for _, c := range resident {
		switch h := p.h[c.ID]; {
		case len(ties) == 0 || h < minH:
			minH, ties = h, append(ties[:0], c.ID)
		case h == minH:
			ties = append(ties, c.ID)
		}
	}
	for _, c := range resident {
		p.h[c.ID] -= minH
	}
	victim := ties[0]
	if len(ties) > 1 {
		victim = ties[p.src.Intn(len(ties))]
	}
	return []media.ClipID{victim}
}

func (p *bruteGD) OnInsert(clip media.Clip, _ vtime.Time) {
	p.h[clip.ID] = 1 / float64(clip.Size)
}

func (p *bruteGD) OnEvict(id media.ClipID, _ vtime.Time) { delete(p.h, id) }

func (p *bruteGD) Reset() {
	p.h = make(map[media.ClipID]float64)
	p.src = randutil.NewSource(p.seed)
}

// TestDifferentialAgainstBruteForce drives the inflation implementation
// and the subtract-min reference through identical caches and workloads
// (same tie-break seed, so random coin flips agree) and asserts identical
// residency after every request.
func TestDifferentialAgainstBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		src := randutil.NewSource(seed).Split("gd-diff")
		n := 10 + src.Intn(24)
		clips := make([]media.Clip, n)
		for i := range clips {
			clips[i] = media.Clip{
				ID:          media.ClipID(i + 1),
				Kind:        media.Video,
				Size:        media.Bytes(256<<10) << src.Intn(4), // powers of two: exact 1/size
				DisplayRate: 3_500_000,
			}
		}
		repo, err := media.NewRepository(clips)
		if err != nil {
			t.Fatal(err)
		}
		capacity := repo.TotalSize() / 4

		real, err := core.New(repo, capacity, greedydual.New(nil, seed))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.New(repo, capacity, newBruteGD(seed))
		if err != nil {
			t.Fatal(err)
		}

		drive := src.Split("drive")
		for i := 0; i < 600; i++ {
			id := media.ClipID(1 + drive.Intn(n))
			if drive.Float64() < 0.5 {
				id = media.ClipID(1 + drive.Intn(1+n/4))
			}
			a, err := real.Request(id)
			if err != nil {
				t.Fatalf("seed=%d req %d: real: %v", seed, i, err)
			}
			b, err := ref.Request(id)
			if err != nil {
				t.Fatalf("seed=%d req %d: reference: %v", seed, i, err)
			}
			if a != b {
				t.Fatalf("seed=%d req %d (clip %d): outcome %v vs reference %v", seed, i, id, a, b)
			}
			if !reflect.DeepEqual(core.CollectResidentIDs(real), core.CollectResidentIDs(ref)) {
				t.Fatalf("seed=%d req %d: resident sets diverged:\nreal %v\nref  %v",
					seed, i, core.CollectResidentIDs(real), core.CollectResidentIDs(ref))
			}
		}
		if real.Stats() != ref.Stats() {
			t.Fatalf("seed=%d: stats diverged:\nreal %+v\nref  %+v", seed, real.Stats(), ref.Stats())
		}
	}
}

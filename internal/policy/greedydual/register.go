package greedydual

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name: "greedydual",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(nil, cfg.Seed), nil
		},
	})
	registry.Register(registry.Entry{
		Name: "gd-naive",
		New: func(cfg registry.Config) (core.Policy, error) {
			return NewNaive(nil, cfg.Seed), nil
		},
	})
}

package greedydual

import (
	"testing"
	"testing/quick"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

func TestName(t *testing.T) {
	if New(nil, 1).Name() != "GreedyDual" {
		t.Fatal("name")
	}
	if NewNaive(nil, 1).Name() != "GreedyDual(naive)" {
		t.Fatal("naive name")
	}
}

func TestCostFunctions(t *testing.T) {
	c := media.Clip{ID: 1, Size: 100}
	if UniformCost(c) != 1 {
		t.Fatal("uniform cost")
	}
	if SizeCost(c) != 100 {
		t.Fatal("size cost")
	}
}

func TestPrefersEvictingLargeClips(t *testing.T) {
	// With cost 1, priority = L + 1/size: big clips have low priority.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 100},
		{ID: 2, Size: 10},
		{ID: 3, Size: 50},
	})
	p := New(nil, 1)
	c, _ := core.New(r, 110, p)
	c.Request(1)
	c.Request(2)
	c.Request(3) // need 50: evict clip 1 (H = 1/100, lowest)
	if c.Resident(1) {
		t.Fatal("largest clip must have the lowest priority")
	}
	if !c.Resident(2) || !c.Resident(3) {
		t.Fatalf("resident = %v", core.CollectResidentIDs(c))
	}
}

func TestHitRestoresPriority(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10}, {ID: 4, Size: 10},
	})
	p := New(nil, 1)
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(2)
	c.Request(3) // eviction happens; L rises to 0.1; equal priorities -> random victim
	// Whoever survived, hit it so its H is restored above L.
	survivors := core.CollectResidentIDs(c)
	victimlessID := survivors[0]
	c.Request(victimlessID) // hit: H = L + 0.1
	h, ok := p.Priority(victimlessID)
	if !ok {
		t.Fatal("priority missing")
	}
	if h <= p.Inflation() {
		t.Fatalf("restored priority %v must exceed inflation %v", h, p.Inflation())
	}
}

func TestInflationMonotone(t *testing.T) {
	r, _ := media.EquiRepository(20, 10)
	p := New(nil, 42)
	c, _ := core.New(r, 50, p)
	last := p.Inflation()
	for i := 0; i < 200; i++ {
		c.Request(media.ClipID(i%20 + 1))
		if p.Inflation() < last {
			t.Fatalf("inflation decreased: %v -> %v", last, p.Inflation())
		}
		last = p.Inflation()
	}
}

func TestPriorityNeverBelowInflation(t *testing.T) {
	r, _ := media.EquiRepository(20, 10)
	p := New(nil, 42)
	c, _ := core.New(r, 50, p)
	for i := 0; i < 500; i++ {
		c.Request(media.ClipID((i*7)%20 + 1))
		for _, id := range core.CollectResidentIDs(c) {
			h, ok := p.Priority(id)
			if !ok {
				t.Fatalf("resident clip %d has no priority", id)
			}
			if h < p.Inflation() {
				t.Fatalf("H(%d)=%v below L=%v", id, h, p.Inflation())
			}
		}
	}
}

func TestRandomTieBreakOnEquiSized(t *testing.T) {
	// The Section 3.3 pathology: equal-size clips all get equal priorities;
	// the victim must be chosen among ALL minimum-priority clips. Over many
	// evictions with different seeds the choices should differ.
	run := func(seed uint64) []media.ClipID {
		r, _ := media.EquiRepository(10, 10)
		p := New(nil, seed)
		c, _ := core.New(r, 30, p)
		for i := 0; i < 50; i++ {
			c.Request(media.ClipID(i%10 + 1))
		}
		return core.CollectResidentIDs(c)
	}
	a := run(1)
	differs := false
	for seed := uint64(2); seed <= 8; seed++ {
		b := run(seed)
		for i := range a {
			if i < len(b) && a[i] != b[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("tie-breaking appears deterministic across seeds")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []media.ClipID {
		r, _ := media.EquiRepository(10, 10)
		p := New(nil, 5)
		c, _ := core.New(r, 30, p)
		for i := 0; i < 100; i++ {
			c.Request(media.ClipID((i*3)%10 + 1))
		}
		return core.CollectResidentIDs(c)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must replay identically")
		}
	}
}

func TestResetRewinds(t *testing.T) {
	r, _ := media.EquiRepository(10, 10)
	p := New(nil, 5)
	c, _ := core.New(r, 30, p)
	seq := make([]media.ClipID, 100)
	for i := range seq {
		seq[i] = media.ClipID((i*3)%10 + 1)
	}
	for _, id := range seq {
		c.Request(id)
	}
	first := core.CollectResidentIDs(c)
	c.Reset()
	if p.Inflation() != 0 {
		t.Fatal("Reset must clear inflation")
	}
	for _, id := range seq {
		c.Request(id)
	}
	second := core.CollectResidentIDs(c)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("reset replay diverged")
		}
	}
}

// TestNaiveEquivalence: the inflation-based implementation (Figure 1) and
// the textbook O(n)-subtraction implementation must take identical decisions.
// Power-of-two sizes keep 1/size and the running sums exactly representable,
// so floating point cannot introduce spurious tie differences.
func TestNaiveEquivalence(t *testing.T) {
	sizes := []media.Bytes{8, 16, 32, 64, 128, 256, 8, 16, 32, 64}
	clips := make([]media.Clip, len(sizes))
	for i, s := range sizes {
		clips[i] = media.Clip{ID: media.ClipID(i + 1), Size: s}
	}
	repo, err := media.NewRepository(clips)
	if err != nil {
		t.Fatal(err)
	}
	check := func(reqs []uint8) bool {
		fast := New(nil, 77)
		slow := NewNaive(nil, 77)
		cf, _ := core.New(repo, 300, fast)
		cs, _ := core.New(repo, 300, slow)
		for _, r := range reqs {
			id := media.ClipID(int(r)%repo.N() + 1)
			of, errF := cf.Request(id)
			os_, errS := cs.Request(id)
			if errF != nil || errS != nil {
				return false
			}
			if of != os_ {
				return false
			}
		}
		a, b := core.CollectResidentIDs(cf), core.CollectResidentIDs(cs)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWarmInsertedClipHandled(t *testing.T) {
	r, _ := media.EquiRepository(5, 10)
	p := New(nil, 1)
	c, _ := core.New(r, 20, p)
	c.Warm([]media.ClipID{1, 2})
	// Warm calls OnInsert so priorities exist; but exercise the fallback in
	// Victims too by clearing one entry via direct map surgery - not
	// accessible; instead just verify eviction works after warming.
	out, err := c.Request(3)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if c.NumResident() != 2 {
		t.Fatalf("resident = %d", c.NumResident())
	}
}

func TestVictimsEmptyWhenNothingResident(t *testing.T) {
	r, _ := media.EquiRepository(5, 10)
	p := New(nil, 1)
	c, _ := core.New(r, 20, p)
	if got := p.Victims(r.Clip(1), c, 10, 1); got != nil {
		t.Fatalf("victims = %v, want nil", got)
	}
}

func TestNaiveLifecycle(t *testing.T) {
	p := NewNaive(nil, 3)
	clip := media.Clip{ID: 1, Size: 10}
	if !p.Admit(clip, 1) {
		t.Fatal("admit")
	}
	p.OnInsert(clip, 1)
	if h, ok := p.Priority(1); !ok || h != 0.1 {
		t.Fatalf("priority = %v,%v", h, ok)
	}
	p.Record(clip, 2, true)
	p.OnEvict(1, vtime.Time(3))
	if _, ok := p.Priority(1); ok {
		t.Fatal("evicted clip must be dropped")
	}
	p.Reset()
}

package lruk

import (
	"mediacache/internal/core"
	"mediacache/internal/policy/registry"
)

func init() {
	registry.Register(registry.Entry{
		Name: "lru",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(cfg.Repo.N(), 1)
		},
	})
	registry.Register(registry.Entry{
		Name:  "lruk",
		Usage: "lruk:K",
		New: func(cfg registry.Config) (core.Policy, error) {
			return New(cfg.Repo.N(), cfg.Spec.K)
		},
	})
}

package lruk

import (
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
)

func equiRepo(t *testing.T, n int) *media.Repository {
	t.Helper()
	r, err := media.EquiRepository(n, 10)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(10, 2); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 2)
}

func TestNameAndK(t *testing.T) {
	p := MustNew(10, 2)
	if p.Name() != "LRU-2" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.K() != 2 {
		t.Fatal("K")
	}
	if p.Tracker() == nil {
		t.Fatal("tracker nil")
	}
	if MustNew(10, 1).Name() != "LRU-1" {
		t.Fatal("LRU-1 name")
	}
}

func TestLRU1IsClassicLRU(t *testing.T) {
	r := equiRepo(t, 4)
	p := MustNew(4, 1)
	c, _ := core.New(r, 20, p) // holds 2 clips
	c.Request(1)
	c.Request(2)
	c.Request(1) // 1 is now more recent
	c.Request(3) // evicts least recently used: 2
	if c.Resident(2) {
		t.Fatal("clip 2 should be the LRU victim")
	}
	if !c.Resident(1) || !c.Resident(3) {
		t.Fatalf("resident = %v", core.CollectResidentIDs(c))
	}
}

func TestPaperSection33Example(t *testing.T) {
	// Three equi-sized 10MB clips, 25MB cache (holds 2). Reference string:
	// c1, c2, c1, c3, c1, c2, c1, c3, ... LRU-2 keeps c1 resident and gets a
	// hit on every c1 reference from the third on.
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10 * media.MB},
		{ID: 2, Size: 10 * media.MB},
		{ID: 3, Size: 10 * media.MB},
	})
	p := MustNew(3, 2)
	c, _ := core.New(r, 25*media.MB, p)
	seq := []media.ClipID{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3}
	hitsOn1 := 0
	for _, id := range seq {
		out, err := c.Request(id)
		if err != nil {
			t.Fatal(err)
		}
		if id == 1 && out.IsHit() {
			hitsOn1++
		}
	}
	// Clip 1 is referenced 6 times; misses only the first time.
	if hitsOn1 != 5 {
		t.Fatalf("hits on clip 1 = %d, want 5 (LRU-2 must retain it)", hitsOn1)
	}
	// The paper's point: LRU-2 never evicts c1 after its second reference.
	if !c.Resident(1) {
		t.Fatal("clip 1 must remain resident under LRU-2")
	}
}

func TestEvictsMaxBackwardKDistance(t *testing.T) {
	r := equiRepo(t, 3)
	p := MustNew(3, 2)
	c, _ := core.New(r, 20, p)
	// Times:       1  2  3  4  5
	// Requests:    1  2  1  2  3
	c.Request(1)
	c.Request(2)
	c.Request(1)
	c.Request(2)
	// Both have 2 refs: Δ2(1) = 5-1 = 4, Δ2(2) = 5-2 = 3. Victim: clip 1.
	c.Request(3)
	if c.Resident(1) {
		t.Fatal("clip 1 has the max backward-2 distance and must be evicted")
	}
	if !c.Resident(2) || !c.Resident(3) {
		t.Fatalf("resident = %v", core.CollectResidentIDs(c))
	}
}

func TestInfiniteDistancePreferred(t *testing.T) {
	r := equiRepo(t, 3)
	p := MustNew(3, 2)
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(1) // clip 1 has full history
	c.Request(2) // clip 2 has one reference: infinite Δ2
	c.Request(3) // victim must be clip 2
	if c.Resident(2) {
		t.Fatal("clip with incomplete history must be evicted first")
	}
	if !c.Resident(1) {
		t.Fatal("clip with full history must survive")
	}
}

func TestInfiniteTieBrokenByLRU(t *testing.T) {
	r := equiRepo(t, 3)
	p := MustNew(3, 2)
	c, _ := core.New(r, 20, p)
	c.Request(2) // single ref at t=1
	c.Request(1) // single ref at t=2
	c.Request(3) // both infinite: evict older last ref -> clip 2
	if c.Resident(2) {
		t.Fatal("older single-reference clip should be evicted")
	}
	if !c.Resident(1) {
		t.Fatal("newer single-reference clip should survive")
	}
}

func TestHistoryRetainedAcrossEviction(t *testing.T) {
	// LRU-K retained information: references before an eviction still count.
	r := equiRepo(t, 3)
	p := MustNew(3, 2)
	c, _ := core.New(r, 20, p)
	c.Request(1)
	c.Request(1)
	if p.Tracker().Count(1) != 2 {
		t.Fatal("history should record both refs")
	}
	c.Request(2)
	c.Request(3) // evicts someone
	if p.Tracker().Count(1) != 2 {
		t.Fatal("history must survive eviction")
	}
}

func TestVictimsBatchForLargeIncoming(t *testing.T) {
	r, _ := media.NewRepository([]media.Clip{
		{ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10}, {ID: 4, Size: 20},
	})
	p := MustNew(4, 1)
	c, _ := core.New(r, 30, p)
	c.Request(1)
	c.Request(2)
	c.Request(3)
	out, err := c.Request(4) // needs 20: evicts 1 and 2 (oldest)
	if err != nil || out != core.MissCached {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if c.Resident(1) || c.Resident(2) {
		t.Fatal("two oldest clips must be evicted")
	}
	if !c.Resident(3) || !c.Resident(4) {
		t.Fatalf("resident = %v", core.CollectResidentIDs(c))
	}
}

func TestReset(t *testing.T) {
	p := MustNew(3, 2)
	p.Record(media.Clip{ID: 1, Size: 10}, 1, false)
	p.Reset()
	if p.Tracker().Count(1) != 0 {
		t.Fatal("Reset must clear history")
	}
}

func TestAdmitAlways(t *testing.T) {
	p := MustNew(3, 2)
	if !p.Admit(media.Clip{ID: 1, Size: 10}, 1) {
		t.Fatal("LRU-K always admits")
	}
}

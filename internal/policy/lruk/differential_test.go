package lruk_test

// differential_test.go checks the ring-buffer LRU-K implementation against
// a deliberately naive reference that stores every reference time and
// recomputes backward-K distances from scratch. Both drive identical
// caches over randomized workloads; any divergence in residency or
// statistics is a bug in one of them.

import (
	"math"
	"reflect"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/randutil"
	"mediacache/internal/vtime"
)

// bruteLRUK is the reference implementation: full reference history per
// clip, exhaustive victim scans, no rings.
type bruteLRUK struct {
	k    int
	refs map[media.ClipID][]vtime.Time
}

var _ core.Policy = (*bruteLRUK)(nil)

func newBruteLRUK(k int) *bruteLRUK {
	return &bruteLRUK{k: k, refs: make(map[media.ClipID][]vtime.Time)}
}

func (p *bruteLRUK) Name() string { return "brute-LRU-K" }

func (p *bruteLRUK) Record(clip media.Clip, now vtime.Time, _ bool) {
	p.refs[clip.ID] = append(p.refs[clip.ID], now)
}

func (p *bruteLRUK) Admit(media.Clip, vtime.Time) bool { return true }

// dist returns the backward-K distance and the most recent reference time.
func (p *bruteLRUK) dist(id media.ClipID, now vtime.Time) (float64, vtime.Time) {
	refs := p.refs[id]
	last := vtime.Never
	if len(refs) > 0 {
		last = refs[len(refs)-1]
	}
	if len(refs) < p.k {
		return math.Inf(1), last
	}
	return float64(now - refs[len(refs)-p.k]), last
}

func (p *bruteLRUK) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	remaining := core.CollectResidents(view)
	var out []media.ClipID
	var freed media.Bytes
	for freed < need && len(remaining) > 0 {
		best := 0
		bestDist, bestLast := p.dist(remaining[0].ID, now)
		for i := 1; i < len(remaining); i++ {
			d, last := p.dist(remaining[i].ID, now)
			better := false
			switch {
			case math.IsInf(d, 1) && math.IsInf(bestDist, 1):
				better = last < bestLast ||
					(last == bestLast && remaining[i].ID < remaining[best].ID)
			case d != bestDist:
				better = d > bestDist
			case last != bestLast:
				better = last < bestLast
			default:
				better = remaining[i].ID < remaining[best].ID
			}
			if better {
				best, bestDist, bestLast = i, d, last
			}
		}
		out = append(out, remaining[best].ID)
		freed += remaining[best].Size
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

func (p *bruteLRUK) OnInsert(media.Clip, vtime.Time)  {}
func (p *bruteLRUK) OnEvict(media.ClipID, vtime.Time) {}
func (p *bruteLRUK) Reset()                           { p.refs = make(map[media.ClipID][]vtime.Time) }

// diffRepo builds a small repository with clip sizes that force multi-victim
// evictions.
func diffRepo(t *testing.T, src *randutil.Source, n int) *media.Repository {
	t.Helper()
	clips := make([]media.Clip, n)
	for i := range clips {
		clips[i] = media.Clip{
			ID:          media.ClipID(i + 1),
			Kind:        media.Video,
			Size:        media.Bytes(1+src.Intn(8)) * media.Bytes(256<<10),
			DisplayRate: 3_500_000,
		}
	}
	repo, err := media.NewRepository(clips)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// TestDifferentialAgainstBruteForce drives the real LRU-K and the brute
// reference through identical caches and workloads for several K values
// and seeds, asserting identical residency after every request.
func TestDifferentialAgainstBruteForce(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for seed := uint64(1); seed <= 3; seed++ {
			src := randutil.NewSource(seed).Split("lruk-diff")
			n := 12 + src.Intn(20)
			repo := diffRepo(t, src.Split("repo"), n)
			capacity := repo.TotalSize() / 4

			real, err := core.New(repo, capacity, lruk.MustNew(n, k))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.New(repo, capacity, newBruteLRUK(k))
			if err != nil {
				t.Fatal(err)
			}

			drive := src.Split("drive")
			for i := 0; i < 600; i++ {
				id := media.ClipID(1 + drive.Intn(n))
				if drive.Float64() < 0.5 {
					id = media.ClipID(1 + drive.Intn(1+n/4))
				}
				a, err := real.Request(id)
				if err != nil {
					t.Fatalf("k=%d seed=%d req %d: real: %v", k, seed, i, err)
				}
				b, err := ref.Request(id)
				if err != nil {
					t.Fatalf("k=%d seed=%d req %d: reference: %v", k, seed, i, err)
				}
				if a != b {
					t.Fatalf("k=%d seed=%d req %d (clip %d): outcome %v vs reference %v",
						k, seed, i, id, a, b)
				}
				if !reflect.DeepEqual(core.CollectResidentIDs(real), core.CollectResidentIDs(ref)) {
					t.Fatalf("k=%d seed=%d req %d: resident sets diverged:\nreal %v\nref  %v",
						k, seed, i, core.CollectResidentIDs(real), core.CollectResidentIDs(ref))
				}
			}
			if real.Stats() != ref.Stats() {
				t.Fatalf("k=%d seed=%d: stats diverged:\nreal %+v\nref  %+v",
					k, seed, real.Stats(), ref.Stats())
			}
		}
	}
}

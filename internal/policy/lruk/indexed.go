package lruk

import (
	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// This file holds the indexed victim-selection path, the default since the
// linear scan's O(n²)-per-eviction cost made catalog-scale repositories
// unusable (the paper's Section 5 future-work item on tree-based victim
// identification).
//
// Resident clips live in two trees keyed so that an ascending walk visits
// them in exactly the scan's victim order:
//
//   - partial: clips with fewer than K references (infinite Δ_K, the
//     preferred victims), ordered by (t_last, id) — classic LRU among
//     themselves;
//   - full: clips with complete history, ordered by (t_K, t_last, id) —
//     smaller t_K means larger Δ_K, so the tree minimum is the best victim,
//     with the scan's exact tie-breaks.
//
// Victims is a pure walk (no mutation), so a misbehaving engine can never
// desynchronise the index; OnEvict removes entries when evictions actually
// happen.

// fullKey orders complete-history clips: smaller t_K = larger Δ_K = better
// victim; ties prefer the older last reference, then the lower id.
type fullKey struct {
	kth  vtime.Time
	last vtime.Time
	id   media.ClipID
}

func lessFullKey(a, b fullKey) bool {
	if a.kth != b.kth {
		return a.kth < b.kth
	}
	if a.last != b.last {
		return a.last < b.last
	}
	return a.id < b.id
}

// partialKey orders incomplete-history clips by LRU then id.
type partialKey struct {
	last vtime.Time
	id   media.ClipID
}

func lessPartialKey(a, b partialKey) bool {
	if a.last != b.last {
		return a.last < b.last
	}
	return a.id < b.id
}

// indexLoc records which tree a resident clip currently lives in, so
// re-keying on reference and removal on eviction are O(log n).
type indexLoc struct {
	isFull bool
	fk     fullKey
	pk     partialKey
}

// index inserts a resident clip into the tree matching its current history.
func (p *Policy) index(clip media.Clip) {
	last, _ := p.tracker.LastTime(clip.ID)
	if kth, ok := p.tracker.KthLastTime(clip.ID); ok {
		key := fullKey{kth: kth, last: last, id: clip.ID}
		p.full.Put(key, clip)
		p.loc[clip.ID] = indexLoc{isFull: true, fk: key}
		return
	}
	key := partialKey{last: last, id: clip.ID}
	p.partial.Put(key, clip)
	p.loc[clip.ID] = indexLoc{pk: key}
}

// unindex removes a resident clip from its tree.
func (p *Policy) unindex(id media.ClipID) {
	loc, ok := p.loc[id]
	if !ok {
		return
	}
	if loc.isFull {
		p.full.Delete(loc.fk)
	} else {
		p.partial.Delete(loc.pk)
	}
	delete(p.loc, id)
}

// victimsIndexed walks the partial tree (infinite Δ_K first) then the full
// tree, appending victims into the reusable out buffer until need bytes are
// covered. The walk mutates nothing and allocates nothing.
func (p *Policy) victimsIndexed(view core.ResidentView, need media.Bytes) []media.ClipID {
	if len(p.loc) != view.NumResident() {
		// A clip became resident without OnInsert: adopt it under its
		// current history, matching what the scan would compute on the fly.
		view.ForEachResident(func(c media.Clip) bool {
			if _, ok := p.loc[c.ID]; !ok {
				p.index(c)
			}
			return true
		})
	}
	p.out = p.out[:0]
	var freed media.Bytes
	total := view.NumResident()
	p.partial.Ascend(func(_ partialKey, c media.Clip) bool {
		if freed >= need || len(p.out) >= total {
			return false
		}
		p.out = append(p.out, c.ID)
		freed += c.Size
		return true
	})
	if freed < need {
		p.full.Ascend(func(_ fullKey, c media.Clip) bool {
			if freed >= need || len(p.out) >= total {
				return false
			}
			p.out = append(p.out, c.ID)
			freed += c.Size
			return true
		})
	}
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}

// newTrees initialises (or clears) the index structures.
func (p *Policy) newTrees() {
	p.full = rbtree.New[fullKey, media.Clip](lessFullKey)
	p.partial = rbtree.New[partialKey, media.Clip](lessPartialKey)
	p.loc = make(map[media.ClipID]indexLoc)
}

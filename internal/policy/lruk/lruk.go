// Package lruk implements the LRU-K replacement technique of O'Neil, O'Neil
// and Weikum (SIGMOD 1993), the on-line baseline of Section 3.2.
//
// LRU-K maintains the time stamps of the last K references to a clip and,
// when choosing a victim, selects the clip whose K-th most recent reference
// is furthest in the past (the maximum backward-K distance Δ_K). Clips with
// fewer than K references have infinite backward distance and are preferred
// victims, ordered among themselves by classic LRU on their most recent
// reference — the "retained information" behaviour of the original paper.
// K = 1 degenerates to classic LRU.
//
// Following the paper's Section 4.1 (and LRU-K's retained information), the
// reference history covers all clips, resident or not.
package lruk

import (
	"fmt"
	"math"

	"mediacache/internal/core"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/rbtree"
	"mediacache/internal/vtime"
)

// Policy is the LRU-K technique. It implements core.Policy.
type Policy struct {
	k       int
	n       int
	tracker *history.Tracker

	// scan disables the ordered index and restores the original O(n²)
	// scan-per-victim selection (the differential-test baseline).
	scan    bool
	full    *rbtree.Tree[fullKey, media.Clip]
	partial *rbtree.Tree[partialKey, media.Clip]
	loc     map[media.ClipID]indexLoc
	out     []media.ClipID
}

var _ core.Policy = (*Policy)(nil)

// New returns an LRU-K policy for a repository of n clips.
func New(n, k int) (*Policy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lruk: repository size must be positive, got %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("lruk: K must be positive, got %d", k)
	}
	p := &Policy{k: k, n: n, tracker: history.NewTracker(n, k)}
	p.newTrees()
	return p, nil
}

// Scan switches the policy to the original O(n²) linear-scan victim
// selection; decisions are identical either way.
func (p *Policy) Scan() *Policy { p.scan = true; return p }

// MustNew is like New but panics on error; for experiment setup.
func MustNew(n, k int) *Policy {
	p, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements core.Policy.
func (p *Policy) Name() string { return fmt.Sprintf("LRU-%d", p.k) }

// K returns the history depth.
func (p *Policy) K() int { return p.k }

// Tracker exposes the underlying reference history (used by the fiverule
// metadata-pruning extension).
func (p *Policy) Tracker() *history.Tracker { return p.tracker }

// Record implements core.Policy. In indexed mode a resident clip is re-keyed
// under its post-reference (t_K, t_last).
func (p *Policy) Record(clip media.Clip, now vtime.Time, _ bool) {
	if !p.scan {
		if _, ok := p.loc[clip.ID]; ok {
			p.unindex(clip.ID)
			p.tracker.Observe(clip.ID, now)
			p.index(clip)
			return
		}
	}
	p.tracker.Observe(clip.ID, now)
}

// Admit implements core.Policy: every referenced clip is materialized.
func (p *Policy) Admit(media.Clip, vtime.Time) bool { return true }

// Victims implements core.Policy: repeatedly pick the resident clip with the
// maximum backward-K distance until need bytes are covered. In indexed mode
// (the default) the victims come from an ordered walk of the backward-K
// index — O(victims·log n) and allocation-free instead of the scan's O(n²)
// with a fresh taken-set per call.
func (p *Policy) Victims(_ media.Clip, view core.ResidentView, need media.Bytes, now vtime.Time) []media.ClipID {
	if !p.scan {
		return p.victimsIndexed(view, need)
	}
	resident := core.CollectResidents(view)
	taken := make(map[media.ClipID]bool, len(resident))
	var out []media.ClipID
	var freed media.Bytes
	for freed < need && len(out) < len(resident) {
		best := -1
		var bestDist float64
		var bestLast vtime.Time
		for i, c := range resident {
			if taken[c.ID] {
				continue
			}
			dist := p.tracker.BackwardKDistance(c.ID, now)
			last, _ := p.tracker.LastTime(c.ID)
			if best == -1 || less(bestDist, bestLast, resident[best], dist, last, c) {
				best, bestDist, bestLast = i, dist, last
			}
		}
		if best == -1 {
			break
		}
		c := resident[best]
		taken[c.ID] = true
		out = append(out, c.ID)
		freed += c.Size
	}
	return out
}

// less reports whether candidate (dist, last, clip) is a better victim than
// the incumbent. Larger Δ_K wins; among infinite distances the older last
// reference wins; remaining ties prefer the lower id for determinism.
func less(incDist float64, incLast vtime.Time, incClip media.Clip,
	dist float64, last vtime.Time, clip media.Clip) bool {
	switch {
	case math.IsInf(dist, 1) && math.IsInf(incDist, 1):
		if last != incLast {
			return last < incLast
		}
		return clip.ID < incClip.ID
	case dist != incDist:
		return dist > incDist
	case last != incLast:
		return last < incLast
	default:
		return clip.ID < incClip.ID
	}
}

// OnInsert implements core.Policy: the new resident enters the index.
func (p *Policy) OnInsert(clip media.Clip, _ vtime.Time) {
	if !p.scan {
		p.index(clip)
	}
}

// OnEvict implements core.Policy. History is retained across evictions; only
// the index entry is dropped.
func (p *Policy) OnEvict(id media.ClipID, _ vtime.Time) {
	if !p.scan {
		p.unindex(id)
	}
}

// Reset implements core.Policy.
func (p *Policy) Reset() {
	p.tracker = history.NewTracker(p.n, p.k)
	p.newTrees()
	p.out = p.out[:0]
}

package coop

import (
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func buildNetwork(t *testing.T, nDevices, maxCopies int, ratio float64) *Network {
	t.Helper()
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	net := NewNetwork(Config{MaxCopies: maxCopies})
	for i := 0; i < nDevices; i++ {
		p := dynsimple.MustNew(repo.N(), 2)
		gen := workload.MustNewGenerator(dist, uint64(1000+i))
		if _, err := net.AddDevice(repo, repo.CacheSizeForRatio(ratio), p, gen); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestAddDeviceValidation(t *testing.T) {
	repo := media.PaperRepository()
	net := NewNetwork(Config{})
	gen := workload.MustNewGenerator(zipf.MustNew(repo.N(), 0.27), 1)
	if _, err := net.AddDevice(repo, 100, nil, gen); err == nil {
		t.Error("nil policy should fail")
	}
	p := dynsimple.MustNew(repo.N(), 2)
	if _, err := net.AddDevice(repo, 100, p, nil); err == nil {
		t.Error("nil generator should fail")
	}
	if _, err := net.AddDevice(repo, 0, p, gen); err == nil {
		t.Error("zero capacity should fail")
	}
	d, err := net.AddDevice(repo, repo.CacheSizeForRatio(0.05), p, gen)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID() != 0 || d.Cache() == nil {
		t.Fatal("device accessors")
	}
	if len(net.Devices()) != 1 {
		t.Fatal("device not registered")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		LocalHit:    "local-hit",
		PeerHit:     "peer-hit",
		ServerFetch: "server-fetch",
		Outcome(9):  "Outcome(9)",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%v", o)
		}
	}
}

func TestOutcomeClassification(t *testing.T) {
	net := buildNetwork(t, 2, 0, 0.1)
	a, b := net.Devices()[0], net.Devices()[1]
	// First reference: server fetch.
	out, err := a.Request(2)
	if err != nil || out != ServerFetch {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// Same device again: local hit.
	out, _ = a.Request(2)
	if out != LocalHit {
		t.Fatalf("out=%v, want local hit", out)
	}
	// Peer references what a holds: peer hit (and then materializes).
	out, _ = b.Request(2)
	if out != PeerHit {
		t.Fatalf("out=%v, want peer hit", out)
	}
	s := net.Stats()
	if s.Requests != 3 || s.LocalHits != 1 || s.PeerHits != 1 || s.ServerFetches != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CooperativeHitRate() != 2.0/3.0 {
		t.Fatalf("coop hit rate = %v", s.CooperativeHitRate())
	}
	if s.LocalHitRate() != 1.0/3.0 {
		t.Fatalf("local hit rate = %v", s.LocalHitRate())
	}
	if s.BytesFromPeers == 0 || s.BytesFromBase == 0 {
		t.Fatalf("byte accounting: %+v", s)
	}
}

func TestUnknownClip(t *testing.T) {
	net := buildNetwork(t, 1, 0, 0.1)
	if _, err := net.Devices()[0].Request(0); err == nil {
		t.Fatal("unknown clip should error")
	}
}

func TestDedupLimitsReplication(t *testing.T) {
	// With MaxCopies=1, once one device holds a clip, a second device
	// declines to materialize it.
	net := buildNetwork(t, 2, 1, 0.1)
	a, b := net.Devices()[0], net.Devices()[1]
	if _, err := a.Request(2); err != nil {
		t.Fatal(err)
	}
	out, err := b.Request(2)
	if err != nil || out != PeerHit {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if b.Cache().Resident(2) {
		t.Fatal("dedup must prevent the second copy")
	}
	if !a.Cache().Resident(2) {
		t.Fatal("first copy must remain")
	}
}

func TestGreedyReplicatesFreely(t *testing.T) {
	net := buildNetwork(t, 2, 0, 0.1)
	a, b := net.Devices()[0], net.Devices()[1]
	a.Request(2)
	b.Request(2)
	if !a.Cache().Resident(2) || !b.Cache().Resident(2) {
		t.Fatal("greedy mode must allow replication")
	}
}

func TestDedupImprovesUnionCoverageAndCoopHitRate(t *testing.T) {
	// The headline cooperative claim: coordinated placement widens union
	// coverage and raises the global (local+peer) hit rate versus pure
	// greedy, for devices with small caches and similar workloads.
	const rounds = 3000
	greedy := buildNetwork(t, 4, 0, 0.02)
	dedup := buildNetwork(t, 4, 1, 0.02)
	if err := greedy.Run(rounds); err != nil {
		t.Fatal(err)
	}
	if err := dedup.Run(rounds); err != nil {
		t.Fatal(err)
	}
	if gc, dc := greedy.UnionCoverage(), dedup.UnionCoverage(); dc <= gc {
		t.Errorf("dedup union coverage %.4f <= greedy %.4f", dc, gc)
	}
	gRate := greedy.Stats().CooperativeHitRate()
	dRate := dedup.Stats().CooperativeHitRate()
	if dRate <= gRate {
		t.Errorf("dedup cooperative hit rate %.4f <= greedy %.4f", dRate, gRate)
	}
}

func TestStepAdvancesAllDevices(t *testing.T) {
	net := buildNetwork(t, 3, 0, 0.05)
	if err := net.Step(); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Requests != 3 {
		t.Fatalf("requests = %d", net.Stats().Requests)
	}
}

func TestZeroStats(t *testing.T) {
	var s Stats
	if s.CooperativeHitRate() != 0 || s.LocalHitRate() != 0 {
		t.Fatal("zero stats rates")
	}
	empty := NewNetwork(Config{})
	if empty.UnionCoverage() != 0 {
		t.Fatal("empty network coverage")
	}
}

package coop

// coop_fault_test.go pins the ISSUE 9 coop accounting fixes: the network
// totals must book every request the device caches book — including fetch
// faults and engine errors — and partial residency on a peer must not pass
// for a full copy (neither for a PeerHit nor for the Dedup rule), nor may
// UnionCoverage assume dense clip IDs spanning devices[0]'s repository.

import (
	"fmt"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// TestStatsRequestsMatchDevicesUnderFaults drives a 3-device neighborhood
// against a 20% error-rate fault profile and asserts the satellite-bugfix
// invariant: coop.Stats.Requests equals the sum of the per-device
// core.Stats.Requests, with degraded fetches classified (not dropped) and
// no bytes booked against the base station for fetches that delivered
// nothing.
func TestStatsRequestsMatchDevicesUnderFaults(t *testing.T) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	net := NewNetwork(Config{MaxCopies: 1})
	for i := 0; i < 3; i++ {
		p := dynsimple.MustNew(repo.N(), 2)
		gen := workload.MustNewGenerator(dist, uint64(2000+i))
		inj := fault.New(fault.Profile{ErrorRate: 0.2}, uint64(50+i))
		_, err := net.AddDevice(repo, repo.CacheSizeForRatio(0.1), p, gen,
			core.WithFetch(func(clip media.Clip, _ vtime.Time) error {
				if f := inj.Next(); f.Failed() {
					return fmt.Errorf("injected %s fault fetching clip %d", f.Kind, clip.ID)
				}
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Run(500); err != nil {
		t.Fatal(err)
	}

	var deviceRequests, deviceFetchFailed uint64
	for _, d := range net.Devices() {
		st := d.Cache().Stats()
		deviceRequests += st.Requests
		deviceFetchFailed += st.FetchFailed
	}
	st := net.Stats()
	if st.Requests != deviceRequests {
		t.Fatalf("coop Requests = %d, sum of device cache requests = %d",
			st.Requests, deviceRequests)
	}
	if deviceFetchFailed == 0 {
		t.Fatal("fault profile injected no fetch failures; test is vacuous")
	}
	if st.DegradedFetches == 0 {
		t.Fatal("no degraded fetches classified despite injected faults")
	}
	// Degraded fetches can only come from fetch faults or engine errors, and
	// every fetch fault that was not shadowed by a peer hit must be degraded.
	if st.DegradedFetches > deviceFetchFailed {
		t.Fatalf("DegradedFetches %d exceeds device FetchFailed %d",
			st.DegradedFetches, deviceFetchFailed)
	}
	if st.Requests != st.LocalHits+st.PeerHits+st.ServerFetches {
		t.Fatalf("outcome counts %d+%d+%d do not sum to requests %d",
			st.LocalHits, st.PeerHits, st.ServerFetches, st.Requests)
	}
}

// TestDegradedFetchBooksNoBaseBytes checks the byte side of the fix: a
// fetch that faults delivers nothing, so BytesFromBase must not grow.
func TestDegradedFetchBooksNoBaseBytes(t *testing.T) {
	repo := media.PaperRepository()
	net := NewNetwork(Config{})
	p := dynsimple.MustNew(repo.N(), 2)
	gen := workload.MustNewGenerator(zipf.MustNew(repo.N(), zipf.DefaultMean), 1)
	fail := true
	d, err := net.AddDevice(repo, repo.CacheSizeForRatio(0.1), p, gen,
		core.WithFetch(func(clip media.Clip, _ vtime.Time) error {
			if fail {
				return fmt.Errorf("injected fault fetching clip %d", clip.ID)
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}

	out, err := d.Request(3)
	if err != nil || out != ServerFetch {
		t.Fatalf("degraded fetch: out=%v err=%v", out, err)
	}
	st := net.Stats()
	if st.Requests != 1 || st.ServerFetches != 1 || st.DegradedFetches != 1 {
		t.Fatalf("degraded fetch misbooked: %+v", st)
	}
	if st.BytesFromBase != 0 {
		t.Fatalf("BytesFromBase = %d after a fetch that delivered nothing", st.BytesFromBase)
	}

	fail = false
	if out, err = d.Request(3); err != nil || out != ServerFetch {
		t.Fatalf("recovered fetch: out=%v err=%v", out, err)
	}
	st = net.Stats()
	clip, _ := repo.Lookup(3)
	if st.BytesFromBase != clip.Size {
		t.Fatalf("BytesFromBase = %d, want %d after the successful fetch",
			st.BytesFromBase, clip.Size)
	}
	if st.Requests != 2 || st.DegradedFetches != 1 {
		t.Fatalf("recovered fetch misbooked: %+v", st)
	}
}

// TestPartialPeerIsNotACopy materializes only a prefix of a clip on a
// segmented peer and asserts (a) the requester classifies the reference as
// a ServerFetch, not a PeerHit, and (b) the Dedup rule still admits the
// clip locally — a partial peer copy must not suppress materialization.
func TestPartialPeerIsNotACopy(t *testing.T) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	net := NewNetwork(Config{MaxCopies: 1})
	pa := dynsimple.MustNew(repo.N(), 2)
	a, err := net.AddDevice(repo, repo.CacheSizeForRatio(0.1), pa,
		workload.MustNewGenerator(dist, 1))
	if err != nil {
		t.Fatal(err)
	}
	pb := dynsimple.MustNew(repo.N(), 2)
	b, err := net.AddDevice(repo, repo.CacheSizeForRatio(0.1), pb,
		workload.MustNewGenerator(dist, 2),
		core.WithSegments(64*1024))
	if err != nil {
		t.Fatal(err)
	}

	// Make clip 5 partially resident on b: request only its first bytes.
	clip, _ := repo.Lookup(5)
	if _, err := b.Cache().RequestRange(5, 0, 64*1024); err != nil {
		t.Fatal(err)
	}
	if b.Cache().FullyResident(5) || !b.Cache().Resident(5) {
		t.Fatalf("setup: clip 5 should be partially resident on b (resident %d of %d bytes)",
			b.Cache().ResidentBytes(5), clip.Size)
	}
	if got := net.peerCopies(a, 5); got != 0 {
		t.Fatalf("peerCopies counts b's partial copy: got %d, want 0", got)
	}

	out, err := a.Request(5)
	if err != nil {
		t.Fatal(err)
	}
	if out != ServerFetch {
		t.Fatalf("out = %v, want server-fetch: a partial peer cannot stream the clip", out)
	}
	if !a.Cache().Resident(5) {
		t.Fatal("dedup rule declined admission on the strength of a partial peer copy")
	}

	// A full copy on b IS a copy: with MaxCopies=1 satisfied, a second
	// requester must decline and classify a peer hit.
	if _, err := b.Cache().RequestRange(6, 0, -1); err != nil {
		t.Fatal(err)
	}
	if !b.Cache().FullyResident(6) {
		t.Skip("clip 6 did not fully materialize on b; admission declined")
	}
	out, err = a.Request(6)
	if err != nil {
		t.Fatal(err)
	}
	if out != PeerHit {
		t.Fatalf("out = %v, want peer-hit from b's full copy", out)
	}
	if a.Cache().Resident(6) {
		t.Fatal("dedup rule should decline: b already holds the one allowed copy")
	}
}

// TestUnionCoverageHandlesMixedRepositories attaches devices to
// different-sized repositories. The old implementation walked
// ClipID(1)..devices[0].repo.N(), silently dropping any peer resident
// outside that range; the rewrite walks resident sets directly.
func TestUnionCoverageHandlesMixedRepositories(t *testing.T) {
	small, err := media.NewRepository(smallClips(8))
	if err != nil {
		t.Fatal(err)
	}
	large, err := media.NewRepository(smallClips(16))
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(Config{})
	a, err := net.AddDevice(small, small.TotalSize()/2, dynsimple.MustNew(small.N(), 2),
		workload.MustNewGenerator(zipf.MustNew(small.N(), zipf.DefaultMean), 1))
	if err != nil {
		t.Fatal(err)
	}
	bRepo := large
	b, err := net.AddDevice(bRepo, bRepo.TotalSize()/2, dynsimple.MustNew(bRepo.N(), 2),
		workload.MustNewGenerator(zipf.MustNew(bRepo.N(), zipf.DefaultMean), 2))
	if err != nil {
		t.Fatal(err)
	}

	// b holds a clip outside a's (devices[0]'s) dense range.
	if _, err := b.Request(12); err != nil {
		t.Fatal(err)
	}
	if !b.Cache().Resident(12) {
		t.Fatal("setup: clip 12 should be resident on b")
	}
	cov := net.UnionCoverage()
	clip12, _ := bRepo.Lookup(12)
	want := float64(clip12.Size) / float64(small.TotalSize())
	if cov < want {
		t.Fatalf("coverage %v misses clip 12 beyond devices[0]'s N (want at least %v)", cov, want)
	}
	_ = a
}

// smallClips builds n identical 1 MB clips with a display rate, IDs 1..n.
func smallClips(n int) []media.Clip {
	clips := make([]media.Clip, n)
	for i := range clips {
		clips[i] = media.Clip{
			ID:          media.ClipID(i + 1),
			Size:        1 << 20,
			DisplayRate: 4_000_000,
		}
	}
	return clips
}

// Package coop implements the cooperative-caching extension the paper
// leaves as future work (Sections 1 and 5): multiple FMC devices in the
// same radio range form an ad hoc network and exchange clips with one
// another, optimizing a global criterion — the number of references
// serviced without accessing the base station.
//
// Two modes are provided:
//
//   - Greedy: every device runs its own replacement policy in isolation.
//     Peers still serve each other's misses when they happen to hold the
//     clip, but placement is uncoordinated, so popular clips are replicated
//     on every device.
//   - Dedup: a simple cooperative placement rule layered on the greedy
//     policies — a device declines to materialize a clip already held by at
//     least MaxCopies peers, steering its cache toward clips the
//     neighborhood lacks and raising the union coverage.
//
// The cooperative hit rate (local + peer hits over requests) is the global
// metric; per-device greedy hit rates remain observable through each
// device's cache statistics, enabling the greedy-vs-cooperative comparison
// the paper calls for.
package coop

import (
	"errors"
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
)

// Outcome classifies how a cooperative request was serviced.
type Outcome uint8

// Cooperative outcomes.
const (
	// LocalHit: the device's own cache held the clip.
	LocalHit Outcome = iota
	// PeerHit: a device in radio range held the clip; streamed over the ad
	// hoc network, no base-station access.
	PeerHit
	// ServerFetch: no copy in the neighborhood; streamed from the base
	// station.
	ServerFetch
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case LocalHit:
		return "local-hit"
	case PeerHit:
		return "peer-hit"
	case ServerFetch:
		return "server-fetch"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Stats accumulates the global cooperative metrics.
type Stats struct {
	Requests      uint64
	LocalHits     uint64
	PeerHits      uint64
	ServerFetches uint64
	// DegradedFetches counts the subset of ServerFetches where the base
	// station was consulted but delivered nothing (fetch fault or engine
	// error). They are still requests — the device cache booked them — so
	// Requests stays equal to the sum of per-device core.Stats.Requests.
	DegradedFetches uint64
	BytesFromPeers  media.Bytes
	BytesFromBase   media.Bytes
}

// CooperativeHitRate returns the fraction of requests serviced without the
// base station — the global criterion of Section 5.
func (s Stats) CooperativeHitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.LocalHits+s.PeerHits) / float64(s.Requests)
}

// LocalHitRate returns the fraction serviced from devices' own caches.
func (s Stats) LocalHitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.LocalHits) / float64(s.Requests)
}

// Network is an ad hoc neighborhood of devices.
type Network struct {
	devices []*Device
	// maxCopies bounds neighborhood replication under the Dedup rule;
	// 0 disables coordination (pure greedy).
	maxCopies int
	stats     Stats
}

// Config configures a Network.
type Config struct {
	// MaxCopies, when positive, enables the Dedup placement rule: a device
	// declines to cache a clip already held by MaxCopies or more peers.
	MaxCopies int
}

// NewNetwork returns an empty neighborhood.
func NewNetwork(cfg Config) *Network {
	return &Network{maxCopies: cfg.MaxCopies}
}

// Stats returns the accumulated global statistics.
func (n *Network) Stats() Stats { return n.stats }

// Devices returns the attached devices.
func (n *Network) Devices() []*Device { return n.devices }

// peerCopies counts peers of d (excluding d itself) holding a complete
// copy of clip id. Partial residency (a segmented peer holding only a
// prefix) is not a copy: it can neither serve a PeerHit nor satisfy the
// Dedup replication bound.
func (n *Network) peerCopies(d *Device, id media.ClipID) int {
	copies := 0
	for _, other := range n.devices {
		if other != d && other.cache.FullyResident(id) {
			copies++
		}
	}
	return copies
}

// Device is one member of the neighborhood.
type Device struct {
	id    int
	net   *Network
	cache *core.Cache
	gen   *workload.Generator
}

// dedupPolicy wraps a device's replacement policy with the cooperative
// admission rule.
type dedupPolicy struct {
	core.Policy
	dev *Device
}

// Admit declines clips that the neighborhood already replicates enough.
func (p *dedupPolicy) Admit(clip media.Clip, now vtime.Time) bool {
	if !p.Policy.Admit(clip, now) {
		return false
	}
	if p.dev.net.maxCopies > 0 &&
		p.dev.net.peerCopies(p.dev, clip.ID) >= p.dev.net.maxCopies {
		return false
	}
	return true
}

// AddDevice attaches a device built from a repository, capacity, policy and
// request generator. The policy is wrapped with the cooperative admission
// rule when the network has MaxCopies set. Extra core options (fetch hooks,
// segmentation, observers) are applied to the device's cache as-is.
func (n *Network) AddDevice(repo *media.Repository, capacity media.Bytes, policy core.Policy, gen *workload.Generator, opts ...core.Option) (*Device, error) {
	if policy == nil {
		return nil, errors.New("coop: policy must not be nil")
	}
	if gen == nil {
		return nil, errors.New("coop: generator must not be nil")
	}
	d := &Device{id: len(n.devices), net: n, gen: gen}
	wrapped := &dedupPolicy{Policy: policy, dev: d}
	cache, err := core.New(repo, capacity, wrapped, opts...)
	if err != nil {
		return nil, err
	}
	d.cache = cache
	n.devices = append(n.devices, d)
	return d, nil
}

// ID returns the device's index within the network.
func (d *Device) ID() int { return d.id }

// Cache exposes the device's cache (per-device greedy statistics).
func (d *Device) Cache() *core.Cache { return d.cache }

// Request services the device's reference to clip id: local cache first,
// then peers over the ad hoc network, then the base station. The local
// cache processes the reference either way, so its replacement policy sees
// the full request stream.
func (d *Device) Request(id media.ClipID) (Outcome, error) {
	clip, ok := d.cache.Repository().Lookup(id)
	if !ok {
		return ServerFetch, fmt.Errorf("%w: id %d", core.ErrUnknownClip, id)
	}
	wasResident := d.cache.Resident(id)
	peerHeld := !wasResident && d.net.peerCopies(d, id) > 0
	out, err := d.cache.Request(id)
	// The device cache booked the reference the moment Request ran (the
	// Lookup above rules out the unknown-clip early return), even when the
	// engine errors afterwards — so the network totals must book it too, or
	// coop.Stats.Requests diverges from the sum of device core.Stats.
	d.net.stats.Requests++
	if err != nil {
		// Engine error past the booking point (e.g. victim selection failed
		// after the fetch): the base station was consulted and the bytes
		// streamed, but the device is degraded.
		d.net.stats.ServerFetches++
		d.net.stats.DegradedFetches++
		d.net.stats.BytesFromBase += clip.Size
		return ServerFetch, err
	}
	switch {
	case wasResident:
		d.net.stats.LocalHits++
		return LocalHit, nil
	case peerHeld:
		d.net.stats.PeerHits++
		d.net.stats.BytesFromPeers += clip.Size
		return PeerHit, nil
	case out == core.MissDegraded:
		// Fetch fault: the base station was consulted but delivered
		// nothing, so no bytes are booked against the base-station link.
		d.net.stats.ServerFetches++
		d.net.stats.DegradedFetches++
		return ServerFetch, nil
	default:
		d.net.stats.ServerFetches++
		d.net.stats.BytesFromBase += clip.Size
		return ServerFetch, nil
	}
}

// Step lets every device issue one request from its generator, in device
// order.
func (n *Network) Step() error {
	for _, d := range n.devices {
		if _, err := d.Request(d.gen.Next()); err != nil {
			return err
		}
	}
	return nil
}

// Run simulates rounds request rounds.
func (n *Network) Run(rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := n.Step(); err != nil {
			return err
		}
	}
	return nil
}

// UnionCoverage returns the fraction of repository bytes held by at least
// one device — the coverage a cooperative placement rule tries to widen.
// It walks the devices' resident sets rather than assuming dense clip IDs
// 1..N, so churned or perished catalogs (and devices attached to different
// repositories) are handled without out-of-range lookups. Under segmented
// caches a clip contributes its largest per-device resident byte count — a
// lower bound on the true union, exact for whole-clip residency.
func (n *Network) UnionCoverage() float64 {
	if len(n.devices) == 0 {
		return 0
	}
	total := n.devices[0].cache.Repository().TotalSize()
	if total == 0 {
		return 0
	}
	covered := make(map[media.ClipID]media.Bytes)
	for _, d := range n.devices {
		for clip := range d.cache.Residents() {
			if b := d.cache.ResidentBytes(clip.ID); b > covered[clip.ID] {
				covered[clip.ID] = b
			}
		}
	}
	var sum media.Bytes
	for _, b := range covered {
		sum += b
	}
	return float64(sum) / float64(total)
}

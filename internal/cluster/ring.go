// ring.go — the consistent-hash ring that assigns every clip a stable,
// ordered set of owning nodes. Each node projects VirtualNodes points onto
// the ring so ownership spreads evenly and a membership change only moves
// the arcs adjacent to the joining or departing node — which is exactly
// the slice of the resident set the snapshot/restore rebalance path has to
// ship. Clip keys use the same SplitMix64 finalizer as the shard pool's
// routing hash, so the two partitioning layers share one hash family.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"mediacache/internal/media"
)

// DefaultVirtualNodes is the ring points each node projects when the
// cluster Config leaves VirtualNodes zero.
const DefaultVirtualNodes = 64

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// Ring is an immutable consistent-hash ring over a set of node IDs.
// Membership changes build a new Ring (SetPeers swaps it atomically).
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring over nodes (order-insensitive; the ring sorts a
// copy) with vnodes points per node. Duplicate or empty node IDs are
// rejected: ownership must be unambiguous.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
	}
	r := &Ring{
		nodes:  sorted,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for ni, n := range sorted {
		h := fnv.New64a()
		h.Write([]byte(n))
		base := h.Sum64()
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: splitmix64(base + uint64(v)*0x9e3779b97f4a7c15),
				node: ni,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Nodes returns the ring members in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owners returns the first n distinct nodes clockwise from key, in
// preference order. n larger than the membership returns every node.
func (r *Ring) Owners(key uint64, n int) []string {
	if n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	owners := make([]string, 0, n)
	seen := make(map[int]struct{}, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		owners = append(owners, r.nodes[p.node])
	}
	return owners
}

// OwnersOf returns the owners of clip id: the clip key is the SplitMix64
// finalizer of the id, matching shard.Pool's routing hash family.
func (r *Ring) OwnersOf(id media.ClipID, n int) []string {
	return r.Owners(splitmix64(uint64(id)), n)
}

// splitmix64 is the finalizer of the SplitMix64 generator — the same
// full-avalanche mix the shard pool routes with.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// digest.go — the cached residency digests that make peer probes local
// decisions. Every node periodically pulls each peer's ClusterDigest (the
// peer's fully resident clip set) and consults the cached copy before
// spending a network round trip on a probe. Digests are eventually
// consistent by construction; the staleness rules below pick which way
// each failure mode errs (see DESIGN.md §17 for the caveats).
package cluster

import (
	"sync"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/media"
)

// digestVerdict is the local decision for one (peer, clip) probe.
type digestVerdict uint8

const (
	// digestProbe: no basis to skip — no digest yet (cold start) or the
	// fresh digest lists the clip. Probe the peer.
	digestProbe digestVerdict = iota
	// digestAbsent: a fresh digest says the peer lacks the clip. Skip.
	digestAbsent
	// digestStale: the peer's digest has outlived DigestMaxAge — the peer
	// is presumed dead or partitioned. Skip so a dark node costs nothing
	// per request; the next successful refresh revives it.
	digestStale
)

// digestEntry is one peer's last-known digest.
type digestEntry struct {
	seq     uint64
	fetched time.Time
	used    int64
	clips   map[media.ClipID]struct{}
}

// digestTable caches peer digests. Reads outnumber writes by orders of
// magnitude (one write per refresh, one read per local miss), hence RWMutex.
type digestTable struct {
	mu      sync.RWMutex
	entries map[string]*digestEntry
}

func newDigestTable() *digestTable {
	return &digestTable{entries: make(map[string]*digestEntry)}
}

// update installs node's freshly fetched digest.
func (t *digestTable) update(node string, d api.ClusterDigest, now time.Time) {
	clips := make(map[media.ClipID]struct{}, len(d.Clips))
	for _, id := range d.Clips {
		clips[id] = struct{}{}
	}
	t.mu.Lock()
	t.entries[node] = &digestEntry{seq: d.Seq, fetched: now, used: d.UsedBytes, clips: clips}
	t.mu.Unlock()
}

// forget drops node's digest (the peer left the ring).
func (t *digestTable) forget(node string) {
	t.mu.Lock()
	delete(t.entries, node)
	t.mu.Unlock()
}

// verdict decides whether probing node for clip id is worth a round trip.
func (t *digestTable) verdict(node string, id media.ClipID, now time.Time, maxAge time.Duration) digestVerdict {
	t.mu.RLock()
	e := t.entries[node]
	t.mu.RUnlock()
	if e == nil {
		return digestProbe
	}
	if maxAge > 0 && now.Sub(e.fetched) > maxAge {
		return digestStale
	}
	if _, ok := e.clips[id]; ok {
		return digestProbe
	}
	return digestAbsent
}

// info reports node's digest metadata for the status route: sequence, clip
// count, age, and freshness under maxAge. known is false when the node has
// never delivered a digest.
func (t *digestTable) info(node string, now time.Time, maxAge time.Duration) (seq uint64, clips int, age time.Duration, fresh, known bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e := t.entries[node]
	if e == nil {
		return 0, 0, 0, false, false
	}
	age = now.Sub(e.fetched)
	return e.seq, len(e.clips), age, maxAge <= 0 || age <= maxAge, true
}

package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/cacheclient"
	"mediacache/internal/media"
)

func TestDigestVerdicts(t *testing.T) {
	tbl := newDigestTable()
	t0 := time.Unix(1_700_000_000, 0)
	maxAge := 2 * time.Second

	if v := tbl.verdict("p1", 7, t0, maxAge); v != digestProbe {
		t.Fatalf("no digest yet: verdict %v, want probe (cold start)", v)
	}
	tbl.update("p1", api.ClusterDigest{Node: "p1", Seq: 1, Clips: []media.ClipID{7, 9}}, t0)
	if v := tbl.verdict("p1", 7, t0.Add(time.Second), maxAge); v != digestProbe {
		t.Fatalf("fresh digest lists clip: verdict %v, want probe", v)
	}
	if v := tbl.verdict("p1", 8, t0.Add(time.Second), maxAge); v != digestAbsent {
		t.Fatalf("fresh digest lacks clip: verdict %v, want absent", v)
	}
	if v := tbl.verdict("p1", 7, t0.Add(3*time.Second), maxAge); v != digestStale {
		t.Fatalf("aged-out digest: verdict %v, want stale", v)
	}
	// A later refresh revives the peer.
	tbl.update("p1", api.ClusterDigest{Node: "p1", Seq: 2, Clips: []media.ClipID{8}}, t0.Add(4*time.Second))
	if v := tbl.verdict("p1", 8, t0.Add(4*time.Second), maxAge); v != digestProbe {
		t.Fatalf("revived digest lists clip: verdict %v, want probe", v)
	}
	tbl.forget("p1")
	if v := tbl.verdict("p1", 8, t0.Add(4*time.Second), maxAge); v != digestProbe {
		t.Fatalf("forgotten peer: verdict %v, want probe (cold start)", v)
	}
}

// fakePeer is a minimal peer node: it answers digest and peer-serve reads
// from a fixed resident set.
type fakePeer struct {
	id       string
	resident map[media.ClipID]int64 // id -> size
	serves   atomic.Uint64
	delay    time.Duration
	ts       *httptest.Server
}

func newFakePeer(t *testing.T, id string, resident map[media.ClipID]int64) *fakePeer {
	t.Helper()
	p := &fakePeer{id: id, resident: resident}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/digest", func(w http.ResponseWriter, r *http.Request) {
		d := api.ClusterDigest{Node: p.id, Seq: 1}
		for cid := range p.resident {
			d.Clips = append(d.Clips, cid)
		}
		json.NewEncoder(w).Encode(d)
	})
	mux.HandleFunc("GET /v1/cluster/clips/{id}", func(w http.ResponseWriter, r *http.Request) {
		if p.delay > 0 {
			time.Sleep(p.delay)
		}
		var cid media.ClipID
		if _, err := fmtSscan(r.PathValue("id"), &cid); err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		size, ok := p.resident[cid]
		if !ok {
			http.Error(w, "not resident", http.StatusNotFound)
			return
		}
		p.serves.Add(1)
		json.NewEncoder(w).Encode(api.ClusterClip{Clip: cid, Node: p.id, SizeBytes: size})
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

// fmtSscan parses a decimal ClipID without pulling fmt verbs into every
// call site.
func fmtSscan(s string, id *media.ClipID) (int, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, http.ErrNotSupported
		}
		v = v*10 + int64(c-'0')
	}
	*id = media.ClipID(v)
	return 1, nil
}

func newTestCluster(t *testing.T, self string, peers []Peer, mut func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Self:       self,
		Peers:      peers,
		Replicas:   2,
		HedgeDelay: 10 * time.Millisecond,
		Client: cacheclient.Config{
			BaseURL:        "http://placeholder.invalid",
			MaxAttempts:    2,
			AttemptTimeout: 2 * time.Second,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     5 * time.Millisecond,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLookupUsesDigestsAndFindsPeers(t *testing.T) {
	// p1 holds clips 1..50, p2 holds 51..100. With replicas=3 every clip's
	// owner set includes both peers, so every resident clip is findable.
	res1 := map[media.ClipID]int64{}
	res2 := map[media.ClipID]int64{}
	for i := media.ClipID(1); i <= 50; i++ {
		res1[i] = int64(i) * 1000
	}
	for i := media.ClipID(51); i <= 100; i++ {
		res2[i] = int64(i) * 1000
	}
	p1 := newFakePeer(t, "p1", res1)
	p2 := newFakePeer(t, "p2", res2)
	c := newTestCluster(t, "self",
		[]Peer{{ID: "p1", URL: p1.ts.URL}, {ID: "p2", URL: p2.ts.URL}},
		func(cfg *Config) { cfg.Replicas = 3 })
	c.RefreshDigests(context.Background())
	if got := c.Counters().DigestRefreshes; got != 2 {
		t.Fatalf("DigestRefreshes = %d, want 2", got)
	}

	for i := media.ClipID(1); i <= 100; i++ {
		out, ok := c.Lookup(context.Background(), i)
		if !ok {
			t.Fatalf("clip %d: not found on any peer", i)
		}
		wantNode := "p1"
		if i > 50 {
			wantNode = "p2"
		}
		if out.Node != wantNode || out.SizeBytes != int64(i)*1000 {
			t.Fatalf("clip %d: got %+v, want node %s size %d", i, out, wantNode, int64(i)*1000)
		}
	}
	// Absent clip: fresh digests say neither peer has it — no round trips.
	before := p1.serves.Load() + p2.serves.Load()
	if _, ok := c.Lookup(context.Background(), 999); ok {
		t.Fatal("clip 999 found but resident nowhere")
	}
	if after := p1.serves.Load() + p2.serves.Load(); after != before {
		t.Fatalf("absent clip probed a peer (%d serves -> %d) despite fresh digests", before, after)
	}
	cnt := c.Counters()
	if cnt.PeerHits != 100 {
		t.Fatalf("PeerHits = %d, want 100", cnt.PeerHits)
	}
	if cnt.PeerMisses != 1 {
		t.Fatalf("PeerMisses = %d, want 1", cnt.PeerMisses)
	}
	if cnt.DigestSkips == 0 {
		t.Fatal("DigestSkips = 0: absent verdicts were not applied")
	}
	if cnt.PeerErrors != 0 {
		t.Fatalf("PeerErrors = %d, want 0", cnt.PeerErrors)
	}
}

func TestLookupHedgesSlowPeer(t *testing.T) {
	// Both peers hold clip 1; the preferred owner is slow, so the hedge
	// fires and the other replica wins.
	res := map[media.ClipID]int64{1: 4096}
	pa := newFakePeer(t, "pa", res)
	pb := newFakePeer(t, "pb", res)
	pa.delay = 300 * time.Millisecond
	pb.delay = 300 * time.Millisecond
	c := newTestCluster(t, "self",
		[]Peer{{ID: "pa", URL: pa.ts.URL}, {ID: "pb", URL: pb.ts.URL}},
		func(cfg *Config) {
			cfg.Replicas = 3
			cfg.HedgeDelay = 5 * time.Millisecond
		})
	c.RefreshDigests(context.Background())

	// Figure out the preferred remote owner and make only it slow.
	owners := c.Owners(1)
	var first string
	for _, o := range owners {
		if o != "self" {
			first = o
			break
		}
	}
	if first == "pa" {
		pb.delay = 0
	} else {
		pa.delay = 0
	}

	start := time.Now()
	out, ok := c.Lookup(context.Background(), 1)
	if !ok {
		t.Fatal("hedged lookup failed")
	}
	if out.Node == first {
		t.Fatalf("slow preferred owner %s won; hedge should have beaten it", first)
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("hedged lookup took %v; hedge did not cut the slow peer's latency", el)
	}
	cnt := c.Counters()
	if cnt.Hedges != 1 || cnt.HedgeWins != 1 {
		t.Fatalf("Hedges=%d HedgeWins=%d, want 1/1", cnt.Hedges, cnt.HedgeWins)
	}
}

func TestLookupFailsOverFromDeadPeer(t *testing.T) {
	res := map[media.ClipID]int64{1: 4096}
	dead := newFakePeer(t, "dead", res)
	live := newFakePeer(t, "live", res)
	deadURL := dead.ts.URL
	dead.ts.Close()
	c := newTestCluster(t, "self",
		[]Peer{{ID: "dead", URL: deadURL}, {ID: "live", URL: live.ts.URL}},
		func(cfg *Config) {
			cfg.Replicas = 3
			cfg.HedgeDelay = 50 * time.Millisecond
			cfg.Client.AttemptTimeout = 200 * time.Millisecond
		})
	// No digest refresh: cold start means both peers are probed.
	out, ok := c.Lookup(context.Background(), 1)
	if !ok {
		t.Fatal("lookup failed although the live peer holds the clip")
	}
	if out.Node != "live" {
		t.Fatalf("winner %s, want live", out.Node)
	}
}

func TestStalePeerIsSkipped(t *testing.T) {
	res := map[media.ClipID]int64{1: 4096}
	p := newFakePeer(t, "p1", res)
	now := time.Unix(1_700_000_000, 0)
	var clock atomic.Int64
	clock.Store(now.UnixNano())
	c := newTestCluster(t, "self",
		[]Peer{{ID: "p1", URL: p.ts.URL}},
		func(cfg *Config) {
			cfg.DigestInterval = time.Second
			cfg.DigestMaxAge = 2 * time.Second
			cfg.Now = func() time.Time { return time.Unix(0, clock.Load()) }
		})
	c.RefreshDigests(context.Background())
	if _, ok := c.Lookup(context.Background(), 1); !ok {
		t.Fatal("fresh digest: lookup should probe and hit")
	}
	// Advance past DigestMaxAge without a refresh: peer presumed dead.
	clock.Store(now.Add(10 * time.Second).UnixNano())
	before := p.serves.Load()
	if _, ok := c.Lookup(context.Background(), 1); ok {
		t.Fatal("stale peer answered a lookup that should have been vetoed")
	}
	if p.serves.Load() != before {
		t.Fatal("stale peer was probed over the network")
	}
	// Revive: a successful refresh makes it probeable again.
	c.RefreshDigests(context.Background())
	if _, ok := c.Lookup(context.Background(), 1); !ok {
		t.Fatal("refreshed peer should serve again")
	}
}

func TestSetPeersReusesClientsAndForgetsDeparted(t *testing.T) {
	res := map[media.ClipID]int64{1: 4096}
	p1 := newFakePeer(t, "p1", res)
	p2 := newFakePeer(t, "p2", res)
	c := newTestCluster(t, "self",
		[]Peer{{ID: "p1", URL: p1.ts.URL}, {ID: "p2", URL: p2.ts.URL}}, nil)
	c.RefreshDigests(context.Background())
	keep := c.PeerClient("p1")
	if keep == nil {
		t.Fatal("p1 client missing")
	}
	if err := c.SetPeers([]Peer{{ID: "p1", URL: p1.ts.URL}}); err != nil {
		t.Fatal(err)
	}
	if c.PeerClient("p1") != keep {
		t.Fatal("unchanged peer's client was rebuilt; breaker state lost")
	}
	if c.PeerClient("p2") != nil {
		t.Fatal("departed peer still has a client")
	}
	if _, _, _, _, known := c.digests.info("p2", time.Now(), time.Minute); known {
		t.Fatal("departed peer's digest not forgotten")
	}
	st := c.Status()
	if len(st.Peers) != 1 || st.Peers[0].ID != "p1" {
		t.Fatalf("status peers = %+v, want just p1", st.Peers)
	}
	if !st.Peers[0].DigestFresh || st.Peers[0].DigestClips != 1 {
		t.Fatalf("p1 digest metadata not surfaced: %+v", st.Peers[0])
	}
	if err := c.SetPeers([]Peer{{ID: "self", URL: "http://x"}}); err == nil {
		t.Fatal("peer with the local node id accepted")
	}
}

package cluster

import (
	"testing"

	"mediacache/internal/media"
)

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r1, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in a different order must produce the same ring.
	r2, err := NewRing([]string{"n5", "n3", "n1", "n4", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := media.ClipID(1); id <= 200; id++ {
		o1 := r1.OwnersOf(id, 3)
		o2 := r2.OwnersOf(id, 3)
		if len(o1) != 3 {
			t.Fatalf("clip %d: %d owners, want 3", id, len(o1))
		}
		seen := map[string]bool{}
		for i, n := range o1 {
			if seen[n] {
				t.Fatalf("clip %d: duplicate owner %s", id, n)
			}
			seen[n] = true
			if o2[i] != n {
				t.Fatalf("clip %d: owner order differs across construction order", id)
			}
		}
	}
	// Asking for more replicas than members yields every member once.
	all := r1.Owners(12345, 99)
	if len(all) != len(nodes) {
		t.Fatalf("Owners(n>members) = %d nodes, want %d", len(all), len(nodes))
	}
}

func TestRingDistributionRoughlyEven(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const clips = 4000
	for id := media.ClipID(1); id <= clips; id++ {
		counts[r.OwnersOf(id, 1)[0]]++
	}
	// With 64 vnodes per node, primary ownership should land within a loose
	// band of the fair share. This guards against hashing regressions, not
	// statistical perfection.
	fair := clips / 4
	for n, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("node %s owns %d of %d clips (fair share %d): distribution badly skewed", n, c, clips, fair)
		}
	}
}

func TestRingMembershipChangeMovesFewKeys(t *testing.T) {
	before, err := NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"a", "b", "c", "d", "e"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const clips = 4000
	moved := 0
	for id := media.ClipID(1); id <= clips; id++ {
		if before.OwnersOf(id, 1)[0] != after.OwnersOf(id, 1)[0] {
			moved++
		}
	}
	// Consistent hashing moves ~1/n of the keys on a join; allow 2x slack.
	if moved > clips/2 {
		t.Fatalf("adding one node moved %d/%d primaries — ring is not consistent", moved, clips)
	}
	if moved == 0 {
		t.Fatal("adding a node moved no keys — new node owns nothing")
	}
}

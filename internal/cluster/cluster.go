// Package cluster is the networked cooperative tier (ISSUE 9): N
// cacheserver processes form a consistent-hash ring and service each
// other's misses before falling back to the origin — the paper's Section 5
// cooperative future-work (modeled in-process by internal/coop) promoted
// to a real peer protocol.
//
// On a local miss the node asks the clip's ring owners, in preference
// order, over hedged reads: the first owner is probed immediately, the
// next after HedgeDelay (or instantly if the first fails), first success
// wins. Each peer gets its own cacheclient.Client — and therefore its own
// circuit breaker, retry schedule and jitter stream. Cached residency
// digests (GET /v1/cluster/digest) veto most fruitless probes locally.
// Ring membership changes rebalance state through the portable shard
// snapshot (GET /v1/snapshot → POST /v1/restore), which preserves partial
// segments and TTL deadlines byte-for-byte.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/cacheclient"
	"mediacache/internal/media"
)

// Defaults for Config zero values.
const (
	DefaultReplicas       = 2
	DefaultHedgeDelay     = 20 * time.Millisecond
	DefaultDigestInterval = 1 * time.Second
	// DefaultDigestMaxAge is DigestInterval multiplied by this factor when
	// DigestMaxAge is left zero: a peer that misses a few refreshes in a row
	// is presumed unreachable and stops being probed until it answers again.
	defaultDigestMaxAgeFactor = 4
)

// Peer identifies one remote ring member.
type Peer struct {
	ID  string
	URL string
}

// Config configures a Cluster.
type Config struct {
	// Self is this node's ring ID (required).
	Self string
	// Peers are the other ring members.
	Peers []Peer
	// Replicas is how many distinct ring owners are consulted per clip.
	Replicas int
	// VirtualNodes is the ring points per node.
	VirtualNodes int
	// HedgeDelay is how long the first peer read runs alone before the next
	// replica is speculatively fired.
	HedgeDelay time.Duration
	// DigestInterval is the period of the background digest refresh loop.
	DigestInterval time.Duration
	// DigestMaxAge bounds how old a cached digest may be before its peer is
	// presumed unreachable and skipped. Zero derives it from DigestInterval.
	DigestMaxAge time.Duration
	// Client templates the per-peer cacheclient configuration; BaseURL is
	// overwritten per peer. Zero values select peer-appropriate defaults
	// (2 attempts, 1s attempt timeout) rather than the public-client ones.
	Client cacheclient.Config
	// Now substitutes the wall clock, for tests; nil uses time.Now.
	Now func() time.Time
}

// peerConn is one configured peer with its dedicated client.
type peerConn struct {
	id     string
	url    string
	client *cacheclient.Client
}

// Cluster consults ring peers for locally missed clips and serves the
// cluster status. Safe for concurrent use.
type Cluster struct {
	cfg Config
	now func() time.Time

	mu    sync.RWMutex
	ring  *Ring
	peers map[string]*peerConn

	digests *digestTable

	peerHits        atomic.Uint64
	peerMisses      atomic.Uint64
	peerErrors      atomic.Uint64
	hedges          atomic.Uint64
	hedgeWins       atomic.Uint64
	digestSkips     atomic.Uint64
	digestRefreshes atomic.Uint64
	digestErrors    atomic.Uint64
	peerServed      atomic.Uint64
	peerServedBytes atomic.Uint64
}

// New builds the cooperative tier for node cfg.Self.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self node id is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = DefaultHedgeDelay
	}
	if cfg.DigestInterval <= 0 {
		cfg.DigestInterval = DefaultDigestInterval
	}
	if cfg.DigestMaxAge <= 0 {
		cfg.DigestMaxAge = defaultDigestMaxAgeFactor * cfg.DigestInterval
	}
	if cfg.Client.MaxAttempts == 0 {
		// Peer probes are a latency optimization, not the only path to the
		// bytes: fail fast and let the origin handle it.
		cfg.Client.MaxAttempts = 2
	}
	if cfg.Client.AttemptTimeout == 0 {
		cfg.Client.AttemptTimeout = time.Second
	}
	if cfg.Client.BaseBackoff == 0 {
		cfg.Client.BaseBackoff = 5 * time.Millisecond
	}
	if cfg.Client.MaxBackoff == 0 {
		cfg.Client.MaxBackoff = 50 * time.Millisecond
	}
	c := &Cluster{
		cfg:     cfg,
		now:     cfg.Now,
		digests: newDigestTable(),
	}
	if c.now == nil {
		c.now = time.Now
	}
	if err := c.SetPeers(cfg.Peers); err != nil {
		return nil, err
	}
	return c, nil
}

// Self returns this node's ring ID.
func (c *Cluster) Self() string { return c.cfg.Self }

// Replicas returns how many ring owners are consulted per clip.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// SetPeers replaces the ring membership (self is always a member). Clients
// of unchanged peers are reused so their breaker state and counters
// survive; departed peers' digests are dropped.
func (c *Cluster) SetPeers(peers []Peer) error {
	ids := make([]string, 0, len(peers)+1)
	ids = append(ids, c.cfg.Self)
	next := make(map[string]*peerConn, len(peers))
	c.mu.RLock()
	prev := c.peers
	c.mu.RUnlock()
	for _, p := range peers {
		if p.ID == c.cfg.Self {
			return fmt.Errorf("cluster: peer %q duplicates the local node id", p.ID)
		}
		if _, dup := next[p.ID]; dup {
			return fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		if old := prev[p.ID]; old != nil && old.url == p.URL {
			next[p.ID] = old
			ids = append(ids, p.ID)
			continue
		}
		ccfg := c.cfg.Client
		ccfg.BaseURL = p.URL
		cl, err := cacheclient.New(ccfg)
		if err != nil {
			return fmt.Errorf("cluster: peer %q: %w", p.ID, err)
		}
		next[p.ID] = &peerConn{id: p.ID, url: p.URL, client: cl}
		ids = append(ids, p.ID)
	}
	ring, err := NewRing(ids, c.cfg.VirtualNodes)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.ring = ring
	c.peers = next
	c.mu.Unlock()
	for id := range prev {
		if _, still := next[id]; !still {
			c.digests.forget(id)
		}
	}
	return nil
}

// Owners returns clip id's ring owners in preference order (self included
// when it owns the clip) — the placement the rebalance path works against.
func (c *Cluster) Owners(id media.ClipID) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.OwnersOf(id, c.cfg.Replicas)
}

// PeerClient returns the dedicated client of peer id, or nil — the
// rebalance path uses it to pull snapshots from a departing node.
func (c *Cluster) PeerClient(id string) *cacheclient.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if p := c.peers[id]; p != nil {
		return p.client
	}
	return nil
}

// Lookup consults clip id's ring owners over hedged peer reads and reports
// whether a peer delivered it. Candidates are the owners excluding self,
// filtered through the cached digests: a fresh digest proving absence — or
// a digest stale past DigestMaxAge, the dead-node signature — vetoes the
// probe locally. A node with no digest yet (cold start) is probed.
func (c *Cluster) Lookup(ctx context.Context, id media.ClipID) (api.ClusterClip, bool) {
	c.mu.RLock()
	ring := c.ring
	peers := c.peers
	c.mu.RUnlock()

	now := c.now()
	var cands []*peerConn
	for _, owner := range ring.OwnersOf(id, c.cfg.Replicas) {
		if owner == c.cfg.Self {
			continue
		}
		p := peers[owner]
		if p == nil {
			continue
		}
		switch c.digests.verdict(owner, id, now, c.cfg.DigestMaxAge) {
		case digestAbsent, digestStale:
			c.digestSkips.Add(1)
		default:
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		c.peerMisses.Add(1)
		return api.ClusterClip{}, false
	}

	calls := make([]func(context.Context) (api.ClusterClip, error), len(cands))
	for i, p := range cands {
		p := p
		calls[i] = func(cx context.Context) (api.ClusterClip, error) {
			return p.client.ClusterClip(cx, id)
		}
	}
	out, hres, err := cacheclient.Hedged(ctx, c.cfg.HedgeDelay, calls)
	if hres.Hedged {
		c.hedges.Add(1)
	}
	if hres.HedgeWon {
		c.hedgeWins.Add(1)
	}
	if err != nil {
		var se *cacheclient.StatusError
		if !errors.As(err, &se) || se.Status != http.StatusNotFound {
			c.peerErrors.Add(1)
		}
		c.peerMisses.Add(1)
		return api.ClusterClip{}, false
	}
	c.peerHits.Add(1)
	return out, true
}

// RefreshDigests pulls every peer's residency digest once. Unreachable
// peers keep their previous digest, which ages into the stale veto.
func (c *Cluster) RefreshDigests(ctx context.Context) {
	c.mu.RLock()
	peers := make([]*peerConn, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.RUnlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *peerConn) {
			defer wg.Done()
			d, err := p.client.ClusterDigest(ctx)
			if err != nil {
				c.digestErrors.Add(1)
				return
			}
			c.digests.update(p.id, d, c.now())
			c.digestRefreshes.Add(1)
		}(p)
	}
	wg.Wait()
}

// StartDigestLoop refreshes digests every DigestInterval until the
// returned stop function is called.
func (c *Cluster) StartDigestLoop() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(c.cfg.DigestInterval)
		defer t.Stop()
		c.RefreshDigests(ctx)
		for {
			select {
			case <-t.C:
				c.RefreshDigests(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// NotePeerServed books one peer-serve on this node (the serving side of a
// peer read): bytes streamed to a sibling node, not to a local client.
func (c *Cluster) NotePeerServed(bytes int64) {
	c.peerServed.Add(1)
	c.peerServedBytes.Add(uint64(bytes))
}

// Counters is a consistent-enough snapshot of the cooperative counters.
type Counters struct {
	PeerHits        uint64
	PeerMisses      uint64
	PeerErrors      uint64
	Hedges          uint64
	HedgeWins       uint64
	DigestSkips     uint64
	DigestRefreshes uint64
	DigestErrors    uint64
	PeerServed      uint64
	PeerServedBytes uint64
}

// Counters returns the current counter values.
func (c *Cluster) Counters() Counters {
	return Counters{
		PeerHits:        c.peerHits.Load(),
		PeerMisses:      c.peerMisses.Load(),
		PeerErrors:      c.peerErrors.Load(),
		Hedges:          c.hedges.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		DigestSkips:     c.digestSkips.Load(),
		DigestRefreshes: c.digestRefreshes.Load(),
		DigestErrors:    c.digestErrors.Load(),
		PeerServed:      c.peerServed.Load(),
		PeerServedBytes: c.peerServedBytes.Load(),
	}
}

// Status assembles the GET /v1/cluster response.
func (c *Cluster) Status() api.ClusterStatus {
	c.mu.RLock()
	peers := make([]*peerConn, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.RUnlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].id < peers[j].id })

	now := c.now()
	cnt := c.Counters()
	st := api.ClusterStatus{
		Node:            c.cfg.Self,
		Replicas:        c.cfg.Replicas,
		Peers:           make([]api.ClusterPeer, 0, len(peers)),
		PeerHits:        cnt.PeerHits,
		PeerMisses:      cnt.PeerMisses,
		PeerErrors:      cnt.PeerErrors,
		Hedges:          cnt.Hedges,
		HedgeWins:       cnt.HedgeWins,
		DigestSkips:     cnt.DigestSkips,
		DigestRefreshes: cnt.DigestRefreshes,
		DigestErrors:    cnt.DigestErrors,
		PeerServed:      cnt.PeerServed,
		PeerServedBytes: int64(cnt.PeerServedBytes),
	}
	for _, p := range peers {
		ap := api.ClusterPeer{
			ID:      p.id,
			URL:     p.url,
			Breaker: p.client.Breaker().String(),
		}
		if seq, clips, age, fresh, known := c.digests.info(p.id, now, c.cfg.DigestMaxAge); known {
			ap.DigestSeq = seq
			ap.DigestClips = clips
			ap.DigestAgeSeconds = age.Seconds()
			ap.DigestFresh = fresh
		}
		st.Peers = append(st.Peers, ap)
	}
	return st
}

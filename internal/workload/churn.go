package workload

// churn.go models catalog dynamics (ISSUE 8): clips are published and
// perish continuously, so the live catalog — and with it the Zipf rank
// order — varies over virtual time. The model follows the
// publish/perish framing of "Catalog Dynamics: Impact of Content
// Publishing and Perishing on the Performance of a LRU Cache" (PAPERS.md):
// every clip has a finite life, perished clips leave the request
// population, and newly published clips re-enter it at a random popularity
// rank. The schedule is fully determined by (catalog, θ, spec, seed), so
// any two generators with the same inputs emit byte-identical event
// streams.

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/zipf"
)

// ChurnSpec is a compact textual churn description for CLI flags:
//
//	churn=RATE,LIFExHORIZON
//
// where RATE ∈ [0, 1] is the per-tick publish probability (one dead clip
// re-enters the catalog with probability RATE per request tick), LIFE is
// each clip's lifetime in ticks, and HORIZON is the total number of
// request ticks the schedule covers. The "churn=" prefix is optional on
// parse and always emitted by String, mirroring the zipf= spec idiom.
type ChurnSpec struct {
	// Rate is the per-tick publish probability in [0, 1].
	Rate float64
	// Life is each published clip's lifetime in ticks.
	Life int
	// Horizon is the schedule length in request ticks.
	Horizon int
}

// ParseChurn parses the textual form. The result always passes Validate.
func ParseChurn(s string) (ChurnSpec, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "churn=")
	rateStr, rest, ok := strings.Cut(t, ",")
	if !ok {
		return ChurnSpec{}, fmt.Errorf("workload: bad churn spec %q (want [churn=]RATE,LIFExHORIZON)", s)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
	if err != nil {
		return ChurnSpec{}, fmt.Errorf("workload: bad churn rate in %q: %v", s, err)
	}
	lifeStr, horStr, ok := strings.Cut(strings.TrimSpace(rest), "x")
	if !ok {
		return ChurnSpec{}, fmt.Errorf("workload: bad churn term %q (want LIFExHORIZON)", rest)
	}
	life, err := strconv.Atoi(lifeStr)
	if err != nil {
		return ChurnSpec{}, fmt.Errorf("workload: bad churn life in %q: %v", s, err)
	}
	horizon, err := strconv.Atoi(horStr)
	if err != nil {
		return ChurnSpec{}, fmt.Errorf("workload: bad churn horizon in %q: %v", s, err)
	}
	spec := ChurnSpec{Rate: rate, Life: life, Horizon: horizon}
	if err := spec.Validate(); err != nil {
		return ChurnSpec{}, err
	}
	return spec, nil
}

// Validate reports whether the spec is well formed.
func (sp ChurnSpec) Validate() error {
	if !(sp.Rate >= 0 && sp.Rate <= 1) || math.IsNaN(sp.Rate) { // rejects NaN
		return fmt.Errorf("workload: churn rate %v outside [0, 1]", sp.Rate)
	}
	if sp.Life <= 0 {
		return fmt.Errorf("workload: churn life must be positive, got %d", sp.Life)
	}
	if sp.Horizon <= 0 {
		return fmt.Errorf("workload: churn horizon must be positive, got %d", sp.Horizon)
	}
	return nil
}

// String renders the spec in ParseChurn's syntax; a valid spec round-trips
// exactly.
func (sp ChurnSpec) String() string {
	return fmt.Sprintf("churn=%s,%dx%d",
		strconv.FormatFloat(sp.Rate, 'g', -1, 64), sp.Life, sp.Horizon)
}

// ChurnEventKind classifies one event of a churn schedule.
type ChurnEventKind uint8

const (
	// ChurnRequest: a client references the clip (one request tick).
	ChurnRequest ChurnEventKind = iota
	// ChurnPublish: the clip (re-)enters the live catalog at a fresh rank.
	ChurnPublish
	// ChurnPerish: the clip leaves the live catalog; caches should purge it.
	ChurnPerish
)

// String implements fmt.Stringer.
func (k ChurnEventKind) String() string {
	switch k {
	case ChurnRequest:
		return "request"
	case ChurnPublish:
		return "publish"
	case ChurnPerish:
		return "perish"
	default:
		return fmt.Sprintf("ChurnEventKind(%d)", uint8(k))
	}
}

// ChurnEvent is one element of the deterministic churn event stream.
type ChurnEvent struct {
	Kind ChurnEventKind
	Clip media.ClipID
}

// Churn generates the deterministic event stream of a churn schedule over
// clip ids 1..n: per request tick, first the perish events due at that
// tick (in perish-deadline insertion order), then at most one publish,
// then exactly one request drawn Zipf-distributed over the current live
// catalog in rank order. Not safe for concurrent use.
type Churn struct {
	n     int
	theta float64
	spec  ChurnSpec
	seed  uint64

	src *randutil.Source
	// aliveRanks holds the live catalog in popularity-rank order: index 0
	// is the most popular clip. Newly published clips insert at a random
	// rank, shifting lower ranks down — "new clips enter the Zipf rank
	// order".
	aliveRanks []media.ClipID
	// deadlines maps each live clip to the tick at which it perishes.
	deadlines map[media.ClipID]int
	// perishQ holds the live clips in perish order (deadline, then
	// insertion order): a simple queue, since lives are uniform.
	perishQ []churnDeadline
	// dead is the FIFO pool of perished clips awaiting republication.
	dead []media.ClipID

	tick int // request ticks emitted so far
	// buf holds the events of the in-progress tick not yet handed out.
	buf []ChurnEvent
	// dists memoizes one Zipf distribution per live-catalog size; catalog
	// sizes revisit a narrow band, so construction cost amortizes away.
	dists map[int]*zipf.Distribution
}

// churnDeadline is one entry of the perish queue.
type churnDeadline struct {
	id media.ClipID
	at int
}

// NewChurn builds the generator for clip ids 1..n with Zipf mean theta.
// All n clips start alive, clip id == initial rank (the repository's
// convention that id 1 is most popular), each with a perish deadline
// staggered uniformly over (0, Life] so the initial catalog does not
// expire in one burst.
func NewChurn(n int, theta float64, spec ChurnSpec, seed uint64) (*Churn, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: churn catalog size must be positive, got %d", n)
	}
	if !(theta >= 0 && theta <= 1) {
		return nil, fmt.Errorf("workload: zipf mean %v outside [0, 1]", theta)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Churn{n: n, theta: theta, spec: spec, seed: seed}
	c.Reset()
	return c, nil
}

// Reset rewinds the generator to its initial state; the regenerated event
// stream is byte-identical to the first.
func (c *Churn) Reset() {
	c.src = randutil.NewSource(c.seed).Split("churn")
	c.aliveRanks = make([]media.ClipID, c.n)
	c.deadlines = make(map[media.ClipID]int, c.n)
	c.perishQ = c.perishQ[:0]
	c.dead = c.dead[:0]
	c.tick = 0
	c.buf = c.buf[:0]
	c.dists = make(map[int]*zipf.Distribution)
	for i := range c.aliveRanks {
		id := media.ClipID(i + 1)
		c.aliveRanks[i] = id
		at := 1 + c.src.Intn(c.spec.Life)
		c.deadlines[id] = at
		c.perishQ = append(c.perishQ, churnDeadline{id: id, at: at})
	}
	// Initial deadlines are drawn in id order but perish in deadline order:
	// sort the queue stably so pops are chronological. (Republished clips
	// always append with a later deadline, so the queue stays sorted.)
	sortChurnQueue(c.perishQ)
}

// sortChurnQueue stable-sorts by deadline, preserving id order within one
// deadline — an insertion sort is fine for the one-time initial shuffle.
func sortChurnQueue(q []churnDeadline) {
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && q[j].at < q[j-1].at; j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
}

// Spec returns the churn spec the generator was built from.
func (c *Churn) Spec() ChurnSpec { return c.spec }

// Live returns the current live-catalog size.
func (c *Churn) Live() int { return len(c.aliveRanks) }

// Next returns the next event of the schedule. ok is false once every
// event of all Horizon ticks has been handed out.
func (c *Churn) Next() (ev ChurnEvent, ok bool) {
	for len(c.buf) == 0 {
		if c.tick >= c.spec.Horizon {
			return ChurnEvent{}, false
		}
		c.step()
	}
	ev = c.buf[0]
	copy(c.buf, c.buf[1:])
	c.buf = c.buf[:len(c.buf)-1]
	return ev, true
}

// step generates one request tick's events into buf.
func (c *Churn) step() {
	c.tick++
	t := c.tick

	// (a) Perish everything due at this tick — unless it would empty the
	// catalog, in which case the clip gets another life: the request
	// stream must always have a population to draw from.
	for len(c.perishQ) > 0 && c.perishQ[0].at <= t {
		d := c.perishQ[0]
		if len(c.aliveRanks) == 1 {
			c.perishQ[0].at = t + c.spec.Life
			c.deadlines[d.id] = t + c.spec.Life
			break
		}
		c.perishQ = c.perishQ[1:]
		for i, id := range c.aliveRanks {
			if id == d.id {
				c.aliveRanks = append(c.aliveRanks[:i], c.aliveRanks[i+1:]...)
				break
			}
		}
		delete(c.deadlines, d.id)
		c.dead = append(c.dead, d.id)
		c.buf = append(c.buf, ChurnEvent{Kind: ChurnPerish, Clip: d.id})
	}

	// (b) Publish at most one dead clip with probability Rate, inserting
	// it at a uniform random rank.
	if len(c.dead) > 0 && c.src.Float64() < c.spec.Rate {
		id := c.dead[0]
		c.dead = c.dead[1:]
		r := c.src.Intn(len(c.aliveRanks) + 1)
		c.aliveRanks = append(c.aliveRanks, 0)
		copy(c.aliveRanks[r+1:], c.aliveRanks[r:])
		c.aliveRanks[r] = id
		at := t + c.spec.Life
		c.deadlines[id] = at
		c.perishQ = append(c.perishQ, churnDeadline{id: id, at: at})
		c.buf = append(c.buf, ChurnEvent{Kind: ChurnPublish, Clip: id})
	}

	// (c) One request: a Zipf draw over the live catalog's rank order.
	live := len(c.aliveRanks)
	dist := c.dists[live]
	if dist == nil {
		// Cannot fail: live ≥ 1 (the perish loop never empties the catalog)
		// and theta was validated by NewChurn.
		dist, _ = zipf.New(live, c.theta)
		c.dists[live] = dist
	}
	rank := dist.Sample(c.src)
	c.buf = append(c.buf, ChurnEvent{Kind: ChurnRequest, Clip: c.aliveRanks[rank-1]})
}

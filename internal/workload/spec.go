package workload

import (
	"fmt"
	"strconv"
	"strings"

	"mediacache/internal/zipf"
)

// Spec is a compact textual workload description for CLI flags: the Zipf
// mean plus an optional evolving-access-pattern schedule. The syntax is a
// comma-separated list of terms:
//
//	zipf=0.27        Zipfian mean θ (at most once; default zipf.DefaultMean)
//	200x5000         a phase: 5000 requests at identity shift g=200
//
// so "zipf=0.27,0x10000,200x5000" is 10,000 requests of the unshifted
// distribution followed by 5,000 at shift 200 — the Section 4.4.1
// protocol in one flag. An empty Schedule means the caller supplies its
// own default phase.
type Spec struct {
	Theta    float64
	Schedule Schedule
}

// ParseSpec parses the textual form. The result always passes Validate.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Theta: zipf.DefaultMean}
	if strings.TrimSpace(s) == "" {
		return Spec{}, fmt.Errorf("workload: empty spec")
	}
	sawTheta := false
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		switch {
		case term == "":
			return Spec{}, fmt.Errorf("workload: empty term in spec %q", s)
		case strings.HasPrefix(term, "zipf="):
			if sawTheta {
				return Spec{}, fmt.Errorf("workload: duplicate zipf= term in %q", s)
			}
			sawTheta = true
			v, err := strconv.ParseFloat(term[len("zipf="):], 64)
			if err != nil {
				return Spec{}, fmt.Errorf("workload: bad zipf mean %q: %v", term, err)
			}
			spec.Theta = v
		default:
			shift, requests, ok := strings.Cut(term, "x")
			if !ok {
				return Spec{}, fmt.Errorf("workload: bad term %q (want zipf=THETA or SHIFTxREQUESTS)", term)
			}
			g, err := strconv.Atoi(shift)
			if err != nil {
				return Spec{}, fmt.Errorf("workload: bad shift in %q: %v", term, err)
			}
			n, err := strconv.Atoi(requests)
			if err != nil {
				return Spec{}, fmt.Errorf("workload: bad request count in %q: %v", term, err)
			}
			spec.Schedule = append(spec.Schedule, Phase{Shift: g, Requests: n})
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Validate reports whether the spec is well formed. An empty schedule is
// allowed (the caller defaults it); a present one must validate.
func (sp Spec) Validate() error {
	if !(sp.Theta >= 0 && sp.Theta <= 1) { // written to reject NaN too
		return fmt.Errorf("workload: zipf mean %v outside [0, 1]", sp.Theta)
	}
	if len(sp.Schedule) > 0 {
		return sp.Schedule.Validate()
	}
	return nil
}

// String renders the spec in ParseSpec's syntax; a valid spec round-trips
// exactly.
func (sp Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "zipf=%s", strconv.FormatFloat(sp.Theta, 'g', -1, 64))
	for _, p := range sp.Schedule {
		fmt.Fprintf(&b, ",%dx%d", p.Shift, p.Requests)
	}
	return b.String()
}

package workload

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"

	"mediacache/internal/media"
)

// Trace is a recorded reference string that can be replayed against any
// cache configuration, making comparisons across techniques exact.
type Trace struct {
	// Name labels the trace (e.g. "paper-fig2-seed42").
	Name string
	// NumClips is the repository size the trace was generated against.
	NumClips int
	// Requests is the ordered sequence of referenced clip identities.
	Requests []media.ClipID
}

// Record captures n references from gen into a new Trace.
func Record(name string, gen *Generator, n int) *Trace {
	return &Trace{
		Name:     name,
		NumClips: gen.N(),
		Requests: gen.Generate(make([]media.ClipID, 0, n), n),
	}
}

// Validate checks that every request references a clip in 1..NumClips.
func (t *Trace) Validate() error {
	if t.NumClips <= 0 {
		return fmt.Errorf("workload: trace %q has non-positive clip count %d", t.Name, t.NumClips)
	}
	for i, id := range t.Requests {
		if id < 1 || int(id) > t.NumClips {
			return fmt.Errorf("workload: trace %q request %d references clip %d outside 1..%d",
				t.Name, i, id, t.NumClips)
		}
	}
	return nil
}

// WriteCSV emits the trace as CSV with a two-line header:
//
//	#name,<name>
//	#clips,<numClips>
//	seq,clip
//	0,17
//	...
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#name,%s\n#clips,%d\n", t.Name, t.NumClips); err != nil {
		return err
	}
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"seq", "clip"}); err != nil {
		return err
	}
	for i, id := range t.Requests {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.Itoa(int(id))}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("workload: reading trace header: %w", err)
		}
		var name string
		var clips int
		if n, _ := fmt.Sscanf(line, "#name,%s", &name); n == 1 {
			t.Name = name
			continue
		}
		if n, _ := fmt.Sscanf(line, "#clips,%d", &clips); n == 1 {
			t.NumClips = clips
			continue
		}
		return nil, fmt.Errorf("workload: malformed trace header line %q", line)
	}
	cr := csv.NewReader(br)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace body: %w", err)
	}
	if len(rows) == 0 || len(rows[0]) != 2 || rows[0][0] != "seq" || rows[0][1] != "clip" {
		return nil, fmt.Errorf("workload: missing trace column header")
	}
	t.Requests = make([]media.ClipID, 0, len(rows)-1)
	for i, row := range rows[1:] {
		id, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad clip id %q: %w", i, row[1], err)
		}
		t.Requests = append(t.Requests, media.ClipID(id))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteBinary encodes the trace with encoding/gob — compact and fast for
// large traces.
func (t *Trace) WriteBinary(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := gob.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

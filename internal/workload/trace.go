package workload

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"

	"mediacache/internal/media"
)

// Trace is a recorded reference string that can be replayed against any
// cache configuration, making comparisons across techniques exact.
//
// Two schema versions share the type. A v1 trace records only the clip
// sequence. A v2 trace (ISSUE 10) adds per-request columns — the requesting
// client, the arrival tick and an optional byte range — so recorded traffic
// is sessionizable by cmd/traceql. The v2 columns are parallel slices: nil
// when the trace predates them (or never carried them), else exactly
// len(Requests) long. Writers emit the v1 byte format whenever every v2
// column is nil, so pre-v2 traces round-trip byte-identical (pinned by
// TestTraceV1GoldenBytes).
type Trace struct {
	// Name labels the trace (e.g. "paper-fig2-seed42").
	Name string
	// NumClips is the repository size the trace was generated against.
	NumClips int
	// Requests is the ordered sequence of referenced clip identities.
	Requests []media.ClipID

	// Clients names the requesting client per request ("" = unknown).
	Clients []string
	// Ticks is the arrival time per request, in whatever unit the recorder
	// used (virtual ticks or microseconds); 0 = unknown.
	Ticks []int64
	// RangeStarts/RangeLens select a byte range per request; a zero
	// RangeLens entry means the whole clip was referenced.
	RangeStarts []media.Bytes
	RangeLens   []media.Bytes
}

// Record captures n references from gen into a new (v1) Trace.
func Record(name string, gen *Generator, n int) *Trace {
	return &Trace{
		Name:     name,
		NumClips: gen.N(),
		Requests: gen.Generate(make([]media.ClipID, 0, n), n),
	}
}

// TimedSource is a Source that also stamps each event with the issuing
// client and its scheduled arrival time (SessionSource implements it).
type TimedSource interface {
	Source
	NextTimed() (TimedRequest, bool)
}

// RecordTimed captures n request events from src into a v2 Trace carrying
// the client, tick and range columns. Publish/perish markers are skipped:
// a trace is a reference string, not a catalog schedule.
func RecordTimed(name string, src TimedSource, numClips, n int) *Trace {
	t := &Trace{
		Name:        name,
		NumClips:    numClips,
		Requests:    make([]media.ClipID, 0, n),
		Clients:     make([]string, 0, n),
		Ticks:       make([]int64, 0, n),
		RangeStarts: make([]media.Bytes, 0, n),
		RangeLens:   make([]media.Bytes, 0, n),
	}
	for len(t.Requests) < n {
		tr, ok := src.NextTimed()
		if !ok {
			break
		}
		if tr.Kind != EventRequest {
			continue
		}
		t.Requests = append(t.Requests, tr.Clip)
		t.Clients = append(t.Clients, tr.Client)
		t.Ticks = append(t.Ticks, tr.ArrivalMicros)
		if tr.Ranged {
			t.RangeStarts = append(t.RangeStarts, tr.Start)
			t.RangeLens = append(t.RangeLens, tr.Length)
		} else {
			t.RangeStarts = append(t.RangeStarts, 0)
			t.RangeLens = append(t.RangeLens, 0)
		}
	}
	return t
}

// V2 reports whether the trace carries any of the sessionizable columns.
func (t *Trace) V2() bool {
	return t.Clients != nil || t.Ticks != nil || t.RangeStarts != nil || t.RangeLens != nil
}

// Validate checks that every request references a clip in 1..NumClips and
// that every present v2 column is request-parallel and well formed.
func (t *Trace) Validate() error {
	if t.NumClips <= 0 {
		return fmt.Errorf("workload: trace %q has non-positive clip count %d", t.Name, t.NumClips)
	}
	for i, id := range t.Requests {
		if id < 1 || int(id) > t.NumClips {
			return fmt.Errorf("workload: trace %q request %d references clip %d outside 1..%d",
				t.Name, i, id, t.NumClips)
		}
	}
	n := len(t.Requests)
	if t.Clients != nil && len(t.Clients) != n {
		return fmt.Errorf("workload: trace %q has %d client entries for %d requests", t.Name, len(t.Clients), n)
	}
	if t.Ticks != nil && len(t.Ticks) != n {
		return fmt.Errorf("workload: trace %q has %d tick entries for %d requests", t.Name, len(t.Ticks), n)
	}
	if t.RangeStarts != nil && len(t.RangeStarts) != n {
		return fmt.Errorf("workload: trace %q has %d rangeStart entries for %d requests", t.Name, len(t.RangeStarts), n)
	}
	if t.RangeLens != nil && len(t.RangeLens) != n {
		return fmt.Errorf("workload: trace %q has %d rangeLen entries for %d requests", t.Name, len(t.RangeLens), n)
	}
	for i := 0; i < n; i++ {
		if t.Ticks != nil && t.Ticks[i] < 0 {
			return fmt.Errorf("workload: trace %q request %d has negative tick %d", t.Name, i, t.Ticks[i])
		}
		if t.RangeStarts != nil && t.RangeStarts[i] < 0 {
			return fmt.Errorf("workload: trace %q request %d has negative rangeStart %d", t.Name, i, t.RangeStarts[i])
		}
		if t.RangeLens != nil && t.RangeLens[i] < 0 {
			return fmt.Errorf("workload: trace %q request %d has negative rangeLen %d", t.Name, i, t.RangeLens[i])
		}
	}
	return nil
}

// v2Header is the column header of the extended CSV schema.
var v2Header = []string{"seq", "clip", "client", "tick", "rangeStart", "rangeLen"}

// WriteCSV emits the trace as CSV with a two-line header:
//
//	#name,<name>
//	#clips,<numClips>
//	seq,clip
//	0,17
//	...
//
// A trace carrying any v2 column writes the extended column header
// seq,clip,client,tick,rangeStart,rangeLen instead, with zero values for
// columns the trace does not carry. A trace with no v2 columns writes the
// v1 format byte-for-byte.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#name,%s\n#clips,%d\n", t.Name, t.NumClips); err != nil {
		return err
	}
	cw := csv.NewWriter(bw)
	if !t.V2() {
		if err := cw.Write([]string{"seq", "clip"}); err != nil {
			return err
		}
		for i, id := range t.Requests {
			if err := cw.Write([]string{strconv.Itoa(i), strconv.Itoa(int(id))}); err != nil {
				return err
			}
		}
	} else {
		if err := cw.Write(v2Header); err != nil {
			return err
		}
		for i, id := range t.Requests {
			row := []string{strconv.Itoa(i), strconv.Itoa(int(id)), "", "0", "0", "0"}
			if t.Clients != nil {
				row[2] = t.Clients[i]
			}
			if t.Ticks != nil {
				row[3] = strconv.FormatInt(t.Ticks[i], 10)
			}
			if t.RangeStarts != nil {
				row[4] = strconv.FormatInt(int64(t.RangeStarts[i]), 10)
			}
			if t.RangeLens != nil {
				row[5] = strconv.FormatInt(int64(t.RangeLens[i]), 10)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV, accepting both the v1 and
// the extended v2 column header.
func ReadCSV(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("workload: reading trace header: %w", err)
		}
		var name string
		var clips int
		if n, _ := fmt.Sscanf(line, "#name,%s", &name); n == 1 {
			t.Name = name
			continue
		}
		if n, _ := fmt.Sscanf(line, "#clips,%d", &clips); n == 1 {
			t.NumClips = clips
			continue
		}
		return nil, fmt.Errorf("workload: malformed trace header line %q", line)
	}
	cr := csv.NewReader(br)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace body: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: missing trace column header")
	}
	v2 := false
	switch {
	case len(rows[0]) == 2 && rows[0][0] == "seq" && rows[0][1] == "clip":
	case columnsEqual(rows[0], v2Header):
		v2 = true
	default:
		return nil, fmt.Errorf("workload: missing trace column header")
	}
	t.Requests = make([]media.ClipID, 0, len(rows)-1)
	if v2 {
		t.Clients = make([]string, 0, len(rows)-1)
		t.Ticks = make([]int64, 0, len(rows)-1)
		t.RangeStarts = make([]media.Bytes, 0, len(rows)-1)
		t.RangeLens = make([]media.Bytes, 0, len(rows)-1)
	}
	for i, row := range rows[1:] {
		id, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad clip id %q: %w", i, row[1], err)
		}
		t.Requests = append(t.Requests, media.ClipID(id))
		if !v2 {
			continue
		}
		t.Clients = append(t.Clients, row[2])
		tick, err := parseTraceInt(row[3])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad tick %q: %w", i, row[3], err)
		}
		t.Ticks = append(t.Ticks, tick)
		start, err := parseTraceInt(row[4])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad rangeStart %q: %w", i, row[4], err)
		}
		t.RangeStarts = append(t.RangeStarts, media.Bytes(start))
		length, err := parseTraceInt(row[5])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad rangeLen %q: %w", i, row[5], err)
		}
		t.RangeLens = append(t.RangeLens, media.Bytes(length))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseTraceInt parses a v2 numeric cell; an empty cell reads as zero
// ("column present, value unknown").
func parseTraceInt(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// columnsEqual reports whether a header row matches want exactly.
func columnsEqual(row, want []string) bool {
	if len(row) != len(want) {
		return false
	}
	for i := range row {
		if row[i] != want[i] {
			return false
		}
	}
	return true
}

// WriteBinary encodes the trace with encoding/gob — compact and fast for
// large traces. The v2 columns ride along when present; gob matches struct
// fields by name and skips unknowns, so pre-v2 readers decode v2 streams
// (dropping the columns) and v2 readers decode pre-v2 streams (columns
// nil).
func (t *Trace) WriteBinary(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// ReadBinary decodes a trace written by WriteBinary (either version).
func ReadBinary(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := gob.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

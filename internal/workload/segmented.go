package workload

import (
	"fmt"

	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/zipf"
)

// RangeRequest is one partial-content reference: a byte range of a clip, as
// issued by a device that starts playback at Start and watches Length bytes.
type RangeRequest struct {
	Clip   media.ClipID
	Start  media.Bytes
	Length media.Bytes
}

// RangeConfig shapes the ranges a RangeGenerator draws.
type RangeConfig struct {
	// PrefixProb is the probability a reference starts at byte 0 — the
	// dominant mobile-streaming case (users press play far more often
	// than they seek). Must lie in [0, 1].
	PrefixProb float64
	// FullProb is the probability a reference plays the clip to the end
	// regardless of where it starts. Must lie in [0, 1].
	FullProb float64
	// MinLength floors the drawn range length (clamped to the clip).
	// Zero means a single byte suffices.
	MinLength media.Bytes
}

// DefaultRangeConfig matches the abandonment behaviour the prefix-caching
// literature assumes: most sessions start at zero and few run to the end.
func DefaultRangeConfig() RangeConfig {
	return RangeConfig{PrefixProb: 0.75, FullProb: 0.25, MinLength: media.MB}
}

// RangeGenerator produces a deterministic stream of RangeRequests: clip
// identities from the same shifted-Zipf popularity model as Generator, byte
// ranges from a seeded source biased toward prefixes (quadratic skew, so
// early offsets and short abandoned sessions dominate).
type RangeGenerator struct {
	gen  *Generator
	repo *media.Repository
	src  *randutil.Source
	cfg  RangeConfig
}

// NewRangeGenerator builds a RangeGenerator over repo's clips. The clip
// stream is seeded exactly like NewGenerator(dist, seed) — two generators
// with the same seed reference the same clips in the same order — while the
// range draws consume an independent split of the seed, so adding range
// modeling does not perturb the reference string.
func NewRangeGenerator(repo *media.Repository, dist *zipf.Distribution, seed uint64, cfg RangeConfig) (*RangeGenerator, error) {
	if repo == nil {
		return nil, fmt.Errorf("workload: repository must not be nil")
	}
	if cfg.PrefixProb < 0 || cfg.PrefixProb > 1 {
		return nil, fmt.Errorf("workload: PrefixProb %v outside [0, 1]", cfg.PrefixProb)
	}
	if cfg.FullProb < 0 || cfg.FullProb > 1 {
		return nil, fmt.Errorf("workload: FullProb %v outside [0, 1]", cfg.FullProb)
	}
	if cfg.MinLength < 0 {
		return nil, fmt.Errorf("workload: MinLength %v negative", cfg.MinLength)
	}
	gen, err := NewGenerator(dist, seed)
	if err != nil {
		return nil, err
	}
	if dist.N() > repo.N() {
		return nil, fmt.Errorf("workload: distribution draws %d identities but repository has %d clips",
			dist.N(), repo.N())
	}
	return &RangeGenerator{
		gen:  gen,
		repo: repo,
		src:  randutil.NewSource(seed).Split("range"),
		cfg:  cfg,
	}, nil
}

// Next returns the next range reference. The start offset is 0 with
// probability PrefixProb, else u²·size for uniform u — the quadratic skew
// concentrates seeks near the front of the clip. The length runs to the end
// with probability FullProb, else covers a quadratically skewed fraction of
// the remainder, floored at MinLength.
func (g *RangeGenerator) Next() RangeRequest {
	id := g.gen.Next()
	clip, ok := g.repo.Lookup(id)
	if !ok {
		// The constructor proved every identity resolves; reaching this
		// branch means the repository changed underneath us.
		panic(fmt.Sprintf("workload: clip %d vanished from repository", id))
	}
	var start media.Bytes
	if g.src.Float64() >= g.cfg.PrefixProb {
		u := g.src.Float64()
		start = media.Bytes(u * u * float64(clip.Size))
		if start >= clip.Size {
			start = clip.Size - 1
		}
	}
	remain := clip.Size - start
	length := remain
	if g.src.Float64() >= g.cfg.FullProb {
		u := g.src.Float64()
		length = media.Bytes(u * u * float64(remain))
		if length < g.cfg.MinLength {
			length = g.cfg.MinLength
		}
		if length > remain {
			length = remain
		}
	}
	if length <= 0 {
		length = 1
	}
	return RangeRequest{Clip: id, Start: start, Length: length}
}

// Generate appends n range references to dst and returns it.
func (g *RangeGenerator) Generate(dst []RangeRequest, n int) []RangeRequest {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// Count returns how many references have been generated.
func (g *RangeGenerator) Count() int64 { return g.gen.Count() }

// SetShift changes the identity shift of the underlying clip stream.
func (g *RangeGenerator) SetShift(s int) error { return g.gen.SetShift(s) }

package workload

import (
	"fmt"

	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/zipf"
)

// DriftingGenerator produces a reference stream whose popularity mapping
// drifts continuously: the identity shift g increases by one every Period
// requests. Where the paper's Section 4.4.1 experiment applies abrupt
// shifts (g jumps by hundreds at phase boundaries), drift models gradual
// churn — new releases slowly displacing old favorites — and stresses the
// adaptation machinery differently: techniques with long memories are
// always slightly stale, while fast adapters track the moving target.
type DriftingGenerator struct {
	shifted *zipf.Shifted
	src     *randutil.Source
	seed    uint64
	period  int64
	count   int64
}

// NewDrifting returns a generator whose shift increases by one every period
// requests (period must be positive).
func NewDrifting(dist *zipf.Distribution, seed uint64, period int) (*DriftingGenerator, error) {
	if dist == nil {
		return nil, fmt.Errorf("workload: distribution must not be nil")
	}
	if period <= 0 {
		return nil, fmt.Errorf("workload: drift period must be positive, got %d", period)
	}
	shifted, err := zipf.NewShifted(dist, 0)
	if err != nil {
		return nil, err
	}
	return &DriftingGenerator{
		shifted: shifted,
		src:     randutil.NewSource(seed),
		seed:    seed,
		period:  int64(period),
	}, nil
}

// Next returns the next referenced clip identity under the current drift.
func (g *DriftingGenerator) Next() media.ClipID {
	shift := int(g.count / g.period)
	if shift != g.shifted.Shift() {
		_ = g.shifted.SetShift(shift) // shift >= 0 by construction
	}
	g.count++
	return media.ClipID(g.shifted.Sample(g.src))
}

// Count returns how many references have been generated.
func (g *DriftingGenerator) Count() int64 { return g.count }

// Shift returns the current drift shift value.
func (g *DriftingGenerator) Shift() int { return g.shifted.Shift() }

// PMF returns the true per-identity probabilities at the current drift
// position.
func (g *DriftingGenerator) PMF() []float64 { return g.shifted.PMF() }

// N returns the number of clips.
func (g *DriftingGenerator) N() int { return g.shifted.N() }

// Reset rewinds the generator to its initial state.
func (g *DriftingGenerator) Reset() {
	g.src = randutil.NewSource(g.seed)
	g.count = 0
	_ = g.shifted.SetShift(0)
}

package workload

import (
	"math"
	"strings"
	"testing"

	"mediacache/internal/media"
)

func fitSpec() FitSpec {
	return FitSpec{
		Clips: 100, Theta: 0.27, Clients: 4, Sess: 8,
		ThinkMicros: 2000, GapMicros: 60000,
		RangedFrac: 0.5, PrefixFrac: 0.75, LengthFrac: 0.4,
	}
}

func TestParseFitRoundTrip(t *testing.T) {
	for _, spec := range []FitSpec{
		fitSpec(),
		{Clips: 576, Theta: 0, Clients: 1, Sess: 1, ThinkMicros: 1, GapMicros: 1},
		{Clips: 7, Theta: 1, Clients: 32, Sess: 2.5, ThinkMicros: 100, GapMicros: 999999,
			RangedFrac: 1, PrefixFrac: 1, LengthFrac: 1},
	} {
		got, err := ParseFit(spec.String())
		if err != nil {
			t.Fatalf("ParseFit(%q): %v", spec.String(), err)
		}
		if got != spec {
			t.Fatalf("round trip: got %+v, want %+v", got, spec)
		}
	}
	// The fit= prefix is optional.
	bare := strings.TrimPrefix(fitSpec().String(), "fit=")
	if got, err := ParseFit(bare); err != nil || got != fitSpec() {
		t.Fatalf("bare spec: got %+v, err %v", got, err)
	}
}

func TestParseFitRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"fit=",
		"clips=10", // missing required terms
		"clips=0,theta=0.2,clients=1,sess=1,think=1,gap=1",
		"clips=10,theta=1.5,clients=1,sess=1,think=1,gap=1",
		"clips=10,theta=0.2,clients=0,sess=1,think=1,gap=1",
		"clips=10,theta=0.2,clients=1,sess=0.5,think=1,gap=1",
		"clips=10,theta=0.2,clients=1,sess=1,think=0,gap=1",
		"clips=10,theta=0.2,clients=1,sess=1,think=1,gap=0",
		"clips=10,theta=0.2,clients=1,sess=1,think=1,gap=1,ranged=2",
		"clips=10,theta=0.2,clients=1,sess=1,think=1,gap=1,bogus=3",
		"clips=10,clips=10,theta=0.2,clients=1,sess=1,think=1,gap=1",
		"clips",
		"clips=ten,theta=0.2,clients=1,sess=1,think=1,gap=1",
	} {
		if _, err := ParseFit(s); err == nil {
			t.Errorf("ParseFit(%q) accepted invalid spec", s)
		}
	}
}

func FuzzParseFit(f *testing.F) {
	f.Add(fitSpec().String())
	f.Add("fit=clips=576,theta=0.27,clients=8,sess=12.5,think=2000,gap=120000")
	f.Add("clips=1,theta=0,clients=1,sess=1,think=1,gap=1")
	f.Add("fit=")
	f.Add("ranged=0.5")
	f.Add(strings.Repeat("clips=1,", 40))
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseFit(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must be valid and round-trip through String.
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v", err)
		}
		again, err := ParseFit(spec.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", spec.String(), err)
		}
		if again != spec {
			t.Fatalf("round trip changed spec: %+v -> %+v", spec, again)
		}
	})
}

func TestNewSessionSourceValidation(t *testing.T) {
	repo := media.PaperRepository()
	if _, err := NewSessionSource(FitSpec{}, repo, 1); err == nil {
		t.Error("zero spec should fail")
	}
	if _, err := NewSessionSource(fitSpec(), nil, 1); err == nil {
		t.Error("ranged spec without repository should fail")
	}
	big := fitSpec()
	big.Clips = repo.N() + 1
	if _, err := NewSessionSource(big, repo, 1); err == nil {
		t.Error("spec drawing beyond the repository should fail")
	}
	unranged := fitSpec()
	unranged.RangedFrac = 0
	if _, err := NewSessionSource(unranged, nil, 1); err != nil {
		t.Errorf("unranged spec without repository: %v", err)
	}
}

func TestSessionSourceDeterministic(t *testing.T) {
	repo := media.PaperRepository()
	mk := func(seed uint64) *SessionSource {
		s, err := NewSessionSource(fitSpec(), repo, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b, c := mk(42), mk(42), mk(43)
	identical := true
	for i := 0; i < 5000; i++ {
		ra, _ := a.NextTimed()
		rb, _ := b.NextTimed()
		rc, _ := c.NextTimed()
		if ra != rb {
			t.Fatalf("event %d: same seed diverged: %+v vs %+v", i, ra, rb)
		}
		if ra != rc {
			identical = false
		}
	}
	if identical {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSessionSourceShape(t *testing.T) {
	repo := media.PaperRepository()
	spec := FitSpec{
		Clips: 200, Theta: 0.27, Clients: 6, Sess: 10,
		ThinkMicros: 1000, GapMicros: 50000,
		RangedFrac: 0.5, PrefixFrac: 0.75, LengthFrac: 0.4,
	}
	src, err := NewSessionSource(spec, repo, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	lastArrival := map[string]int64{}
	ranged, prefix := 0, 0
	for i := 0; i < n; i++ {
		tr, ok := src.NextTimed()
		if !ok {
			t.Fatal("session source must be infinite")
		}
		if tr.Kind != EventRequest {
			t.Fatalf("event %d: unexpected kind %v", i, tr.Kind)
		}
		if tr.Clip < 1 || int(tr.Clip) > spec.Clips {
			t.Fatalf("event %d: clip %d outside 1..%d", i, tr.Clip, spec.Clips)
		}
		if prev, seen := lastArrival[tr.Client]; seen && tr.ArrivalMicros < prev {
			t.Fatalf("event %d: client %s went back in time: %d < %d", i, tr.Client, tr.ArrivalMicros, prev)
		}
		lastArrival[tr.Client] = tr.ArrivalMicros
		if tr.Ranged {
			ranged++
			clip := repo.Clip(tr.Clip)
			if tr.Start < 0 || tr.Length < 1 || tr.Start+tr.Length > clip.Size {
				t.Fatalf("event %d: range [%d, +%d) outside clip of %d bytes", i, tr.Start, tr.Length, clip.Size)
			}
			if tr.Start == 0 {
				prefix++
			}
		}
	}
	if len(lastArrival) != spec.Clients {
		t.Fatalf("saw %d clients, want %d", len(lastArrival), spec.Clients)
	}
	rangedFrac := float64(ranged) / n
	if math.Abs(rangedFrac-spec.RangedFrac) > 0.02 {
		t.Errorf("ranged fraction %.3f, want ~%.2f", rangedFrac, spec.RangedFrac)
	}
	// Prefix fraction is over ranged requests only, and uniform starts can
	// also land on zero, so only a lower bound is meaningful.
	if frac := float64(prefix) / float64(ranged); frac < spec.PrefixFrac-0.03 {
		t.Errorf("prefix fraction %.3f, want >= ~%.2f", frac, spec.PrefixFrac)
	}
}

// TestSessionSourceMeanSessionLength checks the geometric session-length
// draw: session boundaries are visible as gaps much longer than think times.
func TestSessionSourceMeanSessionLength(t *testing.T) {
	spec := FitSpec{
		Clips: 50, Theta: 0.2, Clients: 3, Sess: 12,
		ThinkMicros: 500, GapMicros: 200000,
	}
	src, err := NewSessionSource(spec, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	// Split per-client streams on gaps > 20x think — unambiguous because the
	// mean gap is 400x the mean think.
	last := map[string]int64{}
	counts := map[string]int{}
	sessions, requests := 0, 0
	for i := 0; i < n; i++ {
		tr, _ := src.NextTimed()
		if prev, seen := last[tr.Client]; !seen || tr.ArrivalMicros-prev > 20*spec.ThinkMicros {
			if seen {
				sessions++
				requests += counts[tr.Client]
			}
			counts[tr.Client] = 0
		}
		counts[tr.Client]++
		last[tr.Client] = tr.ArrivalMicros
	}
	if sessions < 100 {
		t.Fatalf("only %d completed sessions in %d requests", sessions, n)
	}
	mean := float64(requests) / float64(sessions)
	if math.Abs(mean-spec.Sess) > spec.Sess*0.15 {
		t.Errorf("mean session length %.2f, want ~%.1f", mean, spec.Sess)
	}
}

func TestFitQuantile(t *testing.T) {
	samples := []int64{5, 1, 9, 3, 7}
	if got := FitQuantile(samples, 0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := FitQuantile(samples, 0.99); got != 9 {
		t.Errorf("p99 = %d, want 9", got)
	}
	if got := FitQuantile(samples, 0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := FitQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
	// The input must not be reordered.
	if samples[0] != 5 || samples[4] != 7 {
		t.Error("FitQuantile mutated its input")
	}
}

package workload

import (
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/zipf"
)

func TestNewDriftingValidation(t *testing.T) {
	d := zipf.MustNew(10, 0.27)
	if _, err := NewDrifting(nil, 1, 10); err == nil {
		t.Error("nil distribution should fail")
	}
	if _, err := NewDrifting(d, 1, 0); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := NewDrifting(d, 1, -5); err == nil {
		t.Error("negative period should fail")
	}
	if _, err := NewDrifting(d, 1, 100); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestDriftAdvances(t *testing.T) {
	d := zipf.MustNew(100, 0.27)
	g, err := NewDrifting(d, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shift() != 0 {
		t.Fatal("initial shift")
	}
	for i := 0; i < 50; i++ {
		g.Next()
	}
	g.Next() // request 51 crosses the period boundary
	if g.Shift() != 1 {
		t.Fatalf("shift after one period = %d, want 1", g.Shift())
	}
	for i := g.Count(); i < 500; i++ {
		g.Next()
	}
	if g.Shift() != 9 { // count 499 -> 499/50 = 9
		t.Fatalf("shift = %d, want 9", g.Shift())
	}
	if g.N() != 100 {
		t.Fatal("N")
	}
}

func TestDriftDeterministicAndResettable(t *testing.T) {
	d := zipf.MustNew(50, 0.27)
	a, _ := NewDrifting(d, 7, 20)
	b, _ := NewDrifting(d, 7, 20)
	var first []media.ClipID
	for i := 0; i < 300; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("identical seeds diverge")
		}
		first = append(first, va)
	}
	a.Reset()
	if a.Shift() != 0 || a.Count() != 0 {
		t.Fatal("Reset incomplete")
	}
	for i := 0; i < 300; i++ {
		if a.Next() != first[i] {
			t.Fatal("replay after Reset diverged")
		}
	}
}

func TestDriftPMFTracksShift(t *testing.T) {
	d := zipf.MustNew(20, 0.27)
	g, _ := NewDrifting(d, 1, 5)
	for i := 0; i < 6; i++ {
		g.Next()
	}
	// Shift is now 1: identity 2 holds rank 1.
	pmf := g.PMF()
	maxID, maxP := 0, 0.0
	for i, p := range pmf {
		if p > maxP {
			maxID, maxP = i+1, p
		}
	}
	if maxID != 2 {
		t.Fatalf("most popular identity = %d, want 2 after one drift step", maxID)
	}
}

package workload

// source.go unifies the package's divergent generators — Generator (whole
// clips), RangeGenerator (byte ranges) and Churn (publish/perish streams) —
// behind one face (ISSUE 10): a Source emits Request events, so drivers
// (cmd/loadgen, cmd/cachesim, cmd/tracegen, internal/sim) consume any
// workload shape through the same loop, and fitted specs distilled from
// measured traffic (FitSpec) can replace a synthetic generator without the
// caller noticing. The adapters are thin: every draw still comes from the
// wrapped generator's own stream, so a generator and its Source emit
// byte-identical sequences at the same seed (pinned by TestSourceAdapters
// MatchGenerators).

import (
	"mediacache/internal/media"
)

// EventKind classifies one workload event.
type EventKind uint8

const (
	// EventRequest: a client references the clip (the common case).
	EventRequest EventKind = iota
	// EventPublish: the clip (re-)enters the live catalog (churn streams).
	EventPublish
	// EventPerish: the clip leaves the catalog; caches should purge it.
	EventPerish
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRequest:
		return "request"
	case EventPublish:
		return "publish"
	case EventPerish:
		return "perish"
	default:
		return "EventKind(?)"
	}
}

// Request is the unified workload event: a clip reference, optionally
// narrowed to a byte range, or a publish/perish catalog marker. The zero
// Kind is a plain whole-clip request, so generators that know nothing of
// ranges or churn fill only Clip.
type Request struct {
	Kind EventKind
	Clip media.ClipID
	// Ranged reports that Start/Length select a byte range of the clip;
	// false means the whole clip is referenced.
	Ranged bool
	Start  media.Bytes
	Length media.Bytes
}

// Source is the single face every workload generator presents: a
// deterministic stream of Requests. ok is false once a finite source
// (traces, churn schedules, bounded schedules) is exhausted; infinite
// sources always return true. Sources are not safe for concurrent use.
type Source interface {
	Next() (Request, bool)
}

// Take appends up to n events from src to dst and returns it; fewer when
// src exhausts first.
func Take(dst []Request, src Source, n int) []Request {
	for i := 0; i < n; i++ {
		req, ok := src.Next()
		if !ok {
			break
		}
		dst = append(dst, req)
	}
	return dst
}

// generatorSource adapts Generator: an infinite whole-clip request stream.
type generatorSource struct{ g *Generator }

func (s generatorSource) Next() (Request, bool) {
	return Request{Clip: s.g.Next()}, true
}

// Source returns the generator's unified-stream face. The clip sequence is
// the generator's own: interleaving Next calls on the generator and its
// Source drains one shared stream.
func (g *Generator) Source() Source { return generatorSource{g} }

// rangeSource adapts RangeGenerator: an infinite ranged request stream.
type rangeSource struct{ g *RangeGenerator }

func (s rangeSource) Next() (Request, bool) {
	rr := s.g.Next()
	return Request{Clip: rr.Clip, Ranged: true, Start: rr.Start, Length: rr.Length}, true
}

// Source returns the range generator's unified-stream face.
func (g *RangeGenerator) Source() Source { return rangeSource{g} }

// churnSource adapts Churn: a finite request stream with publish/perish
// markers.
type churnSource struct{ c *Churn }

func (s churnSource) Next() (Request, bool) {
	ev, ok := s.c.Next()
	if !ok {
		return Request{}, false
	}
	switch ev.Kind {
	case ChurnPublish:
		return Request{Kind: EventPublish, Clip: ev.Clip}, true
	case ChurnPerish:
		return Request{Kind: EventPerish, Clip: ev.Clip}, true
	default:
		return Request{Clip: ev.Clip}, true
	}
}

// Source returns the churn schedule's unified-stream face.
func (c *Churn) Source() Source { return churnSource{c} }

// traceSource replays a recorded Trace: a finite stream carrying the v2
// range columns when present.
type traceSource struct {
	t   *Trace
	pos int
}

func (s *traceSource) Next() (Request, bool) {
	if s.pos >= len(s.t.Requests) {
		return Request{}, false
	}
	i := s.pos
	s.pos++
	req := Request{Clip: s.t.Requests[i]}
	if s.t.RangeLens != nil && s.t.RangeLens[i] > 0 {
		req.Ranged = true
		req.Length = s.t.RangeLens[i]
		if s.t.RangeStarts != nil {
			req.Start = s.t.RangeStarts[i]
		}
	}
	return req, true
}

// Source returns a replay face over the trace. Each call starts a fresh
// replay from the first request.
func (t *Trace) Source() Source { return &traceSource{t: t} }

// scheduleSource drives a Generator through a Schedule phase by phase: the
// shift is set at each phase boundary, and the stream ends after the
// schedule's total request count — the evolving-access-pattern workloads of
// Section 4.4.1 behind the same face as everything else.
type scheduleSource struct {
	g     *Generator
	sched Schedule
	phase int
	left  int
}

// NewScheduleSource returns a finite Source emitting sched.TotalRequests()
// references from gen with the per-phase identity shifts applied.
func NewScheduleSource(g *Generator, sched Schedule) (Source, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return &scheduleSource{g: g, sched: sched, phase: -1}, nil
}

func (s *scheduleSource) Next() (Request, bool) {
	for s.left == 0 {
		s.phase++
		if s.phase >= len(s.sched) {
			return Request{}, false
		}
		// Validate proved every shift is applicable to the generator's
		// distribution range at construction of the schedule; SetShift can
		// still reject shifts exceeding N, which surfaces as stream end.
		if err := s.g.SetShift(s.sched[s.phase].Shift); err != nil {
			return Request{}, false
		}
		s.left = s.sched[s.phase].Requests
	}
	s.left--
	return Request{Clip: s.g.Next()}, true
}

package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/zipf"
)

func dist(t *testing.T) *zipf.Distribution {
	t.Helper()
	return zipf.MustNew(576, zipf.DefaultMean)
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, 1); err == nil {
		t.Error("nil distribution should fail")
	}
	if _, err := NewGenerator(dist(t), 1); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestMustNewGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewGenerator(nil, 1)
}

func TestDeterministicStream(t *testing.T) {
	a := MustNewGenerator(dist(t), 42)
	b := MustNewGenerator(dist(t), 42)
	for i := 0; i < 2000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give identical streams")
		}
	}
	if a.Count() != 2000 {
		t.Fatalf("Count = %d", a.Count())
	}
}

func TestRangeValid(t *testing.T) {
	g := MustNewGenerator(dist(t), 7)
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if id < 1 || id > 576 {
			t.Fatalf("id %d out of range", id)
		}
	}
}

func TestShiftChangesPopularIdentity(t *testing.T) {
	g := MustNewGenerator(dist(t), 7)
	if err := g.SetShift(100); err != nil {
		t.Fatal(err)
	}
	if g.Shift() != 100 {
		t.Fatalf("Shift = %d", g.Shift())
	}
	counts := make(map[media.ClipID]int)
	for i := 0; i < 50000; i++ {
		counts[g.Next()]++
	}
	max, maxID := 0, media.ClipID(0)
	for id, c := range counts {
		if c > max {
			max, maxID = c, id
		}
	}
	if maxID != 101 {
		t.Fatalf("most popular id = %d, want 101 under shift 100", maxID)
	}
}

func TestPMFMatchesEmpirical(t *testing.T) {
	g := MustNewGenerator(zipf.MustNew(20, 0.27), 3)
	pmf := g.PMF()
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %v", sum)
	}
	counts := make([]int, 21)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for id := 1; id <= 20; id++ {
		got := float64(counts[id]) / n
		want := pmf[id-1]
		if math.Abs(got-want) > 0.1*want+0.002 {
			t.Fatalf("id %d: empirical %v vs pmf %v", id, got, want)
		}
	}
}

func TestGenerateAndReset(t *testing.T) {
	g := MustNewGenerator(dist(t), 11)
	first := g.Generate(nil, 500)
	g.Reset()
	second := g.Generate(nil, 500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Reset must rewind the stream")
		}
	}
	if g.N() != 576 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestResetClearsShift(t *testing.T) {
	g := MustNewGenerator(dist(t), 11)
	g.SetShift(300)
	g.Reset()
	if g.Shift() != 0 {
		t.Fatal("Reset must clear the shift")
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule should fail")
	}
	if err := (Schedule{{Shift: 0, Requests: 0}}).Validate(); err == nil {
		t.Error("zero requests should fail")
	}
	if err := (Schedule{{Shift: -1, Requests: 10}}).Validate(); err == nil {
		t.Error("negative shift should fail")
	}
	s := Schedule{{Shift: 200, Requests: 10000}, {Shift: 300, Requests: 10000}}
	if err := s.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if s.TotalRequests() != 20000 {
		t.Fatalf("total = %d", s.TotalRequests())
	}
}

func TestTraceRecordAndValidate(t *testing.T) {
	g := MustNewGenerator(zipf.MustNew(10, 0.27), 5)
	tr := Record("test", g, 100)
	if len(tr.Requests) != 100 || tr.NumClips != 10 || tr.Name != "test" {
		t.Fatalf("trace = %+v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{Name: "bad", NumClips: 5, Requests: []media.ClipID{6}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range request should fail validation")
	}
	bad2 := &Trace{Name: "bad2", NumClips: 0}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero clip count should fail validation")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	g := MustNewGenerator(zipf.MustNew(10, 0.27), 5)
	tr := Record("roundtrip", g, 50)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.NumClips != tr.NumClips {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatal("length mismatch")
	}
	for i := range got.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatal("request mismatch")
		}
	}
}

func TestTraceBinaryRoundTrip(t *testing.T) {
	g := MustNewGenerator(zipf.MustNew(10, 0.27), 5)
	tr := Record("bin", g, 50)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "bin" || len(got.Requests) != 50 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []string{
		"",
		"#name,x\n",
		"garbage\ngarbage\n",
		"#name,x\n#clips,5\nwrong,header\n1,2\n",
		"#name,x\n#clips,5\nseq,clip\n0,notanumber\n",
		"#name,x\n#clips,5\nseq,clip\n0,99\n", // out of range
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadBinaryMalformed(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not gob data")); err == nil {
		t.Fatal("garbage should fail")
	}
}

package workload

import (
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/zipf"
)

// TestSourceAdaptersMatchGenerators pins ISSUE 10's compatibility
// guarantee: every generator emits a byte-identical stream through its
// Source adapter at the same seed, because the adapter drains the wrapped
// generator's own PRNG stream.
func TestSourceAdaptersMatchGenerators(t *testing.T) {
	t.Run("generator", func(t *testing.T) {
		direct := MustNewGenerator(dist(t), 42)
		src := MustNewGenerator(dist(t), 42).Source()
		for i := 0; i < 2000; i++ {
			req, ok := src.Next()
			if !ok {
				t.Fatal("generator source must be infinite")
			}
			if want := direct.Next(); req.Clip != want || req.Kind != EventRequest || req.Ranged {
				t.Fatalf("request %d: source %+v, generator clip %d", i, req, want)
			}
		}
	})

	t.Run("range-generator", func(t *testing.T) {
		repo := media.PaperRepository()
		mk := func() *RangeGenerator {
			g, err := NewRangeGenerator(repo, dist(t), 99, DefaultRangeConfig())
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		direct, src := mk(), mk().Source()
		for i := 0; i < 2000; i++ {
			req, ok := src.Next()
			if !ok {
				t.Fatal("range source must be infinite")
			}
			want := direct.Next()
			if !req.Ranged || req.Clip != want.Clip || req.Start != want.Start || req.Length != want.Length {
				t.Fatalf("request %d: source %+v, generator %+v", i, req, want)
			}
		}
	})

	t.Run("churn", func(t *testing.T) {
		spec := ChurnSpec{Rate: 0.02, Life: 400, Horizon: 3000}
		mk := func() *Churn {
			c, err := NewChurn(200, zipf.DefaultMean, spec, 7)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		direct, src := mk(), mk().Source()
		n := 0
		for {
			want, wantOK := direct.Next()
			req, ok := src.Next()
			if ok != wantOK {
				t.Fatalf("event %d: source ok=%v, churn ok=%v", n, ok, wantOK)
			}
			if !ok {
				break
			}
			var wantKind EventKind
			switch want.Kind {
			case ChurnPublish:
				wantKind = EventPublish
			case ChurnPerish:
				wantKind = EventPerish
			default:
				wantKind = EventRequest
			}
			if req.Clip != want.Clip || req.Kind != wantKind {
				t.Fatalf("event %d: source %+v, churn %+v", n, req, want)
			}
			n++
		}
		if n == 0 {
			t.Fatal("churn stream was empty")
		}
	})

	t.Run("schedule", func(t *testing.T) {
		sched := Schedule{{Shift: 0, Requests: 500}, {Shift: 100, Requests: 500}, {Shift: 200, Requests: 500}}
		direct := MustNewGenerator(dist(t), 13)
		src, err := NewScheduleSource(MustNewGenerator(dist(t), 13), sched)
		if err != nil {
			t.Fatal(err)
		}
		var want []media.ClipID
		for _, ph := range sched {
			if err := direct.SetShift(ph.Shift); err != nil {
				t.Fatal(err)
			}
			want = direct.Generate(want, ph.Requests)
		}
		got := Take(nil, src, len(want)+1)
		if len(got) != len(want) {
			t.Fatalf("schedule source emitted %d events, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Clip != want[i] {
				t.Fatalf("request %d: source clip %d, phased generator clip %d", i, got[i].Clip, want[i])
			}
		}
		if _, ok := src.Next(); ok {
			t.Fatal("schedule source must end after TotalRequests")
		}
	})
}

func TestTraceSourceReplay(t *testing.T) {
	tr := &Trace{
		Name:        "replay",
		NumClips:    10,
		Requests:    []media.ClipID{3, 7, 1},
		Clients:     []string{"a", "b", "a"},
		Ticks:       []int64{10, 20, 30},
		RangeStarts: []media.Bytes{0, 512, 0},
		RangeLens:   []media.Bytes{0, 1024, 2048},
	}
	got := Take(nil, tr.Source(), 10)
	want := []Request{
		{Clip: 3},
		{Clip: 7, Ranged: true, Start: 512, Length: 1024},
		{Clip: 1, Ranged: true, Start: 0, Length: 2048},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Each Source() call restarts the replay.
	again := Take(nil, tr.Source(), 1)
	if len(again) != 1 || again[0] != want[0] {
		t.Fatalf("fresh source should restart: got %+v", again)
	}
}

func TestScheduleSourceRejectsInvalid(t *testing.T) {
	if _, err := NewScheduleSource(MustNewGenerator(dist(t), 1), Schedule{}); err == nil {
		t.Fatal("empty schedule should be rejected")
	}
	if _, err := NewScheduleSource(MustNewGenerator(dist(t), 1), Schedule{{Shift: -1, Requests: 10}}); err == nil {
		t.Fatal("negative shift should be rejected")
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventRequest:  "request",
		EventPublish:  "publish",
		EventPerish:   "perish",
		EventKind(99): "EventKind(?)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

package workload

import (
	"strings"
	"testing"

	"mediacache/internal/zipf"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"zipf=0.5", Spec{Theta: 0.5}},
		{"0x1000", Spec{Theta: zipf.DefaultMean, Schedule: Schedule{{Shift: 0, Requests: 1000}}}},
		{"zipf=0.27,0x10000,200x5000", Spec{Theta: 0.27, Schedule: Schedule{
			{Shift: 0, Requests: 10000}, {Shift: 200, Requests: 5000}}}},
		{" zipf=1 , 3x7 ", Spec{Theta: 1, Schedule: Schedule{{Shift: 3, Requests: 7}}}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got.Theta != c.want.Theta || len(got.Schedule) != len(c.want.Schedule) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
			continue
		}
		for i := range got.Schedule {
			if got.Schedule[i] != c.want.Schedule[i] {
				t.Errorf("ParseSpec(%q).Schedule[%d] = %+v, want %+v",
					c.in, i, got.Schedule[i], c.want.Schedule[i])
			}
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"", "   ", ",", "0x1000,", "zipf=", "zipf=x", "zipf=1.5", "zipf=-0.1",
		"zipf=0.2,zipf=0.3", "10", "x", "ax5", "5xa", "0x0", "0x-3", "junk=1",
	} {
		if got, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %+v", bad, got)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"zipf=0.729",
		"zipf=0.27,0x10000,200x5000",
		"zipf=0.5,1x2,3x4,5x6",
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("ParseSpec(%q).String() = %q", s, got)
		}
	}
}

// FuzzParseSpec hardens the workload spec parser: it must never panic, and
// any spec it accepts must render back into a string that reparses to the
// identical spec.
func FuzzParseSpec(f *testing.F) {
	f.Add("zipf=0.27,0x10000,200x5000")
	f.Add("0x1000")
	f.Add("zipf=1")
	f.Add("zipf=0.2,zipf=0.3")
	f.Add(",,,")
	f.Add("9999999999999999999x1")
	f.Add(strings.Repeat("1x1,", 40) + "1x1")

	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails validation: %v", input, err)
		}
		rendered := spec.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted spec %q does not reparse: %q: %v",
				input, rendered, err)
		}
		if again.Theta != spec.Theta || len(again.Schedule) != len(spec.Schedule) {
			t.Fatalf("round trip changed spec: %+v vs %+v", spec, again)
		}
		for i := range spec.Schedule {
			if again.Schedule[i] != spec.Schedule[i] {
				t.Fatalf("round trip changed phase %d: %+v vs %+v",
					i, spec.Schedule[i], again.Schedule[i])
			}
		}
	})
}

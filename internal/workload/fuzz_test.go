package workload

import (
	"bytes"
	"strings"
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/zipf"
)

// FuzzReadCSV hardens the trace parser against malformed input: it must
// never panic, and anything it accepts must survive a write/read round
// trip unchanged.
func FuzzReadCSV(f *testing.F) {
	var seedBuf bytes.Buffer
	g := MustNewGenerator(zipf.MustNew(20, zipf.DefaultMean), 3)
	if err := Record("seed", g, 20).WriteCSV(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	var v2Buf bytes.Buffer
	v2 := &Trace{
		Name:     "seed-v2",
		NumClips: 20,
		Requests: []media.ClipID{3, 11},
		Clients:  []string{"c0", "c1"},
		Ticks:    []int64{10, 250},
	}
	if err := v2.WriteCSV(&v2Buf); err != nil {
		f.Fatal(err)
	}
	f.Add(v2Buf.String())
	f.Add("#name,x\n#clips,5\nseq,clip,client,tick,rangeStart,rangeLen\n0,1,c0,7,0,1024\n")
	f.Add("#name,x\n#clips,5\nseq,clip,client,tick,rangeStart,rangeLen\n0,1,,,,\n")
	f.Add("#name,x\n#clips,5\nseq,clip,client,tick,rangeStart,rangeLen\n0,1,c0,-7,0,0\n")
	f.Add("")
	f.Add("#name,x\n#clips,5\nseq,clip\n0,1\n")
	f.Add("#name,x\n#clips,5\nseq,clip\n0,6\n")
	f.Add("#clips,5\n#name,x\nseq,clip\n")
	f.Add("#name,x\n#clips,-1\nseq,clip\n")
	f.Add(strings.Repeat("a,b\n", 50))

	f.Fuzz(func(t *testing.T, input string) {
		trace, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := trace.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf); err != nil {
			t.Fatalf("rewriting accepted trace: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-reading rewritten trace: %v", err)
		}
		if len(again.Requests) != len(trace.Requests) || again.NumClips != trace.NumClips {
			t.Fatal("round trip changed the trace")
		}
	})
}

package workload

import (
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/zipf"
)

func newTestRangeGenerator(t *testing.T, seed uint64, cfg RangeConfig) *RangeGenerator {
	t.Helper()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRangeGenerator(repo, dist, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRangeGeneratorValidation covers the constructor's rejections.
func TestRangeGeneratorValidation(t *testing.T) {
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRangeGenerator(nil, dist, 1, DefaultRangeConfig()); err == nil {
		t.Error("nil repository accepted")
	}
	for _, cfg := range []RangeConfig{
		{PrefixProb: -0.1},
		{PrefixProb: 1.1},
		{FullProb: -0.1},
		{FullProb: 1.1},
		{MinLength: -1},
	} {
		if _, err := NewRangeGenerator(repo, dist, 1, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	big, err := zipf.New(repo.N()+1, zipf.DefaultMean)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRangeGenerator(repo, big, 1, DefaultRangeConfig()); err == nil {
		t.Error("distribution wider than the repository accepted")
	}
}

// TestRangeGeneratorDeterministic pins seed-replayability: same seed, same
// stream; different seeds diverge.
func TestRangeGeneratorDeterministic(t *testing.T) {
	a := newTestRangeGenerator(t, 42, DefaultRangeConfig())
	b := newTestRangeGenerator(t, 42, DefaultRangeConfig())
	c := newTestRangeGenerator(t, 43, DefaultRangeConfig())
	diverged := false
	for i := 0; i < 1000; i++ {
		ra, rb, rc := a.Next(), b.Next(), c.Next()
		if ra != rb {
			t.Fatalf("request %d: seed-identical generators diverged: %+v vs %+v", i, ra, rb)
		}
		if ra != rc {
			diverged = true
		}
	}
	if !diverged {
		t.Error("1000 requests from different seeds never diverged")
	}
	if a.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", a.Count())
	}
}

// TestRangeGeneratorClipStreamMatchesGenerator checks the clip identities are
// exactly those of a plain Generator with the same seed: range modeling is a
// pure extension of the reference string, not a different workload.
func TestRangeGeneratorClipStreamMatchesGenerator(t *testing.T) {
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		t.Fatal(err)
	}
	plain := MustNewGenerator(dist, 7)
	ranged, err := NewRangeGenerator(repo, dist, 7, DefaultRangeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		want := plain.Next()
		if got := ranged.Next().Clip; got != want {
			t.Fatalf("request %d: ranged clip %d, plain clip %d", i, got, want)
		}
	}
}

// TestRangeGeneratorBounds checks every drawn range lies inside its clip
// and respects MinLength where the clip allows it.
func TestRangeGeneratorBounds(t *testing.T) {
	repo := media.PaperRepository()
	cfg := RangeConfig{PrefixProb: 0.5, FullProb: 0.1, MinLength: media.MB}
	g := newTestRangeGenerator(t, 11, cfg)
	for i := 0; i < 5000; i++ {
		r := g.Next()
		clip, ok := repo.Lookup(r.Clip)
		if !ok {
			t.Fatalf("request %d references unknown clip %d", i, r.Clip)
		}
		if r.Start < 0 || r.Start >= clip.Size {
			t.Fatalf("request %d: start %d outside clip of %d bytes", i, r.Start, clip.Size)
		}
		if r.Length <= 0 || r.Start+r.Length > clip.Size {
			t.Fatalf("request %d: range [%d,+%d) escapes clip of %d bytes", i, r.Start, r.Length, clip.Size)
		}
		if r.Length < cfg.MinLength && r.Start+r.Length != clip.Size && clip.Size-r.Start >= cfg.MinLength {
			t.Fatalf("request %d: length %d under the %d floor", i, r.Length, cfg.MinLength)
		}
	}
}

// TestRangeGeneratorPrefixBias checks the configured share of references
// starts at byte zero and that FullProb plays clips to the end.
func TestRangeGeneratorPrefixBias(t *testing.T) {
	repo := media.PaperRepository()
	cfg := DefaultRangeConfig()
	g := newTestRangeGenerator(t, 3, cfg)
	const n = 20000
	fromZero, toEnd := 0, 0
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Start == 0 {
			fromZero++
		}
		clip, _ := repo.Lookup(r.Clip)
		if r.Start+r.Length == clip.Size {
			toEnd++
		}
	}
	zeroFrac := float64(fromZero) / n
	if zeroFrac < cfg.PrefixProb-0.02 || zeroFrac > cfg.PrefixProb+0.02 {
		t.Errorf("prefix fraction = %.3f, want ≈ %.2f", zeroFrac, cfg.PrefixProb)
	}
	// FullProb is a floor: short quadratic draws can also land on the end.
	if endFrac := float64(toEnd) / n; endFrac < cfg.FullProb-0.02 {
		t.Errorf("play-to-end fraction = %.3f, want ≥ ≈%.2f", endFrac, cfg.FullProb)
	}
}

// TestRangeGeneratorAlwaysPrefix checks the degenerate configs.
func TestRangeGeneratorAlwaysPrefix(t *testing.T) {
	repo := media.PaperRepository()
	g := newTestRangeGenerator(t, 9, RangeConfig{PrefixProb: 1, FullProb: 1})
	for i := 0; i < 200; i++ {
		r := g.Next()
		clip, _ := repo.Lookup(r.Clip)
		if r.Start != 0 || r.Length != clip.Size {
			t.Fatalf("request %d: %+v, want the whole clip from 0", i, r)
		}
	}
}

// TestRangeGeneratorGenerate checks batch generation appends n requests.
func TestRangeGeneratorGenerate(t *testing.T) {
	g := newTestRangeGenerator(t, 5, DefaultRangeConfig())
	got := g.Generate(nil, 64)
	if len(got) != 64 || g.Count() != 64 {
		t.Fatalf("Generate produced %d requests, Count = %d", len(got), g.Count())
	}
}

// Package workload generates the clip reference strings that drive the
// simulation (Section 3.3): a client issues requests one after another, each
// referencing a clip drawn from a (possibly shifted) Zipfian distribution via
// a seeded random number generator, so every technique sees the identical
// deterministic sequence (footnote 5).
//
// The package also models the evolving-access-pattern schedules of
// Section 4.4.1, where the shift value g changes at request boundaries, and
// provides trace recording/replay so experiments can run against saved
// reference strings.
package workload

import (
	"fmt"

	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/zipf"
)

// Generator produces a deterministic stream of clip references.
type Generator struct {
	shifted *zipf.Shifted
	src     *randutil.Source
	seed    uint64
	count   int64
}

// NewGenerator returns a Generator drawing clip identities in 1..dist.N()
// from dist, using a stream seeded with seed. The initial shift is 0.
func NewGenerator(dist *zipf.Distribution, seed uint64) (*Generator, error) {
	if dist == nil {
		return nil, fmt.Errorf("workload: distribution must not be nil")
	}
	shifted, err := zipf.NewShifted(dist, 0)
	if err != nil {
		return nil, err
	}
	return &Generator{
		shifted: shifted,
		src:     randutil.NewSource(seed),
		seed:    seed,
	}, nil
}

// MustNewGenerator is like NewGenerator but panics on error.
func MustNewGenerator(dist *zipf.Distribution, seed uint64) *Generator {
	g, err := NewGenerator(dist, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Next returns the next referenced clip identity.
func (g *Generator) Next() media.ClipID {
	g.count++
	return media.ClipID(g.shifted.Sample(g.src))
}

// Count returns how many references have been generated.
func (g *Generator) Count() int64 { return g.count }

// SetShift changes the identity shift g (Section 4.4.1): with shift s, the
// clip with identity ((rank-1+s) mod N)+1 receives rank's popularity.
func (g *Generator) SetShift(s int) error { return g.shifted.SetShift(s) }

// Shift returns the current shift value.
func (g *Generator) Shift() int { return g.shifted.Shift() }

// PMF returns the true per-identity request probabilities under the current
// shift, indexed by clip id-1. This is the "accurate frequency of access"
// used for theoretical hit rates and for the off-line Simple technique.
func (g *Generator) PMF() []float64 { return g.shifted.PMF() }

// N returns the number of clips in the underlying distribution.
func (g *Generator) N() int { return g.shifted.N() }

// Generate appends n references to dst and returns it.
func (g *Generator) Generate(dst []media.ClipID, n int) []media.ClipID {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// Reset rewinds the generator to its initial state (seed and shift 0).
func (g *Generator) Reset() {
	g.src = randutil.NewSource(g.seed)
	g.count = 0
	_ = g.shifted.SetShift(0)
}

// Phase is one segment of an evolving-access-pattern schedule: Requests
// references drawn with the identity shift Shift.
type Phase struct {
	Shift    int
	Requests int
}

// Schedule is a sequence of phases. The Figure 6.b experiment, for example,
// is {Shift: 200, Requests: 10000} followed by {Shift: 300, Requests: 10000}.
type Schedule []Phase

// TotalRequests returns the sum of requests across phases.
func (s Schedule) TotalRequests() int {
	total := 0
	for _, p := range s {
		total += p.Requests
	}
	return total
}

// Validate reports whether the schedule is well formed.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("workload: schedule must contain at least one phase")
	}
	for i, p := range s {
		if p.Requests <= 0 {
			return fmt.Errorf("workload: phase %d has non-positive request count %d", i, p.Requests)
		}
		if p.Shift < 0 {
			return fmt.Errorf("workload: phase %d has negative shift %d", i, p.Shift)
		}
	}
	return nil
}

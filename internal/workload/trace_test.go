package workload

import (
	"bytes"
	"strings"
	"testing"

	"mediacache/internal/media"
)

// TestTraceV1GoldenBytes freezes the v1 CSV byte format: a trace carrying
// no v2 column must serialize exactly as it did before ISSUE 10, so
// archived traces and their checksums stay valid.
func TestTraceV1GoldenBytes(t *testing.T) {
	tr := &Trace{Name: "golden", NumClips: 5, Requests: []media.ClipID{3, 1, 5}}
	const want = "#name,golden\n#clips,5\nseq,clip\n0,3\n1,1\n2,5\n"
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatalf("v1 bytes changed:\ngot  %q\nwant %q", buf.String(), want)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.V2() {
		t.Fatal("v1 trace read back as v2")
	}
}

func TestTraceV2CSVRoundTrip(t *testing.T) {
	tr := &Trace{
		Name:        "v2",
		NumClips:    10,
		Requests:    []media.ClipID{3, 7, 1},
		Clients:     []string{"c0", "c1", ""},
		Ticks:       []int64{100, 250, 9000},
		RangeStarts: []media.Bytes{0, 4096, 0},
		RangeLens:   []media.Bytes{0, 8192, 0},
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "seq,clip,client,tick,rangeStart,rangeLen") {
		t.Fatalf("v2 trace missing extended header:\n%s", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.V2() {
		t.Fatal("v2 trace read back as v1")
	}
	assertTracesEqual(t, back, tr)
}

// TestTraceV2PartialColumns: a trace carrying only some v2 columns writes
// zero values for the rest and reads back with every column materialized.
func TestTraceV2PartialColumns(t *testing.T) {
	tr := &Trace{
		Name:     "partial",
		NumClips: 4,
		Requests: []media.ClipID{2, 4},
		Clients:  []string{"a", "b"},
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Clients[0] != "a" || back.Clients[1] != "b" {
		t.Fatalf("clients = %v", back.Clients)
	}
	for i := range back.Requests {
		if back.Ticks[i] != 0 || back.RangeStarts[i] != 0 || back.RangeLens[i] != 0 {
			t.Fatalf("absent columns should read as zero, got row %d: tick=%d start=%d len=%d",
				i, back.Ticks[i], back.RangeStarts[i], back.RangeLens[i])
		}
	}
}

func TestTraceV2BinaryRoundTrip(t *testing.T) {
	tr := &Trace{
		Name:        "gob",
		NumClips:    8,
		Requests:    []media.ClipID{1, 8},
		Clients:     []string{"x", "y"},
		Ticks:       []int64{5, 6},
		RangeStarts: []media.Bytes{0, 100},
		RangeLens:   []media.Bytes{0, 200},
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, back, tr)
}

func TestTraceValidateV2Columns(t *testing.T) {
	base := func() *Trace {
		return &Trace{Name: "v", NumClips: 5, Requests: []media.ClipID{1, 2}}
	}
	tr := base()
	tr.Clients = []string{"only-one"}
	if err := tr.Validate(); err == nil {
		t.Error("short client column should fail validation")
	}
	tr = base()
	tr.Ticks = []int64{0, -1}
	if err := tr.Validate(); err == nil {
		t.Error("negative tick should fail validation")
	}
	tr = base()
	tr.RangeLens = []media.Bytes{0, -2}
	if err := tr.Validate(); err == nil {
		t.Error("negative rangeLen should fail validation")
	}
}

func TestRecordTimed(t *testing.T) {
	spec := FitSpec{
		Clips: 50, Theta: 0.27, Clients: 3, Sess: 5,
		ThinkMicros: 1000, GapMicros: 30000,
		RangedFrac: 0.5, PrefixFrac: 0.75, LengthFrac: 0.4,
	}
	src, err := NewSessionSource(spec, media.PaperRepository(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := RecordTimed("timed", src, spec.Clips, 500)
	if len(tr.Requests) != 500 {
		t.Fatalf("recorded %d requests, want 500", len(tr.Requests))
	}
	if !tr.V2() {
		t.Fatal("RecordTimed must produce a v2 trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	sawRange, sawClient := false, false
	for i := range tr.Requests {
		if tr.RangeLens[i] > 0 {
			sawRange = true
		}
		if tr.Clients[i] != "" {
			sawClient = true
		}
	}
	if !sawRange || !sawClient {
		t.Fatalf("timed trace should carry ranges and clients (range=%v client=%v)", sawRange, sawClient)
	}
	// The recorded trace replays through its Source face.
	reqs := Take(nil, tr.Source(), 600)
	if len(reqs) != 500 {
		t.Fatalf("replayed %d events, want 500", len(reqs))
	}
}

func assertTracesEqual(t *testing.T, got, want *Trace) {
	t.Helper()
	if got.Name != want.Name || got.NumClips != want.NumClips {
		t.Fatalf("header: got %q/%d, want %q/%d", got.Name, got.NumClips, want.Name, want.NumClips)
	}
	if len(got.Requests) != len(want.Requests) {
		t.Fatalf("length: got %d, want %d", len(got.Requests), len(want.Requests))
	}
	for i := range want.Requests {
		if got.Requests[i] != want.Requests[i] ||
			got.Clients[i] != want.Clients[i] ||
			got.Ticks[i] != want.Ticks[i] ||
			got.RangeStarts[i] != want.RangeStarts[i] ||
			got.RangeLens[i] != want.RangeLens[i] {
			t.Fatalf("row %d differs: got (%d,%s,%d,%d,%d), want (%d,%s,%d,%d,%d)",
				i, got.Requests[i], got.Clients[i], got.Ticks[i], got.RangeStarts[i], got.RangeLens[i],
				want.Requests[i], want.Clients[i], want.Ticks[i], want.RangeStarts[i], want.RangeLens[i])
		}
	}
}

package workload

import (
	"math"
	"testing"

	"mediacache/internal/media"
)

func TestParseChurn(t *testing.T) {
	cases := []struct {
		in   string
		want ChurnSpec
	}{
		{"churn=0.01,4000x20000", ChurnSpec{Rate: 0.01, Life: 4000, Horizon: 20000}},
		{"0.5,10x100", ChurnSpec{Rate: 0.5, Life: 10, Horizon: 100}},
		{" churn=0,1x1 ", ChurnSpec{Rate: 0, Life: 1, Horizon: 1}},
		{"churn=1,2x3", ChurnSpec{Rate: 1, Life: 2, Horizon: 3}},
	}
	for _, c := range cases {
		got, err := ParseChurn(c.in)
		if err != nil {
			t.Errorf("ParseChurn(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseChurn(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseChurnRejects(t *testing.T) {
	for _, bad := range []string{
		"", "churn=", "0.5", "0.5,", "x", "0.5,x", "0.5,10", "0.5,10x",
		"0.5,x100", "1.5,10x100", "-0.1,10x100", "nan,10x100", "0.5,0x100",
		"0.5,10x0", "0.5,-1x100", "0.5,10x-1", "a,10x100", "0.5,ax100", "0.5,10xa",
	} {
		if got, err := ParseChurn(bad); err == nil {
			t.Errorf("ParseChurn(%q) accepted: %+v", bad, got)
		}
	}
}

func TestChurnSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"churn=0.01,4000x20000",
		"churn=0.729,1x1",
		"churn=1,2x3",
	} {
		spec, err := ParseChurn(s)
		if err != nil {
			t.Fatalf("ParseChurn(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("ParseChurn(%q).String() = %q", s, got)
		}
	}
}

// collectChurn drains a generator into a slice.
func collectChurn(t *testing.T, c *Churn) []ChurnEvent {
	t.Helper()
	var evs []ChurnEvent
	for {
		ev, ok := c.Next()
		if !ok {
			return evs
		}
		evs = append(evs, ev)
	}
}

// TestChurnDeterministic: same (n, θ, spec, seed) → byte-identical event
// streams, from a fresh generator and from Reset.
func TestChurnDeterministic(t *testing.T) {
	spec := ChurnSpec{Rate: 0.05, Life: 200, Horizon: 5000}
	a, err := NewChurn(64, 0.27, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurn(64, 0.27, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := collectChurn(t, a), collectChurn(t, b)
	if len(ea) != len(eb) {
		t.Fatalf("stream lengths differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	a.Reset()
	er := collectChurn(t, a)
	if len(er) != len(ea) {
		t.Fatalf("reset stream length %d, first run %d", len(er), len(ea))
	}
	for i := range ea {
		if er[i] != ea[i] {
			t.Fatalf("reset event %d differs: %+v vs %+v", i, er[i], ea[i])
		}
	}
	c, err := NewChurn(64, 0.27, spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	ec := collectChurn(t, c)
	same := len(ec) == len(ea)
	if same {
		for i := range ea {
			if ec[i] != ea[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestChurnSchedule checks the structural invariants of the stream: one
// request per tick, requests only reference live clips, perished clips
// stay out of the population until republished, every clip's life spans
// at most Life ticks, and the live catalog never empties.
func TestChurnSchedule(t *testing.T) {
	const n = 48
	spec := ChurnSpec{Rate: 0.1, Life: 100, Horizon: 8000}
	c, err := NewChurn(n, 0.27, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	alive := make(map[media.ClipID]bool, n)
	bornAt := make(map[media.ClipID]int, n)
	for i := 1; i <= n; i++ {
		alive[media.ClipID(i)] = true
		bornAt[media.ClipID(i)] = 0
	}
	requests, publishes, perishes := 0, 0, 0
	tick := 0
	for {
		ev, ok := c.Next()
		if !ok {
			break
		}
		switch ev.Kind {
		case ChurnRequest:
			tick++
			requests++
			if !alive[ev.Clip] {
				t.Fatalf("tick %d: request for dead clip %d", tick, ev.Clip)
			}
		case ChurnPublish:
			publishes++
			if alive[ev.Clip] {
				t.Fatalf("tick %d: publish of already-live clip %d", tick, ev.Clip)
			}
			alive[ev.Clip] = true
			bornAt[ev.Clip] = tick
		case ChurnPerish:
			perishes++
			if !alive[ev.Clip] {
				t.Fatalf("tick %d: perish of already-dead clip %d", tick, ev.Clip)
			}
			if age := tick + 1 - bornAt[ev.Clip]; age > spec.Life+1 {
				t.Fatalf("tick %d: clip %d perished after %d ticks, life is %d",
					tick, ev.Clip, age, spec.Life)
			}
			delete(alive, ev.Clip)
			if len(alive) == 0 {
				t.Fatalf("tick %d: catalog emptied", tick)
			}
		}
	}
	if requests != spec.Horizon {
		t.Fatalf("stream carried %d requests, horizon is %d", requests, spec.Horizon)
	}
	if perishes == 0 || publishes == 0 {
		t.Fatalf("no catalog dynamics: %d perishes, %d publishes", perishes, publishes)
	}
	if got := c.Live(); got != len(alive) {
		t.Fatalf("Live() = %d, tracked %d", got, len(alive))
	}
}

// TestChurnRateZero: with publish probability zero the population only
// shrinks (down to the keep-one floor) and nothing is ever published.
func TestChurnRateZero(t *testing.T) {
	spec := ChurnSpec{Rate: 0, Life: 10, Horizon: 200}
	c, err := NewChurn(8, 0.5, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, ok := c.Next()
		if !ok {
			break
		}
		if ev.Kind == ChurnPublish {
			t.Fatal("publish event at rate 0")
		}
	}
	if got := c.Live(); got != 1 {
		t.Fatalf("rate-0 catalog should shrink to 1 live clip, has %d", got)
	}
}

func TestNewChurnRejects(t *testing.T) {
	good := ChurnSpec{Rate: 0.1, Life: 10, Horizon: 100}
	if _, err := NewChurn(0, 0.5, good, 1); err == nil {
		t.Error("accepted zero catalog")
	}
	if _, err := NewChurn(4, 1.5, good, 1); err == nil {
		t.Error("accepted theta > 1")
	}
	if _, err := NewChurn(4, math.NaN(), good, 1); err == nil {
		t.Error("accepted NaN theta")
	}
	if _, err := NewChurn(4, 0.5, ChurnSpec{Rate: 0.1, Life: 0, Horizon: 5}, 1); err == nil {
		t.Error("accepted zero life")
	}
}

// FuzzParseChurn hardens the churn grammar: ParseChurn must never panic,
// and any spec it accepts must render back into a string that reparses to
// the identical spec.
func FuzzParseChurn(f *testing.F) {
	f.Add("churn=0.01,4000x20000")
	f.Add("0.5,10x100")
	f.Add("churn=")
	f.Add("churn=1,1x1")
	f.Add("nan,1x1")
	f.Add("-0,1x1")
	f.Add("0x1p-3,2x9")
	f.Add("1e-300,9999999999x1")
	f.Add(",,,x")

	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseChurn(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails validation: %v", input, err)
		}
		rendered := spec.String()
		again, err := ParseChurn(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted spec %q does not reparse: %q: %v",
				input, rendered, err)
		}
		if again != spec {
			t.Fatalf("round trip changed spec: %+v vs %+v", spec, again)
		}
	})
}

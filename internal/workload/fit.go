package workload

// fit.go closes the measure→model→replay loop (ISSUE 10): a FitSpec is a
// workload distilled from a recorded request log by `traceql -fit` —
// catalog size, Zipf exponent, session shape and range bias — and a
// SessionSource replays it as a deterministic stream of timed, sessionized
// requests any Source consumer (cmd/loadgen, cmd/cachesim, internal/sim)
// can drive. The synthetic stream's sessionized statistics match the
// measured log's within the tolerances documented in DESIGN §18.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/zipf"
)

// FitSpec is a compact, replayable description of measured traffic:
//
//	fit=clips=576,theta=0.27,clients=8,sess=12.5,think=2000,gap=120000
//	    [,ranged=0.5,prefix=0.75,lenfrac=0.4]
//
// Clients independent request streams interleave; each client alternates
// between sessions of geometrically distributed length (mean Sess) whose
// requests are spaced by exponential think times (mean ThinkMicros), and
// idle gaps of exponential length (mean GapMicros). Clip identities are
// Zipf(Theta) over 1..Clips. With RangedFrac > 0 a request references a
// byte range instead of the whole clip: it starts at byte zero with
// probability PrefixFrac (else at a uniform offset) and covers a uniform
// fraction of the clip with mean LengthFrac.
type FitSpec struct {
	// Clips is the catalog size the clip stream draws over.
	Clips int
	// Theta is the Zipf exponent estimate in [0, 1].
	Theta float64
	// Clients is the number of concurrent client streams.
	Clients int
	// Sess is the mean session length in requests (>= 1).
	Sess float64
	// ThinkMicros is the mean within-session inter-arrival time, µs.
	ThinkMicros int64
	// GapMicros is the mean idle gap between a client's sessions, µs.
	GapMicros int64
	// RangedFrac is the fraction of requests referencing a byte range.
	RangedFrac float64
	// PrefixFrac is, of ranged requests, the fraction starting at byte 0.
	PrefixFrac float64
	// LengthFrac is the mean fraction of the clip a ranged request covers.
	LengthFrac float64
}

// ParseFit parses the textual form. The "fit=" prefix is optional; the
// result always passes Validate.
func ParseFit(s string) (FitSpec, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "fit=")
	if t == "" {
		return FitSpec{}, fmt.Errorf("workload: empty fit spec")
	}
	var spec FitSpec
	seen := map[string]bool{}
	for _, term := range strings.Split(t, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return FitSpec{}, fmt.Errorf("workload: bad fit term %q (want key=value)", term)
		}
		if seen[key] {
			return FitSpec{}, fmt.Errorf("workload: duplicate fit term %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "clips":
			spec.Clips, err = strconv.Atoi(val)
		case "theta":
			spec.Theta, err = strconv.ParseFloat(val, 64)
		case "clients":
			spec.Clients, err = strconv.Atoi(val)
		case "sess":
			spec.Sess, err = strconv.ParseFloat(val, 64)
		case "think":
			spec.ThinkMicros, err = strconv.ParseInt(val, 10, 64)
		case "gap":
			spec.GapMicros, err = strconv.ParseInt(val, 10, 64)
		case "ranged":
			spec.RangedFrac, err = strconv.ParseFloat(val, 64)
		case "prefix":
			spec.PrefixFrac, err = strconv.ParseFloat(val, 64)
		case "lenfrac":
			spec.LengthFrac, err = strconv.ParseFloat(val, 64)
		default:
			return FitSpec{}, fmt.Errorf("workload: unknown fit term %q", key)
		}
		if err != nil {
			return FitSpec{}, fmt.Errorf("workload: bad fit value in %q: %v", term, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return FitSpec{}, err
	}
	return spec, nil
}

// Validate reports whether the spec is well formed.
func (sp FitSpec) Validate() error {
	if sp.Clips <= 0 {
		return fmt.Errorf("workload: fit clips must be positive, got %d", sp.Clips)
	}
	if !(sp.Theta >= 0 && sp.Theta <= 1) { // rejects NaN
		return fmt.Errorf("workload: fit theta %v outside [0, 1]", sp.Theta)
	}
	if sp.Clients <= 0 {
		return fmt.Errorf("workload: fit clients must be positive, got %d", sp.Clients)
	}
	if !(sp.Sess >= 1) || math.IsInf(sp.Sess, 0) {
		return fmt.Errorf("workload: fit mean session length %v must be >= 1 and finite", sp.Sess)
	}
	if sp.ThinkMicros < 1 {
		return fmt.Errorf("workload: fit think must be >= 1µs, got %d", sp.ThinkMicros)
	}
	if sp.GapMicros < 1 {
		return fmt.Errorf("workload: fit gap must be >= 1µs, got %d", sp.GapMicros)
	}
	if !(sp.RangedFrac >= 0 && sp.RangedFrac <= 1) {
		return fmt.Errorf("workload: fit ranged fraction %v outside [0, 1]", sp.RangedFrac)
	}
	if !(sp.PrefixFrac >= 0 && sp.PrefixFrac <= 1) {
		return fmt.Errorf("workload: fit prefix fraction %v outside [0, 1]", sp.PrefixFrac)
	}
	if !(sp.LengthFrac >= 0 && sp.LengthFrac <= 1) {
		return fmt.Errorf("workload: fit length fraction %v outside [0, 1]", sp.LengthFrac)
	}
	return nil
}

// String renders the spec in ParseFit's syntax; a valid spec round-trips
// exactly. The range terms are emitted only when RangedFrac > 0, matching
// the fitter's output for unranged logs.
func (sp FitSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fit=clips=%d,theta=%s,clients=%d,sess=%s,think=%d,gap=%d",
		sp.Clips, strconv.FormatFloat(sp.Theta, 'g', -1, 64), sp.Clients,
		strconv.FormatFloat(sp.Sess, 'g', -1, 64), sp.ThinkMicros, sp.GapMicros)
	if sp.RangedFrac > 0 {
		fmt.Fprintf(&b, ",ranged=%s,prefix=%s,lenfrac=%s",
			strconv.FormatFloat(sp.RangedFrac, 'g', -1, 64),
			strconv.FormatFloat(sp.PrefixFrac, 'g', -1, 64),
			strconv.FormatFloat(sp.LengthFrac, 'g', -1, 64))
	}
	return b.String()
}

// TimedRequest is a Request stamped with the issuing client and its
// scheduled arrival time on the source's virtual clock.
type TimedRequest struct {
	Request
	Client        string
	ArrivalMicros int64
}

// sessionClient is one client stream's replay state.
type sessionClient struct {
	name        string
	nextArrival int64
	left        int // requests remaining in the current session
}

// SessionSource replays a FitSpec as an infinite deterministic stream of
// timed requests: clients interleave in arrival order (ties broken by
// client index), with all randomness drawn from Split-derived streams of
// one seed, so two sources with the same (spec, repo, seed) emit
// byte-identical streams. It implements both Source and TimedSource.
type SessionSource struct {
	spec    FitSpec
	repo    *media.Repository
	dist    *zipf.Distribution
	clips   *randutil.Source // clip identity draws
	times   *randutil.Source // think/gap/session-length draws
	ranges  *randutil.Source // range shape draws
	clients []sessionClient
}

// NewSessionSource builds the replay source. repo supplies clip sizes for
// ranged requests and may be nil when spec.RangedFrac == 0; when present,
// spec.Clips must not exceed repo.N().
func NewSessionSource(spec FitSpec, repo *media.Repository, seed uint64) (*SessionSource, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.RangedFrac > 0 && repo == nil {
		return nil, fmt.Errorf("workload: fit spec with ranged=%v needs a repository for clip sizes", spec.RangedFrac)
	}
	if repo != nil && spec.Clips > repo.N() {
		return nil, fmt.Errorf("workload: fit spec draws %d identities but repository has %d clips", spec.Clips, repo.N())
	}
	dist, err := zipf.New(spec.Clips, spec.Theta)
	if err != nil {
		return nil, err
	}
	root := randutil.NewSource(seed).Split("session")
	s := &SessionSource{
		spec:    spec,
		repo:    repo,
		dist:    dist,
		clips:   root.Split("clips"),
		times:   root.Split("times"),
		ranges:  root.Split("ranges"),
		clients: make([]sessionClient, spec.Clients),
	}
	for i := range s.clients {
		s.clients[i] = sessionClient{
			name: fmt.Sprintf("c%d", i),
			// Stagger first arrivals over one mean gap so the streams don't
			// all wake at time zero.
			nextArrival: s.exp(s.times, spec.GapMicros),
		}
	}
	return s, nil
}

// exp draws an exponential duration with the given mean, floored at 1µs so
// time always advances.
func (s *SessionSource) exp(src *randutil.Source, mean int64) int64 {
	d := int64(-float64(mean) * math.Log(1-src.Float64()))
	if d < 1 {
		d = 1
	}
	return d
}

// NextTimed returns the next timed request: the earliest-scheduled client
// emits, then advances its own schedule.
func (s *SessionSource) NextTimed() (TimedRequest, bool) {
	c := &s.clients[0]
	for i := 1; i < len(s.clients); i++ {
		if s.clients[i].nextArrival < c.nextArrival {
			c = &s.clients[i]
		}
	}
	if c.left == 0 {
		// New session: geometric length with mean Sess (p = 1/Sess).
		p := 1 / s.spec.Sess
		u := s.times.Float64()
		n := 1
		if p < 1 {
			n = 1 + int(math.Log(1-u)/math.Log(1-p))
		}
		if n < 1 {
			n = 1
		}
		c.left = n
	}
	tr := TimedRequest{
		Request:       Request{Clip: media.ClipID(s.dist.Sample(s.clips))},
		Client:        c.name,
		ArrivalMicros: c.nextArrival,
	}
	if s.spec.RangedFrac > 0 && s.ranges.Float64() < s.spec.RangedFrac {
		tr.Request = s.rangeOf(tr.Clip)
	}
	c.left--
	if c.left > 0 {
		c.nextArrival += s.exp(s.times, s.spec.ThinkMicros)
	} else {
		c.nextArrival += s.exp(s.times, s.spec.GapMicros)
	}
	return tr, true
}

// rangeOf draws the byte range of a ranged reference to clip id per the
// spec's prefix and length biases.
func (s *SessionSource) rangeOf(id media.ClipID) Request {
	clip, ok := s.repo.Lookup(id)
	if !ok {
		// The constructor proved every identity resolves.
		panic(fmt.Sprintf("workload: clip %d vanished from repository", id))
	}
	var start media.Bytes
	if s.ranges.Float64() >= s.spec.PrefixFrac {
		start = media.Bytes(s.ranges.Float64() * float64(clip.Size))
		if start >= clip.Size {
			start = clip.Size - 1
		}
	}
	// Uniform length fraction with mean LengthFrac: u in [0, 2·LengthFrac],
	// clamped to the clip so heavy means saturate at full length.
	frac := s.ranges.Float64() * 2 * s.spec.LengthFrac
	length := media.Bytes(frac * float64(clip.Size))
	if length < 1 {
		length = 1
	}
	if length > clip.Size-start {
		length = clip.Size - start
	}
	return Request{Clip: id, Ranged: true, Start: start, Length: length}
}

// Next implements Source.
func (s *SessionSource) Next() (Request, bool) {
	tr, ok := s.NextTimed()
	return tr.Request, ok
}

// FitQuantile reads the exact q-quantile (nearest rank) of unsorted int64
// samples; 0 when empty. Shared by the fitter and its round-trip tests.
func FitQuantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/metrics"
	"mediacache/internal/sim"
)

func clip(id int, size media.Bytes) media.Clip {
	return media.Clip{ID: media.ClipID(id), Size: size}
}

// TestCacheMetricsEventStream drives a realistic event sequence through the
// observer and checks the counters and the eviction-batch histogram.
func TestCacheMetricsEventStream(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewCacheMetrics(reg)
	// Request 1: cold miss. Request 2: hit. Request 3: miss evicting two
	// clips. Request 4: bypass. Restore of one clip. The engine sets
	// Event.Bytes to the clip size on whole-clip events; the observer
	// aggregates Bytes, so the literals carry it too.
	events := []core.Event{
		{Type: core.EventMiss, Clip: clip(1, 100), Bytes: 100},
		{Type: core.EventHit, Clip: clip(1, 100), Bytes: 100},
		{Type: core.EventEviction, Clip: clip(1, 100), Bytes: 100},
		{Type: core.EventEviction, Clip: clip(2, 50), Bytes: 50},
		{Type: core.EventMiss, Clip: clip(3, 120), Bytes: 120},
		{Type: core.EventBypass, Clip: clip(4, 999), Bytes: 999},
		{Type: core.EventRestore, Clip: clip(5, 10), Bytes: 10},
		{Type: core.EventInvalidate, Clip: clip(3, 120), Bytes: 120},
	}
	for _, ev := range events {
		m.Observe(ev)
	}
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"hits", m.Hits.Value(), 1},
		{"misses", m.Misses.Value(), 3}, // two cached misses + one bypass
		{"evictions", m.Evictions.Value(), 2},
		{"bypasses", m.Bypasses.Value(), 1},
		{"restores", m.Restores.Value(), 1},
		{"bytesFetched", m.BytesFetched.Value(), 100 + 120 + 999},
		{"bytesEvicted", m.BytesEvicted.Value(), 150},
		{"batches", m.EvictionBatch.Count(), 1},
		{"invalidated", m.Invalidated.Value(), 1},
		{"bytesInvalidated", m.BytesInvalidated.Value(), 120},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if m.EvictionBatch.Sum() != 2 {
		t.Errorf("eviction batch sum = %v, want 2 (one batch of two victims)", m.EvictionBatch.Sum())
	}
}

// TestCacheMetricsLiveEngine attaches the observer to a real cache and
// checks counters match core.Stats.
func TestCacheMetricsLiveEngine(t *testing.T) {
	repo := media.PaperRepository()
	reg := metrics.NewRegistry()
	m := NewCacheMetrics(reg)
	cache, err := sim.NewCache("lruk:2", repo, repo.CacheSizeForRatio(0.05), nil,
		sim.DefaultSeed, core.WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 200; id++ {
		if _, err := cache.Request(media.ClipID(id%40 + 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if m.Hits.Value() != st.Hits {
		t.Errorf("hits counter = %d, stats = %d", m.Hits.Value(), st.Hits)
	}
	if m.Misses.Value() != st.Requests-st.Hits {
		t.Errorf("misses counter = %d, stats = %d", m.Misses.Value(), st.Requests-st.Hits)
	}
	if m.Evictions.Value() != st.Evictions {
		t.Errorf("evictions counter = %d, stats = %d", m.Evictions.Value(), st.Evictions)
	}
	if m.BytesFetched.Value() != uint64(st.BytesFetched) {
		t.Errorf("bytesFetched counter = %d, stats = %d", m.BytesFetched.Value(), st.BytesFetched)
	}
}

// TestCacheMetricsInvalidation attaches the observer to a TTL engine,
// invalidates explicitly and by expiry, and checks the invalidation
// families track core.Stats — and stay out of the eviction families.
func TestCacheMetricsInvalidation(t *testing.T) {
	repo := media.PaperRepository()
	reg := metrics.NewRegistry()
	m := NewCacheMetrics(reg)
	cache, err := sim.NewCache("greedydual", repo, repo.CacheSizeForRatio(0.125), nil,
		sim.DefaultSeed, core.WithObserver(m), core.WithTTL(30))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := cache.Request(media.ClipID(i%9 + 1)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 25 {
			cache.Invalidate(media.ClipID(i%9 + 1))
		}
	}
	st := cache.Stats()
	if st.Invalidated == 0 || st.Expired == 0 {
		t.Fatalf("drive produced no invalidations/expiries: %+v", st)
	}
	if m.Invalidated.Value() != st.Invalidated {
		t.Errorf("invalidated counter = %d, stats = %d", m.Invalidated.Value(), st.Invalidated)
	}
	if m.BytesInvalidated.Value() != uint64(st.BytesInvalidated) {
		t.Errorf("bytesInvalidated counter = %d, stats = %d",
			m.BytesInvalidated.Value(), st.BytesInvalidated)
	}
	if m.Evictions.Value() != st.Evictions {
		t.Errorf("invalidations leaked into evictions: counter %d, stats %d",
			m.Evictions.Value(), st.Evictions)
	}
}

// TestAddSweepFoldsTotals checks the CLI path lands in the same counters.
func TestAddSweepFoldsTotals(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewCacheMetrics(reg)
	m.AddSweep(sim.Metrics{
		Requests: 100, Hits: 60, Evictions: 10,
		BytesFetched: 4000, BytesEvicted: 900, Bypassed: 3, VictimCalls: 12,
	})
	if m.Hits.Value() != 60 || m.Misses.Value() != 40 || m.VictimCalls.Value() != 12 {
		t.Errorf("sweep fold: hits=%d misses=%d victimCalls=%d",
			m.Hits.Value(), m.Misses.Value(), m.VictimCalls.Value())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"mediacache_cache_hits_total 60",
		"mediacache_cache_misses_total 40",
		"mediacache_cache_bytes_fetched_total 4000",
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

// TestPoolMetricsGauges drives the pool observer directly and through a
// real sweep, checking the queue-depth gauge and cell accounting.
func TestPoolMetricsGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	p := NewPoolMetrics(reg)
	p.CellStarted(0, 0, 7)
	if p.QueueDepth.Value() != 7 || p.WorkersBusy.Value() != 1 {
		t.Fatalf("after start: depth=%d busy=%d", p.QueueDepth.Value(), p.WorkersBusy.Value())
	}
	p.CellFinished(0, 0, 5*time.Millisecond, false)
	p.CellStarted(0, 1, 6)
	p.CellFinished(0, 1, time.Millisecond, true)
	if p.WorkersBusy.Value() != 0 {
		t.Fatalf("busy gauge = %d after all cells finished", p.WorkersBusy.Value())
	}
	if p.Cells.Value() != 2 || p.CellsFailed.Value() != 1 {
		t.Fatalf("cells=%d failed=%d", p.Cells.Value(), p.CellsFailed.Value())
	}
	if p.CellSeconds.Count() != 2 {
		t.Fatalf("cell timing observations = %d", p.CellSeconds.Count())
	}
}

// TestPoolMetricsLiveSweep installs the observer and runs a real figure:
// every cell must be counted and the queue must drain to zero.
func TestPoolMetricsLiveSweep(t *testing.T) {
	reg := metrics.NewRegistry()
	p := NewPoolMetrics(reg)
	sim.SetPoolObserver(p)
	defer sim.SetPoolObserver(nil)
	fig, err := sim.Figure3(sim.Options{Requests: 400, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Cells.Value(), uint64(len(fig.Cells)); got != want {
		t.Errorf("cells counted = %d, figure has %d", got, want)
	}
	if p.QueueDepth.Value() != 0 {
		t.Errorf("queue depth = %d after sweep, want 0", p.QueueDepth.Value())
	}
	if p.WorkersBusy.Value() != 0 {
		t.Errorf("workers busy = %d after sweep, want 0", p.WorkersBusy.Value())
	}
}

// TestTracerLogsEvents checks slog output and the level gate.
func TestTracerLogsEvents(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := NewTracer(log)
	tr.Observe(core.Event{Type: core.EventEviction, Clip: clip(7, 1234), Now: 42})
	out := buf.String()
	for _, want := range []string{"cache event", "type=eviction", "clip=7", "vtime=42"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q: %s", want, out)
		}
	}
	// Above-debug level: no output, and the gate avoids attr work.
	buf.Reset()
	quiet := NewTracer(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})))
	quiet.Observe(core.Event{Type: core.EventHit, Clip: clip(1, 1)})
	if buf.Len() != 0 {
		t.Errorf("tracer wrote despite info level: %s", buf.String())
	}
}

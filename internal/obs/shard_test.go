package obs

import (
	"strings"
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/metrics"
	"mediacache/internal/shard"
)

func TestRegisterShardMetrics(t *testing.T) {
	repo := media.PaperRepository()
	pool, err := shard.New(shard.Config{
		Policy:   "greedydual",
		Repo:     repo,
		Capacity: repo.CacheSizeForRatio(0.125),
		Seed:     1,
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 20; id++ {
		if _, err := pool.Request(media.ClipID(id)); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.NewRegistry()
	RegisterShardMetrics(reg, pool)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mediacache_shard_requests_total{shard="0"}`,
		`mediacache_shard_requests_total{shard="1"}`,
		`mediacache_shard_hits_total{shard="1"}`,
		`mediacache_shard_used_bytes{shard="0"}`,
		`mediacache_shard_capacity_bytes{shard="1"}`,
		`mediacache_shard_resident_clips{shard="0"}`,
		"mediacache_pool_shards 2",
		"mediacache_pool_fetches_total 0",
		"mediacache_pool_coalesced_fetches_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Per-shard requests must sum to the pool's total.
	stats := pool.ShardStats()
	var sum uint64
	for _, st := range stats {
		sum += st.Stats.Requests
	}
	if sum != 20 {
		t.Fatalf("per-shard requests sum to %d, want 20", sum)
	}
}

// Package obs wires the cache engine and the sweep pool into the metrics
// registry and structured logging. core and sim stay free of metrics
// vocabulary — they emit typed events through nil-checked hooks — and this
// package is the one place those events become Prometheus samples and slog
// records, so the HTTP server and the experiments CLI report through the
// same code path.
package obs

import (
	"context"
	"log/slog"

	"mediacache/internal/core"
	"mediacache/internal/metrics"
	"mediacache/internal/sim"
)

// Engine-counter metric names, shared by the live observer (cacheserver)
// and the sweep-total fold (cmd/experiments -metrics).
const (
	metricHits          = "mediacache_cache_hits_total"
	metricMisses        = "mediacache_cache_misses_total"
	metricEvictions     = "mediacache_cache_evictions_total"
	metricBypasses      = "mediacache_cache_bypassed_total"
	metricRestores      = "mediacache_cache_restores_total"
	metricFetchFailed   = "mediacache_cache_fetch_failures_total"
	metricBytesFetched  = "mediacache_cache_bytes_fetched_total"
	metricBytesFailed   = "mediacache_cache_bytes_failed_total"
	metricBytesEvicted  = "mediacache_cache_bytes_evicted_total"
	metricVictimCalls   = "mediacache_cache_victim_calls_total"
	metricEvictionBatch = "mediacache_cache_eviction_batch_size"
	metricPartialHits   = "mediacache_cache_partial_hits_total"
	metricTrims         = "mediacache_cache_trims_total"
	metricBytesHitPart  = "mediacache_cache_partial_hit_bytes_total"
	metricInvalidated   = "mediacache_cache_invalidated_total"
	metricBytesInval    = "mediacache_cache_bytes_invalidated_total"
)

// CacheMetrics translates core engine events into registry counters and
// the eviction-batch-size histogram. It implements core.Observer; install
// with core.WithObserver(m). The engine delivers events synchronously from
// its single-threaded request path, so no locking is needed for the batch
// bookkeeping.
type CacheMetrics struct {
	Hits         *metrics.Counter
	Misses       *metrics.Counter
	Evictions    *metrics.Counter
	Bypasses     *metrics.Counter
	Restores     *metrics.Counter
	FetchFailed  *metrics.Counter
	BytesFetched *metrics.Counter
	BytesFailed  *metrics.Counter
	BytesEvicted *metrics.Counter
	VictimCalls  *metrics.Counter
	// EvictionBatch observes the number of victims evicted per cacheable
	// miss (only misses that evicted at least one clip are observed).
	EvictionBatch *metrics.Histogram
	// PartialHits, Trims and PartialHitBytes observe the segment-granular
	// events (core.WithSegments); they stay zero for whole-clip caches.
	PartialHits     *metrics.Counter
	Trims           *metrics.Counter
	PartialHitBytes *metrics.Counter
	// Invalidated and BytesInvalidated observe catalog invalidations —
	// explicit Invalidate calls and TTL expiries. Invalidations are neither
	// evictions nor requests, so they get their own families.
	Invalidated      *metrics.Counter
	BytesInvalidated *metrics.Counter

	batch uint64 // evictions since the last non-eviction event
}

// NewCacheMetrics registers the engine counters on reg and returns the
// observer. Registration is idempotent per registry.
func NewCacheMetrics(reg *metrics.Registry) *CacheMetrics {
	return &CacheMetrics{
		Hits:          reg.Counter(metricHits, "References serviced from cache."),
		Misses:        reg.Counter(metricMisses, "References not serviced from cache (cached and bypassed misses)."),
		Evictions:     reg.Counter(metricEvictions, "Clips swapped out to make room."),
		Bypasses:      reg.Counter(metricBypasses, "Misses streamed without caching (admission declined or clip too large)."),
		Restores:      reg.Counter(metricRestores, "Clips made resident by snapshot restore."),
		FetchFailed:   reg.Counter(metricFetchFailed, "Cacheable misses whose remote fetch failed (degraded service)."),
		BytesFetched:  reg.Counter(metricBytesFetched, "Network traffic: bytes fetched on misses."),
		BytesFailed:   reg.Counter(metricBytesFailed, "Bytes of clips whose remote fetch failed (delivered nothing)."),
		BytesEvicted:  reg.Counter(metricBytesEvicted, "Bytes freed by eviction."),
		VictimCalls:   reg.Counter(metricVictimCalls, "Policy.Victims invocations (batch sweeps only; the live path counts via evictions)."),
		EvictionBatch: reg.Histogram(metricEvictionBatch, "Victims evicted per cacheable miss.", metrics.SizeBuckets),
		PartialHits:   reg.Counter(metricPartialHits, "Requests serviced partly from resident segments (segmented caches only)."),
		Trims:         reg.Counter(metricTrims, "Partial evictions: tail segments trimmed without dropping the clip."),
		PartialHitBytes: reg.Counter(metricBytesHitPart,
			"Bytes served from resident segments on partially hit requests."),
		Invalidated: reg.Counter(metricInvalidated,
			"Clips dropped by catalog invalidation (explicit or TTL expiry); not evictions."),
		BytesInvalidated: reg.Counter(metricBytesInval,
			"Bytes freed by catalog invalidation."),
	}
}

// Observe implements core.Observer. The engine emits a miss's evictions
// before the concluding EventMiss, so the batch counter closes exactly when
// the miss that caused it lands. Byte counters aggregate ev.Bytes — the
// clip size on whole-clip events, the affected subrange on segment-granular
// ones — so the same observer is exact under both residency models.
func (m *CacheMetrics) Observe(ev core.Event) {
	switch ev.Type {
	case core.EventHit:
		m.Hits.Inc()
	case core.EventMiss:
		m.Misses.Inc()
		m.BytesFetched.Add(uint64(ev.Bytes))
		if m.batch > 0 {
			m.EvictionBatch.Observe(float64(m.batch))
			m.batch = 0
		}
	case core.EventEviction:
		m.Evictions.Inc()
		m.BytesEvicted.Add(uint64(ev.Bytes))
		m.batch++
	case core.EventBypass:
		m.Misses.Inc()
		m.Bypasses.Inc()
		m.BytesFetched.Add(uint64(ev.Bytes))
	case core.EventRestore:
		m.Restores.Inc()
	case core.EventFetchFail:
		m.Misses.Inc()
		m.FetchFailed.Inc()
		// No BytesFetched: a failed fetch delivered nothing, so it is not
		// network traffic (mirrors core.Stats.BytesFailed accounting).
		m.BytesFailed.Add(uint64(ev.Bytes))
	case core.EventTrim:
		m.Trims.Inc()
		m.BytesEvicted.Add(uint64(ev.Bytes))
	case core.EventPartialHit:
		m.PartialHits.Inc()
		m.PartialHitBytes.Add(uint64(ev.Bytes))
	case core.EventInvalidate:
		m.Invalidated.Inc()
		m.BytesInvalidated.Add(uint64(ev.Bytes))
	}
}

// AddSweep folds a finished sweep's engine counters (a figure's
// TotalMetrics) into the same registry counters the live observer
// increments, so `experiments -metrics` and `GET /v1/metrics` expose
// identical families.
func (m *CacheMetrics) AddSweep(t sim.Metrics) {
	m.Hits.Add(t.Hits)
	m.Misses.Add(t.Requests - t.Hits)
	m.Evictions.Add(t.Evictions)
	m.Bypasses.Add(t.Bypassed)
	m.FetchFailed.Add(t.FetchFailed)
	m.BytesFetched.Add(uint64(t.BytesFetched))
	m.BytesFailed.Add(uint64(t.BytesFailed))
	m.BytesEvicted.Add(uint64(t.BytesEvicted))
	m.VictimCalls.Add(t.VictimCalls)
	m.Invalidated.Add(t.Invalidated)
	m.BytesInvalidated.Add(uint64(t.BytesInval))
}

// Tracer logs every engine event through slog at debug level — the
// time-resolved view (cf. the non-stationary-traffic analysis in PAPERS.md)
// that end-of-run averages hide. Install alongside CacheMetrics via
// core.CombineObservers.
type Tracer struct {
	log *slog.Logger
}

// NewTracer returns a tracing observer writing to log (slog.Default when
// nil).
func NewTracer(log *slog.Logger) *Tracer {
	if log == nil {
		log = slog.Default()
	}
	return &Tracer{log: log}
}

// Observe implements core.Observer.
func (t *Tracer) Observe(ev core.Event) {
	if !t.log.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	t.log.LogAttrs(context.Background(), slog.LevelDebug, "cache event",
		slog.String("type", ev.Type.String()),
		slog.Int("clip", int(ev.Clip.ID)),
		slog.String("kind", ev.Clip.Kind.String()),
		slog.Int64("sizeBytes", int64(ev.Clip.Size)),
		slog.Int64("bytes", int64(ev.Bytes)),
		slog.Int64("vtime", int64(ev.Now)),
	)
}

package obs

import (
	"mediacache/internal/cluster"
	"mediacache/internal/metrics"
)

// Cooperative-tier metric names exposed by RegisterClusterMetrics.
const (
	metricClusterPeerHits        = "mediacache_cluster_peer_hits_total"
	metricClusterPeerMisses      = "mediacache_cluster_peer_misses_total"
	metricClusterPeerErrors      = "mediacache_cluster_peer_errors_total"
	metricClusterHedges          = "mediacache_cluster_hedged_reads_total"
	metricClusterHedgeWins       = "mediacache_cluster_hedge_wins_total"
	metricClusterDigestSkips     = "mediacache_cluster_digest_skips_total"
	metricClusterDigestRefreshes = "mediacache_cluster_digest_refreshes_total"
	metricClusterDigestErrors    = "mediacache_cluster_digest_errors_total"
	metricClusterPeerServed      = "mediacache_cluster_peer_served_total"
	metricClusterPeerServedBytes = "mediacache_cluster_peer_served_bytes_total"
)

// RegisterClusterMetrics exposes the cooperative tier's counters on reg.
// Values are read at scrape time from the cluster's atomics — scrapes
// never take the cluster's membership lock.
func RegisterClusterMetrics(reg *metrics.Registry, c *cluster.Cluster) {
	reg.CounterFunc(metricClusterPeerHits, "Local misses a ring peer serviced.",
		func() float64 { return float64(c.Counters().PeerHits) })
	reg.CounterFunc(metricClusterPeerMisses, "Local misses no peer could service.",
		func() float64 { return float64(c.Counters().PeerMisses) })
	reg.CounterFunc(metricClusterPeerErrors, "Peer lookups that failed for reasons other than a clean 404.",
		func() float64 { return float64(c.Counters().PeerErrors) })
	reg.CounterFunc(metricClusterHedges, "Peer lookups whose hedge timer fired a speculative second request.",
		func() float64 { return float64(c.Counters().Hedges) })
	reg.CounterFunc(metricClusterHedgeWins, "Hedged peer lookups the speculative request won.",
		func() float64 { return float64(c.Counters().HedgeWins) })
	reg.CounterFunc(metricClusterDigestSkips, "Peer probes vetoed locally by a cached residency digest.",
		func() float64 { return float64(c.Counters().DigestSkips) })
	reg.CounterFunc(metricClusterDigestRefreshes, "Successful peer digest refreshes.",
		func() float64 { return float64(c.Counters().DigestRefreshes) })
	reg.CounterFunc(metricClusterDigestErrors, "Peer digest refreshes that failed.",
		func() float64 { return float64(c.Counters().DigestErrors) })
	reg.CounterFunc(metricClusterPeerServed, "Peer reads this node answered from its resident set.",
		func() float64 { return float64(c.Counters().PeerServed) })
	reg.CounterFunc(metricClusterPeerServedBytes, "Bytes this node streamed to sibling nodes.",
		func() float64 { return float64(c.Counters().PeerServedBytes) })
}

package obs

import (
	"time"

	"mediacache/internal/cacheclient"
	"mediacache/internal/metrics"
)

// Client resilience metric names.
const (
	metricClientRetries      = "mediacache_client_retries_total"
	metricClientBreakerOpens = "mediacache_client_breaker_opens_total"
	metricClientBreakerState = "mediacache_client_breaker_state"
)

// ClientMetrics bridges cacheclient resilience events into the metrics
// registry. It implements cacheclient.Observer; install via
// cacheclient.Config.Observer. Registering it on a cacheserver's registry
// makes a co-located client's retry and breaker activity visible on the
// same /v1/metrics page as the engine counters.
type ClientMetrics struct {
	Retries      *metrics.Counter
	BreakerOpens *metrics.Counter
	// BreakerState holds the current state as its enum value
	// (0 closed, 1 open, 2 half-open).
	BreakerState *metrics.Gauge
}

// NewClientMetrics registers the client resilience instruments on reg.
func NewClientMetrics(reg *metrics.Registry) *ClientMetrics {
	return &ClientMetrics{
		Retries:      reg.Counter(metricClientRetries, "Retry sleeps taken by the cache client."),
		BreakerOpens: reg.Counter(metricClientBreakerOpens, "Times the client circuit breaker tripped open."),
		BreakerState: reg.Gauge(metricClientBreakerState, "Client circuit-breaker state (0 closed, 1 open, 2 half-open)."),
	}
}

// Retry implements cacheclient.Observer.
func (m *ClientMetrics) Retry(int, time.Duration, error) { m.Retries.Inc() }

// BreakerChange implements cacheclient.Observer.
func (m *ClientMetrics) BreakerChange(_, to cacheclient.BreakerState) {
	if to == cacheclient.BreakerOpen {
		m.BreakerOpens.Inc()
	}
	m.BreakerState.Set(int64(to))
}

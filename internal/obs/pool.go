package obs

import (
	"time"

	"mediacache/internal/metrics"
	"mediacache/internal/sim"
)

// PoolMetrics translates sweep-pool events into registry gauges: how deep
// the unclaimed-cell queue is, how many workers are busy, how many cells
// have completed and how long they ran. It implements sim.PoolObserver;
// install with sim.SetPoolObserver(p). Callbacks arrive concurrently from
// every worker, and the underlying instruments are atomics, so no locking.
type PoolMetrics struct {
	QueueDepth  *metrics.Gauge
	WorkersBusy *metrics.Gauge
	Cells       *metrics.Counter
	CellsFailed *metrics.Counter
	CellSeconds *metrics.Histogram
}

// NewPoolMetrics registers the sweep-pool instruments on reg and returns
// the observer.
func NewPoolMetrics(reg *metrics.Registry) *PoolMetrics {
	return &PoolMetrics{
		QueueDepth:  reg.Gauge("mediacache_sweep_queue_depth", "Sweep cells awaiting a worker."),
		WorkersBusy: reg.Gauge("mediacache_sweep_workers_busy", "Sweep-pool workers currently running a cell."),
		Cells:       reg.Counter("mediacache_sweep_cells_total", "Sweep cells completed."),
		CellsFailed: reg.Counter("mediacache_sweep_cells_failed_total", "Sweep cells that returned an error."),
		CellSeconds: reg.Histogram("mediacache_sweep_cell_seconds", "Wall-clock time per sweep cell.", metrics.DefBuckets),
	}
}

// CellStarted implements sim.PoolObserver.
func (p *PoolMetrics) CellStarted(worker, cell, queued int) {
	p.QueueDepth.Set(int64(queued))
	p.WorkersBusy.Inc()
}

// CellFinished implements sim.PoolObserver.
func (p *PoolMetrics) CellFinished(worker, cell int, elapsed time.Duration, failed bool) {
	p.WorkersBusy.Dec()
	p.Cells.Inc()
	if failed {
		p.CellsFailed.Inc()
	}
	p.CellSeconds.Observe(elapsed.Seconds())
}

var _ sim.PoolObserver = (*PoolMetrics)(nil)

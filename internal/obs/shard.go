package obs

import (
	"strconv"

	"mediacache/internal/metrics"
	"mediacache/internal/shard"
)

// Per-shard and pool-level metric names exposed by RegisterShardMetrics.
const (
	metricShardRequests = "mediacache_shard_requests_total"
	metricShardHits     = "mediacache_shard_hits_total"
	metricShardUsed     = "mediacache_shard_used_bytes"
	metricShardCapacity = "mediacache_shard_capacity_bytes"
	metricShardResident = "mediacache_shard_resident_clips"
	metricPoolShards    = "mediacache_pool_shards"
	metricPoolFetches   = "mediacache_pool_fetches_total"
	metricPoolCoalesced = "mediacache_pool_coalesced_fetches_total"
	metricPoolFastHits  = "mediacache_pool_fastpath_hits_total"
	metricPoolFlushes   = "mediacache_pool_touch_flushes_total"
	metricPoolBatches   = "mediacache_pool_batches_total"
)

// RegisterShardMetrics exposes a shard pool's per-shard occupancy and hit
// counters (labelled shard="i") plus the pool-level fetch-coalescing
// counters on reg. Values are read at scrape time; each per-shard read
// locks only its own shard, so scrapes never serialize the whole pool.
func RegisterShardMetrics(reg *metrics.Registry, pool *shard.Pool) {
	for i := 0; i < pool.NumShards(); i++ {
		i := i
		label := metrics.Label{Name: "shard", Value: strconv.Itoa(i)}
		reg.CounterFunc(metricShardRequests, "References routed to this shard.",
			func() float64 { return float64(pool.ShardStat(i).Stats.Requests) }, label)
		reg.CounterFunc(metricShardHits, "References this shard serviced from cache.",
			func() float64 { return float64(pool.ShardStat(i).Stats.Hits) }, label)
		reg.GaugeFunc(metricShardUsed, "Bytes occupied by this shard's resident clips.",
			func() float64 { return float64(pool.ShardStat(i).UsedBytes) }, label)
		reg.GaugeFunc(metricShardCapacity, "This shard's slice of the cache capacity.",
			func() float64 { return float64(pool.ShardStat(i).Capacity) }, label)
		reg.GaugeFunc(metricShardResident, "Clips resident on this shard.",
			func() float64 { return float64(pool.ShardStat(i).NumResident) }, label)
	}
	reg.GaugeFunc(metricPoolShards, "Number of cache shards in the pool.",
		func() float64 { return float64(pool.NumShards()) })
	reg.CounterFunc(metricPoolFetches, "Logical fetches executed (coalesced groups count once).",
		func() float64 { return float64(pool.Fetches()) })
	reg.CounterFunc(metricPoolCoalesced, "Requests that joined an already in-flight fetch.",
		func() float64 { return float64(pool.Coalesced()) })
	reg.CounterFunc(metricPoolFastHits, "Hits served off the published residency view without a shard lock.",
		func() float64 { return float64(pool.FastPathHits()) })
	reg.CounterFunc(metricPoolFlushes, "Batched drains replaying fast-path policy touches into the engines.",
		func() float64 { return float64(pool.TouchFlushes()) })
	reg.CounterFunc(metricPoolBatches, "RequestBatch calls served.",
		func() float64 { return float64(pool.Batches()) })
}

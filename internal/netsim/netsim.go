// Package netsim models the wireless-streaming side of the paper's FMC
// scenario (Section 1): startup latency, bandwidth reservation with
// admission control, and the throughput of a geographical region.
//
// The paper evaluates caching techniques purely by hit rate, but motivates
// them through these service metrics: a cache hit eliminates network delays;
// a miss requires reserving bandwidth at a base station, and when the
// allocated bandwidth is below the clip's display rate the device must
// prefetch data to avoid hiccups. The prefetch formula follows the
// pipelining model of Ghandeharizadeh, Dashti and Shahabi [10] (the exact
// expression is garbled in the paper's OCR; see DESIGN.md §5 for the
// substitution): with network bandwidth B_net below display bandwidth
// B_disp, the device must buffer
//
//	P = size × (1 − B_net/B_disp)
//
// bytes before starting the display, giving a startup latency of P/B_net
// plus the admission-control overhead.
package netsim

import (
	"errors"
	"fmt"

	"mediacache/internal/media"
)

// Seconds is a duration in (real, not virtual) seconds.
type Seconds float64

// StartupLatency returns the startup latency of displaying clip when
// streaming at the allocated network bandwidth, including a fixed admission
// overhead. A cache hit corresponds to alloc = 0 and is handled by the
// caller (latency 0, no reservation).
func StartupLatency(clip media.Clip, alloc media.BitsPerSecond, admission Seconds) (Seconds, error) {
	if alloc <= 0 {
		return 0, fmt.Errorf("netsim: allocated bandwidth must be positive, got %v", alloc)
	}
	if clip.DisplayRate <= 0 {
		return 0, fmt.Errorf("netsim: clip %d has no display rate", clip.ID)
	}
	if alloc >= clip.DisplayRate {
		// The network outpaces the display: start as soon as admitted.
		return admission, nil
	}
	// Prefetch enough to mask the bandwidth deficit for the whole display.
	frac := 1 - float64(alloc)/float64(clip.DisplayRate)
	prefetchBits := float64(clip.Size) * 8 * frac
	return admission + Seconds(prefetchBits/float64(alloc)), nil
}

// PrefetchBytes returns the number of bytes that must be buffered before
// display can start hiccup-free at the given allocation.
func PrefetchBytes(clip media.Clip, alloc media.BitsPerSecond) media.Bytes {
	if alloc <= 0 || clip.DisplayRate <= 0 || alloc >= clip.DisplayRate {
		return 0
	}
	frac := 1 - float64(alloc)/float64(clip.DisplayRate)
	return media.Bytes(float64(clip.Size) * frac)
}

// Link is a shared wireless link (a base station's aggregate bandwidth)
// with reservation-based admission control.
type Link struct {
	capacity media.BitsPerSecond
	inUse    media.BitsPerSecond
	admitted uint64
	rejected uint64
}

// NewLink returns a link with the given aggregate capacity.
func NewLink(capacity media.BitsPerSecond) (*Link, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("netsim: link capacity must be positive, got %v", capacity)
	}
	return &Link{capacity: capacity}, nil
}

// Capacity returns the link's aggregate bandwidth.
func (l *Link) Capacity() media.BitsPerSecond { return l.capacity }

// Available returns the unreserved bandwidth.
func (l *Link) Available() media.BitsPerSecond { return l.capacity - l.inUse }

// Admitted and Rejected return the admission-control counters.
func (l *Link) Admitted() uint64 { return l.admitted }

// Rejected returns how many reservations were refused.
func (l *Link) Rejected() uint64 { return l.rejected }

// ErrBandwidthExhausted reports a failed reservation.
var ErrBandwidthExhausted = errors.New("netsim: link bandwidth exhausted")

// Reserve admits a stream of the given bandwidth or reports
// ErrBandwidthExhausted. A successful reservation must be paired with
// Release.
func (l *Link) Reserve(bw media.BitsPerSecond) error {
	if bw <= 0 {
		return fmt.Errorf("netsim: reservation must be positive, got %v", bw)
	}
	if l.inUse+bw > l.capacity {
		l.rejected++
		return fmt.Errorf("%w: want %v, available %v", ErrBandwidthExhausted, bw, l.Available())
	}
	l.inUse += bw
	l.admitted++
	return nil
}

// Release returns previously reserved bandwidth to the link.
func (l *Link) Release(bw media.BitsPerSecond) {
	l.inUse -= bw
	if l.inUse < 0 {
		l.inUse = 0
	}
}

package netsim

import (
	"errors"
	"testing"
	"time"

	"mediacache/internal/fault"
	"mediacache/internal/media"
)

func lossyFixture(t *testing.T, p fault.Profile, seed uint64) (*LossyLink, media.Clip) {
	t.Helper()
	link, err := NewLink(10e6)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := NewLossyLink(link, fault.New(p, seed))
	if err != nil {
		t.Fatal(err)
	}
	clip := media.Clip{ID: 1, Size: 4 << 20, DisplayRate: 4e6, Kind: media.Video}
	return ll, clip
}

func TestLossyLinkNilInjector(t *testing.T) {
	link, err := NewLink(10e6)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := NewLossyLink(link, nil)
	if err != nil {
		t.Fatal(err)
	}
	clip := media.Clip{ID: 1, Size: 4 << 20, DisplayRate: 4e6, Kind: media.Video}
	for i := 0; i < 100; i++ {
		tr, err := ll.Fetch(clip, 2e6, 0.1)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if tr.Delivered != clip.Size {
			t.Fatalf("fetch %d delivered %d bytes, want %d", i, tr.Delivered, clip.Size)
		}
	}
	if got := ll.FailedFetches(); got != 0 {
		t.Fatalf("nil injector produced %d failures", got)
	}
	if link.Available() != link.Capacity() {
		t.Fatalf("bandwidth leaked: %v available", link.Available())
	}
}

func TestLossyLinkDeterministic(t *testing.T) {
	p := fault.Profile{ErrorRate: 0.1, TimeoutRate: 0.05, PartialRate: 0.05,
		Latency: 20 * time.Millisecond, Jitter: 5 * time.Millisecond}
	run := func(seed uint64) []Transfer {
		ll, clip := lossyFixture(t, p, seed)
		out := make([]Transfer, 0, 500)
		for i := 0; i < 500; i++ {
			tr, _ := ll.Fetch(clip, 2e6, 0.1)
			out = append(out, tr)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d differs under same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical transfer traces")
	}
}

func TestLossyLinkFaultOutcomes(t *testing.T) {
	p := fault.Profile{ErrorRate: 0.2, TimeoutRate: 0.2, PartialRate: 0.2,
		Hold: 500 * time.Millisecond}
	ll, clip := lossyFixture(t, p, 7)
	const n = 2000
	var ok, errs, timeouts, partials int
	for i := 0; i < n; i++ {
		tr, err := ll.Fetch(clip, 2e6, 0.1)
		switch {
		case err == nil:
			ok++
			if tr.Delivered != clip.Size {
				t.Fatalf("success delivered %d bytes, want %d", tr.Delivered, clip.Size)
			}
		case errors.Is(err, ErrFetchFailed):
			errs++
			if tr.Delivered != 0 {
				t.Fatalf("error fault delivered %d bytes", tr.Delivered)
			}
		case errors.Is(err, ErrFetchTimeout):
			timeouts++
			if tr.Latency < Seconds(p.Hold.Seconds()) {
				t.Fatalf("timeout latency %v below hold %v", tr.Latency, p.Hold)
			}
		case errors.Is(err, ErrFetchPartial):
			partials++
			if tr.Delivered >= clip.Size {
				t.Fatalf("partial delivered %d of %d bytes", tr.Delivered, clip.Size)
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok == 0 || errs == 0 || timeouts == 0 || partials == 0 {
		t.Fatalf("outcome mix not exercised: ok=%d err=%d timeout=%d partial=%d",
			ok, errs, timeouts, partials)
	}
	if got := ll.Fetches(); got != n {
		t.Fatalf("Fetches() = %d, want %d", got, n)
	}
	if got := ll.FailedFetches(); got != uint64(errs+timeouts+partials) {
		t.Fatalf("FailedFetches() = %d, want %d", got, errs+timeouts+partials)
	}
	if got := ll.Failures(fault.Error); got != uint64(errs) {
		t.Fatalf("Failures(Error) = %d, want %d", got, errs)
	}
	if ll.Link().Available() != ll.Link().Capacity() {
		t.Fatalf("bandwidth leaked after failures: %v available", ll.Link().Available())
	}
}

package netsim

import (
	"errors"
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/workload"
)

// Device is one mobile device in a region: a cache plus a request stream.
type Device struct {
	ID    int
	Cache *core.Cache
	Gen   *workload.Generator
}

// RegionStats accumulates the Section 1 "throughput of a geographical
// region" metric: how many concurrently issued requests can be serviced,
// either from device caches or within the base station's bandwidth budget.
type RegionStats struct {
	Rounds        int
	Requests      uint64
	CacheHits     uint64      // serviced from the local cache, no network
	Streamed      uint64      // admitted and streamed from the base station
	Rejected      uint64      // refused: base-station bandwidth exhausted
	BytesStreamed media.Bytes // network utilization of the region
}

// Throughput returns the fraction of requests serviced (hit or streamed).
func (s RegionStats) Throughput() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits+s.Streamed) / float64(s.Requests)
}

// Region is a set of devices sharing one base-station link.
type Region struct {
	Link    *Link
	Devices []*Device
	stats   RegionStats
}

// NewRegion returns a region over the given link and devices.
func NewRegion(link *Link, devices []*Device) (*Region, error) {
	if link == nil {
		return nil, errors.New("netsim: link must not be nil")
	}
	if len(devices) == 0 {
		return nil, errors.New("netsim: region needs at least one device")
	}
	for i, d := range devices {
		if d == nil || d.Cache == nil || d.Gen == nil {
			return nil, fmt.Errorf("netsim: device %d incomplete", i)
		}
	}
	return &Region{Link: link, Devices: devices}, nil
}

// Stats returns the accumulated region statistics.
func (r *Region) Stats() RegionStats { return r.stats }

// RunRound simulates one display round: every device references its next
// clip simultaneously. Cache hits are serviced locally; misses compete for
// base-station bandwidth at their clip's display rate and are rejected once
// the bandwidth is exhausted (rejected requests are still recorded as misses
// by the device cache, which materializes nothing). At the end of the round
// all reservations are released — displays are assumed to complete before
// the next round, mirroring the paper's back-to-back request model.
func (r *Region) RunRound() error {
	r.stats.Rounds++
	var reserved []media.BitsPerSecond
	defer func() {
		for _, bw := range reserved {
			r.Link.Release(bw)
		}
	}()
	for _, d := range r.Devices {
		id := d.Gen.Next()
		clip, ok := d.Cache.Repository().Lookup(id)
		if !ok {
			return fmt.Errorf("netsim: device %d drew unknown clip %d", d.ID, id)
		}
		r.stats.Requests++
		if d.Cache.Resident(id) {
			// Local service: no bandwidth needed. Drive the cache so policy
			// state and hit statistics advance.
			if _, err := d.Cache.Request(id); err != nil {
				return err
			}
			r.stats.CacheHits++
			continue
		}
		// Miss: admission control at the display bandwidth.
		if err := r.Link.Reserve(clip.DisplayRate); err != nil {
			if errors.Is(err, ErrBandwidthExhausted) {
				r.stats.Rejected++
				continue // request dropped; cache unchanged
			}
			return err
		}
		reserved = append(reserved, clip.DisplayRate)
		if _, err := d.Cache.Request(id); err != nil {
			return err
		}
		r.stats.Streamed++
		r.stats.BytesStreamed += clip.Size
	}
	return nil
}

// Run simulates n rounds.
func (r *Region) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := r.RunRound(); err != nil {
			return err
		}
	}
	return nil
}

package netsim_test

import (
	"errors"

	"math"
	"mediacache/internal/netsim"
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/sim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func videoClip() media.Clip {
	return media.Clip{ID: 1, Kind: media.Video, Size: media.GB, DisplayRate: 4 * media.Mbps}
}

func TestStartupLatencyFastNetwork(t *testing.T) {
	clip := videoClip()
	// Network faster than display: latency equals the admission overhead.
	got, err := netsim.StartupLatency(clip, 10*media.Mbps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("latency = %v, want 0.5", got)
	}
}

func TestStartupLatencySlowNetwork(t *testing.T) {
	clip := videoClip()
	// Half the display rate: prefetch half the clip.
	alloc := 2 * media.Mbps
	got, err := netsim.StartupLatency(clip, alloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBits := float64(clip.Size) * 8 * 0.5
	want := netsim.Seconds(wantBits / float64(alloc))
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestStartupLatencyMonotoneInBandwidth(t *testing.T) {
	clip := videoClip()
	var last netsim.Seconds = math.MaxFloat64
	for _, bw := range []media.BitsPerSecond{media.Mbps, 2 * media.Mbps, 3 * media.Mbps, 4 * media.Mbps, 8 * media.Mbps} {
		lat, err := netsim.StartupLatency(clip, bw, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if lat > last {
			t.Fatalf("latency increased with more bandwidth at %v", bw)
		}
		last = lat
	}
}

func TestStartupLatencyErrors(t *testing.T) {
	clip := videoClip()
	if _, err := netsim.StartupLatency(clip, 0, 0); err == nil {
		t.Error("zero allocation should fail")
	}
	if _, err := netsim.StartupLatency(media.Clip{ID: 2, Size: media.MB}, media.Mbps, 0); err == nil {
		t.Error("zero display rate should fail")
	}
}

func TestPrefetchBytes(t *testing.T) {
	clip := videoClip()
	if netsim.PrefetchBytes(clip, 8*media.Mbps) != 0 {
		t.Fatal("fast network needs no prefetch")
	}
	got := netsim.PrefetchBytes(clip, 2*media.Mbps)
	want := clip.Size / 2
	if diff := got - want; diff < -1 || diff > 1 {
		t.Fatalf("prefetch = %v, want ~%v", got, want)
	}
	if netsim.PrefetchBytes(clip, 0) != 0 {
		t.Fatal("invalid allocation should prefetch 0")
	}
}

func TestLinkReserveRelease(t *testing.T) {
	l, err := netsim.NewLink(10 * media.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netsim.NewLink(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if err := l.Reserve(4 * media.Mbps); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(4 * media.Mbps); err != nil {
		t.Fatal(err)
	}
	if l.Available() != 2*media.Mbps {
		t.Fatalf("available = %v", l.Available())
	}
	if err := l.Reserve(4 * media.Mbps); !errors.Is(err, netsim.ErrBandwidthExhausted) {
		t.Fatalf("want netsim.ErrBandwidthExhausted, got %v", err)
	}
	if l.Admitted() != 2 || l.Rejected() != 1 {
		t.Fatalf("admitted=%d rejected=%d", l.Admitted(), l.Rejected())
	}
	l.Release(4 * media.Mbps)
	if err := l.Reserve(4 * media.Mbps); err != nil {
		t.Fatal("release should free capacity")
	}
	if err := l.Reserve(0); err == nil {
		t.Error("zero reservation should fail")
	}
	l.Release(100 * media.Mbps) // over-release clamps, no panic
	if l.Available() != l.Capacity() {
		t.Fatal("over-release should clamp to full capacity")
	}
}

func buildRegion(t *testing.T, nDevices int, linkBW media.BitsPerSecond) *netsim.Region {
	t.Helper()
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	link, err := netsim.NewLink(linkBW)
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*netsim.Device, nDevices)
	for i := range devices {
		cache, err := sim.NewCache("dynsimple:2", repo, repo.CacheSizeForRatio(0.05), nil, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = &netsim.Device{
			ID:    i,
			Cache: cache,
			Gen:   workload.MustNewGenerator(dist, uint64(100+i)),
		}
	}
	region, err := netsim.NewRegion(link, devices)
	if err != nil {
		t.Fatal(err)
	}
	return region
}

func TestNewRegionValidation(t *testing.T) {
	if _, err := netsim.NewRegion(nil, []*netsim.Device{{}}); err == nil {
		t.Error("nil link should fail")
	}
	link, _ := netsim.NewLink(media.Mbps)
	if _, err := netsim.NewRegion(link, nil); err == nil {
		t.Error("no devices should fail")
	}
	if _, err := netsim.NewRegion(link, []*netsim.Device{nil}); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := netsim.NewRegion(link, []*netsim.Device{{}}); err == nil {
		t.Error("incomplete device should fail")
	}
}

func TestRegionThroughputImprovesWithWarmCaches(t *testing.T) {
	// Cold caches force every device onto the link; with only enough
	// bandwidth for a few streams, many requests are rejected. As caches
	// warm, hit rates rise and throughput improves — the paper's motivating
	// story for the region-throughput metric.
	region := buildRegion(t, 8, 9*media.Mbps) // at most 2 video streams
	if err := region.Run(50); err != nil {
		t.Fatal(err)
	}
	first := region.Stats()
	if first.Rejected == 0 {
		t.Fatal("expected rejections with cold caches and a thin link")
	}
	if err := region.Run(500); err != nil {
		t.Fatal(err)
	}
	later := region.Stats()
	earlyTput := first.Throughput()
	lateRequests := later.Requests - first.Requests
	lateServed := (later.CacheHits + later.Streamed) - (first.CacheHits + first.Streamed)
	lateTput := float64(lateServed) / float64(lateRequests)
	if lateTput <= earlyTput {
		t.Fatalf("throughput did not improve as caches warmed: %.3f -> %.3f", earlyTput, lateTput)
	}
}

func TestRegionAllHitsFullThroughput(t *testing.T) {
	// With a huge link every request is serviced: throughput 1.
	region := buildRegion(t, 3, 10000*media.Mbps)
	if err := region.Run(100); err != nil {
		t.Fatal(err)
	}
	s := region.Stats()
	if s.Throughput() != 1 {
		t.Fatalf("throughput = %v, want 1 with unconstrained link", s.Throughput())
	}
	if s.Requests != 300 || s.Rounds != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRegionBandwidthReleasedBetweenRounds(t *testing.T) {
	region := buildRegion(t, 2, 9*media.Mbps)
	if err := region.Run(20); err != nil {
		t.Fatal(err)
	}
	if region.Link.Available() != region.Link.Capacity() {
		t.Fatal("reservations must be released after each round")
	}
}

func TestRegionBytesStreamedAccounted(t *testing.T) {
	region := buildRegion(t, 2, 10000*media.Mbps)
	if err := region.Run(10); err != nil {
		t.Fatal(err)
	}
	if region.Stats().BytesStreamed == 0 {
		t.Fatal("cold-start misses must stream bytes")
	}
}

package netsim

import (
	"errors"
	"fmt"

	"mediacache/internal/fault"
	"mediacache/internal/media"
)

// Fetch errors reported by LossyLink.
var (
	// ErrFetchFailed reports an injected outright transfer failure.
	ErrFetchFailed = errors.New("netsim: fetch failed (injected link error)")
	// ErrFetchTimeout reports an injected stall that exhausted the hold.
	ErrFetchTimeout = errors.New("netsim: fetch timed out (injected stall)")
	// ErrFetchPartial reports a truncated delivery.
	ErrFetchPartial = errors.New("netsim: fetch delivered partial payload (injected truncation)")
)

// Transfer is the outcome of one clip fetch over a lossy link.
type Transfer struct {
	// Delivered is how many bytes arrived (the full clip on success, a
	// truncated prefix on ErrFetchPartial, zero otherwise).
	Delivered media.Bytes
	// Latency is the startup latency the device observed: admission plus
	// prefetch time on success, plus any injected latency; for a timeout it
	// includes the full hold the device waited before giving up.
	Latency Seconds
	// Fault is the injector decision that shaped this transfer.
	Fault fault.Fault
}

// LossyLink couples a Link's bandwidth reservation with a deterministic
// fault injector: the wireless channel of the paper's Section 1 scenario,
// but honest about loss. Every Fetch reserves bandwidth, consults the
// injector, and releases the reservation — so even failed transfers occupy
// the base station for their duration, which is exactly why error rates eat
// into effective region throughput.
type LossyLink struct {
	link *Link
	inj  *fault.Injector

	fetches  uint64
	failures [fault.NumKinds]uint64
}

// NewLossyLink wraps link with injector in. A nil injector behaves like the
// ideal channel (every fetch succeeds, zero injected latency).
func NewLossyLink(link *Link, in *fault.Injector) (*LossyLink, error) {
	if link == nil {
		return nil, fmt.Errorf("netsim: lossy link needs an underlying link")
	}
	return &LossyLink{link: link, inj: in}, nil
}

// Link returns the underlying reservation link.
func (l *LossyLink) Link() *Link { return l.link }

// Fetches returns how many transfers were attempted.
func (l *LossyLink) Fetches() uint64 { return l.fetches }

// Failures returns how many transfers failed with the given fault kind.
func (l *LossyLink) Failures(k fault.Kind) uint64 {
	if int(k) >= len(l.failures) {
		return 0
	}
	return l.failures[k]
}

// FailedFetches returns the total number of failed transfers.
func (l *LossyLink) FailedFetches() uint64 {
	var total uint64
	for k := fault.Error; k < fault.NumKinds; k++ {
		total += l.failures[k]
	}
	return total
}

// Fetch models transferring clip at the allocated bandwidth with the given
// admission-control overhead. It reserves alloc on the link for the duration
// of the (virtual) transfer and always releases it. The returned Transfer
// carries the delivered bytes and observed latency; err is non-nil when the
// link rejected the reservation or the injector failed the transfer.
func (l *LossyLink) Fetch(clip media.Clip, alloc media.BitsPerSecond, admission Seconds) (Transfer, error) {
	if err := l.link.Reserve(alloc); err != nil {
		return Transfer{}, err
	}
	defer l.link.Release(alloc)
	l.fetches++

	var f fault.Fault
	if l.inj != nil {
		f = l.inj.Next()
	}
	t := Transfer{Fault: f, Latency: Seconds(f.Latency.Seconds())}
	switch f.Kind {
	case fault.None:
		lat, err := StartupLatency(clip, alloc, admission)
		if err != nil {
			return Transfer{}, err
		}
		t.Latency += lat
		t.Delivered = clip.Size
		return t, nil
	case fault.Error:
		l.failures[fault.Error]++
		return t, ErrFetchFailed
	case fault.Timeout:
		l.failures[fault.Timeout]++
		var hold fault.Profile
		if l.inj != nil {
			hold = l.inj.Profile()
		}
		t.Latency += Seconds(hold.HoldOrDefault().Seconds())
		return t, ErrFetchTimeout
	default: // fault.Partial
		l.failures[fault.Partial]++
		t.Delivered = media.Bytes(float64(clip.Size) * f.Fraction)
		return t, ErrFetchPartial
	}
}

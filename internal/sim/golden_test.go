package sim

// golden_test pins the determinism promise of footnote 5: the exact numbers
// of a reference experiment must never change silently — not across runs,
// not across refactors, not across Go releases (the PRNG is local). If a
// deliberate behavioral change moves these values, regenerate the constants
// with the commented command and record the change in EXPERIMENTS.md.

import (
	"math"
	"testing"
)

// goldenFigure3 holds the exact hit rates of Figure 3 at seed 42 with 2,000
// requests. Regenerate with:
//
//	go run ./cmd/experiments -csv -requests 2000 3
var goldenFigure3 = map[string][]float64{
	"LRU-2":      {0.1255, 0.3615, 0.4795, 0.562, 0.676, 0.7475},
	"GreedyDual": {0.064, 0.3005, 0.433, 0.5275, 0.6665, 0.7505},
}

func TestFigure3Golden(t *testing.T) {
	fig, err := Figure3(Options{Seed: DefaultSeed, Requests: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		want, ok := goldenFigure3[s.Label]
		if !ok {
			t.Fatalf("unexpected series %q", s.Label)
		}
		if len(s.Y) != len(want) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Y), len(want))
		}
		for i := range want {
			if math.Abs(s.Y[i]-want[i]) > 1e-12 {
				t.Errorf("%s[%d] = %v, want %v (determinism broken — footnote 5)",
					s.Label, i, s.Y[i], want[i])
			}
		}
	}
}

package sim

// pool.go is the concurrent sweep engine. Every experiment decomposes
// into independent cells — one (policy, cache, generator) triple per
// cell, each built from scratch inside its own goroutine — that a
// bounded worker pool executes across GOMAXPROCS (or -parallel N)
// workers. Cells never share mutable state: repositories, Zipf
// distributions and frequency vectors are read-only after construction,
// and everything stateful (cache, policy, generator) is cell-local.
// Results are written back by cell index, so figures reassemble in
// canonical order and the output is byte-identical to a sequential run
// at any worker count (the determinism promise of footnote 5 extends to
// the parallel path; parallel_test.go pins it).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mediacache/internal/randutil"
)

// PoolObserver receives sweep-pool progress events: which worker claimed
// which cell, how deep the unclaimed-cell queue was at that instant, and
// how long each cell ran. Callbacks arrive concurrently from every worker
// goroutine, so implementations must be safe for concurrent use (the
// metrics observer in internal/obs is atomics-only).
type PoolObserver interface {
	// CellStarted reports worker claiming cell; queued is the number of
	// cells not yet claimed after this one.
	CellStarted(worker, cell, queued int)
	// CellFinished reports cell completing on worker after elapsed wall
	// time; failed reports whether the cell returned an error.
	CellFinished(worker, cell int, elapsed time.Duration, failed bool)
}

// poolObs holds the installed observer. An atomic pointer keeps the
// disabled path to one load per mapCells call — BenchmarkSweepParallel
// pins that the nil path stays within noise.
var poolObs atomic.Pointer[PoolObserver]

// SetPoolObserver installs o as the process-wide sweep-pool observer
// (nil uninstalls). Sweeps already in flight keep the observer they
// loaded at entry; install before launching runs.
func SetPoolObserver(o PoolObserver) {
	if o == nil {
		poolObs.Store(nil)
		return
	}
	poolObs.Store(&o)
}

// loadPoolObserver returns the installed observer or nil.
func loadPoolObserver() PoolObserver {
	if p := poolObs.Load(); p != nil {
		return *p
	}
	return nil
}

// poolWorkers resolves a requested parallelism: n <= 0 selects
// runtime.GOMAXPROCS(0), the "as fast as the hardware allows" default;
// n == 1 is the sequential fallback.
func poolWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// mapCells runs fn for every cell index in [0, n) using up to parallel
// workers (see poolWorkers) and returns the per-cell results in index
// order. With one worker the cells run sequentially in index order;
// with more, workers claim cells from an atomic counter, so cells are
// started in index order but may finish in any order — the indexed
// result slice restores canonical order.
//
// On failure mapCells returns the error of the lowest-index failing
// cell, matching what a sequential run would report; remaining
// unstarted cells are skipped.
func mapCells[T any](parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := poolWorkers(parallel)
	if workers > n {
		workers = n
	}
	obs := loadPoolObserver()
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := observeCell(obs, 0, i, n-i-1, fn)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := observeCell(obs, worker, i, n-i-1, fn)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	// Cells are claimed in index order, so every cell below the first
	// recorded failure ran to completion; the lowest-index error is the
	// one the sequential path would have returned.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// observeCell runs fn(cell), bracketing it with observer callbacks when a
// pool observer is installed. The nil path is a plain call: no timestamps,
// no allocations.
func observeCell[T any](obs PoolObserver, worker, cell, queued int, fn func(i int) (T, error)) (T, error) {
	if obs == nil {
		return fn(cell)
	}
	obs.CellStarted(worker, cell, queued)
	start := time.Now()
	v, err := fn(cell)
	obs.CellFinished(worker, cell, time.Since(start), err != nil)
	return v, err
}

// forEachCell is mapCells for side-effect-only cells.
func forEachCell(parallel, n int, fn func(i int) error) error {
	_, err := mapCells(parallel, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// CellSeed derives a deterministic per-cell seed from a master seed and
// the cell's coordinate labels, using the splittable PRNG of
// internal/randutil. Distinct label paths give decorrelated streams, so
// experiments that want every cell to see an independent workload (as
// opposed to the paper's footnote-5 protocol, where every technique
// replays the identical request sequence) can seed each cell without any
// cross-cell ordering dependence:
//
//	seed := sim.CellSeed(opt.Seed, "figure5b", spec, fmt.Sprint(ratio))
//
// The derivation is pure: it depends only on the master seed and labels,
// never on which worker runs the cell or when.
func CellSeed(master uint64, labels ...string) uint64 {
	src := randutil.NewSource(master)
	for _, label := range labels {
		src = src.Split(label)
	}
	return src.Uint64()
}

package sim

// pool.go is the concurrent sweep engine. Every experiment decomposes
// into independent cells — one (policy, cache, generator) triple per
// cell, each built from scratch inside its own goroutine — that a
// bounded worker pool executes across GOMAXPROCS (or -parallel N)
// workers. Cells never share mutable state: repositories, Zipf
// distributions and frequency vectors are read-only after construction,
// and everything stateful (cache, policy, generator) is cell-local.
// Results are written back by cell index, so figures reassemble in
// canonical order and the output is byte-identical to a sequential run
// at any worker count (the determinism promise of footnote 5 extends to
// the parallel path; parallel_test.go pins it).

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mediacache/internal/randutil"
)

// poolWorkers resolves a requested parallelism: n <= 0 selects
// runtime.GOMAXPROCS(0), the "as fast as the hardware allows" default;
// n == 1 is the sequential fallback.
func poolWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// mapCells runs fn for every cell index in [0, n) using up to parallel
// workers (see poolWorkers) and returns the per-cell results in index
// order. With one worker the cells run sequentially in index order;
// with more, workers claim cells from an atomic counter, so cells are
// started in index order but may finish in any order — the indexed
// result slice restores canonical order.
//
// On failure mapCells returns the error of the lowest-index failing
// cell, matching what a sequential run would report; remaining
// unstarted cells are skipped.
func mapCells[T any](parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := poolWorkers(parallel)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	// Cells are claimed in index order, so every cell below the first
	// recorded failure ran to completion; the lowest-index error is the
	// one the sequential path would have returned.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// forEachCell is mapCells for side-effect-only cells.
func forEachCell(parallel, n int, fn func(i int) error) error {
	_, err := mapCells(parallel, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// CellSeed derives a deterministic per-cell seed from a master seed and
// the cell's coordinate labels, using the splittable PRNG of
// internal/randutil. Distinct label paths give decorrelated streams, so
// experiments that want every cell to see an independent workload (as
// opposed to the paper's footnote-5 protocol, where every technique
// replays the identical request sequence) can seed each cell without any
// cross-cell ordering dependence:
//
//	seed := sim.CellSeed(opt.Seed, "figure5b", spec, fmt.Sprint(ratio))
//
// The derivation is pure: it depends only on the master seed and labels,
// never on which worker runs the cell or when.
func CellSeed(master uint64, labels ...string) uint64 {
	src := randutil.NewSource(master)
	for _, label := range labels {
		src = src.Split(label)
	}
	return src.Uint64()
}

// Package sim drives cache configurations through workloads and implements
// every experiment of the paper's evaluation (Figures 2–7 plus the
// Section 4.1 estimate-quality and Section 4.4 skew studies).
//
// The runner is generic over anything that can service clip requests
// (core.Cache, blocklru.Cache, coop.Device), collects windowed hit-rate
// series for the transient experiments, and computes theoretical hit rates
// from the workload's true distribution (Section 4.4.1).
package sim

import (
	"errors"
	"fmt"
	"time"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/workload"
)

// Requester services clip requests; core.Cache and blocklru.Cache implement
// it.
type Requester interface {
	Request(media.ClipID) (core.Outcome, error)
	Stats() core.Stats
}

// Rater additionally exposes the theoretical hit rate of the current cache
// content under a given true distribution.
type Rater interface {
	TheoreticalHitRate(pmf []float64) float64
}

// WindowPoint is one sample of the transient experiments: the observed hit
// rate over the window ending at EndRequest, plus the theoretical hit rate
// of the cache content at that instant.
type WindowPoint struct {
	EndRequest  int     // 1-based request index at the window end
	HitRate     float64 // observed hits/requests within the window
	Theoretical float64 // Σ f_i over resident clips (0 if unavailable)
}

// Metrics captures the engine counters and timing of one sweep cell, so
// the cost of a run — not just its hit rate — is measurable. Counters
// mirror core.Stats; Wall is host wall-clock time and is the only field
// that varies between identical runs.
type Metrics struct {
	Requests     uint64        // references issued
	Hits         uint64        // references serviced from cache
	Evictions    uint64        // clips swapped out
	BytesFetched media.Bytes   // network traffic: Σ size of clips actually delivered on misses
	BytesFailed  media.Bytes   // Σ size of clips whose remote fetch failed (fault injection)
	BytesEvicted media.Bytes   // Σ size of evicted clips
	Bypassed     uint64        // misses streamed without caching
	FetchFailed  uint64        // misses whose remote fetch failed (fault injection)
	VictimCalls  uint64        // Policy.Victims invocations (incl. re-invocations)
	Invalidated  uint64        // clips dropped by catalog invalidation (explicit or TTL)
	BytesInval   media.Bytes   // Σ bytes freed by catalog invalidation
	Wall         time.Duration // wall-clock time of the cell
}

// metricsFromStats lifts the engine counters out of s.
func metricsFromStats(s core.Stats, wall time.Duration) Metrics {
	return Metrics{
		Requests:     s.Requests,
		Hits:         s.Hits,
		Evictions:    s.Evictions,
		BytesFetched: s.BytesFetched,
		BytesFailed:  s.BytesFailed,
		BytesEvicted: s.BytesEvicted,
		Bypassed:     s.Bypassed,
		FetchFailed:  s.FetchFailed,
		VictimCalls:  s.VictimCalls,
		Invalidated:  s.Invalidated,
		BytesInval:   s.BytesInvalidated,
		Wall:         wall,
	}
}

// Add accumulates other into m. Wall times add up, so the sum over a
// figure's cells is total compute, not elapsed time (cells overlap under
// the parallel runner).
func (m *Metrics) Add(other Metrics) {
	m.Requests += other.Requests
	m.Hits += other.Hits
	m.Evictions += other.Evictions
	m.BytesFetched += other.BytesFetched
	m.BytesFailed += other.BytesFailed
	m.BytesEvicted += other.BytesEvicted
	m.Bypassed += other.Bypassed
	m.FetchFailed += other.FetchFailed
	m.VictimCalls += other.VictimCalls
	m.Invalidated += other.Invalidated
	m.BytesInval += other.BytesInval
	m.Wall += other.Wall
}

// Result is the outcome of one run.
type Result struct {
	Policy      string
	Stats       core.Stats
	Theoretical float64 // theoretical hit rate at the end of the run
	Windows     []WindowPoint
	Metrics     Metrics
	Err         error
}

// RunConfig controls a run.
type RunConfig struct {
	// WindowSize, when positive, samples a WindowPoint every WindowSize
	// requests (Figures 6.b, 7.b use 100).
	WindowSize int
	// OnPhaseStart is invoked at the start of every schedule phase with the
	// phase and the true per-identity pmf that will generate its requests.
	// The Figure 6 experiments use it to hand Simple the accurate
	// frequencies of the new distribution.
	OnPhaseStart func(phase workload.Phase, pmf []float64)
}

// Run drives req through the schedule using gen. The generator's shift is
// set at each phase boundary. Name labels the result.
func Run(name string, req Requester, gen *workload.Generator, sched workload.Schedule, cfg RunConfig) (*Result, error) {
	if req == nil {
		return nil, errors.New("sim: requester must not be nil")
	}
	if gen == nil {
		return nil, errors.New("sim: generator must not be nil")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Policy: name}
	rater, _ := req.(Rater)
	start := time.Now()

	issued := 0
	windowHits := 0
	windowCount := 0
	var pmf []float64
	for _, phase := range sched {
		if err := gen.SetShift(phase.Shift); err != nil {
			return nil, err
		}
		pmf = gen.PMF()
		if cfg.OnPhaseStart != nil {
			cfg.OnPhaseStart(phase, pmf)
		}
		for i := 0; i < phase.Requests; i++ {
			id := gen.Next()
			out, err := req.Request(id)
			if err != nil {
				return nil, fmt.Errorf("sim: request %d (clip %d): %w", issued+1, id, err)
			}
			issued++
			windowCount++
			if out.IsHit() {
				windowHits++
			}
			if cfg.WindowSize > 0 && windowCount == cfg.WindowSize {
				point := WindowPoint{
					EndRequest: issued,
					HitRate:    float64(windowHits) / float64(windowCount),
				}
				if rater != nil {
					point.Theoretical = rater.TheoreticalHitRate(pmf)
				}
				res.Windows = append(res.Windows, point)
				windowHits, windowCount = 0, 0
			}
		}
	}
	res.Stats = req.Stats()
	res.Metrics = metricsFromStats(res.Stats, time.Since(start))
	if rater != nil && pmf != nil {
		res.Theoretical = rater.TheoreticalHitRate(pmf)
	}
	return res, nil
}

// invalidator is the purge face a Requester may additionally expose;
// core.Cache and shard.Pool both do. RunSource uses it to service perish
// events when SourceConfig.Purge is set.
type invalidator interface {
	Invalidate(media.ClipID) media.Bytes
}

// rangeRequester is the partial-content face a Requester may additionally
// expose (segmented core.Cache and shard.Pool). RunSource services ranged
// events through it; against a whole-clip requester a ranged event
// degrades to a reference to the full clip.
type rangeRequester interface {
	RequestRange(id media.ClipID, start, length media.Bytes) (core.RangeResult, error)
}

// SourceConfig controls RunSource.
type SourceConfig struct {
	// Limit bounds the events consumed (0 = drain the source). Infinite
	// sources (generators, session specs) require a positive Limit or the
	// run never returns.
	Limit int
	// Purge invalidates a clip's cached bytes on every EventPerish — the
	// publisher-issued DELETE of the purge-driven churn regimes. Leave
	// false when TTL expiry does the invalidation on its own.
	Purge bool
	// WindowSize, when positive, samples a WindowPoint every WindowSize
	// requests. Sources carry no true distribution, so the theoretical
	// rate of each point is 0.
	WindowSize int
}

// RunSource drives req with events from src — the unified face every
// workload generator, recorded trace and fitted session spec presents —
// until src exhausts or cfg.Limit events have been consumed. Publish
// events are catalog bookkeeping and are skipped; perish events purge the
// clip when cfg.Purge is set (and req can invalidate) and are skipped
// otherwise.
func RunSource(name string, req Requester, src workload.Source, cfg SourceConfig) (*Result, error) {
	if req == nil {
		return nil, errors.New("sim: requester must not be nil")
	}
	if src == nil {
		return nil, errors.New("sim: source must not be nil")
	}
	inv, _ := req.(invalidator)
	ranger, _ := req.(rangeRequester)
	res := &Result{Policy: name}
	start := time.Now()
	issued, windowHits, windowCount := 0, 0, 0
	for consumed := 0; cfg.Limit <= 0 || consumed < cfg.Limit; consumed++ {
		ev, ok := src.Next()
		if !ok {
			break
		}
		switch ev.Kind {
		case workload.EventPublish:
			continue
		case workload.EventPerish:
			if cfg.Purge && inv != nil {
				inv.Invalidate(ev.Clip)
			}
			continue
		}
		var (
			out core.Outcome
			err error
		)
		if ev.Ranged && ranger != nil {
			var rr core.RangeResult
			rr, err = ranger.RequestRange(ev.Clip, ev.Start, ev.Length)
			out = rr.Outcome
		} else {
			out, err = req.Request(ev.Clip)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: request %d (clip %d): %w", issued+1, ev.Clip, err)
		}
		issued++
		windowCount++
		if out.IsHit() {
			windowHits++
		}
		if cfg.WindowSize > 0 && windowCount == cfg.WindowSize {
			res.Windows = append(res.Windows, WindowPoint{
				EndRequest: issued,
				HitRate:    float64(windowHits) / float64(windowCount),
			})
			windowHits, windowCount = 0, 0
		}
	}
	res.Stats = req.Stats()
	res.Metrics = metricsFromStats(res.Stats, time.Since(start))
	return res, nil
}

// RunTrace replays a recorded trace against req and returns the accumulated
// statistics.
func RunTrace(name string, req Requester, trace *workload.Trace) (*Result, error) {
	if req == nil {
		return nil, errors.New("sim: requester must not be nil")
	}
	if trace == nil {
		return nil, errors.New("sim: trace must not be nil")
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	for i, id := range trace.Requests {
		if _, err := req.Request(id); err != nil {
			return nil, fmt.Errorf("sim: trace %q request %d: %w", trace.Name, i, err)
		}
	}
	stats := req.Stats()
	return &Result{
		Policy:  name,
		Stats:   stats,
		Metrics: metricsFromStats(stats, time.Since(start)),
	}, nil
}

package sim

// churn_test.go (ISSUE 8): the churn experiment must be registered, cover
// every regime with real catalog dynamics, and be exactly reproducible —
// the same seed gives byte-identical figures on repeat runs and at any
// worker count (the catalog-wide TestParallelMatchesSequential covers the
// parallel half automatically once "churn" is registered).

import (
	"strings"
	"testing"
)

func TestChurnRegistered(t *testing.T) {
	if _, ok := ByID("churn"); !ok {
		t.Fatal(`experiment "churn" is not registered`)
	}
}

func TestChurnFigure(t *testing.T) {
	fig, err := Churn(Options{Seed: DefaultSeed, Requests: 3000, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("figure has %d series, want 6 policies", len(fig.Series))
	}
	wantCells := 6 * len(ChurnSettings)
	if len(fig.Cells) != wantCells {
		t.Fatalf("figure has %d cells, want %d", len(fig.Cells), wantCells)
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(ChurnSettings) {
			t.Fatalf("series %s has %d points, want %d", s.Label, len(s.Y), len(ChurnSettings))
		}
		for j, y := range s.Y {
			if y <= 0 || y >= 100 {
				t.Errorf("series %s setting %d: hit rate %v out of (0, 100)", s.Label, j, y)
			}
		}
	}
	// Cells whose invalidation mechanism can fire within this shortened
	// horizon must have seen real catalog dynamics: the TTL regimes expire
	// cached copies (only once the TTL fits inside the horizon — slow-ttl's
	// 4000-tick TTL cannot expire anything in 3000 requests), the purge
	// regime invalidates explicitly from the first perish on.
	canInvalidate := make(map[int]bool, len(ChurnSettings))
	for j, s := range ChurnSettings {
		canInvalidate[j] = s.TTL == 0 || int(s.TTL) < 3000
	}
	for i, c := range fig.Cells {
		if canInvalidate[i%len(ChurnSettings)] && (c.Metrics.Invalidated == 0 || c.Metrics.BytesInval == 0) {
			t.Errorf("cell %s saw no invalidations: %+v", c.Label, c.Metrics)
		}
		if c.Metrics.Requests != 3000 {
			t.Errorf("cell %s drove %d requests, want 3000 (invalidations must not count)",
				c.Label, c.Metrics.Requests)
		}
	}
	// The purge cells must be labelled and present.
	purged := 0
	for _, c := range fig.Cells {
		if strings.HasSuffix(c.Label, "@mid-purge") {
			purged++
		}
	}
	if purged != 6 {
		t.Fatalf("%d purge-driven cells, want 6", purged)
	}
}

// TestChurnDeterministicAcrossRuns: same options → identical figures,
// across every regime; a different seed must actually change the output.
func TestChurnDeterministicAcrossRuns(t *testing.T) {
	opt := Options{Seed: DefaultSeed, Requests: 2000, Parallel: 4}
	a, err := Churn(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := figuresEqual(a, b); err != nil {
		t.Fatalf("repeat run diverged: %v", err)
	}
	opt.Seed = DefaultSeed + 1
	c, err := Churn(opt)
	if err != nil {
		t.Fatal(err)
	}
	if figuresEqual(a, c) == nil {
		t.Fatal("different seeds produced identical churn figures")
	}
}

package sim

import (
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/belady"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// Optimal is an extension experiment: the clairvoyant Belady baselines
// against the paper's off-line Simple and on-line DYNSimple, on one
// recorded trace over the variable-size repository. It bounds the headroom
// left above the paper's techniques: Simple knows frequencies, Belady knows
// the future; the gap between them is the value of exact foreknowledge over
// statistical knowledge.
func Optimal(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	gen := workload.MustNewGenerator(dist, opt.Seed)
	pmf := gen.PMF()
	trace := workload.Record("optimal", gen, opt.Requests)

	fig := &Figure{
		ID:     "optimal",
		Title:  "Clairvoyant Belady baselines vs Simple and DYNSimple (extension)",
		XLabel: "S_T/S_DB",
		YLabel: "Cache hit rate (%)",
	}
	builders := []func() (core.Policy, error){
		func() (core.Policy, error) { return belady.New(trace, belady.Classic) },
		func() (core.Policy, error) { return belady.New(trace, belady.SizeAware) },
		func() (core.Policy, error) { return NewPolicy("simple", repo, pmf, opt.Seed) },
		func() (core.Policy, error) { return NewPolicy("dynsimple:2", repo, pmf, opt.Seed) },
	}
	// Grid: builder-major, ratio-minor. The trace is shared read-only; each
	// cell builds its own policy and cache.
	nr := len(RatiosFigure5)
	type cellOut struct {
		name string
		y    float64
		m    Metrics
	}
	cells, err := mapCells(opt.Parallel, len(builders)*nr, func(i int) (cellOut, error) {
		ratio := RatiosFigure5[i%nr]
		p, err := builders[i/nr]()
		if err != nil {
			return cellOut{}, err
		}
		cache, err := core.New(repo, repo.CacheSizeForRatio(ratio), p)
		if err != nil {
			return cellOut{}, err
		}
		res, err := RunTrace(p.Name(), cache, trace)
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{name: p.Name(), y: res.Stats.HitRate(), m: res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for bi := range builders {
		s := Series{Label: cells[bi*nr].name}
		for j, ratio := range RatiosFigure5 {
			c := cells[bi*nr+j]
			s.X = append(s.X, ratio)
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%v", c.name, ratio),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

package sim

import (
	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/belady"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// Optimal is an extension experiment: the clairvoyant Belady baselines
// against the paper's off-line Simple and on-line DYNSimple, on one
// recorded trace over the variable-size repository. It bounds the headroom
// left above the paper's techniques: Simple knows frequencies, Belady knows
// the future; the gap between them is the value of exact foreknowledge over
// statistical knowledge.
func Optimal(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	gen := workload.MustNewGenerator(dist, opt.Seed)
	pmf := gen.PMF()
	trace := workload.Record("optimal", gen, opt.Requests)

	fig := &Figure{
		ID:     "optimal",
		Title:  "Clairvoyant Belady baselines vs Simple and DYNSimple (extension)",
		XLabel: "S_T/S_DB",
		YLabel: "Cache hit rate (%)",
	}
	builders := []func() (core.Policy, error){
		func() (core.Policy, error) { return belady.New(trace, belady.Classic) },
		func() (core.Policy, error) { return belady.New(trace, belady.SizeAware) },
		func() (core.Policy, error) { return NewPolicy("simple", repo, pmf, opt.Seed) },
		func() (core.Policy, error) { return NewPolicy("dynsimple:2", repo, pmf, opt.Seed) },
	}
	for _, build := range builders {
		s := Series{}
		for _, ratio := range RatiosFigure5 {
			p, err := build()
			if err != nil {
				return nil, err
			}
			if s.Label == "" {
				s.Label = p.Name()
			}
			cache, err := core.New(repo, repo.CacheSizeForRatio(ratio), p)
			if err != nil {
				return nil, err
			}
			res, err := RunTrace(p.Name(), cache, trace)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, ratio)
			s.Y = append(s.Y, res.Stats.HitRate())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

package sim

import (
	"fmt"
	"strconv"
	"strings"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/policy/gdfreq"
	"mediacache/internal/policy/gdsp"
	"mediacache/internal/policy/greedydual"
	"mediacache/internal/policy/igd"
	"mediacache/internal/policy/lfu"
	"mediacache/internal/policy/lruk"
	"mediacache/internal/policy/lrusk"
	"mediacache/internal/policy/random"
	"mediacache/internal/policy/simple"
)

// PolicyNames lists the specs understood by NewPolicy, for CLI help text.
var PolicyNames = []string{
	"simple", "simple-variant", "random", "lru",
	"lruk:K", "lrusk:K", "lrusk-tree:K", "dynsimple:K", "greedydual", "gd-naive",
	"gdfreq", "igd:K", "igd-indexed:K", "lfu", "lfu-da", "gdsp",
}

// NewPolicy builds a replacement policy from a textual spec such as
// "dynsimple:2", "lruk:2", "greedydual" or "simple". Policies with a history
// depth accept an optional ":K" suffix (default 2). pmf supplies the true
// access frequencies required by the off-line Simple technique; it may be
// nil for on-line policies. seed feeds the policies that break ties or pick
// victims randomly.
//
// The returned policy may need binding to its cache (only "simple-variant"
// does); BindPolicy handles that uniformly.
func NewPolicy(spec string, repo *media.Repository, pmf []float64, seed uint64) (core.Policy, error) {
	if repo == nil {
		return nil, fmt.Errorf("sim: repository must not be nil")
	}
	name := spec
	k := 2
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		parsed, err := strconv.Atoi(spec[i+1:])
		if err != nil || parsed <= 0 {
			return nil, fmt.Errorf("sim: bad history depth in policy spec %q", spec)
		}
		k = parsed
	}
	n := repo.N()
	switch name {
	case "simple":
		if pmf == nil {
			return nil, fmt.Errorf("sim: policy %q needs the true access frequencies", spec)
		}
		return simple.New(pmf)
	case "simple-variant":
		if pmf == nil {
			return nil, fmt.Errorf("sim: policy %q needs the true access frequencies", spec)
		}
		return simple.NewVariant(pmf)
	case "random":
		return random.New(seed), nil
	case "lru":
		return lruk.New(n, 1)
	case "lruk":
		return lruk.New(n, k)
	case "lrusk":
		return lrusk.New(n, k)
	case "lrusk-tree":
		return lrusk.NewFast(n, k)
	case "lfu":
		return lfu.New(), nil
	case "lfu-da":
		return lfu.NewDA(), nil
	case "gdsp":
		return gdsp.New(nil, gdsp.DefaultBeta, seed)
	case "dynsimple":
		return dynsimple.New(n, k)
	case "greedydual":
		return greedydual.New(nil, seed), nil
	case "gd-naive":
		return greedydual.NewNaive(nil, seed), nil
	case "gdfreq":
		return gdfreq.New(nil, seed), nil
	case "igd":
		return igd.New(n, k, seed)
	case "igd-indexed":
		return igd.New(n, k, seed, igd.Indexed())
	default:
		return nil, fmt.Errorf("sim: unknown policy %q (known: %s)", spec, strings.Join(PolicyNames, ", "))
	}
}

// BindPolicy attaches policies that need a view of their cache (currently
// only the Simple admission variant) to the cache that hosts them.
func BindPolicy(p core.Policy, c *core.Cache) {
	if v, ok := p.(*simple.Variant); ok {
		v.Bind(c)
	}
}

// NewCache builds a cache over repo at the given capacity running the
// policy described by spec, fully bound and ready to service requests.
func NewCache(spec string, repo *media.Repository, capacity media.Bytes, pmf []float64, seed uint64) (*core.Cache, error) {
	p, err := NewPolicy(spec, repo, pmf, seed)
	if err != nil {
		return nil, err
	}
	c, err := core.New(repo, capacity, p)
	if err != nil {
		return nil, err
	}
	BindPolicy(p, c)
	return c, nil
}

package sim

import (
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/registry"

	// Link every built-in policy so its registry registration runs.
	_ "mediacache/internal/policy/all"
)

// PolicyNames lists the specs understood by NewPolicy, for CLI help text.
// It reflects the registry at package-init time; policies registered later
// (out-of-tree) appear in registry.Usages() but not here.
var PolicyNames = registry.Usages()

// NewPolicy builds a replacement policy from a textual spec such as
// "dynsimple:2", "lruk:2", "greedydual" or "simple", by resolving it
// through the policy registry. Policies with a history depth accept an
// optional ":K" suffix (default registry.DefaultK). pmf supplies the true
// access frequencies required by the off-line Simple technique; it may be
// nil for on-line policies. seed feeds the policies that break ties or pick
// victims randomly.
//
// Policies that need a view of their cache (only "simple-variant" does)
// implement core.Binder and are bound automatically by core.New.
func NewPolicy(spec string, repo *media.Repository, pmf []float64, seed uint64) (core.Policy, error) {
	if repo == nil {
		return nil, fmt.Errorf("sim: repository must not be nil")
	}
	return registry.Build(spec, repo, pmf, seed)
}

// NewCache builds a cache over repo at the given capacity running the
// policy described by spec, fully bound and ready to service requests.
// Engine options (e.g. core.WithObserver for the observability layer)
// pass through to core.New.
func NewCache(spec string, repo *media.Repository, capacity media.Bytes, pmf []float64, seed uint64, opts ...core.Option) (*core.Cache, error) {
	p, err := NewPolicy(spec, repo, pmf, seed)
	if err != nil {
		return nil, err
	}
	return core.New(repo, capacity, p, opts...)
}

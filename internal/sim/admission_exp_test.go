package sim

import "testing"

func TestAdmissionClaims(t *testing.T) {
	fig, err := Admission(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	plainHit := seriesByLabel(t, fig, "DYNSimple(K=2) [hit]")
	plainByte := seriesByLabel(t, fig, "DYNSimple(K=2) [byte]")
	wrapHit := seriesByLabel(t, fig, "DYNSimple(K=2)+2touch [hit]")
	wrapByte := seriesByLabel(t, fig, "DYNSimple(K=2)+2touch [byte]")
	for i := range plainHit.X {
		// The filter trades request hits for byte hits (package admission's
		// documented finding): byte hit rate up at every ratio...
		if wrapByte.Y[i] <= plainByte.Y[i] {
			t.Errorf("ratio %v: filtered byte hit %.4f <= plain %.4f",
				plainHit.X[i], wrapByte.Y[i], plainByte.Y[i])
		}
		// ...at a bounded request-hit cost.
		if plainHit.Y[i]-wrapHit.Y[i] > 0.06 {
			t.Errorf("ratio %v: hit-rate cost too large (%.4f vs %.4f)",
				plainHit.X[i], wrapHit.Y[i], plainHit.Y[i])
		}
	}
}

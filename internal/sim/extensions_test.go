package sim

import (
	"testing"
)

func TestGDSPTradeoffClaims(t *testing.T) {
	fig, err := GDSPTradeoff(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	gdspHit := seriesByLabel(t, fig, "GDS-Popularity [hit]")
	gdspByte := seriesByLabel(t, fig, "GDS-Popularity [byte]")
	gdHit := seriesByLabel(t, fig, "GreedyDual [hit]")
	gdByte := seriesByLabel(t, fig, "GreedyDual [byte]")
	// Section 1: GDSP "enhances byte hit rate at the expense of cache hit
	// rate" — at every ratio.
	for i := range gdspHit.X {
		if gdspByte.Y[i] <= gdByte.Y[i] {
			t.Errorf("ratio %v: GDSP byte %.3f <= GreedyDual byte %.3f",
				gdspHit.X[i], gdspByte.Y[i], gdByte.Y[i])
		}
		if gdspHit.Y[i] >= gdHit.Y[i] {
			t.Errorf("ratio %v: GDSP hit %.3f >= GreedyDual hit %.3f",
				gdspHit.X[i], gdspHit.Y[i], gdHit.Y[i])
		}
	}
}

func TestLatencyClaims(t *testing.T) {
	fig, err := Latency(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	cached := seriesByLabel(t, fig, "DYNSimple")
	bare := seriesByLabel(t, fig, "no cache")
	for i := range cached.X {
		// The cache can only reduce average startup latency.
		if cached.Y[i] >= bare.Y[i] {
			t.Errorf("alloc %v: cached latency %.1f >= uncached %.1f",
				cached.X[i], cached.Y[i], bare.Y[i])
		}
	}
	// Latency is monotone non-increasing in allocated bandwidth.
	for i := 1; i < len(bare.Y); i++ {
		if bare.Y[i] > bare.Y[i-1] {
			t.Error("uncached latency should fall with more bandwidth")
		}
	}
	// Above the highest display rate (4 Mbps), only the admission overhead
	// remains: tiny latencies.
	last := bare.Y[len(bare.Y)-1]
	if last > 60 {
		t.Errorf("at 8 Mbps expected admission-dominated latency, got %.1fs", last)
	}
}

func TestRegionClaims(t *testing.T) {
	fig, err := Region(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	none := seriesByLabel(t, fig, "no cache")
	big := seriesByLabel(t, fig, "cache 12.5%")
	// Throughput falls as devices contend for the link.
	for i := 1; i < len(none.Y); i++ {
		if none.Y[i] > none.Y[i-1]+1e-9 {
			t.Error("uncached throughput should fall with more devices")
		}
	}
	// With the link saturated (the largest device count), caches raise
	// throughput — the Section 1 story.
	lastIdx := len(none.Y) - 1
	if big.Y[lastIdx] <= none.Y[lastIdx] {
		t.Errorf("at %v devices: cached throughput %.3f <= uncached %.3f",
			none.X[lastIdx], big.Y[lastIdx], none.Y[lastIdx])
	}
}

func TestTaxonomyClaims(t *testing.T) {
	fig, err := Taxonomy(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	hitOf := func(prefix string) float64 {
		return seriesByLabel(t, fig, prefix).Y[0]
	}
	// The Section 3.3 variant remark: "performs either identical or
	// slightly better" than plain Simple.
	if hitOf("Simple(no-cache-colder)") < hitOf("Simple")-0.01 {
		t.Errorf("variant hit rate %.3f clearly below Simple %.3f",
			hitOf("Simple(no-cache-colder)"), hitOf("Simple"))
	}
	// The Section 5 efficient implementation is decision-identical: exactly
	// equal hit rates.
	scan := seriesByLabel(t, fig, "LRU-S2")
	tree := seriesByLabel(t, fig, "LRU-S2(tree)")
	if scan.Y[0] != tree.Y[0] || scan.Y[1] != tree.Y[1] {
		t.Errorf("tree-based LRU-SK diverged from scan: %v vs %v", tree.Y, scan.Y)
	}
	// Headline ordering at the standard operating point.
	if hitOf("Simple") <= hitOf("DYNSimple(K=2)") {
		t.Error("off-line Simple should lead")
	}
	if hitOf("DYNSimple(K=2)") <= hitOf("Random") {
		t.Error("DYNSimple should beat Random comfortably")
	}
	if hitOf("LFU") <= hitOf("Random") {
		t.Error("LFU should beat Random")
	}
}

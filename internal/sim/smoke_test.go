package sim

import "testing"

// TestAllExperimentsSmoke runs every registered experiment at a reduced
// request count, guaranteeing the whole registry stays runnable — any new
// experiment gets crash coverage for free, and basic output-shape
// invariants are enforced uniformly.
func TestAllExperimentsSmoke(t *testing.T) {
	opt := Options{Seed: DefaultSeed, Requests: 600}
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			fig, err := e.Run(opt)
			if err != nil {
				t.Fatalf("experiment %s: %v", e.ID, err)
			}
			if fig.ID != e.ID {
				t.Errorf("figure id %q != registry id %q", fig.ID, e.ID)
			}
			if len(fig.Series) == 0 {
				t.Fatal("no series")
			}
			if fig.Title == "" || fig.XLabel == "" || fig.YLabel == "" {
				t.Error("missing labels")
			}
			for _, s := range fig.Series {
				if s.Label == "" {
					t.Error("unlabeled series")
				}
				if len(s.X) != len(s.Y) {
					t.Errorf("series %q: |X|=%d |Y|=%d", s.Label, len(s.X), len(s.Y))
				}
				if len(s.Y) == 0 {
					t.Errorf("series %q is empty", s.Label)
				}
			}
		})
	}
}

package sim

import (
	"errors"
	"strings"
	"testing"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/simple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func testRepo(t *testing.T) *media.Repository {
	t.Helper()
	r, err := media.EquiRepository(20, 10)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunValidation(t *testing.T) {
	repo := testRepo(t)
	gen := workload.MustNewGenerator(zipf.MustNew(20, 0.27), 1)
	cache, _ := NewCache("lru", repo, 50, nil, 1)
	sched := workload.Schedule{{Shift: 0, Requests: 10}}
	if _, err := Run("x", nil, gen, sched, RunConfig{}); err == nil {
		t.Error("nil requester should fail")
	}
	if _, err := Run("x", cache, nil, sched, RunConfig{}); err == nil {
		t.Error("nil generator should fail")
	}
	if _, err := Run("x", cache, gen, workload.Schedule{}, RunConfig{}); err == nil {
		t.Error("empty schedule should fail")
	}
}

func TestRunBasic(t *testing.T) {
	repo := testRepo(t)
	gen := workload.MustNewGenerator(zipf.MustNew(20, 0.27), 7)
	cache, err := NewCache("lruk:2", repo, 50, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run("LRU-2", cache, gen, workload.Schedule{{Shift: 0, Requests: 1000}}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Requests != 1000 {
		t.Fatalf("requests = %d", res.Stats.Requests)
	}
	if res.Stats.HitRate() <= 0 {
		t.Fatal("expected some hits on a Zipf workload")
	}
	if res.Theoretical <= 0 || res.Theoretical > 1 {
		t.Fatalf("theoretical = %v", res.Theoretical)
	}
}

func TestRunWindows(t *testing.T) {
	repo := testRepo(t)
	gen := workload.MustNewGenerator(zipf.MustNew(20, 0.27), 7)
	cache, _ := NewCache("lruk:2", repo, 50, nil, 7)
	res, err := Run("LRU-2", cache, gen,
		workload.Schedule{{Shift: 0, Requests: 500}}, RunConfig{WindowSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 5 {
		t.Fatalf("windows = %d, want 5", len(res.Windows))
	}
	for i, w := range res.Windows {
		if w.EndRequest != (i+1)*100 {
			t.Fatalf("window %d ends at %d", i, w.EndRequest)
		}
		if w.HitRate < 0 || w.HitRate > 1 {
			t.Fatalf("window hit rate %v", w.HitRate)
		}
	}
}

func TestRunPhaseHook(t *testing.T) {
	repo := testRepo(t)
	gen := workload.MustNewGenerator(zipf.MustNew(20, 0.27), 7)
	cache, _ := NewCache("lru", repo, 50, nil, 7)
	var phases []int
	cfg := RunConfig{OnPhaseStart: func(p workload.Phase, pmf []float64) {
		phases = append(phases, p.Shift)
		if len(pmf) != 20 {
			t.Errorf("pmf length %d", len(pmf))
		}
	}}
	sched := workload.Schedule{{Shift: 0, Requests: 50}, {Shift: 5, Requests: 50}}
	if _, err := Run("LRU", cache, gen, sched, cfg); err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 || phases[0] != 0 || phases[1] != 5 {
		t.Fatalf("phases = %v", phases)
	}
}

func TestRunTrace(t *testing.T) {
	repo := testRepo(t)
	gen := workload.MustNewGenerator(zipf.MustNew(20, 0.27), 7)
	trace := workload.Record("t", gen, 200)
	cache, _ := NewCache("lru", repo, 50, nil, 7)
	res, err := RunTrace("LRU", cache, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Requests != 200 {
		t.Fatalf("requests = %d", res.Stats.Requests)
	}
	if _, err := RunTrace("x", nil, trace); err == nil {
		t.Error("nil requester should fail")
	}
	if _, err := RunTrace("x", cache, nil); err == nil {
		t.Error("nil trace should fail")
	}
	bad := &workload.Trace{Name: "bad", NumClips: 20, Requests: []media.ClipID{25}}
	if _, err := RunTrace("x", cache, bad); err == nil {
		t.Error("invalid trace should fail")
	}
}

func TestNewPolicySpecs(t *testing.T) {
	repo := testRepo(t)
	pmf := make([]float64, 20)
	for i := range pmf {
		pmf[i] = 0.05
	}
	wantNames := map[string]string{
		"simple":         "Simple",
		"simple-variant": "Simple(no-cache-colder)",
		"random":         "Random",
		"lru":            "LRU-1",
		"lruk:2":         "LRU-2",
		"lruk:8":         "LRU-8",
		"lrusk:2":        "LRU-S2",
		"dynsimple:2":    "DYNSimple(K=2)",
		"dynsimple:32":   "DYNSimple(K=32)",
		"greedydual":     "GreedyDual",
		"gd-naive":       "GreedyDual(naive)",
		"gdfreq":         "GreedyDual-Freq",
		"igd:2":          "IGD(K=2)",
	}
	for spec, want := range wantNames {
		p, err := NewPolicy(spec, repo, pmf, 1)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("%s: name %q, want %q", spec, p.Name(), want)
		}
	}
}

func TestNewPolicyErrors(t *testing.T) {
	repo := testRepo(t)
	for _, spec := range []string{"", "nope", "lruk:0", "lruk:x", "igd:-2"} {
		if _, err := NewPolicy(spec, repo, nil, 1); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
	if _, err := NewPolicy("simple", repo, nil, 1); err == nil {
		t.Error("simple without pmf should fail")
	}
	if _, err := NewPolicy("lru", nil, nil, 1); err == nil {
		t.Error("nil repo should fail")
	}
}

func TestNewCacheBindsVariant(t *testing.T) {
	repo := testRepo(t)
	pmf := make([]float64, 20)
	for i := range pmf {
		pmf[i] = 0.05
	}
	cache, err := NewCache("simple-variant", repo, 50, pmf, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := cache.Policy().(*simple.Variant)
	if !ok {
		t.Fatal("policy is not a Variant")
	}
	// A bound variant must consult the resident view; drive a request to be
	// sure nothing panics and admission logic runs.
	if _, err := cache.Request(1); err != nil {
		t.Fatal(err)
	}
	_ = v
}

func TestRunErrorPropagation(t *testing.T) {
	repo := testRepo(t)
	gen := workload.MustNewGenerator(zipf.MustNew(25, 0.27), 7) // 25 > repo size
	cache, _ := NewCache("lru", repo, 50, nil, 7)
	_, err := Run("x", cache, gen, workload.Schedule{{Shift: 0, Requests: 5000}}, RunConfig{})
	if err == nil {
		t.Fatal("expected unknown-clip error to propagate")
	}
	if !errors.Is(err, core.ErrUnknownClip) && !strings.Contains(err.Error(), "clip") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestByID(t *testing.T) {
	for _, e := range Experiments {
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("experiment %q not resolvable", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

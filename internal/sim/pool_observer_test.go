package sim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// recordingPoolObserver captures pool callbacks under a lock (the pool
// promises only that callbacks are concurrency-safe, not ordered).
type recordingPoolObserver struct {
	mu        sync.Mutex
	started   int
	finished  int
	failed    int
	maxQueued int
	workers   map[int]int // worker -> cells run
	elapsed   time.Duration
}

func (o *recordingPoolObserver) CellStarted(worker, cell, queued int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started++
	if queued > o.maxQueued {
		o.maxQueued = queued
	}
	if o.workers == nil {
		o.workers = make(map[int]int)
	}
	o.workers[worker]++
}

func (o *recordingPoolObserver) CellFinished(worker, cell int, elapsed time.Duration, failed bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finished++
	o.elapsed += elapsed
	if failed {
		o.failed++
	}
}

// TestPoolObserverSequential pins the exact callback stream of the
// one-worker path: every cell starts and finishes on worker 0, queue depth
// counts down from n-1 to 0.
func TestPoolObserverSequential(t *testing.T) {
	obs := &recordingPoolObserver{}
	SetPoolObserver(obs)
	defer SetPoolObserver(nil)
	const n = 5
	out, err := mapCells(1, n, func(i int) (int, error) {
		time.Sleep(time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n || out[3] != 9 {
		t.Fatalf("results = %v", out)
	}
	if obs.started != n || obs.finished != n || obs.failed != 0 {
		t.Fatalf("started/finished/failed = %d/%d/%d, want %d/%d/0",
			obs.started, obs.finished, obs.failed, n, n)
	}
	if obs.maxQueued != n-1 {
		t.Fatalf("max queue depth = %d, want %d", obs.maxQueued, n-1)
	}
	if len(obs.workers) != 1 || obs.workers[0] != n {
		t.Fatalf("worker distribution = %v, want all on worker 0", obs.workers)
	}
	if obs.elapsed <= 0 {
		t.Fatal("cell timings not recorded")
	}
}

// TestPoolObserverParallel checks the concurrent path: all cells observed
// exactly once, queue depth bounded by n-1, and results untouched by
// instrumentation.
func TestPoolObserverParallel(t *testing.T) {
	obs := &recordingPoolObserver{}
	SetPoolObserver(obs)
	defer SetPoolObserver(nil)
	const n = 32
	out, err := mapCells(4, n, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if obs.started != n || obs.finished != n {
		t.Fatalf("started/finished = %d/%d, want %d/%d", obs.started, obs.finished, n, n)
	}
	if obs.maxQueued >= n {
		t.Fatalf("queue depth %d out of range", obs.maxQueued)
	}
	total := 0
	for w, c := range obs.workers {
		if w < 0 || w >= 4 {
			t.Fatalf("worker id %d out of range", w)
		}
		total += c
	}
	if total != n {
		t.Fatalf("worker cell counts sum to %d, want %d", total, n)
	}
}

// TestPoolObserverReportsFailures checks failed cells are flagged.
func TestPoolObserverReportsFailures(t *testing.T) {
	obs := &recordingPoolObserver{}
	SetPoolObserver(obs)
	defer SetPoolObserver(nil)
	boom := errors.New("boom")
	_, err := mapCells(1, 3, func(i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if obs.failed != 1 {
		t.Fatalf("failed cells = %d, want 1", obs.failed)
	}
}

// TestPoolObserverDisabledPathUntouched confirms uninstalling restores the
// plain path (no panic, results identical).
func TestPoolObserverDisabledPathUntouched(t *testing.T) {
	SetPoolObserver(&recordingPoolObserver{})
	SetPoolObserver(nil)
	out, err := mapCells(2, 4, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[3] != 4 {
		t.Fatalf("results = %v", out)
	}
}

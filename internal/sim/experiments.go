package sim

import (
	"fmt"
	"time"

	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/history"
	"mediacache/internal/media"
	"mediacache/internal/policy/blocklru"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/policy/simple"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// vt converts a request counter to a virtual time.
func vt(n int64) vtime.Time { return vtime.Time(n) }

// Experiment defaults, matching Section 3.3: 10,000 requests against the
// 576-clip repository under Zipf(θ=0.27), all generators seeded.
const (
	DefaultSeed     uint64 = 42
	DefaultRequests        = 10000
)

// Cache-size ratios (S_T/S_DB) used by the figures.
var (
	// RatiosFigure2 is the x-axis of Figures 2 and 3.
	RatiosFigure2 = []float64{0.0125, 0.1, 0.2, 0.3, 0.5, 0.75}
	// RatiosFigure5 is the x-axis of Figure 5.
	RatiosFigure5 = []float64{0.025, 0.05, 0.1, 0.15, 0.2, 0.25}
	// ShiftsFigure6 is the shift-id sweep of Figures 6.a and 7.a.
	ShiftsFigure6 = []int{0, 100, 200, 300, 400, 500}
	// RatioFigure6 is the fixed S_T/S_DB of Figures 6 and 7.
	RatioFigure6 = 0.125
)

// Series is one labeled curve of a figure: Y[i] corresponds to X[i].
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// CellMetrics labels the engine counters of one sweep cell, e.g.
// "lruk:2@0.1" for policy lruk:2 at cache ratio 0.1.
type CellMetrics struct {
	Label string
	Metrics
}

// Figure is a reproduced table/figure: a set of series over a shared axis.
// Cells carries the per-cell engine counters of the sweep that produced
// it, in canonical cell order; rendering ignores it, so figures compare
// equal across worker counts on everything but wall time.
type Figure struct {
	ID     string // e.g. "2a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Cells  []CellMetrics
}

// TotalMetrics sums the figure's per-cell counters. Wall is total
// compute across cells, not elapsed time.
func (f *Figure) TotalMetrics() Metrics {
	var total Metrics
	for _, c := range f.Cells {
		total.Add(c.Metrics)
	}
	return total
}

// Options configures an experiment run.
type Options struct {
	Seed     uint64
	Requests int
	// Parallel is the worker count of the sweep pool: 0 uses
	// runtime.GOMAXPROCS(0), 1 forces the sequential path, N > 1 runs N
	// workers. Figure output is byte-identical at every setting.
	Parallel int
	// Faults injects deterministic fetch failures on cacheable misses
	// (chaos mode). Each sweep cell derives its own injector from Seed and
	// the cell coordinates, so a given (profile, seed) pair always yields
	// the same fault schedule and the same figure at any worker count. The
	// zero profile is disabled and leaves every run byte-identical to a
	// fault-free build.
	Faults fault.Profile
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.Requests == 0 {
		o.Requests = DefaultRequests
	}
	return o
}

// metric selects what a sweep records.
type metric int

const (
	metricHitRate metric = iota
	metricByteHitRate
)

// sweepRatios runs each policy spec across cache-size ratios on repo and
// returns one series per spec, plus the per-cell engine counters. Every
// (spec, ratio) cell uses a fresh cache and an identically seeded
// generator, per the paper's footnote 5; cells are independent, so the
// pool fans them out across opt.Parallel workers and reassembles in
// canonical (spec-major, ratio-minor) order.
func sweepRatios(repo *media.Repository, specs []string, ratios []float64, m metric, opt Options) ([]Series, []CellMetrics, error) {
	opt = opt.withDefaults()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, nil, err
	}
	pmf := workload.MustNewGenerator(dist, opt.Seed).PMF()
	type cellOut struct {
		name string
		y    float64
		m    Metrics
	}
	nr := len(ratios)
	cells, err := mapCells(opt.Parallel, len(specs)*nr, func(i int) (cellOut, error) {
		spec, ratio := specs[i/nr], ratios[i%nr]
		cache, err := NewCache(spec, repo, repo.CacheSizeForRatio(ratio), pmf, opt.Seed,
			opt.faultOptions(spec, fmt.Sprint(ratio))...)
		if err != nil {
			return cellOut{}, fmt.Errorf("building %q at ratio %v: %w", spec, ratio, err)
		}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		res, err := Run(cache.Policy().Name(), cache, gen,
			workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
		if err != nil {
			return cellOut{}, err
		}
		y := res.Stats.HitRate()
		if m == metricByteHitRate {
			y = res.Stats.ByteHitRate()
		}
		return cellOut{name: cache.Policy().Name(), y: y, m: res.Metrics}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	series := make([]Series, len(specs))
	metrics := make([]CellMetrics, 0, len(cells))
	for si, spec := range specs {
		s := Series{Label: cells[si*nr].name}
		for ri, ratio := range ratios {
			c := cells[si*nr+ri]
			s.X = append(s.X, ratio)
			s.Y = append(s.Y, c.y)
			metrics = append(metrics, CellMetrics{
				Label:   fmt.Sprintf("%s@%v", spec, ratio),
				Metrics: c.m,
			})
		}
		series[si] = s
	}
	return series, metrics, nil
}

// Figure2a reproduces Figure 2.a: cache hit rate of Simple, LRU-2,
// GreedyDual and Random on the 576-clip variable-size repository.
func Figure2a(opt Options) (*Figure, error) {
	series, cells, err := sweepRatios(media.PaperRepository(),
		[]string{"simple", "lruk:2", "greedydual", "random"},
		RatiosFigure2, metricHitRate, opt)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "2a",
		Title:  "Cache hit rate, variable-sized clips (Simple vs LRU-2 vs GreedyDual vs Random)",
		XLabel: "S_T/S_DB",
		YLabel: "Cache hit rate (%)",
		Series: series,
		Cells:  cells,
	}, nil
}

// Figure2b reproduces Figure 2.b: byte hit rate of the same techniques.
func Figure2b(opt Options) (*Figure, error) {
	series, cells, err := sweepRatios(media.PaperRepository(),
		[]string{"simple", "lruk:2", "greedydual", "random"},
		RatiosFigure2, metricByteHitRate, opt)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "2b",
		Title:  "Cache byte hit rate, variable-sized clips",
		XLabel: "S_T/S_DB",
		YLabel: "Byte hit rate (%)",
		Series: series,
		Cells:  cells,
	}, nil
}

// Figure3 reproduces Figure 3: LRU-2 vs GreedyDual on equi-sized clips,
// where GreedyDual's size-only priorities degenerate to coin flips.
func Figure3(opt Options) (*Figure, error) {
	series, cells, err := sweepRatios(media.PaperEquiRepository(),
		[]string{"lruk:2", "greedydual"},
		RatiosFigure2, metricHitRate, opt)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "3",
		Title:  "Cache hit rate, equi-sized clips (LRU-2 vs GreedyDual)",
		XLabel: "S_T/S_DB",
		YLabel: "Cache hit rate (%)",
		Series: series,
		Cells:  cells,
	}, nil
}

// Figure5a reproduces Figure 5.a: DYNSimple, IGD, LRU-2 and GreedyDual on
// the equi-sized repository.
func Figure5a(opt Options) (*Figure, error) {
	series, cells, err := sweepRatios(media.PaperEquiRepository(),
		[]string{"dynsimple:2", "igd:2", "lruk:2", "greedydual"},
		RatiosFigure5, metricHitRate, opt)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "5a",
		Title:  "Cache hit rate, equi-sized clips (new techniques)",
		XLabel: "S_T/S_DB",
		YLabel: "Cache hit rate (%)",
		Series: series,
		Cells:  cells,
	}, nil
}

// Figure5b reproduces Figure 5.b: DYNSimple(K=32), LRU-S2, LRU-2 and
// GreedyDual on the variable-size repository. The paper runs DYNSimple with
// K=32 here ("DYNSimple employs K=32 references ... while K is 2 with
// LRU-SK").
func Figure5b(opt Options) (*Figure, error) {
	series, cells, err := sweepRatios(media.PaperRepository(),
		[]string{"dynsimple:32", "lrusk:2", "lruk:2", "greedydual"},
		RatiosFigure5, metricHitRate, opt)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "5b",
		Title:  "Cache hit rate, variable-sized clips (new techniques)",
		XLabel: "S_T/S_DB",
		YLabel: "Cache hit rate (%)",
		Series: series,
		Cells:  cells,
	}, nil
}

// shiftPolicies are the Figure 6 technique specs.
var shiftPolicies = []string{"simple", "dynsimple:2", "dynsimple:32", "lrusk:2", "igd:2", "greedydual"}

// Figure6a reproduces Figure 6.a: the theoretical cache hit rate after
// 10,000 requests at each shift value, S_T/S_DB = 0.125. The shifts are
// visited cumulatively in one continuous run (g = 0, 100, …, 500, each for
// 10,000 requests) so that each phase starts with the cache polluted by the
// previous distribution's hot set — this is what exposes the adaptation
// differences the paper reports (e.g. GreedyDual-Freq falling below plain
// GreedyDual for g > 0 in Figure 7.a).
func Figure6a(opt Options) (*Figure, error) {
	return shiftSweep("6a",
		"Theoretical cache hit rate vs shift id (Simple, DYNSimple, LRU-SK, IGD, GreedyDual)",
		shiftPolicies, opt)
}

// Figure7a reproduces Figure 7.a: IGD vs GreedyDual vs GreedyDual-Freq
// across shift values.
func Figure7a(opt Options) (*Figure, error) {
	return shiftSweep("7a",
		"Theoretical cache hit rate vs shift id (IGD vs GreedyDual vs GreedyDual-Freq)",
		[]string{"igd:2", "greedydual", "gdfreq"}, opt)
}

// shiftSweep runs each spec through one continuous schedule visiting every
// shift value for opt.Requests requests, recording the theoretical hit rate
// at the end of each phase.
func shiftSweep(id, title string, specs []string, opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Shift ID (g)",
		YLabel: "Theoretical cache hit rate (%)",
	}
	sched := make(workload.Schedule, len(ShiftsFigure6))
	for i, g := range ShiftsFigure6 {
		sched[i] = workload.Phase{Shift: g, Requests: opt.Requests}
	}
	// Sample the theoretical rate every 100 requests and report the average
	// across each phase: Figure 7.a compares the "average cache hit rate"
	// per shift value, which is what separates fast adapters (IGD) from slow
	// ones (GreedyDual-Freq) — an endpoint sample would hide the transient.
	const window = 100
	windowsPerPhase := opt.Requests / window
	if windowsPerPhase == 0 {
		windowsPerPhase = 1
	}
	// One cell per technique: the continuous schedule is inherently
	// sequential within a spec, but the specs are independent.
	type cellOut struct {
		s Series
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, len(specs), func(i int) (cellOut, error) {
		spec := specs[i]
		gen := workload.MustNewGenerator(dist, opt.Seed)
		cache, err := NewCache(spec, repo, capacity, gen.PMF(), opt.Seed,
			opt.faultOptions(id, spec)...)
		if err != nil {
			return cellOut{}, err
		}
		cfg := RunConfig{WindowSize: window, OnPhaseStart: simpleUpdater(cache)}
		res, err := Run(cache.Policy().Name(), cache, gen, sched, cfg)
		if err != nil {
			return cellOut{}, err
		}
		s := Series{Label: cache.Policy().Name()}
		for pi, g := range ShiftsFigure6 {
			lo := pi * windowsPerPhase
			hi := lo + windowsPerPhase
			if hi > len(res.Windows) {
				hi = len(res.Windows)
			}
			if lo >= hi {
				break
			}
			var sum float64
			for _, w := range res.Windows[lo:hi] {
				sum += w.Theoretical
			}
			s.X = append(s.X, float64(g))
			s.Y = append(s.Y, sum/float64(hi-lo))
		}
		return cellOut{s: s, m: res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		fig.Series = append(fig.Series, c.s)
		fig.Cells = append(fig.Cells, CellMetrics{Label: specs[i], Metrics: c.m})
	}
	return fig, nil
}

// simpleUpdater returns an OnPhaseStart hook that hands the off-line Simple
// technique the accurate frequencies of each new phase's distribution, as
// Section 4.4.1 prescribes. Other policies ignore the hook.
func simpleUpdater(cache *core.Cache) func(workload.Phase, []float64) {
	switch p := cache.Policy().(type) {
	case *simple.Policy:
		return func(_ workload.Phase, pmf []float64) { _ = p.SetFrequencies(pmf) }
	case *simple.Variant:
		return func(_ workload.Phase, pmf []float64) { _ = p.SetFrequencies(pmf) }
	default:
		return nil
	}
}

// Figure6b reproduces Figure 6.b: the transient response to a shift change.
// The workload issues 20,000 requests at g=200 followed by 10,000 at g=300;
// the theoretical hit rate is sampled every 100 requests. The figure's
// x-axis covers requests 10,000–30,000 with the drop at 20,000.
func Figure6b(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	// Phase lengths scale with opt.Requests; the default 10,000 reproduces
	// the paper's 20,000 + 10,000 protocol with the drop at request 20,000.
	return transient("6b",
		"Theoretical cache hit rate every 100 requests across a g=200 to g=300 shift",
		shiftPolicies,
		workload.Schedule{{Shift: 200, Requests: 2 * opt.Requests}, {Shift: 300, Requests: opt.Requests}},
		opt)
}

// Figure7b reproduces Figure 7.b: IGD vs GreedyDual vs GreedyDual-Freq
// transients. The workload issues 10,000 requests at g=0, then 10,000 at
// g=200 (the paper fixes S_T/S_DB = 0.125 and changes g at request 10,000;
// the destination shift value is our documented choice).
func Figure7b(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	return transient("7b",
		"Theoretical cache hit rate every 100 requests across a g=0 to g=200 shift",
		[]string{"igd:2", "greedydual", "gdfreq"},
		workload.Schedule{{Shift: 0, Requests: opt.Requests}, {Shift: 200, Requests: opt.Requests}},
		opt)
}

// transient runs each spec through sched sampling windows of 100 requests;
// X is the request id, Y the theoretical hit rate.
func transient(id, title string, specs []string, sched workload.Schedule, opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Request ID",
		YLabel: "Theoretical cache hit rate (%)",
	}
	type cellOut struct {
		s Series
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, len(specs), func(i int) (cellOut, error) {
		spec := specs[i]
		gen := workload.MustNewGenerator(dist, opt.Seed)
		if err := gen.SetShift(sched[0].Shift); err != nil {
			return cellOut{}, err
		}
		cache, err := NewCache(spec, repo, capacity, gen.PMF(), opt.Seed,
			opt.faultOptions(id, spec)...)
		if err != nil {
			return cellOut{}, err
		}
		cfg := RunConfig{WindowSize: 100, OnPhaseStart: simpleUpdater(cache)}
		res, err := Run(cache.Policy().Name(), cache, gen, sched, cfg)
		if err != nil {
			return cellOut{}, err
		}
		s := Series{Label: cache.Policy().Name()}
		for _, w := range res.Windows {
			s.X = append(s.X, float64(w.EndRequest))
			s.Y = append(s.Y, w.Theoretical)
		}
		return cellOut{s: s, m: res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		fig.Series = append(fig.Series, c.s)
		fig.Cells = append(fig.Cells, CellMetrics{Label: specs[i], Metrics: c.m})
	}
	return fig, nil
}

// QualityKs is the history-depth sweep of the Section 4.1 estimate-quality
// study.
var QualityKs = []int{2, 4, 8, 16, 32, 60}

// Quality reproduces the Section 4.1 measurement: the estimate-quality
// metric E = sqrt(Σ (f̂_i − f_i)²) as a function of K, after opt.Requests
// references to the 576-clip repository. The paper reports E improving from
// 0.006 (K=2) to 0.0006 (K=60).
func Quality(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	type cellOut struct {
		e float64
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, len(QualityKs), func(i int) (cellOut, error) {
		start := time.Now()
		gen := workload.MustNewGenerator(dist, opt.Seed)
		truth := gen.PMF()
		tracker := history.NewTracker(repo.N(), QualityKs[i])
		var now int64
		for r := 0; r < opt.Requests; r++ {
			now++
			tracker.Observe(gen.Next(), vt(now))
		}
		est := tracker.EstimatedFrequencies(vt(now))
		return cellOut{
			e: history.Quality(est, truth),
			m: Metrics{Requests: uint64(opt.Requests), Wall: time.Since(start)},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	s := Series{Label: "E(K)"}
	fig := &Figure{
		ID:     "quality",
		Title:  "Frequency-estimate quality E vs history depth K (Section 4.1)",
		XLabel: "K",
		YLabel: "E = sqrt(sum (est-true)^2)",
	}
	for i, k := range QualityKs {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, cells[i].e)
		fig.Cells = append(fig.Cells, CellMetrics{Label: fmt.Sprintf("K=%d", k), Metrics: cells[i].m})
	}
	fig.Series = []Series{s}
	return fig, nil
}

// SkewMeans is the Zipf-mean sweep of the Section 4.4 skew study (θ=0 is
// the most skewed, θ=1 uniform).
var SkewMeans = []float64{0, 0.27, 0.5, 0.75, 1.0}

// Skew reproduces the closing Section 4.4 observation: with a more skewed
// pattern the techniques converge; with a more uniform one DYNSimple wins by
// a wider margin. Hit rate at S_T/S_DB = 0.125 on the variable repository.
func Skew(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	specs := []string{"dynsimple:2", "igd:2", "lrusk:2", "greedydual", "lruk:2"}
	fig := &Figure{
		ID:     "skew",
		Title:  "Cache hit rate vs Zipf mean (Section 4.4 skew sweep)",
		XLabel: "Zipf mean (theta)",
		YLabel: "Cache hit rate (%)",
	}
	type cellOut struct {
		name string
		y    float64
		m    Metrics
	}
	nm := len(SkewMeans)
	cells, err := mapCells(opt.Parallel, len(specs)*nm, func(i int) (cellOut, error) {
		spec, mean := specs[i/nm], SkewMeans[i%nm]
		dist, err := zipf.New(repo.N(), mean)
		if err != nil {
			return cellOut{}, err
		}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		cache, err := NewCache(spec, repo, capacity, gen.PMF(), opt.Seed,
			opt.faultOptions("skew", spec, fmt.Sprint(mean))...)
		if err != nil {
			return cellOut{}, err
		}
		res, err := Run(cache.Policy().Name(), cache, gen,
			workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{name: cache.Policy().Name(), y: res.Stats.HitRate(), m: res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		s := Series{Label: cells[si*nm].name}
		for mi, mean := range SkewMeans {
			c := cells[si*nm+mi]
			s.X = append(s.X, mean)
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@theta=%v", spec, mean),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// BlockSizes is the block-size sweep of the footnote 3 ablation.
var BlockSizes = []media.Bytes{media.MB, 8 * media.MB, 64 * media.MB, 256 * media.MB, media.GB}

// Blocks reproduces the footnote 3 / Figure 5.a discussion: a block-
// partitioned LRU-2 cache across block sizes, against DYNSimple and IGD
// reference points, on the variable repository at S_T/S_DB = 0.125.
func Blocks(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "blocks",
		Title:  "Block-partitioned LRU-2 vs DYNSimple/IGD (footnote 3 ablation)",
		XLabel: "Block size (bytes)",
		YLabel: "Cache hit rate (%)",
	}
	// Cells: one per block size, then one per clip-grained reference spec.
	refSpecs := []string{"dynsimple:2", "igd:2"}
	nb := len(BlockSizes)
	type cellOut struct {
		label string
		name  string
		y     float64
		m     Metrics
	}
	cells, err := mapCells(opt.Parallel, nb+len(refSpecs), func(i int) (cellOut, error) {
		sched := workload.Schedule{{Shift: 0, Requests: opt.Requests}}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		if i < nb {
			bs := BlockSizes[i]
			cache, err := blocklru.New(repo, capacity, bs, 2)
			if err != nil {
				return cellOut{}, err
			}
			res, err := Run(cache.Name(), cache, gen, sched, RunConfig{})
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{
				label: fmt.Sprintf("block@%v", bs),
				name:  cache.Name(),
				y:     res.Stats.HitRate(),
				m:     res.Metrics,
			}, nil
		}
		spec := refSpecs[i-nb]
		cache, err := NewCache(spec, repo, capacity, nil, opt.Seed,
			opt.faultOptions("blocks", spec)...)
		if err != nil {
			return cellOut{}, err
		}
		res, err := Run(cache.Policy().Name(), cache, gen, sched, RunConfig{})
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{label: spec, name: cache.Policy().Name(), y: res.Stats.HitRate(), m: res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	blockSeries := Series{Label: "Block-LRU-2"}
	for i, bs := range BlockSizes {
		blockSeries.X = append(blockSeries.X, float64(bs))
		blockSeries.Y = append(blockSeries.Y, cells[i].y)
	}
	fig.Series = append(fig.Series, blockSeries)
	// Flat reference lines for the clip-grained techniques.
	for i := nb; i < len(cells); i++ {
		s := Series{Label: cells[i].name}
		for _, bs := range BlockSizes {
			s.X = append(s.X, float64(bs))
			s.Y = append(s.Y, cells[i].y)
		}
		fig.Series = append(fig.Series, s)
	}
	for _, c := range cells {
		fig.Cells = append(fig.Cells, CellMetrics{Label: c.label, Metrics: c.m})
	}
	return fig, nil
}

// Refinement is the DYNSimple victim-refinement ablation (DESIGN.md §6.1):
// Figure 4's phase-2 size-descending eviction versus plain ascending
// byte-freq order, across the Figure 5.b ratios.
func Refinement(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "refinement",
		Title:  "DYNSimple victim refinement ablation (Figure 4 phase 2)",
		XLabel: "S_T/S_DB",
		YLabel: "Cache hit rate (%)",
	}
	// Grid: 2 variants (with/without refinement) × RatiosFigure5, variant-major.
	variants := [][]dynsimple.Option{nil, {dynsimple.WithoutRefinement()}}
	nr := len(RatiosFigure5)
	type cellOut struct {
		name string
		y    float64
		m    Metrics
	}
	cells, err := mapCells(opt.Parallel, len(variants)*nr, func(i int) (cellOut, error) {
		ratio := RatiosFigure5[i%nr]
		p, err := dynsimple.New(repo.N(), 2, variants[i/nr]...)
		if err != nil {
			return cellOut{}, err
		}
		cache, err := core.New(repo, repo.CacheSizeForRatio(ratio), p,
			opt.faultOptions("refinement", p.Name(), fmt.Sprint(ratio))...)
		if err != nil {
			return cellOut{}, err
		}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		res, err := Run(p.Name(), cache, gen,
			workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{name: p.Name(), y: res.Stats.HitRate(), m: res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for v := range variants {
		s := Series{Label: cells[v*nr].name}
		for j, ratio := range RatiosFigure5 {
			c := cells[v*nr+j]
			s.X = append(s.X, ratio)
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%v", c.name, ratio),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Experiments maps experiment ids to their functions, in presentation order.
var Experiments = []struct {
	ID  string
	Run func(Options) (*Figure, error)
}{
	{"2a", Figure2a},
	{"2b", Figure2b},
	{"3", Figure3},
	{"5a", Figure5a},
	{"5b", Figure5b},
	{"6a", Figure6a},
	{"6b", Figure6b},
	{"7a", Figure7a},
	{"7b", Figure7b},
	{"quality", Quality},
	{"skew", Skew},
	{"blocks", Blocks},
	{"refinement", Refinement},
	// Extensions beyond the paper's figures (see extensions.go).
	{"gdsp", GDSPTradeoff},
	{"latency", Latency},
	{"region", Region},
	{"taxonomy", Taxonomy},
	{"coop", Coop},
	{"fiverule", FiveRule},
	{"drift", Drift},
	{"admission", Admission},
	{"optimal", Optimal},
	{"churn", Churn},
}

// ByID returns the experiment function registered under id.
func ByID(id string) (func(Options) (*Figure, error), bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

package sim

import "testing"

func TestDriftClaims(t *testing.T) {
	fig, err := Drift(Options{Seed: DefaultSeed, Requests: 5000})
	if err != nil {
		t.Fatal(err)
	}
	dyn2 := seriesByLabel(t, fig, "DYNSimple(K=2)")
	dyn32 := seriesByLabel(t, fig, "DYNSimple(K=32)")
	// Short memory beats long memory under the fastest drift.
	if dyn2.Y[0] <= dyn32.Y[0] {
		t.Errorf("fastest drift: DYNSimple(2) %.3f <= DYNSimple(32) %.3f", dyn2.Y[0], dyn32.Y[0])
	}
	// Slower drift helps everyone: each series should trend upward from the
	// fastest to the slowest period.
	for _, s := range fig.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last <= first-0.01 {
			t.Errorf("%s: hit rate should improve as drift slows (%.3f -> %.3f)",
				s.Label, first, last)
		}
	}
	// The long-memory technique gains the most from slowing drift.
	gain32 := dyn32.Y[len(dyn32.Y)-1] - dyn32.Y[0]
	gain2 := dyn2.Y[len(dyn2.Y)-1] - dyn2.Y[0]
	if gain32 <= gain2 {
		t.Errorf("DYNSimple(32) should gain more from slow drift: %.3f vs %.3f", gain32, gain2)
	}
}

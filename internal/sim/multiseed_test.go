package sim

import (
	"errors"
	"testing"
)

func TestReplicateValidation(t *testing.T) {
	if _, _, err := Replicate(nil, Options{}, 3); err == nil {
		t.Error("nil run should fail")
	}
	if _, _, err := Replicate(Figure3, Options{}, 0); err == nil {
		t.Error("zero seeds should fail")
	}
	if _, _, err := Replicate(Figure3, Options{}, -2); err == nil {
		t.Error("negative seeds should fail")
	}
}

func TestReplicateAggregates(t *testing.T) {
	opt := Options{Seed: 7, Requests: 1500}
	mean, std, err := Replicate(Figure3, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mean.Series) != 2 || len(std.Series) != 2 {
		t.Fatalf("series counts: mean %d std %d", len(mean.Series), len(std.Series))
	}
	single, err := Figure3(opt)
	if err != nil {
		t.Fatal(err)
	}
	for si := range mean.Series {
		if len(mean.Series[si].Y) != len(single.Series[si].Y) {
			t.Fatal("mean figure shape mismatch")
		}
		for yi := range mean.Series[si].Y {
			m := mean.Series[si].Y[yi]
			s := std.Series[si].Y[yi]
			if m < 0 || m > 1 {
				t.Fatalf("mean out of range: %v", m)
			}
			if s < 0 || s > 0.5 {
				t.Fatalf("implausible std: %v", s)
			}
		}
	}
	// Replication across different seeds must produce nonzero variance
	// somewhere (the workload realizations differ).
	var anyVariance bool
	for _, s := range std.Series {
		for _, y := range s.Y {
			if y > 0 {
				anyVariance = true
			}
		}
	}
	if !anyVariance {
		t.Fatal("three different seeds produced identical results everywhere")
	}
}

func TestReplicateSingleSeedZeroStd(t *testing.T) {
	mean, std, err := Replicate(Figure3, Options{Seed: 5, Requests: 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range std.Series {
		for _, y := range s.Y {
			if y != 0 {
				t.Fatal("single replica must have zero std")
			}
		}
	}
	if mean.Series[0].Y[0] <= 0 {
		t.Fatal("mean should carry the single replica's values")
	}
}

func TestReplicatePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	fail := func(Options) (*Figure, error) { return nil, boom }
	if _, _, err := Replicate(fail, Options{}, 2); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestReplicateDetectsShapeMismatch(t *testing.T) {
	odd := func(o Options) (*Figure, error) {
		f := &Figure{ID: "x", Series: []Series{{Label: "a", X: []float64{1}, Y: []float64{1}}}}
		if o.Seed%2 == 0 {
			f.Series[0].Y = nil // different shape for even seeds
		}
		return f, nil
	}
	if _, _, err := Replicate(odd, Options{Seed: 1}, 2); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

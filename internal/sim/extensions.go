package sim

// extensions.go defines experiments that go beyond the paper's figures:
// the GDS-Popularity trade-off the paper mentions in passing (Section 1),
// the service-quality metrics of Section 1 (startup latency, region
// throughput), the full greedy-technique taxonomy at the standard operating
// point, and the Section 5 tree-based-implementation speed comparison.

import (
	"fmt"
	"time"

	"mediacache/internal/media"
	"mediacache/internal/netsim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// GDSPTradeoff quantifies the Section 1 remark that GDS-Popularity
// "enhances byte hit rate at the expense of cache hit rate": for each
// cache ratio it reports hit rate and byte hit rate for GDSP, GreedyDual
// and IGD. Series labels carry a [hit] / [byte] suffix.
func GDSPTradeoff(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "gdsp",
		Title:  "GDS-Popularity trade-off: byte hit rate up, hit rate down (Section 1 remark)",
		XLabel: "S_T/S_DB",
		YLabel: "Rate (%)",
	}
	specs := []string{"gdsp", "greedydual", "igd:2"}
	nr := len(RatiosFigure5)
	type cellOut struct {
		name      string
		hit, byte float64
		m         Metrics
	}
	cells, err := mapCells(opt.Parallel, len(specs)*nr, func(i int) (cellOut, error) {
		spec, ratio := specs[i/nr], RatiosFigure5[i%nr]
		cache, err := NewCache(spec, repo, repo.CacheSizeForRatio(ratio), nil, opt.Seed)
		if err != nil {
			return cellOut{}, err
		}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		res, err := Run(cache.Policy().Name(), cache, gen,
			workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{
			name: cache.Policy().Name(),
			hit:  res.Stats.HitRate(),
			byte: res.Stats.ByteHitRate(),
			m:    res.Metrics,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		name := cells[si*nr].name
		hitSeries := Series{Label: name + " [hit]"}
		byteSeries := Series{Label: name + " [byte]"}
		for j, ratio := range RatiosFigure5 {
			c := cells[si*nr+j]
			hitSeries.X = append(hitSeries.X, ratio)
			hitSeries.Y = append(hitSeries.Y, c.hit)
			byteSeries.X = append(byteSeries.X, ratio)
			byteSeries.Y = append(byteSeries.Y, c.byte)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%v", spec, ratio),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, hitSeries, byteSeries)
	}
	return fig, nil
}

// LatencyAllocations is the per-stream bandwidth sweep of the latency
// extension experiment.
var LatencyAllocations = []media.BitsPerSecond{
	1 * media.Mbps, 2 * media.Mbps, 4 * media.Mbps, 8 * media.Mbps,
}

// Latency reproduces the Section 1 "average startup latency" metric: the
// mean startup latency per request (cache hits cost zero; misses stream at
// the allocated per-stream bandwidth with the prefetch rule of [10]),
// across network allocations, for a DYNSimple cache at S_T/S_DB = 0.125
// versus no cache at all.
func Latency(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	const admission = netsim.Seconds(0.5)
	fig := &Figure{
		ID:     "latency",
		Title:  "Average startup latency vs allocated bandwidth (Section 1 metric)",
		XLabel: "Allocated bandwidth (bps)",
		YLabel: "Average startup latency (s)",
	}
	// Grid: cache-mode-major, allocation-minor.
	modes := []bool{true, false}
	na := len(LatencyAllocations)
	type cellOut struct {
		y float64
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, len(modes)*na, func(i int) (cellOut, error) {
		withCache, alloc := modes[i/na], LatencyAllocations[i%na]
		start := time.Now()
		gen := workload.MustNewGenerator(dist, opt.Seed)
		cache, err := NewCache("dynsimple:2", repo, repo.CacheSizeForRatio(RatioFigure6), nil, opt.Seed)
		if err != nil {
			return cellOut{}, err
		}
		var total netsim.Seconds
		for i := 0; i < opt.Requests; i++ {
			id := gen.Next()
			hit := false
			if withCache {
				out, err := cache.Request(id)
				if err != nil {
					return cellOut{}, err
				}
				hit = out.IsHit()
			}
			if hit {
				continue // local storage: no startup latency
			}
			lat, err := netsim.StartupLatency(repo.Clip(id), alloc, admission)
			if err != nil {
				return cellOut{}, err
			}
			total += lat
		}
		m := metricsFromStats(cache.Stats(), time.Since(start))
		m.Requests = uint64(opt.Requests) // the no-cache mode never touches the cache
		return cellOut{y: float64(total) / float64(opt.Requests), m: m}, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, withCache := range modes {
		label := "no cache"
		if withCache {
			label = "DYNSimple(K=2) cache"
		}
		s := Series{Label: label}
		for j, alloc := range LatencyAllocations {
			c := cells[mi*na+j]
			s.X = append(s.X, float64(alloc))
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%v", label, alloc),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// RegionDeviceCounts is the device sweep of the region-throughput
// experiment.
var RegionDeviceCounts = []int{2, 4, 8, 16, 32}

// Region reproduces the Section 1 "throughput of a geographical region"
// metric: devices sharing one base station (20 Mbps — room for five
// concurrent 4 Mbps video streams) with and without caches. Throughput is
// the fraction of requests serviced (cache hit or admitted stream).
func Region(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	const linkBW = 20 * media.Mbps
	rounds := opt.Requests / 10
	if rounds == 0 {
		rounds = 1
	}
	fig := &Figure{
		ID:     "region",
		Title:  "Region throughput vs device count, 20 Mbps base station (Section 1 metric)",
		XLabel: "Devices",
		YLabel: "Throughput (%)",
	}
	// Grid: ratio-major, device-count-minor.
	ratios := []float64{0, 0.05, 0.125}
	nd := len(RegionDeviceCounts)
	type cellOut struct {
		y float64
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, len(ratios)*nd, func(i int) (cellOut, error) {
		ratio, nDev := ratios[i/nd], RegionDeviceCounts[i%nd]
		start := time.Now()
		link, err := netsim.NewLink(linkBW)
		if err != nil {
			return cellOut{}, err
		}
		devices := make([]*netsim.Device, nDev)
		caches := make([]Requester, nDev)
		for i := range devices {
			// ratio 0 approximated by the smallest admissible cache —
			// one byte more than nothing is impossible, so use a cache
			// that only fits the smallest audio clips.
			capacity := repo.CacheSizeForRatio(ratio)
			if ratio == 0 {
				capacity = 3 * media.MB
			}
			cache, err := NewCache("dynsimple:2", repo, capacity, nil, opt.Seed+uint64(i))
			if err != nil {
				return cellOut{}, err
			}
			caches[i] = cache
			devices[i] = &netsim.Device{
				ID:    i,
				Cache: cache,
				Gen:   workload.MustNewGenerator(dist, opt.Seed+uint64(100+i)),
			}
		}
		region, err := netsim.NewRegion(link, devices)
		if err != nil {
			return cellOut{}, err
		}
		if err := region.Run(rounds); err != nil {
			return cellOut{}, err
		}
		var m Metrics
		for _, cache := range caches {
			m.Add(metricsFromStats(cache.Stats(), 0))
		}
		m.Wall = time.Since(start)
		return cellOut{y: region.Stats().Throughput(), m: m}, nil
	})
	if err != nil {
		return nil, err
	}
	for ri, ratio := range ratios {
		label := fmt.Sprintf("cache %.1f%%", ratio*100)
		if ratio == 0 {
			label = "no cache"
		}
		s := Series{Label: label}
		for j, nDev := range RegionDeviceCounts {
			c := cells[ri*nd+j]
			s.X = append(s.X, float64(nDev))
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%d-devices", label, nDev),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Taxonomy runs every implemented greedy technique at the standard
// operating point (paper repository, S_T/S_DB = 0.125, 10,000 requests):
// the full Section 1 footnote 2 taxonomy — recency-based (LRU-K),
// frequency-based (LFU, LFU-DA), size-aware (GreedyDual, LRU-SK),
// function-based (DYNSimple, IGD, GreedyDual-Freq, GDSP) and randomized
// (Random) — in one table. X encodes nothing (single operating point); one
// point per series.
func Taxonomy(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	pmf := workload.MustNewGenerator(dist, opt.Seed).PMF()
	fig := &Figure{
		ID:     "taxonomy",
		Title:  "All techniques at S_T/S_DB = 0.125 (hit / byte-hit %)",
		XLabel: "metric (0=hit rate, 1=byte hit rate)",
		YLabel: "Rate (%)",
	}
	specs := []string{
		"simple", "simple-variant", "dynsimple:2", "dynsimple:32",
		"igd:2", "lrusk:2", "lrusk-tree:2", "greedydual", "gdfreq", "gdsp",
		"lruk:2", "lru", "lfu", "lfu-da", "random",
	}
	type cellOut struct {
		s Series
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, len(specs), func(i int) (cellOut, error) {
		cache, err := NewCache(specs[i], repo, repo.CacheSizeForRatio(RatioFigure6), pmf, opt.Seed)
		if err != nil {
			return cellOut{}, err
		}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		res, err := Run(cache.Policy().Name(), cache, gen,
			workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{
			s: Series{
				Label: cache.Policy().Name(),
				X:     []float64{0, 1},
				Y:     []float64{res.Stats.HitRate(), res.Stats.ByteHitRate()},
			},
			m: res.Metrics,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		fig.Series = append(fig.Series, c.s)
		fig.Cells = append(fig.Cells, CellMetrics{Label: specs[i], Metrics: c.m})
	}
	return fig, nil
}

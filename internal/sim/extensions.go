package sim

// extensions.go defines experiments that go beyond the paper's figures:
// the GDS-Popularity trade-off the paper mentions in passing (Section 1),
// the service-quality metrics of Section 1 (startup latency, region
// throughput), the full greedy-technique taxonomy at the standard operating
// point, and the Section 5 tree-based-implementation speed comparison.

import (
	"fmt"

	"mediacache/internal/media"
	"mediacache/internal/netsim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// GDSPTradeoff quantifies the Section 1 remark that GDS-Popularity
// "enhances byte hit rate at the expense of cache hit rate": for each
// cache ratio it reports hit rate and byte hit rate for GDSP, GreedyDual
// and IGD. Series labels carry a [hit] / [byte] suffix.
func GDSPTradeoff(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "gdsp",
		Title:  "GDS-Popularity trade-off: byte hit rate up, hit rate down (Section 1 remark)",
		XLabel: "S_T/S_DB",
		YLabel: "Rate (%)",
	}
	for _, spec := range []string{"gdsp", "greedydual", "igd:2"} {
		hitSeries := Series{}
		byteSeries := Series{}
		for _, ratio := range RatiosFigure5 {
			cache, err := NewCache(spec, repo, repo.CacheSizeForRatio(ratio), nil, opt.Seed)
			if err != nil {
				return nil, err
			}
			if hitSeries.Label == "" {
				hitSeries.Label = cache.Policy().Name() + " [hit]"
				byteSeries.Label = cache.Policy().Name() + " [byte]"
			}
			gen := workload.MustNewGenerator(dist, opt.Seed)
			res, err := Run(cache.Policy().Name(), cache, gen,
				workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
			if err != nil {
				return nil, err
			}
			hitSeries.X = append(hitSeries.X, ratio)
			hitSeries.Y = append(hitSeries.Y, res.Stats.HitRate())
			byteSeries.X = append(byteSeries.X, ratio)
			byteSeries.Y = append(byteSeries.Y, res.Stats.ByteHitRate())
		}
		fig.Series = append(fig.Series, hitSeries, byteSeries)
	}
	return fig, nil
}

// LatencyAllocations is the per-stream bandwidth sweep of the latency
// extension experiment.
var LatencyAllocations = []media.BitsPerSecond{
	1 * media.Mbps, 2 * media.Mbps, 4 * media.Mbps, 8 * media.Mbps,
}

// Latency reproduces the Section 1 "average startup latency" metric: the
// mean startup latency per request (cache hits cost zero; misses stream at
// the allocated per-stream bandwidth with the prefetch rule of [10]),
// across network allocations, for a DYNSimple cache at S_T/S_DB = 0.125
// versus no cache at all.
func Latency(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	const admission = netsim.Seconds(0.5)
	fig := &Figure{
		ID:     "latency",
		Title:  "Average startup latency vs allocated bandwidth (Section 1 metric)",
		XLabel: "Allocated bandwidth (bps)",
		YLabel: "Average startup latency (s)",
	}
	for _, withCache := range []bool{true, false} {
		label := "no cache"
		if withCache {
			label = "DYNSimple(K=2) cache"
		}
		s := Series{Label: label}
		for _, alloc := range LatencyAllocations {
			gen := workload.MustNewGenerator(dist, opt.Seed)
			cache, err := NewCache("dynsimple:2", repo, repo.CacheSizeForRatio(RatioFigure6), nil, opt.Seed)
			if err != nil {
				return nil, err
			}
			var total netsim.Seconds
			for i := 0; i < opt.Requests; i++ {
				id := gen.Next()
				hit := false
				if withCache {
					out, err := cache.Request(id)
					if err != nil {
						return nil, err
					}
					hit = out.IsHit()
				}
				if hit {
					continue // local storage: no startup latency
				}
				lat, err := netsim.StartupLatency(repo.Clip(id), alloc, admission)
				if err != nil {
					return nil, err
				}
				total += lat
			}
			s.X = append(s.X, float64(alloc))
			s.Y = append(s.Y, float64(total)/float64(opt.Requests))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// RegionDeviceCounts is the device sweep of the region-throughput
// experiment.
var RegionDeviceCounts = []int{2, 4, 8, 16, 32}

// Region reproduces the Section 1 "throughput of a geographical region"
// metric: devices sharing one base station (20 Mbps — room for five
// concurrent 4 Mbps video streams) with and without caches. Throughput is
// the fraction of requests serviced (cache hit or admitted stream).
func Region(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	const linkBW = 20 * media.Mbps
	rounds := opt.Requests / 10
	if rounds == 0 {
		rounds = 1
	}
	fig := &Figure{
		ID:     "region",
		Title:  "Region throughput vs device count, 20 Mbps base station (Section 1 metric)",
		XLabel: "Devices",
		YLabel: "Throughput (%)",
	}
	for _, ratio := range []float64{0, 0.05, 0.125} {
		label := fmt.Sprintf("cache %.1f%%", ratio*100)
		if ratio == 0 {
			label = "no cache"
		}
		s := Series{Label: label}
		for _, nDev := range RegionDeviceCounts {
			link, err := netsim.NewLink(linkBW)
			if err != nil {
				return nil, err
			}
			devices := make([]*netsim.Device, nDev)
			for i := range devices {
				// ratio 0 approximated by the smallest admissible cache —
				// one byte more than nothing is impossible, so use a cache
				// that only fits the smallest audio clips.
				capacity := repo.CacheSizeForRatio(ratio)
				if ratio == 0 {
					capacity = 3 * media.MB
				}
				cache, err := NewCache("dynsimple:2", repo, capacity, nil, opt.Seed+uint64(i))
				if err != nil {
					return nil, err
				}
				devices[i] = &netsim.Device{
					ID:    i,
					Cache: cache,
					Gen:   workload.MustNewGenerator(dist, opt.Seed+uint64(100+i)),
				}
			}
			region, err := netsim.NewRegion(link, devices)
			if err != nil {
				return nil, err
			}
			if err := region.Run(rounds); err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(nDev))
			s.Y = append(s.Y, region.Stats().Throughput())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Taxonomy runs every implemented greedy technique at the standard
// operating point (paper repository, S_T/S_DB = 0.125, 10,000 requests):
// the full Section 1 footnote 2 taxonomy — recency-based (LRU-K),
// frequency-based (LFU, LFU-DA), size-aware (GreedyDual, LRU-SK),
// function-based (DYNSimple, IGD, GreedyDual-Freq, GDSP) and randomized
// (Random) — in one table. X encodes nothing (single operating point); one
// point per series.
func Taxonomy(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	pmf := workload.MustNewGenerator(dist, opt.Seed).PMF()
	fig := &Figure{
		ID:     "taxonomy",
		Title:  "All techniques at S_T/S_DB = 0.125 (hit / byte-hit %)",
		XLabel: "metric (0=hit rate, 1=byte hit rate)",
		YLabel: "Rate (%)",
	}
	specs := []string{
		"simple", "simple-variant", "dynsimple:2", "dynsimple:32",
		"igd:2", "lrusk:2", "lrusk-tree:2", "greedydual", "gdfreq", "gdsp",
		"lruk:2", "lru", "lfu", "lfu-da", "random",
	}
	for _, spec := range specs {
		cache, err := NewCache(spec, repo, repo.CacheSizeForRatio(RatioFigure6), pmf, opt.Seed)
		if err != nil {
			return nil, err
		}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		res, err := Run(cache.Policy().Name(), cache, gen,
			workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{
			Label: cache.Policy().Name(),
			X:     []float64{0, 1},
			Y:     []float64{res.Stats.HitRate(), res.Stats.ByteHitRate()},
		})
	}
	return fig, nil
}

package sim

import (
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/admission"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// AdmissionRatios is the (deliberately small) cache-size sweep of the
// admission-control experiment, where churn pressure is highest.
var AdmissionRatios = []float64{0.0125, 0.025, 0.05, 0.125}

// Admission quantifies the Section 2 future-work scenario through the
// two-touch admission filter: DYNSimple with and without the filter, hit
// rate and byte hit rate, across small cache sizes. The measured outcome —
// byte hit rate up, request hit rate slightly down — is the quantitative
// case for the paper's assumption that every referenced clip is
// materialized when hit rate is the objective (see package admission).
func Admission(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "admission",
		Title:  "Two-touch admission filter vs eager materialization (Section 2 future work)",
		XLabel: "S_T/S_DB",
		YLabel: "Rate (%)",
	}
	// Grid: wrap-mode-major, ratio-minor.
	modes := []bool{false, true}
	nr := len(AdmissionRatios)
	type cellOut struct {
		name      string
		hit, byte float64
		m         Metrics
	}
	cells, err := mapCells(opt.Parallel, len(modes)*nr, func(i int) (cellOut, error) {
		wrap, ratio := modes[i/nr], AdmissionRatios[i%nr]
		var p core.Policy
		p, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
		if err != nil {
			return cellOut{}, err
		}
		if wrap {
			p, err = admission.Wrap(p, repo.N(), 0)
			if err != nil {
				return cellOut{}, err
			}
		}
		cache, err := core.New(repo, repo.CacheSizeForRatio(ratio), p)
		if err != nil {
			return cellOut{}, err
		}
		gen := workload.MustNewGenerator(dist, opt.Seed)
		res, err := Run(p.Name(), cache, gen,
			workload.Schedule{{Shift: 0, Requests: opt.Requests}}, RunConfig{})
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{
			name: p.Name(),
			hit:  res.Stats.HitRate(),
			byte: res.Stats.ByteHitRate(),
			m:    res.Metrics,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for mi := range modes {
		name := cells[mi*nr].name
		hit := Series{Label: name + " [hit]"}
		byteHit := Series{Label: name + " [byte]"}
		for j, ratio := range AdmissionRatios {
			c := cells[mi*nr+j]
			hit.X = append(hit.X, ratio)
			hit.Y = append(hit.Y, c.hit)
			byteHit.X = append(byteHit.X, ratio)
			byteHit.Y = append(byteHit.Y, c.byte)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%v", name, ratio),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, hit, byteHit)
	}
	return fig, nil
}

package sim

import "testing"

func TestOptimalClaims(t *testing.T) {
	fig, err := Optimal(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	classic := seriesByLabel(t, fig, "Belady")
	sizeAware := seriesByLabel(t, fig, "Belady(size-aware)")
	simple := seriesByLabel(t, fig, "Simple")
	dyn := seriesByLabel(t, fig, "DYNSimple")
	for i := range classic.X {
		// The size-aware oracle bounds everything from above.
		if sizeAware.Y[i] < simple.Y[i] || sizeAware.Y[i] < dyn.Y[i] || sizeAware.Y[i] < classic.Y[i] {
			t.Errorf("ratio %v: size-aware Belady (%.3f) is not the upper bound",
				classic.X[i], sizeAware.Y[i])
		}
		// The headline finding: size-blind clairvoyance loses to
		// frequency-only Simple on variable-size clips — size-awareness
		// matters more than perfect future knowledge.
		if classic.Y[i] >= simple.Y[i] {
			t.Errorf("ratio %v: classic Belady (%.3f) >= Simple (%.3f); size-blindness should hurt",
				classic.X[i], classic.Y[i], simple.Y[i])
		}
		// Simple (accurate frequencies) still tops its on-line derivative.
		if simple.Y[i] <= dyn.Y[i] {
			t.Errorf("ratio %v: Simple (%.3f) <= DYNSimple (%.3f)",
				simple.X[i], simple.Y[i], dyn.Y[i])
		}
	}
}

package sim

import (
	"fmt"
	"time"

	"mediacache/internal/media"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// DriftPeriods is the drift-speed sweep of the Drift extension experiment:
// the identity shift advances by one every period requests, so smaller
// periods mean faster churn.
var DriftPeriods = []int{10, 25, 50, 100, 250}

// Drift is an extension beyond the paper's abrupt-shift experiments
// (Section 4.4.1): popularity drifts continuously, one identity step every
// period requests. It measures the observed hit rate of the adaptive
// techniques as a function of drift speed. Techniques with long memories
// (DYNSimple K=32, GreedyDual-Freq) chase a stale target under fast drift;
// short-memory techniques (DYNSimple K=2, LRU-S2) degrade most gracefully.
func Drift(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	fig := &Figure{
		ID:     "drift",
		Title:  "Observed hit rate under continuous popularity drift (extension)",
		XLabel: "Drift period (requests per identity step; smaller = faster drift)",
		YLabel: "Cache hit rate (%)",
	}
	specs := []string{"dynsimple:2", "dynsimple:32", "igd:2", "lrusk:2", "gdfreq", "greedydual"}
	// Grid: spec-major, period-minor.
	np := len(DriftPeriods)
	type cellOut struct {
		name string
		y    float64
		m    Metrics
	}
	cells, err := mapCells(opt.Parallel, len(specs)*np, func(i int) (cellOut, error) {
		spec, period := specs[i/np], DriftPeriods[i%np]
		start := time.Now()
		gen, err := workload.NewDrifting(dist, opt.Seed, period)
		if err != nil {
			return cellOut{}, err
		}
		cache, err := NewCache(spec, repo, capacity, nil, opt.Seed)
		if err != nil {
			return cellOut{}, err
		}
		for i := 0; i < opt.Requests; i++ {
			if _, err := cache.Request(gen.Next()); err != nil {
				return cellOut{}, err
			}
		}
		stats := cache.Stats()
		return cellOut{
			name: cache.Policy().Name(),
			y:    stats.HitRate(),
			m:    metricsFromStats(stats, time.Since(start)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		s := Series{Label: cells[si*np].name}
		for j, period := range DriftPeriods {
			c := cells[si*np+j]
			s.X = append(s.X, float64(period))
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@period=%d", spec, period),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

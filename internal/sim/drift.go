package sim

import (
	"mediacache/internal/media"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// DriftPeriods is the drift-speed sweep of the Drift extension experiment:
// the identity shift advances by one every period requests, so smaller
// periods mean faster churn.
var DriftPeriods = []int{10, 25, 50, 100, 250}

// Drift is an extension beyond the paper's abrupt-shift experiments
// (Section 4.4.1): popularity drifts continuously, one identity step every
// period requests. It measures the observed hit rate of the adaptive
// techniques as a function of drift speed. Techniques with long memories
// (DYNSimple K=32, GreedyDual-Freq) chase a stale target under fast drift;
// short-memory techniques (DYNSimple K=2, LRU-S2) degrade most gracefully.
func Drift(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	fig := &Figure{
		ID:     "drift",
		Title:  "Observed hit rate under continuous popularity drift (extension)",
		XLabel: "Drift period (requests per identity step; smaller = faster drift)",
		YLabel: "Cache hit rate (%)",
	}
	specs := []string{"dynsimple:2", "dynsimple:32", "igd:2", "lrusk:2", "gdfreq", "greedydual"}
	for _, spec := range specs {
		s := Series{}
		for _, period := range DriftPeriods {
			gen, err := workload.NewDrifting(dist, opt.Seed, period)
			if err != nil {
				return nil, err
			}
			cache, err := NewCache(spec, repo, capacity, nil, opt.Seed)
			if err != nil {
				return nil, err
			}
			if s.Label == "" {
				s.Label = cache.Policy().Name()
			}
			for i := 0; i < opt.Requests; i++ {
				if _, err := cache.Request(gen.Next()); err != nil {
					return nil, err
				}
			}
			s.X = append(s.X, float64(period))
			s.Y = append(s.Y, cache.Stats().HitRate())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

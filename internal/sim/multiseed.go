package sim

import (
	"fmt"

	"mediacache/internal/stats"
)

// Replicate runs an experiment across `seeds` consecutive master seeds
// (opt.Seed, opt.Seed+1, …) in parallel and aggregates the replicas: it
// returns one figure whose Y values are the across-seed means and a second
// figure with the sample standard deviations. The paper reports single
// seeded runs (footnote 5); replication quantifies how sensitive each curve
// is to the workload realization.
func Replicate(run func(Options) (*Figure, error), opt Options, seeds int) (mean, std *Figure, err error) {
	if run == nil {
		return nil, nil, fmt.Errorf("sim: experiment function must not be nil")
	}
	if seeds <= 0 {
		return nil, nil, fmt.Errorf("sim: seed count must be positive, got %d", seeds)
	}
	opt = opt.withDefaults()

	// One pool cell per replica; each replica runs its own cells
	// sequentially (Parallel=1) so the total worker count stays bounded by
	// the outer pool instead of multiplying.
	figs, err := mapCells(opt.Parallel, seeds, func(i int) (*Figure, error) {
		o := opt
		o.Seed = opt.Seed + uint64(i)
		o.Parallel = 1
		fig, err := run(o)
		if err != nil {
			return nil, fmt.Errorf("sim: replica %d (seed %d): %w", i, o.Seed, err)
		}
		return fig, nil
	})
	if err != nil {
		return nil, nil, err
	}

	base := figs[0]
	mean = &Figure{
		ID:     base.ID,
		Title:  fmt.Sprintf("%s — mean of %d seeds", base.Title, seeds),
		XLabel: base.XLabel,
		YLabel: base.YLabel,
	}
	std = &Figure{
		ID:     base.ID + "-std",
		Title:  fmt.Sprintf("%s — std dev across %d seeds", base.Title, seeds),
		XLabel: base.XLabel,
		YLabel: "std dev",
	}
	for si, s := range base.Series {
		meanSeries := Series{Label: s.Label, X: append([]float64(nil), s.X...)}
		stdSeries := Series{Label: s.Label, X: append([]float64(nil), s.X...)}
		for yi := range s.Y {
			var acc stats.Accumulator
			for _, fig := range figs {
				if si >= len(fig.Series) || yi >= len(fig.Series[si].Y) {
					return nil, nil, fmt.Errorf("sim: replicas disagree on figure shape (series %d, point %d)", si, yi)
				}
				acc.Add(fig.Series[si].Y[yi])
			}
			sum := acc.Summary()
			meanSeries.Y = append(meanSeries.Y, sum.Mean)
			stdSeries.Y = append(stdSeries.Y, sum.Std)
		}
		mean.Series = append(mean.Series, meanSeries)
		std.Series = append(std.Series, stdSeries)
	}
	return mean, std, nil
}

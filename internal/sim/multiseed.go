package sim

import (
	"fmt"
	"sync"

	"mediacache/internal/stats"
)

// Replicate runs an experiment across `seeds` consecutive master seeds
// (opt.Seed, opt.Seed+1, …) in parallel and aggregates the replicas: it
// returns one figure whose Y values are the across-seed means and a second
// figure with the sample standard deviations. The paper reports single
// seeded runs (footnote 5); replication quantifies how sensitive each curve
// is to the workload realization.
func Replicate(run func(Options) (*Figure, error), opt Options, seeds int) (mean, std *Figure, err error) {
	if run == nil {
		return nil, nil, fmt.Errorf("sim: experiment function must not be nil")
	}
	if seeds <= 0 {
		return nil, nil, fmt.Errorf("sim: seed count must be positive, got %d", seeds)
	}
	opt = opt.withDefaults()

	figs := make([]*Figure, seeds)
	errs := make([]error, seeds)
	var wg sync.WaitGroup
	for i := 0; i < seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opt
			o.Seed = opt.Seed + uint64(i)
			figs[i], errs[i] = run(o)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, nil, fmt.Errorf("sim: replica %d (seed %d): %w", i, opt.Seed+uint64(i), e)
		}
	}

	base := figs[0]
	mean = &Figure{
		ID:     base.ID,
		Title:  fmt.Sprintf("%s — mean of %d seeds", base.Title, seeds),
		XLabel: base.XLabel,
		YLabel: base.YLabel,
	}
	std = &Figure{
		ID:     base.ID + "-std",
		Title:  fmt.Sprintf("%s — std dev across %d seeds", base.Title, seeds),
		XLabel: base.XLabel,
		YLabel: "std dev",
	}
	for si, s := range base.Series {
		meanSeries := Series{Label: s.Label, X: append([]float64(nil), s.X...)}
		stdSeries := Series{Label: s.Label, X: append([]float64(nil), s.X...)}
		for yi := range s.Y {
			var acc stats.Accumulator
			for _, fig := range figs {
				if si >= len(fig.Series) || yi >= len(fig.Series[si].Y) {
					return nil, nil, fmt.Errorf("sim: replicas disagree on figure shape (series %d, point %d)", si, yi)
				}
				acc.Add(fig.Series[si].Y[yi])
			}
			sum := acc.Summary()
			meanSeries.Y = append(meanSeries.Y, sum.Mean)
			stdSeries.Y = append(stdSeries.Y, sum.Std)
		}
		mean.Series = append(mean.Series, meanSeries)
		std.Series = append(std.Series, stdSeries)
	}
	return mean, std, nil
}
